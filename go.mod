module github.com/midas-hpc/midas

go 1.22
