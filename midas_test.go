package midas_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	midas "github.com/midas-hpc/midas"
)

// These tests exercise the public API exactly as a downstream user
// would (external test package, no internals).

func TestPublicPathPipeline(t *testing.T) {
	g := midas.NewRandomGraph(400, 1)
	found, err := midas.FindPath(g, 8, midas.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("n·ln n graph at n=400 should contain an 8-path")
	}
	path, err := midas.FindPathVertices(g, 8, midas.Options{Seed: 1, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 8 {
		t.Fatalf("path length %d", len(path))
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			t.Fatalf("returned path has non-edge at %d", i)
		}
	}
}

func TestPublicTreePipeline(t *testing.T) {
	g := midas.NewRoadGraph(12, 12, 2)
	tpl, err := midas.NewTemplate(4, [][2]int32{{0, 1}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	found, err := midas.FindTree(g, tpl, midas.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("road grid should embed a 4-vertex spider")
	}
	emb, err := midas.FindTreeVertices(g, tpl, midas.Options{Seed: 2, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != 4 || !g.HasEdge(emb[0], emb[1]) || !g.HasEdge(emb[1], emb[2]) || !g.HasEdge(emb[1], emb[3]) {
		t.Fatalf("bad embedding %v", emb)
	}
}

func TestPublicAnomalyPipeline(t *testing.T) {
	g := midas.NewRoadGraph(8, 8, 3)
	w := make([]int64, g.NumVertices())
	for _, v := range []int32{10, 11, 18, 19} {
		w[v] = 2
	}
	g.SetWeights(w)
	res, err := midas.DetectAnomaly(g, 5, midas.KulldorffPoisson{}, midas.Options{Seed: 3, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Score <= 0 {
		t.Fatalf("anomaly not found: %+v", res)
	}
	set, err := midas.ExtractAnomaly(g, res.Size, res.Weight, midas.Options{Seed: 3, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != res.Size {
		t.Fatalf("extracted %d vertices for size-%d cell", len(set), res.Size)
	}
}

func TestPublicDistributed(t *testing.T) {
	g := midas.NewRandomGraph(200, 4)
	want, err := midas.FindPath(g, 6, midas.Options{Seed: 9, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = midas.RunLocal(4, func(c *midas.Cluster) error {
		got, err := midas.DistributedFindPath(c, g, 6, midas.ClusterConfig{
			N1: 2, N2: 8, Seed: 9, Rounds: 1, Scheme: midas.SchemeBFSGrow,
		})
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("rank %d: %v != sequential %v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicDistributedScanAndMaximize(t *testing.T) {
	g := midas.NewRoadGraph(6, 6, 5)
	w := make([]int64, g.NumVertices())
	w[14], w[15], w[20] = 3, 3, 3
	g.SetWeights(w)
	err := midas.RunLocal(2, func(c *midas.Cluster) error {
		feas, err := midas.DistributedScanTable(c, g, midas.ScanClusterConfig{
			Config: midas.ClusterConfig{K: 4, N1: 2, Seed: 6, Rounds: 1},
			ZMax:   9,
		})
		if err != nil {
			return err
		}
		res := midas.MaximizeScanTable(feas, midas.ElevatedMean{})
		if !res.Feasible {
			return fmt.Errorf("no anomaly in table")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicGraphIO(t *testing.T) {
	g := midas.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := midas.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := midas.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("round trip edges %d", g2.NumEdges())
	}
	b := midas.NewBuilder(3)
	b.AddEdge(0, 2)
	if b.Build().NumEdges() != 1 {
		t.Fatal("builder broken")
	}
}

func TestPublicHelpers(t *testing.T) {
	iw := midas.IndicatorWeights([]float64{0.01, 0.9}, 0.05)
	if iw[0] != 1 || iw[1] != 0 {
		t.Fatal("IndicatorWeights wrong")
	}
	rw, err := midas.RoundWeights([]float64{0, 10}, 5)
	if err != nil || rw[1] != 5 {
		t.Fatal("RoundWeights wrong")
	}
	if midas.PathTemplate(5).K() != 5 || midas.StarTemplate(4).K() != 4 {
		t.Fatal("template helpers wrong")
	}
	if midas.NewPowerLawGraph(50, 3, 1).NumVertices() != 50 {
		t.Fatal("power-law generator wrong")
	}
}

func TestPublicMaxWeight(t *testing.T) {
	g := midas.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	g.SetWeights([]int64{1, 8, 1, 1, 9})
	w, found, err := midas.MaxWeightPath(g, 3, midas.Options{Seed: 1, Epsilon: 1e-6})
	if err != nil || !found || w != 11 {
		t.Fatalf("MaxWeightPath = (%d,%v,%v), want (11,true,nil)", w, found, err)
	}
	tpl, _ := midas.NewTemplate(3, [][2]int32{{0, 1}, {1, 2}})
	tw, tfound, err := midas.MaxWeightTree(g, tpl, midas.Options{Seed: 1, Epsilon: 1e-6})
	if err != nil || !tfound || tw != 11 {
		t.Fatalf("MaxWeightTree = (%d,%v,%v), want (11,true,nil)", tw, tfound, err)
	}
}

func TestPublicDistributedMaxWeight(t *testing.T) {
	g := midas.NewRandomGraph(100, 6)
	w := make([]int64, g.NumVertices())
	for i := range w {
		w[i] = int64(i % 4)
	}
	g.SetWeights(w)
	want, wantOK, err := midas.MaxWeightPath(g, 4, midas.Options{Seed: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = midas.RunLocal(2, func(c *midas.Cluster) error {
		got, ok, err := midas.DistributedMaxWeightPath(c, g, 4, midas.ClusterConfig{
			N1: 2, N2: 4, Seed: 2, Rounds: 1, NoTiming: true,
		})
		if err != nil {
			return err
		}
		if ok != wantOK || got != want {
			return fmt.Errorf("distributed (%d,%v) vs sequential (%d,%v)", got, ok, want, wantOK)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicBinaryGraphIO(t *testing.T) {
	dir := t.TempDir()
	g := midas.NewRandomGraph(80, 4)
	g.SetWeights(make([]int64, 80))
	binPath := filepath.Join(dir, "g.midg")
	if err := midas.SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := midas.LoadGraph(binPath) // sniffed as binary
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || !g2.Weighted() {
		t.Fatalf("binary round trip lost data: %v vs %v", g2, g)
	}
	txtPath := filepath.Join(dir, "g.txt")
	if err := midas.SaveEdgeList(txtPath, g); err != nil {
		t.Fatal(err)
	}
	g3, err := midas.LoadGraph(txtPath) // sniffed as text
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Fatal("text round trip lost edges")
	}
}

func TestPublicWorkersOption(t *testing.T) {
	g := midas.NewRandomGraph(300, 9)
	a, err := midas.FindPath(g, 7, midas.Options{Seed: 3, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := midas.FindPath(g, 7, midas.Options{Seed: 3, Rounds: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Workers changed the answer")
	}
}

func TestPublicObservability(t *testing.T) {
	// Sequential: Options.Obs records; both exporters accept the snapshot.
	g := midas.NewRandomGraph(200, 4)
	rec := midas.NewObsRecorder()
	if _, err := midas.FindPath(g, 6, midas.Options{Seed: 2, Rounds: 1, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap.Spans) == 0 {
		t.Fatal("sequential run recorded no spans")
	}
	var sum, trace bytes.Buffer
	if err := midas.WriteObsSummary(&sum, snap); err != nil {
		t.Fatal(err)
	}
	if err := midas.WriteObsTrace(&trace, snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "dp-ops") || !strings.Contains(trace.String(), "traceEvents") {
		t.Fatalf("exporter output malformed:\n%s", sum.String())
	}

	// Distributed: EnableObs + GatherObsSnapshots through the aliases.
	var snaps []midas.ObsSnapshot
	err := midas.RunLocal(4, func(c *midas.Cluster) error {
		c.EnableObs()
		if _, err := midas.DistributedFindPath(c, g, 6, midas.ClusterConfig{N1: 2, N2: 16, Seed: 2, Rounds: 1}); err != nil {
			return err
		}
		if got := c.GatherObsSnapshots(0); c.Rank() == 0 {
			snaps = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 {
		t.Fatalf("gathered %d snapshots, want 4", len(snaps))
	}
	for r, s := range snaps {
		if s.Rank != r || s.MsgsSent == 0 {
			t.Fatalf("rank %d snapshot looks empty: %+v", r, s)
		}
	}
}

// TestPublicLiveTelemetry exercises the live endpoint surface: ServeObs
// over an explicit recorder, and Options.ObsAddr starting (and closing)
// a per-call server.
func TestPublicLiveTelemetry(t *testing.T) {
	g := midas.NewRandomGraph(200, 4)
	rec := midas.NewObsRecorder()
	srv, err := midas.ServeObs("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := midas.FindPath(g, 6, midas.Options{Seed: 2, Rounds: 1, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "midas_dp_ops_total") {
		t.Fatalf("metrics exposition wrong (status %d):\n%s", resp.StatusCode, body)
	}

	// Options.ObsAddr: the endpoint exists for the duration of the call;
	// the recorder it fed still holds the run's telemetry afterwards.
	rec2 := midas.NewObsRecorder()
	if _, err := midas.FindPath(g, 6, midas.Options{Seed: 2, Rounds: 1, Obs: rec2, ObsAddr: "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if len(rec2.Snapshot().Spans) == 0 {
		t.Fatal("ObsAddr run recorded nothing")
	}
	if _, err := midas.FindPath(g, 6, midas.Options{ObsAddr: "definitely:not:an:addr"}); err == nil {
		t.Fatal("bad ObsAddr accepted")
	}
}
