// Observability: instrument a sequential and a (local in-process)
// distributed MIDAS run, print the counter/timing summary, and write a
// Chrome trace_event timeline. docs/OBSERVABILITY.md documents every
// counter, histogram, and span category that appears in the output.
//
//	go run ./examples/observability            # writes trace.json
//	go run ./examples/observability -trace /tmp/t.json -np 8
//	go run ./examples/observability -serve :9090   # then curl /metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	midas "github.com/midas-hpc/midas"
)

func main() {
	var (
		np    = flag.Int("np", 4, "ranks for the distributed part")
		k     = flag.Int("k", 8, "path length")
		n     = flag.Int("nodes", 2000, "graph size")
		seed  = flag.Uint64("seed", 7, "seed")
		trace = flag.String("trace", "trace.json", "Chrome trace_event output path")
		serve = flag.String("serve", "", "serve the gathered telemetry on this address (Prometheus /metrics, /healthz, pprof) until interrupted")
	)
	flag.Parse()
	g := midas.NewRandomGraph(*n, *seed)

	// Sequential: hand Options an ObsRecorder; the detector fills it
	// with round/phase/level spans and DP-op counts as it runs.
	rec := midas.NewObsRecorder()
	found, err := midas.FindPath(g, *k, midas.Options{Seed: *seed, Obs: rec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d-path = %v\n", *k, found)
	if err := midas.WriteObsSummary(os.Stdout, rec.Snapshot()); err != nil {
		log.Fatal(err)
	}

	// Distributed (in-process local world): EnableObs on each rank,
	// gather every rank's snapshot to rank 0 with a collective, and
	// export the merged timeline — one trace row per rank.
	var snaps []midas.ObsSnapshot
	err = midas.RunLocal(*np, func(c *midas.Cluster) error {
		c.EnableObs()
		if _, err := midas.DistributedFindPath(c, g, *k, midas.ClusterConfig{
			N1: 2, Seed: *seed,
		}); err != nil {
			return err
		}
		if got := c.GatherObsSnapshots(0); c.Rank() == 0 {
			snaps = got
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed world of %d ranks:\n", *np)
	if err := midas.WriteObsSummary(os.Stdout, snaps...); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*trace)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := midas.WriteObsTrace(f, snaps...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace: wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", *trace)

	// Optionally keep serving the gathered per-rank telemetry — the
	// same endpoint `midas -obs-addr` exposes during a live run.
	if *serve != "" {
		srv, err := midas.ServeObsSource(*serve, func() []midas.ObsSnapshot { return snaps })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("serving /metrics, /healthz, /debug/pprof/ on http://%s — ctrl-C to stop\n", srv.Addr())
		select {}
	}
}
