// Treemotif: search a protein-interaction-style network for a tree
// motif — the use case that motivates subgraph detection in biological
// networks (paper Section I) — and compare MIDAS against the
// color-coding baseline on the same instance.
package main

import (
	"fmt"
	"log"
	"time"

	midas "github.com/midas-hpc/midas"
	"github.com/midas-hpc/midas/internal/fascia"
)

func main() {
	// Heavy-tailed network: hubs + sparse periphery, like a PPI graph.
	g := midas.NewPowerLawGraph(30_000, 4, 7)
	fmt.Printf("network: %d vertices, %d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// The motif: a "spider" — a hub with three legs of length 3
	// (10 vertices), a shape that path queries cannot express.
	edges := [][2]int32{
		{0, 1}, {1, 2}, {2, 3},
		{0, 4}, {4, 5}, {5, 6},
		{0, 7}, {7, 8}, {8, 9},
	}
	tpl, err := midas.NewTemplate(10, edges)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	found, err := midas.FindTree(g, tpl, midas.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIDAS: spider motif present: %v (%.2fs)\n", found, time.Since(start).Seconds())

	if found {
		emb, err := midas.FindTreeVertices(g, tpl, midas.Options{Seed: 7, Epsilon: 1e-6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("embedding (template vertex -> graph vertex): %v\n", emb)
	}

	// The same detection by color coding needs ~e^k colorings; run a
	// couple to show the per-coloring cost, then report the projection.
	start = time.Now()
	const sample = 3
	_, err = fascia.Count(g, tpl, fascia.Options{Seed: 7, Iterations: sample})
	if err != nil {
		log.Fatal(err)
	}
	perColoring := time.Since(start).Seconds() / sample
	needed := fascia.IterationsForApprox(tpl.K(), 0.05)
	fmt.Printf("FASCIA (color coding): %.3fs per coloring, %d colorings needed ⇒ ~%.0fs total\n",
		perColoring, needed, perColoring*float64(needed))
}
