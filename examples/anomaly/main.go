// Anomaly: the paper's Fig 13 case study end to end — find highway
// segments with unexpectedly low traffic speed in a simulated sensor
// network (the Los Angeles PeMS feed stand-in), using the non-parametric
// Berk–Jones scan statistic over per-sensor p-values.
package main

import (
	"fmt"
	"log"

	midas "github.com/midas-hpc/midas"
	"github.com/midas-hpc/midas/internal/roadnet"
)

func main() {
	// 30 historical half-hour snapshots, then one rush-hour snapshot
	// with a congestion cluster injected on 8 connected sensors.
	sim, err := roadnet.Simulate(roadnet.Config{
		Rows: 16, Cols: 16, Snapshots: 30, AnomalySize: 8, Seed: 2014,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor network: %d sensors, %d road segments\n",
		sim.G.NumVertices(), sim.G.NumEdges())

	// Per-sensor p-values against each sensor's own history (the
	// paper's normal model), thresholded into indicator weights.
	const alpha = 0.02
	sim.G.SetWeights(midas.IndicatorWeights(sim.PValues, alpha))
	fmt.Printf("sensors significant at α=%.2f: %d\n", alpha, sim.G.TotalWeight())

	const k = 10
	stat := midas.BerkJones{Alpha: alpha}
	res, err := midas.DetectAnomaly(sim.G, k, stat, midas.Options{Seed: 1, Epsilon: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		fmt.Println("no anomalous cluster detected")
		return
	}
	fmt.Printf("best cluster: score=%.3f size=%d significant=%d (%s)\n",
		res.Score, res.Size, res.Weight, stat.Name())

	cluster, err := midas.ExtractAnomaly(sim.G, res.Size, res.Weight, midas.Options{Seed: 1, Epsilon: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	precision, recall := sim.PrecisionRecall(cluster)
	fmt.Printf("against injected ground truth: precision=%.2f recall=%.2f\n", precision, recall)
	fmt.Printf("map (o = injected congestion, # = detected, @ = both):\n%s", sim.AsciiMap(cluster))
}
