// Quickstart: detect and extract a k-path in a random network in a few
// lines of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	midas "github.com/midas-hpc/midas"
)

func main() {
	// A synthetic network shaped like the paper's random-* datasets:
	// Erdős–Rényi with m = n·ln n edges.
	g := midas.NewRandomGraph(20_000, 42)
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Options.Ctx bounds the run: the 2^k sweep polls the context per
	// iteration batch, so the deadline cuts a too-slow detection off
	// mid-sweep rather than after it. (To watch a long run live, also
	// set Options.ObsAddr — e.g. ":9090" — and curl /metrics.)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	const k = 12
	found, err := midas.FindPath(g, k, midas.Options{Seed: 42, Ctx: ctx})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contains a simple path on %d vertices: %v\n", k, found)
	if !found {
		return
	}

	// Recover an actual path (self-reduction over the detector).
	path, err := midas.FindPathVertices(g, k, midas.Options{Seed: 42, Epsilon: 1e-6, Ctx: ctx})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness path: %v\n", path)
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			log.Fatalf("not a path! missing edge (%d,%d)", path[i-1], path[i])
		}
	}
	fmt.Println("verified: consecutive vertices are adjacent and distinct")
}
