// Quickstart: detect and extract a k-path in a random network in a few
// lines of the public API.
package main

import (
	"fmt"
	"log"

	midas "github.com/midas-hpc/midas"
)

func main() {
	// A synthetic network shaped like the paper's random-* datasets:
	// Erdős–Rényi with m = n·ln n edges.
	g := midas.NewRandomGraph(20_000, 42)
	fmt.Printf("network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	const k = 12
	found, err := midas.FindPath(g, k, midas.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contains a simple path on %d vertices: %v\n", k, found)
	if !found {
		return
	}

	// Recover an actual path (self-reduction over the detector).
	path, err := midas.FindPathVertices(g, k, midas.Options{Seed: 42, Epsilon: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness path: %v\n", path)
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(path[i-1], path[i]) {
			log.Fatalf("not a path! missing edge (%d,%d)", path[i-1], path[i])
		}
	}
	fmt.Println("verified: consecutive vertices are adjacent and distinct")
}
