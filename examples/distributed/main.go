// Distributed: a real multi-process MIDAS run over the TCP transport.
// Invoked with no flags, it spawns `-np` copies of itself as worker
// processes (one per rank) that rendezvous on a loopback port, each
// builds the same graph from the shared seed, and they jointly run
// distributed k-path detection with N1 graph parts and N2-batched
// iterations.
//
//	go run ./examples/distributed            # spawns 4 local ranks
//	go run ./examples/distributed -np 8 -k 10 -n1 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strconv"

	midas "github.com/midas-hpc/midas"
)

func main() {
	var (
		np   = flag.Int("np", 4, "number of ranks (processes)")
		k    = flag.Int("k", 8, "path length")
		n1   = flag.Int("n1", 2, "graph parts per phase group")
		n2   = flag.Int("n2", 32, "iterations per batch")
		n    = flag.Int("nodes", 5000, "graph size")
		seed = flag.Uint64("seed", 3, "shared seed")
		rank = flag.Int("rank", -1, "internal: worker rank")
		root = flag.String("root", "", "internal: rendezvous address")
	)
	flag.Parse()

	if *rank >= 0 {
		worker(*rank, *np, *root, *k, *n1, *n2, *n, *seed)
		return
	}

	// Parent: pick a port, spawn one child per rank.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	fmt.Printf("launching %d ranks, rendezvous %s\n", *np, addr)
	children := make([]*exec.Cmd, *np)
	for r := 0; r < *np; r++ {
		cmd := exec.Command(os.Args[0],
			"-rank", strconv.Itoa(r), "-np", strconv.Itoa(*np), "-root", addr,
			"-k", strconv.Itoa(*k), "-n1", strconv.Itoa(*n1), "-n2", strconv.Itoa(*n2),
			"-nodes", strconv.Itoa(*n), "-seed", strconv.FormatUint(*seed, 10))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		children[r] = cmd
	}
	for r, cmd := range children {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("rank %d failed: %v", r, err)
		}
	}
	fmt.Println("all ranks done")
}

func worker(rank, size int, root string, k, n1, n2, n int, seed uint64) {
	c, err := midas.ConnectTCP(rank, size, root)
	if err != nil {
		log.Fatalf("rank %d: connect: %v", rank, err)
	}
	defer c.Close()
	// Every rank builds the identical graph from the shared seed — the
	// moral equivalent of every MPI rank reading the same input file.
	g := midas.NewRandomGraph(n, seed)
	found, err := midas.DistributedFindPath(c, g, k, midas.ClusterConfig{
		N1: n1, N2: n2, Seed: seed,
	})
	if err != nil {
		log.Fatalf("rank %d: %v", rank, err)
	}
	if rank == 0 {
		fmt.Printf("world of %d ranks (N1=%d, N2=%d): %d-path in G(n=%d, m=%d): %v\n",
			size, n1, n2, k, g.NumVertices(), g.NumEdges(), found)
	}
}
