package midas_test

import (
	"context"
	"errors"
	"fmt"

	midas "github.com/midas-hpc/midas"
)

// The examples below double as documentation on pkg.go.dev and as
// executable tests (their output is verified by `go test`).

func ExampleFindPath() {
	// A 4-cycle with a tail: longest simple path has 5 vertices.
	g := midas.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}})
	for _, k := range []int{5, 6} {
		found, err := midas.FindPath(g, k, midas.Options{Seed: 1})
		if err != nil {
			panic(err)
		}
		fmt.Printf("path on %d vertices: %v\n", k, found)
	}
	// Output:
	// path on 5 vertices: true
	// path on 6 vertices: false
}

func ExampleFindTree() {
	// Star template needs a degree-3 vertex; a path has none.
	tpl, _ := midas.NewTemplate(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	path := midas.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	star := midas.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	a, _ := midas.FindTree(path, tpl, midas.Options{Seed: 2})
	b, _ := midas.FindTree(star, tpl, midas.Options{Seed: 2})
	fmt.Println(a, b)
	// Output:
	// false true
}

func ExampleMaxWeightPath() {
	// P4 with weights 1,5,1,9: the best 2-vertex path is 1+9 = 10.
	g := midas.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	g.SetWeights([]int64{1, 5, 1, 9})
	w, found, err := midas.MaxWeightPath(g, 2, midas.Options{Seed: 3, Epsilon: 1e-6})
	if err != nil {
		panic(err)
	}
	fmt.Println(found, w)
	// Output:
	// true 10
}

func ExampleDetectAnomaly() {
	// A path with a heavy pair in the middle.
	g := midas.FromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}})
	g.SetWeights([]int64{0, 0, 6, 6, 0, 0, 0})
	res, err := midas.DetectAnomaly(g, 3, midas.KulldorffPoisson{}, midas.Options{Seed: 4, Epsilon: 1e-6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("size=%d weight=%d\n", res.Size, res.Weight)
	// Output:
	// size=2 weight=12
}

func ExampleFindPath_cancellation() {
	// Options.Ctx makes a detection cancellable mid-sweep: the
	// evaluators poll the context once per iteration batch, so an
	// expired deadline stops the 2^k loop at the next batch boundary
	// instead of running to completion.
	g := midas.NewRandomGraph(2_000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the sweep stops before the first batch
	_, err := midas.FindPath(g, 12, midas.Options{Seed: 7, Ctx: ctx})
	fmt.Println(errors.Is(err, context.Canceled))
	// Output:
	// true
}

func ExampleRunLocal() {
	g := midas.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	err := midas.RunLocal(2, func(c *midas.Cluster) error {
		found, err := midas.DistributedFindPath(c, g, 4, midas.ClusterConfig{
			N1: 2, N2: 4, Seed: 5, NoTiming: true,
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("4-path:", found)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// 4-path: true
}
