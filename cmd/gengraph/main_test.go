package main

import (
	"path/filepath"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"random", "orkut", "miami", "gnp", "grid", "smallworld"} {
		out := filepath.Join(dir, kind+".txt")
		if err := run(kind, 200, 0.05, 1, out, "text", "", 0.1); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		g, err := graph.LoadEdgeList(out)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s produced empty graph", kind)
		}
	}
}

func TestGenerateWithWeights(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.txt")
	w := filepath.Join(dir, "w.txt")
	if err := run("random", 150, 0, 2, out, "binary", w, 0.2); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Load(out) // format-sniffing loader handles binary
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 150 {
		t.Fatalf("binary round trip lost vertices: %d", g.NumVertices())
	}
	f, err := filepath.Glob(w)
	if err != nil || len(f) != 1 {
		t.Fatal("weights file missing")
	}
	_ = g
}

func TestGenerateErrors(t *testing.T) {
	if err := run("random", 100, 0, 1, "", "text", "", 0.1); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run("marslander", 100, 0, 1, filepath.Join(t.TempDir(), "x.txt"), "text", "", 0.1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGenerateRMAT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := run("rmat", 500, 0, 3, out, "text", "", 0.1); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeList(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() < 500 {
		t.Fatalf("rmat n = %d", g.NumVertices())
	}
}
