// Command gengraph generates the synthetic datasets of the evaluation
// (Table II analogues) as edge-list files, optionally with synthetic
// vertex weights.
//
//	gengraph -kind random -n 100000 -out random-1e5.txt
//	gengraph -kind orkut  -n 50000  -out orkut.txt
//	gengraph -kind miami  -n 40000  -out miami.txt -weights miami-w.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/harness"
	"github.com/midas-hpc/midas/internal/rng"
)

func main() {
	var (
		kind    = flag.String("kind", "random", "random | orkut | miami | gnp | grid | smallworld | rmat")
		n       = flag.Int("n", 10000, "vertex count (grid: made square)")
		p       = flag.Float64("p", 0.001, "edge probability (kind=gnp)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output path (required)")
		format  = flag.String("format", "text", "text | binary")
		weights = flag.String("weights", "", "also write synthetic event weights here")
		hotFrac = flag.Float64("hot", 0.1, "fraction of nodes with nonzero weight")
	)
	flag.Parse()
	if err := run(*kind, *n, *p, *seed, *out, *format, *weights, *hotFrac); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(kind string, n int, p float64, seed uint64, out, format, weightsPath string, hotFrac float64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	if format != "text" && format != "binary" {
		return fmt.Errorf("unknown format %q (want text|binary)", format)
	}
	var g *graph.Graph
	switch kind {
	case "random", "orkut", "miami":
		ds, err := harness.DatasetByName(kind)
		if err != nil {
			return err
		}
		g = ds.Build(n, seed)
	case "gnp":
		g = graph.RandomGNP(n, p, seed)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g = graph.Grid(side, side)
	case "smallworld":
		g = graph.SmallWorld(n, 3, 0.1, seed)
	case "rmat":
		scale := 1
		for 1<<uint(scale) < n {
			scale++
		}
		g = graph.RMAT(scale, 8, seed)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	save := graph.SaveEdgeList
	if format == "binary" {
		save = graph.SaveBinary
	}
	if err := save(out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s): %d vertices, %d edges\n", out, format, g.NumVertices(), g.NumEdges())
	if weightsPath != "" {
		r := rng.New(seed ^ 0x77)
		w := make([]int64, g.NumVertices())
		for i := range w {
			if r.Float64() < hotFrac {
				w[i] = int64(1 + r.Intn(3))
			}
		}
		g.SetWeights(w)
		f, err := os.Create(weightsPath)
		if err != nil {
			return err
		}
		if err := graph.WriteWeights(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: total weight %d\n", weightsPath, g.TotalWeight())
	}
	return nil
}
