package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

func writeFixtures(t *testing.T) (graphPath, tplPath, weightsPath string) {
	t.Helper()
	dir := t.TempDir()
	g := graph.RandomNLogN(120, 1)
	graphPath = filepath.Join(dir, "g.txt")
	if err := graph.SaveEdgeList(graphPath, g); err != nil {
		t.Fatal(err)
	}
	tplPath = filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tplPath, []byte("0 1\n1 2\n1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	weightsPath = filepath.Join(dir, "w.txt")
	if err := os.WriteFile(weightsPath, []byte("3 2\n4 2\n5 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return
}

// seqConfig is the sequential baseline the tests tweak per mode.
func seqConfig(graphPath string) cliConfig {
	return cliConfig{
		graphPath: graphPath, mode: "path", k: 5, statName: "kulldorff",
		alpha: 0.05, seed: 1, eps: 0.05, rank: -1, n2: 16,
	}
}

func TestRunPathMode(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.extract = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeMode(t *testing.T) {
	g, tpl, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode, cfg.tplPath, cfg.k = "tree", tpl, 0
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.tplPath = ""
	if err := run(cfg); err == nil {
		t.Fatal("tree mode without template accepted")
	}
}

func TestRunScanMode(t *testing.T) {
	g, _, w := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode, cfg.weights, cfg.statName, cfg.k, cfg.zmax, cfg.n2 = "scan", w, "elevated", 4, 8, 8
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.statName = "bogus"
	if err := run(cfg); err == nil {
		t.Fatal("bogus statistic accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(seqConfig("")); err == nil {
		t.Fatal("missing -graph accepted")
	}
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode = "teleport"
	if err := run(cfg); err == nil {
		t.Fatal("bad mode accepted")
	}
	cfg = seqConfig(g)
	cfg.rank = 0 // distributed, but no -size/-root
	if err := run(cfg); err == nil {
		t.Fatal("distributed without -size/-root accepted")
	}
}

func TestPickStat(t *testing.T) {
	for _, name := range []string{"kulldorff", "elevated", "berkjones"} {
		if _, err := pickStat(name, 0.05); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickStat("x", 0.05); err == nil {
		t.Fatal("unknown stat accepted")
	}
}

func TestRunMaxWeightMode(t *testing.T) {
	g, _, w := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode, cfg.weights, cfg.k = "maxweight", w, 3
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraceFlag is the acceptance check for `midas -trace out.json`:
// the file must exist and be valid Chrome trace_event JSON with at
// least one complete ("X") span event.
func TestRunTraceFlag(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.obs = true
	cfg.tracePath = filepath.Join(t.TempDir(), "out.json")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("trace has no span events: %d total events", len(tf.TraceEvents))
	}
}
