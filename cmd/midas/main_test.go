package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

func writeFixtures(t *testing.T) (graphPath, tplPath, weightsPath string) {
	t.Helper()
	dir := t.TempDir()
	g := graph.RandomNLogN(120, 1)
	graphPath = filepath.Join(dir, "g.txt")
	if err := graph.SaveEdgeList(graphPath, g); err != nil {
		t.Fatal(err)
	}
	tplPath = filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tplPath, []byte("0 1\n1 2\n1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	weightsPath = filepath.Join(dir, "w.txt")
	if err := os.WriteFile(weightsPath, []byte("3 2\n4 2\n5 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return
}

func TestRunPathMode(t *testing.T) {
	g, _, _ := writeFixtures(t)
	if err := run(g, "path", 5, "", "", "kulldorff", 0.05, 1, 0.05, true, 0, -1, 0, "", 0, 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeMode(t *testing.T) {
	g, tpl, _ := writeFixtures(t)
	if err := run(g, "tree", 0, tpl, "", "kulldorff", 0.05, 1, 0.05, false, 0, -1, 0, "", 0, 16); err != nil {
		t.Fatal(err)
	}
	if err := run(g, "tree", 0, "", "", "kulldorff", 0.05, 1, 0.05, false, 0, -1, 0, "", 0, 16); err == nil {
		t.Fatal("tree mode without template accepted")
	}
}

func TestRunScanMode(t *testing.T) {
	g, _, w := writeFixtures(t)
	if err := run(g, "scan", 4, "", w, "elevated", 0.05, 1, 0.05, false, 8, -1, 0, "", 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := run(g, "scan", 4, "", w, "bogus", 0.05, 1, 0.05, false, 8, -1, 0, "", 0, 8); err == nil {
		t.Fatal("bogus statistic accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "path", 5, "", "", "kulldorff", 0.05, 1, 0.05, false, 0, -1, 0, "", 0, 16); err == nil {
		t.Fatal("missing -graph accepted")
	}
	g, _, _ := writeFixtures(t)
	if err := run(g, "teleport", 5, "", "", "kulldorff", 0.05, 1, 0.05, false, 0, -1, 0, "", 0, 16); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := run(g, "path", 5, "", "", "kulldorff", 0.05, 1, 0.05, false, 0, 0, 0, "", 0, 16); err == nil {
		t.Fatal("distributed without -size/-root accepted")
	}
}

func TestPickStat(t *testing.T) {
	for _, name := range []string{"kulldorff", "elevated", "berkjones"} {
		if _, err := pickStat(name, 0.05); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickStat("x", 0.05); err == nil {
		t.Fatal("unknown stat accepted")
	}
}

func TestRunMaxWeightMode(t *testing.T) {
	g, _, w := writeFixtures(t)
	if err := run(g, "maxweight", 3, "", w, "kulldorff", 0.05, 1, 0.05, false, 0, -1, 0, "", 0, 16); err != nil {
		t.Fatal(err)
	}
}
