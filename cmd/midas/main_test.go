package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
)

func writeFixtures(t *testing.T) (graphPath, tplPath, weightsPath string) {
	t.Helper()
	dir := t.TempDir()
	g := graph.RandomNLogN(120, 1)
	graphPath = filepath.Join(dir, "g.txt")
	if err := graph.SaveEdgeList(graphPath, g); err != nil {
		t.Fatal(err)
	}
	tplPath = filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tplPath, []byte("0 1\n1 2\n1 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	weightsPath = filepath.Join(dir, "w.txt")
	if err := os.WriteFile(weightsPath, []byte("3 2\n4 2\n5 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return
}

// seqConfig is the sequential baseline the tests tweak per mode.
func seqConfig(graphPath string) cliConfig {
	return cliConfig{
		graphPath: graphPath, mode: "path", k: 5, statName: "kulldorff",
		alpha: 0.05, seed: 1, eps: 0.05, rank: -1, n2: 16,
	}
}

func TestRunPathMode(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.extract = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunTreeMode(t *testing.T) {
	g, tpl, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode, cfg.tplPath, cfg.k = "tree", tpl, 0
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.tplPath = ""
	if err := run(cfg); err == nil {
		t.Fatal("tree mode without template accepted")
	}
}

func TestRunScanMode(t *testing.T) {
	g, _, w := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode, cfg.weights, cfg.statName, cfg.k, cfg.zmax, cfg.n2 = "scan", w, "elevated", 4, 8, 8
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.statName = "bogus"
	if err := run(cfg); err == nil {
		t.Fatal("bogus statistic accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(seqConfig("")); err == nil {
		t.Fatal("missing -graph accepted")
	}
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode = "teleport"
	if err := run(cfg); err == nil {
		t.Fatal("bad mode accepted")
	}
	cfg = seqConfig(g)
	cfg.rank = 0 // distributed, but no -size/-root
	if err := run(cfg); err == nil {
		t.Fatal("distributed without -size/-root accepted")
	}
}

func TestPickStat(t *testing.T) {
	for _, name := range []string{"kulldorff", "elevated", "berkjones"} {
		if _, err := pickStat(name, 0.05); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := pickStat("x", 0.05); err == nil {
		t.Fatal("unknown stat accepted")
	}
}

func TestRunMaxWeightMode(t *testing.T) {
	g, _, w := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.mode, cfg.weights, cfg.k = "maxweight", w, 3
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout swapped for a pipe and returns
// everything fn printed alongside its error.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	return <-done, runErr
}

// TestRunFaultSpecChaos is the acceptance check for `midas -fault-spec`:
// a seeded drop+delay schedule over an in-process chaos world must
// complete with the correct verdict and surface the resilience counters
// in the -obs summary.
func TestRunFaultSpecChaos(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.obs = true
	cfg.faultSpec = "drop=0.1,delay=1ms,seed=42"
	cfg.chaosRanks = 4
	cfg.chaosAttempts = 3
	out, err := captureStdout(t, func() error { return run(cfg) })
	if err != nil {
		t.Fatalf("chaos run failed: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "fault schedule: drop=0.1,delay=1ms,seed=42") {
		t.Fatalf("fault schedule not echoed:\n%s", out)
	}
	if !strings.Contains(out, "5-path: true (chaos world of 4 ranks") {
		t.Fatalf("verdict missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "-- resilience") || !strings.Contains(out, "faults-injected") {
		t.Fatalf("resilience counters missing from -obs summary:\n%s", out)
	}
}

// TestRunFaultSpecKillRecovers kills a rank mid-run; the CLI must
// retry the detection (kill rules model one-shot crashes) and report
// the failed attempt it recovered from.
func TestRunFaultSpecKillRecovers(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.faultSpec = "kill=1@3,seed=7"
	cfg.chaosRanks = 4
	cfg.chaosAttempts = 3
	out, err := captureStdout(t, func() error { return run(cfg) })
	if err != nil {
		t.Fatalf("kill was not recovered: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "retried after:") || !strings.Contains(out, "rank killed by fault injection") {
		t.Fatalf("recovered failure not reported:\n%s", out)
	}
	if !strings.Contains(out, "2 attempts (1 failed)") {
		t.Fatalf("retry report missing:\n%s", out)
	}
}

func TestRunFaultSpecErrors(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.faultSpec = "drop=1.5"
	cfg.chaosRanks = 4
	cfg.chaosAttempts = 1
	if _, err := captureStdout(t, func() error { return run(cfg) }); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
	cfg.faultSpec = "kill=1,seed=3"
	_, err := captureStdout(t, func() error { return run(cfg) })
	if err == nil {
		t.Fatal("killed rank with one attempt reported success")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("failure does not name the killed rank: %v", err)
	}
	cfg = seqConfig(g)
	cfg.mode, cfg.k = "maxweight", 3
	cfg.faultSpec = "drop=0.1"
	if _, err := captureStdout(t, func() error { return run(cfg) }); err == nil {
		t.Fatal("chaos run accepted for non-path mode")
	}
}

// TestRunTraceFlag is the acceptance check for `midas -trace out.json`:
// the file must exist and be valid Chrome trace_event JSON with at
// least one complete ("X") span event.
func TestRunTraceFlag(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.obs = true
	cfg.tracePath = filepath.Join(t.TempDir(), "out.json")
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("trace has no span events: %d total events", len(tf.TraceEvents))
	}
}

// httpGet fetches a URL with a short timeout, returning status and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestRunObsAddrLiveEndpoint is the acceptance check for `midas
// -obs-addr`: while a 4-rank chaos run is in flight, the process must
// serve valid /metrics with at least 4 histogram families, /healthz
// with per-rank progress, and the pprof index.
func TestRunObsAddrLiveEndpoint(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.faultSpec = "drop=0.05,delay=200us,seed=9"
	cfg.chaosRanks = 4
	cfg.chaosAttempts = 3
	cfg.obsAddr = "127.0.0.1:0"
	addrCh := make(chan string, 1)
	obsServerStarted = func(a string) { addrCh <- a }
	defer func() { obsServerStarted = nil }()
	done := make(chan error, 1)
	go func() { done <- run(cfg) }()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run finished before announcing the endpoint (err=%v)", err)
	}
	// Poll the live endpoint (the run is in flight in the goroutine; the
	// server also outlives it, so the loop converges either way).
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := httpGet(t, "http://"+addr+"/metrics")
		if code != 200 {
			t.Fatalf("/metrics status %d", code)
		}
		families := strings.Count(body, " histogram\n")
		code, health := httpGet(t, "http://"+addr+"/healthz")
		if code != 200 {
			t.Fatalf("/healthz status %d", code)
		}
		var h struct {
			Status string `json:"status"`
			Ranks  []struct {
				Rank int `json:"rank"`
			} `json:"ranks"`
		}
		if err := json.Unmarshal([]byte(health), &h); err != nil {
			t.Fatalf("healthz is not JSON: %v\n%s", err, health)
		}
		if h.Status != "ok" {
			t.Fatalf("healthz status %q", h.Status)
		}
		if families >= 4 && len(h.Ranks) == 4 {
			if !strings.Contains(body, "midas_send_latency_seconds_bucket") {
				t.Fatalf("send-latency histogram missing from /metrics:\n%s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint never showed 4 histogram families and 4 ranks:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, _ := httpGet(t, "http://"+addr+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline status %d", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
}

// TestRunTraceFlowStitching is the acceptance check for cross-rank
// trace stitching: a 4-rank run's -trace output must contain flow
// events pairing a send ("s") to its receive ("f") across distinct
// trace pids.
func TestRunTraceFlowStitching(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.faultSpec = "seed=1" // valid but inactive: routes through the 4-rank chaos world
	cfg.chaosRanks = 4
	cfg.chaosAttempts = 1
	cfg.tracePath = filepath.Join(t.TempDir(), "trace.json")
	if _, err := captureStdout(t, func() error { return run(cfg) }); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
			ID  string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	sends := map[string]int{} // flow id -> sender pid
	recvs := map[string]int{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "s":
			sends[ev.ID] = ev.Pid
		case "f":
			recvs[ev.ID] = ev.Pid
		}
	}
	if len(sends) == 0 || len(recvs) == 0 {
		t.Fatalf("trace has no flow events: %d sends, %d recvs", len(sends), len(recvs))
	}
	stitched := 0
	for id, rpid := range recvs {
		spid, ok := sends[id]
		if !ok {
			t.Fatalf("receive flow %s has no matching send", id)
		}
		if spid != rpid {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatal("no flow stitches a send to a receive on a different rank pid")
	}
}

// TestRunObsOutFile checks `midas -obs-out FILE`: the summary lands in
// the file (not on stdout) and the flag alone enables telemetry.
func TestRunObsOutFile(t *testing.T) {
	g, _, _ := writeFixtures(t)
	cfg := seqConfig(g)
	cfg.obsOut = filepath.Join(t.TempDir(), "summary.txt")
	out, err := captureStdout(t, func() error { return run(cfg) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "-- per-rank counters --") {
		t.Fatalf("summary leaked to stdout:\n%s", out)
	}
	if !strings.Contains(out, "obs: wrote summary to "+cfg.obsOut) {
		t.Fatalf("summary destination not announced:\n%s", out)
	}
	raw, err := os.ReadFile(cfg.obsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "-- per-rank counters --") || !strings.Contains(string(raw), "dp-ops") {
		t.Fatalf("summary file content wrong:\n%s", raw)
	}
}

func TestRunMotifMode(t *testing.T) {
	g, _, _ := writeFixtures(t)
	dir := filepath.Dir(g)
	labels := filepath.Join(dir, "c.txt")
	if err := os.WriteFile(labels, []byte("0 1\n1 1\n2 2\n# comment\n3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := seqConfig(g)
	cfg.mode, cfg.labels, cfg.motif, cfg.k = "motif", labels, "0:2,1:1", 5
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// Unconstrained motif (any connected 5-subgraph).
	cfg.motif = ""
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseMotifErrors(t *testing.T) {
	for _, text := range []string{"0", "x:1", "0:y", "0:4"} {
		if _, err := parseMotif(3, text); err == nil {
			t.Errorf("parseMotif(3, %q) accepted", text)
		}
	}
	spec, err := parseMotif(5, " 0:2 ,1:1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.K != 5 || spec.Counts[0] != 2 || spec.Counts[1] != 1 {
		t.Fatalf("parsed %+v", spec)
	}
}
