package main

// The `midas store` subcommand family: offline management of the
// persistent graph repository midas-serve mounts with -store
// (docs/STORAGE.md).
//
//	midas store import  -dir DIR -name NAME [-weights W] [-labels L] GRAPH
//	midas store inspect -dir DIR [NAME|DIGEST]
//	midas store verify  -dir DIR [NAME|DIGEST]
//
// import converts any graph.Load format to the v2 aligned binary
// layout and binds the name; inspect prints the repository (or one
// graph's section table) from file headers only; verify re-reads every
// byte against the per-section checksums.

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	midas "github.com/midas-hpc/midas"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/store"
)

func runStore(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("store: want a subcommand: import, inspect, or verify")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "import":
		return storeImport(rest)
	case "inspect":
		return storeInspect(rest)
	case "verify":
		return storeVerify(rest)
	default:
		return fmt.Errorf("store: unknown subcommand %q (want import, inspect, or verify)", sub)
	}
}

// storeFlags builds the shared flag set; every subcommand takes -dir.
func storeFlags(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("store "+name, flag.ContinueOnError)
	dir := fs.String("dir", "", "repository directory (required)")
	return fs, dir
}

func openFlagStore(fs *flag.FlagSet, dir *string, args []string) (*store.Store, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *dir == "" {
		return nil, fmt.Errorf("store: -dir is required")
	}
	return store.Open(*dir, store.Options{})
}

// resolveDigest accepts a manifest name or a hex digest.
func resolveDigest(s *store.Store, arg string) (uint64, error) {
	if ni, ok := s.Names()[arg]; ok {
		return ni.Digest, nil
	}
	if d, err := strconv.ParseUint(arg, 16, 64); err == nil && s.Has(d) {
		return d, nil
	}
	return 0, fmt.Errorf("store: %q is neither a manifest name nor a stored digest", arg)
}

func storeImport(args []string) error {
	fs, dir := storeFlags("import")
	name := fs.String("name", "", "manifest name to bind (required)")
	weights := fs.String("weights", "", "vertex weights file 'v w [b]'")
	labels := fs.String("labels", "", "vertex colors file 'v c'")
	s, err := openFlagStore(fs, dir, args)
	if err != nil {
		return err
	}
	defer s.Close()
	if *name == "" || fs.NArg() != 1 {
		return fmt.Errorf("store import: want -name NAME and exactly one graph file")
	}
	g, err := graph.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	if *weights != "" {
		if err := midas.LoadWeights(*weights, g); err != nil {
			return err
		}
	}
	if *labels != "" {
		if err := midas.LoadLabels(*labels, g); err != nil {
			return err
		}
	}
	digest, created, err := s.Put(g)
	if err != nil {
		return err
	}
	if err := s.SetName(*name, digest, g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	verb := "stored"
	if !created {
		verb = "already stored"
	}
	fmt.Printf("%s %s: %d vertices, %d edges, digest %016x (%s)\n",
		verb, *name, g.NumVertices(), g.NumEdges(), digest, graphFileSize(g))
	return nil
}

func graphFileSize(g *graph.Graph) string {
	n := graph.V2FileSize(g)
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func storeInspect(args []string) error {
	fs, dir := storeFlags("inspect")
	s, err := openFlagStore(fs, dir, args)
	if err != nil {
		return err
	}
	defer s.Close()
	if fs.NArg() > 1 {
		return fmt.Errorf("store inspect: at most one NAME|DIGEST")
	}
	if fs.NArg() == 1 {
		d, err := resolveDigest(s, fs.Arg(0))
		if err != nil {
			return err
		}
		info, err := s.Info(d)
		if err != nil {
			return err
		}
		fmt.Printf("digest   %016x\n", info.Digest)
		fmt.Printf("file     %d bytes\n", info.FileBytes)
		fmt.Printf("shape    %d vertices, %d edges\n", info.Vertices, info.Edges)
		fmt.Printf("derived  %d partition artifact(s)\n", info.Partitions)
		fmt.Println("sections:")
		for _, sec := range info.Sections {
			fmt.Printf("  %-8s off=%-10d len=%-10d elem=%d crc=%08x\n",
				graph.SectionName(sec.ID), sec.Off, sec.Len, sec.Elem, sec.CRC)
		}
		return nil
	}
	infos, err := s.List()
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("empty repository")
		return nil
	}
	for _, info := range infos {
		names := "-"
		if len(info.Names) > 0 {
			sort.Strings(info.Names)
			names = info.Names[0]
			for _, n := range info.Names[1:] {
				names += "," + n
			}
		}
		fmt.Printf("%016x  %9d vertices %10d edges %12d bytes  parts=%d  %s\n",
			info.Digest, info.Vertices, info.Edges, info.FileBytes, info.Partitions, names)
	}
	return nil
}

func storeVerify(args []string) error {
	fs, dir := storeFlags("verify")
	s, err := openFlagStore(fs, dir, args)
	if err != nil {
		return err
	}
	defer s.Close()
	var digests []uint64
	if fs.NArg() == 1 {
		d, err := resolveDigest(s, fs.Arg(0))
		if err != nil {
			return err
		}
		digests = []uint64{d}
	} else {
		infos, err := s.List()
		if err != nil {
			return err
		}
		for _, info := range infos {
			digests = append(digests, info.Digest)
		}
	}
	bad := 0
	for _, d := range digests {
		if err := s.Verify(d); err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "FAIL %016x: %v\n", d, err)
		} else {
			fmt.Printf("ok   %016x\n", d)
		}
	}
	if bad > 0 {
		return fmt.Errorf("store verify: %d of %d graphs corrupt", bad, len(digests))
	}
	fmt.Printf("verified %d graph(s)\n", len(digests))
	return nil
}
