// Command midas detects k-paths, tree templates, and anomalous
// connected subgraphs in edge-list graphs, sequentially or distributed
// over TCP ranks.
//
// Usage:
//
//	midas -graph g.txt -mode path -k 12
//	midas -graph g.txt -mode tree -template t.txt
//	midas -graph g.txt -mode scan -k 8 -weights w.txt -stat kulldorff
//
// Distributed (run one process per rank):
//
//	midas -graph g.txt -mode path -k 12 -rank 0 -size 4 -root :9000 -n1 2 -n2 64
//	midas -graph g.txt -mode path -k 12 -rank 1 -size 4 -root host:9000 -n1 2 -n2 64
package main

import (
	"flag"
	"fmt"
	"os"

	midas "github.com/midas-hpc/midas"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file (required)")
		mode      = flag.String("mode", "path", "path | tree | scan | maxweight")
		k         = flag.Int("k", 8, "subgraph size")
		tplPath   = flag.String("template", "", "tree template edge list (mode=tree)")
		weights   = flag.String("weights", "", "vertex weights file 'v w [b]' (mode=scan)")
		statName  = flag.String("stat", "kulldorff", "kulldorff | elevated | berkjones (mode=scan)")
		alpha     = flag.Float64("alpha", 0.05, "Berk-Jones significance level")
		seed      = flag.Uint64("seed", 1, "random seed")
		eps       = flag.Float64("epsilon", 0.05, "failure probability bound")
		extract   = flag.Bool("extract", false, "recover the witness vertices, not just yes/no")
		zmax      = flag.Int64("zmax", 0, "scan weight cap (0 = total weight, capped)")

		rank = flag.Int("rank", -1, "distributed rank (-1 = sequential)")
		size = flag.Int("size", 0, "distributed world size")
		root = flag.String("root", "", "rank-0 rendezvous address host:port")
		n1   = flag.Int("n1", 0, "graph parts per phase group (0 = world size)")
		n2   = flag.Int("n2", 64, "iterations per batch")
	)
	flag.Parse()
	if err := run(*graphPath, *mode, *k, *tplPath, *weights, *statName, *alpha,
		*seed, *eps, *extract, *zmax, *rank, *size, *root, *n1, *n2); err != nil {
		fmt.Fprintln(os.Stderr, "midas:", err)
		os.Exit(1)
	}
}

func run(graphPath, mode string, k int, tplPath, weightsPath, statName string, alpha float64,
	seed uint64, eps float64, extract bool, zmax int64, rank, size int, root string, n1, n2 int) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := midas.LoadGraph(graphPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	if weightsPath != "" {
		if err := midas.LoadWeights(weightsPath, g); err != nil {
			return err
		}
	}
	opt := midas.Options{Seed: seed, Epsilon: eps, N2: n2}

	if rank >= 0 {
		return runDistributed(g, mode, k, tplPath, seed, eps, zmax, rank, size, root, n1, n2)
	}

	switch mode {
	case "path":
		found, err := midas.FindPath(g, k, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%d-path: %v\n", k, found)
		if found && extract {
			path, err := midas.FindPathVertices(g, k, midas.Options{Seed: seed, Epsilon: 1e-6, N2: n2})
			if err != nil {
				return err
			}
			fmt.Printf("witness: %v\n", path)
		}
	case "tree":
		if tplPath == "" {
			return fmt.Errorf("mode=tree needs -template")
		}
		tpl, err := midas.LoadTemplate(tplPath)
		if err != nil {
			return err
		}
		found, err := midas.FindTree(g, tpl, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%d-tree: %v\n", tpl.K(), found)
		if found && extract {
			emb, err := midas.FindTreeVertices(g, tpl, midas.Options{Seed: seed, Epsilon: 1e-6, N2: n2})
			if err != nil {
				return err
			}
			fmt.Printf("embedding (by template vertex): %v\n", emb)
		}
	case "maxweight":
		w, found, err := midas.MaxWeightPath(g, k, opt)
		if err != nil {
			return err
		}
		if !found {
			fmt.Printf("no %d-path exists\n", k)
			return nil
		}
		fmt.Printf("maximum %d-path weight: %d\n", k, w)
	case "scan":
		stat, err := pickStat(statName, alpha)
		if err != nil {
			return err
		}
		res, err := midas.DetectAnomaly(g, k, stat, opt)
		if err != nil {
			return err
		}
		if !res.Feasible {
			fmt.Println("no anomalous cluster found")
			return nil
		}
		fmt.Printf("best cluster: score=%.4f size=%d weight=%d (stat=%s)\n", res.Score, res.Size, res.Weight, stat.Name())
		if extract {
			set, err := midas.ExtractAnomaly(g, res.Size, res.Weight, midas.Options{Seed: seed, Epsilon: 1e-6, N2: n2})
			if err != nil {
				return err
			}
			fmt.Printf("cluster vertices: %v\n", set)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func runDistributed(g *midas.Graph, mode string, k int, tplPath string, seed uint64, eps float64,
	zmax int64, rank, size int, root string, n1, n2 int) error {
	if size < 1 || root == "" {
		return fmt.Errorf("distributed mode needs -size and -root")
	}
	c, err := midas.ConnectTCP(rank, size, root)
	if err != nil {
		return err
	}
	defer c.Close()
	cfg := midas.ClusterConfig{N1: n1, N2: n2, Seed: seed, Epsilon: eps}
	switch mode {
	case "path":
		found, err := midas.DistributedFindPath(c, g, k, cfg)
		if err != nil {
			return err
		}
		if rank == 0 {
			fmt.Printf("%d-path: %v (world of %d ranks)\n", k, found, size)
		}
	case "tree":
		tpl, err := midas.LoadTemplate(tplPath)
		if err != nil {
			return err
		}
		found, err := midas.DistributedFindTree(c, g, tpl, cfg)
		if err != nil {
			return err
		}
		if rank == 0 {
			fmt.Printf("%d-tree: %v (world of %d ranks)\n", tpl.K(), found, size)
		}
	case "scan":
		if zmax <= 0 {
			zmax = g.TotalWeight()
		}
		cfg.K = k
		feas, err := midas.DistributedScanTable(c, g, midas.ScanClusterConfig{Config: cfg, ZMax: zmax})
		if err != nil {
			return err
		}
		if rank == 0 {
			res := midas.MaximizeScanTable(feas, midas.KulldorffPoisson{})
			fmt.Printf("best cluster: %+v\n", res)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func pickStat(name string, alpha float64) (midas.Statistic, error) {
	switch name {
	case "kulldorff":
		return midas.KulldorffPoisson{}, nil
	case "elevated":
		return midas.ElevatedMean{}, nil
	case "berkjones":
		return midas.BerkJones{Alpha: alpha}, nil
	default:
		return nil, fmt.Errorf("unknown statistic %q", name)
	}
}
