// Command midas detects k-paths, tree templates, colored motifs, and
// anomalous connected subgraphs in edge-list graphs, sequentially or
// distributed over TCP ranks.
//
// Usage:
//
//	midas -graph g.txt -mode path -k 12
//	midas -graph g.txt -mode tree -template t.txt
//	midas -graph g.txt -mode scan -k 8 -weights w.txt -stat kulldorff
//	midas -graph g.txt -mode motif -k 6 -labels c.txt -motif 0:2,1:1
//
// Persistent graph store management (docs/STORAGE.md):
//
//	midas store import -dir /var/lib/midas -name social graphs/social.txt
//	midas store inspect -dir /var/lib/midas
//	midas store verify -dir /var/lib/midas social
//
// Distributed (run one process per rank):
//
//	midas -graph g.txt -mode path -k 12 -rank 0 -size 4 -root :9000 -n1 2 -n2 64
//	midas -graph g.txt -mode path -k 12 -rank 1 -size 4 -root host:9000 -n1 2 -n2 64
//
// Observability (docs/OBSERVABILITY.md is the full guide): -obs prints
// the per-rank counter/timing summary after the run (-obs-out FILE
// redirects it to a file), and -trace out.json writes a Chrome
// trace_event timeline — with cross-rank message flow arrows —
// loadable at chrome://tracing. In distributed mode every rank's
// telemetry is gathered to rank 0, which does the writing:
//
//	midas -graph g.txt -mode path -k 12 -obs -trace out.json
//
// -obs-addr serves the live telemetry plane while the run is in
// flight: Prometheus text-format /metrics, rank liveness on /healthz,
// and the pprof profiler on /debug/pprof/. The endpoint stays up until
// the process exits:
//
//	midas -graph g.txt -mode path -k 12 -obs-addr :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	midas "github.com/midas-hpc/midas"
)

// cliConfig carries every flag; the zero value plus a graph path is a
// sequential path run with library defaults.
type cliConfig struct {
	graphPath string
	mode      string // path | tree | scan | maxweight | motif
	k         int
	tplPath   string
	weights   string
	labels    string
	motif     string
	statName  string
	alpha     float64
	seed      uint64
	eps       float64
	extract   bool
	zmax      int64

	rank, size int // rank < 0 means sequential
	root       string
	n1, n2     int

	tracePath string // write Chrome trace_event JSON here ("" = off)
	obs       bool   // print the telemetry summary table
	obsOut    string // write the summary to this file instead of stdout
	obsAddr   string // serve /metrics, /healthz, /debug/pprof/ here ("" = off)

	faultSpec     string // fault-injection schedule ("" = off); docs/FAULTS.md
	chaosRanks    int    // world size for the in-process chaos run
	chaosAttempts int    // detection re-runs before giving up on faults
}

func main() {
	// Subcommand dispatch (currently just `midas store ...`); everything
	// else is the classic flag-driven detection CLI.
	if len(os.Args) > 1 && os.Args[1] == "store" {
		if err := runStore(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "midas:", err)
			os.Exit(1)
		}
		return
	}
	var cfg cliConfig
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list graph file (required)")
	flag.StringVar(&cfg.mode, "mode", "path", "path | tree | scan | maxweight | motif")
	flag.IntVar(&cfg.k, "k", 8, "subgraph size")
	flag.StringVar(&cfg.tplPath, "template", "", "tree template edge list (mode=tree)")
	flag.StringVar(&cfg.weights, "weights", "", "vertex weights file 'v w [b]' (mode=scan)")
	flag.StringVar(&cfg.labels, "labels", "", "vertex colors file 'v c' (mode=motif)")
	flag.StringVar(&cfg.motif, "motif", "", "color multiset 'c:m,c:m' — color c at least m times (mode=motif; empty = any connected k-subgraph)")
	flag.StringVar(&cfg.statName, "stat", "kulldorff", "kulldorff | elevated | berkjones (mode=scan)")
	flag.Float64Var(&cfg.alpha, "alpha", 0.05, "Berk-Jones significance level")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.Float64Var(&cfg.eps, "epsilon", 0.05, "failure probability bound")
	flag.BoolVar(&cfg.extract, "extract", false, "recover the witness vertices, not just yes/no")
	flag.Int64Var(&cfg.zmax, "zmax", 0, "scan weight cap (0 = total weight, capped)")
	flag.IntVar(&cfg.rank, "rank", -1, "distributed rank (-1 = sequential)")
	flag.IntVar(&cfg.size, "size", 0, "distributed world size")
	flag.StringVar(&cfg.root, "root", "", "rank-0 rendezvous address host:port")
	flag.IntVar(&cfg.n1, "n1", 0, "graph parts per phase group (0 = world size)")
	flag.IntVar(&cfg.n2, "n2", 64, "iterations per batch")
	flag.StringVar(&cfg.tracePath, "trace", "", "write Chrome trace_event JSON timeline to this file")
	flag.BoolVar(&cfg.obs, "obs", false, "print the per-rank counter/timing summary after the run")
	flag.StringVar(&cfg.obsOut, "obs-out", "", "write the telemetry summary to this file instead of stdout (implies -obs)")
	flag.StringVar(&cfg.obsAddr, "obs-addr", "", "serve live telemetry (/metrics, /healthz, /debug/pprof/) on this host:port (':0' picks a free port)")
	flag.StringVar(&cfg.faultSpec, "fault-spec", "", "inject faults, e.g. 'drop=0.05,delay=2ms,seed=42' (docs/FAULTS.md)")
	flag.IntVar(&cfg.chaosRanks, "chaos-ranks", 4, "in-process world size for -fault-spec runs (sequential mode)")
	flag.IntVar(&cfg.chaosAttempts, "chaos-attempts", 3, "detection re-runs before giving up on injected faults")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "midas:", err)
		os.Exit(1)
	}
}

func (c cliConfig) observing() bool {
	return c.obs || c.tracePath != "" || c.obsOut != "" || c.obsAddr != ""
}

// obsServerStarted, when non-nil, receives the bound address of the
// -obs-addr endpoint as soon as it is serving (test hook).
var obsServerStarted func(addr string)

// announceObs prints where the live endpoint landed. The server is
// deliberately never closed: it answers until the process exits, so
// operators (and post-run scrapes) can still read final metrics after
// a short detection finishes.
func announceObs(srv *midas.ObsServer) {
	fmt.Printf("obs: serving /metrics, /healthz, /debug/pprof/ on http://%s\n", srv.Addr())
	if obsServerStarted != nil {
		obsServerStarted(srv.Addr())
	}
}

// emitObs writes the requested telemetry outputs for the gathered
// snapshots (called once, on the rank that holds them).
func (c cliConfig) emitObs(snaps ...midas.ObsSnapshot) error {
	if c.obsOut != "" {
		f, err := os.Create(c.obsOut)
		if err != nil {
			return err
		}
		if err := midas.WriteObsSummary(f, snaps...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("obs: wrote summary to %s\n", c.obsOut)
	} else if c.obs {
		if err := midas.WriteObsSummary(os.Stdout, snaps...); err != nil {
			return err
		}
	}
	if c.tracePath != "" {
		f, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		if err := midas.WriteObsTrace(f, snaps...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", c.tracePath)
	}
	return nil
}

func run(cfg cliConfig) error {
	if cfg.graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := midas.LoadGraph(cfg.graphPath)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	if cfg.weights != "" {
		if err := midas.LoadWeights(cfg.weights, g); err != nil {
			return err
		}
	}
	if cfg.labels != "" {
		if err := midas.LoadLabels(cfg.labels, g); err != nil {
			return err
		}
	}

	if cfg.rank >= 0 {
		return runDistributed(g, cfg)
	}
	if cfg.faultSpec != "" {
		return runChaos(g, cfg)
	}

	opt := midas.Options{Seed: cfg.seed, Epsilon: cfg.eps, N2: cfg.n2}
	if cfg.observing() {
		opt.Obs = midas.NewObsRecorder()
	}
	if cfg.obsAddr != "" {
		srv, err := midas.ServeObs(cfg.obsAddr, opt.Obs)
		if err != nil {
			return err
		}
		announceObs(srv)
	}
	switch cfg.mode {
	case "path":
		found, err := midas.FindPath(g, cfg.k, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%d-path: %v\n", cfg.k, found)
		if found && cfg.extract {
			path, err := midas.FindPathVertices(g, cfg.k, midas.Options{Seed: cfg.seed, Epsilon: 1e-6, N2: cfg.n2})
			if err != nil {
				return err
			}
			fmt.Printf("witness: %v\n", path)
		}
	case "tree":
		if cfg.tplPath == "" {
			return fmt.Errorf("mode=tree needs -template")
		}
		tpl, err := midas.LoadTemplate(cfg.tplPath)
		if err != nil {
			return err
		}
		found, err := midas.FindTree(g, tpl, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%d-tree: %v\n", tpl.K(), found)
		if found && cfg.extract {
			emb, err := midas.FindTreeVertices(g, tpl, midas.Options{Seed: cfg.seed, Epsilon: 1e-6, N2: cfg.n2})
			if err != nil {
				return err
			}
			fmt.Printf("embedding (by template vertex): %v\n", emb)
		}
	case "maxweight":
		w, found, err := midas.MaxWeightPath(g, cfg.k, opt)
		if err != nil {
			return err
		}
		if !found {
			fmt.Printf("no %d-path exists\n", cfg.k)
			break
		}
		fmt.Printf("maximum %d-path weight: %d\n", cfg.k, w)
	case "motif":
		spec, err := parseMotif(cfg.k, cfg.motif)
		if err != nil {
			return err
		}
		found, err := midas.FindMotif(g, spec, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%d-motif %s: %v\n", cfg.k, motifString(cfg.motif), found)
	case "scan":
		stat, err := pickStat(cfg.statName, cfg.alpha)
		if err != nil {
			return err
		}
		res, err := midas.DetectAnomaly(g, cfg.k, stat, opt)
		if err != nil {
			return err
		}
		if !res.Feasible {
			fmt.Println("no anomalous cluster found")
			break
		}
		fmt.Printf("best cluster: score=%.4f size=%d weight=%d (stat=%s)\n", res.Score, res.Size, res.Weight, stat.Name())
		if cfg.extract {
			set, err := midas.ExtractAnomaly(g, res.Size, res.Weight, midas.Options{Seed: cfg.seed, Epsilon: 1e-6, N2: cfg.n2})
			if err != nil {
				return err
			}
			fmt.Printf("cluster vertices: %v\n", set)
		}
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
	if opt.Obs != nil {
		return cfg.emitObs(opt.Obs.Snapshot())
	}
	return nil
}

// runChaos runs the detection on an in-process chaos world: the graph
// is partitioned over -chaos-ranks goroutine ranks whose transports
// inject the -fault-spec schedule, and the whole detection re-runs (up
// to -chaos-attempts times) when an unmasked fault kills it. Only
// mode=path supports resilient re-running.
func runChaos(g *midas.Graph, cfg cliConfig) error {
	if cfg.mode != "path" {
		return fmt.Errorf("-fault-spec chaos runs support mode=path only (got %q)", cfg.mode)
	}
	spec, err := midas.ParseFaultSpec(cfg.faultSpec)
	if err != nil {
		return err
	}
	ccfg := midas.ClusterConfig{N1: cfg.n1, N2: cfg.n2, Seed: cfg.seed, Epsilon: cfg.eps}
	var setup func(c *midas.Cluster)
	var recMu sync.Mutex
	var recs []*midas.ObsRecorder
	if cfg.observing() {
		setup = func(c *midas.Cluster) {
			rec := c.EnableObs()
			recMu.Lock()
			recs = append(recs, rec)
			recMu.Unlock()
		}
	}
	if cfg.obsAddr != "" {
		// Chaos worlds are rebuilt per retry attempt, so the endpoint
		// snapshots the latest world's recorders dynamically.
		srv, err := midas.ServeObsSource(cfg.obsAddr, func() []midas.ObsSnapshot {
			recMu.Lock()
			rs := recs
			if len(rs) > cfg.chaosRanks {
				rs = rs[len(rs)-cfg.chaosRanks:]
			}
			rs = append([]*midas.ObsRecorder(nil), rs...)
			recMu.Unlock()
			out := make([]midas.ObsSnapshot, 0, len(rs))
			for _, r := range rs {
				out = append(out, r.LiteSnapshot())
			}
			return out
		})
		if err != nil {
			return err
		}
		announceObs(srv)
	}
	found, clusters, report, err := midas.ChaosFindPath(cfg.chaosRanks, spec, g, cfg.k, ccfg, cfg.chaosAttempts, setup)
	fmt.Printf("fault schedule: %s\n", spec)
	if err != nil {
		return fmt.Errorf("chaos run failed after %s: %w", report, err)
	}
	fmt.Printf("%d-path: %v (chaos world of %d ranks, %s)\n", cfg.k, found, cfg.chaosRanks, report)
	for _, fail := range report.Failures {
		fmt.Printf("retried after: %v\n", fail)
	}
	if cfg.observing() {
		return cfg.emitObs(midas.ClusterSnapshots(clusters)...)
	}
	return nil
}

func runDistributed(g *midas.Graph, cfg cliConfig) error {
	if cfg.size < 1 || cfg.root == "" {
		return fmt.Errorf("distributed mode needs -size and -root")
	}
	opts := midas.TCPOptions{}
	if cfg.faultSpec != "" {
		spec, err := midas.ParseFaultSpec(cfg.faultSpec)
		if err != nil {
			return err
		}
		opts.Fault = &spec
	}
	c, err := midas.ConnectTCPOpts(cfg.rank, cfg.size, cfg.root, opts)
	if err != nil {
		return err
	}
	defer c.Close()
	if cfg.observing() {
		rec := c.EnableObs()
		if cfg.obsAddr != "" {
			// One endpoint per OS process, serving this rank's recorder.
			srv, err := midas.ServeObs(cfg.obsAddr, rec)
			if err != nil {
				return err
			}
			announceObs(srv)
		}
	}
	ccfg := midas.ClusterConfig{N1: cfg.n1, N2: cfg.n2, Seed: cfg.seed, Epsilon: cfg.eps}
	switch cfg.mode {
	case "path":
		found, err := midas.DistributedFindPath(c, g, cfg.k, ccfg)
		if err != nil {
			return err
		}
		if cfg.rank == 0 {
			fmt.Printf("%d-path: %v (world of %d ranks)\n", cfg.k, found, cfg.size)
		}
	case "tree":
		tpl, err := midas.LoadTemplate(cfg.tplPath)
		if err != nil {
			return err
		}
		found, err := midas.DistributedFindTree(c, g, tpl, ccfg)
		if err != nil {
			return err
		}
		if cfg.rank == 0 {
			fmt.Printf("%d-tree: %v (world of %d ranks)\n", tpl.K(), found, cfg.size)
		}
	case "motif":
		spec, err := parseMotif(cfg.k, cfg.motif)
		if err != nil {
			return err
		}
		found, err := midas.DistributedFindMotif(c, g, spec, ccfg)
		if err != nil {
			return err
		}
		if cfg.rank == 0 {
			fmt.Printf("%d-motif %s: %v (world of %d ranks)\n", cfg.k, motifString(cfg.motif), found, cfg.size)
		}
	case "scan":
		zmax := cfg.zmax
		if zmax <= 0 {
			zmax = g.TotalWeight()
		}
		ccfg.K = cfg.k
		feas, err := midas.DistributedScanTable(c, g, midas.ScanClusterConfig{Config: ccfg, ZMax: zmax})
		if err != nil {
			return err
		}
		if cfg.rank == 0 {
			res := midas.MaximizeScanTable(feas, midas.KulldorffPoisson{})
			fmt.Printf("best cluster: %+v\n", res)
		}
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
	// The telemetry gather is a collective, so every rank joins it
	// unconditionally — gating it on -obs would deadlock the observing
	// ranks whenever the flag isn't passed uniformly (non-observing
	// ranks would exit while rank 0 blocks waiting for their
	// snapshots). Snapshots are valid without a recorder (they still
	// carry the traffic stats), and the gather is a few KB.
	snaps := c.GatherObsSnapshots(0)
	if cfg.rank == 0 && cfg.observing() {
		return cfg.emitObs(snaps...)
	}
	return nil
}

// parseMotif builds a MotifSpec from the -motif grammar "c:m,c:m"
// (color c required at least m times; empty = unconstrained).
func parseMotif(k int, text string) (*midas.MotifSpec, error) {
	spec := &midas.MotifSpec{K: k, Counts: map[int32]int{}}
	if text != "" {
		for _, part := range strings.Split(text, ",") {
			cs, ms, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				return nil, fmt.Errorf("-motif entry %q: want 'color:count'", part)
			}
			c, err := strconv.ParseInt(cs, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("-motif color %q: %v", cs, err)
			}
			m, err := strconv.Atoi(ms)
			if err != nil {
				return nil, fmt.Errorf("-motif count %q: %v", ms, err)
			}
			spec.Counts[int32(c)] = m
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

func motifString(text string) string {
	if text == "" {
		return "(unconstrained)"
	}
	return "{" + text + "}"
}

func pickStat(name string, alpha float64) (midas.Statistic, error) {
	switch name {
	case "kulldorff":
		return midas.KulldorffPoisson{}, nil
	case "elevated":
		return midas.ElevatedMean{}, nil
	case "berkjones":
		return midas.BerkJones{Alpha: alpha}, nil
	default:
		return nil, fmt.Errorf("unknown statistic %q", name)
	}
}
