// Command doccheck verifies the relative links in the repo's Markdown
// documentation. Every `[text](target)` whose target is neither an
// absolute URL nor a bare #fragment must resolve to an existing file
// (or directory) relative to the Markdown file that contains it. It is
// the CI gate behind `make doc-links`: guide cross-references rot
// silently when files move, and the docs index in README.md links
// every guide, so one dead link means a reader hits a 404.
//
// Usage:
//
//	doccheck [-root .] [file.md ...]
//
// With no file arguments it checks README.md plus every *.md under
// docs/. Exit status 1 if any link is dead, listing each as
// file.md: [text](target): resolved-path does not exist.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to resolve default files against")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = defaultFiles(*root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	var dead []string
	for _, f := range files {
		d, err := CheckFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		dead = append(dead, d...)
	}
	if len(dead) > 0 {
		for _, l := range dead {
			fmt.Println("DEAD LINK:", l)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: OK (%d files)\n", len(files))
}

// defaultFiles returns README.md plus every Markdown file under docs/.
func defaultFiles(root string) ([]string, error) {
	files := []string{filepath.Join(root, "README.md")}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	return append(files, docs...), nil
}

// linkRe matches inline Markdown links. Reference-style links and
// autolinks are rare in this repo and not checked.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// CheckFile returns one line per dead relative link in path. A link is
// checked when it is not an absolute URL (scheme://... or mailto:) and
// not a pure fragment; the #fragment suffix, if any, is stripped
// before resolving against the file's directory.
func CheckFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var dead []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if skipTarget(target) {
			continue
		}
		rel := target
		if i := strings.IndexByte(rel, '#'); i >= 0 {
			rel = rel[:i]
		}
		if rel == "" {
			continue
		}
		resolved := filepath.Join(dir, filepath.FromSlash(rel))
		if _, err := os.Stat(resolved); err != nil {
			dead = append(dead, fmt.Sprintf("%s: %s: %s does not exist", path, m[0], resolved))
		}
	}
	return dead, nil
}

// skipTarget reports whether a link target is outside doccheck's
// scope: absolute URLs, mailto links, and in-page fragments.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}
