package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFileCleanAndDead(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "A.md"), "see [B](B.md) and [up](../README.md) and [gone](missing.md)")
	write(t, filepath.Join(dir, "docs", "B.md"), "ok")
	write(t, filepath.Join(dir, "README.md"), "ok")

	dead, err := CheckFile(filepath.Join(dir, "docs", "A.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 {
		t.Fatalf("want exactly the missing.md link flagged, got %v", dead)
	}
	if !strings.Contains(dead[0], "missing.md") {
		t.Fatalf("finding does not name the dead target: %q", dead[0])
	}
}

func TestCheckFileSkipsURLsFragmentsAndAnchors(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "doc.md"),
		"[web](https://example.com/x) [mail](mailto:a@b.c) [frag](#section) [anchored](other.md#part)")
	write(t, filepath.Join(dir, "other.md"), "ok")

	dead, err := CheckFile(filepath.Join(dir, "doc.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 0 {
		t.Fatalf("out-of-scope links flagged: %v", dead)
	}
}

func TestCheckFileDirectoryTargetIsAlive(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "doc.md"), "[examples](examples/)")
	if err := os.MkdirAll(filepath.Join(dir, "examples"), 0o755); err != nil {
		t.Fatal(err)
	}
	dead, err := CheckFile(filepath.Join(dir, "doc.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 0 {
		t.Fatalf("directory link flagged: %v", dead)
	}
}

// The repo's own documentation must be link-clean — this is the same
// set of files `make doc-links` checks in CI.
func TestRepoDocsHaveNoDeadLinks(t *testing.T) {
	files, err := defaultFiles("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected README.md plus docs/*.md, got %v", files)
	}
	var dead []string
	for _, f := range files {
		d, err := CheckFile(f)
		if err != nil {
			t.Fatal(err)
		}
		dead = append(dead, d...)
	}
	if len(dead) > 0 {
		t.Fatalf("dead documentation links:\n%s", strings.Join(dead, "\n"))
	}
}
