// Command midas-bench regenerates the data behind every table and
// figure of the paper's evaluation section (see DESIGN.md §5 for the
// experiment index and EXPERIMENTS.md for recorded results).
//
//	midas-bench -exp all
//	midas-bench -exp fig11 -scale 1000 -kmax 18
//	midas-bench -exp fig3,fig6 -n 64 -ks 6,10
//	midas-bench -exp profile -n 8 -trace profile.json
//	midas-bench -json report.json -scale 300 -n 4 -ks 4,6
//
// -json skips the human tables and instead runs the standard report
// suite (every dataset class × every -ks size), writing a versioned
// machine-readable JSON report — modeled makespan, traffic, telemetry
// counters, and latency-histogram quantiles per configuration.
// BENCH_baseline.json at the repo root is a committed reference report.
//
// The profile experiment runs with observability enabled and reports
// per-rank measured counters (DP ops, halo traffic) next to the modeled
// makespan; -trace additionally writes a Chrome trace_event timeline of
// the final configuration, and -reps repeats each configuration with
// telemetry resets between repetitions (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/midas-hpc/midas/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiments: table2,fig3..fig13,scaling-k,scaling-n,ablation-n2,ablation-gray,ablation-variant,ablation-partitioner,ablation-fingerprints,all")
		scale   = flag.Int("scale", 2000, "dataset vertex count")
		n       = flag.Int("n", 32, "world size for distributed experiments")
		ks      = flag.String("ks", "6,10", "subgraph sizes")
		kmax    = flag.Int("kmax", 12, "largest k for fig11 / scaling-k")
		seed    = flag.Uint64("seed", 1, "base seed")
		reps    = flag.Int("reps", 1, "repetitions per configuration (telemetry is reset between them)")
		trace   = flag.String("trace", "", "write the profile experiment's Chrome trace_event timeline to this file")
		jsonOut = flag.String("json", "", "write the machine-readable bench report to this file (overrides -exp)")
	)
	flag.Parse()
	p := harness.Params{Scale: *scale, N: *n, KMax: *kmax, Seed: *seed, Reps: *reps, TracePath: *trace}
	for _, s := range strings.Split(*ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "midas-bench: bad -ks entry %q: %v\n", s, err)
			os.Exit(1)
		}
		p.Ks = append(p.Ks, k)
	}
	if *jsonOut != "" {
		if err := runJSON(*jsonOut, p); err != nil {
			fmt.Fprintln(os.Stderr, "midas-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *exp, p); err != nil {
		fmt.Fprintln(os.Stderr, "midas-bench:", err)
		os.Exit(1)
	}
}

// runJSON runs the standard report suite and writes the versioned
// machine-readable report (schema harness.BenchSchemaVersion).
func runJSON(path string, p harness.Params) error {
	rep, err := harness.BenchReport(p)
	if err != nil {
		return err
	}
	if err := harness.WriteReport(path, rep); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s (%s, %d runs)\n", path, rep.Schema, len(rep.Runs))
	return nil
}

func run(w io.Writer, exps string, p harness.Params) error {
	registry := []struct {
		name string
		fn   func(io.Writer, harness.Params) error
	}{
		{"table2", harness.Table2},
		{"fig3", func(w io.Writer, p harness.Params) error { return harness.FigPartitionSize(w, "random", false, p) }},
		{"fig4", func(w io.Writer, p harness.Params) error { return harness.FigPartitionSize(w, "orkut", false, p) }},
		{"fig5", func(w io.Writer, p harness.Params) error { return harness.FigPartitionSize(w, "miami", false, p) }},
		{"fig6", func(w io.Writer, p harness.Params) error { return harness.FigPartitionSize(w, "random", true, p) }},
		{"fig7", func(w io.Writer, p harness.Params) error { return harness.FigPartitionSize(w, "orkut", true, p) }},
		{"fig8", func(w io.Writer, p harness.Params) error { return harness.FigPartitionSize(w, "miami", true, p) }},
		{"fig9", harness.Fig9},
		{"fig10", harness.Fig10},
		{"fig11", harness.Fig11},
		{"fig12", harness.Fig12},
		{"fig13", harness.Fig13},
		{"profile", harness.ProfileBreakdown},
		{"scaling-k", harness.ScalingK},
		{"scaling-n", harness.ScalingN},
		{"ablation-n2", harness.AblationN2},
		{"ablation-gray", harness.AblationGray},
		{"ablation-variant", harness.AblationVariant},
		{"ablation-partitioner", harness.AblationPartitioner},
		{"ablation-fingerprints", harness.AblationFingerprints},
	}
	want := map[string]bool{}
	all := false
	for _, e := range strings.Split(exps, ",") {
		e = strings.TrimSpace(e)
		if e == "all" {
			all = true
			continue
		}
		want[e] = true
	}
	known := map[string]bool{}
	for _, r := range registry {
		known[r.name] = true
	}
	for e := range want {
		if !known[e] {
			return fmt.Errorf("unknown experiment %q", e)
		}
	}
	ran := 0
	for _, r := range registry {
		if all || want[r.name] {
			if err := r.fn(w, p); err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			ran++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiments selected")
	}
	return nil
}
