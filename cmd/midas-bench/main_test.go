package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/midas-hpc/midas/internal/harness"
)

func tinyParams() harness.Params {
	return harness.Params{Scale: 150, N: 2, Ks: []int{4}, KMax: 5, Seed: 1}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", tinyParams()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig13, ablation-fingerprints", tinyParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 13") || !strings.Contains(out, "fingerprint") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", tinyParams()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(&buf, "", tinyParams()); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// TestRunJSONReport is the acceptance check for `midas-bench -json`:
// the file must load back under the current schema with one run per
// dataset × k.
func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := runJSON(path, tinyParams()); err != nil {
		t.Fatal(err)
	}
	rep, err := harness.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != harness.BenchSchemaVersion || len(rep.Runs) != 3 {
		t.Fatalf("report = schema %q, %d runs", rep.Schema, len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Counters["dp-ops"] == 0 || len(r.Hists) == 0 {
			t.Fatalf("run missing telemetry: %+v", r)
		}
	}
}
