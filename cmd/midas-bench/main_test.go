package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/midas-hpc/midas/internal/harness"
)

func tinyParams() harness.Params {
	return harness.Params{Scale: 150, N: 2, Ks: []int{4}, KMax: 5, Seed: 1}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", tinyParams()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig13, ablation-fingerprints", tinyParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 13") || !strings.Contains(out, "fingerprint") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", tinyParams()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(&buf, "", tinyParams()); err == nil {
		t.Fatal("empty selection accepted")
	}
}
