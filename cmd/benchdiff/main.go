// Command benchdiff compares two midas-bench JSON reports and fails on
// regressions of the deterministic (counted) quantities. It is the CI
// gate behind `make bench-compare`: wall-clock and modeled times vary
// by host and are reported but never gated; message counts, bytes and
// DP-op counters are pure functions of the run parameters, so any
// increase beyond the tolerance is a real algorithmic regression.
//
// Usage:
//
//	benchdiff [-tol 0.10] baseline.json new.json
//
// Exit status 1 on any finding:
//   - a run present in the baseline is missing from the new report,
//   - the boolean answer of a run changed,
//   - a counted field (msgs, bytes, dp-ops, halo-msgs, halo-bytes,
//     rounds, phases, levels) grew by more than -tol (default 10%),
//   - a batch record's occupancy dropped, or its amortized per-query
//     msgs / dp-ops grew by more than -tol,
//   - a motif record's sieve answer changed, or its sieve dp-ops or
//     the FASCIA table footprint grew by more than -tol,
//   - a cluster record's answer changed, or its routing/transparency/
//     handoff booleans (forwarded, forwardOK, handoffOK) went false.
//
// cells-skipped, the batch speedup ratios, the motif wall-time ratio
// and the kernel throughput records are informational: skips elide
// work the analytic dp-ops counter still models, speedups fold in the
// α–β model constants, wall time and kernel MB/s depend on the host
// CPU.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/midas-hpc/midas/internal/harness"
)

func main() {
	tol := flag.Float64("tol", 0.10, "allowed fractional increase of counted fields")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol 0.10] baseline.json new.json")
		os.Exit(2)
	}
	oldRep, err := harness.ReadReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := harness.ReadReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	findings, info := Compare(oldRep, newRep, *tol)
	for _, line := range info {
		fmt.Println(line)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println("REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

// countedFields are the RunRecord counters gated by tolerance; each is
// deterministic in the run parameters (see harness.BenchReport).
var countedFields = []string{"dp-ops", "halo-msgs", "halo-bytes", "rounds", "phases", "levels"}

// Compare diffs two reports and returns the gating findings plus
// informational lines. Split from main for testing.
func Compare(oldRep, newRep harness.Report, tol float64) (findings, info []string) {
	index := func(rep harness.Report) map[string]harness.RunRecord {
		m := make(map[string]harness.RunRecord, len(rep.Runs))
		for _, r := range rep.Runs {
			m[fmt.Sprintf("%s/k=%d/n=%d", r.Dataset, r.K, r.N)] = r
		}
		return m
	}
	oldRuns, newRuns := index(oldRep), index(newRep)

	gate := func(key, field string, o, n int64) {
		if o == n {
			return
		}
		change := "∞"
		if o != 0 {
			change = fmt.Sprintf("%+.1f%%", 100*(float64(n)-float64(o))/float64(o))
		}
		line := fmt.Sprintf("%s %s: %d → %d (%s)", key, field, o, n, change)
		if float64(n) > float64(o)*(1+tol) {
			findings = append(findings, line)
		} else {
			info = append(info, line)
		}
	}

	for _, o := range sortedRuns(oldRuns) {
		n, ok := newRuns[o.key]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: run missing from new report", o.key))
			continue
		}
		if o.rec.Answer != n.Answer {
			findings = append(findings, fmt.Sprintf("%s: answer changed %v → %v", o.key, o.rec.Answer, n.Answer))
		}
		gate(o.key, "msgs", o.rec.Msgs, n.Msgs)
		gate(o.key, "bytes", o.rec.Bytes, n.Bytes)
		for _, f := range countedFields {
			gate(o.key, f, o.rec.Counters[f], n.Counters[f])
		}
		if os, ns := o.rec.Counters["cells-skipped"], n.Counters["cells-skipped"]; os != ns {
			info = append(info, fmt.Sprintf("%s cells-skipped: %d → %d (informational)", o.key, os, ns))
		}
	}
	findings, info = compareBatches(oldRep, newRep, tol, findings, info)
	findings, info = compareMotifs(oldRep, newRep, tol, findings, info)
	findings, info = compareStores(oldRep, newRep, tol, findings, info)
	findings, info = compareClusters(oldRep, newRep, findings, info)
	for _, k := range newRep.Kernels {
		info = append(info, fmt.Sprintf("kernel %s: %.0f MB/s (informational)", k.Name, k.MBPerSec))
	}
	return findings, info
}

// compareBatches gates the batched-query amortization records: the
// batch occupancy must not shrink, and the amortized per-query message
// and DP-op counts (deterministic in the parameters) must not grow
// beyond tolerance. The speedup ratio is informational — it folds in
// the α–β model constants.
func compareBatches(oldRep, newRep harness.Report, tol float64, findings, info []string) ([]string, []string) {
	index := func(recs []harness.BatchRecord) map[string]harness.BatchRecord {
		m := make(map[string]harness.BatchRecord, len(recs))
		for _, b := range recs {
			m[fmt.Sprintf("batch %s/k=%d/n=%d", b.Dataset, b.K, b.N)] = b
		}
		return m
	}
	oldB, newB := index(oldRep.Batches), index(newRep.Batches)
	keys := make([]string, 0, len(oldB))
	for k := range oldB {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	gateF := func(key, field string, o, n float64) {
		if o == n {
			return
		}
		change := "∞"
		if o != 0 {
			change = fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
		}
		line := fmt.Sprintf("%s %s: %.1f → %.1f (%s)", key, field, o, n, change)
		if n > o*(1+tol) {
			findings = append(findings, line)
		} else {
			info = append(info, line)
		}
	}
	for _, key := range keys {
		o := oldB[key]
		n, ok := newB[key]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: batch record missing from new report", key))
			continue
		}
		if n.Lanes < o.Lanes {
			findings = append(findings, fmt.Sprintf("%s occupancy: %d → %d lanes", key, o.Lanes, n.Lanes))
		}
		gateF(key, "per-query-msgs", o.PerQueryMsgs, n.PerQueryMsgs)
		gateF(key, "per-query-dp-ops", o.PerQueryDPOps, n.PerQueryDPOps)
		info = append(info, fmt.Sprintf("%s speedup: %.2fx → %.2fx (informational)", key, o.PerQuerySpeedup, n.PerQuerySpeedup))
	}
	return findings, info
}

// compareMotifs gates the motif-vs-FASCIA records: the sieve's answer
// and DP-op count and FASCIA's table footprint are deterministic in the
// parameters, so a changed answer, missing record, or counted growth
// beyond tolerance is a finding. FASCIA's answer under its capped
// coloring budget and the wall-time ratio between the engines are
// informational — the former is Monte Carlo by design, the latter is
// host-dependent.
func compareMotifs(oldRep, newRep harness.Report, tol float64, findings, info []string) ([]string, []string) {
	index := func(recs []harness.MotifRecord) map[string]harness.MotifRecord {
		m := make(map[string]harness.MotifRecord, len(recs))
		for _, r := range recs {
			con := r.Constraint
			if con == "" {
				con = "any"
			}
			m[fmt.Sprintf("motif %s/k=%d/%s", r.Dataset, r.K, con)] = r
		}
		return m
	}
	oldM, newM := index(oldRep.Motifs), index(newRep.Motifs)
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	gate := func(key, field string, o, n int64) {
		if o == n {
			return
		}
		change := "∞"
		if o != 0 {
			change = fmt.Sprintf("%+.1f%%", 100*(float64(n)-float64(o))/float64(o))
		}
		line := fmt.Sprintf("%s %s: %d → %d (%s)", key, field, o, n, change)
		if float64(n) > float64(o)*(1+tol) {
			findings = append(findings, line)
		} else {
			info = append(info, line)
		}
	}
	for _, key := range keys {
		o := oldM[key]
		n, ok := newM[key]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: motif record missing from new report", key))
			continue
		}
		if o.MidasFound != n.MidasFound {
			findings = append(findings, fmt.Sprintf("%s: sieve answer changed %v → %v", key, o.MidasFound, n.MidasFound))
		}
		gate(key, "midas-dp-ops", o.MidasDPOps, n.MidasDPOps)
		gate(key, "fascia-table-bytes", o.FasciaTableBytes, n.FasciaTableBytes)
		if o.FasciaFound != n.FasciaFound {
			info = append(info, fmt.Sprintf("%s: fascia answer changed %v → %v (informational, capped budget)", key, o.FasciaFound, n.FasciaFound))
		}
		if n.MidasWallSecs > 0 {
			info = append(info, fmt.Sprintf("%s fascia/sieve wall ratio: %.2fx (informational)", key, n.FasciaWallSecs/n.MidasWallSecs))
		}
	}
	return findings, info
}

// compareStores gates the graph-store cold-start records: the v2 file
// size is a pure function of the graph shape (growth beyond tolerance
// is format bloat), and the two correctness booleans — the mmap'd
// graph digest-matching its source, the partition artifact
// round-tripping bit-identically — must stay true. The cold-start
// milliseconds are host wall time, reported but never gated.
func compareStores(oldRep, newRep harness.Report, tol float64, findings, info []string) ([]string, []string) {
	index := func(recs []harness.StoreRecord) map[string]harness.StoreRecord {
		m := make(map[string]harness.StoreRecord, len(recs))
		for _, r := range recs {
			m["store "+r.Dataset] = r
		}
		return m
	}
	oldS, newS := index(oldRep.Stores), index(newRep.Stores)
	keys := make([]string, 0, len(oldS))
	for k := range oldS {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, key := range keys {
		o := oldS[key]
		n, ok := newS[key]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: store record missing from new report", key))
			continue
		}
		if o.FileBytes != n.FileBytes {
			line := fmt.Sprintf("%s file-bytes: %d → %d", key, o.FileBytes, n.FileBytes)
			if float64(n.FileBytes) > float64(o.FileBytes)*(1+tol) {
				findings = append(findings, line)
			} else {
				info = append(info, line)
			}
		}
		if o.MapDigestOK && !n.MapDigestOK {
			findings = append(findings, fmt.Sprintf("%s: mapped graph no longer digest-identical to its source", key))
		}
		if o.PartReused && !n.PartReused {
			findings = append(findings, fmt.Sprintf("%s: partition artifact no longer round-trips bit-identically", key))
		}
		info = append(info, fmt.Sprintf("%s cold-start ms: parse %.1f / binary %.1f / mmap %.2f (informational)",
			key, n.ParseMillis, n.ReadMillis, n.MapMillis))
		info = append(info, fmt.Sprintf("%s partition ms: derive %.1f / load %.2f (informational)",
			key, n.PartDeriveMillis, n.PartLoadMillis))
	}
	return findings, info
}

// compareClusters gates the fleet records (docs/CLUSTER.md): the query
// answer is deterministic in the graph and parameters, and the three
// behavior booleans — the non-owner front forwarding to the owner, the
// forwarded answer matching the owner-local one byte for byte, the
// owner adopting the shard via a counted store handoff — must stay
// true. The hop, handoff and local wall times are host-dependent,
// reported but never gated. No -tol here: every gated field is exact.
func compareClusters(oldRep, newRep harness.Report, findings, info []string) ([]string, []string) {
	index := func(recs []harness.ClusterRecord) map[string]harness.ClusterRecord {
		m := make(map[string]harness.ClusterRecord, len(recs))
		for _, r := range recs {
			m[fmt.Sprintf("cluster %s/k=%d", r.Dataset, r.K)] = r
		}
		return m
	}
	oldC, newC := index(oldRep.Clusters), index(newRep.Clusters)
	keys := make([]string, 0, len(oldC))
	for k := range oldC {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, key := range keys {
		o := oldC[key]
		n, ok := newC[key]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: cluster record missing from new report", key))
			continue
		}
		if o.Answer != n.Answer {
			findings = append(findings, fmt.Sprintf("%s: answer changed %v → %v", key, o.Answer, n.Answer))
		}
		if o.Forwarded && !n.Forwarded {
			findings = append(findings, fmt.Sprintf("%s: the non-owner front no longer forwards to the owner", key))
		}
		if o.ForwardOK && !n.ForwardOK {
			findings = append(findings, fmt.Sprintf("%s: forwarded answer no longer identical to the owner-local one", key))
		}
		if o.HandoffOK && !n.HandoffOK {
			findings = append(findings, fmt.Sprintf("%s: owner no longer adopts the shard via store handoff", key))
		}
		info = append(info, fmt.Sprintf("%s wall ms: local %.1f / forward hop %.2f / handoff %.2f (informational)",
			key, n.LocalMillis, n.ForwardMillis, n.HandoffMillis))
	}
	return findings, info
}

type keyedRun struct {
	key string
	rec harness.RunRecord
}

// sortedRuns returns runs in a deterministic order so output is stable.
func sortedRuns(m map[string]harness.RunRecord) []keyedRun {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]keyedRun, len(keys))
	for i, k := range keys {
		out[i] = keyedRun{key: k, rec: m[k]}
	}
	return out
}
