package main

import (
	"strings"
	"testing"

	"github.com/midas-hpc/midas/internal/harness"
)

func mkReport(runs ...harness.RunRecord) harness.Report {
	return harness.Report{Schema: harness.BenchSchemaVersion, Runs: runs}
}

func mkRun(dataset string, k int, msgs, dpops int64, answer bool) harness.RunRecord {
	return harness.RunRecord{
		Dataset: dataset, K: k, N: 4, Answer: answer,
		Msgs: msgs, Bytes: msgs * 100,
		Counters: map[string]int64{
			"dp-ops": dpops, "halo-msgs": msgs, "halo-bytes": msgs * 80,
			"rounds": 1, "phases": 4, "levels": int64(k - 1),
		},
	}
}

func TestCompareClean(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true))
	neu := mkReport(mkRun("er", 4, 100, 5000, true))
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("identical reports produced findings: %v", findings)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true))
	neu := mkReport(mkRun("er", 4, 105, 5200, true)) // +5%, +4%
	findings, info := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("within-tolerance growth gated: %v", findings)
	}
	if len(info) == 0 {
		t.Fatal("changed fields produced no informational lines")
	}
}

func TestCompareRegression(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true))
	neu := mkReport(mkRun("er", 4, 150, 5000, true)) // msgs +50%
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) == 0 {
		t.Fatal("50% msgs growth not flagged")
	}
	if !strings.Contains(findings[0], "msgs") {
		t.Fatalf("finding does not name the field: %q", findings[0])
	}
}

func TestCompareAnswerChange(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true))
	neu := mkReport(mkRun("er", 4, 100, 5000, false))
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) == 0 {
		t.Fatal("answer flip not flagged")
	}
	if !strings.Contains(findings[0], "answer") {
		t.Fatalf("finding does not mention the answer: %q", findings[0])
	}
}

func TestCompareMissingRun(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true), mkRun("ba", 6, 200, 9000, false))
	neu := mkReport(mkRun("er", 4, 100, 5000, true))
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "missing") {
		t.Fatalf("missing run not flagged: %v", findings)
	}
}

func TestCompareImprovementNotGated(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true))
	neu := mkReport(mkRun("er", 4, 50, 2500, true)) // halved — an improvement
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("improvement gated as regression: %v", findings)
	}
}

func mkBatch(dataset string, k, lanes int, perQMsgs, perQDPOps, speedup float64) harness.BatchRecord {
	return harness.BatchRecord{
		Dataset: dataset, K: k, N: 16, Lanes: lanes,
		PerQueryMsgs: perQMsgs, PerQueryDPOps: perQDPOps, PerQuerySpeedup: speedup,
	}
}

func TestCompareBatchClean(t *testing.T) {
	old := mkReport(mkRun("er", 4, 100, 5000, true))
	neu := mkReport(mkRun("er", 4, 100, 5000, true))
	old.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 3.7)}
	neu.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 3.7)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("identical batch records produced findings: %v", findings)
	}
}

func TestCompareBatchOccupancyDropGated(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 3.7)}
	neu.Batches = []harness.BatchRecord{mkBatch("random", 4, 2, 2000, 390000, 1.8)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) == 0 {
		t.Fatal("occupancy drop 4 → 2 not flagged")
	}
	if !strings.Contains(findings[0], "occupancy") {
		t.Fatalf("finding does not name occupancy: %q", findings[0])
	}
}

func TestCompareBatchPerQueryGrowthGated(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 3.7)}
	neu.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 3000, 500000, 3.7)} // +50%, +28%
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (msgs, dp-ops), got %v", findings)
	}
	if !strings.Contains(findings[0], "per-query-msgs") || !strings.Contains(findings[1], "per-query-dp-ops") {
		t.Fatalf("findings do not name the amortized fields: %v", findings)
	}
}

func TestCompareBatchSpeedupInformational(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 3.7)}
	neu.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 1.1)} // speedup collapse must not gate
	findings, info := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("speedup change gated: %v", findings)
	}
	var seen bool
	for _, l := range info {
		if strings.Contains(l, "speedup") {
			seen = true
		}
	}
	if !seen {
		t.Fatal("speedup not reported informationally")
	}
}

func TestCompareBatchMissingGated(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Batches = []harness.BatchRecord{mkBatch("random", 4, 4, 2000, 390000, 3.7)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "missing") {
		t.Fatalf("missing batch record not flagged: %v", findings)
	}
}

func mkMotif(k int, constraint string, found bool, dpops int64) harness.MotifRecord {
	return harness.MotifRecord{
		Dataset: "random", Vertices: 300, K: k, Constraint: constraint,
		MidasFound: found, MidasDPOps: dpops,
		FasciaFound: found, FasciaTableBytes: 300 << uint(k),
	}
}

func TestCompareMotifClean(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Motifs = []harness.MotifRecord{mkMotif(4, "", true, 9000), mkMotif(4, "0:2,1:1", true, 9000)}
	neu.Motifs = []harness.MotifRecord{mkMotif(4, "", true, 9000), mkMotif(4, "0:2,1:1", true, 9000)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("identical motif records produced findings: %v", findings)
	}
}

func TestCompareMotifAnswerChangeGated(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Motifs = []harness.MotifRecord{mkMotif(4, "0:2", true, 9000)}
	neu.Motifs = []harness.MotifRecord{mkMotif(4, "0:2", false, 9000)}
	findings, _ := Compare(old, neu, 0.10)
	// Both the sieve answer flip (gated) and the fascia flip
	// (informational) occur; only the former may be a finding.
	if len(findings) != 1 || !strings.Contains(findings[0], "sieve answer") {
		t.Fatalf("sieve answer flip not flagged exactly once: %v", findings)
	}
}

func TestCompareMotifDPOpsGrowthGated(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Motifs = []harness.MotifRecord{mkMotif(4, "", true, 9000)}
	neu.Motifs = []harness.MotifRecord{mkMotif(4, "", true, 14000)} // +55%
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "midas-dp-ops") {
		t.Fatalf("dp-ops growth not flagged: %v", findings)
	}
}

func TestCompareMotifFasciaAnswerInformational(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Motifs = []harness.MotifRecord{mkMotif(5, "", true, 9000)}
	neu.Motifs = []harness.MotifRecord{mkMotif(5, "", true, 9000)}
	neu.Motifs[0].FasciaFound = false // Monte Carlo miss must not gate
	findings, info := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("fascia answer change gated: %v", findings)
	}
	var seen bool
	for _, l := range info {
		if strings.Contains(l, "fascia answer") {
			seen = true
		}
	}
	if !seen {
		t.Fatal("fascia answer change not reported informationally")
	}
}

func TestCompareMotifMissingGated(t *testing.T) {
	old := mkReport()
	neu := mkReport()
	old.Motifs = []harness.MotifRecord{mkMotif(4, "", true, 9000)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "missing") {
		t.Fatalf("missing motif record not flagged: %v", findings)
	}
}

func TestCompareCellsSkippedInformational(t *testing.T) {
	o := mkRun("er", 4, 100, 5000, true)
	n := mkRun("er", 4, 100, 5000, true)
	o.Counters["cells-skipped"] = 0
	n.Counters["cells-skipped"] = 100000 // huge growth must not gate
	findings, info := Compare(mkReport(o), mkReport(n), 0.10)
	if len(findings) != 0 {
		t.Fatalf("cells-skipped gated: %v", findings)
	}
	var seen bool
	for _, l := range info {
		if strings.Contains(l, "cells-skipped") {
			seen = true
		}
	}
	if !seen {
		t.Fatal("cells-skipped change not reported informationally")
	}
}

func mkStore(dataset string, fileBytes int64, digestOK, reused bool) harness.StoreRecord {
	return harness.StoreRecord{
		Dataset: dataset, Vertices: 300, Edges: 1700,
		TextBytes: 12000, FileBytes: fileBytes,
		ParseMillis: 0.8, ReadMillis: 0.4, MapMillis: 0.07,
		MapDigestOK: digestOK,
		Parts:       8, PartDeriveMillis: 0.02, PartLoadMillis: 0.05,
		PartReused: reused,
	}
}

func TestCompareStoreClean(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Stores = []harness.StoreRecord{mkStore("random", 16248, true, true)}
	neu.Stores = []harness.StoreRecord{mkStore("random", 16248, true, true)}
	findings, info := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("identical store records produced findings: %v", findings)
	}
	seen := false
	for _, line := range info {
		if strings.Contains(line, "cold-start") {
			seen = true
		}
	}
	if !seen {
		t.Fatal("cold-start times not reported informationally")
	}
}

func TestCompareStoreFileBloatGated(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Stores = []harness.StoreRecord{mkStore("random", 16248, true, true)}
	neu.Stores = []harness.StoreRecord{mkStore("random", 20000, true, true)} // +23%
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "file-bytes") {
		t.Fatalf("23%% file growth not flagged as file-bytes: %v", findings)
	}
}

func TestCompareStoreDigestMismatchGated(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Stores = []harness.StoreRecord{mkStore("random", 16248, true, true)}
	neu.Stores = []harness.StoreRecord{mkStore("random", 16248, false, true)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "digest") {
		t.Fatalf("digest mismatch not flagged: %v", findings)
	}
}

func TestCompareStoreArtifactReuseGated(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Stores = []harness.StoreRecord{mkStore("random", 16248, true, true)}
	neu.Stores = []harness.StoreRecord{mkStore("random", 16248, true, false)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "partition artifact") {
		t.Fatalf("artifact reuse regression not flagged: %v", findings)
	}
}

func TestCompareStoreMissingGated(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Stores = []harness.StoreRecord{mkStore("random", 16248, true, true)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "missing") {
		t.Fatalf("missing store record not flagged: %v", findings)
	}
}

func mkCluster(dataset string, answer, forwarded, forwardOK, handoffOK bool) harness.ClusterRecord {
	return harness.ClusterRecord{
		Dataset: dataset, Vertices: 300, Edges: 1712, K: 4, Nodes: 3, Replicas: 1,
		Answer: answer, Forwarded: forwarded, ForwardOK: forwardOK, HandoffOK: handoffOK,
		LocalMillis: 12.5, ForwardMillis: 0.8, HandoffMillis: 1.1,
	}
}

func TestCompareClusterClean(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Clusters = []harness.ClusterRecord{mkCluster("random", true, true, true, true)}
	neu.Clusters = []harness.ClusterRecord{mkCluster("random", true, true, true, true)}
	neu.Clusters[0].ForwardMillis = 42.0 // wall time is informational
	findings, info := Compare(old, neu, 0.10)
	if len(findings) != 0 {
		t.Fatalf("identical cluster records produced findings: %v", findings)
	}
	seen := false
	for _, line := range info {
		if strings.Contains(line, "forward hop") {
			seen = true
		}
	}
	if !seen {
		t.Fatal("cluster wall times not reported informationally")
	}
}

func TestCompareClusterBooleansGated(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  harness.ClusterRecord
		want string
	}{
		{"answer", mkCluster("random", false, true, true, true), "answer changed"},
		{"forwarded", mkCluster("random", true, false, true, true), "no longer forwards"},
		{"forwardOK", mkCluster("random", true, true, false, true), "no longer identical"},
		{"handoffOK", mkCluster("random", true, true, true, false), "store handoff"},
	} {
		old, neu := mkReport(), mkReport()
		old.Clusters = []harness.ClusterRecord{mkCluster("random", true, true, true, true)}
		neu.Clusters = []harness.ClusterRecord{tc.rec}
		findings, _ := Compare(old, neu, 0.10)
		if len(findings) != 1 || !strings.Contains(findings[0], tc.want) {
			t.Fatalf("%s regression not flagged (want %q): %v", tc.name, tc.want, findings)
		}
	}
}

func TestCompareClusterMissingGated(t *testing.T) {
	old, neu := mkReport(), mkReport()
	old.Clusters = []harness.ClusterRecord{mkCluster("random", true, true, true, true)}
	findings, _ := Compare(old, neu, 0.10)
	if len(findings) != 1 || !strings.Contains(findings[0], "missing") {
		t.Fatalf("missing cluster record not flagged: %v", findings)
	}
}
