package main

import (
	"path/filepath"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

func TestRunCountAndDetect(t *testing.T) {
	dir := t.TempDir()
	gPath := filepath.Join(dir, "g.txt")
	if err := graph.SaveEdgeList(gPath, graph.RandomNLogN(80, 1)); err != nil {
		t.Fatal(err)
	}
	if err := run(gPath, 4, "", 50, 0.1, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(gPath, 4, "", 20, 0.1, 1, 2, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTemplate(t *testing.T) {
	dir := t.TempDir()
	gPath := filepath.Join(dir, "g.txt")
	if err := graph.SaveEdgeList(gPath, graph.Grid(5, 5)); err != nil {
		t.Fatal(err)
	}
	tPath := filepath.Join(dir, "t.txt")
	tpl := graph.StarTemplate(4)
	tg := graph.NewBuilder(4)
	for v := int32(0); v < 4; v++ {
		for _, u := range tpl.Neighbors(v) {
			if v < u {
				tg.AddEdge(v, u)
			}
		}
	}
	if err := graph.SaveEdgeList(tPath, tg.Build()); err != nil {
		t.Fatal(err)
	}
	if err := run(gPath, 0, tPath, 30, 0.1, 1, 1, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 4, "", 10, 0.1, 1, 1, false); err == nil {
		t.Fatal("missing graph accepted")
	}
}
