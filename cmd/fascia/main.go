// Command fascia runs the color-coding baseline: approximate counting
// or detection of tree templates (FASCIA; Slota & Madduri).
//
//	fascia -graph g.txt -k 7                  # count 7-vertex paths
//	fascia -graph g.txt -template t.txt       # count a template
//	fascia -graph g.txt -k 7 -detect          # detection only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	midas "github.com/midas-hpc/midas"
	"github.com/midas-hpc/midas/internal/fascia"
	"github.com/midas-hpc/midas/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file (required)")
		k         = flag.Int("k", 7, "path length (ignored with -template)")
		tplPath   = flag.String("template", "", "tree template edge list")
		iters     = flag.Int("iters", 0, "colorings (0 = e^k·ln(1/eps))")
		eps       = flag.Float64("epsilon", 0.1, "approximation confidence")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 1, "vertex-parallel workers")
		detect    = flag.Bool("detect", false, "detection only (stop at first hit)")
	)
	flag.Parse()
	if err := run(*graphPath, *k, *tplPath, *iters, *eps, *seed, *workers, *detect); err != nil {
		fmt.Fprintln(os.Stderr, "fascia:", err)
		os.Exit(1)
	}
}

func run(graphPath string, k int, tplPath string, iters int, eps float64, seed uint64, workers int, detect bool) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := midas.LoadEdgeList(graphPath)
	if err != nil {
		return err
	}
	var tpl *graph.Template
	if tplPath != "" {
		tpl, err = midas.LoadTemplate(tplPath)
		if err != nil {
			return err
		}
	} else {
		tpl = graph.PathTemplate(k)
	}
	if iters == 0 {
		iters = fascia.IterationsForApprox(tpl.K(), eps)
	}
	opt := fascia.Options{Seed: seed, Iterations: iters, Workers: workers}
	fmt.Printf("graph: n=%d m=%d; template k=%d; %d colorings; estimated table memory %d bytes\n",
		g.NumVertices(), g.NumEdges(), tpl.K(), iters, fascia.MemoryBytes(g.NumVertices(), tpl.K()))
	start := time.Now()
	if detect {
		found, err := fascia.Detect(g, tpl, opt)
		if err != nil {
			return err
		}
		fmt.Printf("detected: %v (%.2fs)\n", found, time.Since(start).Seconds())
		return nil
	}
	count, err := fascia.Count(g, tpl, opt)
	if err != nil {
		return err
	}
	fmt.Printf("estimated labeled embeddings: %.1f (%.2fs)\n", count, time.Since(start).Seconds())
	return nil
}
