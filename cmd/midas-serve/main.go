// Command midas-serve is the long-running MIDAS query service: load
// graphs once, answer path/tree/scanstat queries over HTTP with
// admission control, result caching, singleflight dedup, and
// per-request deadlines. docs/SERVING.md is the operator guide.
//
// Usage:
//
//	midas-serve -addr :8080
//	midas-serve -addr :8080 -graph social=graphs/social.txt -graph road=graphs/road.bin
//	midas-serve -addr :8080 -workers 4 -queue-depth 128 -default-timeout 30s
//	midas-serve -addr :8080 -batch-window 2ms -batch-lanes 16
//	midas-serve -addr :8080 -log-level debug -slow-query 500ms -flight-recorder 512
//	midas-serve -addr :8080 -store /var/lib/midas -store-mapped-mb 2048
//
// Cluster mode (docs/CLUSTER.md) — a fleet of replicas sharding graphs
// by digest with store-based handoff; requires -store:
//
//	midas-serve -addr :8080 -store /var/lib/midas \
//	    -advertise 10.0.0.1:8080 -peers 10.0.0.2:8080,10.0.0.3:8080 -replicas 2
//
// Then:
//
//	curl -s localhost:8080/v1/graphs -d '{"name":"g","random":{"n":5000,"seed":1}}'
//	curl -s localhost:8080/v1/query  -d '{"graph":"g","kind":"path","k":10,"seed":1}'
//	curl -s localhost:8080/v1/cluster/status | jq .
//	curl -s localhost:8080/metrics | grep midas_serve
//
// On SIGINT/SIGTERM the server drains: new admissions get 503 with a
// Retry-After hint, queued and running queries get -drain-timeout to
// finish, then the rest are cancelled (their DP loops abort at the
// next batch boundary).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/midas-hpc/midas/internal/cluster"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/serve"
	"github.com/midas-hpc/midas/internal/store"
)

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// graphFlags collects repeated -graph name=path pairs.
type graphFlags []string

func (g *graphFlags) String() string     { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error { *g = append(*g, v); return nil }

// splitPeers turns the -peers flag (comma-separated host:port seed
// list) into its entries, dropping empty fields so trailing commas are
// not a crash.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		queueDepth     = flag.Int("queue-depth", 64, "admission queue bound (full => 429)")
		workers        = flag.Int("workers", 2, "concurrent query executions")
		cacheMB        = flag.Int64("cache-mb", 64, "result cache bound in MiB")
		cacheEntries   = flag.Int("cache-entries", 1024, "result cache entry bound")
		arenaMB        = flag.Int64("arena-mb", 512, "shared DP arena retention bound in MiB")
		defaultTimeout = flag.Duration("default-timeout", 0, "deadline for queries that set none (0 = unbounded)")
		drainTimeout   = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain window")
		batchWindow    = flag.Duration("batch-window", 2*time.Millisecond, "admission batching window; 0 disables batching")
		batchLanes     = flag.Int("batch-lanes", 16, "max queries per batched DP execution")
		logLevel       = flag.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
		slowQuery      = flag.Duration("slow-query", 0, "log queries slower than this at warn level (0 disables)")
		flightRecorder = flag.Int("flight-recorder", 256, "completed query traces retained for /v1/debug/requests")
		storeDir       = flag.String("store", "", "persistent graph store directory (docs/STORAGE.md); empty = in-memory only")
		storeMappedMB  = flag.Int64("store-mapped-mb", 0, "resident mapped-bytes budget for the store in MiB (0 = unlimited)")
		storeVerify    = flag.Bool("store-verify", false, "checksum every section on cold open (defeats lazy mapping; for distrusted stores)")

		advertise  = flag.String("advertise", "", "cluster: address peers reach this node at (host:port); defaults to -addr, which must then be concrete")
		peers      = flag.String("peers", "", "cluster: comma-separated static seed list of peer advertise addresses (host:port); enables cluster mode")
		replicas   = flag.Int("replicas", 2, "cluster: shard replication factor")
		hbInterval = flag.Duration("heartbeat-interval", time.Second, "cluster: peer health probe period")
		hbMisses   = flag.Int("heartbeat-misses", 3, "cluster: consecutive misses that declare a peer dead")
		fwdTimeout = flag.Duration("forward-timeout", 30*time.Second, "cluster: per-hop budget for a forwarded query")
		graphs     graphFlags
	)
	flag.Var(&graphs, "graph", "preload graph as name=path (repeatable)")
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "midas-serve: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	peerList := splitPeers(*peers)
	clustered := len(peerList) > 0 || *advertise != ""
	if clustered {
		// Validate the seed list up front: a typo should be a clear
		// startup error, not a silent solo fleet.
		if err := cluster.ValidatePeers(peerList); err != nil {
			fmt.Fprintf(os.Stderr, "midas-serve: -peers: %v\n", err)
			os.Exit(2)
		}
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "midas-serve: cluster mode needs -store (shard handoff lands graphs there)")
			os.Exit(2)
		}
		if *advertise == "" && strings.HasPrefix(*addr, ":") {
			fmt.Fprintf(os.Stderr, "midas-serve: cluster mode with wildcard -addr %q needs -advertise host:port (peers must be able to dial this node)\n", *addr)
			os.Exit(2)
		}
	}

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.Options{
			MaxMappedBytes: *storeMappedMB << 20,
			VerifyOnOpen:   *storeVerify,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "midas-serve: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		fmt.Printf("midas-serve: store %s (%d named graphs)\n", *storeDir, len(st.Names()))
	}

	cfg := serve.Config{
		QueueDepth:         *queueDepth,
		Workers:            *workers,
		CacheMaxBytes:      *cacheMB << 20,
		CacheMaxEntries:    *cacheEntries,
		ArenaMaxBytes:      *arenaMB << 20,
		DefaultTimeout:     *defaultTimeout,
		BatchWindow:        *batchWindow,
		BatchMaxLanes:      *batchLanes,
		Logger:             logger,
		SlowQuery:          *slowQuery,
		FlightRecorderSize: *flightRecorder,
		Store:              st,
	}

	loadGraphs := func(s *serve.Server) {
		for _, spec := range graphs {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "midas-serve: -graph wants name=path, got %q\n", spec)
				os.Exit(2)
			}
			g, err := graph.Load(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "midas-serve: load %s: %v\n", path, err)
				os.Exit(1)
			}
			digest := s.AddGraph(name, g)
			fmt.Printf("midas-serve: loaded %s (%d vertices, %d edges, digest %016x)\n",
				name, g.NumVertices(), g.NumEdges(), digest)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if clustered {
		node, err := cluster.New(cluster.Config{
			Serve:             cfg,
			Advertise:         *advertise,
			Peers:             peerList,
			Replicas:          *replicas,
			HeartbeatInterval: *hbInterval,
			HeartbeatMisses:   *hbMisses,
			ForwardTimeout:    *fwdTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "midas-serve: %v\n", err)
			os.Exit(2)
		}
		loadGraphs(node.Serve())
		if err := node.Start(*addr); err != nil {
			fmt.Fprintf(os.Stderr, "midas-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("midas-serve: cluster node on %s (advertise %s, %d peers, replicas %d)\n",
			node.Addr(), node.Advertise(), len(peerList), *replicas)
		<-ctx.Done()
		stop()
		fmt.Println("midas-serve: draining")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := node.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "midas-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("midas-serve: stopped")
		return
	}

	s := serve.New(cfg)
	loadGraphs(s)
	if err := s.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "midas-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("midas-serve: listening on %s\n", s.Addr())

	<-ctx.Done()
	stop()
	fmt.Println("midas-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "midas-serve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("midas-serve: stopped")
}
