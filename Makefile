# Developer entry points. `make check` is what CI
# (.github/workflows/ci.yml) and PR hygiene run: build, vet,
# formatting, full tests, and the race detector over the
# concurrency-heavy packages (the message runtime with its fault
# injection, the distributed core that drives it, the batched DP
# engine with its worker pools and per-lane cancellation, and the
# observability layer they feed).

GO ?= go
# Repetitions for `make bench`; 6+ gives benchstat enough samples for
# a significance test (`make bench > new.txt && benchstat old.txt new.txt`).
BENCH_COUNT ?= 6

.PHONY: all build test vet fmt-check check race fuzz-smoke bench bench-smoke bench-figures bench-compare serve-smoke doc-links

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; grep inverts that into an exit code.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/cluster/... ./internal/comm/... ./internal/core/... ./internal/mld/... ./internal/obs/... ./internal/serve/... ./internal/store/...

# A short burst of the differential fuzzer: random labeled graphs and
# constraints, constrained-motif detection vs. brute-force enumeration.
FUZZTIME ?= 20s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMotifVsBruteForce -fuzztime $(FUZZTIME) ./internal/mld

check: build vet fmt-check test race doc-links

# Fail on dead relative links in README.md and docs/*.md (guide
# cross-references rot silently when files move).
doc-links:
	$(GO) run ./cmd/doccheck

# Microbenchmarks of the hot kernels (GF(2^w) multiplies, DP inner
# loop), repeated for benchstat-friendly output.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/gf ./internal/core

# One iteration of every benchmark in the repo — the CI smoke check
# that nothing bench-shaped has rotted.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Black-box smoke of the query daemon over a real socket: start
# midas-serve, load a graph via the API, query + cache-hit repeat,
# cancel a slow query mid-flight, check /metrics, drain on SIGTERM.
serve-smoke:
	bash scripts/serve_smoke.sh

# The paper-figure benchmarks (heavyweight; regenerate EXPERIMENTS.md).
bench-figures:
	$(GO) test -run '^$$' -bench . -benchmem .

# Compare current performance against the committed baseline:
#  1. regenerate the JSON bench report with the baseline's parameters
#     and diff the deterministic counters via cmd/benchdiff (hard gate);
#  2. if benchstat is installed, also run the gf + core microbenchmarks
#     and show a statistical comparison against bench-old.txt when one
#     exists (informational — wall time is host-dependent).
bench-compare:
	mkdir -p artifacts
	$(GO) run ./cmd/midas-bench -json artifacts/bench-new.json -scale 300 -n 4 -ks 4,6 -seed 1
	$(GO) run ./cmd/benchdiff BENCH_baseline.json artifacts/bench-new.json | tee artifacts/bench-compare.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/gf > artifacts/bench-gf.txt; \
		if [ -f artifacts/bench-old.txt ]; then \
			benchstat artifacts/bench-old.txt artifacts/bench-gf.txt | tee -a artifacts/bench-compare.txt; \
		else \
			echo "no artifacts/bench-old.txt; saved current run as the next baseline"; \
		fi; \
		cp artifacts/bench-gf.txt artifacts/bench-old.txt; \
	else \
		echo "benchstat not installed; skipping microbenchmark statistics"; \
	fi
