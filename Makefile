# Developer entry points. `make check` is what CI
# (.github/workflows/ci.yml) and PR hygiene run: build, vet,
# formatting, full tests, and the race detector over the
# concurrency-heavy packages (the message runtime with its fault
# injection, the distributed core that drives it, and the
# observability layer they feed).

GO ?= go

.PHONY: all build test vet fmt-check check race bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; grep inverts that into an exit code.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/comm/... ./internal/core/... ./internal/obs/...

check: build vet fmt-check test race

bench:
	$(GO) test -bench=. -benchmem ./...
