# Developer entry points. `make check` is what CI
# (.github/workflows/ci.yml) and PR hygiene run: build, vet,
# formatting, full tests, and the race detector over the
# concurrency-heavy packages (the message runtime with its fault
# injection, the distributed core that drives it, and the
# observability layer they feed).

GO ?= go
# Repetitions for `make bench`; 6+ gives benchstat enough samples for
# a significance test (`make bench > new.txt && benchstat old.txt new.txt`).
BENCH_COUNT ?= 6

.PHONY: all build test vet fmt-check check race bench bench-smoke bench-figures

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; grep inverts that into an exit code.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/comm/... ./internal/core/... ./internal/obs/...

check: build vet fmt-check test race

# Microbenchmarks of the hot kernels (GF(2^w) multiplies, DP inner
# loop), repeated for benchstat-friendly output.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count $(BENCH_COUNT) ./internal/gf ./internal/core

# One iteration of every benchmark in the repo — the CI smoke check
# that nothing bench-shaped has rotted.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The paper-figure benchmarks (heavyweight; regenerate EXPERIMENTS.md).
bench-figures:
	$(GO) test -run '^$$' -bench . -benchmem .
