// Package midas is a Go implementation of MIDAS — multilinear detection
// at scale (Ekanayake, Cadena, Wickramasinghe, Vullikanti; IPDPS 2018):
// randomized algebraic detection of k-vertex paths, trees, and
// anomalous connected subgraphs (graph scan statistics) in large
// networks, sequentially or distributed over an MPI-style communicator.
//
// The underlying technique (Koutis; Williams) represents candidate
// subgraphs as monomials of a recursively-defined polynomial and tests
// for a degree-k multilinear term by evaluating the polynomial 2^k
// times over GF(2^16); time grows as O(2^k·m) and memory only as
// O(k·n), which is what lets MIDAS reach subgraph sizes (k = 18) that
// color-coding methods cannot.
//
// # Quick start
//
//	g := midas.NewRandomGraph(100_000, midas.Seed(1))
//	found, err := midas.FindPath(g, 12, midas.Options{Seed: 1})
//
// # Distributed use
//
// A Cluster is a set of SPMD ranks. RunLocal simulates one in-process
// (rank-per-goroutine); ConnectTCP joins separate OS processes into one
// world. Inside the SPMD function, the Distributed* calls run the
// paper's Algorithm 2 with graph partitioning (N1) and iteration
// batching (N2):
//
//	midas.RunLocal(8, func(c *midas.Cluster) error {
//	    found, err := midas.DistributedFindPath(c, g, 12, midas.ClusterConfig{N1: 4, N2: 64})
//	    ...
//	})
//
// Everything is deterministic in Options.Seed; answers have one-sided
// error at most Options.Epsilon (default 0.05): "yes" answers are
// always correct.
//
// # Observability
//
// Runs can be instrumented with per-rank counters and span timelines
// (docs/OBSERVABILITY.md is the operations guide). Sequential: attach a
// recorder via Options.Obs and export its Snapshot. Distributed: call
// Cluster.EnableObs before the Distributed* call, then gather every
// rank's telemetry with Cluster.GatherObsSnapshots:
//
//	rec := midas.NewObsRecorder()
//	found, _ := midas.FindPath(g, 12, midas.Options{Obs: rec})
//	midas.WriteObsSummary(os.Stdout, rec.Snapshot())
//
// WriteObsTrace renders snapshots as Chrome trace_event JSON for
// chrome://tracing or Perfetto (send/receive pairs are stitched with
// flow arrows across ranks). With no recorder attached the
// instrumentation is free: every hook is a nil-receiver no-op.
//
// A run can also be watched live: set Options.ObsAddr (or start a
// ServeObs server yourself) to expose Prometheus /metrics, /healthz
// liveness, and /debug/pprof/ on an HTTP port while the detection is
// in flight.
package midas

import (
	"context"
	"io"
	"os"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
	"github.com/midas-hpc/midas/internal/scanstat"
)

// Graph is an immutable undirected graph in CSR form. Build one with
// NewBuilder/FromEdges, a generator, or LoadEdgeList.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Template is the k-vertex tree searched for by FindTree.
type Template = graph.Template

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph { return graph.FromEdges(n, edges) }

// LoadGraph reads a graph file in either supported format (text edge
// list or the binary CSR format), sniffing the header.
func LoadGraph(path string) (*Graph, error) { return graph.Load(path) }

// LoadEdgeList reads a whitespace-separated "u v" edge list file.
func LoadEdgeList(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// SaveEdgeList writes a graph as an edge-list file.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeList(path, g) }

// SaveBinary writes a graph in the fast binary CSR format (including
// any attached weights and baselines).
func SaveBinary(path string, g *Graph) error { return graph.SaveBinary(path, g) }

// LoadWeights reads a "v w [b]" per-vertex weights file and attaches it
// to g (weight defaults to 0 and baseline to 1 for absent vertices).
func LoadWeights(path string, g *Graph) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.ReadWeights(f, g)
}

// LoadLabels reads a per-vertex "v c" color file and attaches it to g
// (absent vertices default to color 0). Colors feed FindMotif's
// multiset constraints.
func LoadLabels(path string, g *Graph) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.ReadLabels(f, g)
}

// LoadTemplate reads a tree template from an edge-list file; the
// template has max-id+1 vertices and the edges must form a tree.
func LoadTemplate(path string) (*Template, error) {
	g, err := graph.LoadEdgeList(path)
	if err != nil {
		return nil, err
	}
	return graph.NewTemplate(g.NumVertices(), g.Edges())
}

// NewRandomGraph returns an Erdős–Rényi graph with m = n·ln n edges
// (the paper's random-* dataset shape).
func NewRandomGraph(n int, seed uint64) *Graph { return graph.RandomNLogN(n, seed) }

// NewPowerLawGraph returns a Barabási–Albert preferential-attachment
// graph with the given attachment degree.
func NewPowerLawGraph(n, attach int, seed uint64) *Graph {
	return graph.BarabasiAlbert(n, attach, seed)
}

// NewRoadGraph returns a connected spatial road-style network on a
// rows×cols lattice.
func NewRoadGraph(rows, cols int, seed uint64) *Graph { return graph.RoadNetwork(rows, cols, seed) }

// NewTemplate validates a tree template on k vertices.
func NewTemplate(k int, edges [][2]int32) (*Template, error) { return graph.NewTemplate(k, edges) }

// PathTemplate returns the k-vertex path template.
func PathTemplate(k int) *Template { return graph.PathTemplate(k) }

// StarTemplate returns the k-vertex star template.
func StarTemplate(k int) *Template { return graph.StarTemplate(k) }

// Options configures sequential detection. The zero value works: seed
// 0, ε = 0.05, GF(2^16) arithmetic, batch width 128.
type Options struct {
	// Seed makes the run reproducible; every random choice derives
	// from it.
	Seed uint64
	// Epsilon bounds the one-sided failure probability (default 0.05).
	Epsilon float64
	// Rounds overrides the amplification round count (0 = derive from
	// Epsilon).
	Rounds int
	// N2 is the iteration batch width (paper Section IV-B; default 128).
	N2 int
	// Workers splits the DP vertex loops across goroutines for
	// shared-memory parallelism (0 or 1 = serial). Orthogonal to the
	// distributed mode: one process per rank, workers within a rank.
	Workers int
	// Obs, when non-nil, records round/phase/level spans and DP op
	// counts for the run (see the package Observability section and
	// docs/OBSERVABILITY.md). Nil disables instrumentation at no cost.
	Obs *ObsRecorder
	// ObsAddr, when non-empty, serves the live telemetry endpoint
	// (/metrics, /healthz, /debug/pprof/) on this host:port for the
	// duration of the call (":0" picks a free port). A recorder is
	// attached automatically if Obs is nil. For an endpoint that
	// outlives a single call, use ServeObs directly.
	ObsAddr string
	// Ctx, when non-nil, makes the detection cancellable: the evaluators
	// check it between iteration batches and return its error instead of
	// finishing the 2^k sweep. Nil (the default) runs to completion.
	Ctx context.Context
}

func (o Options) mld() mld.Options {
	return mld.Options{Seed: o.Seed, Epsilon: o.Epsilon, Rounds: o.Rounds, N2: o.N2, Workers: o.Workers, Obs: o.Obs, Ctx: o.Ctx}
}

// obsSetup applies Options.ObsAddr: when set, it ensures a recorder is
// attached and serves the live endpoint over it until the returned stop
// function runs (call it when the detection returns).
func (o Options) obsSetup() (Options, func(), error) {
	if o.ObsAddr == "" {
		return o, func() {}, nil
	}
	if o.Obs == nil {
		o.Obs = NewObsRecorder()
	}
	srv, err := ServeObs(o.ObsAddr, o.Obs)
	if err != nil {
		return o, nil, err
	}
	return o, func() { srv.Close() }, nil
}

// FindPath reports whether g contains a simple path on k vertices.
func FindPath(g *Graph, k int, opt Options) (bool, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return false, err
	}
	defer stop()
	return mld.DetectPath(g, k, opt.mld())
}

// FindPathVertices returns an actual k-path (in order), or an error if
// none is detected.
func FindPathVertices(g *Graph, k int, opt Options) ([]int32, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return nil, err
	}
	defer stop()
	return mld.ExtractPath(g, k, opt.mld())
}

// MaxWeightPath returns the maximum total vertex weight over all simple
// paths on exactly k vertices (the paper's Problem 3(2) for paths), and
// whether any k-path exists. Vertex weights must be non-negative; round
// large float weights with RoundWeights first.
func MaxWeightPath(g *Graph, k int, opt Options) (weight int64, found bool, err error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return 0, false, err
	}
	defer stop()
	return mld.MaxWeightPath(g, k, opt.mld())
}

// MaxWeightTree is MaxWeightPath for tree templates: the maximum total
// vertex weight over all non-induced embeddings of tpl.
func MaxWeightTree(g *Graph, tpl *Template, opt Options) (weight int64, found bool, err error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return 0, false, err
	}
	defer stop()
	return mld.MaxWeightTree(g, tpl, opt.mld())
}

// FindTree reports whether the tree template has a non-induced
// embedding in g.
func FindTree(g *Graph, tpl *Template, opt Options) (bool, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return false, err
	}
	defer stop()
	return mld.DetectTree(g, tpl, opt.mld())
}

// FindTreeVertices returns an embedding (indexed by template vertex),
// or an error if none is detected.
func FindTreeVertices(g *Graph, tpl *Template, opt Options) ([]int32, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return nil, err
	}
	defer stop()
	return mld.ExtractTree(g, tpl, opt.mld())
}

// MotifSpec is the generalized graph-motif query answered by FindMotif:
// a connected subgraph on exactly K vertices whose colors (set them
// with Graph.SetLabels or LoadLabels) contain each listed color at
// least Counts[c] times — exactly, when the counts sum to K.
type MotifSpec = mld.MotifSpec

// FindMotif reports whether g contains a connected spec.K-vertex
// subgraph satisfying spec's color-multiset constraint, via the
// constrained multilinear sieve (same 2^k·m time and k·n memory scaling
// as FindPath — no 2^k-per-vertex color-coding tables).
func FindMotif(g *Graph, spec *MotifSpec, opt Options) (bool, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return false, err
	}
	defer stop()
	return mld.DetectMotif(g, spec, opt.mld())
}

// Statistic scores candidate anomalous subgraphs; see KulldorffPoisson,
// ElevatedMean and BerkJones.
type Statistic = scanstat.Statistic

// KulldorffPoisson is the expectation-based Poisson scan statistic.
type KulldorffPoisson = scanstat.KulldorffPoisson

// ElevatedMean is the expectation-based Gaussian scan statistic.
type ElevatedMean = scanstat.ElevatedMean

// BerkJones is the non-parametric Berk–Jones scan statistic over
// p-values.
type BerkJones = scanstat.BerkJones

// AnomalyResult reports the best-scoring connected subgraph cell.
type AnomalyResult = scanstat.Result

// IndicatorWeights converts p-values to the 0/1 weights Berk–Jones
// consumes: w(v) = 1 iff p(v) < alpha.
func IndicatorWeights(pvalues []float64, alpha float64) []int64 {
	return scanstat.IndicatorWeights(pvalues, alpha)
}

// RoundWeights maps float event counts onto an integer grid (the
// knapsack-style rounding of the paper's reference [19]).
func RoundWeights(w []float64, gridMax int) ([]int64, error) {
	return scanstat.RoundWeights(w, gridMax)
}

// DetectAnomaly finds the connected subgraph of at most k vertices
// maximizing the statistic over g's vertex weights (set them with
// Graph.SetWeights).
func DetectAnomaly(g *Graph, k int, stat Statistic, opt Options) (AnomalyResult, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return AnomalyResult{}, err
	}
	defer stop()
	return scanstat.Detect(g, k, stat, scanstat.Options{MLD: opt.mld()})
}

// ExtractAnomaly recovers an actual vertex set realizing a feasible
// (size, weight) cell reported by DetectAnomaly.
func ExtractAnomaly(g *Graph, size int, weight int64, opt Options) ([]int32, error) {
	opt, stop, err := opt.obsSetup()
	if err != nil {
		return nil, err
	}
	defer stop()
	return scanstat.ExtractCell(g, size, weight, scanstat.Options{MLD: opt.mld()})
}

// ObsRecorder collects one rank's (or a sequential run's) telemetry:
// typed counters plus nested round/phase/level spans. Attach one via
// Options.Obs (sequential) or Cluster.EnableObs (distributed; uses the
// rank's virtual clock as the time base). A nil *ObsRecorder is the
// disabled recorder — every method no-ops.
type ObsRecorder = obs.Recorder

// ObsSnapshot is the frozen, serializable form of one rank's telemetry;
// feed any number of them to WriteObsSummary or WriteObsTrace.
type ObsSnapshot = obs.Snapshot

// NewObsRecorder returns a recorder for sequential runs, using wall
// time anchored at the call as its time base. Distributed ranks should
// use Cluster.EnableObs instead, which anchors the recorder to the
// rank's virtual clock.
func NewObsRecorder() *ObsRecorder { return obs.NewRecorder(0, nil) }

// WriteObsSummary renders snapshots as the plain-text operator summary:
// per-rank counters, time by span category, and halo volume per DP
// level. docs/OBSERVABILITY.md defines every column.
func WriteObsSummary(w io.Writer, snaps ...ObsSnapshot) error { return obs.WriteSummary(w, snaps...) }

// WriteObsTrace renders snapshots as Chrome trace_event JSON — one
// trace thread per rank, one complete event per span — loadable at
// chrome://tracing or https://ui.perfetto.dev.
func WriteObsTrace(w io.Writer, snaps ...ObsSnapshot) error { return obs.WriteTrace(w, snaps...) }

// ObsHistogram is the mergeable, serializable form of one latency
// histogram (Snapshot.Hists); Merge folds per-rank distributions.
type ObsHistogram = obs.HistSnapshot

// ObsServer is the live telemetry HTTP server: Prometheus text-format
// /metrics, rank liveness and phase progress on /healthz, and the
// standard /debug/pprof/ profiler. Start one with ServeObs (or let
// Options.ObsAddr / `midas -obs-addr` do it); stop with Close.
type ObsServer = obs.Server

// ServeObs serves the live telemetry endpoint on addr (":0" picks a
// free port; read it back with Addr) over the given recorders — one per
// in-process rank, or just one for a sequential run. Scrapes see the
// run in flight: recorders are snapshotted per request.
func ServeObs(addr string, recs ...*ObsRecorder) (*ObsServer, error) {
	return obs.Serve(addr, obs.SnapshotSource(recs...))
}

// ServeObsSource is ServeObs over a dynamic snapshot callback, for
// servers that must outlive any fixed recorder set (e.g. chaos runs
// that rebuild their world per attempt). source is invoked per request
// and must be safe for concurrent use.
func ServeObsSource(addr string, source func() []ObsSnapshot) (*ObsServer, error) {
	return obs.Serve(addr, source)
}

// Cluster is a rank's handle on an SPMD world (MPI-communicator-like).
// Observability hooks live directly on it: EnableObs attaches a
// virtual-clock recorder, ObsSnapshot freezes the rank's telemetry,
// GatherObsSnapshots collects every rank's snapshot at a root rank, and
// ResetTelemetry clears clock+stats+recorder between repeated
// experiments on a reused world.
type Cluster = comm.Comm

// ClusterConfig tunes the distributed algorithm: N1 graph parts per
// phase group, N2 iterations per batch, the partitioning scheme, and
// the usual Options fields.
type ClusterConfig = core.Config

// ScanClusterConfig extends ClusterConfig with the scan weight cap.
type ScanClusterConfig = core.ScanConfig

// Partition scheme names for ClusterConfig.Scheme.
const (
	SchemeBlock      = partition.SchemeBlock
	SchemeRandom     = partition.SchemeRandom
	SchemeBFSGrow    = partition.SchemeBFSGrow
	SchemeMultilevel = partition.SchemeMultilevel
)

// RunLocal executes fn as an SPMD program over n in-process ranks
// (goroutines). Rank failures are aggregated into a *WorldError of
// structured *RankErrors (nil when every rank succeeds).
func RunLocal(n int, fn func(c *Cluster) error) error {
	return comm.RunLocal(n, comm.DefaultCostModel(), fn)
}

// ConnectTCP joins this process into a TCP world of the given size;
// rank 0 listens on rootAddr, others use it as the rendezvous point.
func ConnectTCP(rank, size int, rootAddr string) (*Cluster, error) {
	return comm.ConnectTCP(rank, size, rootAddr, comm.DefaultCostModel())
}

// TCPOptions tunes ConnectTCPOpts: connect/IO deadlines, the send
// retry/backoff policy, and an optional fault-injection schedule.
type TCPOptions = comm.TCPOptions

// ConnectTCPOpts is ConnectTCP with explicit resilience options.
func ConnectTCPOpts(rank, size int, rootAddr string, opts TCPOptions) (*Cluster, error) {
	return comm.ConnectTCPOpts(rank, size, rootAddr, comm.DefaultCostModel(), opts)
}

// FaultSpec is a reproducible fault-injection schedule for chaos
// testing: message drops, delays, duplicates, reordering, severed rank
// pairs, and rank kills, all derived from one seed. docs/FAULTS.md
// documents the model and the textual grammar.
type FaultSpec = comm.FaultSpec

// ParseFaultSpec parses the -fault-spec grammar, e.g.
// "drop=0.05,delay=2ms,kill=3@10,seed=42". An empty string is the
// inactive (inject-nothing) spec.
func ParseFaultSpec(text string) (FaultSpec, error) { return comm.ParseFaultSpec(text) }

// RankError is one rank's structured failure: which rank, in which
// algorithm phase, and why.
type RankError = comm.RankError

// WorldError aggregates every failing rank of an SPMD run;
// errors.As/Is reach the individual RankErrors and their causes.
type WorldError = comm.WorldError

// FaultError is the failure a transport escalates when an operation
// cannot complete (killed rank, severed link, retries exhausted).
type FaultError = comm.FaultError

// RetryReport says what a resilient run took: total attempts and the
// error of each failed one.
type RetryReport = core.RetryReport

// RunLocalChaos is RunLocal over a fault-injecting world: every rank's
// transport applies the spec's schedule. Masked faults (drops retried
// away, delays, duplicates, reordering) only perturb timing; unmasked
// ones (kills, severed links) surface as FaultErrors inside the
// returned WorldError.
func RunLocalChaos(n int, spec FaultSpec, fn func(c *Cluster) error) error {
	return comm.RunLocalFaulty(n, comm.DefaultCostModel(), spec, fn)
}

// ChaosFindPath runs distributed k-path detection on an in-process
// chaos world of n ranks, retrying the whole detection (up to attempts
// times) when injected faults kill a run — safe because every round is
// a pure function of (graph, config, seed). setup, when non-nil, runs
// on each rank before the detection (e.g. Cluster.EnableObs). The
// returned clusters are the last attempt's, for telemetry inspection.
func ChaosFindPath(n int, spec FaultSpec, g *Graph, k int, cfg ClusterConfig, attempts int, setup func(c *Cluster)) (bool, []*Cluster, RetryReport, error) {
	cfg.K = k
	return core.RunPathLocalResilient(n, comm.DefaultCostModel(), spec, g, cfg, attempts, setup)
}

// ClusterSnapshots freezes the telemetry of several clusters without
// communicating — the in-process counterpart of GatherObsSnapshots.
func ClusterSnapshots(cs []*Cluster) []ObsSnapshot { return comm.Snapshots(cs) }

// DistributedFindPath runs the paper's Algorithm 2 for k-path; all
// ranks of c must call it collectively with identical arguments.
func DistributedFindPath(c *Cluster, g *Graph, k int, cfg ClusterConfig) (bool, error) {
	cfg.K = k
	return core.RunPath(c, g, cfg)
}

// DistributedFindTree runs Algorithm 2 with the tree evaluator.
func DistributedFindTree(c *Cluster, g *Graph, tpl *Template, cfg ClusterConfig) (bool, error) {
	return core.RunTree(c, g, tpl, cfg)
}

// DistributedFindMotif runs Algorithm 2 with the constrained-motif
// evaluator; answers match FindMotif with the same seed exactly.
func DistributedFindMotif(c *Cluster, g *Graph, spec *MotifSpec, cfg ClusterConfig) (bool, error) {
	return core.RunMotif(c, g, spec, cfg)
}

// DistributedFindPathVertices extracts an actual k-path using the whole
// cluster as the detection oracle; all ranks call collectively and
// return the same path.
func DistributedFindPathVertices(c *Cluster, g *Graph, k int, cfg ClusterConfig) ([]int32, error) {
	return core.ExtractPath(c, g, k, cfg)
}

// DistributedFindTreeVertices extracts an embedding of the template
// using the cluster as the oracle.
func DistributedFindTreeVertices(c *Cluster, g *Graph, tpl *Template, cfg ClusterConfig) ([]int32, error) {
	return core.ExtractTree(c, g, tpl, cfg)
}

// DistributedMaxWeightPath runs Algorithm 2 with the weight-indexed
// path evaluator (the distributed MaxWeightPath).
func DistributedMaxWeightPath(c *Cluster, g *Graph, k int, cfg ClusterConfig) (weight int64, found bool, err error) {
	cfg.K = k
	return core.RunMaxWeightPath(c, g, cfg)
}

// DistributedScanTable runs Algorithm 2 with the scan-statistics
// evaluator and returns the feasibility table feas[size][weight].
func DistributedScanTable(c *Cluster, g *Graph, cfg ScanClusterConfig) ([][]bool, error) {
	return core.RunScan(c, g, cfg)
}

// MaximizeScanTable picks the best statistic value over a feasibility
// table (pair with DistributedScanTable).
func MaximizeScanTable(feas [][]bool, stat Statistic) AnomalyResult {
	return scanstat.MaximizeTable(feas, stat)
}
