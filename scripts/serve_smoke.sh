#!/usr/bin/env bash
# End-to-end smoke of midas-serve over a real socket: build the daemon,
# start it on an ephemeral port, load a graph through the API, run a
# query, prove the repeat comes from cache, cancel a slow query
# mid-flight, check the /metrics surface, and drain with SIGTERM.
# `make serve-smoke` runs this; CI runs it on every push.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

go build -o "$workdir/midas-serve" ./cmd/midas-serve

"$workdir/midas-serve" -addr 127.0.0.1:0 -workers 2 >"$workdir/serve.log" 2>&1 &
pid=$!

# The daemon prints "midas-serve: listening on 127.0.0.1:PORT".
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^midas-serve: listening on //p' "$workdir/serve.log")"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$workdir/serve.log" >&2; fail "daemon exited during startup"; }
    sleep 0.1
done
[ -n "$addr" ] && base="http://$addr" || fail "daemon never reported its address"
echo "serve-smoke: daemon up at $base"

# Load a graph through the API.
curl -sf "$base/v1/graphs" -d '{"name":"g","random":{"n":300,"seed":1}}' \
    | grep -q '"digest"' || fail "graph load returned no digest"

# First query computes; the identical repeat must come from cache. The
# caller-supplied request ID must come back on the response and be
# findable in the flight recorder afterwards.
q='{"graph":"g","kind":"path","k":8,"seed":3,"rounds":1}'
rid="smoke-$$"
curl -sf -D "$workdir/headers" -H "X-Midas-Request-Id: $rid" "$base/v1/query" -d "$q" \
    | grep -q '"status":"done"' || fail "query did not complete"
grep -qi "^x-midas-request-id: $rid" "$workdir/headers" || fail "response did not echo the request ID"
curl -sf "$base/v1/query" -d "$q" | grep -q '"cached":true' || fail "repeat query was not served from cache"
echo "serve-smoke: query + cache hit OK"

# The flight recorder has the query's trace under its ID, with the
# complete received → queued → admitted → dp → done stage timeline.
curl -sf "$base/v1/debug/requests" | grep -q "\"$rid\"" || fail "request ID missing from /v1/debug/requests"
trace="$(curl -sf "$base/v1/debug/requests/$rid")"
for stage in received queued admitted dp done; do
    echo "$trace" | grep -q "\"stage\":\"$stage\"" || fail "trace for $rid is missing the '$stage' stage"
done
echo "$trace" | grep -q '"status":"done"' || fail "trace for $rid did not finish done"
grep -q "\"requestId\":\"$rid\"" "$workdir/serve.log" || fail "access log has no line for $rid"
echo "serve-smoke: query trace + flight recorder OK"

# Cancel a slow k=18 query mid-flight via DELETE /v1/jobs/{id}.
slow='{"graph":"g","kind":"path","k":18,"seed":9,"rounds":1,"n2":32,"wait":false}'
job="$(curl -sf "$base/v1/query" -d "$slow" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$job" ] || fail "async submit returned no job id"
sleep 0.3
curl -sf -X DELETE "$base/v1/jobs/$job" >/dev/null
cancelled=""
for _ in $(seq 1 100); do
    status="$(curl -sf "$base/v1/jobs/$job" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')"
    case "$status" in
        cancelled) cancelled=1; break ;;
        done|failed) fail "slow job finished as '$status' instead of cancelled" ;;
    esac
    sleep 0.1
done
[ -n "$cancelled" ] || fail "cancelled job never reached the cancelled state"
echo "serve-smoke: mid-flight cancellation OK"

# The metrics surface carries the serve series the docs promise.
metrics="$(curl -sf "$base/metrics")"
for m in midas_serve_admitted_total midas_serve_cache_hits_total \
         midas_serve_cache_misses_total midas_serve_cancelled_total \
         midas_serve_queue_depth midas_serve_query_latency_seconds; do
    echo "$metrics" | grep -q "^$m" || fail "/metrics is missing $m"
done
echo "serve-smoke: metrics surface OK"

# Graceful drain on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || { pid=""; break; }
    sleep 0.1
done
[ -z "$pid" ] || fail "daemon did not exit after SIGTERM"
grep -q "midas-serve: stopped" "$workdir/serve.log" || fail "daemon exited without a clean drain"
echo "serve-smoke: graceful drain OK"

# Restart with a persistent store (docs/STORAGE.md): generation 1
# stores the graph via POST write-through, generation 2 must answer
# the same query against the mmap'd file without re-parsing, and the
# answer must be identical.
store="$workdir/store"
start_daemon() {
    : >"$workdir/serve.log"
    "$workdir/midas-serve" -addr 127.0.0.1:0 -workers 2 -store "$store" >"$workdir/serve.log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^midas-serve: listening on //p' "$workdir/serve.log")"
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { cat "$workdir/serve.log" >&2; fail "store daemon exited during startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] && base="http://$addr" || fail "store daemon never reported its address"
}

start_daemon
curl -sf "$base/v1/graphs" -d '{"name":"persisted","random":{"n":300,"seed":7}}' >/dev/null \
    || fail "store-backed graph load failed"
sq='{"graph":"persisted","kind":"path","k":6,"seed":5,"rounds":1}'
ans1="$(curl -sf "$base/v1/query" -d "$sq" | sed -n 's/.*"found":\(true\|false\).*/\1/p')"
[ -n "$ans1" ] || fail "gen-1 store query returned no answer"
ls "$store"/graphs/*.midg >/dev/null 2>&1 || fail "write-through left no graph file in the store"
kill -TERM "$pid"
for _ in $(seq 1 100); do kill -0 "$pid" 2>/dev/null || { pid=""; break; }; sleep 0.1; done
[ -z "$pid" ] || fail "gen-1 store daemon did not drain"

start_daemon
curl -sf "$base/v1/graphs" | grep -q '"persisted"' || fail "restarted daemon does not list the stored graph"
ans2="$(curl -sf "$base/v1/query" -d "$sq" | sed -n 's/.*"found":\(true\|false\).*/\1/p')"
[ "$ans1" = "$ans2" ] || fail "restart changed the answer: gen1=$ans1 gen2=$ans2"
curl -sf "$base/metrics" | grep -q '^midas_store_mapped_bytes [1-9]' \
    || fail "/metrics shows no mapped store bytes after the query"
kill -TERM "$pid"
for _ in $(seq 1 100); do kill -0 "$pid" 2>/dev/null || { pid=""; break; }; sleep 0.1; done
[ -z "$pid" ] || fail "gen-2 store daemon did not drain"
echo "serve-smoke: store restart OK"

# Cluster leg (docs/CLUSTER.md): two replicas, replication factor 1 so
# exactly one node owns each shard. Load a graph whose placement lands
# on the OTHER node, query it through the non-owner (a forwarded hop,
# visible in X-Midas-Served-By), then kill the owner and re-query: the
# front still answers, identically, from its origin copy.
pid2=""
cleanup2() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill -9 "$pid2" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup2 EXIT

port1=$((21000 + RANDOM % 9000))
port2=$((port1 + 1))
addr1="127.0.0.1:$port1"
addr2="127.0.0.1:$port2"

start_node() { # log store self peer
    "$workdir/midas-serve" -addr "$3" -advertise "$3" -peers "$4" -replicas 1 \
        -heartbeat-interval 200ms -heartbeat-misses 2 -store "$2" \
        >"$1" 2>&1 &
}
start_node "$workdir/nodeA.log" "$workdir/storeA" "$addr1" "$addr2"; pid=$!
start_node "$workdir/nodeB.log" "$workdir/storeB" "$addr2" "$addr1"; pid2=$!
for log in "$workdir/nodeA.log" "$workdir/nodeB.log"; do
    up=""
    for _ in $(seq 1 100); do
        grep -q "midas-serve: cluster node on" "$log" && { up=1; break; }
        sleep 0.1
    done
    [ -n "$up" ] || { cat "$log" >&2; fail "cluster node never came up ($log)"; }
done
echo "serve-smoke: 2-replica fleet up at $addr1 / $addr2"

# Find a graph the fleet places on node B, loading through node A.
owned=""
for seed in $(seq 1 32); do
    curl -sf "http://$addr1/v1/graphs" \
        -d "{\"name\":\"cg$seed\",\"random\":{\"n\":120,\"seed\":$seed}}" >/dev/null \
        || fail "cluster graph load failed"
    if curl -sf "http://$addr1/v1/cluster/status" \
        | grep -q "\"name\":\"cg$seed\",[^}]*\"owners\":\[\"$addr2\"\]"; then
        owned="cg$seed"
        break
    fi
done
[ -n "$owned" ] || fail "no graph placed on the peer in 32 seeds"

cq="{\"graph\":\"$owned\",\"kind\":\"path\",\"k\":6,\"seed\":5,\"rounds\":1}"
ans1="$(curl -sf -D "$workdir/cheaders" "http://$addr1/v1/query" -d "$cq" \
    | sed -n 's/.*"found":\(true\|false\).*/\1/p')"
[ -n "$ans1" ] || fail "forwarded cluster query returned no answer"
grep -qi "^x-midas-served-by: $addr2" "$workdir/cheaders" \
    || fail "query via the non-owner was not forwarded to $addr2"
echo "serve-smoke: forwarded query via non-owner OK"

# Kill the owner; the front must still answer, with the same result.
kill -9 "$pid2"; pid2=""
ans2="$(curl -sf "http://$addr1/v1/query" -d "$cq" \
    | sed -n 's/.*"found":\(true\|false\).*/\1/p')"
[ "$ans1" = "$ans2" ] || fail "owner kill changed the answer: before=$ans1 after=$ans2"
echo "serve-smoke: owner kill survived, answer unchanged"

kill -TERM "$pid"
for _ in $(seq 1 100); do kill -0 "$pid" 2>/dev/null || { pid=""; break; }; sleep 0.1; done
[ -z "$pid" ] || fail "cluster node A did not drain"
echo "serve-smoke: cluster leg OK"
echo "serve-smoke: PASS"
