// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI). Each BenchmarkFig* drives the same harness
// code as `midas-bench -exp figN`; sizes here are scaled for
// benchmark-loop runtimes (use the CLI for full-scale runs and
// EXPERIMENTS.md for recorded results).
//
//	go test -bench=. -benchmem
package midas_test

import (
	"io"
	"testing"

	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/fascia"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/harness"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/pregel"
	"github.com/midas-hpc/midas/internal/roadnet"
	"github.com/midas-hpc/midas/internal/scanstat"
)

// benchParams keeps the harness sweeps inside benchmark-loop budgets.
func benchParams() harness.Params {
	return harness.Params{Scale: 600, N: 8, Ks: []int{6}, KMax: 8, Seed: 1}
}

func runFigure(b *testing.B, fn func(io.Writer, harness.Params) error) {
	b.Helper()
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B) { runFigure(b, harness.Table2) }

func BenchmarkFig3PartitionSizeRandomBS1(b *testing.B) {
	runFigure(b, func(w io.Writer, p harness.Params) error {
		return harness.FigPartitionSize(w, "random", false, p)
	})
}

func BenchmarkFig4PartitionSizeOrkutBS1(b *testing.B) {
	runFigure(b, func(w io.Writer, p harness.Params) error {
		return harness.FigPartitionSize(w, "orkut", false, p)
	})
}

func BenchmarkFig5PartitionSizeMiamiBS1(b *testing.B) {
	runFigure(b, func(w io.Writer, p harness.Params) error {
		return harness.FigPartitionSize(w, "miami", false, p)
	})
}

func BenchmarkFig6PartitionSizeRandomBSMax(b *testing.B) {
	runFigure(b, func(w io.Writer, p harness.Params) error {
		return harness.FigPartitionSize(w, "random", true, p)
	})
}

func BenchmarkFig7PartitionSizeOrkutBSMax(b *testing.B) {
	runFigure(b, func(w io.Writer, p harness.Params) error {
		return harness.FigPartitionSize(w, "orkut", true, p)
	})
}

func BenchmarkFig8PartitionSizeMiamiBSMax(b *testing.B) {
	runFigure(b, func(w io.Writer, p harness.Params) error {
		return harness.FigPartitionSize(w, "miami", true, p)
	})
}

func BenchmarkFig9StrongScalingFixedN1(b *testing.B) { runFigure(b, harness.Fig9) }

func BenchmarkFig10StrongScalingN1eqN(b *testing.B) { runFigure(b, harness.Fig10) }

func BenchmarkFig11MidasVsFascia(b *testing.B) { runFigure(b, harness.Fig11) }

func BenchmarkFig12ScanStatScaling(b *testing.B) { runFigure(b, harness.Fig12) }

func BenchmarkFig13RoadCaseStudy(b *testing.B) { runFigure(b, harness.Fig13) }

func BenchmarkScalingSubgraphSize(b *testing.B) { runFigure(b, harness.ScalingK) }

func BenchmarkScalingNetworkSize(b *testing.B) { runFigure(b, harness.ScalingN) }

func BenchmarkAblationBatching(b *testing.B) { runFigure(b, harness.AblationN2) }

func BenchmarkAblationGrayCode(b *testing.B) { runFigure(b, harness.AblationGray) }

func BenchmarkAblationVariant(b *testing.B) { runFigure(b, harness.AblationVariant) }

func BenchmarkAblationPartitioner(b *testing.B) { runFigure(b, harness.AblationPartitioner) }

// --- direct micro/meso benchmarks of the components the figures sum ---

func BenchmarkSequentialPathK10(b *testing.B) {
	g := graph.RandomNLogN(600, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mld.DetectPath(g, 10, mld.Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialTreeK10(b *testing.B) {
	g := graph.RandomNLogN(600, 1)
	tpl := graph.BinaryTreeTemplate(10)
	for i := 0; i < b.N; i++ {
		if _, err := mld.DetectTree(g, tpl, mld.Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialScanK4(b *testing.B) {
	g := graph.RandomNLogN(200, 1)
	w := make([]int64, g.NumVertices())
	for i := range w {
		if i%10 == 0 {
			w[i] = 1
		}
	}
	g.SetWeights(w)
	for i := 0; i < b.N; i++ {
		if _, err := mld.ScanTable(g, 4, 8, mld.Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedPathWorld8(b *testing.B) {
	g := graph.RandomNLogN(600, 1)
	for i := 0; i < b.N; i++ {
		res, err := harness.RunPathConfig(g, 8, core.Config{K: 8, N1: 4, N2: 16, Seed: uint64(i), Rounds: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkFasciaColoring(b *testing.B) {
	g := graph.RandomNLogN(600, 1)
	for i := 0; i < b.N; i++ {
		if _, err := fascia.Count(g, graph.PathTemplate(8), fascia.Options{Seed: uint64(i), Iterations: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPregelBaselinePath(b *testing.B) {
	g := graph.RandomNLogN(600, 1)
	for i := 0; i < b.N; i++ {
		if _, _, err := pregel.DetectPath(g, 8, pregel.Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnomalyPipeline(b *testing.B) {
	sim, err := roadnet.Simulate(roadnet.Config{Rows: 8, Cols: 8, Snapshots: 12, AnomalySize: 4, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	sim.G.SetWeights(scanstat.IndicatorWeights(sim.PValues, 0.02))
	for i := 0; i < b.N; i++ {
		if _, err := scanstat.Detect(sim.G, 5, scanstat.BerkJones{Alpha: 0.02},
			scanstat.Options{MLD: mld.Options{Seed: uint64(i), Rounds: 1}}); err != nil {
			b.Fatal(err)
		}
	}
}
