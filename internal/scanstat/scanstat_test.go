package scanstat

import (
	"math"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

func TestKulldorffPoisson(t *testing.T) {
	kp := KulldorffPoisson{}
	if kp.Score(5, 10) != 0 || kp.Score(10, 10) != 0 {
		t.Fatal("non-elevated counts should score 0")
	}
	// W=20, B=10: 20·ln2 − 10 ≈ 3.863
	if got := kp.Score(20, 10); math.Abs(got-3.8629) > 1e-3 {
		t.Fatalf("Kulldorff(20,10) = %v", got)
	}
	// monotone in W above B
	if kp.Score(30, 10) <= kp.Score(20, 10) {
		t.Fatal("Kulldorff not monotone in W")
	}
	if kp.Score(0, 0) != 0 {
		t.Fatal("degenerate inputs should score 0")
	}
}

func TestElevatedMean(t *testing.T) {
	em := ElevatedMean{}
	if em.Score(5, 9) != 0 {
		t.Fatal("below expectation should be 0")
	}
	if got := em.Score(15, 9); math.Abs(got-2) > 1e-12 {
		t.Fatalf("(15-9)/3 = 2, got %v", got)
	}
}

func TestBerkJones(t *testing.T) {
	bj := BerkJones{Alpha: 0.1}
	if bj.Score(1, 20) != 0 {
		t.Fatal("5% significant at α=10% should score 0")
	}
	s1 := bj.Score(10, 20) // half significant
	if s1 <= 0 {
		t.Fatal("elevated significance should score positive")
	}
	if bj.Score(20, 20) <= s1 {
		t.Fatal("BJ not monotone in W")
	}
	// all significant: KL(1, 0.1) = ln(10)
	if got := bj.Score(20, 20); math.Abs(got-20*math.Log(10)) > 1e-9 {
		t.Fatalf("BJ(20,20) = %v", got)
	}
}

func TestIndicatorWeights(t *testing.T) {
	w := IndicatorWeights([]float64{0.001, 0.5, 0.049, 0.05}, 0.05)
	want := []int64{1, 0, 1, 0}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("indicator %v want %v", w, want)
		}
	}
}

func TestRoundWeights(t *testing.T) {
	w, err := RoundWeights([]float64{0, 2.5, 5, 10}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 25, 50, 100}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("rounded %v want %v", w, want)
		}
	}
	if _, err := RoundWeights([]float64{-1}, 10); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := RoundWeights([]float64{math.NaN()}, 10); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := RoundWeights([]float64{1}, 0); err == nil {
		t.Fatal("zero grid accepted")
	}
	if z, err := RoundWeights([]float64{0, 0}, 10); err != nil || z[0] != 0 || z[1] != 0 {
		t.Fatal("all-zero weights mishandled")
	}
}

func TestExpandBaselines(t *testing.T) {
	g := graph.Path(3)
	g.SetWeights([]int64{5, 0, 7})
	g.SetBaselines([]int64{1, 3, 2})
	ex, orig, err := ExpandBaselines(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumVertices() != 6 {
		t.Fatalf("expanded n = %d, want 6", ex.NumVertices())
	}
	if ex.TotalWeight() != 12 {
		t.Fatalf("expanded weight = %d", ex.TotalWeight())
	}
	if !graph.IsConnected(ex) {
		t.Fatal("expansion broke connectivity")
	}
	counts := map[int32]int{}
	for _, o := range orig {
		counts[o]++
	}
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 2 {
		t.Fatalf("copy counts %v", counts)
	}
	g.SetBaselines([]int64{0, 1, 1})
	if _, _, err := ExpandBaselines(g); err == nil {
		t.Fatal("baseline 0 accepted")
	}
}

func TestMaximizeTable(t *testing.T) {
	feas := [][]bool{nil, {false, true, false}, {false, false, true}}
	// cells: (j=1,z=1), (j=2,z=2)
	res := MaximizeTable(feas, ElevatedMean{})
	if res.Feasible {
		// (1,1): W=B → 0; (2,2): W=B → 0: nothing scores
		t.Fatalf("no cell should score positive, got %+v", res)
	}
	feas[1][2] = true // (j=1, z=2): (2-1)/1 = 1
	res = MaximizeTable(feas, ElevatedMean{})
	if !res.Feasible || res.Size != 1 || res.Weight != 2 || res.Score != 1 {
		t.Fatalf("wrong maximizer: %+v", res)
	}
}

// TestDetectFindsInjectedAnomaly: a path with a heavy connected segment;
// the maximizer must sit on that segment.
func TestDetectFindsInjectedAnomaly(t *testing.T) {
	g := graph.Path(20)
	w := make([]int64, 20)
	for i := 8; i < 12; i++ {
		w[i] = 5 // injected hot segment of 4 nodes, weight 20
	}
	g.SetWeights(w)
	res, err := Detect(g, 5, KulldorffPoisson{}, Options{MLD: mld.Options{Seed: 3, Epsilon: 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("no anomaly found")
	}
	// Best Kulldorff cell: the 4 hot nodes (W=20, B=4) — or those plus
	// one zero neighbor (W=20, B=5, lower score). Expect (4, 20).
	if res.Size != 4 || res.Weight != 20 {
		t.Fatalf("maximizer (%d,%d), want (4,20); score %v", res.Size, res.Weight, res.Score)
	}
}

func TestDetectHonorsZMaxDefault(t *testing.T) {
	g := graph.Path(4)
	g.SetWeights([]int64{1, 1, 1, 1})
	res, err := Detect(g, 2, ElevatedMean{}, Options{MLD: mld.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Weight != 2 || res.Size != 1 {
		// best: single node W=1,B=1 → 0; two nodes W=2,B=2 → 0... all
		// equal weights give 0 for ElevatedMean since W==B... wait:
		// (j=1,z=1): (1-1)/1=0. Nothing positive → not feasible.
		if res.Feasible {
			t.Fatalf("uniform weights should yield no positive cell: %+v", res)
		}
	}
}

func TestExtractCellRecoversWitness(t *testing.T) {
	g := graph.Grid(5, 5)
	w := make([]int64, 25)
	// heavy 2x2 block at rows 1-2, cols 1-2: ids 6,7,11,12
	for _, v := range []int{6, 7, 11, 12} {
		w[v] = 3
	}
	g.SetWeights(w)
	sub, err := ExtractCell(g, 4, 12, Options{MLD: mld.Options{Seed: 5, Epsilon: 1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 4 {
		t.Fatalf("witness size %d", len(sub))
	}
	if !graph.IsConnectedSubset(g, sub) {
		t.Fatalf("witness %v not connected", sub)
	}
	var total int64
	for _, v := range sub {
		total += g.Weight(v)
	}
	if total != 12 {
		t.Fatalf("witness weight %d, want 12", total)
	}
}

func TestExtractCellRejectsInfeasible(t *testing.T) {
	g := graph.Path(5)
	g.SetWeights(make([]int64, 5))
	if _, err := ExtractCell(g, 3, 7, Options{MLD: mld.Options{Seed: 1}}); err == nil {
		t.Fatal("infeasible cell accepted")
	}
}

func TestStatisticNames(t *testing.T) {
	for _, s := range []Statistic{KulldorffPoisson{}, ElevatedMean{}, BerkJones{Alpha: 0.05}} {
		if s.Name() == "" {
			t.Fatal("empty statistic name")
		}
	}
}
