// Package scanstat implements graph scan statistics — the anomaly
// detection application of the paper's Problem 2: find a connected
// vertex set S, |S| ≤ k, maximizing an anomaly score F(W(S), B(S), θ).
//
// The multilinear machinery (internal/mld, internal/core) answers the
// feasibility question "is there a connected S with |S| = j and
// W(S) = z?" for every cell (j, z); this package supplies what surrounds
// it: the scoring functions (parametric and non-parametric, as the
// paper advertises), per-node p-value handling, the knapsack-style
// weight rounding of [19], the maximization over the feasibility table,
// and recovery of the maximizing subgraph by self-reduction.
//
// Following the paper's Section V-B we identify B(S) with |S| (unit
// baselines); ExpandBaselines provides the documented reduction from
// integer baselines to this form.
package scanstat

import (
	"fmt"
	"math"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// Statistic scores a candidate subgraph from its total event count W
// and baseline B. Larger is more anomalous. Implementations must be
// monotone in the sense scan statistics require (fixed B, increasing W
// above expectation ⇒ non-decreasing score).
type Statistic interface {
	Score(w, b float64) float64
	Name() string
}

// KulldorffPoisson is the expectation-based Poisson likelihood ratio
// statistic (Kulldorff's scan statistic): W·log(W/B) − (W−B) when
// W > B, else 0.
type KulldorffPoisson struct{}

// Score implements Statistic.
func (KulldorffPoisson) Score(w, b float64) float64 {
	if w <= b || w <= 0 || b <= 0 {
		return 0
	}
	return w*math.Log(w/b) - (w - b)
}

// Name implements Statistic.
func (KulldorffPoisson) Name() string { return "kulldorff-poisson" }

// ElevatedMean is the expectation-based Gaussian (elevated mean scan)
// statistic: (W − B)/√B when positive, else 0.
type ElevatedMean struct{}

// Score implements Statistic.
func (ElevatedMean) Score(w, b float64) float64 {
	if b <= 0 || w <= b {
		return 0
	}
	return (w - b) / math.Sqrt(b)
}

// Name implements Statistic.
func (ElevatedMean) Name() string { return "elevated-mean" }

// BerkJones is the non-parametric Berk–Jones statistic over p-values:
// with W = #{v ∈ S : p(v) < α} and B = |S|, the score is
// B·KL(W/B, α) when W/B > α, else 0, where KL is the Bernoulli
// Kullback–Leibler divergence. Event weights must be the 0/1 indicator
// weights produced by IndicatorWeights.
type BerkJones struct {
	Alpha float64
}

// Score implements Statistic.
func (bj BerkJones) Score(w, b float64) float64 {
	if b <= 0 {
		return 0
	}
	frac := w / b
	if frac <= bj.Alpha {
		return 0
	}
	return b * bernoulliKL(frac, bj.Alpha)
}

// Name implements Statistic.
func (bj BerkJones) Name() string { return fmt.Sprintf("berk-jones(α=%g)", bj.Alpha) }

func bernoulliKL(p, q float64) float64 {
	kl := 0.0
	if p > 0 {
		kl += p * math.Log(p/q)
	}
	if p < 1 {
		kl += (1 - p) * math.Log((1-p)/(1-q))
	}
	return kl
}

// IndicatorWeights converts per-node p-values into the 0/1 event
// weights Berk–Jones style statistics consume: w(v) = 1 iff p(v) < α.
func IndicatorWeights(pvalues []float64, alpha float64) []int64 {
	w := make([]int64, len(pvalues))
	for i, p := range pvalues {
		if p < alpha {
			w[i] = 1
		}
	}
	return w
}

// RoundWeights scales non-negative float event counts onto the integer
// grid [0, gridMax] (the knapsack-style rounding the paper cites from
// [19]): w'(v) = round(w(v)·gridMax/max_v w(v)). Scores computed from
// rounded weights approximate the true scores within a factor governed
// by gridMax; larger grids cost more DP weight levels (the W² factor in
// Lemma 3).
func RoundWeights(w []float64, gridMax int) ([]int64, error) {
	if gridMax < 1 {
		return nil, fmt.Errorf("scanstat: gridMax must be positive, got %d", gridMax)
	}
	maxW := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("scanstat: bad weight %v at vertex %d", x, i)
		}
		if x > maxW {
			maxW = x
		}
	}
	out := make([]int64, len(w))
	if maxW == 0 {
		return out, nil
	}
	for i, x := range w {
		out[i] = int64(math.Round(x * float64(gridMax) / maxW))
	}
	return out, nil
}

// ExpandBaselines reduces integer baselines to the unit-baseline form
// the DP uses: vertex v with baseline b(v) = b becomes a chain of b
// copies, the first carrying v's event weight and original adjacency.
// A connected subgraph in the expanded graph has B(S) = |S|. Returns
// the expanded graph and the map from expanded ids to original ids.
func ExpandBaselines(g *graph.Graph) (*graph.Graph, []int32, error) {
	n := g.NumVertices()
	total := 0
	for v := int32(0); v < int32(n); v++ {
		b := g.Baseline(v)
		if b < 1 {
			return nil, nil, fmt.Errorf("scanstat: vertex %d has baseline %d < 1", v, b)
		}
		total += int(b)
	}
	firstCopy := make([]int32, n)
	orig := make([]int32, 0, total)
	next := int32(0)
	for v := int32(0); v < int32(n); v++ {
		firstCopy[v] = next
		for c := int64(0); c < g.Baseline(v); c++ {
			orig = append(orig, v)
			next++
		}
	}
	b := graph.NewBuilder(total)
	for _, e := range g.Edges() {
		b.AddEdge(firstCopy[e[0]], firstCopy[e[1]])
	}
	for v := int32(0); v < int32(n); v++ {
		for c := int64(1); c < g.Baseline(v); c++ {
			b.AddEdge(firstCopy[v]+int32(c-1), firstCopy[v]+int32(c))
		}
	}
	out := b.Build()
	w := make([]int64, total)
	for v := int32(0); v < int32(n); v++ {
		w[firstCopy[v]] = g.Weight(v)
	}
	out.SetWeights(w)
	return out, orig, nil
}

// Result reports the maximizing cell of a scan.
type Result struct {
	Score    float64
	Size     int   // |S| = B(S)
	Weight   int64 // W(S)
	Feasible bool  // false when no cell scores above zero
}

// Options configures a sequential scan.
type Options struct {
	MLD  mld.Options
	ZMax int64 // weight cap; 0 → Σw capped at 4096 grid cells
}

func (o Options) zmax(g *graph.Graph) int64 {
	if o.ZMax > 0 {
		return o.ZMax
	}
	z := g.TotalWeight()
	const cap = 4096
	if z > cap {
		z = cap
	}
	return z
}

// MaximizeTable scans a feasibility table for the best-scoring cell.
func MaximizeTable(feas [][]bool, stat Statistic) Result {
	best := Result{}
	for j := 1; j < len(feas); j++ {
		for z, ok := range feas[j] {
			if !ok {
				continue
			}
			s := stat.Score(float64(z), float64(j))
			if s > best.Score {
				best = Result{Score: s, Size: j, Weight: int64(z), Feasible: true}
			}
		}
	}
	return best
}

// Detect runs the full sequential pipeline: feasibility table via
// multilinear detection, then maximization of the statistic.
func Detect(g *graph.Graph, k int, stat Statistic, opt Options) (Result, error) {
	feas, err := mld.ScanTable(g, k, opt.zmax(g), opt.MLD)
	if err != nil {
		return Result{}, err
	}
	return MaximizeTable(feas, stat), nil
}

// ExtractCell recovers an actual connected subgraph of size j and
// weight z (a witness for a feasible table cell) by self-reduction:
// vertices are deleted while the cell stays feasible, then the small
// remnant is searched exactly.
func ExtractCell(g *graph.Graph, j int, z int64, opt Options) ([]int32, error) {
	oracle := func(sub *graph.Graph) (bool, error) {
		if sub.NumVertices() < j {
			return false, nil
		}
		return mld.CellFeasible(sub, j, z, opt.MLD)
	}
	ok, err := oracle(g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("scanstat: cell (size=%d, weight=%d) not feasible", j, z)
	}
	stopAt := 3 * j
	if stopAt < 20 {
		stopAt = 20
	}
	cur, toOld, err := mld.Whittle(g, opt.MLD.Seed^0x5ca27a7, stopAt, oracle)
	if err != nil {
		return nil, err
	}
	local := bruteFindCell(cur, j, z)
	if local == nil {
		return nil, fmt.Errorf("scanstat: witness search failed on %d-vertex remnant", cur.NumVertices())
	}
	out := make([]int32, len(local))
	for i, v := range local {
		out[i] = toOld[v]
	}
	return out, nil
}

// bruteFindCell exhaustively searches for a connected subgraph of size j
// and weight z.
func bruteFindCell(g *graph.Graph, j int, z int64) []int32 {
	n := g.NumVertices()
	set := make([]int32, 0, j)
	var found []int32
	var rec func(start int32, w int64)
	rec = func(start int32, w int64) {
		if found != nil {
			return
		}
		if len(set) == j {
			if w == z && graph.IsConnectedSubset(g, set) {
				found = append([]int32(nil), set...)
			}
			return
		}
		for v := start; v < int32(n); v++ {
			nw := w + g.Weight(v)
			if nw > z {
				continue
			}
			set = append(set, v)
			rec(v+1, nw)
			set = set[:len(set)-1]
			if found != nil {
				return
			}
		}
	}
	rec(0, 0)
	return found
}
