package store

import (
	"runtime"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

// TestColdOpenAllocationIsHeaderSized pins the zero-copy contract: a
// cold Acquire allocates O(header + section table) — handle, Graph
// shell, parsed section metadata — NOT O(edges). The graph file here
// is several megabytes; if the open path ever copies or decodes a
// section onto the heap (the pre-mmap behavior), the allocation delta
// jumps past the megabyte mark and this test fails.
func TestColdOpenAllocationIsHeaderSized(t *testing.T) {
	g := testGraph(t, 50_000, 400_000, 21)
	s := openStore(t, Options{})
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	fileBytes := graph.V2FileSize(g)
	if fileBytes < 4<<20 {
		t.Fatalf("test graph too small to discriminate: %d bytes", fileBytes)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	h, err := s.Acquire(d)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	defer h.Close()

	delta := int64(after.TotalAlloc - before.TotalAlloc)
	// Generous ceiling for the fixed-size open machinery (os.File,
	// handle, V2Info, Graph shell); the adjacency section alone is an
	// order of magnitude bigger.
	const ceiling = 256 << 10
	if delta > ceiling {
		t.Fatalf("cold open allocated %d bytes for a %d-byte graph file; want O(header) < %d",
			delta, fileBytes, ceiling)
	}

	// And the mapped graph must actually be the real thing.
	if h.Graph().Digest() != d {
		t.Fatal("mapped graph digest mismatch")
	}
	t.Logf("cold open: %d bytes allocated for a %d-byte file (%.2f%%)",
		delta, fileBytes, 100*float64(delta)/float64(fileBytes))
}

// TestWarmAcquireAllocationFree pins the hit path: re-acquiring a
// resident graph is a refcount bump, no allocation at all.
func TestWarmAcquireAllocationFree(t *testing.T) {
	s := openStore(t, Options{})
	d, _, err := s.Put(testGraph(t, 1000, 4000, 22))
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire(d)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	allocs := testing.AllocsPerRun(100, func() {
		h2, err := s.Acquire(d)
		if err != nil {
			t.Fatal(err)
		}
		h2.Close()
	})
	if allocs > 0 {
		t.Fatalf("warm Acquire allocates %.1f objects/op, want 0", allocs)
	}
}
