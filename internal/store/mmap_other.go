//go:build !(linux || darwin)

package store

import (
	"io"
	"os"
)

// mapFile on platforms without the mmap path reads the file onto the
// heap. mapped=false tells the caller there is nothing to munmap; the
// residency accounting and LRU behave identically, the bytes are just
// GC-owned.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// unmapBytes is a no-op for heap-backed data.
func unmapBytes(data []byte) error { return nil }
