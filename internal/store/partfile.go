package store

// Derived-artifact persistence: partitions. Deriving a partition is
// the expensive half of a cold start (BFS growing or multilevel
// coarsening is O(n+m) with bad constants), so the store persists one
// file per (scheme, parts, seed) under parts/<digest>/ with the member
// lists already materialized — a restart re-reads an array instead of
// re-running the partitioner. Degree prefix sums, the other derived
// quantity serve needs, are exactly the offsets section of the graph
// file itself and need no separate artifact.
//
// Format "MIDP" v1, little-endian:
//
//	u32 magic "MIDP" (0x4d494450)  u32 version (1)
//	u32 parts                      u32 reserved
//	u64 n (vertex count)
//	i32 of[n]                      part assignment
//	i64 memberOff[parts+1]         prefix offsets into members
//	i32 members[n]                 concatenated ascending member lists
//	u32 crc32c over everything above
//
// Unlike the graph file this is small (8n + O(parts) bytes) and read
// in one gulp — no mmap, no laziness, checksum always verified.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/midas-hpc/midas/internal/partition"
)

const (
	partMagic   = 0x4d494450 // "MIDP"
	partVersion = 1
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// ErrNoPartition reports a partition-artifact cache miss.
var ErrNoPartition = errors.New("store: partition artifact not found")

// PartKey identifies a derived partition of one graph.
type PartKey struct {
	Scheme partition.Scheme
	Parts  int
	Seed   uint64
}

func (s *Store) partDir(digest uint64) string {
	return filepath.Join(s.dir, "parts", fmt.Sprintf("%016x", digest))
}

func (s *Store) partPath(digest uint64, key PartKey) string {
	return filepath.Join(s.partDir(digest), fmt.Sprintf("%s-p%d-s%d.midp", key.Scheme, key.Parts, key.Seed))
}

// PutPartition persists p as a derived artifact of the graph with this
// digest. Idempotent: an existing artifact for the same key is left in
// place.
func (s *Store) PutPartition(digest uint64, key PartKey, p *partition.Partition) error {
	if p.Parts != key.Parts {
		return fmt.Errorf("store: partition has %d parts, key says %d", p.Parts, key.Parts)
	}
	path := s.partPath(digest, key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(s.partDir(digest), 0o755); err != nil {
		return fmt.Errorf("store: put partition: %w", err)
	}

	n := len(p.Of)
	buf := make([]byte, 0, 24+4*n+8*(p.Parts+1)+4*n+4)
	var w [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:4], v)
		buf = append(buf, w[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put32(partMagic)
	put32(partVersion)
	put32(uint32(key.Parts))
	put32(0)
	put64(uint64(n))
	for _, v := range p.Of {
		put32(uint32(v))
	}
	off := int64(0)
	put64(uint64(off)) // memberOff[0]
	for pt := 0; pt < p.Parts; pt++ {
		off += int64(len(p.Members(pt)))
		put64(uint64(off))
	}
	for pt := 0; pt < p.Parts; pt++ {
		for _, v := range p.Members(pt) {
			put32(uint32(v))
		}
	}
	put32(crc32.Checksum(buf, crcTab))
	if err := s.atomicWrite(path, buf); err != nil {
		return fmt.Errorf("store: put partition: %w", err)
	}
	return nil
}

// GetPartition loads a persisted partition artifact. Returns
// ErrNoPartition on a cache miss; any other error means the artifact
// exists but is corrupt.
func (s *Store) GetPartition(digest uint64, key PartKey) (*partition.Partition, error) {
	data, err := os.ReadFile(s.partPath(digest, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoPartition
	}
	if err != nil {
		return nil, fmt.Errorf("store: get partition: %w", err)
	}
	p, err := decodePartition(data, key)
	if err != nil {
		return nil, fmt.Errorf("store: partition %s-p%d-s%d of %016x: %w",
			key.Scheme, key.Parts, key.Seed, digest, err)
	}
	return p, nil
}

func decodePartition(data []byte, key PartKey) (*partition.Partition, error) {
	if len(data) < 28 {
		return nil, fmt.Errorf("artifact truncated: %d bytes", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, crcTab); got != want {
		return nil, fmt.Errorf("checksum mismatch: file %08x, computed %08x", got, want)
	}
	le := binary.LittleEndian
	if m := le.Uint32(body[0:]); m != partMagic {
		return nil, fmt.Errorf("bad magic %08x", m)
	}
	if v := le.Uint32(body[4:]); v != partVersion {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	parts := int(le.Uint32(body[8:]))
	n64 := le.Uint64(body[16:])
	if parts != key.Parts {
		return nil, fmt.Errorf("file has %d parts, key says %d", parts, key.Parts)
	}
	if parts <= 0 || n64 > uint64(len(body)) {
		return nil, fmt.Errorf("implausible shape: parts=%d n=%d", parts, n64)
	}
	n := int(n64)
	want := 24 + 4*n + 8*(parts+1) + 4*n
	if len(body) != want {
		return nil, fmt.Errorf("artifact is %d bytes, layout needs %d", len(data), want+4)
	}
	of := make([]int32, n)
	p := 24
	for i := range of {
		of[i] = int32(le.Uint32(body[p:]))
		p += 4
	}
	memberOff := make([]int64, parts+1)
	for i := range memberOff {
		memberOff[i] = int64(le.Uint64(body[p:]))
		p += 8
	}
	if memberOff[0] != 0 || memberOff[parts] != int64(n) {
		return nil, fmt.Errorf("member offsets span [%d,%d], want [0,%d]", memberOff[0], memberOff[parts], n)
	}
	flat := make([]int32, n)
	for i := range flat {
		flat[i] = int32(le.Uint32(body[p:]))
		p += 4
	}
	members := make([][]int32, parts)
	for pt := 0; pt < parts; pt++ {
		lo, hi := memberOff[pt], memberOff[pt+1]
		if lo > hi || hi > int64(n) {
			return nil, fmt.Errorf("member offsets not monotone at part %d", pt)
		}
		members[pt] = flat[lo:hi:hi]
	}
	part, err := partition.NewMaterialized(parts, of, members)
	if err != nil {
		return nil, err
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	return part, nil
}
