//go:build linux || darwin

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared, advising the
// kernel that access will be random (graph queries hop across the
// adjacency section, so readahead is wasted effort). Returns
// mapped=false with a heap read instead when the file is empty —
// mmap of length 0 is an error on both platforms.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	_ = madviseRandom(data) // advisory; failure is harmless
	return data, true, nil
}

func madviseRandom(data []byte) error {
	return syscall.Madvise(data, syscall.MADV_RANDOM)
}

// unmapBytes releases a mapping produced by mapFile.
func unmapBytes(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
