package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
)

// testGraph builds a store-sized graph with every optional section.
func testGraph(t testing.TB, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	g := graph.RandomGNM(n, m, seed)
	w := make([]int64, g.NumVertices())
	b := make([]int64, g.NumVertices())
	l := make([]int32, g.NumVertices())
	for i := range w {
		w[i] = int64(i % 7)
		b[i] = int64(1 + i%3)
		l[i] = int32(i % 4)
	}
	g.SetWeights(w)
	g.SetBaselines(b)
	g.SetLabels(l)
	return g
}

func openStore(t testing.TB, opt Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutAcquireRoundTrip(t *testing.T) {
	rec := obs.NewRecorder(0, nil)
	s := openStore(t, Options{Rec: rec})
	g := testGraph(t, 200, 800, 7)

	digest, created, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Put reported existing file")
	}
	if digest != g.Digest() {
		t.Fatalf("Put returned digest %016x, graph says %016x", digest, g.Digest())
	}
	if _, created, err = s.Put(g); err != nil || created {
		t.Fatalf("second Put: created=%v err=%v, want idempotent no-op", created, err)
	}
	if !s.Has(digest) {
		t.Fatal("Has: stored digest not found")
	}

	h, err := s.Acquire(digest)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got := h.Graph()
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if got.Digest() != g.Digest() {
		t.Fatal("mapped graph digest differs from original")
	}
	if rec.Get(obs.StoreMisses) != 1 {
		t.Fatalf("cold open: misses=%d, want 1", rec.Get(obs.StoreMisses))
	}

	// A second acquire of a resident graph shares the mapping.
	h2, err := s.Acquire(digest)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatal("resident acquire returned a distinct handle")
	}
	h2.Close()
	if rec.Get(obs.StoreHits) != 1 {
		t.Fatalf("warm open: hits=%d, want 1", rec.Get(obs.StoreHits))
	}
	if s.MappedBytes() != h.Bytes() || s.Resident() != 1 {
		t.Fatalf("residency accounting: mapped=%d resident=%d", s.MappedBytes(), s.Resident())
	}
}

func TestAcquireMissing(t *testing.T) {
	s := openStore(t, Options{})
	if _, err := s.Acquire(0xdeadbeef); err == nil {
		t.Fatal("Acquire of absent digest succeeded")
	}
}

func TestLRUEvictionAndPinning(t *testing.T) {
	rec := obs.NewRecorder(0, nil)
	g1 := testGraph(t, 300, 900, 1)
	g2 := testGraph(t, 300, 900, 2)
	g3 := testGraph(t, 300, 900, 3)
	one := int64(graph.V2FileSize(g1))
	// Budget fits two graphs but not three.
	s := openStore(t, Options{MaxMappedBytes: 2*one + one/2, Rec: rec})
	var digests []uint64
	for _, g := range []*graph.Graph{g1, g2, g3} {
		d, _, err := s.Put(g)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}

	h1, err := s.Acquire(digests[0])
	if err != nil {
		t.Fatal(err)
	}
	h1.Close() // idle → evictable
	h2, err := s.Acquire(digests[1])
	if err != nil {
		t.Fatal(err)
	}
	// h2 stays referenced (pinned). Acquiring the third graph must
	// evict idle g1, not pinned g2.
	h3, err := s.Acquire(digests[2])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Get(obs.StoreEvictions) != 1 {
		t.Fatalf("evictions=%d, want 1", rec.Get(obs.StoreEvictions))
	}
	if s.Resident() != 2 {
		t.Fatalf("resident=%d, want 2 (g1 evicted)", s.Resident())
	}
	// The pinned mapping must still be live and correct.
	if h2.Graph().Digest() != digests[1] {
		t.Fatal("pinned graph corrupted by eviction")
	}
	// Re-acquiring g1 is a miss again (it was unmapped).
	misses := rec.Get(obs.StoreMisses)
	h1b, err := s.Acquire(digests[0])
	if err != nil {
		t.Fatal(err)
	}
	if rec.Get(obs.StoreMisses) != misses+1 {
		t.Fatal("evicted graph re-acquired without a miss")
	}
	h1b.Close()
	h2.Close()
	h3.Close()
}

func TestHandleDoubleClosePanics(t *testing.T) {
	s := openStore(t, Options{})
	d, _, err := s.Put(testGraph(t, 50, 120, 4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire(d)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("double Close did not panic")
		}
	}()
	h.Close()
}

func TestManifestNamesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 80, 200, 5)
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetName("toy", d, g.NumVertices(), g.NumEdges()); err != nil {
		t.Fatal(err)
	}
	if err := s.SetName("ghost", d+1, 0, 0); err == nil {
		t.Fatal("SetName accepted a digest not in the repository")
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	names := s2.Names()
	ni, ok := names["toy"]
	if !ok || ni.Digest != d || ni.Vertices != g.NumVertices() || ni.Edges != g.NumEdges() {
		t.Fatalf("manifest lost across reopen: %+v", names)
	}
	if err := s2.DeleteName("toy"); err != nil {
		t.Fatal(err)
	}
	if len(s2.Names()) != 0 {
		t.Fatal("DeleteName left a binding")
	}
}

func TestListAndInfo(t *testing.T) {
	s := openStore(t, Options{})
	g := testGraph(t, 90, 250, 6)
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetName("main", d, g.NumVertices(), g.NumEdges()); err != nil {
		t.Fatal(err)
	}
	p := partition.Block(g, 4)
	if err := s.PutPartition(d, PartKey{Scheme: partition.SchemeBlock, Parts: 4, Seed: 0}, p); err != nil {
		t.Fatal(err)
	}
	// A foreign file in graphs/ must be skipped, not break the listing.
	if err := os.WriteFile(filepath.Join(s.Dir(), "graphs", "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("List: %d entries, want 1", len(infos))
	}
	in := infos[0]
	if in.Digest != d || in.Vertices != g.NumVertices() || in.Edges != g.NumEdges() {
		t.Fatalf("List shape: %+v", in)
	}
	if len(in.Names) != 1 || in.Names[0] != "main" {
		t.Fatalf("List names: %v", in.Names)
	}
	if in.Partitions != 1 {
		t.Fatalf("List partitions: %d, want 1", in.Partitions)
	}
	if len(in.Sections) != 5 {
		t.Fatalf("List sections: %d, want 5", len(in.Sections))
	}
	if in.FileBytes != graph.V2FileSize(g) {
		t.Fatalf("List file bytes %d, want %d", in.FileBytes, graph.V2FileSize(g))
	}
}

func TestVerifyCatchesBitRot(t *testing.T) {
	s := openStore(t, Options{})
	g := testGraph(t, 100, 300, 8)
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(d); err != nil {
		t.Fatalf("verify of fresh file: %v", err)
	}
	// Flip one byte deep inside a data section (past the header, so a
	// lazy open would not notice — only Verify's section CRCs catch it).
	path := s.graphPath(d)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(d); err == nil {
		t.Fatal("Verify missed a flipped data byte")
	}
}

func TestCorruptStoreFiles(t *testing.T) {
	// Every corruption of the file under a digest must surface as a
	// structured error from Acquire — never a panic, never a wrong graph.
	g := testGraph(t, 100, 300, 9)
	var buf bytes.Buffer
	if err := graph.WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	d := g.Digest()

	cases := map[string]func([]byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:32] },
		"truncated section": func(b []byte) []byte { return b[:len(b)-64] },
		"empty":             func(b []byte) []byte { return nil },
		"wrong magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		},
		"wrong version": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4] = 9
			return c
		},
		"flipped header checksum": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[48] ^= 1
			return c
		},
		"flipped table byte": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[64+5] ^= 1
			return c
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			s := openStore(t, Options{})
			if err := os.WriteFile(s.graphPath(d), corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Acquire(d); err == nil {
				t.Fatal("Acquire accepted a corrupt file")
			} else if !strings.Contains(err.Error(), "store:") {
				t.Fatalf("error not store-labeled: %v", err)
			}
		})
	}
}

func TestVerifyOnOpenRejectsDataRot(t *testing.T) {
	g := testGraph(t, 100, 300, 10)
	var buf bytes.Buffer
	if err := graph.WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-9] ^= 0x40 // deep data flip: lazy open passes, VerifyOnOpen must not

	lazy := openStore(t, Options{})
	if err := os.WriteFile(lazy.graphPath(g.Digest()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if h, err := lazy.Acquire(g.Digest()); err != nil {
		t.Fatalf("lazy open should not checksum sections: %v", err)
	} else {
		h.Close()
	}

	strict := openStore(t, Options{VerifyOnOpen: true})
	if err := os.WriteFile(strict.graphPath(g.Digest()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Acquire(g.Digest()); err == nil {
		t.Fatal("VerifyOnOpen accepted rotted section data")
	}
}

func TestPartitionArtifactRoundTrip(t *testing.T) {
	s := openStore(t, Options{})
	g := testGraph(t, 150, 500, 12)
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	key := PartKey{Scheme: partition.SchemeBFSGrow, Parts: 5, Seed: 42}
	if _, err := s.GetPartition(d, key); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("miss: got %v, want ErrNoPartition", err)
	}
	p := partition.BFSGrow(g, key.Parts, key.Seed)
	if err := s.PutPartition(d, key, p); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPartition(d, key, p); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	got, err := s.GetPartition(d, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parts != p.Parts || len(got.Of) != len(p.Of) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Parts, len(got.Of), p.Parts, len(p.Of))
	}
	for v := range p.Of {
		if got.Of[v] != p.Of[v] {
			t.Fatalf("assignment differs at vertex %d", v)
		}
	}
	for pt := 0; pt < p.Parts; pt++ {
		a, b := p.Members(pt), got.Members(pt)
		if len(a) != len(b) {
			t.Fatalf("part %d member count %d vs %d", pt, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("part %d member %d differs", pt, i)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Key mismatch must be rejected.
	if err := s.PutPartition(d, PartKey{Scheme: partition.SchemeBlock, Parts: 3, Seed: 0}, p); err == nil {
		t.Fatal("PutPartition accepted parts/key mismatch")
	}
}

func TestPartitionArtifactCorruption(t *testing.T) {
	s := openStore(t, Options{})
	g := testGraph(t, 100, 300, 13)
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	key := PartKey{Scheme: partition.SchemeRandom, Parts: 4, Seed: 9}
	p := partition.Random(g, key.Parts, key.Seed)
	if err := s.PutPartition(d, key, p); err != nil {
		t.Fatal(err)
	}
	path := s.partPath(d, key)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"tiny":         func(b []byte) []byte { return b[:8] },
		"flipped body": func(b []byte) []byte { c := append([]byte(nil), b...); c[30] ^= 1; return c },
		"flipped crc":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 1; return c },
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.GetPartition(d, key); err == nil || errors.Is(err, ErrNoPartition) {
				t.Fatalf("corrupt artifact: got %v, want a corruption error", err)
			}
		})
	}
}
