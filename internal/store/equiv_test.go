package store

import (
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// The equivalence suite: every query family must answer byte-identically
// on a store-mapped graph and on the same graph parsed in memory. The
// evaluators are deterministic given (graph, seed), so "identical
// answers" here is exact equality, not distributional agreement — any
// divergence means the mmap wrap misrepresented the CSR arrays.

// mappedCopy stores g and returns its mmap-backed twin.
func mappedCopy(t *testing.T, g *graph.Graph) (*graph.Graph, func()) {
	t.Helper()
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := s.Put(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Acquire(d)
	if err != nil {
		t.Fatal(err)
	}
	return h.Graph(), func() { h.Close(); s.Close() }
}

func TestMappedPathEquivalence(t *testing.T) {
	g := testGraph(t, 150, 500, 31)
	mg, done := mappedCopy(t, g)
	defer done()
	for _, k := range []int{3, 5} {
		for seed := uint64(0); seed < 3; seed++ {
			opt := mld.Options{Seed: seed, Rounds: 2}
			want, err := mld.DetectPath(g, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mld.DetectPath(mg, k, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("k=%d seed=%d: mapped=%v parsed=%v", k, seed, got, want)
			}
		}
	}
}

func TestMappedTreeEquivalence(t *testing.T) {
	g := testGraph(t, 120, 400, 32)
	mg, done := mappedCopy(t, g)
	defer done()
	tpl := graph.RandomTemplate(4, 17)
	opt := mld.Options{Seed: 5, Rounds: 2}
	want, err := mld.DetectTree(g, tpl, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mld.DetectTree(mg, tpl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tree: mapped=%v parsed=%v", got, want)
	}
}

func TestMappedScanStatEquivalence(t *testing.T) {
	g := testGraph(t, 100, 300, 33)
	mg, done := mappedCopy(t, g)
	defer done()
	opt := mld.Options{Seed: 7, Rounds: 2}
	want, err := mld.ScanTable(g, 4, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mld.ScanTable(mg, 4, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("table shape: %d vs %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("scan table differs at [%d][%d]", i, j)
			}
		}
	}
}

func TestMappedMotifEquivalence(t *testing.T) {
	g := testGraph(t, 120, 400, 34)
	mg, done := mappedCopy(t, g)
	defer done()
	spec := &mld.MotifSpec{K: 4, Counts: map[int32]int{0: 1, 1: 1}}
	opt := mld.Options{Seed: 9, Rounds: 2}
	want, err := mld.DetectMotif(g, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mld.DetectMotif(mg, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("motif: mapped=%v parsed=%v", got, want)
	}
}

func TestMappedDistributedEquivalence(t *testing.T) {
	// The distributed engine partitions, exchanges halos, and reads the
	// CSR through a different access pattern than the sequential DP —
	// run it at ranks=2 against both backings.
	g := testGraph(t, 150, 500, 35)
	mg, done := mappedCopy(t, g)
	defer done()
	cfg := core.Config{K: 4, N1: 2, Seed: 3, Rounds: 2}
	run := func(g *graph.Graph) bool {
		var answers [2]bool
		err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
			ok, err := core.RunPath(c, g, cfg)
			answers[c.Rank()] = ok
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if answers[0] != answers[1] {
			t.Fatal("ranks disagree")
		}
		return answers[0]
	}
	if got, want := run(mg), run(g); got != want {
		t.Fatalf("distributed: mapped=%v parsed=%v", got, want)
	}
}
