// Package store is the content-addressed persistent graph repository
// behind midas-serve's -store flag and the `midas store` CLI: graphs
// keyed by their content digest, laid out in the version-2 aligned
// binary format (internal/graph/binio2.go) so their CSR arrays serve
// directly from an mmap with zero copying, plus derived artifacts —
// partitions with materialized member lists — persisted next to them
// so a replica cold-starts a large graph in milliseconds instead of
// re-parsing and re-deriving.
//
// # Layout
//
//	DIR/graphs/<digest>.midg          version-2 binary graph
//	DIR/parts/<digest>/<scheme>-p<n1>-s<seed>.midp
//	DIR/MANIFEST.json                 name → digest bindings
//	DIR/tmp/                          staging for atomic writes
//
// Every file lands via write-to-tmp + rename, so a crash mid-write
// leaves at worst an orphan in tmp/, never a half graph under its
// final name; the v2 header checksum catches truncation and table
// corruption at open time, and per-section checksums make silent data
// corruption detectable by Verify (docs/STORAGE.md covers the model).
//
// # Residency
//
// Acquire maps a graph and hands out a refcounted *Handle; identical
// acquisitions share one mapping. Handles with no remaining references
// become evictable, and an optional mapped-bytes budget (MaxMappedBytes)
// evicts least-recently-used idle mappings (munmap) the way the serve
// arena caps DP slabs. Counters: store-hits / store-misses /
// store-evictions; cold-start latency lands in the store-cold-start
// histogram.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// Options tunes a Store. The zero value is a valid configuration:
// unlimited residency, no telemetry, lazy (header-only) open checks.
type Options struct {
	// MaxMappedBytes bounds the total bytes of resident mappings; 0
	// means unlimited. Only idle graphs (no outstanding Handle) are
	// evictable — the budget is a target, not a hard cap, when every
	// resident graph is pinned by a reference.
	MaxMappedBytes int64
	// VerifyOnOpen runs the full checksum + structural verification on
	// every cold open. Off by default: it touches every page, which
	// defeats lazy residency; the intended use is distrusted stores
	// (see also Store.Verify and `midas store verify`).
	VerifyOnOpen bool
	// Rec receives the store-hit/miss/evict counters and the
	// cold-start histogram (nil = no telemetry).
	Rec *obs.Recorder
}

// Store is a content-addressed graph repository rooted at a directory.
// Safe for concurrent use.
type Store struct {
	dir string
	opt Options

	mu       sync.Mutex
	resident map[uint64]*Handle
	lruHead  *Handle // doubly-linked idle list, most recent first
	lruTail  *Handle
	mapped   int64 // total bytes of resident mappings
	names    map[string]NameInfo
}

// NameInfo is one manifest binding: a stable name pointing at a
// content digest, with the shape echoed so listings need no file IO.
type NameInfo struct {
	Digest   uint64
	Vertices int
	Edges    int
}

// manifest is the on-disk MANIFEST.json shape (digests in hex so the
// file is greppable against filenames).
type manifest struct {
	Version int                     `json:"version"`
	Names   map[string]manifestName `json:"names"`
}

type manifestName struct {
	Digest   string `json:"digest"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// Open opens (creating if necessary) a repository at dir.
func Open(dir string, opt Options) (*Store, error) {
	for _, sub := range []string{"graphs", "parts", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &Store{
		dir:      dir,
		opt:      opt,
		resident: make(map[uint64]*Handle),
		names:    make(map[string]NameInfo),
	}
	if err := s.loadManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the repository root.
func (s *Store) Dir() string { return s.dir }

// SetRecorder redirects the store's telemetry (hit/miss/evict
// counters, cold-start histogram) to rec — internal/serve adopts a
// caller-opened store this way. Call before concurrent use.
func (s *Store) SetRecorder(rec *obs.Recorder) { s.opt.Rec = rec }

func (s *Store) graphPath(digest uint64) string {
	return filepath.Join(s.dir, "graphs", fmt.Sprintf("%016x.midg", digest))
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST.json") }

func (s *Store) loadManifest() error {
	data, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("store: manifest corrupt: %w", err)
	}
	for name, e := range m.Names {
		d, err := strconv.ParseUint(e.Digest, 16, 64)
		if err != nil {
			return fmt.Errorf("store: manifest name %q: bad digest %q", name, e.Digest)
		}
		s.names[name] = NameInfo{Digest: d, Vertices: e.Vertices, Edges: e.Edges}
	}
	return nil
}

// saveManifestLocked writes the manifest atomically. Callers hold s.mu.
func (s *Store) saveManifestLocked() error {
	m := manifest{Version: 1, Names: make(map[string]manifestName, len(s.names))}
	for name, e := range s.names {
		m.Names[name] = manifestName{
			Digest:   fmt.Sprintf("%016x", e.Digest),
			Vertices: e.Vertices,
			Edges:    e.Edges,
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return s.atomicWrite(s.manifestPath(), append(data, '\n'))
}

// atomicWrite lands data at path via tmp + rename.
func (s *Store) atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "w-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Put writes g into the repository under its content digest, returning
// the digest and whether a new file was created (false = the graph was
// already stored; content addressing makes the write idempotent).
func (s *Store) Put(g *graph.Graph) (uint64, bool, error) {
	digest := g.Digest()
	path := s.graphPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, false, nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "g-*")
	if err != nil {
		return 0, false, fmt.Errorf("store: put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := graph.WriteBinaryV2(tmp, g); err != nil {
		tmp.Close()
		return 0, false, fmt.Errorf("store: put %016x: %w", digest, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, false, fmt.Errorf("store: put %016x: %w", digest, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, false, fmt.Errorf("store: put %016x: %w", digest, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, false, fmt.Errorf("store: put %016x: %w", digest, err)
	}
	return digest, true, nil
}

// Has reports whether the repository holds a graph with this digest.
func (s *Store) Has(digest uint64) bool {
	_, err := os.Stat(s.graphPath(digest))
	return err == nil
}

// SetName binds name → digest in the manifest (replacing any previous
// binding) so a restart can re-register graphs under their serving
// names. The digest must already be stored.
func (s *Store) SetName(name string, digest uint64, vertices, edges int) error {
	if !s.Has(digest) {
		return fmt.Errorf("store: name %q: digest %016x not in repository", name, digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.names[name] = NameInfo{Digest: digest, Vertices: vertices, Edges: edges}
	return s.saveManifestLocked()
}

// DeleteName removes a manifest binding (the graph file stays; content
// may be shared by other names).
func (s *Store) DeleteName(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.names, name)
	return s.saveManifestLocked()
}

// Names returns a copy of the manifest bindings.
func (s *Store) Names() map[string]NameInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]NameInfo, len(s.names))
	for k, v := range s.names {
		out[k] = v
	}
	return out
}

// Handle is one acquisition of a stored graph. The Graph's CSR arrays
// alias the underlying mapping: use it freely until Close, after which
// the mapping may be unmapped by the residency LRU and the Graph must
// not be touched.
type Handle struct {
	st     *Store
	digest uint64
	data   []byte
	mapped bool // true when data is an mmap (vs the heap fallback)
	g      *graph.Graph
	info   *graph.V2Info

	// Guarded by st.mu.
	refs       int
	prev, next *Handle // idle-LRU links, nil when referenced
}

// Graph returns the mapped graph.
func (h *Handle) Graph() *graph.Graph { return h.g }

// Digest returns the content digest this handle maps.
func (h *Handle) Digest() uint64 { return h.digest }

// Bytes returns the size of the backing mapping.
func (h *Handle) Bytes() int64 { return int64(len(h.data)) }

// Info returns the parsed v2 header of the backing file.
func (h *Handle) Info() *graph.V2Info { return h.info }

// Close releases the reference. The last Close makes the mapping
// evictable; it stays resident (a future Acquire is a hit) until the
// LRU needs the bytes back.
func (h *Handle) Close() {
	s := h.st
	s.mu.Lock()
	if h.refs <= 0 {
		s.mu.Unlock()
		panic("store: Handle closed twice")
	}
	h.refs--
	if h.refs == 0 {
		s.lruPushFront(h)
	}
	unmap := s.evictOverBudgetLocked()
	s.mu.Unlock()
	releaseMappings(unmap)
}

// Acquire maps the stored graph with this digest (or shares the
// resident mapping) and returns a referenced handle. A cold open is
// O(header + section table): the section bytes are mapped, not read —
// pages fault in as queries touch them.
func (s *Store) Acquire(digest uint64) (*Handle, error) {
	s.mu.Lock()
	if h, ok := s.resident[digest]; ok {
		h.refs++
		if h.refs == 1 {
			s.lruRemove(h)
		}
		s.mu.Unlock()
		s.opt.Rec.Add(obs.StoreHits, 1)
		return h, nil
	}
	s.mu.Unlock()

	// Cold path: open and map outside the lock (file IO under a mutex
	// would serialize unrelated queries), then publish; a racing
	// duplicate open loses and unmaps.
	start := time.Now()
	h, err := s.openCold(digest)
	if err != nil {
		return nil, err
	}
	s.opt.Rec.Add(obs.StoreMisses, 1)
	s.opt.Rec.Observe(obs.HistStoreColdStart, time.Since(start).Seconds())

	s.mu.Lock()
	if winner, ok := s.resident[digest]; ok {
		winner.refs++
		if winner.refs == 1 {
			s.lruRemove(winner)
		}
		s.mu.Unlock()
		releaseMappings([]*Handle{h})
		return winner, nil
	}
	s.resident[digest] = h
	s.mapped += h.Bytes()
	unmap := s.evictOverBudgetLocked()
	s.mu.Unlock()
	releaseMappings(unmap)
	return h, nil
}

// openCold maps the digest's file and wraps it in a Graph.
func (s *Store) openCold(digest uint64) (*Handle, error) {
	path := s.graphPath(digest)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %016x: %w", digest, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %016x: %w", digest, err)
	}
	data, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("store: %016x: map: %w", digest, err)
	}
	bail := func(err error) (*Handle, error) {
		if mapped {
			_ = unmapBytes(data)
		}
		return nil, fmt.Errorf("store: %016x: %w", digest, err)
	}
	if s.opt.VerifyOnOpen {
		if err := graph.VerifyBinaryV2(data); err != nil {
			return bail(err)
		}
	}
	g, info, err := graph.MapBinaryV2(data)
	if err != nil {
		return bail(err)
	}
	return &Handle{st: s, digest: digest, data: data, mapped: mapped, g: g, info: info, refs: 1}, nil
}

// lruPushFront / lruRemove maintain the idle list. Callers hold s.mu.
func (s *Store) lruPushFront(h *Handle) {
	h.prev, h.next = nil, s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = h
	}
	s.lruHead = h
	if s.lruTail == nil {
		s.lruTail = h
	}
}

func (s *Store) lruRemove(h *Handle) {
	if h.prev != nil {
		h.prev.next = h.next
	} else {
		s.lruHead = h.next
	}
	if h.next != nil {
		h.next.prev = h.prev
	} else {
		s.lruTail = h.prev
	}
	h.prev, h.next = nil, nil
}

// evictOverBudgetLocked pops idle mappings (least recent first) until
// the budget is met, removing them from the resident table. The
// returned handles must be passed to releaseMappings AFTER s.mu is
// dropped — munmap is a syscall and needs no lock.
func (s *Store) evictOverBudgetLocked() []*Handle {
	if s.opt.MaxMappedBytes <= 0 {
		return nil
	}
	var out []*Handle
	for s.mapped > s.opt.MaxMappedBytes && s.lruTail != nil {
		h := s.lruTail
		s.lruRemove(h)
		delete(s.resident, h.digest)
		s.mapped -= h.Bytes()
		s.opt.Rec.Add(obs.StoreEvictions, 1)
		out = append(out, h)
	}
	return out
}

// releaseMappings unmaps evicted handles.
func releaseMappings(hs []*Handle) {
	for _, h := range hs {
		if h.mapped {
			_ = unmapBytes(h.data)
		}
		h.data, h.g, h.info = nil, nil, nil
	}
}

// MappedBytes returns the total bytes of resident mappings (pinned +
// idle) — the /metrics mapped-bytes gauge.
func (s *Store) MappedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mapped
}

// Resident returns the number of resident (mapped) graphs.
func (s *Store) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.resident)
}

// Close unmaps every idle mapping and forgets resident state. Handles
// still referenced stay mapped (their owners must Close them); the
// Store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	var idle []*Handle
	for h := s.lruHead; h != nil; h = h.next {
		delete(s.resident, h.digest)
		s.mapped -= h.Bytes()
		idle = append(idle, h)
	}
	s.lruHead, s.lruTail = nil, nil
	s.mu.Unlock()
	releaseMappings(idle)
	return nil
}

// Verify runs the full integrity check (header, every section
// checksum, CSR structural invariants) on one stored graph.
func (s *Store) Verify(digest uint64) error {
	data, err := os.ReadFile(s.graphPath(digest))
	if err != nil {
		return fmt.Errorf("store: %016x: %w", digest, err)
	}
	if err := graph.VerifyBinaryV2(data); err != nil {
		return fmt.Errorf("store: %016x: %w", digest, err)
	}
	return nil
}

// GraphInfo describes one stored graph for listings (`midas store
// inspect`). Built from the file's header + section table only.
type GraphInfo struct {
	Digest     uint64
	FileBytes  int64
	Vertices   int
	Edges      int
	Sections   []graph.V2Section
	Names      []string // manifest bindings pointing here
	Partitions int      // persisted derived partitions
}

// List scans the repository and describes every stored graph,
// digest-ordered. Cost is O(graphs): a header-prefix read per file,
// never a full map.
func (s *Store) List() ([]GraphInfo, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, "graphs"))
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	names := s.Names()
	var out []GraphInfo
	for _, ent := range ents {
		var digest uint64
		if _, err := fmt.Sscanf(ent.Name(), "%016x.midg", &digest); err != nil {
			continue // foreign file; not ours to describe
		}
		info, err := s.Info(digest)
		if err != nil {
			return nil, err
		}
		for name, ni := range names {
			if ni.Digest == digest {
				info.Names = append(info.Names, name)
			}
		}
		sort.Strings(info.Names)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out, nil
}

// Info describes one stored graph from its header prefix.
func (s *Store) Info(digest uint64) (GraphInfo, error) {
	path := s.graphPath(digest)
	f, err := os.Open(path)
	if err != nil {
		return GraphInfo{}, fmt.Errorf("store: %016x: %w", digest, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return GraphInfo{}, fmt.Errorf("store: %016x: %w", digest, err)
	}
	prefix := make([]byte, graph.V2HeaderPrefixLen)
	n, err := f.Read(prefix)
	if err != nil && n == 0 {
		return GraphInfo{}, fmt.Errorf("store: %016x: %w", digest, err)
	}
	info, err := graph.ParseV2HeaderPrefix(prefix[:n], st.Size())
	if err != nil {
		return GraphInfo{}, fmt.Errorf("store: %016x: %w", digest, err)
	}
	parts, _ := os.ReadDir(s.partDir(digest))
	return GraphInfo{
		Digest:     digest,
		FileBytes:  st.Size(),
		Vertices:   int(info.N),
		Edges:      int(info.HalfEdges / 2),
		Sections:   info.Sections,
		Partitions: len(parts),
	}, nil
}
