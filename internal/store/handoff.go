package store

// Shard-handoff surface: the raw-bytes APIs internal/cluster uses to
// move a graph between replicas' repositories. A handoff ships the
// sealed v2 .midg file plus the MIDP partition artifacts exactly as
// they sit on disk — the receiver re-verifies and lands them via the
// same tmp+rename discipline as local writes, then mmaps; nothing is
// ever re-parsed or re-derived (docs/CLUSTER.md describes the
// protocol).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/partition"
)

// GraphFilePath returns the repository path of the sealed v2 graph
// file for this digest, for zero-copy serving (http.ServeFile) during
// shard handoff. The file exists iff Has(digest).
func (s *Store) GraphFilePath(digest uint64) string { return s.graphPath(digest) }

// ImportBytes lands a sealed v2 graph received from a peer in the
// repository. The bytes are fully verified (header, every section
// checksum, structural invariants — the sender is another process, so
// trust nothing), mapped once to recover the content digest, and
// written atomically under it. Idempotent for content already stored.
func (s *Store) ImportBytes(data []byte) (uint64, error) {
	if err := graph.VerifyBinaryV2(data); err != nil {
		return 0, fmt.Errorf("store: import: %w", err)
	}
	g, _, err := graph.MapBinaryV2(data)
	if err != nil {
		return 0, fmt.Errorf("store: import: %w", err)
	}
	digest := g.Digest()
	path := s.graphPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	if err := s.atomicWrite(path, data); err != nil {
		return 0, fmt.Errorf("store: import %016x: %w", digest, err)
	}
	return digest, nil
}

// PartArtifacts lists the persisted partition artifacts of one graph
// as base filenames (sorted), the unit of transfer for handoff. An
// absent parts directory is an empty list, not an error.
func (s *Store) PartArtifacts(digest uint64) ([]string, error) {
	ents, err := os.ReadDir(s.partDir(digest))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: part artifacts %016x: %w", digest, err)
	}
	var out []string
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".midp") {
			out = append(out, ent.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// ReadPartArtifact returns the raw sealed bytes of one partition
// artifact by base filename (as listed by PartArtifacts).
func (s *Store) ReadPartArtifact(digest uint64, name string) ([]byte, error) {
	if err := checkArtifactName(name); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.partDir(digest), name))
	if err != nil {
		return nil, fmt.Errorf("store: part artifact %016x/%s: %w", digest, name, err)
	}
	return data, nil
}

// WritePartArtifact lands a partition artifact received from a peer
// under its original filename after validating the MIDP envelope
// (magic, version, checksum, layout) against the key encoded in the
// name. Idempotent: an existing artifact is left in place.
func (s *Store) WritePartArtifact(digest uint64, name string, data []byte) error {
	if err := checkArtifactName(name); err != nil {
		return err
	}
	key, err := parseArtifactName(name)
	if err != nil {
		return err
	}
	if _, err := decodePartition(data, key); err != nil {
		return fmt.Errorf("store: import artifact %s: %w", name, err)
	}
	path := filepath.Join(s.partDir(digest), name)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(s.partDir(digest), 0o755); err != nil {
		return fmt.Errorf("store: import artifact: %w", err)
	}
	if err := s.atomicWrite(path, data); err != nil {
		return fmt.Errorf("store: import artifact %s: %w", name, err)
	}
	return nil
}

// checkArtifactName rejects names that could escape the parts
// directory or that we did not generate.
func checkArtifactName(name string) error {
	if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, "/\\") ||
		strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".midp") {
		return fmt.Errorf("store: invalid artifact name %q", name)
	}
	return nil
}

// parseArtifactName inverts partPath's "<scheme>-p<n>-s<seed>.midp"
// naming. Scheme names contain no dashes, so splitting on the last
// two dash-delimited fields is unambiguous.
func parseArtifactName(name string) (PartKey, error) {
	stem := strings.TrimSuffix(name, ".midp")
	var key PartKey
	i := strings.LastIndexByte(stem, '-')
	if i < 0 || !strings.HasPrefix(stem[i:], "-s") {
		return key, fmt.Errorf("store: invalid artifact name %q", name)
	}
	if _, err := fmt.Sscanf(stem[i:], "-s%d", &key.Seed); err != nil {
		return key, fmt.Errorf("store: invalid artifact name %q", name)
	}
	stem = stem[:i]
	i = strings.LastIndexByte(stem, '-')
	if i < 0 || !strings.HasPrefix(stem[i:], "-p") {
		return key, fmt.Errorf("store: invalid artifact name %q", name)
	}
	if _, err := fmt.Sscanf(stem[i:], "-p%d", &key.Parts); err != nil {
		return key, fmt.Errorf("store: invalid artifact name %q", name)
	}
	key.Scheme = partition.Scheme(stem[:i])
	return key, nil
}
