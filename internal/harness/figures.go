package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/fascia"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
	"github.com/midas-hpc/midas/internal/roadnet"
	"github.com/midas-hpc/midas/internal/scanstat"
)

// Params sizes an experiment run. Zero values take the defaults noted.
type Params struct {
	Scale int    // dataset vertex count (default 2000)
	N     int    // world size for distributed experiments (default 32)
	Ks    []int  // subgraph sizes (default {6, 10})
	KMax  int    // largest k for Fig 11 (default 12)
	Seed  uint64 // base seed
	// Reps repeats each distributed configuration on its (reused)
	// world, with Comm.ResetTelemetry between repetitions so counters
	// and clocks never accumulate across them; reported numbers are
	// from the final repetition (default 1).
	Reps int
	// TracePath, when non-empty, makes the profile experiment write a
	// Chrome trace_event timeline of its last configuration there.
	TracePath string
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 2000
	}
	if p.N <= 0 {
		p.N = 32
	}
	if len(p.Ks) == 0 {
		p.Ks = []int{6, 10}
	}
	if p.KMax <= 0 {
		p.KMax = 12
	}
	if p.Reps <= 0 {
		p.Reps = 1
	}
	return p
}

func divisorsPow2(n int) []int {
	var out []int
	for d := 1; d <= n; d *= 2 {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// Table2 prints the dataset summary analogous to the paper's Table II.
func Table2(w io.Writer, p Params) error {
	p = p.withDefaults()
	t := &Table{Title: "Table II analogue: datasets", Header: []string{"dataset", "stands for", "nodes", "edges", "maxdeg"}}
	for _, d := range Datasets() {
		g := d.Build(p.Scale, p.Seed)
		t.Add(d.Name, d.Paper, fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()), fmt.Sprint(g.MaxDegree()))
	}
	t.Fprint(w)
	return nil
}

// FigPartitionSize regenerates Figs 3–8: k-path modeled runtime versus
// N1 at fixed N, with N2 = 1 (BS1, Figs 3–5) or N2 = 2^k·N1/N (BSMax,
// Figs 6–8), for the named dataset.
func FigPartitionSize(w io.Writer, dsName string, bsMax bool, p Params) error {
	p = p.withDefaults()
	ds, err := DatasetByName(dsName)
	if err != nil {
		return err
	}
	g := ds.Build(p.Scale, p.Seed)
	mode, fig := "BS1 (N2=1)", map[string]string{"random": "3", "orkut": "4", "miami": "5"}[dsName]
	if bsMax {
		mode, fig = "BSMax (N2=2^k·N1/N)", map[string]string{"random": "6", "orkut": "7", "miami": "8"}[dsName]
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig %s analogue: k-path on %s (n=%d m=%d), N=%d, %s", fig, dsName, g.NumVertices(), g.NumEdges(), p.N, mode),
		Header: []string{"k", "N1", "N2", "modeled", "msgs", "bytes", "wall"},
	}
	for _, k := range p.Ks {
		for _, n1 := range divisorsPow2(p.N) {
			n2 := 1
			if bsMax {
				n2 = BSMaxN2(k, p.N, n1)
			}
			cfg := core.Config{K: k, N1: n1, N2: n2, Seed: p.Seed, Rounds: 1}
			res, err := RunPathConfigReps(g, p.N, p.Reps, cfg)
			if err != nil {
				return err
			}
			t.Add(fmt.Sprint(k), fmt.Sprint(n1), fmt.Sprint(n2), fmtSecs(res.ModeledSecs),
				fmt.Sprint(res.Msgs), fmtBytes(res.Bytes), fmtSecs(res.WallSecs))
		}
	}
	t.Fprint(w)
	return nil
}

// Fig9 regenerates the fixed-N1 strong-scaling speedup curves: for each
// N1, T(N_min)/T(N) as N grows, plus the envelope over N1 ("Best").
func Fig9(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale, p.Seed)
	k := p.Ks[len(p.Ks)-1]
	t := &Table{
		Title:  fmt.Sprintf("Fig 9 analogue: k-path strong scaling, fixed N1 (random, n=%d, k=%d)", g.NumVertices(), k),
		Header: []string{"N1", "N", "modeled", "speedup-vs-minN"},
	}
	best := map[int]float64{}
	for _, n1 := range []int{1, 4, 16} {
		if n1 > p.N {
			continue
		}
		var base float64
		for n := n1; n <= p.N; n *= 2 {
			cfg := core.Config{K: k, N1: n1, N2: BSMaxN2(k, n, n1), Seed: p.Seed, Rounds: 1}
			res, err := RunPathConfigReps(g, n, p.Reps, cfg)
			if err != nil {
				return err
			}
			if base == 0 {
				base = res.ModeledSecs
			}
			t.Add(fmt.Sprint(n1), fmt.Sprint(n), fmtSecs(res.ModeledSecs), fmt.Sprintf("%.2fx", base/res.ModeledSecs))
			if cur, ok := best[n]; !ok || res.ModeledSecs < cur {
				best[n] = res.ModeledSecs
			}
		}
	}
	for n := 1; n <= p.N; n *= 2 {
		if tm, ok := best[n]; ok {
			t.Add("best", fmt.Sprint(n), fmtSecs(tm), "")
		}
	}
	t.Fprint(w)
	return nil
}

// Fig10 regenerates the classic strong scaling with N1 = N across all
// datasets.
func Fig10(w io.Writer, p Params) error {
	p = p.withDefaults()
	k := p.Ks[len(p.Ks)-1]
	t := &Table{
		Title:  fmt.Sprintf("Fig 10 analogue: k-path strong scaling with N1=N (k=%d, scale=%d)", k, p.Scale),
		Header: []string{"dataset", "N", "modeled", "speedup"},
	}
	for _, ds := range Datasets() {
		g := ds.Build(p.Scale, p.Seed)
		var base float64
		for n := 1; n <= p.N; n *= 2 {
			cfg := core.Config{K: k, N1: n, N2: BSMaxN2(k, n, n), Seed: p.Seed, Rounds: 1}
			res, err := RunPathConfigReps(g, n, p.Reps, cfg)
			if err != nil {
				return err
			}
			if n == 1 {
				base = res.ModeledSecs
			}
			t.Add(ds.Name, fmt.Sprint(n), fmtSecs(res.ModeledSecs), fmt.Sprintf("%.2fx", base/res.ModeledSecs))
		}
	}
	t.Fprint(w)
	return nil
}

// Fig11 regenerates the MIDAS-vs-FASCIA comparison: sequential wall
// time versus subgraph size, with FASCIA's approximate-count time
// projected from measured per-coloring time × required colorings, and
// its memory wall marked (the paper's "fails beyond k = 12").
func Fig11(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale, p.Seed)
	const memLimit = int64(8) << 30
	t := &Table{
		Title:  fmt.Sprintf("Fig 11 analogue: MIDAS vs FASCIA, k-path on random (n=%d m=%d)", g.NumVertices(), g.NumEdges()),
		Header: []string{"k", "midas", "fascia(1 coloring)", "fascia(approx count)", "fascia memory", "note"},
	}
	for k := 5; k <= p.KMax; k++ {
		start := time.Now()
		if _, err := mld.DetectPath(g, k, mld.Options{Seed: p.Seed, Rounds: 1}); err != nil {
			return err
		}
		midasSecs := time.Since(start).Seconds()

		memB := fascia.MemoryBytes(g.NumVertices(), k)
		note := ""
		fasciaOne, fasciaFull := "-", "-"
		if memB > memLimit {
			note = "OOM: tables exceed memory (paper: FASCIA fails beyond k≈12)"
		} else {
			start = time.Now()
			if _, err := fascia.Count(g, graph.PathTemplate(k), fascia.Options{Seed: p.Seed, Iterations: 1}); err != nil {
				return err
			}
			one := time.Since(start).Seconds()
			iters := fascia.IterationsForApprox(k, 0.1)
			fasciaOne = fmtSecs(one)
			fasciaFull = fmtSecs(one * float64(iters))
			note = fmt.Sprintf("%d colorings needed", iters)
		}
		t.Add(fmt.Sprint(k), fmtSecs(midasSecs), fasciaOne, fasciaFull, fmtBytes(memB), note)
	}
	t.Fprint(w)
	return nil
}

// Fig12 regenerates scan-statistics strong scaling with N1 = N.
func Fig12(w io.Writer, p Params) error {
	p = p.withDefaults()
	const k, zmax = 4, 12
	t := &Table{
		Title:  fmt.Sprintf("Fig 12 analogue: scan statistics strong scaling, N1=N (k=%d, zmax=%d)", k, zmax),
		Header: []string{"dataset", "N", "modeled", "speedup"},
	}
	for _, ds := range Datasets() {
		g := ds.Build(p.Scale/4, p.Seed)
		attachSyntheticWeights(g, p.Seed)
		var base float64
		for n := 1; n <= p.N; n *= 2 {
			cfg := core.ScanConfig{
				Config: core.Config{K: k, N1: n, N2: 8, Seed: p.Seed, Rounds: 1},
				ZMax:   zmax,
			}
			res, _, err := RunScanConfig(g, n, cfg)
			if err != nil {
				return err
			}
			if n == 1 {
				base = res.ModeledSecs
			}
			t.Add(ds.Name, fmt.Sprint(n), fmtSecs(res.ModeledSecs), fmt.Sprintf("%.2fx", base/res.ModeledSecs))
		}
	}
	t.Fprint(w)
	return nil
}

func attachSyntheticWeights(g *graph.Graph, seed uint64) {
	w := make([]int64, g.NumVertices())
	for i := range w {
		// sparse events: ~10% of nodes carry weight 1-2
		h := uint64(i)*2654435761 + seed
		if h%10 == 0 {
			w[i] = int64(1 + h%2)
		}
	}
	g.SetWeights(w)
}

// Fig13 runs the road-network congestion case study end to end and
// renders the detection map.
func Fig13(w io.Writer, p Params) error {
	p = p.withDefaults()
	sim, err := roadnet.Simulate(roadnet.Config{
		Rows: 12, Cols: 12, Snapshots: 30, AnomalySize: 6, Seed: p.Seed + 7,
	})
	if err != nil {
		return err
	}
	const alpha = 0.02
	sim.G.SetWeights(scanstat.IndicatorWeights(sim.PValues, alpha))
	const k = 8
	res, err := scanstat.Detect(sim.G, k, scanstat.BerkJones{Alpha: alpha},
		scanstat.Options{MLD: mld.Options{Seed: p.Seed, Epsilon: 1e-4}})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Fig 13 analogue: congested highway clusters ==\n")
	if !res.Feasible {
		fmt.Fprintln(w, "no anomalous cluster found")
		return nil
	}
	cluster, err := scanstat.ExtractCell(sim.G, res.Size, res.Weight,
		scanstat.Options{MLD: mld.Options{Seed: p.Seed, Epsilon: 1e-6}})
	if err != nil {
		return err
	}
	prec, rec := sim.PrecisionRecall(cluster)
	fmt.Fprintf(w, "statistic=%s score=%.3f size=%d weight=%d precision=%.2f recall=%.2f\n",
		scanstat.BerkJones{Alpha: alpha}.Name(), res.Score, res.Size, res.Weight, prec, rec)
	fmt.Fprintf(w, "map (o=injected, #=detected, @=both):\n%s", sim.AsciiMap(cluster))
	return nil
}

// ScalingK regenerates the Section VI-C claim: runtime doubles with
// each k increment (the 2^k factor).
func ScalingK(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale, p.Seed)
	t := &Table{
		Title:  fmt.Sprintf("Scaling with subgraph size (random, n=%d): expect ~2x per k", g.NumVertices()),
		Header: []string{"k", "seconds", "ratio-to-prev"},
	}
	prev := 0.0
	for k := 4; k <= p.KMax; k++ {
		start := time.Now()
		if _, err := mld.DetectPath(g, k, mld.Options{Seed: p.Seed, Rounds: 1}); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		ratio := "-"
		if prev > 0 {
			ratio = fmt.Sprintf("%.2fx", secs/prev)
		}
		t.Add(fmt.Sprint(k), fmtSecs(secs), ratio)
		prev = secs
	}
	t.Fprint(w)
	return nil
}

// ScalingN regenerates the linear-in-network-size claim.
func ScalingN(w io.Writer, p Params) error {
	p = p.withDefaults()
	k := p.Ks[0]
	t := &Table{
		Title:  fmt.Sprintf("Scaling with network size (random, k=%d): expect ~linear in m", k),
		Header: []string{"n", "m", "seconds", "secs/edge"},
	}
	for n := p.Scale / 4; n <= p.Scale*2; n *= 2 {
		g := graph.RandomNLogN(n, p.Seed)
		start := time.Now()
		if _, err := mld.DetectPath(g, k, mld.Options{Seed: p.Seed, Rounds: 1}); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		t.Add(fmt.Sprint(n), fmt.Sprint(g.NumEdges()), fmtSecs(secs),
			fmt.Sprintf("%.1fns", secs/float64(g.NumEdges())*1e9))
	}
	t.Fprint(w)
	return nil
}

// AblationN2 measures the Section IV-B cache-locality effect: sequential
// wall time of one round as the batch width N2 grows.
func AblationN2(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale, p.Seed)
	k := p.Ks[len(p.Ks)-1]
	t := &Table{
		Title:  fmt.Sprintf("Ablation: batch width N2 (sequential k-path, random n=%d, k=%d)", g.NumVertices(), k),
		Header: []string{"N2", "seconds", "speedup-vs-N2=1"},
	}
	var base float64
	for _, n2 := range []int{1, 4, 16, 64, 256, 1024} {
		if n2 > 1<<uint(k) {
			break
		}
		start := time.Now()
		if _, err := mld.DetectPath(g, k, mld.Options{Seed: p.Seed, Rounds: 1, N2: n2}); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		if base == 0 {
			base = secs
		}
		t.Add(fmt.Sprint(n2), fmtSecs(secs), fmt.Sprintf("%.2fx", base/secs))
	}
	t.Fprint(w)
	return nil
}

// AblationGray compares Gray-code incremental base updates against
// full recomputation.
func AblationGray(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale, p.Seed)
	k := p.Ks[len(p.Ks)-1]
	t := &Table{
		Title:  fmt.Sprintf("Ablation: Gray-code base updates (k=%d, N2=64)", k),
		Header: []string{"mode", "seconds"},
	}
	for _, mode := range []struct {
		name   string
		noGray bool
	}{{"gray-incremental", false}, {"recompute", true}} {
		start := time.Now()
		if _, err := mld.DetectPath(g, k, mld.Options{Seed: p.Seed, Rounds: 1, N2: 64, NoGray: mode.noGray}); err != nil {
			return err
		}
		t.Add(mode.name, fmtSecs(time.Since(start).Seconds()))
	}
	t.Fprint(w)
	return nil
}

// AblationVariant compares the GF(2^16) evaluation with the GF(2^8)
// width the paper prescribes and the verbatim Koutis mod-2^(k+1)
// arithmetic (each including its amplification cost).
func AblationVariant(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale/2, p.Seed)
	k := p.Ks[0]
	t := &Table{
		Title:  fmt.Sprintf("Ablation: evaluation variant (k=%d)", k),
		Header: []string{"variant", "rounds(ε=0.05)", "seconds"},
	}
	for _, v := range []mld.Variant{mld.VariantGF16, mld.VariantGF8, mld.VariantKoutis} {
		opt := mld.Options{Seed: p.Seed, Variant: v}
		start := time.Now()
		if _, err := mld.DetectPath(g, k, opt); err != nil {
			return err
		}
		t.Add(v.String(), fmt.Sprint(opt.RoundsFor(k)), fmtSecs(time.Since(start).Seconds()))
	}
	t.Fprint(w)
	return nil
}

// AblationPartitioner compares partition schemes on the spatial dataset:
// the MaxDeg/cut quality and the resulting modeled run time.
func AblationPartitioner(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("miami")
	g := ds.Build(p.Scale, p.Seed)
	k := p.Ks[0]
	n1 := 8
	if n1 > p.N {
		n1 = p.N
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation: partitioner (miami n=%d, N=%d, N1=%d, k=%d)", g.NumVertices(), p.N, n1, k),
		Header: []string{"scheme", "maxload", "maxdeg", "cut", "modeled", "bytes"},
	}
	for _, s := range []partition.Scheme{partition.SchemeBlock, partition.SchemeRandom, partition.SchemeBFSGrow, partition.SchemeMultilevel} {
		part, err := partition.ByScheme(s, g, n1, p.Seed)
		if err != nil {
			return err
		}
		m := part.ComputeMetrics(g)
		cfg := core.Config{K: k, N1: n1, N2: BSMaxN2(k, p.N, n1), Seed: p.Seed, Rounds: 1, Scheme: s}
		res, err := RunPathConfigReps(g, p.N, p.Reps, cfg)
		if err != nil {
			return err
		}
		t.Add(string(s), fmt.Sprint(m.MaxLoad), fmt.Sprint(m.MaxDeg), fmt.Sprint(m.Cut),
			fmtSecs(res.ModeledSecs), fmtBytes(res.Bytes))
	}
	t.Fprint(w)
	return nil
}

// ProfileBreakdown reports, per N1, the per-rank compute versus
// communication share of the modeled makespan — the quantitative form
// of the paper's Section VI-B observation that communication cost grows
// with N1 until it dominates. Every rank runs with observability
// enabled, so the per-configuration table carries measured counters
// (DP ops, halo traffic) alongside the modeled makespan, and the final
// configuration's full per-rank telemetry is printed via obs.
// WriteSummary. With Params.TracePath set, that configuration's span
// timeline is also written as Chrome trace_event JSON
// (docs/OBSERVABILITY.md walks through reading both outputs).
func ProfileBreakdown(w io.Writer, p Params) error {
	p = p.withDefaults()
	ds, _ := DatasetByName("random")
	g := ds.Build(p.Scale, p.Seed)
	k := p.Ks[len(p.Ks)-1]
	t := &Table{
		Title:  fmt.Sprintf("Profile: compute vs communication share (random n=%d, N=%d, k=%d)", g.NumVertices(), p.N, k),
		Header: []string{"mode", "N1", "N2", "max-compute", "makespan", "comm-share", "msgs", "bytes", "dp-ops", "halo-bytes"},
	}
	var lastSnaps []obs.Snapshot
	var lastLabel string
	for _, mode := range []struct {
		name  string
		bsMax bool
	}{{"BS1", false}, {"BSMax", true}} {
		for _, n1 := range divisorsPow2(p.N) {
			n2 := 1
			if mode.bsMax {
				n2 = BSMaxN2(k, p.N, n1)
			}
			profiles := make([]core.Profile, p.N)
			cfg := core.Config{K: k, N1: n1, N2: n2, Seed: p.Seed, Rounds: 1}
			comms, err := comm.RunLocalInspect(p.N, comm.DefaultCostModel(), func(c *comm.Comm) error {
				c.EnableObs()
				for rep := 0; rep < p.Reps; rep++ {
					if rep > 0 {
						c.Barrier()
						c.ResetTelemetry()
					}
					if _, prof, err := core.RunPathProfiled(c, g, cfg); err != nil {
						return err
					} else {
						profiles[c.Rank()] = prof
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			makespan := comm.MaxClock(comms)
			snaps := comm.Snapshots(comms)
			tot := obs.Totals(snaps...)
			var maxCompute float64
			var msgs, bytes int64
			for _, pr := range profiles {
				if pr.ComputeSecs > maxCompute {
					maxCompute = pr.ComputeSecs
				}
				msgs += pr.MsgsSent
				bytes += pr.BytesSent
			}
			share := 0.0
			if makespan > 0 {
				share = 1 - maxCompute/makespan
				if share < 0 {
					share = 0
				}
			}
			t.Add(mode.name, fmt.Sprint(n1), fmt.Sprint(n2), fmtSecs(maxCompute), fmtSecs(makespan),
				fmt.Sprintf("%.0f%%", 100*share), fmt.Sprint(msgs), fmtBytes(bytes),
				fmt.Sprint(tot.Counter(obs.DPOps)), fmtBytes(tot.Counter(obs.HaloBytes)))
			lastSnaps = snaps
			lastLabel = fmt.Sprintf("%s, N1=%d, N2=%d", mode.name, n1, n2)
		}
	}
	t.Fprint(w)

	// Full per-rank breakdown of the last (most communication-heavy)
	// configuration: measured counters plus virtual-clock span times.
	fmt.Fprintf(w, "\n== Per-rank telemetry: %s (see docs/OBSERVABILITY.md) ==\n", lastLabel)
	if err := obs.WriteSummary(w, lastSnaps...); err != nil {
		return err
	}
	if p.TracePath != "" {
		f, err := os.Create(p.TracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f, lastSnaps...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntrace: wrote %s (load in chrome://tracing or ui.perfetto.dev)\n", p.TracePath)
	}
	return nil
}

// AblationFingerprints demonstrates the soundness failure of the
// verbatim pseudo-code (DESIGN.md §2): without per-(edge, level)
// coefficients, path instances are missed systematically.
func AblationFingerprints(w io.Writer, p Params) error {
	p = p.withDefaults()
	t := &Table{
		Title:  "Ablation: fingerprint coefficients (20 seeds, P8 graph, k=6: answer should be yes)",
		Header: []string{"mode", "yes-answers"},
	}
	g := graph.Path(8)
	for _, mode := range []struct {
		name string
		off  bool
	}{{"with fingerprints", false}, {"without (verbatim Alg. 1)", true}} {
		yes := 0
		for seed := uint64(0); seed < 20; seed++ {
			got, err := mld.DetectPath(g, 6, mld.Options{Seed: seed, Rounds: 1, NoFingerprints: mode.off})
			if err != nil {
				return err
			}
			if got {
				yes++
			}
		}
		t.Add(mode.name, fmt.Sprintf("%d/20", yes))
	}
	t.Fprint(w)
	return nil
}
