package harness

// Cold-start bench for the persistent graph store: the same graph
// brought to query-ready three ways — text edge-list parse, v1 binary
// read (decode onto the heap), and the store's zero-copy mmap — plus
// the derived-partition artifact (BFS-grown partition derived from
// scratch vs loaded from its .midp file). Wall times are
// machine-dependent and informational; the gated quantities are the
// deterministic ones: the v2 file size (format bloat is a regression),
// the mapped graph's digest matching the source (the zero-copy wrap
// must not misread a byte), and the artifact round-tripping
// bit-identically. docs/STORAGE.md quotes this record's shape.

import (
	"fmt"
	"os"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/partition"
	"github.com/midas-hpc/midas/internal/store"
)

// storeBenchParts is the partition arity of the derived-artifact leg.
const storeBenchParts = 8

// StoreRecord is one dataset's cold-start comparison.
type StoreRecord struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`

	TextBytes int64 `json:"textBytes"` // edge-list file size
	FileBytes int64 `json:"fileBytes"` // v2 store file size (gated)

	// Cold-start wall times in milliseconds (informational).
	ParseMillis float64 `json:"parseMillis"` // text parse
	ReadMillis  float64 `json:"readMillis"`  // v1 binary decode
	MapMillis   float64 `json:"mapMillis"`   // store open + mmap + wrap

	// MapDigestOK pins the zero-copy wrap: the mapped graph's content
	// digest equals the source graph's (gated — must stay true).
	MapDigestOK bool `json:"mapDigestOK"`

	// Derived-artifact leg: a BFS-grown partition derived from scratch
	// vs loaded from its persisted .midp file.
	Parts            int     `json:"parts"`
	PartDeriveMillis float64 `json:"partDeriveMillis"` // informational
	PartLoadMillis   float64 `json:"partLoadMillis"`   // informational
	// PartReused pins the artifact round trip: the loaded partition is
	// bit-identical to the derived one (gated — must stay true).
	PartReused bool `json:"partReused"`
}

// StoreBench measures every dataset's cold-start paths at p.Scale.
func StoreBench(p Params) ([]StoreRecord, error) {
	p = p.withDefaults()
	dir, err := os.MkdirTemp("", "midas-storebench-*")
	if err != nil {
		return nil, fmt.Errorf("harness: store bench: %w", err)
	}
	defer os.RemoveAll(dir)

	var out []StoreRecord
	for _, ds := range Datasets() {
		g := ds.Build(p.Scale, p.Seed)
		rec, err := storeBenchOne(dir, ds.Name, g, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("harness: store bench %s: %w", ds.Name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func storeBenchOne(dir, name string, g *graph.Graph, seed uint64) (StoreRecord, error) {
	rec := StoreRecord{
		Dataset: name, Vertices: g.NumVertices(), Edges: g.NumEdges(),
		Parts: storeBenchParts,
	}

	// Leg 1: text parse.
	textPath := dir + "/" + name + ".txt"
	if err := graph.SaveEdgeList(textPath, g); err != nil {
		return rec, err
	}
	if st, err := os.Stat(textPath); err == nil {
		rec.TextBytes = st.Size()
	}
	start := time.Now()
	parsed, err := graph.LoadEdgeList(textPath)
	if err != nil {
		return rec, err
	}
	rec.ParseMillis = msSince(start)

	// Leg 2: v1 binary decode.
	binPath := dir + "/" + name + ".bin"
	if err := graph.SaveBinary(binPath, g); err != nil {
		return rec, err
	}
	start = time.Now()
	if _, err := graph.LoadBinary(binPath); err != nil {
		return rec, err
	}
	rec.ReadMillis = msSince(start)

	// Leg 3: the store's mmap, measured from a cold Open so the
	// manifest read and file open are in the number.
	s, err := store.Open(dir+"/"+name+".store", store.Options{})
	if err != nil {
		return rec, err
	}
	defer s.Close()
	digest, _, err := s.Put(g)
	if err != nil {
		return rec, err
	}
	rec.FileBytes = graph.V2FileSize(g)
	start = time.Now()
	h, err := s.Acquire(digest)
	if err != nil {
		return rec, err
	}
	rec.MapMillis = msSince(start)
	rec.MapDigestOK = h.Graph().Digest() == parsed.Digest()
	h.Close()

	// Derived-artifact leg.
	key := store.PartKey{Scheme: partition.SchemeBFSGrow, Parts: storeBenchParts, Seed: seed}
	start = time.Now()
	derived := partition.BFSGrow(g, storeBenchParts, seed)
	for i := 0; i < derived.Parts; i++ {
		derived.Members(i)
	}
	rec.PartDeriveMillis = msSince(start)
	if err := s.PutPartition(digest, key, derived); err != nil {
		return rec, err
	}
	start = time.Now()
	loaded, err := s.GetPartition(digest, key)
	if err != nil {
		return rec, err
	}
	rec.PartLoadMillis = msSince(start)
	rec.PartReused = partitionsEqual(derived, loaded)
	return rec, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

func partitionsEqual(a, b *partition.Partition) bool {
	if a.Parts != b.Parts || len(a.Of) != len(b.Of) {
		return false
	}
	for v := range a.Of {
		if a.Of[v] != b.Of[v] {
			return false
		}
	}
	for p := 0; p < a.Parts; p++ {
		am, bm := a.Members(p), b.Members(p)
		if len(am) != len(bm) {
			return false
		}
		for i := range am {
			if am[i] != bm[i] {
				return false
			}
		}
	}
	return true
}
