// Package harness runs the paper's experiments (Section VI) and prints
// the tables/series behind every figure. Each Fig* function regenerates
// one figure's data; cmd/midas-bench is the CLI front end and
// bench_test.go wraps them as testing.B benchmarks.
//
// Because this machine exposes a single core (DESIGN.md §3), scaling
// numbers are reported as *modeled makespan*: per-rank compute sections
// are measured with real wall time and message costs follow the α–β
// model in internal/comm; the maximum virtual clock over ranks is the
// makespan. Total traffic (messages/bytes) is reported alongside, since
// Theorem 2's communication term is directly observable there.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/graph"
)

// Dataset is a named synthetic analogue of one of the paper's Table II
// datasets, constructible at any scale.
type Dataset struct {
	Name  string
	Paper string // what it stands in for
	Build func(n int, seed uint64) *graph.Graph
}

// Datasets returns the three structural classes of Table II.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name:  "random",
			Paper: "random-1e6/1e7 (Erdős–Rényi, m = n·ln n)",
			Build: func(n int, seed uint64) *graph.Graph { return graph.RandomNLogN(n, seed) },
		},
		{
			Name:  "orkut",
			Paper: "com-Orkut (heavy-tailed social network)",
			Build: func(n int, seed uint64) *graph.Graph {
				m := 8 // mean degree ~16, power-law tail
				if n <= m+1 {
					m = n - 2
				}
				return graph.BarabasiAlbert(n, m, seed)
			},
		},
		{
			Name:  "miami",
			Paper: "miami (spatial contact/road network)",
			Build: func(n int, seed uint64) *graph.Graph {
				side := 1
				for side*side < n {
					side++
				}
				return graph.RoadNetwork(side, side, seed)
			},
		},
	}
}

// DatasetByName finds a dataset.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("harness: unknown dataset %q (want random|orkut|miami)", name)
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RunResult bundles the observables of one MIDAS configuration run.
type RunResult struct {
	Answer      bool
	ModeledSecs float64 // makespan from virtual clocks
	WallSecs    float64 // real wall time of the whole local-world run
	Msgs        int64
	Bytes       int64
}

// RunPathConfig executes distributed k-path detection on a fresh local
// world of N ranks and reports the modeled makespan and traffic.
func RunPathConfig(g *graph.Graph, n int, cfg core.Config) (RunResult, error) {
	return RunPathConfigReps(g, n, 1, cfg)
}

// RunPathConfigReps is RunPathConfig repeated reps times on the same
// world. Every rank calls Comm.ResetTelemetry (after a barrier) between
// repetitions, so the reported makespan and traffic describe exactly
// the final repetition — without the reset, clocks and counters
// accumulate across repetitions and every repeated experiment
// over-reports (the stale-counter regression pinned by
// TestRepeatedRunsDoNotAccumulate).
func RunPathConfigReps(g *graph.Graph, n, reps int, cfg core.Config) (RunResult, error) {
	if reps < 1 {
		reps = 1
	}
	var res RunResult
	answers := make([]bool, n)
	start := time.Now()
	comms, err := comm.RunLocalInspect(n, comm.DefaultCostModel(), func(c *comm.Comm) error {
		for rep := 0; rep < reps; rep++ {
			if rep > 0 {
				// Quiesce before resetting so no in-flight traffic
				// from the previous repetition lands after the zero.
				c.Barrier()
				c.ResetTelemetry()
			}
			got, err := core.RunPath(c, g, cfg)
			if err != nil {
				return err
			}
			answers[c.Rank()] = got
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.WallSecs = time.Since(start).Seconds()
	res.Answer = answers[0]
	res.ModeledSecs = comm.MaxClock(comms)
	s := comm.TotalStats(comms)
	res.Msgs, res.Bytes = s.MsgsSent, s.BytesSent
	return res, nil
}

// RunScanConfig is RunPathConfig for the scan-statistics table.
func RunScanConfig(g *graph.Graph, n int, cfg core.ScanConfig) (RunResult, [][]bool, error) {
	var res RunResult
	var tab [][]bool
	start := time.Now()
	comms, err := comm.RunLocalInspect(n, comm.DefaultCostModel(), func(c *comm.Comm) error {
		t, err := core.RunScan(c, g, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			tab = t
		}
		return nil
	})
	if err != nil {
		return res, nil, err
	}
	res.WallSecs = time.Since(start).Seconds()
	res.ModeledSecs = comm.MaxClock(comms)
	s := comm.TotalStats(comms)
	res.Msgs, res.Bytes = s.MsgsSent, s.BytesSent
	return res, tab, nil
}

// BSMaxN2 is the paper's "BSMax" batch width: all of a phase group's
// iterations in one batch, N2 = 2^k·N1/N.
func BSMaxN2(k, n, n1 int) int {
	total := uint64(1) << uint(k)
	groups := uint64(n / n1)
	n2 := total / groups
	if n2 < 1 {
		n2 = 1
	}
	const lim = 1 << 14 // the paper also caps N2 (< 1024 there) to bound message size
	if n2 > lim {
		n2 = lim
	}
	return int(n2)
}

func fmtSecs(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
