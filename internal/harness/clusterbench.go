package harness

// Cluster bench for the scale-out layer (docs/CLUSTER.md): boot a real
// 3-node in-process fleet per dataset, load the graph through a
// non-owner front so the announce forces a store handoff onto the
// rendezvous owner, then answer the same query twice — once directly
// on the owner, once through the front (a forwarded hop against the
// owner's warm cache, so the wall time isolates the proxy overhead).
// Wall times are machine-dependent and informational; the gated
// quantities are the deterministic ones: the query answer, the front
// actually forwarding, the forwarded answer matching the owner-local
// one byte for byte, and the owner having adopted the shard via a
// counted store handoff rather than a re-parse.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/midas-hpc/midas/internal/cluster"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/serve"
	"github.com/midas-hpc/midas/internal/store"
)

// clusterBenchNodes is the fleet size; replication factor 1 makes the
// owner unique, so exactly one handoff and one forward hop happen.
const clusterBenchNodes = 3

// ClusterRecord is one dataset's fleet measurement.
type ClusterRecord struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	K        int    `json:"k"`
	Nodes    int    `json:"nodes"`
	Replicas int    `json:"replicas"`

	// Answer is the path query's result (gated — deterministic in the
	// graph and query parameters).
	Answer bool `json:"answer"`
	// Forwarded pins the routing: the query through the non-owner
	// front was proxied to the owner (gated — must stay true).
	Forwarded bool `json:"forwarded"`
	// ForwardOK pins transparency: the forwarded answer is
	// byte-identical to the owner-local one after normalizing the
	// cache flag (gated — must stay true).
	ForwardOK bool `json:"forwardOK"`
	// HandoffOK pins the handoff: loading through the front landed the
	// shard on the owner via a counted store pull — sealed bytes
	// mmapped, nothing re-parsed (gated — must stay true).
	HandoffOK bool `json:"handoffOK"`

	// Wall times in milliseconds (informational).
	LocalMillis   float64 `json:"localMillis"`   // owner-local cold query
	ForwardMillis float64 `json:"forwardMillis"` // front hop against the owner's warm cache
	HandoffMillis float64 `json:"handoffMillis"` // announce-time pull + mmap on the owner
}

// ClusterBench measures every dataset's fleet behavior at p.Scale,
// with a fresh fleet per dataset so counters and histograms are
// per-record.
func ClusterBench(p Params) ([]ClusterRecord, error) {
	p = p.withDefaults()
	var out []ClusterRecord
	for _, ds := range Datasets() {
		g := ds.Build(p.Scale, p.Seed)
		rec, err := clusterBenchOne(ds.Name, g, p.Ks[0], p.Seed)
		if err != nil {
			return nil, fmt.Errorf("harness: cluster bench %s: %w", ds.Name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func clusterBenchOne(name string, g *graph.Graph, k int, seed uint64) (ClusterRecord, error) {
	rec := ClusterRecord{
		Dataset: name, Vertices: g.NumVertices(), Edges: g.NumEdges(),
		K: k, Nodes: clusterBenchNodes, Replicas: 1,
	}

	nodes := make([]*cluster.Node, clusterBenchNodes)
	dirs := make([]string, clusterBenchNodes)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				n.Shutdown(ctx) //nolint:errcheck
				cancel()
			}
		}
		for _, d := range dirs {
			if d != "" {
				os.RemoveAll(d)
			}
		}
	}()
	for i := range nodes {
		dir, err := os.MkdirTemp("", "midas-clusterbench-*")
		if err != nil {
			return rec, err
		}
		dirs[i] = dir
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return rec, err
		}
		n, err := cluster.New(cluster.Config{
			Serve:    serve.Config{Workers: 2, Store: st},
			Replicas: 1,
		})
		if err != nil {
			return rec, err
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			return rec, err
		}
		nodes[i] = n
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Advertise()
	}
	for _, n := range nodes {
		if err := n.SetPeers(addrs); err != nil {
			return rec, err
		}
	}

	// Placement is known before loading: pick the owner from the pure
	// rendezvous function and front the load through a non-owner, so
	// the announce forces the owner to pull the shard from the origin.
	digest := g.Digest()
	owner := cluster.PlacementOwners(digest, addrs, 1)[0]
	var ownerNode, frontNode *cluster.Node
	for i, n := range nodes {
		if addrs[i] == owner {
			ownerNode = n
		} else if frontNode == nil {
			frontNode = n
		}
	}

	greq := serve.GraphRequest{Name: name, N: g.NumVertices(), Edges: g.Edges()}
	if g.Weighted() {
		greq.Weights = g.Weights()
	}
	if g.Labeled() {
		greq.Labels = g.Labels()
	}
	var gview serve.GraphView
	if err := postBench(frontNode.Advertise(), "/v1/graphs", greq, nil, &gview); err != nil {
		return rec, err
	}
	if gview.Digest != strconv.FormatUint(digest, 16) {
		return rec, fmt.Errorf("uploaded digest %s != local %x (edge round trip changed the graph)", gview.Digest, digest)
	}

	// The owner adopted inside the announce: its handoff counter and
	// cold-start histogram carry the pull.
	snap := ownerNode.Serve().Recorder().Snapshot()
	rec.HandoffOK = snap.Counter(obs.ClusterHandoffs) >= 1
	if h := snap.Hist(obs.HistClusterHandoff.String()); h.Count > 0 {
		rec.HandoffMillis = h.Mean() * 1e3
	}

	q := serve.QueryRequest{Graph: name, Kind: serve.KindPath, K: k, Seed: seed, Rounds: 1, N2: 16}

	// Leg 1: owner-local, cold.
	var localJob serve.JobView
	start := time.Now()
	if err := postBench(owner, "/v1/query", q, nil, &localJob); err != nil {
		return rec, err
	}
	rec.LocalMillis = msSince(start)
	if localJob.Status != "done" || localJob.Result == nil {
		return rec, fmt.Errorf("owner-local query ended %q (%s)", localJob.Status, localJob.Error)
	}
	rec.Answer = localJob.Result.Found

	// Leg 2: through the front — forwarded to the owner, whose cache
	// is now warm, so this wall time is the hop overhead.
	var fwdJob serve.JobView
	var hdr http.Header
	start = time.Now()
	if err := postBench(frontNode.Advertise(), "/v1/query", q, &hdr, &fwdJob); err != nil {
		return rec, err
	}
	rec.ForwardMillis = msSince(start)
	if fwdJob.Status != "done" || fwdJob.Result == nil {
		return rec, fmt.Errorf("forwarded query ended %q (%s)", fwdJob.Status, fwdJob.Error)
	}
	rec.Forwarded = hdr.Get(cluster.ServedByHeader) == owner
	// Normalize the cache flag (the forwarded repeat hits the owner's
	// cache) and compare the rest byte for byte.
	localJob.Result.Cached, fwdJob.Result.Cached = false, false
	lj, _ := json.Marshal(localJob.Result)
	fj, _ := json.Marshal(fwdJob.Result)
	rec.ForwardOK = bytes.Equal(lj, fj)
	return rec, nil
}

// postBench POSTs a JSON body and decodes the JSON response, failing
// on any non-200.
func postBench(addr, path string, body any, hdr *http.Header, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s%s: %d: %s", addr, path, resp.StatusCode, data)
	}
	if hdr != nil {
		*hdr = resp.Header.Clone()
	}
	return json.Unmarshal(data, out)
}
