package harness

// Machine-readable bench reports: `midas-bench -json out.json` runs a
// standard instrumented suite (every Table II dataset class × every
// requested k, distributed over N in-process ranks) and serializes the
// observables — modeled makespan, wall time, traffic, every telemetry
// counter, and latency-histogram quantiles — under a versioned schema,
// so CI and benchstat-style tooling can diff runs without scraping the
// human tables. BENCH_baseline.json at the repo root is one committed
// reference report (small parameters).

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/obs"
)

// BenchSchemaVersion identifies the report layout. Bump it on any
// incompatible change to Report/RunRecord/HistQuantiles.
const BenchSchemaVersion = "midas-bench/v5"

// HistQuantiles summarizes one latency-histogram family merged over
// all ranks of a run (seconds; quantiles carry the ~19% bucket
// resolution of internal/obs, min/max are exact).
type HistQuantiles struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// RunRecord is one benchmarked configuration: the paper's Algorithm 2
// for k-path on a fresh local world, telemetry enabled.
type RunRecord struct {
	Dataset     string           `json:"dataset"`
	Vertices    int              `json:"vertices"`
	Edges       int              `json:"edges"`
	K           int              `json:"k"`
	N           int              `json:"n"`
	N1          int              `json:"n1"`
	N2          int              `json:"n2"`
	Answer      bool             `json:"answer"`
	ModeledSecs float64          `json:"modeledSecs"` // max virtual clock over ranks; host-calibrated α–β constants
	WallSecs    float64          `json:"wallSecs"`    // machine-dependent
	Msgs        int64            `json:"msgs"`
	Bytes       int64            `json:"bytes"`
	Counters    map[string]int64 `json:"counters"`        // every obs counter by name
	Hists       []HistQuantiles  `json:"hists,omitempty"` // non-empty families, name-sorted
}

// ReportParams echoes the suite parameters into the report.
type ReportParams struct {
	Scale int    `json:"scale"`
	N     int    `json:"n"`
	Ks    []int  `json:"ks"`
	Seed  uint64 `json:"seed"`
	Reps  int    `json:"reps"`
}

// Report is the versioned output of `midas-bench -json`.
type Report struct {
	Schema string       `json:"schema"`
	Params ReportParams `json:"params"`
	// Build stamps the binary that produced the report (module version,
	// toolchain, VCS revision), so a regression found in a stored
	// baseline ties back to the exact revision. Optional — absent in
	// reports from older binaries — so the schema version is unchanged.
	Build    *obs.BuildInfo  `json:"build,omitempty"`
	Runs     []RunRecord     `json:"runs"`
	Batches  []BatchRecord   `json:"batches,omitempty"`  // occupancy-4 batch vs sequential (see BatchBench)
	Motifs   []MotifRecord   `json:"motifs,omitempty"`   // constrained sieve vs FASCIA baseline (see MotifBench)
	Kernels  []KernelRecord  `json:"kernels,omitempty"`  // GF kernel throughput on this host
	Stores   []StoreRecord   `json:"stores,omitempty"`   // cold-start: parse vs binary vs mmap (see StoreBench)
	Clusters []ClusterRecord `json:"clusters,omitempty"` // fleet forward hop + shard handoff (see ClusterBench)
}

// BenchReport runs the standard report suite. The counted quantities
// (Answer, Msgs, Bytes, Counters) are deterministic in the parameters
// alone; ModeledSecs and the histogram quantiles additionally depend
// on the α–β cost-model constants, which are calibrated by timing
// loops at process start — stable within a process (pinned by
// TestBenchReportDeterministicModeled), varying across hosts.
// WallSecs is honest wall time and varies freely.
func BenchReport(p Params) (Report, error) {
	p = p.withDefaults()
	build := obs.GetBuildInfo()
	rep := Report{
		Schema: BenchSchemaVersion,
		Params: ReportParams{Scale: p.Scale, N: p.N, Ks: p.Ks, Seed: p.Seed, Reps: p.Reps},
		Build:  &build,
	}
	for _, ds := range Datasets() {
		g := ds.Build(p.Scale, p.Seed)
		for _, k := range p.Ks {
			n1 := p.N
			n2 := BSMaxN2(k, p.N, n1)
			cfg := core.Config{K: k, N1: n1, N2: n2, Seed: p.Seed, Rounds: 1}
			answers := make([]bool, p.N)
			start := time.Now()
			comms, err := comm.RunLocalInspect(p.N, comm.DefaultCostModel(), func(c *comm.Comm) error {
				c.EnableObs()
				for r := 0; r < p.Reps; r++ {
					if r > 0 {
						c.Barrier()
						c.ResetTelemetry()
					}
					got, err := core.RunPath(c, g, cfg)
					if err != nil {
						return err
					}
					answers[c.Rank()] = got
				}
				return nil
			})
			if err != nil {
				return rep, fmt.Errorf("harness: report %s k=%d: %w", ds.Name, k, err)
			}
			wall := time.Since(start).Seconds()
			snaps := comm.Snapshots(comms)
			tot := obs.Totals(snaps...)
			stats := comm.TotalStats(comms)
			rec := RunRecord{
				Dataset: ds.Name, Vertices: g.NumVertices(), Edges: g.NumEdges(),
				K: k, N: p.N, N1: n1, N2: n2,
				Answer:      answers[0],
				ModeledSecs: comm.MaxClock(comms),
				WallSecs:    wall,
				Msgs:        stats.MsgsSent,
				Bytes:       stats.BytesSent,
				Counters:    make(map[string]int64, int(obs.NumCounters)),
			}
			for c := obs.Counter(0); c < obs.NumCounters; c++ {
				rec.Counters[c.String()] = tot.Counter(c)
			}
			for _, h := range tot.Hists { // already name-sorted by Totals
				if h.Count == 0 {
					continue
				}
				rec.Hists = append(rec.Hists, HistQuantiles{
					Name: h.Name, Count: h.Count,
					P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
					Max: h.Max, Mean: h.Mean(),
				})
			}
			rep.Runs = append(rep.Runs, rec)
		}
	}
	batches, err := BatchBench(p)
	if err != nil {
		return rep, err
	}
	rep.Batches = batches
	motifs, err := MotifBench(p)
	if err != nil {
		return rep, err
	}
	rep.Motifs = motifs
	rep.Kernels = KernelBench()
	stores, err := StoreBench(p)
	if err != nil {
		return rep, err
	}
	rep.Stores = stores
	clusters, err := ClusterBench(p)
	if err != nil {
		return rep, err
	}
	rep.Clusters = clusters
	return rep, nil
}

// WriteReport serializes a report to path as indented JSON.
func WriteReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report and rejects unknown schema versions.
func ReadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("harness: %s: %w", path, err)
	}
	if rep.Schema != BenchSchemaVersion {
		return rep, fmt.Errorf("harness: %s: schema %q, this binary reads %q", path, rep.Schema, BenchSchemaVersion)
	}
	return rep, nil
}
