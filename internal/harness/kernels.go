package harness

// In-process microbenchmarks of the GF slice kernels, embedded into the
// JSON bench report so a single `midas-bench -json` run records both
// the distributed run counters and the raw kernel throughput they sit
// on. Timing mirrors internal/gf/bench_test.go (dense 4096-element
// slices, coefficient table prebuilt for the Table variants) but runs
// without the testing harness, so numbers land in the report rather
// than stdout. Wall-clock measurements: machine-dependent, excluded
// from CI regression gating (see cmd/benchdiff).

import (
	"time"

	"github.com/midas-hpc/midas/internal/gf"
)

// KernelRecord is one kernel's measured throughput on dense slices.
type KernelRecord struct {
	Name      string  `json:"name"`
	Len       int     `json:"len"`       // elements per call
	NsPerOp   float64 `json:"nsPerOp"`   // one kernel call over Len elements
	MBPerSec  float64 `json:"mbPerSec"`  // source bytes processed
	ElemBytes int     `json:"elemBytes"` // element width in bytes
}

// kernelBenchLen matches the gf microbenchmarks.
const kernelBenchLen = 4096

// timeKernel runs fn repeatedly until ~2ms have elapsed and returns the
// mean ns/op. Coarse by benchstat standards but plenty to distinguish
// the ≥1.5× kernel-rewrite wins the report exists to document.
func timeKernel(fn func()) float64 {
	fn() // warm tables and cache
	const minDur = 2 * time.Millisecond
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el >= minDur {
			return float64(el.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

// KernelBench measures the hot GF kernels on dense random slices and
// returns one record per kernel.
func KernelBench() []KernelRecord {
	n := kernelBenchLen
	src := make([]gf.Elem, n)
	dst := make([]gf.Elem, n)
	aux := make([]gf.Elem, n)
	for i := range src {
		src[i] = gf.NonZero(uint64(i)*0x9E3779B97F4A7C15 + 1)
		aux[i] = gf.NonZero(uint64(i)*0xBF58476D1CE4E5B9 + 7)
	}
	src8 := make([]uint8, n)
	dst8 := make([]uint8, n)
	for i := range src8 {
		src8[i] = gf.NonZero8(uint64(i) + 1)
	}
	c := gf.NonZero(42)
	t16 := gf.NewMulTable(c)
	t8 := gf.NewMulTable8(0x35)

	rec := func(name string, elemBytes int, fn func()) KernelRecord {
		ns := timeKernel(fn)
		return KernelRecord{
			Name: name, Len: n, NsPerOp: ns,
			MBPerSec:  float64(n*elemBytes) / ns * 1e9 / 1e6,
			ElemBytes: elemBytes,
		}
	}
	return []KernelRecord{
		rec("MulSlice16", 2, func() { gf.MulSlice16(dst, src, c) }),
		rec("MulSliceTable16", 2, func() { gf.MulSliceTable16(dst, src, t16) }),
		rec("HadamardInto", 2, func() { gf.HadamardInto(dst, src, aux) }),
		rec("MulHadamardAccum", 2, func() { gf.MulHadamardAccum(dst, src, aux) }),
		rec("MulHadamardAccumScaled", 2, func() { gf.MulHadamardAccumScaled(dst, src, aux, c) }),
		rec("MulSlice8", 1, func() { gf.MulSlice8(dst8, src8, 0x35) }),
		rec("MulSliceTable8", 1, func() { gf.MulSliceTable8(dst8, src8, t8) }),
	}
}
