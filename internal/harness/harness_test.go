package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/graph"
)

// small keeps harness tests fast: tiny scale, few ranks.
func small() Params {
	return Params{Scale: 200, N: 4, Ks: []int{4}, KMax: 6, Seed: 1}
}

func TestDatasetsBuild(t *testing.T) {
	for _, d := range Datasets() {
		g := d.Build(300, 1)
		if g.NumVertices() < 300 {
			t.Fatalf("%s built %d vertices, want >= 300", d.Name, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s has no edges", d.Name)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if d, err := DatasetByName("miami"); err != nil || d.Name != "miami" {
		t.Fatalf("lookup failed: %v", err)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "long-header"}}
	tab.Add("1", "2")
	tab.Add("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "long-header") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestRunPathConfigReportsObservables(t *testing.T) {
	g := graph.RandomNLogN(150, 2)
	res, err := RunPathConfig(g, 4, core.Config{K: 4, N1: 2, N2: 4, Seed: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer {
		t.Fatal("150-vertex n·ln n graph surely has a 4-path")
	}
	if res.ModeledSecs <= 0 || res.WallSecs <= 0 {
		t.Fatalf("times missing: %+v", res)
	}
	if res.Msgs == 0 || res.Bytes == 0 {
		t.Fatalf("traffic missing: %+v", res)
	}
}

func TestBSMaxN2(t *testing.T) {
	// k=6, N=128, N1=32 → phases of 2^6·32/128 = 16 iterations
	if got := BSMaxN2(6, 128, 32); got != 16 {
		t.Fatalf("BSMaxN2 = %d, want 16", got)
	}
	if got := BSMaxN2(4, 64, 1); got != 1 {
		t.Fatalf("tiny share should floor at 1, got %d", got)
	}
	if got := BSMaxN2(20, 2, 2); got != 1<<14 {
		t.Fatalf("cap missing: %d", got)
	}
}

func TestAllFiguresRunAtTinyScale(t *testing.T) {
	p := small()
	var buf bytes.Buffer
	steps := []struct {
		name string
		run  func() error
	}{
		{"table2", func() error { return Table2(&buf, p) }},
		{"fig3", func() error { return FigPartitionSize(&buf, "random", false, p) }},
		{"fig6", func() error { return FigPartitionSize(&buf, "random", true, p) }},
		{"fig9", func() error { return Fig9(&buf, p) }},
		{"fig10", func() error { return Fig10(&buf, p) }},
		{"fig11", func() error { return Fig11(&buf, p) }},
		{"fig12", func() error { return Fig12(&buf, p) }},
		{"fig13", func() error { return Fig13(&buf, p) }},
		{"scaling-k", func() error { return ScalingK(&buf, p) }},
		{"scaling-n", func() error { return ScalingN(&buf, p) }},
		{"ablation-n2", func() error { return AblationN2(&buf, p) }},
		{"ablation-gray", func() error { return AblationGray(&buf, p) }},
		{"ablation-variant", func() error { return AblationVariant(&buf, p) }},
		{"ablation-partitioner", func() error { return AblationPartitioner(&buf, p) }},
		{"ablation-fingerprints", func() error { return AblationFingerprints(&buf, p) }},
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table II", "Fig 3", "Fig 9", "Fig 10", "Fig 11", "Fig 12", "Fig 13", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureErrorsOnBadDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := FigPartitionSize(&buf, "bogus", false, small()); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestFingerprintAblationShowsFailure(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationFingerprints(&buf, small()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "20/20") || !strings.Contains(out, "0/20") {
		t.Fatalf("ablation should show 20/20 with and 0/20 without fingerprints:\n%s", out)
	}
}

func TestProfileBreakdown(t *testing.T) {
	p := small()
	p.TracePath = filepath.Join(t.TempDir(), "profile.json")
	var buf bytes.Buffer
	if err := ProfileBreakdown(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "comm-share") || !strings.Contains(out, "makespan") {
		t.Fatalf("profile output:\n%s", out)
	}
	// The acceptance criterion: measured counters, not only the modeled
	// clock. "dp-ops" appears as a table column and in the per-rank
	// summary emitted by obs.WriteSummary.
	if !strings.Contains(out, "dp-ops") || !strings.Contains(out, "Per-rank telemetry") {
		t.Fatalf("profile output lacks measured counters:\n%s", out)
	}
	raw, err := os.ReadFile(p.TracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(raw), "traceEvents") {
		t.Fatalf("trace file malformed:\n%.200s", raw)
	}
}

// TestRepeatedRunsDoNotAccumulate pins the stale-telemetry bug: without
// ResetTelemetry between repetitions on a reused world, virtual clocks
// and traffic counters keep growing, so a 3-repetition run would report
// roughly 3x the makespan and traffic of a single run.
func TestRepeatedRunsDoNotAccumulate(t *testing.T) {
	g := graph.RandomNLogN(150, 2)
	// NoTiming keeps the virtual clock purely message-driven (no wall
	// time mixed in), so accumulation shows up as exact inequality.
	cfg := core.Config{K: 4, N1: 2, N2: 4, Seed: 1, Rounds: 1, NoTiming: true}
	once, err := RunPathConfigReps(g, 4, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	thrice, err := RunPathConfigReps(g, 4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if thrice.Answer != once.Answer {
		t.Fatalf("answer changed across repetitions: %v vs %v", thrice.Answer, once.Answer)
	}
	if thrice.Msgs != once.Msgs || thrice.Bytes != once.Bytes {
		t.Fatalf("traffic accumulated across repetitions: reps=3 (%d msgs, %d bytes) vs reps=1 (%d msgs, %d bytes)",
			thrice.Msgs, thrice.Bytes, once.Msgs, once.Bytes)
	}
	// The modeled clock is deterministic (virtual time), so the final
	// repetition must report exactly the single-run makespan.
	if thrice.ModeledSecs != once.ModeledSecs {
		t.Fatalf("modeled makespan accumulated: reps=3 %v vs reps=1 %v", thrice.ModeledSecs, once.ModeledSecs)
	}
}
