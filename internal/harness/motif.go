package harness

// Motif bench: the constrained multilinear sieve versus the in-repo
// FASCIA color-coding baseline, answering the same motif queries on the
// same labeled graph. The structural story is the memory wall: FASCIA's
// boolean colorset DP needs an n·2^k table per coloring (and e^k·ln(1/ε)
// colorings for the standard guarantee), while the sieve streams 2^k
// Gray-code iterations over O(n·k·N2) field elements — past k ≈ 12 the
// table and the iteration count push FASCIA off a node while the sieve
// keeps its footprint flat. The committed baseline runs small k (CI
// budget); rerun with -ks 13,14 to see the crossover on real hardware.

import (
	"fmt"
	"sort"
	"time"

	"github.com/midas-hpc/midas/internal/fascia"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/rng"
)

// motifBenchColors is the number of vertex colors in the bench graph's
// deterministic labeling.
const motifBenchColors = 3

// motifBenchIterCap bounds the FASCIA leg's colorings so the bench
// stays affordable at larger k: the standard e^k·ln(1/ε) budget is
// recorded in the FasciaIterations field either way, but only up to
// this many colorings actually run. The cap makes FASCIA's wall time an
// underestimate beyond k ≈ 5 — flattering the baseline, which only
// strengthens any crossover the record shows.
const motifBenchIterCap = 200

// MotifRecord is one motif query answered by both engines. K,
// Constraint, both answers, the sieve's DP-op counter, and FASCIA's
// table footprint are deterministic in the parameters; the wall-clock
// fields are honest and vary by host.
type MotifRecord struct {
	Dataset    string `json:"dataset"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	K          int    `json:"k"`
	Constraint string `json:"constraint"` // canonical "c:m,c:m"; "" = unconstrained

	MidasFound    bool    `json:"midasFound"`
	MidasDPOps    int64   `json:"midasDPOps"`
	MidasWallSecs float64 `json:"midasWallSecs"`

	FasciaFound      bool    `json:"fasciaFound"`
	FasciaIterations int     `json:"fasciaIterations"` // standard budget for (k, ε=0.05), pre-cap
	FasciaIterRun    int     `json:"fasciaIterRun"`    // colorings actually executed (≤ cap)
	FasciaTableBytes int64   `json:"fasciaTableBytes"` // n·2^k boolean DP cells per coloring
	FasciaWallSecs   float64 `json:"fasciaWallSecs"`
}

// motifBenchSpecs returns the per-k query set: the unconstrained motif
// (pure connectivity, FASCIA's home turf) and a partial constraint that
// exercises the sieve's variable groups and FASCIA's refined labels.
func motifBenchSpecs(k int) []*mld.MotifSpec {
	specs := []*mld.MotifSpec{{K: k}}
	counts := map[int32]int{0: (k + 1) / 2}
	if k >= 2 {
		counts[1] = 1
	}
	specs = append(specs, &mld.MotifSpec{K: k, Counts: counts})
	return specs
}

// constraintString renders a spec's constraint canonically (colors
// ascending), matching the cmd/midas -motif grammar.
func constraintString(spec *mld.MotifSpec) string {
	colors := make([]int32, 0, len(spec.Counts))
	for c := range spec.Counts {
		colors = append(colors, c)
	}
	sort.Slice(colors, func(i, j int) bool { return colors[i] < colors[j] })
	s := ""
	for i, c := range colors {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d:%d", c, spec.Counts[c])
	}
	return s
}

// MotifBench produces two MotifRecords per requested k (unconstrained +
// partial constraint) on the random dataset under a deterministic
// 3-coloring. Both engines run sequentially with the same seed so every
// non-wall field is reproducible; answers may legitimately differ only
// through FASCIA's capped coloring budget (both algorithms are
// one-sided, so a recorded "found" is always correct).
func MotifBench(p Params) ([]MotifRecord, error) {
	p = p.withDefaults()
	ds := Datasets()[0] // random
	g := ds.Build(p.Scale, p.Seed)
	labels := make([]int32, g.NumVertices())
	r := rng.New(rng.Hash2(p.Seed, 0x307F, uint64(g.NumVertices())))
	for i := range labels {
		labels[i] = int32(r.Intn(motifBenchColors))
	}
	g.SetLabels(labels)

	var out []MotifRecord
	for _, k := range p.Ks {
		for _, spec := range motifBenchSpecs(k) {
			rec, err := motifRecordFor(ds.Name, g, spec, p.Seed)
			if err != nil {
				return nil, fmt.Errorf("harness: motif bench k=%d %q: %w", k, constraintString(spec), err)
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// motifRecordFor runs one query through both engines.
func motifRecordFor(dataset string, g *graph.Graph, spec *mld.MotifSpec, seed uint64) (MotifRecord, error) {
	rec := MotifRecord{
		Dataset: dataset, Vertices: g.NumVertices(), Edges: g.NumEdges(),
		K: spec.K, Constraint: constraintString(spec),
	}

	obsRec := obs.NewRecorder(0, nil)
	start := time.Now()
	found, err := mld.DetectMotif(g, spec, mld.Options{Seed: seed, Rounds: 1, Obs: obsRec})
	if err != nil {
		return rec, err
	}
	rec.MidasWallSecs = time.Since(start).Seconds()
	rec.MidasFound = found
	rec.MidasDPOps = obsRec.Snapshot().Counter(obs.DPOps)

	rec.FasciaIterations = fascia.IterationsForApprox(spec.K, 0.05)
	rec.FasciaIterRun = rec.FasciaIterations
	if rec.FasciaIterRun > motifBenchIterCap {
		rec.FasciaIterRun = motifBenchIterCap
	}
	rec.FasciaTableBytes = int64(g.NumVertices()) << uint(spec.K)
	start = time.Now()
	ffound, err := fascia.DetectMotif(g, spec.K, spec.Counts, fascia.Options{Seed: seed, Iterations: rec.FasciaIterRun})
	if err != nil {
		return rec, err
	}
	rec.FasciaWallSecs = time.Since(start).Seconds()
	rec.FasciaFound = ffound
	return rec, nil
}
