package harness

// Batched-query amortization bench: the same four path queries
// answered two ways — four solo distributed runs versus one batched
// run at occupancy four — on a deliberately communication-bound
// configuration (small N2, so the per-phase α cost dominates). The
// batch pays the per-message and per-step synchronization cost once
// for all lanes, which is where the per-query speedup comes from;
// docs/BATCHING.md derives the model, docs/PERFORMANCE.md the cost
// constants.

import (
	"fmt"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/core"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// batchBenchLanes is the occupancy of the standard batch bench record.
const batchBenchLanes = 4

// batchBenchModel is the cost model both legs of the bench run under: a
// commodity 10 Gbps Ethernet/TCP cluster (≈50 µs per-message latency,
// ≈1.25 GB/s per link) rather than the InfiniBand DefaultCostModel.
// The admission window exists for exactly this regime — when the
// per-message α dominates per-rank compute, a batch pays it once for
// all lanes. Using the same model on both sides keeps the comparison
// fair; the message and DP-op counts are model-independent anyway.
func batchBenchModel() comm.CostModel {
	return comm.CostModel{Alpha: 50e-6, Beta: 1.0 / 1.25e9}
}

// BatchRecord compares one batched execution against the equivalent
// sequential runs. The Seq* fields total all lanes run solo; the
// Batch* fields are the single batched run answering the same lanes.
// PerQuery* fields are the batch cost amortized over its occupancy —
// the quantities the serving layer's admission window buys down.
// Msgs/DPOps are deterministic in the parameters; modeled seconds use
// the fixed batchBenchModel α–β constants (fully deterministic); wall
// seconds are honest and vary freely.
type BatchRecord struct {
	Dataset string `json:"dataset"`
	K       int    `json:"k"`
	N       int    `json:"n"`
	N1      int    `json:"n1"`
	N2      int    `json:"n2"`
	Lanes   int    `json:"lanes"` // batch occupancy

	SeqModeledSecs   float64 `json:"seqModeledSecs"`
	BatchModeledSecs float64 `json:"batchModeledSecs"`
	SeqWallSecs      float64 `json:"seqWallSecs"`
	BatchWallSecs    float64 `json:"batchWallSecs"`
	SeqMsgs          int64   `json:"seqMsgs"`
	BatchMsgs        int64   `json:"batchMsgs"`
	SeqDPOps         int64   `json:"seqDPOps"`
	BatchDPOps       int64   `json:"batchDPOps"`

	// PerQueryModeledSecs = BatchModeledSecs / Lanes: the amortized
	// cost of one query inside the batch.
	PerQueryModeledSecs float64 `json:"perQueryModeledSecs"`
	// PerQueryMsgs / PerQueryDPOps = Batch counters / Lanes.
	PerQueryMsgs  float64 `json:"perQueryMsgs"`
	PerQueryDPOps float64 `json:"perQueryDPOps"`
	// PerQuerySpeedup = SeqModeledSecs / BatchModeledSecs: how many
	// times cheaper one query got by riding the batch (both sides
	// answer Lanes queries, so the totals ratio IS the per-query
	// throughput ratio).
	PerQuerySpeedup float64 `json:"perQuerySpeedup"`
}

// BatchBench produces one BatchRecord per requested k on the random
// dataset: occupancy-4 path batches on a communication-bound
// configuration. The world is widened beyond p.N (and N2 pinned to 1)
// so the per-phase message cost dominates per-rank compute — the
// regime the admission window targets, where batching pays the α cost
// once for all lanes instead of once per query.
func BatchBench(p Params) ([]BatchRecord, error) {
	p = p.withDefaults()
	n := p.N
	if n < 16 {
		n = 16
	}
	ds := Datasets()[0] // random
	g := ds.Build(p.Scale, p.Seed)
	var out []BatchRecord
	for _, k := range p.Ks {
		n1 := n
		n2 := 1 // one iteration per phase: maximally α-bound
		cfg := core.Config{N1: n1, N2: n2, Seed: p.Seed, Rounds: 1}
		lanes := make([]mld.BatchLane, batchBenchLanes)
		for i := range lanes {
			lanes[i] = mld.BatchLane{K: k, Seed: p.Seed + uint64(i), Rounds: 1}
		}
		rec := BatchRecord{
			Dataset: ds.Name, K: k, N: n, N1: n1, N2: n2, Lanes: len(lanes),
		}

		// Sequential leg: each lane on its own fresh world.
		seqStart := time.Now()
		for _, l := range lanes {
			c1 := cfg
			c1.K, c1.Seed = l.K, l.Seed
			comms, err := comm.RunLocalInspect(n, batchBenchModel(), func(c *comm.Comm) error {
				c.EnableObs()
				_, err := core.RunPath(c, g, c1)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("harness: batch bench solo k=%d seed=%d: %w", l.K, l.Seed, err)
			}
			rec.SeqModeledSecs += comm.MaxClock(comms)
			rec.SeqMsgs += comm.TotalStats(comms).MsgsSent
			rec.SeqDPOps += obs.Totals(comm.Snapshots(comms)...).Counter(obs.DPOps)
		}
		rec.SeqWallSecs = time.Since(seqStart).Seconds()

		// Batched leg: all lanes in one run.
		batchStart := time.Now()
		comms, err := comm.RunLocalInspect(n, batchBenchModel(), func(c *comm.Comm) error {
			c.EnableObs()
			res, err := core.RunPathBatch(c, g, cfg, core.BatchSpec{Lanes: lanes})
			if err != nil {
				return err
			}
			for i, lr := range res {
				if lr.Err != nil {
					return fmt.Errorf("lane %d: %w", i, lr.Err)
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("harness: batch bench k=%d: %w", k, err)
		}
		rec.BatchWallSecs = time.Since(batchStart).Seconds()
		rec.BatchModeledSecs = comm.MaxClock(comms)
		rec.BatchMsgs = comm.TotalStats(comms).MsgsSent
		rec.BatchDPOps = obs.Totals(comm.Snapshots(comms)...).Counter(obs.DPOps)

		rec.PerQueryModeledSecs = rec.BatchModeledSecs / float64(rec.Lanes)
		rec.PerQueryMsgs = float64(rec.BatchMsgs) / float64(rec.Lanes)
		rec.PerQueryDPOps = float64(rec.BatchDPOps) / float64(rec.Lanes)
		if rec.BatchModeledSecs > 0 {
			rec.PerQuerySpeedup = rec.SeqModeledSecs / rec.BatchModeledSecs
		}
		out = append(out, rec)
	}
	return out, nil
}
