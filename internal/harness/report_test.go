package harness

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestBenchReportRoundTrip is the -json schema check: the suite runs,
// serializes, reloads identically, and carries counters plus histogram
// quantiles for every configuration.
func TestBenchReportRoundTrip(t *testing.T) {
	p := Params{Scale: 120, N: 2, Ks: []int{4}, Seed: 1, Reps: 1}
	rep, err := BenchReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchemaVersion {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchemaVersion)
	}
	if want := len(Datasets()) * len(p.Ks); len(rep.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), want)
	}
	for _, r := range rep.Runs {
		if r.Vertices == 0 || r.Msgs == 0 || r.ModeledSecs <= 0 || r.WallSecs <= 0 {
			t.Fatalf("run looks empty: %+v", r)
		}
		if r.Counters["dp-ops"] == 0 || r.Counters["rounds"] == 0 {
			t.Fatalf("run %s/k=%d missing counters: %v", r.Dataset, r.K, r.Counters)
		}
		if len(r.Hists) == 0 {
			t.Fatalf("run %s/k=%d has no histogram quantiles", r.Dataset, r.K)
		}
		seenSend := false
		for _, h := range r.Hists {
			if h.Count <= 0 || h.P50 > h.P90 || h.P90 > h.P99 || h.P99 > h.Max {
				t.Fatalf("quantiles disordered: %+v", h)
			}
			if h.Name == "send-latency" {
				seenSend = true
			}
		}
		if !seenSend {
			t.Fatalf("send-latency family missing: %+v", r.Hists)
		}
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(rep.Runs) || !reflect.DeepEqual(back.Params, rep.Params) {
		t.Fatalf("round trip drifted:\nwrote %+v\nread  %+v", rep.Params, back.Params)
	}
	for i := range back.Runs {
		if back.Runs[i].Dataset != rep.Runs[i].Dataset || back.Runs[i].Msgs != rep.Runs[i].Msgs ||
			back.Runs[i].Counters["dp-ops"] != rep.Runs[i].Counters["dp-ops"] {
			t.Fatalf("run %d drifted through JSON:\nwrote %+v\nread  %+v", i, rep.Runs[i], back.Runs[i])
		}
	}

	// Unknown schema versions must be rejected, not half-parsed.
	bad := rep
	bad.Schema = "midas-bench/v999"
	if err := WriteReport(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("unknown schema accepted: %v", err)
	}
}

// TestBenchReportDeterministicModeled pins that everything except wall
// time is a pure function of the parameters.
func TestBenchReportDeterministicModeled(t *testing.T) {
	p := Params{Scale: 120, N: 2, Ks: []int{4}, Seed: 3, Reps: 1}
	a, err := BenchReport(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BenchReport(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		ra, rb := a.Runs[i], b.Runs[i]
		if ra.ModeledSecs != rb.ModeledSecs || ra.Msgs != rb.Msgs || ra.Bytes != rb.Bytes ||
			ra.Answer != rb.Answer || ra.Counters["dp-ops"] != rb.Counters["dp-ops"] {
			t.Fatalf("run %d not deterministic:\n%+v\n%+v", i, ra, rb)
		}
	}
}
