package harness

import (
	"strings"
	"testing"
)

// TestMotifBench: two records per k, sane deterministic fields, and —
// on the unconstrained queries, where both engines have overwhelming
// detection probability on the dense random dataset — agreement.
func TestMotifBench(t *testing.T) {
	p := Params{Scale: 120, N: 2, Ks: []int{4, 5}, Seed: 1, Reps: 1}
	recs, err := MotifBench(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(p.Ks); len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.MidasDPOps <= 0 || r.MidasWallSecs <= 0 || r.FasciaWallSecs <= 0 {
			t.Fatalf("record looks empty: %+v", r)
		}
		if want := int64(r.Vertices) << uint(r.K); r.FasciaTableBytes != want {
			t.Fatalf("table bytes %d, want n·2^k = %d", r.FasciaTableBytes, want)
		}
		if r.FasciaIterRun > motifBenchIterCap || r.FasciaIterRun > r.FasciaIterations {
			t.Fatalf("iteration cap violated: %+v", r)
		}
		if r.Constraint == "" {
			if r.MidasFound != r.FasciaFound {
				t.Fatalf("unconstrained k=%d: sieve=%v fascia=%v", r.K, r.MidasFound, r.FasciaFound)
			}
		} else if !strings.Contains(r.Constraint, ":") {
			t.Fatalf("malformed constraint %q", r.Constraint)
		}
	}

	// The non-wall fields are pure functions of the parameters.
	again, err := MotifBench(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		a, b := recs[i], again[i]
		if a.MidasFound != b.MidasFound || a.MidasDPOps != b.MidasDPOps ||
			a.FasciaFound != b.FasciaFound || a.FasciaTableBytes != b.FasciaTableBytes {
			t.Fatalf("record %d not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
}
