package core

import (
	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// RunTree executes distributed k-tree detection (Algorithm 4). Every
// rank calls it collectively with the same graph, template and
// configuration. cfg.K is ignored; the template fixes k.
func RunTree(world *comm.Comm, g *graph.Graph, tpl *graph.Template, cfg Config) (bool, error) {
	cfg.K = tpl.K()
	if err := mld.ValidateK(cfg.K); err != nil {
		return false, err
	}
	if cfg.K > g.NumVertices() {
		return false, nil
	}
	p, err := buildPlan(world, g, cfg)
	if err != nil {
		return false, err
	}
	d := tpl.Decompose()
	rounds := cfg.mldOptions().RoundsFor(cfg.K)
	for round := 0; round < rounds; round++ {
		if err := p.checkCtx(); err != nil {
			return false, err
		}
		p.span(obs.RoundName, round, "round")
		p.rec.Add(obs.Rounds, 1)
		a := mld.NewTreeAssignment(g.NumVertices(), cfg.K, cfg.Seed, round)
		total, err := p.treeRoundLocal(d, a)
		if err != nil {
			p.endSpan()
			return false, err
		}
		global := world.AllreduceXor([]uint64{uint64(total)})
		p.endSpan()
		if global[0] != 0 {
			return true, nil
		}
	}
	return false, nil
}

// treeRoundLocal runs this rank's share of one round over the template
// decomposition and returns its partial field total. With a configured
// context the per-step synchronization doubles as the cancellation
// point (see syncStep).
func (p *plan) treeRoundLocal(d *graph.Decomposition, a *mld.Assignment) (gf.Elem, error) {
	k, n2 := p.cfg.K, p.cfg.N2
	iters := uint64(1) << uint(k)
	numPhases := p.phases(k)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)

	// Only subtrees consumed as a Right child are read at neighbor
	// vertices and need their halo exchanged.
	isRight := make([]bool, len(d.Nodes))
	for _, nd := range d.Nodes {
		if nd.Right >= 0 {
			isRight[nd.Right] = true
		}
	}

	base := p.arena.Grab(p.nSlots * n2)
	vals := make([][]gf.Elem, len(d.Nodes))
	for j, nd := range d.Nodes {
		if nd.Left >= 0 {
			vals[j] = p.arena.Grab(p.nSlots * n2)
			defer p.arena.Put(vals[j])
		}
	}
	defer p.arena.Put(base)
	one := mld.CachedMulTable(1)
	acc := make([]gf.Elem, n2)
	var total gf.Elem
	var skipped int64

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			p.span(obs.PhaseName, int(ph), "phase")
			p.rec.Add(obs.Phases, 1)
			q0 := ph * uint64(n2)
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			// k internal-node buffers plus base live at once.
			elemSec, edgeSec := p.kernelCosts(k + 1)
			for sl := 0; sl < p.nSlots; sl++ {
				a.FillBase(base[sl*n2:sl*n2+nb], p.vertOf[sl], q0, p.cfg.NoGray)
			}
			p.advanceCompute(elemSec * float64(p.nSlots) * float64(nb+k))
			p.countDPOps(float64(p.nSlots) * float64(nb+k))
			nodeElems := float64(p.sumDegOwned+len(p.owned)) * float64(nb)
			nodeCost := elemSec*nodeElems + edgeSec*float64(p.sumDegOwned)
			for j, nd := range d.Nodes {
				if nd.Left < 0 {
					vals[j] = base // leaves share the base buffer; ghosts are local
					continue
				}
				p.span(obs.LevelName, j, "level")
				p.rec.Add(obs.Levels, 1)
				left, right := vals[nd.Left], vals[nd.Right]
				dstAll := vals[j]
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					av := acc[:nb]
					for q := range av {
						av[q] = 0
					}
					for _, u := range p.g.Neighbors(v) {
						su := int(p.slotOf[u])
						src := right[su*n2 : su*n2+nb]
						if !gf.AnyNonZero(src) {
							skipped++
							continue
						}
						t := one
						if !p.cfg.NoFingerprints {
							t = a.EdgeTable(u, v, j)
						}
						gf.MulSliceTable16(av, src, t)
					}
					gf.HadamardInto(dstAll[sv*n2:sv*n2+nb], left[sv*n2:sv*n2+nb], av)
				}
				p.advanceCompute(nodeCost)
				p.countDPOps(nodeElems)
				if isRight[j] {
					p.exchange(dstAll, n2, nb, j, j)
				}
				p.endSpan()
			}
			root := vals[d.Root]
			for _, v := range p.owned {
				sv := int(p.slotOf[v])
				for q := 0; q < nb; q++ {
					total ^= root[sv*n2+q]
				}
			}
			p.advanceCompute(elemSec * float64(len(p.owned)) * float64(nb))
			p.countDPOps(float64(len(p.owned)) * float64(nb))
			p.endSpan()
		}
		if err := p.syncStep(); err != nil {
			p.rec.Add(obs.CellsSkipped, skipped)
			return 0, err
		}
		p.reportProgress(s, numPhases)
	}
	p.rec.Add(obs.CellsSkipped, skipped)
	return total, nil
}
