package core

import (
	"fmt"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/partition"
	"github.com/midas-hpc/midas/internal/rng"
)

// runPathWorld runs RunPath on a fresh local world and returns the
// common answer (asserting all ranks agree).
func runPathWorld(t *testing.T, n int, g *graph.Graph, cfg Config) bool {
	t.Helper()
	answers := make([]bool, n)
	err := comm.RunLocal(n, comm.CostModel{}, func(c *comm.Comm) error {
		got, err := RunPath(c, g, cfg)
		if err != nil {
			return err
		}
		answers[c.Rank()] = got
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if answers[r] != answers[0] {
			t.Fatalf("rank %d answered %v, rank 0 %v", r, answers[r], answers[0])
		}
	}
	return answers[0]
}

// TestDistributedPathMatchesSequential is the central cross-validation:
// for the same seed and one round, the distributed evaluation computes
// the same group-algebra total as the sequential one, so the answers
// must agree exactly — across world sizes, N1, N2, partitioners and
// graphs, on both yes- and no-instances.
func TestDistributedPathMatchesSequential(t *testing.T) {
	r := rng.New(7)
	graphs := []*graph.Graph{
		graph.RandomGNM(40, 100, 1),
		graph.Grid(6, 7),
		graph.Star(30), // no-instance for k >= 4
		graph.BarabasiAlbert(50, 2, 3),
	}
	for gi, g := range graphs {
		for _, k := range []int{3, 5} {
			seed := r.Uint64()
			want, err := mld.DetectPath(g, k, mld.Options{Seed: seed, Rounds: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct{ n, n1, n2 int }{
				{1, 1, 1}, {2, 1, 4}, {2, 2, 1}, {4, 2, 2}, {4, 4, 8},
				{6, 3, 4}, {8, 4, 32}, {8, 8, 5},
			} {
				for _, scheme := range []partition.Scheme{partition.SchemeBlock, partition.SchemeRandom, partition.SchemeBFSGrow} {
					cfg := Config{K: k, N1: tc.n1, N2: tc.n2, Seed: seed, Rounds: 1, Scheme: scheme, NoTiming: true}
					got := runPathWorld(t, tc.n, g, cfg)
					if got != want {
						t.Fatalf("graph %d k=%d N=%d N1=%d N2=%d scheme=%s: distributed %v sequential %v",
							gi, k, tc.n, tc.n1, tc.n2, scheme, got, want)
					}
				}
			}
		}
	}
}

func TestDistributedTreeMatchesSequential(t *testing.T) {
	r := rng.New(17)
	g := graph.RandomGNM(35, 90, 2)
	for trial := 0; trial < 6; trial++ {
		k := 3 + r.Intn(4)
		tpl := graph.RandomTemplate(k, r.Uint64())
		seed := r.Uint64()
		want, err := mld.DetectTree(g, tpl, mld.Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ n, n1, n2 int }{{1, 1, 2}, {4, 2, 4}, {6, 6, 1}, {4, 4, 16}} {
			answers := make([]bool, tc.n)
			err := comm.RunLocal(tc.n, comm.CostModel{}, func(c *comm.Comm) error {
				got, err := RunTree(c, g, tpl, Config{N1: tc.n1, N2: tc.n2, Seed: seed, Rounds: 1, NoTiming: true})
				if err != nil {
					return err
				}
				answers[c.Rank()] = got
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range answers {
				if a != want {
					t.Fatalf("trial %d k=%d N=%d N1=%d: distributed %v sequential %v", trial, k, tc.n, tc.n1, a, want)
				}
			}
		}
	}
}

func TestDistributedScanMatchesSequential(t *testing.T) {
	g := graph.RandomGNM(18, 40, 9)
	w := make([]int64, 18)
	r := rng.New(5)
	for i := range w {
		w[i] = int64(r.Intn(3))
	}
	g.SetWeights(w)
	const k, zmax = 3, 6
	want, err := mld.ScanTable(g, k, zmax, mld.Options{Seed: 77, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ n, n1, n2 int }{{1, 1, 1}, {2, 2, 2}, {4, 2, 4}, {4, 4, 1}} {
		var got [][]bool
		err := comm.RunLocal(tc.n, comm.CostModel{}, func(c *comm.Comm) error {
			tab, err := RunScan(c, g, ScanConfig{
				Config: Config{K: k, N1: tc.n1, N2: tc.n2, Seed: 77, Rounds: 1, NoTiming: true},
				ZMax:   zmax,
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = tab
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j <= k; j++ {
			for z := 0; z <= zmax; z++ {
				if got[j][z] != want[j][z] {
					t.Fatalf("N=%d N1=%d: cell (%d,%d) distributed %v sequential %v", tc.n, tc.n1, j, z, got[j][z], want[j][z])
				}
			}
		}
	}
}

func TestDistributedScanAgainstBruteForce(t *testing.T) {
	g := graph.Cycle(8)
	g.SetWeights([]int64{1, 0, 2, 1, 0, 1, 2, 0})
	const k, zmax = 4, 5
	want := mld.BruteScanTable(g, k, zmax)
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		got, err := RunScan(c, g, ScanConfig{
			Config: Config{K: k, N1: 2, N2: 2, Seed: 3, Epsilon: 1e-4, NoTiming: true},
			ZMax:   zmax,
		})
		if err != nil {
			return err
		}
		for j := 1; j <= k; j++ {
			for z := 0; z <= zmax; z++ {
				if got[j][z] != want[j][z] {
					return fmt.Errorf("cell (%d,%d): %v vs brute %v", j, z, got[j][z], want[j][z])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Path(10)
	// N1 does not divide N
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunPath(c, g, Config{K: 3, N1: 3, Seed: 1})
		if err == nil {
			return fmt.Errorf("N1=3 with N=4 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// bad k
	err = comm.RunLocal(1, comm.CostModel{}, func(c *comm.Comm) error {
		if _, err := RunPath(c, g, Config{K: 0}); err == nil {
			return fmt.Errorf("k=0 accepted")
		}
		if _, err := RunPath(c, g, Config{K: mld.MaxK + 1}); err == nil {
			return fmt.Errorf("k>max accepted")
		}
		if _, err := RunScan(c, g, ScanConfig{Config: Config{K: 2}, ZMax: -1}); err == nil {
			return fmt.Errorf("negative zmax accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// bad scheme
	err = comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunPath(c, g, Config{K: 3, N1: 2, Scheme: "metis"})
		if err == nil {
			return fmt.Errorf("unknown scheme accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKLargerThanGraphIsNo(t *testing.T) {
	g := graph.Path(3)
	if got := runPathWorld(t, 2, g, Config{K: 5, N1: 2, Seed: 1, NoTiming: true}); got {
		t.Fatal("k > n should be a trivial no")
	}
}

func TestRaggedPhaseCounts(t *testing.T) {
	// 2^k not divisible by N2, phases not divisible by group count:
	// exercise the ragged paths. k=5 → 32 iterations; N2=5 → 7 phases;
	// N=6, N1=2 → 3 groups → 3 steps with idle groups in the last.
	g := graph.RandomGNM(25, 60, 4)
	want, err := mld.DetectPath(g, 5, mld.Options{Seed: 11, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := runPathWorld(t, 6, g, Config{K: 5, N1: 2, N2: 5, Seed: 11, Rounds: 1, NoTiming: true}); got != want {
		t.Fatalf("ragged run: %v vs sequential %v", got, want)
	}
}

func TestMultiRoundEarlyExit(t *testing.T) {
	// A yes-instance with many rounds should still answer yes and all
	// ranks must exit together (no hang).
	g := graph.Path(8)
	if got := runPathWorld(t, 4, g, Config{K: 6, N1: 2, Seed: 2, Rounds: 5, NoTiming: true}); !got {
		t.Fatal("yes-instance missed")
	}
}

func TestHaloPlanSymmetry(t *testing.T) {
	// For every pair of parts, the sender's sendTo list must equal the
	// receiver's recvFrom list — build plans for all ranks and check.
	g := graph.RandomGNM(30, 80, 8)
	plans := make([]*plan, 4)
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		p, err := buildPlan(c, g, Config{K: 4, N1: 4, N2: 2, Seed: 6})
		if err != nil {
			return err
		}
		plans[c.Rank()] = p
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		for _, send := range p.sendTo {
			peer := plans[send.part]
			var match *haloList
			for i := range peer.recvFrom {
				if peer.recvFrom[i].part == p.myPart {
					match = &peer.recvFrom[i]
				}
			}
			if match == nil {
				t.Fatalf("part %d sends to %d but peer has no recv list", p.myPart, send.part)
			}
			if len(match.verts) != len(send.verts) {
				t.Fatalf("halo length mismatch %d→%d: %d vs %d", p.myPart, send.part, len(send.verts), len(match.verts))
			}
			for i := range send.verts {
				if send.verts[i] != match.verts[i] {
					t.Fatalf("halo vertex order mismatch %d→%d at %d", p.myPart, send.part, i)
				}
			}
		}
	}
}

func TestOwnershipPartitionInvariants(t *testing.T) {
	g := graph.RandomGNM(50, 120, 2)
	counts := make([]int, 50)
	err := comm.RunLocal(3, comm.CostModel{}, func(c *comm.Comm) error {
		p, err := buildPlan(c, g, Config{K: 4, N1: 3, Seed: 1})
		if err != nil {
			return err
		}
		for _, v := range p.owned {
			counts[v]++
		}
		// every neighbor of an owned vertex must have a slot
		for _, v := range p.owned {
			for _, u := range g.Neighbors(v) {
				if p.slotOf[u] < 0 {
					return fmt.Errorf("neighbor %d of owned %d has no slot", u, v)
				}
			}
		}
		// vertOf inverts slotOf
		for sl := 0; sl < p.nSlots; sl++ {
			if p.slotOf[p.vertOf[sl]] != int32(sl) {
				return fmt.Errorf("vertOf/slotOf mismatch at slot %d", sl)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, cnt := range counts {
		if cnt != 1 {
			t.Fatalf("vertex %d owned by %d ranks", v, cnt)
		}
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	g := graph.RandomGNM(60, 150, 3)
	comms, err := comm.RunLocalInspect(4, comm.DefaultCostModel(), func(c *comm.Comm) error {
		_, err := RunPath(c, g, Config{K: 6, N1: 2, N2: 8, Seed: 5, Rounds: 1})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if mk := comm.MaxClock(comms); mk <= 0 {
		t.Fatalf("makespan %v; compute timing not recorded", mk)
	}
	s := comm.TotalStats(comms)
	if s.MsgsSent == 0 || s.BytesSent == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
}

func TestAblationVariantsStillCorrect(t *testing.T) {
	g := graph.Grid(5, 5)
	want, _ := mld.DetectPath(g, 5, mld.Options{Seed: 21, Rounds: 1})
	if got := runPathWorld(t, 2, g, Config{K: 5, N1: 2, Seed: 21, Rounds: 1, NoGray: true, NoTiming: true}); got != want {
		t.Fatal("NoGray changed the answer")
	}
}

// TestDistributedPathRandomConfigsProperty drives random (N, N1, N2,
// scheme, k, graph) combinations through the distributed ↔ sequential
// equivalence — a property sweep beyond the fixed tables above.
func TestDistributedPathRandomConfigsProperty(t *testing.T) {
	r := rng.New(0xC0FFEE)
	schemes := []partition.Scheme{
		partition.SchemeBlock, partition.SchemeRandom,
		partition.SchemeBFSGrow, partition.SchemeMultilevel,
	}
	for trial := 0; trial < 25; trial++ {
		n := 10 + r.Intn(30)
		g := graph.RandomGNM(n, min(3*n, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(5)
		world := 1 << r.Intn(4) // 1,2,4,8
		divs := []int{}
		for d := 1; d <= world; d++ {
			if world%d == 0 {
				divs = append(divs, d)
			}
		}
		n1 := divs[r.Intn(len(divs))]
		n2 := 1 + r.Intn(1<<uint(k))
		scheme := schemes[r.Intn(len(schemes))]
		seed := r.Uint64()
		want, err := mld.DetectPath(g, k, mld.Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{K: k, N1: n1, N2: n2, Seed: seed, Rounds: 1, Scheme: scheme, NoTiming: true}
		if got := runPathWorld(t, world, g, cfg); got != want {
			t.Fatalf("trial %d: n=%d k=%d N=%d N1=%d N2=%d %s: %v vs %v",
				trial, n, k, world, n1, n2, scheme, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
