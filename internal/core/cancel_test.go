package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
)

// TestRunPathCancelledContext: an already-cancelled context makes every
// rank return context.Canceled before any round runs, with no rank left
// behind in a collective.
func TestRunPathCancelledContext(t *testing.T) {
	g := graph.RandomGNM(40, 120, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunPath(c, g, Config{K: 6, Seed: 1, Rounds: 2, Ctx: ctx})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestRunPathDeadlineStopsEarly: a deadline expiring mid-run makes all
// ranks leave at the same phase step — far before the 2^k sweep is
// done — and the recorder proves work actually stopped.
func TestRunPathDeadlineStopsEarly(t *testing.T) {
	g := graph.RandomGNM(300, 1200, 5)
	const k = 18
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	recs := make([]*obs.Recorder, 4)
	start := time.Now()
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		rec := c.EnableObs()
		recs[c.Rank()] = rec
		_, err := RunPath(c, g, Config{K: k, Seed: 2, Rounds: 1, N2: 32, Ctx: ctx})
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; the step sync is not checking the context", elapsed)
	}
	totalPhases := int64((1 << k) / 32)
	var phases int64
	for _, rec := range recs {
		phases += rec.Snapshot().Counter(obs.Phases)
	}
	if phases >= totalPhases {
		t.Fatalf("ranks executed all %d phases despite the deadline", phases)
	}
}

// TestRunTreeAndScanCancelled: the tree and scan entry points honor an
// already-cancelled context too.
func TestRunTreeAndScanCancelled(t *testing.T) {
	g := graph.RandomGNM(30, 90, 9)
	w := make([]int64, g.NumVertices())
	for i := range w {
		w[i] = int64(i % 3)
	}
	g.SetWeights(w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	tpl := graph.RandomTemplate(4, 11)
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunTree(c, g, tpl, Config{Seed: 3, Rounds: 1, Ctx: ctx})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTree: got %v, want context.Canceled", err)
	}
	err = comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunScan(c, g, ScanConfig{Config: Config{K: 3, Seed: 3, Rounds: 1, Ctx: ctx}, ZMax: 4})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunScan: got %v, want context.Canceled", err)
	}
}

// TestRunPathCancelNoGoroutineLeak: after a cancelled world run, the
// rank goroutines are all gone.
func TestRunPathCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	g := graph.RandomGNM(150, 600, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunPath(c, g, Config{K: 16, Seed: 7, Rounds: 1, N2: 32, Ctx: ctx})
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunPathPrecomputedPartition: a Part override produces the same
// answer as letting buildPlan run the scheme itself, and a mismatched
// part count is rejected.
func TestRunPathPrecomputedPartition(t *testing.T) {
	g := graph.RandomGNM(50, 150, 21)
	cfg := Config{K: 5, Seed: 4, Rounds: 1, N1: 2}
	want := runPathWorld(t, 2, g, cfg)

	part, err := partition.ByScheme(partition.SchemeBlock, g, 2, cfg.Seed^0x70a3d70a3d70a3d7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < part.Parts; i++ {
		part.Members(i) // materialize the cache before ranks share it
	}
	cfgPart := cfg
	cfgPart.Part = part
	if got := runPathWorld(t, 2, g, cfgPart); got != want {
		t.Fatalf("precomputed partition changed the answer: %v != %v", got, want)
	}

	bad := cfg
	bad.Part = part // 2 parts, but N1 defaults to world size 4
	bad.N1 = 0
	err = comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunPath(c, g, bad)
		return err
	})
	if err == nil {
		t.Fatal("mismatched precomputed partition was accepted")
	}
}
