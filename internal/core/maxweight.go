package core

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// RunMaxWeightPath is the distributed form of mld.MaxWeightPath: the
// maximum total vertex weight over simple k-paths, evaluated with the
// weight-indexed path DP under MIDAS's phase-group schedule. All ranks
// call collectively and receive the same (weight, found) answer.
func RunMaxWeightPath(world *comm.Comm, g *graph.Graph, cfg Config) (int64, bool, error) {
	if err := mld.ValidateK(cfg.K); err != nil {
		return 0, false, err
	}
	if cfg.K > g.NumVertices() {
		return 0, false, nil
	}
	var maxw int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		w := g.Weight(v)
		if w < 0 {
			return 0, false, fmt.Errorf("core: vertex %d has negative weight", v)
		}
		if w > maxw {
			maxw = w
		}
	}
	zmax := int64(cfg.K) * maxw
	p, err := buildPlan(world, g, cfg)
	if err != nil {
		return 0, false, err
	}
	best := int64(-1)
	found := false
	rounds := cfg.mldOptions().RoundsFor(cfg.K)
	for round := 0; round < rounds; round++ {
		p.span(obs.RoundName, round, "round")
		p.rec.Add(obs.Rounds, 1)
		a := mld.NewMaxWeightAssignment(g.NumVertices(), cfg.K, cfg.Seed, round)
		totals := p.maxWeightRoundLocal(a, zmax)
		packed := make([]uint64, len(totals))
		for z, t := range totals {
			packed[z] = uint64(t)
		}
		global := world.AllreduceXor(packed)
		p.endSpan()
		for z := len(global) - 1; z >= 0; z-- {
			if global[z] != 0 {
				found = true
				if int64(z) > best {
					best = int64(z)
				}
				break
			}
		}
	}
	if !found {
		return 0, false, nil
	}
	return best, true, nil
}

// maxWeightRoundLocal runs this rank's share of one round of the
// weight-indexed path DP and returns its partial per-weight totals.
func (p *plan) maxWeightRoundLocal(a *mld.Assignment, zmax int64) []gf.Elem {
	k, n2 := p.cfg.K, p.cfg.N2
	iters := uint64(1) << uint(k)
	numPhases := p.phases(k)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)
	nz := int(zmax) + 1
	var maxw int64
	for v := int32(0); v < int32(p.g.NumVertices()); v++ {
		if w := p.g.Weight(v); w > maxw {
			maxw = w
		}
	}
	zcap := func(s int) int64 {
		c := int64(s) * maxw
		if c > zmax {
			c = zmax
		}
		return c
	}

	alloc := func() [][]gf.Elem {
		out := make([][]gf.Elem, nz)
		for z := range out {
			out[z] = p.arena.Grab(p.nSlots * n2)
		}
		return out
	}
	prev, cur := alloc(), alloc()
	base := p.arena.Grab(p.nSlots * n2)
	defer func() {
		p.arena.Put(base)
		p.arena.Put(prev...)
		p.arena.Put(cur...)
	}()
	one := mld.CachedMulTable(1)
	totals := make([]gf.Elem, nz)
	var skipped int64

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			p.span(obs.PhaseName, int(ph), "phase")
			p.rec.Add(obs.Phases, 1)
			q0 := ph * uint64(n2)
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			elemSec, edgeSec := p.kernelCosts(2*nz + 1)
			for sl := 0; sl < p.nSlots; sl++ {
				a.FillBase(base[sl*n2:sl*n2+nb], p.vertOf[sl], q0, p.cfg.NoGray)
			}
			for z := 0; z < nz; z++ {
				buf := prev[z]
				for i := range buf {
					buf[i] = 0
				}
			}
			for sl := 0; sl < p.nSlots; sl++ {
				w := p.g.Weight(p.vertOf[sl])
				copy(prev[w][sl*n2:sl*n2+nb], base[sl*n2:sl*n2+nb])
			}
			p.advanceCompute(elemSec * float64(p.nSlots) * float64(2*nb+k))
			p.countDPOps(float64(p.nSlots) * float64(2*nb+k))
			for j := 2; j <= k; j++ {
				p.span(obs.LevelName, j, "level")
				p.rec.Add(obs.Levels, 1)
				zhi := zcap(j)
				zPrev := zcap(j - 1) // prev is only valid (zeroed/exchanged) up to here
				var kernelElems, hashes float64
				for z := int64(0); z <= zhi; z++ {
					buf := cur[z]
					for i := range buf {
						buf[i] = 0
					}
				}
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					iLo, iHi := sv*n2, sv*n2+nb
					wi := p.g.Weight(v)
					for _, u := range p.g.Neighbors(v) {
						su := int(p.slotOf[u])
						// One coefficient covers the whole weight column.
						t := one
						if !p.cfg.NoFingerprints {
							t = a.EdgeTable(u, v, j)
						}
						uLo, uHi := su*n2, su*n2+nb
						hashes++
						for z := wi; z <= zhi && z-wi <= zPrev; z++ {
							src := prev[z-wi][uLo:uHi]
							if !gf.AnyNonZero(src) {
								skipped++
								continue
							}
							gf.MulSliceTable16(cur[z][iLo:iHi], src, t)
							kernelElems += float64(nb)
						}
					}
					for z := wi; z <= zhi; z++ {
						dst := cur[z][iLo:iHi]
						gf.HadamardInto(dst, dst, base[iLo:iHi])
						kernelElems += float64(nb)
					}
				}
				p.advanceCompute(elemSec*kernelElems + edgeSec*hashes)
				p.countDPOps(kernelElems)
				if j < k {
					for z := int64(0); z <= zhi; z++ {
						p.exchange(cur[z], n2, nb, j, j*nz+int(z))
					}
				}
				p.endSpan()
				prev, cur = cur, prev
			}
			for z := 0; z < nz; z++ {
				buf := prev[z]
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					for q := 0; q < nb; q++ {
						totals[z] ^= buf[sv*n2+q]
					}
				}
			}
			p.advanceCompute(elemSec * float64(nz*len(p.owned)) * float64(nb))
			p.countDPOps(float64(nz*len(p.owned)) * float64(nb))
			p.endSpan()
		}
		p.world.Barrier()
	}
	p.rec.Add(obs.CellsSkipped, skipped)
	return totals
}
