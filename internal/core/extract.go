package core

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// Distributed witness extraction: the self-reduction of mld.Whittle with
// the cluster as the detection oracle. The whittling schedule (batch
// choices, shrink decisions) is a pure function of the seed and the
// oracle answers; since every rank derives the same randomness and the
// collective RunPath answers are identical everywhere, all ranks walk
// the same sequence of induced subgraphs in lockstep and the oracle
// calls line up as collectives. The final exact search runs redundantly
// on every rank's (identical, small) remnant — cheaper than electing
// and broadcasting.

// ExtractPath returns the vertices of an actual k-path using the whole
// cluster for the detection oracle; every rank calls collectively and
// receives the same path.
func ExtractPath(world *comm.Comm, g *graph.Graph, k int, cfg Config) ([]int32, error) {
	cfg.K = k
	if err := mld.ValidateK(k); err != nil {
		return nil, err
	}
	oracle := func(sub *graph.Graph) (bool, error) {
		return RunPath(world, sub, cfg)
	}
	ok, err := oracle(g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: extraction requested but graph tests negative")
	}
	stopAt := 4 * k
	if stopAt < 24 {
		stopAt = 24
	}
	remnant, toOld, err := mld.Whittle(g, cfg.Seed, stopAt, oracle)
	if err != nil {
		return nil, err
	}
	local := mld.FindPathExact(remnant, k)
	if local == nil {
		return nil, fmt.Errorf("core: witness search failed on %d-vertex remnant", remnant.NumVertices())
	}
	out := make([]int32, len(local))
	for i, v := range local {
		out[i] = toOld[v]
	}
	return out, nil
}

// ExtractTree is ExtractPath for tree templates.
func ExtractTree(world *comm.Comm, g *graph.Graph, tpl *graph.Template, cfg Config) ([]int32, error) {
	cfg.K = tpl.K()
	if err := mld.ValidateK(cfg.K); err != nil {
		return nil, err
	}
	oracle := func(sub *graph.Graph) (bool, error) {
		return RunTree(world, sub, tpl, cfg)
	}
	ok, err := oracle(g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: extraction requested but graph tests negative")
	}
	stopAt := 4 * cfg.K
	if stopAt < 24 {
		stopAt = 24
	}
	remnant, toOld, err := mld.Whittle(g, cfg.Seed, stopAt, oracle)
	if err != nil {
		return nil, err
	}
	local := mld.FindTreeExact(remnant, tpl)
	if local == nil {
		return nil, fmt.Errorf("core: witness search failed on %d-vertex remnant", remnant.NumVertices())
	}
	out := make([]int32, len(local))
	for i, v := range local {
		out[i] = toOld[v]
	}
	return out, nil
}
