package core

import (
	"errors"
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
)

// Resilient local driver: re-runs the whole detection when a run dies
// of injected (or injectable) faults. The paper's algorithm makes this
// cheap to reason about — the 2^k iterations of a round are mutually
// independent and every round is a pure function of (graph, config,
// seed, round), so re-executing after a rank failure cannot change the
// answer, only the wall/virtual time. This is the graceful-degradation
// hook the comm layer's structured errors exist for: a *WorldError
// whose every rank failure is fault-caused is a retryable event, any
// other failure is a bug and propagates immediately.

// RetryReport describes what a resilient run took to finish.
type RetryReport struct {
	Attempts int     // total attempts, including the successful one (≥1)
	Failures []error // the *WorldError of each failed attempt, in order
}

func (r RetryReport) String() string {
	if r.Attempts <= 1 {
		return "1 attempt"
	}
	return fmt.Sprintf("%d attempts (%d failed)", r.Attempts, len(r.Failures))
}

// faultCaused reports whether err is a failure the resilient driver may
// retry: every failing rank died of a *comm.FaultError (killed rank,
// severed link, exhausted retries) or of the world teardown those
// trigger (comm.ErrClosed strands the peers of a dead rank). A single
// rank failing for any other reason — a panic in the DP, a config
// error — marks the whole error non-retryable.
func faultCaused(err error) bool {
	var we *comm.WorldError
	if !errors.As(err, &we) {
		return false
	}
	for _, re := range we.Ranks {
		var fe *comm.FaultError
		if !errors.As(re.Err, &fe) && !errors.Is(re.Err, comm.ErrClosed) {
			return false
		}
	}
	return true
}

// RunPathLocalResilient runs distributed k-path detection on a fresh
// local chaos world of n ranks, re-running the whole detection (up to
// attempts times in total) when a run is killed by injected faults.
// Attempt i uses spec.WithAttempt(i): attempt 0 reproduces the spec's
// documented schedule, retries re-roll the random faults and drop
// one-shot kill rules (the re-run models restarted ranks). The comms of
// the last attempt are returned for clock/stats/obs inspection, along
// with a RetryReport of what it took. setup, when non-nil, is called on
// each rank's communicator before its SPMD function starts (e.g. to
// EnableObs).
//
// Non-fault errors are returned as-is after their first occurrence;
// exhausting attempts returns the last fault-caused *WorldError.
func RunPathLocalResilient(n int, model comm.CostModel, spec comm.FaultSpec, g *graph.Graph, cfg Config, attempts int, setup func(c *comm.Comm)) (bool, []*comm.Comm, RetryReport, error) {
	if attempts < 1 {
		attempts = 1
	}
	report := RetryReport{}
	var comms []*comm.Comm
	var err error
	for i := 0; i < attempts; i++ {
		report.Attempts = i + 1
		found := make([]bool, n)
		comms, err = comm.RunLocalFaultyInspect(n, model, spec.WithAttempt(i), func(c *comm.Comm) error {
			if setup != nil {
				setup(c)
			}
			ok, runErr := RunPath(c, g, cfg)
			found[c.Rank()] = ok
			return runErr
		})
		if err == nil {
			// All ranks agree (the verdict is an allreduce); report rank 0's.
			return found[0], comms, report, nil
		}
		if !faultCaused(err) {
			return false, comms, report, err
		}
		report.Failures = append(report.Failures, err)
	}
	return false, comms, report, err
}
