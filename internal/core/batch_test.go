package core

import (
	"context"
	"errors"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/partition"
	"github.com/midas-hpc/midas/internal/rng"
)

// runBatchWorld runs RunPathBatch on a fresh local world and returns
// rank 0's results, asserting every rank got identical answers.
func runBatchWorld(t *testing.T, n int, g *graph.Graph, cfg Config, lanes []mld.BatchLane) []mld.LaneResult {
	t.Helper()
	all := make([][]mld.LaneResult, n)
	err := comm.RunLocal(n, comm.CostModel{}, func(c *comm.Comm) error {
		res, err := RunPathBatch(c, g, cfg, BatchSpec{Lanes: lanes})
		if err != nil {
			return err
		}
		all[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		for i := range lanes {
			if all[r][i].Found != all[0][i].Found || all[r][i].Rounds != all[0][i].Rounds {
				t.Fatalf("rank %d lane %d: %+v, rank 0: %+v", r, i, all[r][i], all[0][i])
			}
		}
	}
	return all[0]
}

// TestRunPathBatchMatchesSequential cross-validates the distributed
// batched evaluation against per-lane sequential DetectPath: same
// seeds, same rounds, byte-identical field totals, so the answers must
// agree exactly — across world sizes, partitioners, N1/N2 and mixed
// per-lane k (prefix reuse inside the deepest lane's sweep).
func TestRunPathBatchMatchesSequential(t *testing.T) {
	r := rng.New(23)
	graphs := []*graph.Graph{
		graph.RandomGNM(30, 80, 3),
		graph.Grid(5, 6),
		graph.Star(20), // no-instance for k >= 4
	}
	for gi, g := range graphs {
		var lanes []mld.BatchLane
		for i := 0; i < 5; i++ {
			lanes = append(lanes, mld.BatchLane{
				K:      1 + r.Intn(7),
				Seed:   r.Uint64(),
				Rounds: 1 + r.Intn(2),
			})
		}
		for _, tc := range []struct{ n, n1, n2 int }{
			{1, 1, 4}, {2, 1, 8}, {2, 2, 4}, {4, 2, 2}, {4, 4, 16}, {6, 3, 8},
		} {
			for _, scheme := range []partition.Scheme{partition.SchemeBlock, partition.SchemeBFSGrow} {
				cfg := Config{N1: tc.n1, N2: tc.n2, Scheme: scheme, NoTiming: true}
				res := runBatchWorld(t, tc.n, g, cfg, lanes)
				for i, l := range lanes {
					want, err := mld.DetectPath(g, l.K, mld.Options{Seed: l.Seed, Rounds: l.Rounds})
					if err != nil {
						t.Fatal(err)
					}
					if res[i].Err != nil {
						t.Fatalf("graph %d N=%d lane %d: unexpected error %v", gi, tc.n, i, res[i].Err)
					}
					if res[i].Found != want {
						t.Fatalf("graph %d N=%d N1=%d N2=%d scheme=%s lane %d (k=%d): distributed %v sequential %v",
							gi, tc.n, tc.n1, tc.n2, scheme, i, l.K, res[i].Found, want)
					}
				}
			}
		}
	}
}

func TestRunPathBatchLaneLargerThanGraph(t *testing.T) {
	g := graph.Path(6)
	lanes := []mld.BatchLane{{K: 3, Seed: 1, Rounds: 1}, {K: 9, Seed: 2, Rounds: 1}}
	res := runBatchWorld(t, 2, g, Config{N2: 4, NoTiming: true}, lanes)
	if !res[0].Found {
		t.Fatalf("P3 in P6 not found")
	}
	if res[1].Found || res[1].Err != nil || res[1].Rounds != 0 {
		t.Fatalf("k>n lane: got %+v, want immediate false", res[1])
	}
}

// TestRunPathBatchLaneCancelCollective: a cancelled lane retires on
// every rank at the same step (via the per-step lane bitmask
// all-reduce) while the other lanes run to completion — the batch
// neither aborts nor deadlocks.
func TestRunPathBatchLaneCancelCollective(t *testing.T) {
	g := graph.Grid(4, 5)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	lanes := []mld.BatchLane{
		{K: 6, Seed: 1, Rounds: 1},
		{K: 7, Seed: 2, Rounds: 1, Ctx: cancelled},
		{K: 5, Seed: 3, Rounds: 1},
	}
	for _, worldN := range []int{1, 2, 4} {
		res := runBatchWorld(t, worldN, g, Config{N2: 8, NoTiming: true}, lanes)
		if !errors.Is(res[1].Err, context.Canceled) {
			t.Fatalf("N=%d: cancelled lane error = %v, want context.Canceled", worldN, res[1].Err)
		}
		for _, i := range []int{0, 2} {
			want, _ := mld.DetectPath(g, lanes[i].K, mld.Options{Seed: lanes[i].Seed, Rounds: 1})
			if res[i].Err != nil || res[i].Found != want {
				t.Fatalf("N=%d surviving lane %d: got (%v, %v), want (%v, nil)",
					worldN, i, res[i].Found, res[i].Err, want)
			}
		}
	}
}

func TestRunPathBatchWholeBatchCancel(t *testing.T) {
	g := graph.Grid(4, 4)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	lanes := []mld.BatchLane{{K: 5, Seed: 1, Rounds: 1}, {K: 6, Seed: 2, Rounds: 1}}
	errs := make([]error, 2)
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		res, err := RunPathBatch(c, g, Config{N2: 8, NoTiming: true, Ctx: cancelled}, BatchSpec{Lanes: lanes})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("rank %d: batch error = %v, want context.Canceled", c.Rank(), err)
		}
		for i, lr := range res {
			if !errors.Is(lr.Err, context.Canceled) {
				t.Errorf("rank %d lane %d: err = %v, want context.Canceled", c.Rank(), i, lr.Err)
			}
		}
		errs[c.Rank()] = err
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunPathBatchMessageCountMatchesSingleQuery pins the amortization
// claim of docs/BATCHING.md: a batch of L lanes exchanges exactly as
// many halo messages as ONE query at the deepest k — the batch widens
// payloads, never the message count. (Lanes shallower than the deepest
// can only reduce exchanged levels, never add any.)
func TestRunPathBatchMessageCountMatchesSingleQuery(t *testing.T) {
	g := graph.RandomGNM(40, 120, 5)
	cfg := Config{N1: 4, N2: 8, Seed: 9, Rounds: 1, NoTiming: true}
	countMsgs := func(run func(c *comm.Comm) error) int64 {
		comms, err := comm.RunLocalInspect(4, comm.CostModel{}, run)
		if err != nil {
			t.Fatal(err)
		}
		var msgs int64
		for _, c := range comms {
			msgs += c.Stats().MsgsSent
		}
		return msgs
	}
	single := countMsgs(func(c *comm.Comm) error {
		c1 := cfg
		c1.K = 8
		_, err := RunPath(c, g, c1)
		return err
	})
	lanes := []mld.BatchLane{
		{K: 8, Seed: 9, Rounds: 1},
		{K: 6, Seed: 10, Rounds: 1},
		{K: 5, Seed: 11, Rounds: 1},
		{K: 8, Seed: 12, Rounds: 1},
	}
	batched := countMsgs(func(c *comm.Comm) error {
		_, err := RunPathBatch(c, g, cfg, BatchSpec{Lanes: lanes})
		return err
	})
	// The batch run adds the per-step two-word lane sync (an all-reduce
	// per step plus one per round), so compare halo messages only: both
	// runs used point-to-point sends exclusively for halos, and the
	// all-reduce message overhead is bounded by the step count. Require
	// the batch to stay within single + sync overhead rather than 4×.
	if batched >= 4*single {
		t.Fatalf("batched halo traffic did not amortize: batch=%d msgs, single=%d msgs", batched, single)
	}
}
