package core

import (
	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// RunMotif executes the distributed constrained-motif detection: does
// g contain a connected spec.K-vertex subgraph whose colors satisfy
// spec? The answer is identical on all ranks and matches
// mld.DetectMotif with the same seed bit-for-bit (the constrained
// assignment is a pure function of the seed and the graph's labels, so
// ranks rebuild it locally — randomness costs no communication). The
// halo/all-reduce schedule is the scan evaluator's with a single
// weight stratum.
func RunMotif(world *comm.Comm, g *graph.Graph, spec *mld.MotifSpec, cfg Config) (bool, error) {
	if err := spec.Validate(); err != nil {
		return false, err
	}
	cfg.K = spec.K
	if cfg.K > g.NumVertices() {
		return false, nil
	}
	p, err := buildPlan(world, g, cfg)
	if err != nil {
		return false, err
	}
	rounds := cfg.mldOptions().RoundsFor(cfg.K)
	for round := 0; round < rounds; round++ {
		if err := p.checkCtx(); err != nil {
			return false, err
		}
		p.span(obs.RoundName, round, "round")
		p.rec.Add(obs.Rounds, 1)
		a := mld.NewMotifAssignment(g, spec, cfg.Seed, round)
		total, err := p.motifRoundLocal(a, cfg.K)
		if err != nil {
			p.endSpan()
			return false, err
		}
		global := world.AllreduceXor([]uint64{uint64(total)})
		p.endSpan()
		if global[0] != 0 {
			return true, nil
		}
	}
	return false, nil
}

// motifRoundLocal runs this rank's share of one round and returns its
// partial field total. The DP is the scan recurrence without the
// weight axis: levels jj ≥ 2 combine a local piece P(v,j') with a
// neighbor piece P(u,jj−j'), so every finished level below the last is
// halo-exchanged before the next one reads it (level 1 is the base
// row, which each rank fills at ghost slots locally). With a
// configured context the per-step synchronization doubles as the
// cancellation point (see syncStep).
func (p *plan) motifRoundLocal(a *mld.Assignment, k int) (gf.Elem, error) {
	n2 := p.cfg.N2
	if total := uint64(1) << uint(k); uint64(n2) > total {
		n2 = int(total)
	}
	iters := uint64(1) << uint(k)
	numPhases := (iters + uint64(n2) - 1) / uint64(n2)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)

	tab := make([][]gf.Elem, k+1)
	for jj := 1; jj <= k; jj++ {
		tab[jj] = p.arena.Grab(p.nSlots * n2)
	}
	defer func() { p.arena.Put(tab[1:]...) }()
	var total gf.Elem
	var skipped int64

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			p.span(obs.PhaseName, int(ph), "phase")
			p.rec.Add(obs.Phases, 1)
			q0 := ph * uint64(n2)
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			elemSec, edgeSec := p.kernelCosts(k + 1)
			// Base case at every slot (owned and ghost) — local.
			for sl := 0; sl < p.nSlots; sl++ {
				a.FillBase(tab[1][sl*n2:sl*n2+nb], p.vertOf[sl], q0, p.cfg.NoGray)
			}
			for jj := 2; jj <= k; jj++ {
				buf := tab[jj]
				for i := range buf {
					buf[i] = 0
				}
			}
			p.advanceCompute(elemSec * float64(p.nSlots) * float64(nb))
			p.countDPOps(float64(p.nSlots) * float64(nb))
			for jj := 2; jj <= k; jj++ {
				p.span(obs.LevelName, jj, "level")
				p.rec.Add(obs.Levels, 1)
				var kernelElems, hashes float64
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					iLo, iHi := sv*n2, sv*n2+nb
					for _, u := range p.g.Neighbors(v) {
						su := int(p.slotOf[u])
						uLo, uHi := su*n2, su*n2+nb
						for jp := 1; jp < jj; jp++ {
							src1 := tab[jp][iLo:iHi]
							if !gf.AnyNonZero(src1) {
								skipped++
								continue
							}
							src2 := tab[jj-jp][uLo:uHi]
							if !gf.AnyNonZero(src2) {
								skipped++
								continue
							}
							var r gf.Elem = 1
							if !p.cfg.NoFingerprints {
								r = a.MotifCoeff(u, v, jj, jp)
							}
							hashes++
							// P(v,jj) += r · P(v,jp) ⊙ P(u,jj−jp)
							gf.MulHadamardAccumScaled(tab[jj][iLo:iHi], src1, src2, r)
							kernelElems += float64(nb)
						}
					}
				}
				p.advanceCompute(elemSec*kernelElems + edgeSec*hashes)
				p.countDPOps(kernelElems)
				// Halo for this level: later levels read every earlier
				// level at neighbor vertices. The final level is only
				// summed locally.
				if jj < k {
					p.exchange(tab[jj], n2, nb, jj, jj)
				}
				p.endSpan()
			}
			for _, v := range p.owned {
				sv := int(p.slotOf[v])
				for q := 0; q < nb; q++ {
					total ^= tab[k][sv*n2+q]
				}
			}
			p.advanceCompute(elemSec * float64(len(p.owned)) * float64(nb))
			p.countDPOps(float64(len(p.owned)) * float64(nb))
			p.endSpan()
		}
		if err := p.syncStep(); err != nil {
			p.rec.Add(obs.CellsSkipped, skipped)
			return 0, err
		}
		p.reportProgress(s, numPhases)
	}
	p.rec.Add(obs.CellsSkipped, skipped)
	return total, nil
}
