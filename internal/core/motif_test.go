package core

import (
	"math/rand"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// TestDistributedMotifMatchesSequential: for the same seed, RunMotif's
// partitioned evaluation computes the same field totals as
// mld.DetectMotif, so answers agree exactly — across world sizes,
// batching widths, and constraint shapes (empty, partial, exact).
func TestDistributedMotifMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	graphs := []*graph.Graph{
		graph.RandomGNM(40, 100, 1),
		graph.Grid(6, 7),
		graph.BarabasiAlbert(50, 2, 3),
	}
	for gi, g := range graphs {
		n := g.NumVertices()
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(r.Intn(3))
		}
		g.SetLabels(labels)
		specs := []*mld.MotifSpec{
			{K: 4},                              // unconstrained
			{K: 5, Counts: map[int32]int{0: 2}}, // partial
			{K: 4, Counts: map[int32]int{0: 2, 1: 1, 2: 1}}, // exact
		}
		for si, spec := range specs {
			seed := r.Uint64()
			want, err := mld.DetectMotif(g, spec, mld.Options{Seed: seed, Rounds: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, tc := range []struct{ n, n1, n2 int }{
				{1, 1, 4}, {2, 2, 1}, {2, 1, 8}, {4, 2, 2}, {4, 4, 16},
			} {
				cfg := Config{N1: tc.n1, N2: tc.n2, Seed: seed, Rounds: 1}
				answers := make([]bool, tc.n)
				err := comm.RunLocal(tc.n, comm.CostModel{}, func(c *comm.Comm) error {
					got, rerr := RunMotif(c, g, spec, cfg)
					if rerr != nil {
						return rerr
					}
					answers[c.Rank()] = got
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for rk := range answers {
					if answers[rk] != want {
						t.Fatalf("graph %d spec %d world %+v rank %d: distributed %v, sequential %v",
							gi, si, tc, rk, answers[rk], want)
					}
				}
			}
		}
	}
}

// TestRunMotifValidation: invalid specs and k > n resolve before any
// communication.
func TestRunMotifValidation(t *testing.T) {
	g := graph.RandomGNM(10, 20, 1)
	g.SetLabels(make([]int32, 10))
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		if _, err := RunMotif(c, g, &mld.MotifSpec{K: 2, Counts: map[int32]int{0: 5}}, Config{Rounds: 1}); err == nil {
			return errAssert("invalid spec accepted")
		}
		found, err := RunMotif(c, g, &mld.MotifSpec{K: 15}, Config{Rounds: 1})
		if err != nil {
			return err
		}
		if found {
			return errAssert("k > n reported found")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type errAssert string

func (e errAssert) Error() string { return string(e) }
