package core

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// Distributed evaluator for the paper's Algorithm 1 arithmetic: integers
// mod 2^(k+1) instead of GF(2^16). This is the exact printed algorithm
// (plus the fingerprint fix), distributed under the same phase-group
// schedule — the ablation arm that lets the GF-vs-Koutis comparison run
// at cluster scale, not just sequentially. Selected via
// Config-compatible option on RunPathVariant.

// RunPathVariant is RunPath with an explicit evaluation variant.
// VariantGF16 behaves exactly like RunPath; VariantKoutis runs the
// mod-2^(k+1) evaluation with a sum-mod reduction; VariantGF8 is not
// offered distributed (its purpose is the sequential width ablation).
func RunPathVariant(world *comm.Comm, g *graph.Graph, cfg Config, variant mld.Variant) (bool, error) {
	switch variant {
	case mld.VariantGF16:
		return RunPath(world, g, cfg)
	case mld.VariantKoutis:
		return runPathKoutis(world, g, cfg)
	default:
		return false, fmt.Errorf("core: variant %v not supported distributed", variant)
	}
}

func runPathKoutis(world *comm.Comm, g *graph.Graph, cfg Config) (bool, error) {
	if err := mld.ValidateK(cfg.K); err != nil {
		return false, err
	}
	if cfg.K > g.NumVertices() {
		return false, nil
	}
	p, err := buildPlan(world, g, cfg)
	if err != nil {
		return false, err
	}
	mod := uint64(1) << uint(cfg.K+1)
	rounds := cfg.mldOptions().RoundsFor(cfg.K)
	for round := 0; round < rounds; round++ {
		p.span(obs.RoundName, round, "round")
		p.rec.Add(obs.Rounds, 1)
		a := mld.NewKoutisAssignment(g.NumVertices(), cfg.K, cfg.Seed, round)
		total := p.koutisRoundLocal(a, mod)
		global := world.AllreduceSumMod([]uint64{total}, mod)
		p.endSpan()
		if global[0] != 0 {
			return true, nil
		}
	}
	return false, nil
}

// koutisRoundLocal runs this rank's share of one round with integer
// arithmetic; values are exchanged as uint64 vectors.
func (p *plan) koutisRoundLocal(a *mld.KoutisAssignment, mod uint64) uint64 {
	k, n2 := p.cfg.K, p.cfg.N2
	iters := uint64(1) << uint(k)
	numPhases := p.phases(k)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)

	base := make([]uint64, p.nSlots*n2)
	prev := make([]uint64, p.nSlots*n2)
	cur := make([]uint64, p.nSlots*n2)
	var total uint64
	// mod = 2^(k+1), so reduction is a mask; see mld.koutisPathRound.
	mask := mod - 1

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			p.span(obs.PhaseName, int(ph), "phase")
			p.rec.Add(obs.Phases, 1)
			q0 := ph * uint64(n2)
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			elemSec, edgeSec := p.kernelCosts(3)
			for sl := 0; sl < p.nSlots; sl++ {
				v := p.vertOf[sl]
				for q := 0; q < nb; q++ {
					// Koutis iterations use the plain mask order (no
					// Gray trick for the ±1 base case).
					base[sl*n2+q] = a.Base(v, q0+uint64(q))
				}
			}
			copy(prev, base)
			p.advanceCompute(elemSec * float64(p.nSlots) * float64(nb))
			p.countDPOps(float64(p.nSlots) * float64(nb))
			levelElems := float64(p.sumDegOwned+len(p.owned)) * float64(nb)
			levelCost := elemSec*levelElems + edgeSec*float64(p.sumDegOwned)
			for j := 2; j <= k; j++ {
				p.span(obs.LevelName, j, "level")
				p.rec.Add(obs.Levels, 1)
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					dst := cur[sv*n2 : sv*n2+nb]
					for q := range dst {
						dst[q] = 0
					}
					for _, u := range p.g.Neighbors(v) {
						su := int(p.slotOf[u])
						r := uint64(1)
						if !p.cfg.NoFingerprints {
							r = a.EdgeCoeff(u, v, j)
						}
						src := prev[su*n2 : su*n2+nb]
						for q := range dst {
							dst[q] = (dst[q] + r*src[q]) & mask
						}
					}
					b := base[sv*n2 : sv*n2+nb]
					for q := range dst {
						dst[q] = (dst[q] * b[q]) & mask
					}
				}
				p.advanceCompute(levelCost)
				p.countDPOps(levelElems)
				if j < k {
					p.exchange64(cur, n2, nb, j, j)
				}
				p.endSpan()
				prev, cur = cur, prev
			}
			for _, v := range p.owned {
				sv := int(p.slotOf[v])
				for q := 0; q < nb; q++ {
					total = (total + prev[sv*n2+q]) & mask
				}
			}
			p.advanceCompute(elemSec * float64(len(p.owned)) * float64(nb))
			p.countDPOps(float64(len(p.owned)) * float64(nb))
			p.endSpan()
		}
		p.world.Barrier()
	}
	return total
}

// exchange64 is exchange for uint64 value vectors (8 bytes per element).
func (p *plan) exchange64(vals []uint64, stride, nb, level, tag int) {
	p.span(obs.HaloName, level, "halo")
	for _, h := range p.sendTo {
		payload := make([]byte, 8*nb*len(h.slots))
		off := 0
		for _, s := range h.slots {
			vec := vals[int(s)*stride : int(s)*stride+nb]
			for _, e := range vec {
				payload[off] = byte(e)
				payload[off+1] = byte(e >> 8)
				payload[off+2] = byte(e >> 16)
				payload[off+3] = byte(e >> 24)
				payload[off+4] = byte(e >> 32)
				payload[off+5] = byte(e >> 40)
				payload[off+6] = byte(e >> 48)
				payload[off+7] = byte(e >> 56)
				off += 8
			}
		}
		p.group.Send(h.part, tag, payload)
		p.rec.Add(obs.HaloMsgs, 1)
		p.rec.Add(obs.HaloBytes, int64(len(payload)))
		p.rec.AddHaloLevel(level, int64(len(payload)))
	}
	for _, h := range p.recvFrom {
		payload := p.group.Recv(h.part, tag)
		if len(payload) != 8*nb*len(h.slots) {
			panic(fmt.Sprintf("core: koutis halo from part %d has %d bytes, want %d",
				h.part, len(payload), 8*nb*len(h.slots)))
		}
		off := 0
		for _, s := range h.slots {
			vec := vals[int(s)*stride : int(s)*stride+nb]
			for q := range vec {
				vec[q] = uint64(payload[off]) | uint64(payload[off+1])<<8 |
					uint64(payload[off+2])<<16 | uint64(payload[off+3])<<24 |
					uint64(payload[off+4])<<32 | uint64(payload[off+5])<<40 |
					uint64(payload[off+6])<<48 | uint64(payload[off+7])<<56
				off += 8
			}
		}
	}
}
