package core

import (
	"fmt"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/rng"
)

func TestDistributedMaxWeightMatchesSequential(t *testing.T) {
	r := rng.New(61)
	for trial := 0; trial < 6; trial++ {
		n := 15 + r.Intn(10)
		g := graph.RandomGNM(n, 3*n, r.Uint64())
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(4))
		}
		g.SetWeights(w)
		k := 3 + r.Intn(3)
		seed := r.Uint64()
		wantW, wantOK, err := mld.MaxWeightPath(g, k, mld.Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ n, n1, n2 int }{{1, 1, 2}, {4, 2, 4}, {4, 4, 8}, {6, 3, 1}} {
			err := comm.RunLocal(tc.n, comm.CostModel{}, func(c *comm.Comm) error {
				gotW, gotOK, err := RunMaxWeightPath(c, g, Config{K: k, N1: tc.n1, N2: tc.n2, Seed: seed, Rounds: 1, NoTiming: true})
				if err != nil {
					return err
				}
				if gotOK != wantOK || (wantOK && gotW != wantW) {
					return fmt.Errorf("rank %d: got (%d,%v) want (%d,%v)", c.Rank(), gotW, gotOK, wantW, wantOK)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("trial %d N=%d N1=%d: %v", trial, tc.n, tc.n1, err)
			}
		}
	}
}

func TestDistributedMaxWeightAgainstBruteForce(t *testing.T) {
	g := graph.Cycle(10)
	g.SetWeights([]int64{5, 1, 1, 1, 4, 1, 1, 3, 1, 2})
	const k = 4
	wantW, wantOK := mld.BruteMaxWeightPath(g, k)
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		gotW, gotOK, err := RunMaxWeightPath(c, g, Config{K: k, N1: 2, N2: 4, Seed: 9, Epsilon: 1e-5, NoTiming: true})
		if err != nil {
			return err
		}
		if gotOK != wantOK || gotW != wantW {
			return fmt.Errorf("got (%d,%v) want (%d,%v)", gotW, gotOK, wantW, wantOK)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedMaxWeightValidation(t *testing.T) {
	g := graph.Path(5)
	g.SetWeights([]int64{1, -1, 0, 0, 0})
	err := comm.RunLocal(1, comm.CostModel{}, func(c *comm.Comm) error {
		if _, _, err := RunMaxWeightPath(c, g, Config{K: 2, Seed: 1}); err == nil {
			return fmt.Errorf("negative weight accepted")
		}
		if _, _, err := RunMaxWeightPath(c, graph.Path(3), Config{K: 0}); err == nil {
			return fmt.Errorf("k=0 accepted")
		}
		w, ok, err := RunMaxWeightPath(c, graph.Path(3), Config{K: 9, Seed: 1})
		if err != nil || ok || w != 0 {
			return fmt.Errorf("k>n should be a quiet no: %d %v %v", w, ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
