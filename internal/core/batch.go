package core

// Batched multi-query distributed runs: one collective schedule — one
// partition, one phase/step plan, one halo exchange per (phase, level)
// and one two-word sync per step — services up to mld.MaxBatchLanes
// k-path queries at once. The per-message α cost and the barrier
// schedule amortize over the lanes, which is where the near-linear
// per-query cost drop of docs/BATCHING.md comes from; per-lane bytes
// and DP compute still scale with occupancy.
//
// Lane semantics mirror mld's batch evaluators: every lane keeps its
// own Assignment, shallower lanes fold their totals from the Gray
// prefix of the deepest lane's sweep, and a cancelled lane is retired
// collectively (its bit rides the per-step all-reduce bitmask, so all
// ranks mask it out at the same step and the halo widths never
// diverge).

import (
	"context"
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// BatchSpec is the query batch handed to RunPathBatch: the lanes to
// answer in one collective run. Per-run knobs (N1, N2, partition,
// context) stay in Config; per-query knobs (seed, epsilon, rounds,
// cancellation) ride the lanes.
type BatchSpec struct {
	Lanes []mld.BatchLane
}

// batchLane is one lane's per-rank state.
type batchLane struct {
	mld.BatchLane
	idx         int
	k           int
	iters       uint64
	roundsTotal int
	a           *mld.Assignment
	off         int
	nb          int
	total       gf.Elem
	found       bool
	done        bool
	err         error
	roundsRun   int64
	phases      int64
}

func (st *batchLane) ctxErr() error {
	if st.Ctx == nil {
		return nil
	}
	return st.Ctx.Err()
}

// laneSpan is a contiguous element range of a vertex row covering
// adjacent live lanes — the unit of fused copies and of halo packing.
type laneSpan struct{ lo, hi int }

func mergeSpans(lanes []*batchLane) []laneSpan {
	out := make([]laneSpan, 0, len(lanes))
	for _, st := range lanes {
		lo, hi := st.off, st.off+st.nb
		if n := len(out); n > 0 && out[n-1].hi == lo {
			out[n-1].hi = hi
		} else {
			out = append(out, laneSpan{lo, hi})
		}
	}
	return out
}

// RunPathBatch executes distributed k-path detection for every lane of
// the batch in one collective run. Every rank of the world calls it
// with the same graph, config, and lanes; all ranks return the same
// per-lane answers, each identical to a solo RunPath with the lane's
// seeding. Config.K and the per-query seeding fields are ignored (the
// lanes carry them); Config.Ctx still cancels the whole batch.
func RunPathBatch(world *comm.Comm, g *graph.Graph, cfg Config, spec BatchSpec) ([]mld.LaneResult, error) {
	lanes := spec.Lanes
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > mld.MaxBatchLanes {
		return nil, fmt.Errorf("core: batch of %d lanes exceeds mld.MaxBatchLanes=%d", len(lanes), mld.MaxBatchLanes)
	}
	res := make([]mld.LaneResult, len(lanes))
	n := g.NumVertices()
	sts := make([]*batchLane, 0, len(lanes))
	kmax, maxRounds := 0, 0
	for i, l := range lanes {
		if err := mld.ValidateK(l.K); err != nil {
			return nil, err
		}
		if l.K > n {
			continue // Found=false, no work; identical on every rank
		}
		lo := cfg.mldOptions()
		lo.Seed, lo.Epsilon, lo.Rounds = l.Seed, l.Epsilon, l.Rounds
		st := &batchLane{BatchLane: l, idx: i, k: l.K, iters: uint64(1) << uint(l.K), roundsTotal: lo.RoundsFor(l.K)}
		sts = append(sts, st)
		if l.K > kmax {
			kmax = l.K
		}
		if st.roundsTotal > maxRounds {
			maxRounds = st.roundsTotal
		}
	}
	if len(sts) == 0 {
		return res, nil
	}
	cfg.K = kmax
	p, err := buildPlan(world, g, cfg)
	if err != nil {
		return nil, err
	}
	n2 := p.cfg.N2

	var batchErr error
	for round := 0; round < maxRounds && batchErr == nil; round++ {
		if err := p.syncLanes(sts); err != nil {
			batchErr = err
			break
		}
		var active []*batchLane
		for _, st := range sts {
			if !st.done && round < st.roundsTotal {
				active = append(active, st)
			}
		}
		if len(active) == 0 {
			break
		}
		p.span(obs.RoundName, round, "round")
		p.rec.Add(obs.Rounds, int64(len(active)))
		for _, st := range active {
			st.a = mld.NewPathAssignment(n, st.k, st.Seed, round)
			st.total = 0
			st.roundsRun++
		}
		err := p.batchPathRoundLocal(active, n2)
		if err != nil {
			p.endSpan()
			batchErr = err
			break
		}
		// One all-reduce of the whole lane vector decides every lane's
		// round on every rank identically (Algorithm 2's MPIReduce,
		// amortized over the batch).
		vec := make([]uint64, len(active))
		for i, st := range active {
			vec[i] = uint64(st.total)
		}
		global := p.world.AllreduceXor(vec)
		p.endSpan()
		for i, st := range active {
			if st.done {
				continue // retired collectively mid-round
			}
			if global[i] != 0 {
				st.found, st.done = true, true
			} else if round+1 >= st.roundsTotal {
				st.done = true
			}
		}
	}
	if batchErr != nil {
		for _, st := range sts {
			if !st.done {
				st.done, st.err = true, batchErr
			}
		}
	}
	for _, st := range sts {
		res[st.idx] = mld.LaneResult{
			Found: st.found, Rounds: st.roundsRun, Phases: st.phases,
			TotalPhases: int64((st.iters + uint64(n2) - 1) / uint64(n2)),
			Err:         st.err,
		}
	}
	return res, batchErr
}

// syncLanes is the batch protocol's collective synchronization point:
// a two-word OR all-reduce carrying [batch-wide cancel flag, per-lane
// cancel bitmask]. Every rank contributes its local observations and
// applies the agreed union, so lanes retire at the same step on every
// rank and the subsequent halo spans never diverge. This replaces the
// plain barrier of the single-query protocol unconditionally — the
// batch entry point is a new collective schedule, sized one word wider.
func (p *plan) syncLanes(sts []*batchLane) error {
	var flag, mask uint64
	if p.cfg.Ctx != nil && p.cfg.Ctx.Err() != nil {
		flag = 1
	}
	for i, st := range sts {
		if !st.done && st.ctxErr() != nil {
			mask |= uint64(1) << uint(i)
		}
	}
	out := p.world.AllreduceOr([]uint64{flag, mask})
	if out[0] != 0 {
		if p.cfg.Ctx != nil {
			if err := p.cfg.Ctx.Err(); err != nil {
				return err
			}
		}
		// Another rank saw the cancellation first.
		return context.Canceled
	}
	for i, st := range sts {
		if out[1]&(uint64(1)<<uint(i)) != 0 && !st.done {
			st.done = true
			if err := st.ctxErr(); err != nil {
				st.err = err
			} else {
				st.err = context.Canceled
			}
		}
	}
	return nil
}

// liveLanes returns the lanes participating in phase q0 — not retired
// (collectively agreed) and still inside their own Gray prefix — with
// their live widths set. Purely deterministic in the agreed state, so
// every rank computes identical sets (and identical halo spans).
func liveLanes(sts []*batchLane, q0 uint64, n2 int) (live []*batchLane, kPhase int) {
	for _, st := range sts {
		if st.done || q0 >= st.iters {
			continue
		}
		st.nb = n2
		if rem := st.iters - q0; uint64(st.nb) > rem {
			st.nb = int(rem)
		}
		live = append(live, st)
		if st.k > kPhase {
			kPhase = st.k
		}
	}
	return live, kPhase
}

// fold accumulates the lane's finished DP level over the owned slots.
func (st *batchLane) fold(p *plan, vals []gf.Elem, stride int) {
	for _, v := range p.owned {
		row := int(p.slotOf[v])*stride + st.off
		for q := 0; q < st.nb; q++ {
			st.total ^= vals[row+q]
		}
	}
}

// batchPathRoundLocal runs this rank's share of one batched round.
// The structure is pathRoundLocal with a lane dimension: per phase,
// base values fill per live lane, the level loop runs to the deepest
// live k, each level exchanges ONE aggregated halo message per peer
// covering every lane still needing the next level, and lanes fold
// their totals at their own final level.
func (p *plan) batchPathRoundLocal(sts []*batchLane, n2 int) error {
	stride := len(sts) * n2
	var itersMax uint64
	for i, st := range sts {
		st.off = i * n2
		if st.iters > itersMax {
			itersMax = st.iters
		}
	}
	numPhases := (itersMax + uint64(n2) - 1) / uint64(n2)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)

	base := p.arena.Grab(p.nSlots * stride)
	prev := p.arena.Grab(p.nSlots * stride)
	cur := p.arena.Grab(p.nSlots * stride)
	defer p.arena.Put(base, prev, cur)
	one := mld.CachedMulTable(1)
	var skipped int64

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			q0 := ph * uint64(n2)
			live, kPhase := liveLanes(sts, q0, n2)
			if len(live) > 0 {
				p.span(obs.PhaseName, int(ph), "phase")
				p.rec.Add(obs.Phases, 1)
				elemSec, edgeSec := p.kernelCosts(3)
				// Base case per lane; ghost base values are computable
				// locally from the lane's globally-derived assignment.
				for _, st := range live {
					for sv := 0; sv < p.nSlots; sv++ {
						row := sv*stride + st.off
						st.a.FillBase(base[row:row+st.nb], p.vertOf[sv], q0, p.cfg.NoGray)
					}
					p.advanceCompute(elemSec * float64(p.nSlots) * float64(st.nb+st.k))
					p.countDPOps(float64(p.nSlots) * float64(st.nb+st.k))
				}
				spans := mergeSpans(live)
				for sv := 0; sv < p.nSlots; sv++ {
					row := sv * stride
					for _, sp := range spans {
						copy(prev[row+sp.lo:row+sp.hi], base[row+sp.lo:row+sp.hi])
					}
				}
				for _, st := range live {
					if st.k == 1 {
						st.fold(p, prev, stride)
					}
				}
				for j := 2; j <= kPhase; j++ {
					var lvl []*batchLane
					var lvlWidth int64
					for _, st := range live {
						if st.k >= j {
							lvl = append(lvl, st)
							lvlWidth += int64(st.nb)
						}
					}
					spans = mergeSpans(lvl)
					p.span(obs.LevelName, j, "level")
					p.rec.Add(obs.Levels, 1)
					for _, v := range p.owned {
						sv := int(p.slotOf[v])
						row := sv * stride
						for _, sp := range spans {
							dst := cur[row+sp.lo : row+sp.hi]
							for q := range dst {
								dst[q] = 0
							}
						}
						for _, u := range p.g.Neighbors(v) {
							urow := int(p.slotOf[u]) * stride
							for _, st := range lvl {
								src := prev[urow+st.off : urow+st.off+st.nb]
								if !gf.AnyNonZero(src) {
									skipped++
									continue
								}
								t := one
								if !p.cfg.NoFingerprints {
									t = st.a.EdgeTable(u, v, j)
								}
								gf.MulSliceTable16(cur[row+st.off:row+st.off+st.nb], src, t)
							}
						}
						for _, sp := range spans {
							gf.HadamardInto(cur[row+sp.lo:row+sp.hi], cur[row+sp.lo:row+sp.hi], base[row+sp.lo:row+sp.hi])
						}
					}
					levelElems := float64(p.sumDegOwned+len(p.owned)) * float64(lvlWidth)
					p.advanceCompute(elemSec*levelElems + edgeSec*float64(p.sumDegOwned)*float64(len(lvl)))
					p.countDPOps(levelElems)
					// One aggregated halo message per peer regardless of
					// lane count, covering exactly the lanes that still
					// need level j as input (k > j). The deepest level
					// feeds only the local fold and needs no halo.
					var next []*batchLane
					for _, st := range lvl {
						if st.k > j {
							next = append(next, st)
						}
					}
					if len(next) > 0 {
						p.exchangeSpans(cur, stride, mergeSpans(next), j, j)
					}
					p.endSpan()
					prev, cur = cur, prev
					for _, st := range lvl {
						if st.k == j {
							st.fold(p, prev, stride)
						}
					}
				}
				var foldWidth float64
				for _, st := range live {
					foldWidth += float64(st.nb) // every live lane folds once per phase
				}
				p.advanceCompute(elemSec * float64(len(p.owned)) * foldWidth)
				p.countDPOps(float64(len(p.owned)) * foldWidth)
				p.endSpan()
			}
		}
		// Every rank walks the same global phase schedule, so the lane
		// phase counters stay rank-identical (the serve layer reads them
		// from rank 0's results).
		for gidx := 0; gidx < p.groups; gidx++ {
			ph2 := s*uint64(p.groups) + uint64(gidx)
			if ph2 >= numPhases {
				break
			}
			q02 := ph2 * uint64(n2)
			for _, st := range sts {
				if !st.done && q02 < st.iters {
					st.phases++
				}
			}
		}
		// Algorithm 2 line 12, batch form: agree on cancellations.
		if err := p.syncLanes(sts); err != nil {
			p.rec.Add(obs.CellsSkipped, skipped)
			return err
		}
	}
	p.rec.Add(obs.CellsSkipped, skipped)
	return nil
}

// exchangeSpans is exchange generalized to a batched value buffer: the
// same one-message-per-peer halo, with each boundary slot contributing
// the given spans (the live lanes' blocks) instead of one dense
// vector. Message COUNT therefore matches a single-query run at equal
// N1/N2; only the payload width scales with occupancy.
func (p *plan) exchangeSpans(vals []gf.Elem, stride int, spans []laneSpan, level, tag int) {
	width := 0
	for _, sp := range spans {
		width += sp.hi - sp.lo
	}
	p.span(obs.HaloName, level, "halo")
	haloStart := p.world.Clock().Now()
	for _, h := range p.sendTo {
		payload := make([]byte, 2*width*len(h.slots))
		off := 0
		for _, s := range h.slots {
			row := int(s) * stride
			for _, sp := range spans {
				for _, e := range vals[row+sp.lo : row+sp.hi] {
					payload[off] = byte(e)
					payload[off+1] = byte(e >> 8)
					off += 2
				}
			}
		}
		p.group.Send(h.part, tag, payload)
		p.rec.Add(obs.HaloMsgs, 1)
		p.rec.Add(obs.HaloBytes, int64(len(payload)))
		p.rec.AddHaloLevel(level, int64(len(payload)))
	}
	for _, h := range p.recvFrom {
		payload := p.group.Recv(h.part, tag)
		if len(payload) != 2*width*len(h.slots) {
			panic(fmt.Sprintf("core: batched halo message from part %d has %d bytes, want %d",
				h.part, len(payload), 2*width*len(h.slots)))
		}
		off := 0
		for _, s := range h.slots {
			row := int(s) * stride
			for _, sp := range spans {
				vec := vals[row+sp.lo : row+sp.hi]
				for q := range vec {
					vec[q] = gf.Elem(payload[off]) | gf.Elem(payload[off+1])<<8
					off += 2
				}
			}
		}
	}
	p.rec.Observe(obs.HistHaloExchange, p.world.Clock().Now()-haloStart)
	p.endSpan()
}
