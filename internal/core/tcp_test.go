package core

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

// TestDistributedPathOverTCP runs the full MIDAS path algorithm over
// real sockets (ranks as goroutines, traffic through the loopback TCP
// transport) and cross-checks against the sequential answer — the same
// guarantee the local-transport tests give, now for the wire path the
// multi-process deployment uses.
func TestDistributedPathOverTCP(t *testing.T) {
	g := graph.RandomGNM(30, 70, 5)
	const k = 4
	want, err := mld.DetectPath(g, k, mld.Options{Seed: 13, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root := ln.Addr().String()
	ln.Close()

	const n = 4
	errs := make([]error, n)
	answers := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("panic: %v", p)
				}
			}()
			c, err := comm.ConnectTCP(rank, n, root, comm.CostModel{})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			got, err := RunPath(c, g, Config{K: k, N1: 2, N2: 4, Seed: 13, Rounds: 1, NoTiming: true})
			if err != nil {
				errs[rank] = err
				return
			}
			answers[rank] = got
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, a := range answers {
		if a != want {
			t.Fatalf("rank %d answered %v, sequential says %v", r, a, want)
		}
	}
}
