package core

import (
	"sync"
	"time"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/rng"
)

// Compute-cost calibration.
//
// Modeled makespans need per-rank compute times. Measuring them with
// wall clocks is wrong on this machine: with N ranks multiplexed onto
// one core, a rank's timed section includes the time slices of every
// other runnable goroutine, inflating "compute" by up to N×. Instead,
// the evaluators count their operations and convert them to seconds
// with two constants calibrated once per process:
//
//	elemSec — seconds per vector-kernel element (MulSlice16/Hadamard,
//	          measured on cache-resident 128-wide vectors)
//	edgeSec — seconds of per-edge overhead (fingerprint hash + call)
//
// The model deliberately does NOT vary the element cost with the
// rank's working-set size: an attempt to calibrate footprint-dependent
// costs with synthetic sweeps produced numbers contradicting the real
// measurements (the actual DP keeps the GF tables hot and streams its
// buffers, which a synthetic pattern fails to mimic). Cache effects are
// therefore reported where they can be measured honestly — the
// sequential wall-time N2/Gray ablations — while the makespan model
// captures the partitioning and communication structure, which is what
// the scaling figures are about (DESIGN.md §3).

var (
	calibOnce sync.Once
	elemSecC  float64
	edgeSecC  float64
)

func calibrate() {
	calibOnce.Do(func() {
		const width = 128
		dst := make([]gf.Elem, width)
		src := make([]gf.Elem, width)
		for i := range src {
			src[i] = gf.Elem(i*2654435761 + 1)
		}
		gf.MulSlice16(dst, src, 3) // warm tables
		const iters = 20000
		start := time.Now()
		for i := 0; i < iters; i++ {
			gf.MulSlice16(dst, src, gf.Elem(i)|1)
		}
		elemSecC = time.Since(start).Seconds() / float64(iters*width)

		start = time.Now()
		var sink gf.Elem
		for i := 0; i < iters; i++ {
			sink ^= gf.NonZero(rng.Hash2(42, uint64(i), 7))
		}
		_ = sink
		edgeSecC = time.Since(start).Seconds() / float64(iters)
		if elemSecC <= 0 {
			elemSecC = 1e-9
		}
		if edgeSecC <= 0 {
			edgeSecC = 1e-8
		}
	})
}

// kernelCosts returns the calibrated (element, edge) costs. The buffers
// argument (the number of live nSlots×N2 arrays) is accepted for
// interface stability but unused; see the package comment above.
func (p *plan) kernelCosts(buffers int) (elemSec, edgeSec float64) {
	calibrate()
	return elemSecC, edgeSecC
}

// Query auto-planning.
//
// The serving layer historically took N1 (graph parts) and N2 (phase
// width) as static flags, which is wrong twice over in a fleet: the
// right N2 depends on the graph's size (the DP streams nSlots×N2
// element buffers — too wide thrashes the cache and coarsens
// cancellation, too narrow wastes sweep overhead), and the right grain
// depends on how loaded the replica is (a busy worker pool wants
// finer phases so cancellation and batching compose). AutoPlanN2 and
// AutoPlanN1 are pure functions of those inputs — deliberately NOT of
// the calibrated constants above, so every replica of a fleet picks
// the same plan for the same query and cached results stay shareable.
// Answers are independent of both knobs (pinned by the equivalence
// suites); only performance is at stake.

// autoPlanStateBudget is the target bytes of per-lane DP state an
// auto-planned phase may stream (nSlots × N2 × 2-byte elements ≲
// budget). 8 MiB keeps the working set within a typical L2+L3 share.
const autoPlanStateBudget = 8 << 20

// AutoPlanN2 picks the iteration-batch width for a query on a graph
// with the given vertex count. load is the replica's current queued-
// queries-per-worker ratio rounded down (0 = idle); each load step
// halves the state budget so a busy replica runs finer-grained phases.
// The result is a power of two in [16, 256], additionally capped at
// 2^k like Config.withDefaults caps N2.
func AutoPlanN2(vertices, k, load int) int {
	if vertices < 1 {
		vertices = 1
	}
	if load < 0 {
		load = 0
	}
	if load > 3 {
		load = 3 // quantized: beyond 3× queue pressure, no finer grain
	}
	budget := int64(autoPlanStateBudget) >> uint(load)
	n2 := 256
	for n2 > 16 && int64(vertices)*2*int64(n2) > budget {
		n2 >>= 1
	}
	if k > 0 && k < 31 {
		if total := 1 << uint(k); n2 > total {
			n2 = total
		}
	}
	return n2
}

// AutoPlanN1 picks the graph-part count for a distributed query on a
// world of the given rank count: the largest divisor of ranks that
// still leaves every part at least autoPlanMinPart vertices, so tiny
// graphs replicate phases across groups instead of shattering into
// halo-dominated slivers. Always ≥ 1 and a divisor of ranks, so the
// result is valid for core.Config.N1.
func AutoPlanN1(vertices, ranks int) int {
	if ranks <= 1 {
		return 1
	}
	const autoPlanMinPart = 256
	for n1 := ranks; n1 > 1; n1-- {
		if ranks%n1 != 0 {
			continue
		}
		if vertices/n1 >= autoPlanMinPart {
			return n1
		}
	}
	return 1
}
