package core

import (
	"sync"
	"time"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/rng"
)

// Compute-cost calibration.
//
// Modeled makespans need per-rank compute times. Measuring them with
// wall clocks is wrong on this machine: with N ranks multiplexed onto
// one core, a rank's timed section includes the time slices of every
// other runnable goroutine, inflating "compute" by up to N×. Instead,
// the evaluators count their operations and convert them to seconds
// with two constants calibrated once per process:
//
//	elemSec — seconds per vector-kernel element (MulSlice16/Hadamard,
//	          measured on cache-resident 128-wide vectors)
//	edgeSec — seconds of per-edge overhead (fingerprint hash + call)
//
// The model deliberately does NOT vary the element cost with the
// rank's working-set size: an attempt to calibrate footprint-dependent
// costs with synthetic sweeps produced numbers contradicting the real
// measurements (the actual DP keeps the GF tables hot and streams its
// buffers, which a synthetic pattern fails to mimic). Cache effects are
// therefore reported where they can be measured honestly — the
// sequential wall-time N2/Gray ablations — while the makespan model
// captures the partitioning and communication structure, which is what
// the scaling figures are about (DESIGN.md §3).

var (
	calibOnce sync.Once
	elemSecC  float64
	edgeSecC  float64
)

func calibrate() {
	calibOnce.Do(func() {
		const width = 128
		dst := make([]gf.Elem, width)
		src := make([]gf.Elem, width)
		for i := range src {
			src[i] = gf.Elem(i*2654435761 + 1)
		}
		gf.MulSlice16(dst, src, 3) // warm tables
		const iters = 20000
		start := time.Now()
		for i := 0; i < iters; i++ {
			gf.MulSlice16(dst, src, gf.Elem(i)|1)
		}
		elemSecC = time.Since(start).Seconds() / float64(iters*width)

		start = time.Now()
		var sink gf.Elem
		for i := 0; i < iters; i++ {
			sink ^= gf.NonZero(rng.Hash2(42, uint64(i), 7))
		}
		_ = sink
		edgeSecC = time.Since(start).Seconds() / float64(iters)
		if elemSecC <= 0 {
			elemSecC = 1e-9
		}
		if edgeSecC <= 0 {
			edgeSecC = 1e-8
		}
	})
}

// kernelCosts returns the calibrated (element, edge) costs. The buffers
// argument (the number of live nSlots×N2 arrays) is accepted for
// interface stability but unused; see the package comment above.
func (p *plan) kernelCosts(buffers int) (elemSec, edgeSec float64) {
	calibrate()
	return elemSecC, edgeSecC
}
