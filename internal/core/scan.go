package core

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"

	"github.com/midas-hpc/midas/internal/graph"
)

// ScanConfig extends Config with the weight cap of the scan-statistics
// feasibility table.
type ScanConfig struct {
	Config
	ZMax int64
}

// RunScan executes the distributed scan-statistics evaluation
// (Algorithm 5): it returns the table feas[j][z] (1 ≤ j ≤ cfg.K,
// 0 ≤ z ≤ cfg.ZMax) of connected-subgraph feasibility, identical on all
// ranks. As in the sequential version, each target size j runs in its
// own 2^j iteration space (DESIGN.md §2).
func RunScan(world *comm.Comm, g *graph.Graph, cfg ScanConfig) ([][]bool, error) {
	if err := mld.ValidateK(cfg.K); err != nil {
		return nil, err
	}
	if cfg.ZMax < 0 {
		return nil, fmt.Errorf("core: negative weight cap %d", cfg.ZMax)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.Weight(v) < 0 {
			return nil, fmt.Errorf("core: vertex %d has negative weight", v)
		}
	}
	feas := make([][]bool, cfg.K+1)
	for j := 1; j <= cfg.K; j++ {
		feas[j] = make([]bool, cfg.ZMax+1)
	}
	for j := 1; j <= cfg.K && j <= g.NumVertices(); j++ {
		sub := cfg.Config
		sub.K = j
		p, err := buildPlan(world, g, sub)
		if err != nil {
			return nil, err
		}
		rounds := sub.mldOptions().RoundsFor(j)
		for round := 0; round < rounds; round++ {
			if err := p.checkCtx(); err != nil {
				return nil, err
			}
			p.span(obs.RoundName, round, "round")
			p.rec.Add(obs.Rounds, 1)
			a := mld.NewScanAssignment(g.NumVertices(), j, cfg.Seed, round)
			totals, err := p.scanRoundLocal(a, j, cfg.ZMax)
			if err != nil {
				p.endSpan()
				return nil, err
			}
			packed := make([]uint64, len(totals))
			for z, t := range totals {
				packed[z] = uint64(t)
			}
			global := world.AllreduceXor(packed)
			p.endSpan()
			for z := range global {
				if global[z] != 0 {
					feas[j][z] = true
				}
			}
		}
	}
	return feas, nil
}

// scanRoundLocal runs this rank's share of one round at target size j
// and returns the partial per-weight totals. With a configured context
// the per-step synchronization doubles as the cancellation point (see
// syncStep).
func (p *plan) scanRoundLocal(a *mld.Assignment, j int, zmax int64) ([]gf.Elem, error) {
	n2 := p.cfg.N2
	if total := uint64(1) << uint(j); uint64(n2) > total {
		n2 = int(total)
	}
	iters := uint64(1) << uint(j)
	numPhases := (iters + uint64(n2) - 1) / uint64(n2)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)
	nz := int(zmax) + 1
	// Mirror the sequential evaluator's capacity bound: a subgraph on s
	// vertices weighs at most s·max_v w(v).
	var maxw int64
	for v := int32(0); v < int32(p.g.NumVertices()); v++ {
		if w := p.g.Weight(v); w > maxw {
			maxw = w
		}
	}
	zcap := func(s int) int {
		c := int64(s) * maxw
		if c > zmax {
			c = zmax
		}
		return int(c)
	}

	tab := make([][][]gf.Elem, j+1)
	for jj := 1; jj <= j; jj++ {
		tab[jj] = make([][]gf.Elem, nz)
		for z := 0; z < nz; z++ {
			tab[jj][z] = p.arena.Grab(p.nSlots * n2)
		}
	}
	base := p.arena.Grab(p.nSlots * n2)
	defer func() {
		p.arena.Put(base)
		for jj := 1; jj <= j; jj++ {
			p.arena.Put(tab[jj]...)
		}
	}()
	totals := make([]gf.Elem, nz)
	var skipped int64

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			p.span(obs.PhaseName, int(ph), "phase")
			p.rec.Add(obs.Phases, 1)
			q0 := ph * uint64(n2)
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			elemSec, edgeSec := p.kernelCosts(j*nz + 1)
			for sl := 0; sl < p.nSlots; sl++ {
				a.FillBase(base[sl*n2:sl*n2+nb], p.vertOf[sl], q0, p.cfg.NoGray)
			}
			for jj := 1; jj <= j; jj++ {
				for z := 0; z < nz; z++ {
					buf := tab[jj][z]
					for i := range buf {
						buf[i] = 0
					}
				}
			}
			// Base case at every slot (owned and ghost) — local.
			for sl := 0; sl < p.nSlots; sl++ {
				w := p.g.Weight(p.vertOf[sl])
				if w > zmax {
					continue
				}
				copy(tab[1][w][sl*n2:sl*n2+nb], base[sl*n2:sl*n2+nb])
			}
			p.advanceCompute(elemSec * float64(p.nSlots) * float64(2*nb+j))
			p.countDPOps(float64(p.nSlots) * float64(2*nb+j))
			for jj := 2; jj <= j; jj++ {
				p.span(obs.LevelName, jj, "level")
				p.rec.Add(obs.Levels, 1)
				var kernelElems, hashes float64
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					iLo, iHi := sv*n2, sv*n2+nb
					for _, u := range p.g.Neighbors(v) {
						su := int(p.slotOf[u])
						uLo, uHi := su*n2, su*n2+nb
						for jp := 1; jp < jj; jp++ {
							jr := jj - jp
							for zp := 0; zp <= zcap(jp); zp++ {
								src1 := tab[jp][zp][iLo:iHi]
								if !gf.AnyNonZero(src1) {
									skipped++
									continue
								}
								var r gf.Elem = 1
								if !p.cfg.NoFingerprints {
									r = a.ScanCoeff(u, v, jj, jp, int64(zp))
								}
								hashes++
								for zr := 0; zr <= zcap(jr) && zp+zr < nz; zr++ {
									src2 := tab[jr][zr][uLo:uHi]
									if !gf.AnyNonZero(src2) {
										skipped++
										continue
									}
									gf.MulHadamardAccumScaled(tab[jj][zp+zr][iLo:iHi], src1, src2, r)
									kernelElems += float64(nb)
								}
							}
						}
					}
				}
				p.advanceCompute(elemSec*kernelElems + edgeSec*hashes)
				p.countDPOps(kernelElems)
				// Halo for this level: later levels read every earlier
				// level at neighbor vertices. The final level is only
				// summed locally.
				if jj < j {
					for z := 0; z < nz; z++ {
						p.exchange(tab[jj][z], n2, nb, jj, jj*nz+z)
					}
				}
				p.endSpan()
			}
			for z := 0; z < nz; z++ {
				buf := tab[j][z]
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					for q := 0; q < nb; q++ {
						totals[z] ^= buf[sv*n2+q]
					}
				}
			}
			p.advanceCompute(elemSec * float64(nz*len(p.owned)) * float64(nb))
			p.countDPOps(float64(nz*len(p.owned)) * float64(nb))
			p.endSpan()
		}
		if err := p.syncStep(); err != nil {
			p.rec.Add(obs.CellsSkipped, skipped)
			return nil, err
		}
		p.reportProgress(s, numPhases)
	}
	p.rec.Add(obs.CellsSkipped, skipped)
	return totals, nil
}
