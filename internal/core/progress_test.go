package core

// Config.Progress contract: world rank 0 (only) reports monotone
// global sweep progress reaching exactly (done, total) = (numPhases,
// numPhases) by the end of each round.

import (
	"sync"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
)

func TestRunPathProgressRankZeroMonotone(t *testing.T) {
	g := graph.RandomGNM(40, 120, 7)
	var mu sync.Mutex
	var fromRanks []int
	var dones []int64
	var totals []int64
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		rank := c.Rank()
		cfg := Config{
			K: 10, N2: 64, Seed: 3, Rounds: 1,
			Progress: func(done, total int64) {
				mu.Lock()
				fromRanks = append(fromRanks, rank)
				dones = append(dones, done)
				totals = append(totals, total)
				mu.Unlock()
			},
		}
		_, err := RunPath(c, g, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) == 0 {
		t.Fatal("Progress never called")
	}
	for _, r := range fromRanks {
		if r != 0 {
			t.Fatalf("Progress called from rank %d, want rank 0 only", r)
		}
	}
	// 2^10 / 64 = 16 phases; every report carries the round total, done
	// climbs monotonically and finishes exactly at the total.
	const numPhases = 16
	prev := int64(0)
	for i, d := range dones {
		if totals[i] != numPhases {
			t.Fatalf("report %d total = %d, want %d", i, totals[i], numPhases)
		}
		if d < prev || d > numPhases {
			t.Fatalf("report %d done = %d not monotone within [%d, %d]", i, d, prev, numPhases)
		}
		prev = d
	}
	if prev != numPhases {
		t.Fatalf("final done = %d, want %d", prev, numPhases)
	}
}

func TestRunPathProgressGroupedClamped(t *testing.T) {
	// Two groups of two ranks sweep concurrently: the joint done count
	// advances by the group count per step but must clamp at the phase
	// total even when it does not divide evenly.
	g := graph.RandomGNM(40, 120, 7)
	var mu sync.Mutex
	var dones []int64
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		cfg := Config{
			K: 9, N1: 2, N2: 128, Seed: 3, Rounds: 1, // 2^9/128 = 4 phases, 2 groups
			Progress: func(done, total int64) {
				mu.Lock()
				dones = append(dones, done)
				mu.Unlock()
				if total != 4 {
					t.Errorf("total = %d, want 4", total)
				}
			},
		}
		_, err := RunPath(c, g, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) == 0 {
		t.Fatal("Progress never called")
	}
	for i, d := range dones {
		if d > 4 {
			t.Fatalf("report %d done = %d exceeds the phase total", i, d)
		}
	}
	if dones[len(dones)-1] != 4 {
		t.Fatalf("final done = %d, want 4", dones[len(dones)-1])
	}
}
