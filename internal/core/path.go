package core

import (
	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
)

// RunPath executes distributed k-path detection (Algorithms 2 and 3).
// Every rank of the world communicator calls it collectively with the
// same graph and configuration; all ranks return the same answer.
func RunPath(world *comm.Comm, g *graph.Graph, cfg Config) (bool, error) {
	answer, _, err := RunPathProfiled(world, g, cfg)
	return answer, err
}

func validateConfig(g *graph.Graph, cfg Config) error {
	return mld.ValidateK(cfg.K)
}

// pathRoundLocal runs this rank's share of one round's 2^k iterations
// and returns its partial field total. With a configured context the
// per-step synchronization doubles as the cancellation point (see
// syncStep).
func (p *plan) pathRoundLocal(a *mld.Assignment) (gf.Elem, error) {
	k, n2 := p.cfg.K, p.cfg.N2
	iters := uint64(1) << uint(k)
	numPhases := p.phases(k)
	steps := (numPhases + uint64(p.groups) - 1) / uint64(p.groups)

	base := p.arena.Grab(p.nSlots * n2)
	prev := p.arena.Grab(p.nSlots * n2)
	cur := p.arena.Grab(p.nSlots * n2)
	defer p.arena.Put(base, prev, cur)
	one := mld.CachedMulTable(1)
	var total gf.Elem
	var skipped int64

	for s := uint64(0); s < steps; s++ {
		ph := s*uint64(p.groups) + uint64(p.gid)
		if ph < numPhases {
			p.span(obs.PhaseName, int(ph), "phase")
			p.rec.Add(obs.Phases, 1)
			q0 := ph * uint64(n2)
			nb := n2
			if rem := iters - q0; uint64(nb) > rem {
				nb = int(rem)
			}
			elemSec, edgeSec := p.kernelCosts(3)
			// Base case (Algorithm 3 lines 5–7). Ghost base values are
			// computable locally: the assignment is globally derived.
			for s := 0; s < p.nSlots; s++ {
				a.FillBase(base[s*n2:s*n2+nb], p.vertOf[s], q0, p.cfg.NoGray)
			}
			copy(prev, base)
			p.advanceCompute(elemSec * float64(p.nSlots) * float64(nb+k))
			p.countDPOps(float64(p.nSlots) * float64(nb+k))
			levelElems := float64(p.sumDegOwned+len(p.owned)) * float64(nb)
			levelCost := elemSec*levelElems + edgeSec*float64(p.sumDegOwned)
			for j := 2; j <= k; j++ {
				p.span(obs.LevelName, j, "level")
				p.rec.Add(obs.Levels, 1)
				for _, v := range p.owned {
					sv := int(p.slotOf[v])
					dst := cur[sv*n2 : sv*n2+nb]
					for q := range dst {
						dst[q] = 0
					}
					for _, u := range p.g.Neighbors(v) {
						su := int(p.slotOf[u])
						src := prev[su*n2 : su*n2+nb]
						if !gf.AnyNonZero(src) {
							skipped++
							continue
						}
						t := one
						if !p.cfg.NoFingerprints {
							t = a.EdgeTable(u, v, j)
						}
						gf.MulSliceTable16(dst, src, t)
					}
					gf.HadamardInto(dst, dst, base[sv*n2:sv*n2+nb])
				}
				p.advanceCompute(levelCost)
				p.countDPOps(levelElems)
				// Send result to neighbors (Algorithm 3 lines 14–16),
				// one aggregated message per destination part. The last
				// level feeds only the local sum, so it needs no halo.
				if j < k {
					p.exchange(cur, n2, nb, j, j)
				}
				p.endSpan()
				prev, cur = cur, prev
			}
			for _, v := range p.owned {
				sv := int(p.slotOf[v])
				for q := 0; q < nb; q++ {
					total ^= prev[sv*n2+q]
				}
			}
			p.advanceCompute(elemSec * float64(len(p.owned)) * float64(nb))
			p.countDPOps(float64(len(p.owned)) * float64(nb))
			p.endSpan()
		}
		// Algorithm 2 line 12: all groups synchronize between batches
		// (and, with a context, agree on cancellation).
		if err := p.syncStep(); err != nil {
			p.rec.Add(obs.CellsSkipped, skipped)
			return 0, err
		}
		p.reportProgress(s, numPhases)
	}
	p.rec.Add(obs.CellsSkipped, skipped)
	return total, nil
}
