// Package core implements MIDAS itself — the distributed multilinear
// detection algorithm of the paper's Section IV — on top of the
// internal/comm substrate.
//
// The world of N ranks is split into a = N/N1 *phase groups* of N1
// ranks (comm.Split). All groups share one deterministic partition of
// the graph into N1 parts; rank r of a group owns part r. The 2^k
// iterations are cut into phases of N2 iterations; phase t is handled
// by group t mod a. Within a phase, the group evaluates the polynomial
// bottom-up: each DP level updates the owned vertices' iteration
// vectors and then exchanges boundary vectors with neighboring parts in
// one aggregated message per (source, destination) pair — the paper's
// communication batching. Per-phase-step world barriers and the final
// XOR all-reduce mirror Algorithm 2's MPIBarrier/MPIReduce.
//
// Everything random (vertex scalars, fingerprints, partition seeds) is
// derived from the configured seed, so all ranks construct identical
// assignments with zero communication.
//
// Per-rank compute time is modeled by counting DP operations and
// converting them with constants calibrated once on this machine
// (costmodel.go) — wall-clock measurement would be inflated by
// goroutine preemption when many ranks share one core. Combined with
// the α–β message costs in internal/comm, the maximum clock after a run
// is the modeled makespan used by the scaling experiments (DESIGN.md
// §3).
package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/partition"
)

// Config parameterizes a MIDAS run. Every rank must pass identical
// values.
type Config struct {
	K       int
	N1      int // graph parts per phase group; must divide world size; 0 → world size
	N2      int // iterations per phase; 0 → 128 (capped at 2^k)
	Seed    uint64
	Epsilon float64          // target failure probability (default 0.05)
	Rounds  int              // 0 → derived from Epsilon
	Scheme  partition.Scheme // partitioner; "" → block

	NoFingerprints bool // ablation: the unsound verbatim pseudo-code
	NoGray         bool // ablation: recompute base values per iteration
	NoTiming       bool // skip wall-time clock advancement (pure answers)

	// Ctx, when non-nil, makes the run cancellable: between phase steps
	// the ranks agree on the cancellation state with a one-word
	// all-reduce (replacing the plain barrier, so every rank leaves the
	// collective schedule at the same step) and return the context's
	// error. Nil — the default — keeps the exact barrier protocol, so
	// message-count-pinned tests and cost models are unchanged. All
	// ranks must receive the same context. The serving layer
	// (internal/serve) threads each request's deadline context here.
	Ctx context.Context

	// Part, when non-nil, is a precomputed partition to use instead of
	// running the configured Scheme — the mechanism by which a resident
	// service reuses one partition across many queries on the same
	// graph. It must have exactly N1 parts (after N1 defaulting) and
	// cover the graph's vertices; its Members cache must already be
	// materialized if ranks share the pointer concurrently (call
	// Members(i) for every part once before handing it out).
	Part *partition.Partition

	// Progress, when non-nil, receives global phase progress for the
	// current round's iteration sweep: after each collective phase
	// step, world rank 0 (only — one reporter per world) calls it with
	// the number of phases all groups have finished jointly and the
	// round's total. The serving layer threads each query's trace
	// updater here; the callback runs on rank 0's execution goroutine
	// between collectives, so keep it cheap and non-blocking.
	Progress func(done, total int64)
}

func (cfg Config) withDefaults(worldSize, k int) (Config, error) {
	if cfg.N1 == 0 {
		cfg.N1 = worldSize
	}
	if cfg.N1 < 1 || cfg.N1 > worldSize || worldSize%cfg.N1 != 0 {
		return cfg, fmt.Errorf("core: N1=%d must divide world size %d", cfg.N1, worldSize)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = partition.SchemeBlock
	}
	if cfg.N2 <= 0 {
		cfg.N2 = 128
	}
	if total := uint64(1) << uint(k); uint64(cfg.N2) > total {
		cfg.N2 = int(total)
	}
	return cfg, nil
}

func (cfg Config) mldOptions() mld.Options {
	return mld.Options{
		Seed: cfg.Seed, Epsilon: cfg.Epsilon, Rounds: cfg.Rounds,
		N2: cfg.N2, NoFingerprints: cfg.NoFingerprints, NoGray: cfg.NoGray,
	}
}

// plan is the per-rank execution plan: the partition, this rank's owned
// vertex set, ghost slots for remote neighbors, and the symmetric halo
// exchange lists. All ranks derive identical plans deterministically.
type plan struct {
	cfg    Config
	g      *graph.Graph
	group  *comm.Comm // the phase group communicator (size N1)
	world  *comm.Comm
	groups int // number of phase groups a = N/N1
	gid    int // this rank's group index

	part   *partition.Partition
	myPart int
	owned  []int32 // global ids, sorted
	slotOf []int32 // global id → value-buffer slot; -1 when unused
	vertOf []int32 // slot → global id
	nSlots int     // owned + ghosts

	// halo lists per peer part, sorted by part id then vertex id.
	sendTo   []haloList // our owned boundary vertices each peer needs
	recvFrom []haloList // peer-owned vertices our updates need

	computeSecs float64 // accumulated modeled/measured compute time (profiling)
	sumDegOwned int     // Σ_{v owned} deg(v): the per-level work measure

	rec   *obs.Recorder // the world's recorder; nil when observability is off
	arena *mld.Arena    // slab pool shared across this plan's rounds
}

type haloList struct {
	part  int
	verts []int32 // global ids, ascending
	slots []int32 // value-buffer slots of verts
}

func buildPlan(world *comm.Comm, g *graph.Graph, cfg Config) (*plan, error) {
	cfg, err := cfg.withDefaults(world.Size(), cfg.K)
	if err != nil {
		return nil, err
	}
	world.SetPhase("setup")
	p := &plan{cfg: cfg, g: g, world: world, rec: world.Recorder(), arena: mld.NewArena()}
	p.groups = world.Size() / cfg.N1
	p.gid = world.Rank() / cfg.N1
	p.group = world.Split(p.gid, world.Rank()%cfg.N1)
	p.myPart = p.group.Rank()

	part := cfg.Part
	if part != nil {
		if part.Parts != cfg.N1 {
			return nil, fmt.Errorf("core: precomputed partition has %d parts, want N1=%d", part.Parts, cfg.N1)
		}
		if len(part.Of) != g.NumVertices() {
			return nil, fmt.Errorf("core: precomputed partition covers %d vertices, graph has %d", len(part.Of), g.NumVertices())
		}
	} else {
		part, err = partition.ByScheme(cfg.Scheme, g, cfg.N1, cfg.Seed^0x70a3d70a3d70a3d7)
		if err != nil {
			return nil, err
		}
	}
	p.part = part
	p.owned = append([]int32(nil), part.Members(p.myPart)...)
	sort.Slice(p.owned, func(i, j int) bool { return p.owned[i] < p.owned[j] })

	p.slotOf = make([]int32, g.NumVertices())
	for i := range p.slotOf {
		p.slotOf[i] = -1
	}
	for s, v := range p.owned {
		p.slotOf[v] = int32(s)
	}

	sendSets := make(map[int]map[int32]bool)
	ghostSets := make(map[int]map[int32]bool)
	for _, v := range p.owned {
		for _, u := range g.Neighbors(v) {
			pu := int(part.Of[u])
			if pu == p.myPart {
				continue
			}
			if sendSets[pu] == nil {
				sendSets[pu] = make(map[int32]bool)
			}
			sendSets[pu][v] = true
			if ghostSets[pu] == nil {
				ghostSets[pu] = make(map[int32]bool)
			}
			ghostSets[pu][u] = true
		}
	}
	next := int32(len(p.owned))
	peerParts := make([]int, 0, len(ghostSets))
	for pu := range ghostSets {
		peerParts = append(peerParts, pu)
	}
	sort.Ints(peerParts)
	for _, pu := range peerParts {
		verts := setToSorted(ghostSets[pu])
		slots := make([]int32, len(verts))
		for i, u := range verts {
			if p.slotOf[u] < 0 {
				p.slotOf[u] = next
				next++
			}
			slots[i] = p.slotOf[u]
		}
		p.recvFrom = append(p.recvFrom, haloList{part: pu, verts: verts, slots: slots})
	}
	for _, pu := range peerParts {
		verts := setToSorted(sendSets[pu])
		slots := make([]int32, len(verts))
		for i, v := range verts {
			slots[i] = p.slotOf[v]
		}
		p.sendTo = append(p.sendTo, haloList{part: pu, verts: verts, slots: slots})
	}
	p.nSlots = int(next)
	p.vertOf = make([]int32, p.nSlots)
	for v, s := range p.slotOf {
		if s >= 0 {
			p.vertOf[s] = int32(v)
		}
	}
	for _, v := range p.owned {
		p.sumDegOwned += g.Degree(v)
	}
	return p, nil
}

// reportProgress surfaces global sweep progress to Config.Progress
// from world rank 0 after phase step s: once syncStep has returned,
// every group has finished its s-th phase, so (s+1)·groups phases
// (clamped to the sweep total) are done world-wide.
func (p *plan) reportProgress(s, numPhases uint64) {
	if p.cfg.Progress == nil || p.world.Rank() != 0 {
		return
	}
	done := (s + 1) * uint64(p.groups)
	if done > numPhases {
		done = numPhases
	}
	p.cfg.Progress(int64(done), int64(numPhases))
}

// syncStep is the end-of-phase-step world synchronization (Algorithm 2
// line 12). Without a context it is the plain barrier. With one, it
// becomes a one-word OR all-reduce of the local cancellation flag, so
// every rank observes the decision at the same step and the collective
// schedule never diverges (a local-only context check would leave the
// other ranks blocked in the next collective); a nonzero result returns
// the context's error on every rank.
func (p *plan) syncStep() error {
	if p.cfg.Ctx == nil {
		p.world.Barrier()
		return nil
	}
	return p.checkCtx()
}

// checkCtx is the collective cancellation probe on its own: a no-op
// without a context, otherwise the OR all-reduce described on syncStep.
// Round loops call it before starting a round's work.
func (p *plan) checkCtx() error {
	if p.cfg.Ctx == nil {
		return nil
	}
	var flag uint64
	if p.cfg.Ctx.Err() != nil {
		flag = 1
	}
	if p.world.AllreduceOr([]uint64{flag})[0] != 0 {
		if err := p.cfg.Ctx.Err(); err != nil {
			return err
		}
		// Another rank saw the cancellation first; ours may race a hair
		// behind, but the run is cancelled either way.
		return context.Canceled
	}
	return nil
}

// advanceCompute charges dt modeled seconds of compute to this rank.
func (p *plan) advanceCompute(dt float64) {
	if p.cfg.NoTiming {
		return
	}
	p.world.Clock().Advance(dt)
	p.computeSecs += dt
}

// countDPOps charges n field-element operations to the recorder — the
// measured counterpart of the modeled seconds advanceCompute charges
// (docs/OBSERVABILITY.md explains how the two relate). No-op when
// observability is off.
func (p *plan) countDPOps(n float64) { p.rec.Add(obs.DPOps, int64(n)) }

// span opens a recorder span named by one of obs's cached name helpers,
// evaluating the name only when observability is on — so the disabled
// path stays allocation-free even for indices past the name cache
// (round and phase spans are the exception: their names also become
// the communicator's failure-phase label via SetPhase, so a rank that
// dies mid-run reports *where* — see comm.RankError). Pair with
// endSpan.
func (p *plan) span(name func(int) string, idx int, cat string) {
	if cat == "round" || cat == "phase" {
		p.world.SetPhase(name(idx))
	}
	if p.rec.Enabled() {
		p.rec.Begin(name(idx), cat)
	}
}

func (p *plan) endSpan() { p.rec.End() }

func setToSorted(s map[int32]bool) []int32 {
	out := make([]int32, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// exchange sends this rank's boundary vectors for DP level `level` and
// fills the ghost slots with the peers' values. vals is the flat value
// buffer (nSlots × stride), nb the live width of each vector. tag
// distinguishes exchanges so protocol slips fail loudly (it equals the
// level for the path/tree DPs but carries a weight index too for the
// weight-stratified ones, which call exchange once per weight class).
func (p *plan) exchange(vals []gf.Elem, stride, nb, level, tag int) {
	p.span(obs.HaloName, level, "halo")
	haloStart := p.world.Clock().Now()
	// all sends first (non-blocking), then receives: symmetric and
	// deadlock-free.
	for _, h := range p.sendTo {
		payload := make([]byte, 2*nb*len(h.slots))
		off := 0
		for _, s := range h.slots {
			vec := vals[int(s)*stride : int(s)*stride+nb]
			for _, e := range vec {
				payload[off] = byte(e)
				payload[off+1] = byte(e >> 8)
				off += 2
			}
		}
		p.group.Send(h.part, tag, payload)
		p.rec.Add(obs.HaloMsgs, 1)
		p.rec.Add(obs.HaloBytes, int64(len(payload)))
		p.rec.AddHaloLevel(level, int64(len(payload)))
	}
	for _, h := range p.recvFrom {
		payload := p.group.Recv(h.part, tag)
		if len(payload) != 2*nb*len(h.slots) {
			panic(fmt.Sprintf("core: halo message from part %d has %d bytes, want %d",
				h.part, len(payload), 2*nb*len(h.slots)))
		}
		off := 0
		for _, s := range h.slots {
			vec := vals[int(s)*stride : int(s)*stride+nb]
			for q := range vec {
				vec[q] = gf.Elem(payload[off]) | gf.Elem(payload[off+1])<<8
				off += 2
			}
		}
	}
	p.rec.Observe(obs.HistHaloExchange, p.world.Clock().Now()-haloStart)
	p.endSpan()
}

// phases returns the number of phases for 2^k iterations at width N2.
func (p *plan) phases(k int) uint64 {
	total := uint64(1) << uint(k)
	return (total + uint64(p.cfg.N2) - 1) / uint64(p.cfg.N2)
}

// Profile is a rank's time and traffic breakdown for one run: the
// measured compute time, the rank's total virtual time (compute plus
// modeled communication and waiting), and its traffic. The gap between
// TotalSecs and ComputeSecs is the communication share the paper's
// Section VI discusses.
type Profile struct {
	ComputeSecs float64
	TotalSecs   float64
	MsgsSent    int64
	BytesSent   int64
}

// RunPathProfiled is RunPath returning this rank's Profile.
func RunPathProfiled(world *comm.Comm, g *graph.Graph, cfg Config) (bool, Profile, error) {
	clock0 := world.Clock().Now()
	stats0 := *world.Stats()
	if err := validateConfig(g, cfg); err != nil {
		return false, Profile{}, err
	}
	if cfg.K > g.NumVertices() {
		return false, Profile{}, nil
	}
	p, err := buildPlan(world, g, cfg)
	if err != nil {
		return false, Profile{}, err
	}
	answer := false
	rounds := cfg.mldOptions().RoundsFor(cfg.K)
	for round := 0; round < rounds; round++ {
		if err := p.checkCtx(); err != nil {
			return false, Profile{}, err
		}
		p.span(obs.RoundName, round, "round")
		p.rec.Add(obs.Rounds, 1)
		a := mld.NewPathAssignment(g.NumVertices(), cfg.K, cfg.Seed, round)
		total, err := p.pathRoundLocal(a)
		if err != nil {
			p.endSpan()
			return false, Profile{}, err
		}
		global := world.AllreduceXor([]uint64{uint64(total)})
		p.endSpan()
		if global[0] != 0 {
			answer = true
			break
		}
	}
	prof := Profile{
		ComputeSecs: p.computeSecs,
		TotalSecs:   world.Clock().Now() - clock0,
		MsgsSent:    world.Stats().MsgsSent - stats0.MsgsSent,
		BytesSent:   world.Stats().BytesSent - stats0.BytesSent,
	}
	return answer, prof, nil
}
