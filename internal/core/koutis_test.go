package core

import (
	"fmt"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/rng"
)

func TestDistributedKoutisMatchesSequential(t *testing.T) {
	r := rng.New(51)
	for trial := 0; trial < 6; trial++ {
		n := 12 + r.Intn(12)
		g := graph.RandomGNM(n, 3*n, r.Uint64())
		k := 3 + r.Intn(3)
		seed := r.Uint64()
		want, err := mld.DetectPath(g, k, mld.Options{Seed: seed, Variant: mld.VariantKoutis, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct{ n, n1, n2 int }{{1, 1, 1}, {2, 2, 2}, {4, 2, 4}, {4, 4, 3}} {
			err := comm.RunLocal(tc.n, comm.CostModel{}, func(c *comm.Comm) error {
				got, err := RunPathVariant(c, g, Config{K: k, N1: tc.n1, N2: tc.n2, Seed: seed, Rounds: 1, NoTiming: true}, mld.VariantKoutis)
				if err != nil {
					return err
				}
				if got != want {
					return fmt.Errorf("rank %d: koutis distributed %v sequential %v", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("trial %d N=%d N1=%d N2=%d: %v", trial, tc.n, tc.n1, tc.n2, err)
			}
		}
	}
}

func TestRunPathVariantDispatch(t *testing.T) {
	g := graph.Path(6)
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		gf, err := RunPathVariant(c, g, Config{K: 4, N1: 2, Seed: 1, Rounds: 1, NoTiming: true}, mld.VariantGF16)
		if err != nil {
			return err
		}
		if !gf {
			return fmt.Errorf("GF16 dispatch missed the path")
		}
		if _, err := RunPathVariant(c, g, Config{K: 4, N1: 2, Seed: 1}, mld.VariantGF8); err == nil {
			return fmt.Errorf("GF8 distributed should be rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEmptyParts: more parts than vertices leaves some ranks owning
// nothing; the algorithm must still complete and agree everywhere.
func TestEmptyParts(t *testing.T) {
	g := graph.Path(3) // 3 vertices, 4 parts
	want, err := mld.DetectPath(g, 3, mld.Options{Seed: 7, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := runPathWorld(t, 4, g, Config{K: 3, N1: 4, N2: 2, Seed: 7, Rounds: 1, NoTiming: true}); got != want {
		t.Fatalf("empty-part world: %v vs sequential %v", got, want)
	}
	// Koutis path with empty parts too.
	err = comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		_, err := RunPathVariant(c, g, Config{K: 3, N1: 4, N2: 1, Seed: 7, Rounds: 1, NoTiming: true}, mld.VariantKoutis)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
