package core

import (
	"fmt"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
)

func TestDistributedExtractPath(t *testing.T) {
	g := graph.RandomGNM(80, 260, 21)
	const k = 5
	paths := make([][]int32, 4)
	err := comm.RunLocal(4, comm.CostModel{}, func(c *comm.Comm) error {
		path, err := ExtractPath(c, g, k, Config{N1: 2, N2: 8, Seed: 9, Epsilon: 1e-6, NoTiming: true})
		if err != nil {
			return err
		}
		paths[c.Rank()] = path
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, path := range paths {
		if len(path) != k {
			t.Fatalf("rank %d extracted %d vertices", r, len(path))
		}
		seen := map[int32]bool{}
		for i, v := range path {
			if seen[v] {
				t.Fatalf("rank %d: repeated vertex", r)
			}
			seen[v] = true
			if i > 0 && !g.HasEdge(path[i-1], v) {
				t.Fatalf("rank %d: non-edge in path", r)
			}
			if r > 0 && paths[0][i] != v {
				t.Fatalf("ranks disagree on the witness: %v vs %v", paths[0], path)
			}
		}
	}
}

func TestDistributedExtractTree(t *testing.T) {
	g := graph.Grid(8, 8)
	tpl := graph.StarTemplate(5)
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		emb, err := ExtractTree(c, g, tpl, Config{N1: 2, N2: 4, Seed: 5, Epsilon: 1e-6, NoTiming: true})
		if err != nil {
			return err
		}
		if len(emb) != 5 {
			return fmt.Errorf("embedding size %d", len(emb))
		}
		for tv := int32(0); tv < 5; tv++ {
			for _, tn := range tpl.Neighbors(tv) {
				if tn > tv && !g.HasEdge(emb[tv], emb[tn]) {
					return fmt.Errorf("template edge (%d,%d) broken", tv, tn)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedExtractRejectsNegative(t *testing.T) {
	g := graph.Star(20) // no 4-path
	err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
		if _, err := ExtractPath(c, g, 4, Config{N1: 2, Seed: 1, NoTiming: true}); err == nil {
			return fmt.Errorf("negative instance accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
