package core

// Distributed refactor-equivalence goldens: pinned answers of the
// ranks=2 path / tree / scan runs on fixed graphs and seeds. The
// distributed evaluators build the same assignments as the sequential
// ones and differ only in where work happens, so any refactor of the
// shared mld layer (e.g. the Family-engine extraction) must leave
// these results bit-identical. Regenerate only when the randomness
// derivation changes: go test ./internal/core -run TestGolden -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden transcript files")

type coreGolden struct {
	Name  string   `json:"name"`
	Found bool     `json:"found"`
	Table []string `json:"table,omitempty"`
}

func coreTableRows(tab [][]bool) []string {
	if tab == nil {
		return nil
	}
	rows := make([]string, 0, len(tab))
	for _, r := range tab {
		b := make([]byte, len(r))
		for i, v := range r {
			b[i] = '0'
			if v {
				b[i] = '1'
			}
		}
		rows = append(rows, string(b))
	}
	return rows
}

func TestGoldenDistributed(t *testing.T) {
	gA := graph.RandomGNM(24, 60, 1)
	gW := graph.RandomGNM(12, 26, 3)
	w := make([]int64, gW.NumVertices())
	for v := range w {
		w[v] = int64(v % 3)
	}
	gW.SetWeights(w)

	var got []coreGolden
	run := func(name string, fn func(c *comm.Comm) (coreGolden, error)) {
		t.Helper()
		results := make([]coreGolden, 2)
		err := comm.RunLocal(2, comm.CostModel{}, func(c *comm.Comm) error {
			r, err := fn(c)
			if err != nil {
				return err
			}
			results[c.Rank()] = r
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Fatalf("%s: ranks disagree: %+v vs %+v", name, results[0], results[1])
		}
		results[0].Name = name
		got = append(got, results[0])
	}

	for _, tc := range []struct{ k, n1, n2 int }{{4, 2, 4}, {5, 1, 8}} {
		tc := tc
		name := fmt.Sprintf("path/k%d/n1-%d/n2-%d", tc.k, tc.n1, tc.n2)
		run(name, func(c *comm.Comm) (coreGolden, error) {
			found, err := RunPath(c, gA, Config{K: tc.k, N1: tc.n1, N2: tc.n2, Seed: 5, Rounds: 2})
			return coreGolden{Found: found}, err
		})
	}

	run("tree/star4", func(c *comm.Comm) (coreGolden, error) {
		found, err := RunTree(c, gA, graph.StarTemplate(4), Config{K: 4, N1: 2, N2: 4, Seed: 6, Rounds: 2})
		return coreGolden{Found: found}, err
	})

	run("scan/k3/z4", func(c *comm.Comm) (coreGolden, error) {
		table, err := RunScan(c, gW, ScanConfig{Config: Config{K: 3, N1: 2, N2: 4, Seed: 7, Rounds: 2}, ZMax: 4})
		return coreGolden{Table: coreTableRows(table)}, err
	})

	path := filepath.Join("testdata", "golden_distributed.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden transcripts (run with -update-golden): %v", err)
	}
	var want []coreGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("distributed goldens diverged:\n golden:  %+v\n current: %+v", want, got)
	}
}
