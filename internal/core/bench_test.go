package core

// Microbenchmark for the DP inner loop (Algorithm 3): one rank's share
// of one round's 2^k iterations, on a single-rank world so no
// communication overlaps the measured compute. Run via `make bench`.

import (
	"testing"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

var benchSink gf.Elem

func benchmarkPathRound(b *testing.B, n, k, n2 int) {
	b.Helper()
	g := graph.RandomNLogN(n, 1)
	world := comm.NewLocalWorld(1, comm.CostModel{})
	p, err := buildPlan(world[0], g, Config{K: k, N1: 1, N2: n2, Seed: 1, Rounds: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mld.NewPathAssignment(g.NumVertices(), k, 1, i%4)
		benchSink, _ = p.pathRoundLocal(a)
	}
}

func BenchmarkPathRoundK6(b *testing.B)  { benchmarkPathRound(b, 500, 6, 16) }
func BenchmarkPathRoundK8(b *testing.B)  { benchmarkPathRound(b, 500, 8, 64) }
func BenchmarkPathRoundK10(b *testing.B) { benchmarkPathRound(b, 500, 10, 64) }
