package gf

import (
	"testing"

	"github.com/midas-hpc/midas/internal/rng"
)

// Property tests pinning every slice kernel byte-identical to a naive
// scalar reference built directly on Mul/Mul8, across all lengths
// 0..129 (covering the empty, sub-threshold, SIMD-block and ragged-tail
// regimes), with aliased dst==src, and on BOTH code paths: the
// accelerated one (haveAsm as detected) and the portable fallback
// (haveAsm forced false). haveAsm is a variable on every architecture
// precisely so these tests can flip it.

// refAxpy16 is dst[i] ^= c·src[i] straight from Mul.
func refAxpy16(dst, src []Elem, c Elem) {
	for i := range src {
		dst[i] ^= Mul(c, src[i])
	}
}

func refAxpy8(dst, src []uint8, c uint8) {
	for i := range src {
		dst[i] ^= Mul8(c, src[i])
	}
}

func randSlice16(r *rng.Rand, n int) []Elem {
	s := make([]Elem, n)
	for i := range s {
		v := Elem(r.Uint32())
		if r.Intn(4) == 0 {
			v = 0 // make zeros common: they take dedicated branches
		}
		s[i] = v
	}
	return s
}

func randSlice8(r *rng.Rand, n int) []uint8 {
	s := make([]uint8, n)
	for i := range s {
		v := uint8(r.Uint32())
		if r.Intn(4) == 0 {
			v = 0
		}
		s[i] = v
	}
	return s
}

// withBothPaths runs fn under every reachable haveAsm setting. The
// accelerated path only exists where the detector found it, so on
// machines without AVX2 (and on non-amd64) only the portable path runs.
func withBothPaths(t *testing.T, fn func(t *testing.T)) {
	orig := haveAsm
	defer func() { haveAsm = orig }()
	haveAsm = false
	t.Run("portable", fn)
	if orig {
		haveAsm = true
		t.Run("asm", fn)
	}
}

func TestKernelMulSlice16BothPaths(t *testing.T) {
	withBothPaths(t, func(t *testing.T) {
		r := rng.New(101)
		for n := 0; n <= 129; n++ {
			for trial := 0; trial < 4; trial++ {
				c := Elem(r.Uint32())
				if trial == 0 {
					c = 0
				}
				src := randSlice16(r, n)
				dst := randSlice16(r, n)
				want := append([]Elem(nil), dst...)
				refAxpy16(want, src, c)
				MulSlice16(dst, src, c)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("n=%d c=%#x [%d]: got %#x want %#x", n, c, i, dst[i], want[i])
					}
				}
				// aliased: dst and src are the same slice
				al := append([]Elem(nil), src...)
				wal := append([]Elem(nil), src...)
				refAxpy16(wal, append([]Elem(nil), src...), c)
				MulSlice16(al, al, c)
				for i := range al {
					if al[i] != wal[i] {
						t.Fatalf("aliased n=%d c=%#x [%d]: got %#x want %#x", n, c, i, al[i], wal[i])
					}
				}
			}
		}
	})
}

func TestMulSliceTable16MatchesScalar(t *testing.T) {
	withBothPaths(t, func(t *testing.T) {
		r := rng.New(102)
		for n := 0; n <= 129; n++ {
			c := Elem(r.Uint32())
			if n%17 == 0 {
				c = 0
			}
			tab := NewMulTable(c) // built under the path being tested
			src := randSlice16(r, n)
			dst := randSlice16(r, n)
			want := append([]Elem(nil), dst...)
			refAxpy16(want, src, c)
			MulSliceTable16(dst, src, tab)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d c=%#x [%d]: got %#x want %#x", n, c, i, dst[i], want[i])
				}
			}
			if tab.C() != c {
				t.Fatalf("table C() = %#x, want %#x", tab.C(), c)
			}
			if s := Elem(r.Uint32()); tab.At(s) != Mul(c, s) {
				t.Fatalf("table At(%#x) = %#x, want %#x", s, tab.At(s), Mul(c, s))
			}
		}
	})
}

func TestMulSlice8MatchesScalar(t *testing.T) {
	withBothPaths(t, func(t *testing.T) {
		r := rng.New(103)
		for n := 0; n <= 129; n++ {
			for trial := 0; trial < 4; trial++ {
				c := uint8(r.Uint32())
				if trial == 0 {
					c = 0
				}
				src := randSlice8(r, n)
				dst := randSlice8(r, n)
				want := append([]uint8(nil), dst...)
				refAxpy8(want, src, c)
				MulSlice8(dst, src, c)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("n=%d c=%#x [%d]: got %#x want %#x", n, c, i, dst[i], want[i])
					}
				}
				al := append([]uint8(nil), src...)
				wal := append([]uint8(nil), src...)
				refAxpy8(wal, append([]uint8(nil), src...), c)
				MulSlice8(al, al, c)
				for i := range al {
					if al[i] != wal[i] {
						t.Fatalf("aliased n=%d c=%#x [%d]: got %#x want %#x", n, c, i, al[i], wal[i])
					}
				}
			}
		}
	})
}

func TestMulSliceTable8MatchesScalar(t *testing.T) {
	withBothPaths(t, func(t *testing.T) {
		r := rng.New(104)
		for n := 0; n <= 129; n++ {
			c := uint8(r.Uint32())
			if n%17 == 0 {
				c = 0
			}
			tab := NewMulTable8(c)
			src := randSlice8(r, n)
			dst := randSlice8(r, n)
			want := append([]uint8(nil), dst...)
			refAxpy8(want, src, c)
			MulSliceTable8(dst, src, tab)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d c=%#x [%d]: got %#x want %#x", n, c, i, dst[i], want[i])
				}
			}
		}
	})
}

func TestHadamardKernelsMatchScalar(t *testing.T) {
	r := rng.New(105)
	for n := 0; n <= 129; n++ {
		a := randSlice16(r, n)
		b := randSlice16(r, n)
		dst := randSlice16(r, n)
		c := Elem(r.Uint32())

		want := make([]Elem, n)
		for i := range want {
			want[i] = Mul(a[i], b[i])
		}
		got := append([]Elem(nil), dst...)
		HadamardInto(got, a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("HadamardInto n=%d [%d]: got %#x want %#x", n, i, got[i], want[i])
			}
		}

		got = append([]Elem(nil), dst...)
		want = append([]Elem(nil), dst...)
		for i := range want {
			want[i] ^= Mul(a[i], b[i])
		}
		MulHadamardAccum(got, a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MulHadamardAccum n=%d [%d]: got %#x want %#x", n, i, got[i], want[i])
			}
		}

		got = append([]Elem(nil), dst...)
		want = append([]Elem(nil), dst...)
		for i := range want {
			want[i] ^= Mul(c, Mul(a[i], b[i]))
		}
		MulHadamardAccumScaled(got, a, b, c)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MulHadamardAccumScaled n=%d c=%#x [%d]: got %#x want %#x", n, c, i, got[i], want[i])
			}
		}

		// aliased dst==a, the shape every DP level uses
		got = append([]Elem(nil), a...)
		want = make([]Elem, n)
		for i := range want {
			want[i] = Mul(a[i], b[i])
		}
		HadamardInto(got, got, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("HadamardInto aliased n=%d [%d]: got %#x want %#x", n, i, got[i], want[i])
			}
		}

		a8 := randSlice8(r, n)
		b8 := randSlice8(r, n)
		got8 := randSlice8(r, n)
		want8 := make([]uint8, n)
		for i := range want8 {
			want8[i] = Mul8(a8[i], b8[i])
		}
		HadamardInto8(got8, a8, b8)
		for i := range got8 {
			if got8[i] != want8[i] {
				t.Fatalf("HadamardInto8 n=%d [%d]: got %#x want %#x", n, i, got8[i], want8[i])
			}
		}
	}
}

func TestAnyNonZeroMatchesScan(t *testing.T) {
	r := rng.New(106)
	for n := 0; n <= 129; n++ {
		s := make([]Elem, n)
		if AnyNonZero(s) {
			t.Fatalf("n=%d: all-zero slice reported nonzero", n)
		}
		s8 := make([]uint8, n)
		if AnyNonZero8(s8) {
			t.Fatalf("n=%d: all-zero uint8 slice reported nonzero", n)
		}
		if n > 0 {
			at := r.Intn(n)
			s[at] = Elem(r.Uint32()) | 1
			if !AnyNonZero(s) {
				t.Fatalf("n=%d: nonzero at %d missed", n, at)
			}
			s8[at] = uint8(r.Uint32()) | 1
			if !AnyNonZero8(s8) {
				t.Fatalf("n=%d: uint8 nonzero at %d missed", n, at)
			}
		}
	}
}

// FuzzMulSlice16Kernel lets the fuzzer drive slice contents, lengths
// and the constant through both code paths.
func FuzzMulSlice16Kernel(f *testing.F) {
	f.Add(uint16(0), uint64(1), 7)
	f.Add(uint16(1), uint64(0xdeadbeef), 64)
	f.Add(uint16(0x8000), uint64(42), 129)
	f.Fuzz(func(t *testing.T, c uint16, seed uint64, n int) {
		if n < 0 || n > 600 {
			return
		}
		orig := haveAsm
		defer func() { haveAsm = orig }()
		r := rng.New(seed)
		src := randSlice16FromFuzz(r, n)
		dst := randSlice16FromFuzz(r, n)
		want := append([]Elem(nil), dst...)
		refAxpy16(want, src, c)
		for _, asm := range []bool{false, orig} {
			haveAsm = asm
			got := append([]Elem(nil), dst...)
			MulSlice16(got, src, c)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("haveAsm=%v n=%d c=%#x [%d]: got %#x want %#x", asm, n, c, i, got[i], want[i])
				}
			}
			tab := NewMulTable(c)
			got = append([]Elem(nil), dst...)
			MulSliceTable16(got, src, tab)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("table haveAsm=%v n=%d c=%#x [%d]: got %#x want %#x", asm, n, c, i, got[i], want[i])
				}
			}
		}
	})
}

func randSlice16FromFuzz(r *rng.Rand, n int) []Elem {
	s := make([]Elem, n)
	for i := range s {
		s[i] = Elem(r.Uint32())
	}
	return s
}
