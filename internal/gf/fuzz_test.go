package gf

import "testing"

// Fuzz targets for the carry-less GF(2^32)/GF(2^64) arithmetic: the
// Russian-peasant Mul32/Mul64 loops are cross-checked against an
// independent bitwise reference (polynomial schoolbook multiply
// followed by long-division reduction), and the field axioms —
// commutativity, associativity, distributivity over XOR, identity,
// inverse round-trip — are asserted on every fuzz input. Run as
// seed-corpus regression tests under `go test`, or explore with
// `go test -fuzz=FuzzMul64Axioms ./internal/gf`.

// refMul32 is the reference product in GF(2^32): accumulate the full
// 63-bit carry-less product, then reduce modulo x^32 + Poly32 by long
// division, high bit first. Deliberately structured differently from
// Mul32 (which interleaves reduction with accumulation) so a shared
// bug cannot hide.
func refMul32(a, b uint32) uint32 {
	var prod uint64
	for i := 0; i < 32; i++ {
		if b&(1<<uint(i)) != 0 {
			prod ^= uint64(a) << uint(i)
		}
	}
	for i := 62; i >= 32; i-- {
		if prod&(1<<uint(i)) != 0 {
			prod ^= (uint64(Poly32) | 1<<32) << uint(i-32)
		}
	}
	return uint32(prod)
}

// refMul64 is refMul32 for GF(2^64). The 127-bit carry-less product is
// held in a (hi, lo) pair built with bits.Mul-style shifts.
func refMul64(a, b uint64) uint64 {
	var hi, lo uint64
	for i := 0; i < 64; i++ {
		if b&(1<<uint(i)) != 0 {
			lo ^= a << uint(i)
			if i > 0 {
				hi ^= a >> uint(64-i)
			}
		}
	}
	// Reduce modulo x^64 + Poly64, high bit first. Bit 64+j of the
	// product is bit j of hi; clearing it folds Poly64 << j into the
	// pair.
	for j := 62; j >= 0; j-- {
		if hi&(1<<uint(j)) != 0 {
			hi ^= 1 << uint(j)
			lo ^= uint64(Poly64) << uint(j)
			if j > 0 {
				hi ^= uint64(Poly64) >> uint(64-j)
			}
		}
	}
	return lo
}

func FuzzMul32Axioms(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0))
	f.Add(uint32(1), uint32(1), uint32(1))
	f.Add(uint32(2), uint32(3), uint32(5))
	f.Add(uint32(0x80000000), uint32(0x80000000), uint32(0xffffffff))
	f.Add(uint32(Poly32), uint32(Poly32), uint32(1))
	f.Add(uint32(0xdeadbeef), uint32(0xcafebabe), uint32(0x12345678))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		ab := Mul32(a, b)
		if ref := refMul32(a, b); ab != ref {
			t.Fatalf("Mul32(%#x,%#x) = %#x, reference %#x", a, b, ab, ref)
		}
		if ba := Mul32(b, a); ab != ba {
			t.Fatalf("not commutative: %#x vs %#x", ab, ba)
		}
		if l, r := Mul32(ab, c), Mul32(a, Mul32(b, c)); l != r {
			t.Fatalf("not associative: (ab)c=%#x a(bc)=%#x", l, r)
		}
		if l, r := Mul32(a, b^c), Mul32(a, b)^Mul32(a, c); l != r {
			t.Fatalf("not distributive: a(b+c)=%#x ab+ac=%#x", l, r)
		}
		if got := Mul32(a, 1); got != a {
			t.Fatalf("identity: a·1 = %#x, want %#x", got, a)
		}
		if a != 0 {
			if got := Mul32(a, Inv32(a)); got != 1 {
				t.Fatalf("inverse round-trip: a·a⁻¹ = %#x", got)
			}
		}
	})
}

func FuzzMul64Axioms(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(1), uint64(1))
	f.Add(uint64(2), uint64(3), uint64(5))
	f.Add(uint64(1)<<63, uint64(1)<<63, ^uint64(0))
	f.Add(uint64(Poly64), uint64(Poly64), uint64(1))
	f.Add(uint64(0xdeadbeefcafebabe), uint64(0x0123456789abcdef), uint64(0xfedcba9876543210))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		ab := Mul64(a, b)
		if ref := refMul64(a, b); ab != ref {
			t.Fatalf("Mul64(%#x,%#x) = %#x, reference %#x", a, b, ab, ref)
		}
		if ba := Mul64(b, a); ab != ba {
			t.Fatalf("not commutative: %#x vs %#x", ab, ba)
		}
		if l, r := Mul64(ab, c), Mul64(a, Mul64(b, c)); l != r {
			t.Fatalf("not associative: (ab)c=%#x a(bc)=%#x", l, r)
		}
		if l, r := Mul64(a, b^c), Mul64(a, b)^Mul64(a, c); l != r {
			t.Fatalf("not distributive: a(b+c)=%#x ab+ac=%#x", l, r)
		}
		if got := Mul64(a, 1); got != a {
			t.Fatalf("identity: a·1 = %#x, want %#x", got, a)
		}
		if a != 0 {
			if got := Mul64(a, Inv64(a)); got != 1 {
				t.Fatalf("inverse round-trip: a·a⁻¹ = %#x", got)
			}
		}
	})
}

// FuzzMul16AgainstCarryless cross-checks the table-driven GF(2^16)
// multiply (the repository's hot kernel) against an independent
// carry-less reference over Poly16 — the tables and the polynomial must
// describe the same field.
func FuzzMul16AgainstCarryless(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(1), uint16(0xffff))
	f.Add(uint16(2), uint16(3))
	f.Add(uint16(0x8000), uint16(0x8000))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		var prod uint32
		for i := 0; i < 16; i++ {
			if b&(1<<uint(i)) != 0 {
				prod ^= uint32(a) << uint(i)
			}
		}
		for i := 30; i >= 16; i-- {
			if prod&(1<<uint(i)) != 0 {
				prod ^= uint32(Poly16) << uint(i-16)
			}
		}
		if got, want := Mul(a, b), uint16(prod); got != want {
			t.Fatalf("Mul(%#x,%#x) = %#x, carry-less reference %#x", a, b, got, want)
		}
	})
}

// TestRefMulSelfCheck anchors the references themselves on hand-checked
// identities, so a fuzz pass cannot mean "both sides are wrong the
// same way".
func TestRefMulSelfCheck(t *testing.T) {
	// x · x = x^2 (no reduction triggered)
	if got := refMul32(2, 2); got != 4 {
		t.Fatalf("refMul32(x,x) = %#x, want x^2", got)
	}
	if got := refMul64(2, 2); got != 4 {
		t.Fatalf("refMul64(x,x) = %#x, want x^2", got)
	}
	// x^31 · x = x^32 ≡ Poly32 (one reduction step)
	if got := refMul32(1<<31, 2); got != Poly32 {
		t.Fatalf("refMul32(x^31,x) = %#x, want Poly32 %#x", got, Poly32)
	}
	// x^63 · x = x^64 ≡ Poly64
	if got := refMul64(1<<63, 2); got != Poly64 {
		t.Fatalf("refMul64(x^63,x) = %#x, want Poly64 %#x", got, Poly64)
	}
}
