//go:build amd64

package gf

// AVX2 dispatch for the nibble-split axpy kernels. haveAsm is resolved
// once at init from CPUID (AVX2 plus OS-enabled YMM state); when it is
// false — pre-Haswell hardware, or YMM state disabled by the OS — the
// portable byte-fused path in kernels.go takes over. Tests flip
// haveAsm to pin both code paths against the scalar reference.
var haveAsm = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// axpyLUT16 runs the SIMD kernel over the largest multiple of 16
// elements and finishes the tail with the scalar loop. c must be the
// constant the LUT was built for (nonzero).
func axpyLUT16(dst, src []Elem, lut *[128]byte, c Elem) {
	n := len(src) &^ 15
	if n > 0 {
		axpyNibbleAVX2(&dst[0], &src[0], n, lut)
	}
	if n < len(src) {
		mulSliceScalar16(dst[n:], src[n:], c)
	}
}

// axpyLUT8 is axpyLUT16 over GF(2^8); 32 elements per SIMD iteration.
func axpyLUT8(dst, src []uint8, lut *[32]byte, c uint8) {
	n := len(src) &^ 31
	if n > 0 {
		axpyNibble8AVX2(&dst[0], &src[0], n, lut)
	}
	if n < len(src) {
		mulSliceScalar8(dst[n:], src[n:], c)
	}
}

// axpyNibbleAVX2 computes dst[i] ^= c·src[i] over GF(2^16) for n
// elements (n > 0, n % 16 == 0) using the packed shuffle LUT of
// packNibbleLUT16.
//
//go:noescape
func axpyNibbleAVX2(dst, src *Elem, n int, tab *[128]byte)

// axpyNibble8AVX2 is the GF(2^8) kernel: n > 0, n % 32 == 0; tab holds
// the two 16-entry nibble tables.
//
//go:noescape
func axpyNibble8AVX2(dst, src *uint8, n int, tab *[32]byte)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)
