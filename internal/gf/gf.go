// Package gf implements arithmetic in the binary Galois fields GF(2^8),
// GF(2^16), GF(2^32) and GF(2^64).
//
// MIDAS evaluates the k-MLD polynomial over GF(2^b)[Z2^k] (Williams'
// refinement of Koutis' algorithm; see the paper, Section III-B). The
// paper uses b = 3 + log2(k), i.e. b ≈ 8 for k up to 18; this package
// defaults to GF(2^16), which costs the same per operation on modern
// hardware (one table lookup) and drives the Schwartz–Zippel failure
// probability per round from ~k/2^8 down to ~k/2^16. GF(2^8) and the
// carry-less GF(2^32)/GF(2^64) variants are provided for the field-width
// ablation (DESIGN.md §6.3).
//
// Addition in every GF(2^b) is XOR. Multiplication in GF(2^8) and
// GF(2^16) uses log/exp tables over a primitive polynomial;
// GF(2^32)/GF(2^64) use a shift-and-xor carry-less product followed by
// modular reduction, since their tables would not fit in cache.
package gf

// Primitive/irreducible polynomials (low bits; the leading term is
// implicit). These match the widely used GF-Complete / Reed-Solomon
// conventions, under which x (=2) is a primitive element for w=8,16.
const (
	Poly8   = 0x11D     // x^8 + x^4 + x^3 + x^2 + 1
	Poly16  = 0x1100B   // x^16 + x^12 + x^3 + x + 1
	Poly32  = 0x400007  // x^32 + x^22 + x^2 + x + 1
	Poly64  = 0x1B      // x^64 + x^4 + x^3 + x + 1
	Order8  = 1<<8 - 1  // multiplicative group order of GF(2^8)
	Order16 = 1<<16 - 1 // multiplicative group order of GF(2^16)
)

// Elem is the element type of the default working field, GF(2^16).
// The DP inner loops of internal/mld and internal/core are written
// against this concrete type for speed.
type Elem = uint16

// exp16 carries three periods of the exponent table (not the usual
// two) so that triple products a·b·c can be computed as one lookup
// exp16[log a + log b + log c] without a modular reduction; the fused
// scan-statistics kernel (MulHadamardAccumScaled) depends on this.
var (
	exp8  [2 * Order8]uint8
	log8  [1 << 8]uint16 // log8[0] is unused
	exp16 [3 * Order16]uint16
	log16 [1 << 16]uint32 // log16[0] is unused
)

func init() {
	buildTables()
}

func buildTables() {
	x := uint16(1)
	for i := 0; i < Order8; i++ {
		exp8[i] = uint8(x)
		exp8[i+Order8] = uint8(x)
		log8[x] = uint16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly8
		}
	}
	y := uint32(1)
	for i := 0; i < Order16; i++ {
		exp16[i] = uint16(y)
		exp16[i+Order16] = uint16(y)
		exp16[i+2*Order16] = uint16(y)
		log16[y] = uint32(i)
		y <<= 1
		if y&0x10000 != 0 {
			y ^= Poly16
		}
	}
}

// Add8 returns a+b in GF(2^8).
func Add8(a, b uint8) uint8 { return a ^ b }

// Mul8 returns a·b in GF(2^8).
func Mul8(a, b uint8) uint8 {
	if a == 0 || b == 0 {
		return 0
	}
	return exp8[log8[a]+log8[b]]
}

// Inv8 returns the multiplicative inverse of a in GF(2^8).
// It panics on a == 0.
func Inv8(a uint8) uint8 {
	if a == 0 {
		panic("gf: inverse of zero in GF(2^8)")
	}
	return exp8[Order8-log8[a]]
}

// Add returns a+b in GF(2^16).
func Add(a, b Elem) Elem { return a ^ b }

// Mul returns a·b in GF(2^16). This is the hot multiply of the whole
// repository: one branch and one lookup into a 256 KiB table.
func Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return exp16[log16[a]+log16[b]]
}

// Inv returns the multiplicative inverse of a in GF(2^16).
// It panics on a == 0.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero in GF(2^16)")
	}
	return exp16[Order16-log16[a]]
}

// Div returns a/b in GF(2^16). It panics on b == 0.
func Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero in GF(2^16)")
	}
	if a == 0 {
		return 0
	}
	la, lb := log16[a], log16[b]
	if la < lb {
		la += Order16
	}
	return exp16[la-lb]
}

// Pow returns a^n in GF(2^16), with Pow(0,0) == 1 by convention.
func Pow(a Elem, n uint64) Elem {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (uint64(log16[a]) * n) % Order16
	return exp16[l]
}

// Exp returns the primitive element raised to the i-th power, i.e. the
// i-th entry of the exponent table, for i in [0, Order16).
func Exp(i uint32) Elem { return exp16[i%Order16] }

// NonZero maps a 64-bit hash to a nonzero element of GF(2^16). It is
// used to derive the per-(edge, level) fingerprint coefficients of the
// multilinear DP from internal/rng hashes: the map must never produce 0
// (a zero fingerprint would silently delete an edge from the instance).
func NonZero(h uint64) Elem {
	return exp16[h%Order16]
}

// NonZero8 is NonZero for GF(2^8).
func NonZero8(h uint64) uint8 {
	return exp8[h%Order8]
}

// Mul32 returns a·b in GF(2^32) (carry-less multiply + reduction by
// Poly32). Bitwise Russian-peasant: ~32 iterations, no tables.
func Mul32(a, b uint32) uint32 {
	var p uint32
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80000000
		a <<= 1
		if hi != 0 {
			a ^= Poly32
		}
		b >>= 1
	}
	return p
}

// Mul64 returns a·b in GF(2^64) (carry-less multiply + reduction by
// Poly64).
func Mul64(a, b uint64) uint64 {
	var p uint64
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x8000000000000000
		a <<= 1
		if hi != 0 {
			a ^= Poly64
		}
		b >>= 1
	}
	return p
}

// Pow32 returns a^n in GF(2^32) by square-and-multiply.
func Pow32(a uint32, n uint64) uint32 {
	r := uint32(1)
	for n > 0 {
		if n&1 != 0 {
			r = Mul32(r, a)
		}
		a = Mul32(a, a)
		n >>= 1
	}
	return r
}

// Inv32 returns the inverse of a in GF(2^32) as a^(2^32-2).
// It panics on a == 0.
func Inv32(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero in GF(2^32)")
	}
	return Pow32(a, 1<<32-2)
}

// Pow64 returns a^n in GF(2^64) by square-and-multiply.
func Pow64(a uint64, n uint64) uint64 {
	r := uint64(1)
	for n > 0 {
		if n&1 != 0 {
			r = Mul64(r, a)
		}
		a = Mul64(a, a)
		n >>= 1
	}
	return r
}

// Inv64 returns the inverse of a in GF(2^64) as a^(2^64-2).
// It panics on a == 0.
func Inv64(a uint64) uint64 {
	if a == 0 {
		panic("gf: inverse of zero in GF(2^64)")
	}
	return Pow64(a, ^uint64(1)) // exponent 2^64 - 2
}

// The vector kernels the DP inner loops run on — MulSlice16,
// HadamardInto, MulHadamardAccum, MulHadamardAccumScaled, their
// prebuilt-table variants, and the GF(2^8) mirrors — live in
// kernels.go (branch-free nibble-split implementations).
