//go:build amd64

#include "textflag.h"

// AVX2 nibble-split GF axpy kernels. See kernels.go for the table
// construction and kernels_amd64.go for dispatch.

// 0x000F in every 16-bit lane: extracts one nibble per element.
DATA nibMask16<>+0(SB)/8, $0x000F000F000F000F
DATA nibMask16<>+8(SB)/8, $0x000F000F000F000F
DATA nibMask16<>+16(SB)/8, $0x000F000F000F000F
DATA nibMask16<>+24(SB)/8, $0x000F000F000F000F
GLOBL nibMask16<>(SB), RODATA|NOPTR, $32

// 0x0F in every byte: extracts the low nibble of every element.
DATA nibMask8<>+0(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask8<>+8(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask8<>+16(SB)/8, $0x0F0F0F0F0F0F0F0F
DATA nibMask8<>+24(SB)/8, $0x0F0F0F0F0F0F0F0F
GLOBL nibMask8<>(SB), RODATA|NOPTR, $32

// func axpyNibbleAVX2(dst, src *Elem, n int, tab *[128]byte)
//
// 16 uint16 elements per iteration. For each of the four nibbles j,
// the index vector holds the nibble value in the even (low) byte of
// every 16-bit lane and zero in the odd byte; VPSHUFB against the
// low-byte table Y(2j) and the high-byte table Y(2j+1) yields the two
// result halves (index 0 maps to table entry 0, which is 0, so the odd
// lanes contribute nothing), and the high half is shifted into the odd
// byte before XOR-accumulation.
TEXT ·axpyNibbleAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), BX

	VBROADCASTI128 0(BX), Y0    // nibble 0, low result bytes
	VBROADCASTI128 16(BX), Y1   // nibble 0, high result bytes
	VBROADCASTI128 32(BX), Y2   // nibble 1, low
	VBROADCASTI128 48(BX), Y3   // nibble 1, high
	VBROADCASTI128 64(BX), Y4   // nibble 2, low
	VBROADCASTI128 80(BX), Y5   // nibble 2, high
	VBROADCASTI128 96(BX), Y6   // nibble 3, low
	VBROADCASTI128 112(BX), Y7  // nibble 3, high
	VMOVDQU nibMask16<>(SB), Y8

loop16:
	VMOVDQU (SI), Y9

	VPAND   Y9, Y8, Y10         // nibble 0 indexes
	VPSHUFB Y10, Y0, Y11
	VPSHUFB Y10, Y1, Y12
	VPSLLW  $8, Y12, Y12
	VPXOR   Y11, Y12, Y13

	VPSRLW  $4, Y9, Y10         // nibble 1
	VPAND   Y10, Y8, Y10
	VPSHUFB Y10, Y2, Y11
	VPSHUFB Y10, Y3, Y12
	VPSLLW  $8, Y12, Y12
	VPXOR   Y11, Y13, Y13
	VPXOR   Y12, Y13, Y13

	VPSRLW  $8, Y9, Y10         // nibble 2
	VPAND   Y10, Y8, Y10
	VPSHUFB Y10, Y4, Y11
	VPSHUFB Y10, Y5, Y12
	VPSLLW  $8, Y12, Y12
	VPXOR   Y11, Y13, Y13
	VPXOR   Y12, Y13, Y13

	VPSRLW  $12, Y9, Y10        // nibble 3 (shift leaves only 4 bits)
	VPSHUFB Y10, Y6, Y11
	VPSHUFB Y10, Y7, Y12
	VPSLLW  $8, Y12, Y12
	VPXOR   Y11, Y13, Y13
	VPXOR   Y12, Y13, Y13

	VMOVDQU (DI), Y14
	VPXOR   Y13, Y14, Y14
	VMOVDQU Y14, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $16, CX
	JNZ  loop16
	VZEROUPPER
	RET

// func axpyNibble8AVX2(dst, src *uint8, n int, tab *[32]byte)
//
// 32 uint8 elements per iteration: low and high nibbles are looked up
// in their 16-entry tables and XORed.
TEXT ·axpyNibble8AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), BX

	VBROADCASTI128 0(BX), Y0    // low-nibble products c·n
	VBROADCASTI128 16(BX), Y1   // high-nibble products c·(n<<4)
	VMOVDQU nibMask8<>(SB), Y2

loop8:
	VMOVDQU (SI), Y3
	VPAND   Y3, Y2, Y4          // low nibbles
	VPSRLW  $4, Y3, Y5
	VPAND   Y5, Y2, Y5          // high nibbles
	VPSHUFB Y4, Y0, Y4
	VPSHUFB Y5, Y1, Y5
	VPXOR   Y4, Y5, Y4
	VMOVDQU (DI), Y6
	VPXOR   Y4, Y6, Y6
	VMOVDQU Y6, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNZ  loop8
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
