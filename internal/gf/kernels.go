package gf

// Nibble-split vector kernels for the DP inner loops.
//
// The DP inner loops of internal/mld and internal/core funnel the whole
// 2^k iteration space through the axpy/Hadamard kernels below, so their
// per-element shape dominates the repository's runtime. The axpy kernels
// (dst[i] ^= c·src[i], one constant against a whole slice) are built
// around per-constant nibble-split product tables: in GF(2^w),
// multiplication by a fixed c is linear over GF(2), so c·s decomposes
// over the four 4-bit nibbles of s into
//
//	c·s = T0[s&15] ^ T1[(s>>4)&15] ^ T2[(s>>8)&15] ^ T3[s>>12]
//
// where each 16-entry Tj is built from four real multiplies (c·2^b) and
// eleven XORs. The payoff is a branch-free stream with a tiny working
// set instead of two dependent lookups into the 256 KiB log/exp tables
// and a data-dependent zero-branch per element (the tables map 0 to 0).
// This is the table-split engineering Björklund et al. report
// integer-factor speedups from in the multilinear-sieving setting
// (arXiv:1206.3483). Two concrete layouts are used:
//
//   - On amd64 with AVX2, the 16-entry tables are exactly the shape of
//     a VPSHUFB shuffle: each table splits into a low-byte and a
//     high-byte 16-lane register and 16 elements are processed per loop
//     iteration (kernels_amd64.s), in the style of Plank et al.'s
//     "Screaming Fast Galois Field Arithmetic" SIMD kernels.
//   - The portable fallback fuses nibble pairs into two 256-entry byte
//     tables (lo[s&255] ^ hi[s>>8], 1 KiB, L1-resident): two
//     independent L1 loads per element instead of two dependent
//     log/exp lookups.
//
// The Hadamard kernels (x[i]·y[i], both operands varying) cannot use
// per-constant tables; they keep the scalar log/exp form — on the dense
// slices the DP produces, the zero-branch is well-predicted and beats a
// branch-free masked form — with the scaled variant fused into a single
// triple-product lookup via the three-period exp16 table.
//
// Callers that reuse one coefficient across many slices — the per-edge
// fingerprint coefficients of the DP — should build (or cache, see
// internal/mld's coefficient-table cache) a MulTable once and call the
// *Table variants; the plain kernels build a table on the stack when
// the slice is long enough to amortize it and otherwise fall back to
// the scalar log/exp path. Every kernel here is pinned byte-identical
// to the scalar reference by the property/fuzz tests in fuzz_test.go.

// word abstracts the element width so GF(2^16) and GF(2^8) share one
// nibble-table construction (the field-width ablation measures the
// same kernel style in both fields).
type word interface {
	~uint8 | ~uint16
}

// buildNibbleTables fills t (length 16·nibbles: 64 for GF(2^16), 32
// for GF(2^8)) with the per-nibble product tables of c:
// t[16j+n] = c·(n << 4j). Each 16-entry block costs four real
// multiplies (the power-of-two entries) and eleven XORs (every other
// index v is the XOR of its lowest set bit and the rest).
func buildNibbleTables[W word](t []W, c W, mul func(W, W) W) {
	for j := 0; j*16 < len(t); j++ {
		blk := t[j*16 : j*16+16 : j*16+16]
		blk[0] = 0
		for b := 0; b < 4; b++ {
			blk[1<<b] = mul(c, W(1)<<uint(4*j+b))
		}
		for v := 3; v < 16; v++ {
			if v&(v-1) != 0 {
				blk[v] = blk[v&(v-1)] ^ blk[v&-v]
			}
		}
	}
}

// fuseByteTables expands the four nibble tables into the two 256-entry
// byte-fused tables of the portable path: b[s] = c·s and
// b[256+s] = c·(s<<8) for s in [0,256).
func fuseByteTables(nt *[64]Elem, b *[512]Elem) {
	for s := 0; s < 256; s++ {
		b[s] = nt[s&15] ^ nt[16+(s>>4)]
		b[256+s] = nt[32+(s&15)] ^ nt[48+(s>>4)]
	}
}

// fuseByteTables8 is the GF(2^8) analogue: one full 256-entry product
// table b[s] = c·s, giving a single L1 load per element.
func fuseByteTables8(nt *[32]uint8, b *[256]uint8) {
	for s := 0; s < 256; s++ {
		b[s] = nt[s&15] ^ nt[16+(s>>4)]
	}
}

// packNibbleLUT16 repacks the four 16-entry GF(2^16) nibble tables
// into the SIMD shuffle layout: for nibble j, the 16 low result bytes
// at lut[32j:32j+16] and the 16 high result bytes at
// lut[32j+16:32j+32].
func packNibbleLUT16(nt *[64]Elem, lut *[128]byte) {
	for j := 0; j < 4; j++ {
		for n := 0; n < 16; n++ {
			v := nt[j*16+n]
			lut[j*32+n] = byte(v)
			lut[j*32+16+n] = byte(v >> 8)
		}
	}
}

// axpyByteFused is the portable table axpy: two independent 512-byte
// L1 lookups per element, no branches. dst and src must have equal,
// nonzero length.
func axpyByteFused(dst, src []Elem, b *[512]Elem) {
	lo := (*[256]Elem)(b[0:256])
	hi := (*[256]Elem)(b[256:512])
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] ^= lo[uint8(s)] ^ hi[uint8(s>>8)]
	}
}

// axpyByteFused8 is the GF(2^8) portable table axpy: one L1 lookup
// per element.
func axpyByteFused8(dst, src []uint8, b *[256]uint8) {
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] ^= b[s]
	}
}

// mulSliceScalar16 is the scalar log/exp axpy, used below the table
// thresholds and for SIMD tails. c must be nonzero.
func mulSliceScalar16(dst, src []Elem, c Elem) {
	lc := log16[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp16[lc+log16[s]]
		}
	}
}

func mulSliceScalar8(dst, src []uint8, c uint8) {
	lc := log8[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp8[lc+log8[s]]
		}
	}
}

// Below these lengths a per-call table build does not amortize and the
// scalar log/exp loop wins. The SIMD threshold is lower because its
// build is only the 64-entry nibble construction plus a 128-byte
// repack; the portable build additionally expands 512 fused entries.
const (
	mulTableMinLenAsm16  = 64
	mulTableMinLenFuse16 = 512
	mulTableMinLen8      = 64
)

// MulTable holds the per-constant nibble-split tables for the GF(2^16)
// axpy kernel, in the representation the active code path consumes:
// the 128-byte VPSHUFB LUT on the AVX2 path, or the byte-fused
// 256-entry pair on the portable path. Build one with Init (or
// NewMulTable) for constants reused across many slices — the
// coefficient-table cache in internal/mld does exactly this.
type MulTable struct {
	c   Elem
	lut [128]byte  // SIMD shuffle layout (see packNibbleLUT16)
	b   *[512]Elem // byte-fused tables; nil while the SIMD path is active
}

// NewMulTable returns a built multiplication table for c.
func NewMulTable(c Elem) *MulTable {
	t := new(MulTable)
	t.Init(c)
	return t
}

// Init (re)builds the table for c.
func (t *MulTable) Init(c Elem) {
	t.c = c
	var nt [64]Elem
	buildNibbleTables(nt[:], c, Mul)
	if haveAsm {
		packNibbleLUT16(&nt, &t.lut)
		return
	}
	if t.b == nil {
		t.b = new([512]Elem)
	}
	fuseByteTables(&nt, t.b)
}

// C returns the constant the table was built for.
func (t *MulTable) C() Elem { return t.c }

// At returns c·s, the scalar single-element view of the table.
func (t *MulTable) At(s Elem) Elem { return Mul(t.c, s) }

// MulTable8 is MulTable over GF(2^8).
type MulTable8 struct {
	c   uint8
	lut [32]byte    // the two 16-entry nibble tables, VPSHUFB-ready
	b   *[256]uint8 // full product table; nil while the SIMD path is active
}

// NewMulTable8 returns a built GF(2^8) multiplication table for c.
func NewMulTable8(c uint8) *MulTable8 {
	t := new(MulTable8)
	t.Init(c)
	return t
}

// Init (re)builds the table for c.
func (t *MulTable8) Init(c uint8) {
	t.c = c
	var nt [32]uint8
	buildNibbleTables(nt[:], c, Mul8)
	if haveAsm {
		copy(t.lut[:], nt[:])
		return
	}
	if t.b == nil {
		t.b = new([256]uint8)
	}
	fuseByteTables8(&nt, t.b)
}

// At returns c·s.
func (t *MulTable8) At(s uint8) uint8 { return Mul8(t.c, s) }

// MulSlice16 computes dst[i] ^= c·src[i] over GF(2^16) for all i.
// This is the axpy kernel of the batched (N2 > 1) DP inner loop: one
// neighbor message updates a whole iteration-vector at once, which is
// the cache-locality effect the paper reports in Section IV-B.
// dst and src must have equal length. For constants reused across
// calls, build a MulTable once and use MulSliceTable16.
func MulSlice16(dst, src []Elem, c Elem) {
	if len(dst) != len(src) {
		panic("gf: MulSlice16 length mismatch")
	}
	if c == 0 || len(src) == 0 {
		return
	}
	if haveAsm && len(src) >= mulTableMinLenAsm16 {
		var nt [64]Elem
		var lut [128]byte
		buildNibbleTables(nt[:], c, Mul)
		packNibbleLUT16(&nt, &lut)
		axpyLUT16(dst, src, &lut, c)
		return
	}
	if !haveAsm && len(src) >= mulTableMinLenFuse16 {
		var nt [64]Elem
		var b [512]Elem
		buildNibbleTables(nt[:], c, Mul)
		fuseByteTables(&nt, &b)
		axpyByteFused(dst, src, &b)
		return
	}
	mulSliceScalar16(dst, src, c)
}

// MulSliceTable16 computes dst[i] ^= t.C()·src[i] using a prebuilt
// table, skipping the per-call table construction of MulSlice16.
// dst and src must have equal length.
func MulSliceTable16(dst, src []Elem, t *MulTable) {
	if len(dst) != len(src) {
		panic("gf: MulSliceTable16 length mismatch")
	}
	if t.c == 0 || len(src) == 0 {
		return
	}
	if haveAsm {
		if len(src) >= 16 {
			axpyLUT16(dst, src, &t.lut, t.c)
		} else {
			mulSliceScalar16(dst, src, t.c)
		}
		return
	}
	axpyByteFused(dst, src, t.b)
}

// MulSlice8 is MulSlice16 over GF(2^8): dst[i] ^= c·src[i]. Used by the
// field-width ablation (the paper's b = 3 + log2 k ≈ 8 choice).
func MulSlice8(dst, src []uint8, c uint8) {
	if len(dst) != len(src) {
		panic("gf: MulSlice8 length mismatch")
	}
	if c == 0 || len(src) == 0 {
		return
	}
	if len(src) >= mulTableMinLen8 {
		var nt [32]uint8
		buildNibbleTables(nt[:], c, Mul8)
		if haveAsm {
			axpyLUT8(dst, src, (*[32]byte)(nt[:]), c)
		} else {
			var b [256]uint8
			fuseByteTables8(&nt, &b)
			axpyByteFused8(dst, src, &b)
		}
		return
	}
	mulSliceScalar8(dst, src, c)
}

// MulSliceTable8 is MulSliceTable16 over GF(2^8).
func MulSliceTable8(dst, src []uint8, t *MulTable8) {
	if len(dst) != len(src) {
		panic("gf: MulSliceTable8 length mismatch")
	}
	if t.c == 0 || len(src) == 0 {
		return
	}
	if haveAsm {
		if len(src) >= 32 {
			axpyLUT8(dst, src, &t.lut, t.c)
		} else {
			mulSliceScalar8(dst, src, t.c)
		}
		return
	}
	axpyByteFused8(dst, src, t.b)
}

// HadamardInto computes dst[i] = a[i]·b[i] over GF(2^16).
// All three slices must have equal length (dst may alias a or b).
// Both operands vary, so there is no per-constant table to exploit.
func HadamardInto(dst, a, b []Elem) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("gf: HadamardInto length mismatch")
	}
	for i := range dst {
		x, y := a[i], b[i]
		if x == 0 || y == 0 {
			dst[i] = 0
		} else {
			dst[i] = exp16[log16[x]+log16[y]]
		}
	}
}

// MulHadamardAccum computes dst[i] ^= a[i]·b[i] over GF(2^16); the
// fused kernel for the tree DP (P(i,j') ⊙ P(u,j”) accumulation).
func MulHadamardAccum(dst, a, b []Elem) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("gf: MulHadamardAccum length mismatch")
	}
	for i := range dst {
		x, y := a[i], b[i]
		if x != 0 && y != 0 {
			dst[i] ^= exp16[log16[x]+log16[y]]
		}
	}
}

// MulHadamardAccumScaled computes dst[i] ^= c·a[i]·b[i] over GF(2^16);
// the fused kernel of the scan-statistics DP cell update. The triple
// product is a single lookup — exp16 carries three periods exactly so
// that log c + log a + log b needs no modular reduction — where the
// previous form chained the pairwise product through a second log/exp
// round trip.
func MulHadamardAccumScaled(dst, a, b []Elem, c Elem) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("gf: MulHadamardAccumScaled length mismatch")
	}
	if c == 0 {
		return
	}
	lc := log16[c]
	for i := range dst {
		x, y := a[i], b[i]
		if x != 0 && y != 0 {
			dst[i] ^= exp16[lc+log16[x]+log16[y]]
		}
	}
}

// HadamardInto8 computes dst[i] = a[i]·b[i] over GF(2^8).
func HadamardInto8(dst, a, b []uint8) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("gf: HadamardInto8 length mismatch")
	}
	for i := range dst {
		x, y := a[i], b[i]
		if x == 0 || y == 0 {
			dst[i] = 0
		} else {
			dst[i] = exp8[log8[x]+log8[y]]
		}
	}
}

// AnyNonZero reports whether the slice has a nonzero element; used to
// skip dead DP cells cheaply. Unrolled OR accumulation: one branch per
// eight elements instead of one per element.
func AnyNonZero(s []Elem) bool {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		if s[i]|s[i+1]|s[i+2]|s[i+3]|s[i+4]|s[i+5]|s[i+6]|s[i+7] != 0 {
			return true
		}
	}
	var v Elem
	for ; i < len(s); i++ {
		v |= s[i]
	}
	return v != 0
}

// AnyNonZero8 is AnyNonZero for GF(2^8) slices.
func AnyNonZero8(s []uint8) bool {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		if s[i]|s[i+1]|s[i+2]|s[i+3]|s[i+4]|s[i+5]|s[i+6]|s[i+7] != 0 {
			return true
		}
	}
	var v uint8
	for ; i < len(s); i++ {
		v |= s[i]
	}
	return v != 0
}
