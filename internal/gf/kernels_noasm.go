//go:build !amd64

package gf

// No SIMD kernels on this architecture: the byte-fused portable path
// in kernels.go is always active. haveAsm is a var (not a const) so
// the dispatch code reads identically on every architecture.
var haveAsm = false

func axpyLUT16(dst, src []Elem, lut *[128]byte, c Elem) {
	panic("gf: SIMD kernel unavailable on this architecture")
}

func axpyLUT8(dst, src []uint8, lut *[32]byte, c uint8) {
	panic("gf: SIMD kernel unavailable on this architecture")
}
