package gf

// Microbenchmarks for the field-arithmetic kernels the DP inner loop
// spends its time in. Run via `make bench` (benchstat-friendly:
// -count repetitions, -benchmem). The slice kernels report throughput
// so regressions show up as MB/s, not just ns/op.

import "testing"

// Sinks defeat dead-code elimination of the benchmarked kernels.
var (
	sink8  uint8
	sink16 Elem
	sink32 uint32
	sink64 uint64
	sinkB  bool
)

func BenchmarkMul8(b *testing.B) {
	x, y := uint8(0x53), uint8(0xCA)
	for i := 0; i < b.N; i++ {
		x = Mul8(x, y) | 1
	}
	sink8 = x
}

func BenchmarkMul16(b *testing.B) {
	x, y := Elem(0x1234), Elem(0xABCD)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y) | 1
	}
	sink16 = x
}

func BenchmarkMul32(b *testing.B) {
	x, y := uint32(0x12345678), uint32(0x9ABCDEF0)
	for i := 0; i < b.N; i++ {
		x = Mul32(x, y) | 1
	}
	sink32 = x
}

func BenchmarkMul64(b *testing.B) {
	x, y := uint64(0x123456789ABCDEF0), uint64(0x0FEDCBA987654321)
	for i := 0; i < b.N; i++ {
		x = Mul64(x, y) | 1
	}
	sink64 = x
}

// benchSlice returns deterministic non-zero operand slices of length n.
func benchSlice(n int) (a, b, dst []Elem) {
	a, b, dst = make([]Elem, n), make([]Elem, n), make([]Elem, n)
	for i := range a {
		a[i] = NonZero(uint64(i)*0x9E3779B97F4A7C15 + 1)
		b[i] = NonZero(uint64(i)*0xBF58476D1CE4E5B9 + 7)
	}
	return
}

func BenchmarkMulSlice16(b *testing.B) {
	const n = 4096
	src, _, dst := benchSlice(n)
	c := NonZero(42)
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice16(dst, src, c)
	}
	sink16 = dst[0]
}

func BenchmarkHadamardInto(b *testing.B) {
	const n = 4096
	x, y, dst := benchSlice(n)
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HadamardInto(dst, x, y)
	}
	sink16 = dst[0]
}

func BenchmarkMulHadamardAccum(b *testing.B) {
	const n = 4096
	x, y, dst := benchSlice(n)
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulHadamardAccum(dst, x, y)
	}
	sink16 = dst[0]
}

func BenchmarkMulHadamardAccumScaled(b *testing.B) {
	const n = 4096
	x, y, dst := benchSlice(n)
	c := NonZero(9)
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulHadamardAccumScaled(dst, x, y, c)
	}
	sink16 = dst[0]
}

func BenchmarkAnyNonZero(b *testing.B) {
	// Worst case: scan the whole slice (all zeros).
	s := make([]Elem, 4096)
	b.SetBytes(4096 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkB = AnyNonZero(s)
	}
}

func BenchmarkMulSliceTable16(b *testing.B) {
	// The steady-state DP shape: the coefficient table is prebuilt (the
	// mld coefficient cache hits) so only the axpy itself is measured.
	const n = 4096
	src, _, dst := benchSlice(n)
	t := NewMulTable(NonZero(42))
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceTable16(dst, src, t)
	}
	sink16 = dst[0]
}

func BenchmarkMulSliceTable8(b *testing.B) {
	const n = 4096
	src, dst := make([]uint8, n), make([]uint8, n)
	for i := range src {
		src[i] = NonZero8(uint64(i) + 1)
	}
	t := NewMulTable8(0x35)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceTable8(dst, src, t)
	}
	sink8 = dst[0]
}

func BenchmarkMulSlice8(b *testing.B) {
	const n = 4096
	src, dst := make([]uint8, n), make([]uint8, n)
	for i := range src {
		src[i] = NonZero8(uint64(i) + 1)
	}
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice8(dst, src, 0x35)
	}
	sink8 = dst[0]
}
