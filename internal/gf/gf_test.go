package gf

import (
	"testing"
	"testing/quick"
)

// --- table construction sanity ---

func TestTablesPrimitive(t *testing.T) {
	// If Poly8 / Poly16 are primitive with generator x, every nonzero
	// element appears exactly once in the exp table's first period.
	seen8 := make(map[uint8]bool)
	for i := 0; i < Order8; i++ {
		if seen8[exp8[i]] {
			t.Fatalf("GF(2^8) exp table repeats %#x at %d: Poly8 not primitive", exp8[i], i)
		}
		seen8[exp8[i]] = true
	}
	if len(seen8) != Order8 || seen8[0] {
		t.Fatalf("GF(2^8) exp table covers %d elements, want %d nonzero", len(seen8), Order8)
	}
	seen16 := make(map[uint16]bool)
	for i := 0; i < Order16; i++ {
		if seen16[exp16[i]] {
			t.Fatalf("GF(2^16) exp table repeats %#x at %d: Poly16 not primitive", exp16[i], i)
		}
		seen16[exp16[i]] = true
	}
	if len(seen16) != Order16 || seen16[0] {
		t.Fatalf("GF(2^16) exp table covers %d elements, want %d nonzero", len(seen16), Order16)
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	for a := 1; a < 1<<16; a++ {
		if got := exp16[log16[uint16(a)]]; got != uint16(a) {
			t.Fatalf("exp(log(%#x)) = %#x", a, got)
		}
	}
}

// --- field axioms (property-based) ---

func TestGF16FieldAxioms(t *testing.T) {
	assoc := func(a, b, c Elem) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	comm := func(a, b Elem) bool { return Mul(a, b) == Mul(b, a) }
	distrib := func(a, b, c Elem) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	identity := func(a Elem) bool { return Mul(a, 1) == a && Add(a, 0) == a }
	selfInverse := func(a Elem) bool { return Add(a, a) == 0 }
	inverse := func(a Elem) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}
	for name, f := range map[string]interface{}{
		"associativity": assoc, "commutativity": comm, "distributivity": distrib,
		"identity": identity, "char2": selfInverse, "inverse": inverse,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestGF8FieldAxioms(t *testing.T) {
	// GF(2^8) is small enough to exhaustively check inverses and spot
	// check associativity on a grid.
	for a := 1; a < 256; a++ {
		if Mul8(uint8(a), Inv8(uint8(a))) != 1 {
			t.Fatalf("GF(2^8): %#x · inv = %#x, want 1", a, Mul8(uint8(a), Inv8(uint8(a))))
		}
	}
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			for c := 0; c < 256; c += 13 {
				x, y, z := uint8(a), uint8(b), uint8(c)
				if Mul8(Mul8(x, y), z) != Mul8(x, Mul8(y, z)) {
					t.Fatalf("GF(2^8) associativity fails at %d,%d,%d", a, b, c)
				}
				if Mul8(x, y^z) != Mul8(x, y)^Mul8(x, z) {
					t.Fatalf("GF(2^8) distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestGF32Axioms(t *testing.T) {
	assoc := func(a, b, c uint32) bool {
		return Mul32(Mul32(a, b), c) == Mul32(a, Mul32(b, c))
	}
	distrib := func(a, b, c uint32) bool {
		return Mul32(a, b^c) == Mul32(a, b)^Mul32(a, c)
	}
	inverse := func(a uint32) bool {
		if a == 0 {
			return true
		}
		return Mul32(a, Inv32(a)) == 1
	}
	for name, f := range map[string]interface{}{
		"associativity": assoc, "distributivity": distrib, "inverse": inverse,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("GF(2^32) %s: %v", name, err)
		}
	}
}

func TestGF64Axioms(t *testing.T) {
	assoc := func(a, b, c uint64) bool {
		return Mul64(Mul64(a, b), c) == Mul64(a, Mul64(b, c))
	}
	distrib := func(a, b, c uint64) bool {
		return Mul64(a, b^c) == Mul64(a, b)^Mul64(a, c)
	}
	inverse := func(a uint64) bool {
		if a == 0 {
			return true
		}
		return Mul64(a, Inv64(a)) == 1
	}
	for name, f := range map[string]interface{}{
		"associativity": assoc, "distributivity": distrib, "inverse": inverse,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("GF(2^64) %s: %v", name, err)
		}
	}
}

// --- derived operations ---

func TestDivMatchesInv(t *testing.T) {
	f := func(a, b Elem) bool {
		if b == 0 {
			return true
		}
		return Div(a, b) == Mul(a, Inv(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowBasics(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Fatal("Pow(0,0) != 1")
	}
	if Pow(0, 5) != 0 {
		t.Fatal("Pow(0,5) != 0")
	}
	f := func(a Elem, n uint8) bool {
		// Compare square-and-multiply-free log version against naive.
		want := Elem(1)
		for i := 0; i < int(n); i++ {
			want = Mul(want, a)
		}
		return Pow(a, uint64(n)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFermat16(t *testing.T) {
	// a^(2^16-1) == 1 for all nonzero a; spot check.
	for _, a := range []Elem{1, 2, 3, 0x1234, 0xFFFF, 0x8000} {
		if Pow(a, Order16) != 1 {
			t.Fatalf("Fermat fails for %#x", a)
		}
	}
}

func TestNonZeroNeverZero(t *testing.T) {
	f := func(h uint64) bool { return NonZero(h) != 0 && NonZero8(h) != 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvPanicsOnZero(t *testing.T) {
	for _, f := range []func(){
		func() { Inv(0) }, func() { Inv8(0) }, func() { Inv32(0) }, func() { Inv64(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Inv(0) did not panic")
				}
			}()
			f()
		}()
	}
}

// --- vector kernels ---

func TestMulSlice16MatchesScalar(t *testing.T) {
	f := func(src []Elem, c Elem) bool {
		dst := make([]Elem, len(src))
		want := make([]Elem, len(src))
		for i := range src {
			want[i] = Mul(c, src[i])
		}
		MulSlice16(dst, src, c)
		for i := range dst {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSlice16Accumulates(t *testing.T) {
	dst := []Elem{5, 7}
	src := []Elem{1, 2}
	MulSlice16(dst, src, 3)
	if dst[0] != 5^Mul(3, 1) || dst[1] != 7^Mul(3, 2) {
		t.Fatalf("MulSlice16 did not xor-accumulate: %v", dst)
	}
}

func TestHadamardKernels(t *testing.T) {
	f := func(a, b []Elem) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		dst := make([]Elem, n)
		HadamardInto(dst, a, b)
		acc := make([]Elem, n)
		copy(acc, dst)
		MulHadamardAccum(acc, a, b)
		for i := 0; i < n; i++ {
			if dst[i] != Mul(a[i], b[i]) {
				return false
			}
			if acc[i] != 0 { // x ^ x == 0
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MulSlice16":       func() { MulSlice16(make([]Elem, 2), make([]Elem, 3), 1) },
		"HadamardInto":     func() { HadamardInto(make([]Elem, 2), make([]Elem, 2), make([]Elem, 3)) },
		"MulHadamardAccum": func() { MulHadamardAccum(make([]Elem, 1), make([]Elem, 2), make([]Elem, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}
