// Package partition splits a graph into N1 parts for MIDAS's phase
// groups and computes the quantities Theorem 2 of the paper bounds the
// run time with: MaxLoad (largest part, bounds per-rank compute) and
// MaxDeg (largest number of cut edges incident to one part, bounds
// per-rank communication).
//
// The paper reports good results "even with a naive partitioning
// scheme"; we provide three schemes so the partitioner ablation
// (DESIGN.md §6.4) can quantify how much MaxDeg actually matters:
//
//	Block    — contiguous id ranges; the naive scheme, great for graphs
//	           whose ids are locality-ordered (road networks, grids).
//	Random   — uniform random assignment; the scheme Lemma 1 analyzes.
//	BFSGrow  — greedy region growing: parts are grown one BFS frontier
//	           at a time up to the target size, giving low edge cut on
//	           well-clustered graphs.
package partition

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// Partition assigns every vertex of a graph to one of Parts parts.
type Partition struct {
	Parts int
	Of    []int32 // Of[v] = part of vertex v

	members [][]int32 // lazily built by Members
}

// New wraps a precomputed assignment. It validates that every label is
// in [0, parts).
func New(parts int, of []int32) (*Partition, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("partition: need at least one part, got %d", parts)
	}
	for v, p := range of {
		if p < 0 || int(p) >= parts {
			return nil, fmt.Errorf("partition: vertex %d assigned to part %d, want [0,%d)", v, p, parts)
		}
	}
	return &Partition{Parts: parts, Of: of}, nil
}

// NewMaterialized wraps a precomputed assignment together with its
// already-materialized member lists — the shape internal/store
// persists, so a loaded partition never re-derives what the file
// carries. members[p] must list exactly the vertices v with of[v]==p,
// in ascending order (the order Members itself builds); the store's
// reader guarantees this by construction, and Validate() is available
// for untrusted inputs.
func NewMaterialized(parts int, of []int32, members [][]int32) (*Partition, error) {
	p, err := New(parts, of)
	if err != nil {
		return nil, err
	}
	if len(members) != parts {
		return nil, fmt.Errorf("partition: %d member lists for %d parts", len(members), parts)
	}
	total := 0
	for _, m := range members {
		total += len(m)
	}
	if total != len(of) {
		return nil, fmt.Errorf("partition: member lists cover %d vertices, assignment has %d", total, len(of))
	}
	p.members = members
	return p, nil
}

// Validate cross-checks materialized member lists against the
// assignment (O(n)); used on partitions loaded from disk.
func (p *Partition) Validate() error {
	if p.members == nil {
		return nil
	}
	for part, m := range p.members {
		for _, v := range m {
			if int(v) < 0 || int(v) >= len(p.Of) || int(p.Of[v]) != part {
				return fmt.Errorf("partition: member list %d claims vertex %d (assignment says %d)", part, v, p.Of[v])
			}
		}
	}
	return nil
}

// Members returns the vertex list of part p (built once, cached).
func (p *Partition) Members(part int) []int32 {
	if p.members == nil {
		p.members = make([][]int32, p.Parts)
		for v, pt := range p.Of {
			p.members[pt] = append(p.members[pt], int32(v))
		}
	}
	return p.members[part]
}

// MaxLoad returns max_j |G^j|, the largest part size.
func (p *Partition) MaxLoad() int {
	counts := make([]int, p.Parts)
	for _, pt := range p.Of {
		counts[pt]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

// Metrics bundles the partition-quality numbers used by Theorem 2 and
// the experiment harness.
type Metrics struct {
	Parts   int
	MaxLoad int // max part size (vertices)
	MaxDeg  int // max over parts of edges leaving the part (paper's DEG(j))
	Cut     int // total number of cut edges
}

// ComputeMetrics evaluates the partition against g.
func (p *Partition) ComputeMetrics(g *graph.Graph) Metrics {
	deg := make([]int, p.Parts)
	cut := 0
	for u := int32(0); u < int32(g.NumVertices()); u++ {
		pu := p.Of[u]
		for _, v := range g.Neighbors(u) {
			if p.Of[v] != pu {
				deg[pu]++ // counts each cut edge once per incident part
				if u < v {
					cut++
				}
			}
		}
	}
	m := Metrics{Parts: p.Parts, MaxLoad: p.MaxLoad(), Cut: cut}
	for _, d := range deg {
		if d > m.MaxDeg {
			m.MaxDeg = d
		}
	}
	return m
}

func (m Metrics) String() string {
	return fmt.Sprintf("partition{parts=%d maxload=%d maxdeg=%d cut=%d}", m.Parts, m.MaxLoad, m.MaxDeg, m.Cut)
}

// Block partitions vertices into contiguous id ranges of near-equal size.
func Block(g *graph.Graph, parts int) *Partition {
	n := g.NumVertices()
	of := make([]int32, n)
	if parts <= 0 {
		panic("partition: non-positive part count")
	}
	// distribute the remainder over the first (n % parts) parts so
	// sizes differ by at most one.
	base := n / parts
	rem := n % parts
	v := 0
	for pt := 0; pt < parts; pt++ {
		size := base
		if pt < rem {
			size++
		}
		for i := 0; i < size; i++ {
			of[v] = int32(pt)
			v++
		}
	}
	p, _ := New(parts, of)
	return p
}

// Random assigns each vertex to a uniform random part (the scheme
// analyzed by Lemma 1 for Erdős–Rényi inputs).
func Random(g *graph.Graph, parts int, seed uint64) *Partition {
	if parts <= 0 {
		panic("partition: non-positive part count")
	}
	r := rng.New(seed)
	of := make([]int32, g.NumVertices())
	for v := range of {
		of[v] = int32(r.Intn(parts))
	}
	p, _ := New(parts, of)
	return p
}

// BFSGrow grows parts by breadth-first region growing: starting from an
// unassigned seed, a part absorbs BFS frontiers until it reaches
// ceil(n/parts) vertices, then the next part starts from a fresh seed.
// On spatially clustered graphs this yields far smaller MaxDeg than
// Block or Random.
func BFSGrow(g *graph.Graph, parts int, seed uint64) *Partition {
	if parts <= 0 {
		panic("partition: non-positive part count")
	}
	n := g.NumVertices()
	of := make([]int32, n)
	for i := range of {
		of[i] = -1
	}
	target := (n + parts - 1) / parts
	r := rng.New(seed)
	order := r.Perm(n) // random seed order for tie-breaking
	next := 0          // index into order for the next unassigned seed
	queue := make([]int32, 0, 256)
	for pt := 0; pt < parts; pt++ {
		size := 0
		queue = queue[:0]
		for size < target {
			if len(queue) == 0 {
				// find a fresh seed
				for next < n && of[order[next]] >= 0 {
					next++
				}
				if next >= n {
					break // everything assigned
				}
				s := int32(order[next])
				of[s] = int32(pt)
				size++
				queue = append(queue, s)
				continue
			}
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if of[u] < 0 && size < target {
					of[u] = int32(pt)
					size++
					queue = append(queue, u)
				}
			}
		}
	}
	// Any stragglers (possible when the last parts hit the break) go to
	// the least loaded part.
	counts := make([]int, parts)
	for _, pt := range of {
		if pt >= 0 {
			counts[pt]++
		}
	}
	for v := range of {
		if of[v] < 0 {
			best := 0
			for pt := 1; pt < parts; pt++ {
				if counts[pt] < counts[best] {
					best = pt
				}
			}
			of[v] = int32(best)
			counts[best]++
		}
	}
	p, _ := New(parts, of)
	return p
}

// Scheme names a partitioning strategy for CLI/harness selection.
type Scheme string

// Supported schemes.
const (
	SchemeBlock      Scheme = "block"
	SchemeRandom     Scheme = "random"
	SchemeBFSGrow    Scheme = "bfs"
	SchemeMultilevel Scheme = "multilevel"
)

// ByScheme dispatches to the named partitioner.
func ByScheme(s Scheme, g *graph.Graph, parts int, seed uint64) (*Partition, error) {
	switch s {
	case SchemeBlock:
		return Block(g, parts), nil
	case SchemeRandom:
		return Random(g, parts, seed), nil
	case SchemeBFSGrow:
		return BFSGrow(g, parts, seed), nil
	case SchemeMultilevel:
		return Multilevel(g, parts, seed), nil
	default:
		return nil, fmt.Errorf("partition: unknown scheme %q (want block|random|bfs|multilevel)", s)
	}
}
