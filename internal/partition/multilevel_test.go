package partition

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

func TestMultilevelValid(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		parts int
	}{
		{"grid", graph.Grid(20, 20), 8},
		{"random", graph.RandomGNM(300, 900, 1), 6},
		{"ba", graph.BarabasiAlbert(400, 3, 2), 5},
		{"tiny", graph.Path(5), 3},
		{"single part", graph.Cycle(10), 1},
		{"more parts than growth", graph.Path(9), 4},
	} {
		p := Multilevel(tc.g, tc.parts, 7)
		checkValid(t, p, tc.g.NumVertices(), tc.parts)
	}
}

func TestMultilevelBalance(t *testing.T) {
	g := graph.RandomGNM(500, 1500, 3)
	const parts = 8
	p := Multilevel(g, parts, 9)
	m := p.ComputeMetrics(g)
	// 20% refinement slack plus initial-partition granularity: accept 1.6x.
	if limit := 500 * 16 / (parts * 10); m.MaxLoad > limit {
		t.Fatalf("MaxLoad %d exceeds balance limit %d", m.MaxLoad, limit)
	}
}

func TestMultilevelBeatsRandomCut(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Grid(25, 25),
		graph.RoadNetwork(25, 25, 4),
		graph.RandomGNM(600, 2400, 5),
	} {
		ml := Multilevel(g, 8, 11).ComputeMetrics(g)
		rd := Random(g, 8, 11).ComputeMetrics(g)
		if ml.Cut >= rd.Cut {
			t.Fatalf("multilevel cut %d should beat random cut %d (n=%d)", ml.Cut, rd.Cut, g.NumVertices())
		}
	}
}

func TestMultilevelCompetitiveWithBFSGrowOnGrid(t *testing.T) {
	g := graph.Grid(30, 30)
	ml := Multilevel(g, 9, 2).ComputeMetrics(g)
	bf := BFSGrow(g, 9, 2).ComputeMetrics(g)
	// Multilevel should be at least in the same league (within 2x) and
	// usually better; a regression to random-like cuts would blow this.
	if ml.Cut > 2*bf.Cut {
		t.Fatalf("multilevel cut %d far worse than BFSGrow %d", ml.Cut, bf.Cut)
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := graph.RandomGNM(200, 600, 2)
	a := Multilevel(g, 4, 5)
	b := Multilevel(g, 4, 5)
	for v := range a.Of {
		if a.Of[v] != b.Of[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestMultilevelViaByScheme(t *testing.T) {
	g := graph.Grid(10, 10)
	p, err := ByScheme(SchemeMultilevel, g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, p, 100, 4)
}

func TestCoarsenPreservesTotalVertexWeight(t *testing.T) {
	g := graph.RandomGNM(150, 500, 8)
	l := levelFromGraph(g)
	r := rngFor(42)
	next := l.coarsen(r)
	if next == nil {
		t.Fatal("coarsen made no progress on a dense graph")
	}
	var before, after int64
	for _, w := range l.vweight {
		before += w
	}
	for _, w := range next.vweight {
		after += w
	}
	if before != after {
		t.Fatalf("vertex weight changed under contraction: %d -> %d", before, after)
	}
	if next.n >= l.n {
		t.Fatalf("coarsening did not shrink: %d -> %d", l.n, next.n)
	}
	// contracted adjacency must be symmetric in weight
	wOf := func(lv *level, a, b int32) int64 {
		for _, e := range lv.adj[a] {
			if e.to == b {
				return e.w
			}
		}
		return 0
	}
	for v := int32(0); v < int32(next.n); v++ {
		for _, e := range next.adj[v] {
			if back := wOf(next, e.to, v); back != e.w {
				t.Fatalf("asymmetric contracted edge (%d,%d): %d vs %d", v, e.to, e.w, back)
			}
		}
	}
}

// rngFor gives tests access to a seeded generator without importing rng
// at every call site.
func rngFor(seed uint64) *rng.Rand { return rng.New(seed) }
