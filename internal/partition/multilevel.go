package partition

import (
	"sort"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// Multilevel is a METIS-style multilevel k-way partitioner: the graph is
// coarsened by repeated heavy-edge matching, the coarsest graph is
// partitioned greedily, and the partition is projected back up with a
// boundary Kernighan–Lin refinement pass at every level. It typically
// beats BFSGrow's edge cut on irregular graphs at a modest CPU cost —
// the strongest arm of the partitioner ablation (DESIGN.md §6.4).
func Multilevel(g *graph.Graph, parts int, seed uint64) *Partition {
	if parts <= 0 {
		panic("partition: non-positive part count")
	}
	n := g.NumVertices()
	if parts == 1 || n <= parts {
		return Block(g, parts)
	}
	lvl := levelFromGraph(g)
	r := rng.New(seed ^ 0x9e3779b97f4a7c15)

	// Coarsen until small or stuck.
	var stack []*level
	for lvl.n > 20*parts && len(stack) < 40 {
		next := lvl.coarsen(r)
		if next == nil || next.n >= lvl.n*9/10 {
			break // matching stopped making progress
		}
		stack = append(stack, lvl)
		lvl = next
	}

	// Initial partition of the coarsest level: weighted BFS-grow.
	assign := lvl.initialPartition(parts, r)
	lvl.refine(assign, parts, 4)

	// Uncoarsen with refinement.
	for i := len(stack) - 1; i >= 0; i-- {
		fine := stack[i]
		fineAssign := make([]int32, fine.n)
		for v := 0; v < fine.n; v++ {
			fineAssign[v] = assign[fine.match[v]]
		}
		assign = fineAssign
		lvl = fine
		lvl.refine(assign, parts, 2)
	}
	p, err := New(parts, assign)
	if err != nil {
		panic(err) // internal invariant: labels always in range
	}
	return p
}

// level is one graph in the coarsening hierarchy, with vertex and edge
// weights (contracted multiplicities).
type level struct {
	n       int
	adj     [][]levelEdge
	vweight []int64
	match   []int32 // fine vertex → coarse vertex (set when coarsened)
}

type levelEdge struct {
	to int32
	w  int64
}

func levelFromGraph(g *graph.Graph) *level {
	n := g.NumVertices()
	l := &level{n: n, adj: make([][]levelEdge, n), vweight: make([]int64, n)}
	for v := int32(0); v < int32(n); v++ {
		l.vweight[v] = 1
		nbr := g.Neighbors(v)
		l.adj[v] = make([]levelEdge, len(nbr))
		for i, u := range nbr {
			l.adj[v][i] = levelEdge{to: u, w: 1}
		}
	}
	return l
}

// coarsen contracts a heavy-edge matching and returns the coarser level
// (or nil if nothing matched).
func (l *level) coarsen(r *rng.Rand) *level {
	match := make([]int32, l.n)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(l.n)
	coarse := int32(0)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		// heaviest unmatched neighbor
		best := int32(-1)
		var bestW int64 = -1
		for _, e := range l.adj[v] {
			if match[e.to] < 0 && e.to != v && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		match[v] = coarse
		if best >= 0 {
			match[best] = coarse
		}
		coarse++
	}
	if int(coarse) == l.n {
		return nil
	}
	next := &level{n: int(coarse), adj: make([][]levelEdge, coarse), vweight: make([]int64, coarse)}
	l.match = match
	// accumulate contracted edges
	type key struct{ a, b int32 }
	wsum := make(map[key]int64)
	for v := int32(0); v < int32(l.n); v++ {
		cv := match[v]
		next.vweight[cv] += l.vweight[v]
		for _, e := range l.adj[v] {
			cu := match[e.to]
			if cu == cv {
				continue
			}
			wsum[key{cv, cu}] += e.w
		}
	}
	for k, w := range wsum {
		next.adj[k.a] = append(next.adj[k.a], levelEdge{to: k.b, w: w})
	}
	for v := range next.adj {
		sort.Slice(next.adj[v], func(i, j int) bool { return next.adj[v][i].to < next.adj[v][j].to })
	}
	return next
}

// initialPartition grows parts over the coarsest graph by weighted BFS.
func (l *level) initialPartition(parts int, r *rng.Rand) []int32 {
	var total int64
	for _, w := range l.vweight {
		total += w
	}
	target := (total + int64(parts) - 1) / int64(parts)
	assign := make([]int32, l.n)
	for i := range assign {
		assign[i] = -1
	}
	order := r.Perm(l.n)
	next := 0
	queue := make([]int32, 0, 64)
	for pt := 0; pt < parts; pt++ {
		var load int64
		queue = queue[:0]
		for load < target {
			if len(queue) == 0 {
				for next < l.n && assign[order[next]] >= 0 {
					next++
				}
				if next >= l.n {
					break
				}
				s := int32(order[next])
				assign[s] = int32(pt)
				load += l.vweight[s]
				queue = append(queue, s)
				continue
			}
			v := queue[0]
			queue = queue[1:]
			for _, e := range l.adj[v] {
				if assign[e.to] < 0 && load < target {
					assign[e.to] = int32(pt)
					load += l.vweight[e.to]
					queue = append(queue, e.to)
				}
			}
		}
	}
	// stragglers to least-loaded part
	loads := make([]int64, parts)
	for v, pt := range assign {
		if pt >= 0 {
			loads[pt] += l.vweight[v]
		}
	}
	for v := range assign {
		if assign[v] < 0 {
			best := 0
			for pt := 1; pt < parts; pt++ {
				if loads[pt] < loads[best] {
					best = pt
				}
			}
			assign[v] = int32(best)
			loads[best] += l.vweight[v]
		}
	}
	return assign
}

// refine runs boundary Kernighan–Lin-style passes: move a vertex to the
// neighboring part with the largest cut-weight gain, subject to a load
// balance cap. Greedy, non-backtracking, `passes` sweeps.
func (l *level) refine(assign []int32, parts, passes int) {
	var total int64
	for _, w := range l.vweight {
		total += w
	}
	maxLoad := total/int64(parts) + total/int64(parts*5) + 1 // 20% slack
	loads := make([]int64, parts)
	for v, pt := range assign {
		loads[pt] += l.vweight[v]
	}
	gain := make([]int64, parts)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := int32(0); v < int32(l.n); v++ {
			home := assign[v]
			// cut weight toward each adjacent part
			for pt := range gain {
				gain[pt] = 0
			}
			boundary := false
			for _, e := range l.adj[v] {
				gain[assign[e.to]] += e.w
				if assign[e.to] != home {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			best := home
			for pt := int32(0); pt < int32(parts); pt++ {
				if pt == home || gain[pt] <= gain[best] {
					continue
				}
				if loads[pt]+l.vweight[v] > maxLoad {
					continue
				}
				best = pt
			}
			if best != home {
				loads[home] -= l.vweight[v]
				loads[best] += l.vweight[v]
				assign[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
