package partition

import (
	"testing"
	"testing/quick"

	"github.com/midas-hpc/midas/internal/graph"
)

func checkValid(t *testing.T, p *Partition, n, parts int) {
	t.Helper()
	if len(p.Of) != n {
		t.Fatalf("assignment covers %d of %d vertices", len(p.Of), n)
	}
	total := 0
	for pt := 0; pt < parts; pt++ {
		total += len(p.Members(pt))
	}
	if total != n {
		t.Fatalf("members cover %d of %d vertices (overlap or gap)", total, n)
	}
	for v, pt := range p.Of {
		if pt < 0 || int(pt) >= parts {
			t.Fatalf("vertex %d in part %d", v, pt)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Fatal("zero parts accepted")
	}
	if _, err := New(2, []int32{0, 2}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := New(2, []int32{0, 1, 1}); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
}

func TestBlockBalance(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{{10, 3}, {100, 7}, {5, 5}, {4, 8}, {1, 1}} {
		g := graph.Path(tc.n)
		p := Block(g, tc.parts)
		checkValid(t, p, tc.n, tc.parts)
		lo, hi := tc.n, 0
		for pt := 0; pt < tc.parts; pt++ {
			s := len(p.Members(pt))
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo > 1 {
			t.Fatalf("n=%d parts=%d: block sizes spread %d..%d", tc.n, tc.parts, lo, hi)
		}
		if p.MaxLoad() != hi {
			t.Fatalf("MaxLoad %d != observed max %d", p.MaxLoad(), hi)
		}
	}
}

func TestBlockOnPathHasMinimalCut(t *testing.T) {
	g := graph.Path(100)
	m := Block(g, 4).ComputeMetrics(g)
	if m.Cut != 3 {
		t.Fatalf("block partition of a path should cut exactly parts-1 edges, got %d", m.Cut)
	}
	if m.MaxDeg > 2 {
		t.Fatalf("MaxDeg %d on a path block partition", m.MaxDeg)
	}
}

func TestRandomCoversAllParts(t *testing.T) {
	g := graph.RandomGNM(500, 1000, 1)
	p := Random(g, 8, 42)
	checkValid(t, p, 500, 8)
	for pt := 0; pt < 8; pt++ {
		if len(p.Members(pt)) == 0 {
			t.Fatalf("random partition left part %d empty (n=500)", pt)
		}
	}
}

func TestBFSGrowValidAndBalanced(t *testing.T) {
	g := graph.Grid(20, 20)
	p := BFSGrow(g, 8, 7)
	checkValid(t, p, 400, 8)
	if p.MaxLoad() > 70 { // target is 50; allow slack from frontier granularity
		t.Fatalf("BFSGrow MaxLoad %d too unbalanced", p.MaxLoad())
	}
}

func TestBFSGrowBeatsRandomOnGrid(t *testing.T) {
	g := graph.Grid(30, 30)
	mb := BFSGrow(g, 9, 3).ComputeMetrics(g)
	mr := Random(g, 9, 3).ComputeMetrics(g)
	if mb.Cut >= mr.Cut {
		t.Fatalf("BFSGrow cut %d should beat random cut %d on a grid", mb.Cut, mr.Cut)
	}
}

func TestMetricsAgainstHandComputed(t *testing.T) {
	// C4 split into {0,1} and {2,3}: cut edges (1,2) and (3,0) → Cut=2,
	// each part has 2 outgoing half-edges → MaxDeg=2, MaxLoad=2.
	g := graph.Cycle(4)
	p, err := New(2, []int32{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := p.ComputeMetrics(g)
	if m.Cut != 2 || m.MaxDeg != 2 || m.MaxLoad != 2 {
		t.Fatalf("metrics %+v, want cut=2 maxdeg=2 maxload=2", m)
	}
}

func TestSinglePartMetrics(t *testing.T) {
	g := graph.RandomGNM(50, 120, 5)
	m := Block(g, 1).ComputeMetrics(g)
	if m.Cut != 0 || m.MaxDeg != 0 || m.MaxLoad != 50 {
		t.Fatalf("single part metrics %+v", m)
	}
}

func TestPartitionInvariantsProperty(t *testing.T) {
	f := func(seed uint64, partsRaw uint8) bool {
		parts := int(partsRaw%15) + 1
		g := graph.RandomGNM(80, 200, seed)
		for _, p := range []*Partition{
			Block(g, parts), Random(g, parts, seed), BFSGrow(g, parts, seed),
		} {
			if len(p.Of) != 80 {
				return false
			}
			seenTotal := 0
			for pt := 0; pt < parts; pt++ {
				seenTotal += len(p.Members(pt))
			}
			if seenTotal != 80 {
				return false
			}
			m := p.ComputeMetrics(g)
			if m.MaxLoad*parts < 80 { // pigeonhole
				return false
			}
			if m.MaxDeg > 2*m.Cut && m.Cut > 0 {
				return false // a part cannot touch more cut-halves than 2·cut... (each cut edge has 2 halves)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestByScheme(t *testing.T) {
	g := graph.Path(10)
	for _, s := range []Scheme{SchemeBlock, SchemeRandom, SchemeBFSGrow} {
		p, err := ByScheme(s, g, 2, 1)
		if err != nil || p == nil {
			t.Fatalf("scheme %q failed: %v", s, err)
		}
	}
	if _, err := ByScheme("metis", g, 2, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
