package comm

// Deterministic fault injection for chaos testing the message runtime.
//
// A FaultSpec describes a reproducible fault schedule — message drops,
// extra latency, duplicates, reorders, severed rank pairs, and rank
// kills — driven entirely by a seeded splitmix64 stream per rank, so
// the same spec over the same SPMD program injects the same faults on
// every run regardless of goroutine interleaving. The wrapper composes
// over any transport (the in-process channel mesh and TCP), sitting
// between the Comm and the real wire:
//
//   - drop: a send attempt is "lost"; the wrapper retries it with
//     bounded exponential backoff + jitter, charging the rank's virtual
//     clock and the SendRetries/BackoffNanos counters, exactly like the
//     hardened TCP path handles a real write failure. Retries exhausted
//     escalate as a structured *FaultError.
//   - delay: the message's virtual timestamp is pushed Delay into the
//     future, so the receiver's α–β clock models a slow link.
//   - dup: the message is transmitted twice; the receiver-side sequence
//     filter discards the copy.
//   - reorder: the message is held back briefly and overtaken by later
//     traffic; the receiver reassembles the per-stream sequence order,
//     so collectives still see exactly-once, in-order delivery.
//   - sever: every send between the pair fails permanently; retries
//     exhaust and the rank dies with ErrLinkSevered.
//   - kill: the rank's AfterSends-th send panics with ErrRankKilled —
//     a rank death mid-phase; peers unwind via the world abort.
//
// Masked faults (drop/delay/dup/reorder) are invisible to the program:
// Barrier/Bcast/Reduce results are byte-identical to a clean transport
// (chaos_test.go proves this property). Unmaskable faults (sever,
// kill, retry exhaustion) surface as *FaultError panics that the Run*
// helpers aggregate into structured RankErrors. docs/FAULTS.md is the
// operator guide, including the -fault-spec grammar parsed here.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// Unmaskable fault causes, carried inside *FaultError.
var (
	// ErrRankKilled marks a rank terminated by a kill= fault rule.
	ErrRankKilled = errors.New("comm: rank killed by fault injection")
	// ErrLinkSevered marks a send over a sever= rank pair.
	ErrLinkSevered = errors.New("comm: link severed")
	// ErrMessageLost marks a send whose retries were exhausted by
	// repeated drops (or repeated real transport failures on TCP).
	ErrMessageLost = errors.New("comm: message lost, retries exhausted")
)

// FaultError is the structured failure a transport escalates when an
// operation cannot be completed: which operation, between which world
// ranks, after how many attempts, and why. It reaches callers wrapped
// in a RankError (with the failing rank's phase) via the Run* helpers.
type FaultError struct {
	Op       string // "send" or "recv"
	From, To int    // world ranks (From == To means the rank itself, e.g. kill)
	Attempts int    // send attempts made before giving up (0 when not retried)
	Err      error  // ErrRankKilled, ErrLinkSevered, ErrMessageLost, or a transport error
}

func (e *FaultError) Error() string {
	if e.Attempts > 0 {
		return fmt.Sprintf("%s %d->%d failed after %d attempts: %v", e.Op, e.From, e.To, e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s %d->%d: %v", e.Op, e.From, e.To, e.Err)
}

// Unwrap exposes the cause to errors.Is.
func (e *FaultError) Unwrap() error { return e.Err }

// KillRule terminates one rank after a number of send operations —
// "die mid-phase" for chaos runs. AfterSends is 1-based: 1 kills the
// very first send.
type KillRule struct {
	Rank       int
	AfterSends int
}

// FaultSpec is a reproducible fault schedule. The zero value injects
// nothing (Active reports false) and is free to pass around. Specs are
// parsed from the -fault-spec CLI grammar by ParseFaultSpec and
// printed back by String.
type FaultSpec struct {
	Drop      float64       // per-attempt probability a send is dropped
	Delay     time.Duration // extra modeled latency for delayed messages
	DelayProb float64       // probability a message is delayed (0 with Delay set means 1)
	Dup       float64       // probability a message is transmitted twice
	Reorder   float64       // probability a message is overtaken by later traffic
	Sever     [][2]int      // world-rank pairs whose link is permanently down
	Kill      []KillRule    // ranks to terminate mid-run
	Seed      uint64        // drives every probabilistic choice

	// Retry policy for failed send attempts (injected drops here; real
	// write errors in the TCP transport, which shares these knobs).
	MaxRetries  int           // attempts after the first failure (default 8)
	BackoffBase time.Duration // first backoff (default 100µs), doubles per retry
	BackoffMax  time.Duration // backoff cap (default 20ms)
}

// Active reports whether the spec injects any fault at all.
func (s FaultSpec) Active() bool {
	return s.Drop > 0 || s.Delay > 0 || s.Dup > 0 || s.Reorder > 0 ||
		len(s.Sever) > 0 || len(s.Kill) > 0
}

func (s FaultSpec) maxRetries() int {
	if s.MaxRetries > 0 {
		return s.MaxRetries
	}
	return 8
}

func (s FaultSpec) backoffBase() time.Duration {
	if s.BackoffBase > 0 {
		return s.BackoffBase
	}
	return 100 * time.Microsecond
}

func (s FaultSpec) backoffMax() time.Duration {
	if s.BackoffMax > 0 {
		return s.BackoffMax
	}
	return 20 * time.Millisecond
}

func (s FaultSpec) delayProb() float64 {
	if s.Delay <= 0 {
		return 0
	}
	if s.DelayProb > 0 {
		return s.DelayProb
	}
	return 1
}

func (s FaultSpec) severed(a, b int) bool {
	for _, p := range s.Sever {
		if (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a) {
			return true
		}
	}
	return false
}

// WithAttempt derives the spec for retry attempt i of a resilient
// driver: attempt 0 is the spec itself (so a seed reproduces its
// documented schedule); later attempts re-salt the seed so the random
// faults draw a fresh schedule, and drop Kill rules entirely — a kill
// models a one-shot crash, and the re-run models the operator
// restarting that rank. Probabilistic faults (drop/delay/dup/reorder)
// and severed links persist across attempts: they model the
// environment, not an event.
func (s FaultSpec) WithAttempt(i int) FaultSpec {
	if i == 0 {
		return s
	}
	out := s
	out.Seed = mix64(s.Seed ^ (uint64(i) * 0xa0761d6478bd642f))
	out.Kill = nil
	return out
}

// String renders the spec in the ParseFaultSpec grammar (stable field
// order, so String/Parse round-trip).
func (s FaultSpec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if s.Drop > 0 {
		add("drop", trimFloat(s.Drop))
	}
	if s.Delay > 0 {
		add("delay", s.Delay.String())
	}
	if s.DelayProb > 0 {
		add("delayp", trimFloat(s.DelayProb))
	}
	if s.Dup > 0 {
		add("dup", trimFloat(s.Dup))
	}
	if s.Reorder > 0 {
		add("reorder", trimFloat(s.Reorder))
	}
	for _, p := range s.Sever {
		add("sever", fmt.Sprintf("%d-%d", p[0], p[1]))
	}
	for _, k := range s.Kill {
		add("kill", fmt.Sprintf("%d@%d", k.Rank, k.AfterSends))
	}
	add("seed", strconv.FormatUint(s.Seed, 10))
	if s.MaxRetries > 0 {
		add("retries", strconv.Itoa(s.MaxRetries))
	}
	if s.BackoffBase > 0 {
		add("backoff", s.BackoffBase.String())
	}
	if s.BackoffMax > 0 {
		add("backoffmax", s.BackoffMax.String())
	}
	return strings.Join(parts, ",")
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseFaultSpec parses the chaos grammar used by `midas -fault-spec`
// (docs/FAULTS.md):
//
//	drop=0.05,delay=2ms,delayp=0.5,dup=0.01,reorder=0.02,
//	sever=1-2,kill=3@40,seed=42,retries=8,backoff=100us,backoffmax=20ms
//
// Keys may repeat only for sever and kill. The empty string parses to
// the inactive zero spec.
func ParseFaultSpec(text string) (FaultSpec, error) {
	var s FaultSpec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(text, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || val == "" {
			return s, fmt.Errorf("comm: fault spec field %q is not key=value", field)
		}
		if key != "sever" && key != "kill" {
			if seen[key] {
				return s, fmt.Errorf("comm: fault spec repeats %q", key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "drop":
			s.Drop, err = parseProb(val)
		case "delay":
			s.Delay, err = time.ParseDuration(val)
		case "delayp":
			s.DelayProb, err = parseProb(val)
		case "dup":
			s.Dup, err = parseProb(val)
		case "reorder":
			s.Reorder, err = parseProb(val)
		case "sever":
			a, b, ok := strings.Cut(val, "-")
			if !ok {
				return s, fmt.Errorf("comm: sever wants RANK-RANK, got %q", val)
			}
			var ra, rb int
			if ra, err = strconv.Atoi(a); err == nil {
				rb, err = strconv.Atoi(b)
			}
			if err == nil && (ra < 0 || rb < 0 || ra == rb) {
				err = fmt.Errorf("bad rank pair %d-%d", ra, rb)
			}
			if err == nil {
				s.Sever = append(s.Sever, [2]int{ra, rb})
			}
		case "kill":
			rule := KillRule{AfterSends: 1}
			rankStr, atStr, hasAt := strings.Cut(val, "@")
			if rule.Rank, err = strconv.Atoi(rankStr); err == nil && hasAt {
				rule.AfterSends, err = strconv.Atoi(atStr)
			}
			if err == nil && (rule.Rank < 0 || rule.AfterSends < 1) {
				err = fmt.Errorf("bad kill rule %q", val)
			}
			if err == nil {
				s.Kill = append(s.Kill, rule)
			}
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "retries":
			s.MaxRetries, err = strconv.Atoi(val)
			if err == nil && s.MaxRetries < 1 {
				err = fmt.Errorf("retries must be >= 1")
			}
		case "backoff":
			s.BackoffBase, err = time.ParseDuration(val)
		case "backoffmax":
			s.BackoffMax, err = time.ParseDuration(val)
		default:
			return s, fmt.Errorf("comm: unknown fault spec key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("comm: fault spec %s=%q: %v", key, val, err)
		}
	}
	sort.Slice(s.Kill, func(i, j int) bool { return s.Kill[i].Rank < s.Kill[j].Rank })
	return s, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("probability %v outside [0,1)", p)
	}
	return p, nil
}

// mix64 is the splitmix64 finalizer, used both to seed per-rank
// streams and to advance them.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// streamKey identifies one directed (peer, communicator) message
// stream for sequence numbering.
type streamKey struct {
	peer int
	ctx  uint64
}

// reassembler restores per-stream order on a wire that may duplicate
// or reorder frames: messages arrive with sequence numbers, leave in
// sequence order, and duplicates of already-delivered sequences are
// discarded. Used by both the fault wrapper (injected dup/reorder) and
// the TCP transport (at-least-once redelivery across reconnects).
// Single-consumer per stream: only the rank's own goroutine calls next.
type reassembler struct {
	want    map[streamKey]uint64
	pending map[streamKey]map[uint64]message
}

func newReassembler() *reassembler {
	return &reassembler{want: map[streamKey]uint64{}, pending: map[streamKey]map[uint64]message{}}
}

// next returns the stream's next in-sequence message, pulling raw
// deliveries from pull until it appears.
func (ra *reassembler) next(key streamKey, pull func() message) message {
	want := ra.want[key]
	for {
		if buf := ra.pending[key]; buf != nil {
			if m, ok := buf[want]; ok {
				delete(buf, want)
				ra.want[key] = want + 1
				return m
			}
		}
		m := pull()
		switch {
		case m.seq == want:
			ra.want[key] = want + 1
			return m
		case m.seq < want:
			// duplicate of an already-delivered message
		default:
			if ra.pending[key] == nil {
				ra.pending[key] = map[uint64]message{}
			}
			ra.pending[key][m.seq] = m
		}
	}
}

// faultEndpoint wraps a transport with the fault schedule of one rank.
// The send path (Comm's goroutine) makes every random decision, so the
// schedule is deterministic; the only concurrent entry points are the
// hold-back flush timer and abort, both RNG-free.
type faultEndpoint struct {
	inner transport
	me    int
	spec  FaultSpec
	clock *Clock        // charged for virtual backoff/delay; may be nil
	rec   *obs.Recorder // counters; nil-safe

	mu     sync.Mutex
	rng    uint64
	sends  int // send calls so far (kill rules trigger on this)
	seqOut map[streamKey]uint64
	held   []heldMsg   // reordered messages awaiting flush
	timer  *time.Timer // scheduled flush for held messages

	// Receive-side reassembly (touched only by the rank's goroutine).
	ra *reassembler
}

type heldMsg struct {
	dst int
	m   message
}

// holdFlushAfter bounds how long a reordered message can be overtaken:
// a real-time safety net so a held message is always delivered even if
// the rank never touches the transport again.
const holdFlushAfter = 500 * time.Microsecond

// maxHeld bounds the hold-back buffer; beyond it, reorder faults are
// skipped rather than queued (delivery keeps priority over chaos).
const maxHeld = 4

func newFaultEndpoint(inner transport, me int, spec FaultSpec, clock *Clock) *faultEndpoint {
	return &faultEndpoint{
		inner:  inner,
		me:     me,
		spec:   spec,
		clock:  clock,
		rng:    mix64(spec.Seed ^ (uint64(me)+1)*0x9e3779b97f4a7c15),
		seqOut: map[streamKey]uint64{},
		ra:     newReassembler(),
	}
}

func (e *faultEndpoint) setRecorder(r *obs.Recorder) { e.rec = r }

// rnd advances the rank's deterministic decision stream.
func (e *faultEndpoint) rnd() float64 {
	e.rng += 0x9e3779b97f4a7c15
	return float64(mix64(e.rng)>>11) / (1 << 53)
}

func (e *faultEndpoint) send(worldDst int, m message) {
	e.mu.Lock()
	e.flushHeldLocked()
	e.sends++
	for _, rule := range e.spec.Kill {
		if rule.Rank == e.me && e.sends == rule.AfterSends {
			e.mu.Unlock()
			panic(&FaultError{Op: "send", From: e.me, To: worldDst, Err: ErrRankKilled})
		}
	}
	key := streamKey{worldDst, m.ctx}
	m.seq = e.seqOut[key]
	e.seqOut[key] = m.seq + 1

	// Delay: push the virtual timestamp so the receiver's α–β clock
	// sees a slow link. The payload itself is not withheld.
	if p := e.spec.delayProb(); p > 0 && e.rnd() < p {
		m.ts += e.spec.Delay.Seconds()
		e.rec.Add(obs.FaultsInjected, 1)
	}

	// Drop / sever: fail attempts until the link lets one through, with
	// the same bounded backoff policy the TCP transport uses for real
	// write errors.
	severed := e.spec.severed(e.me, worldDst)
	attempts := 1
	for severed || (e.spec.Drop > 0 && e.rnd() < e.spec.Drop) {
		e.rec.Add(obs.FaultsInjected, 1)
		if attempts > e.spec.maxRetries() {
			cause := ErrMessageLost
			if severed {
				cause = ErrLinkSevered
			}
			e.mu.Unlock()
			panic(&FaultError{Op: "send", From: e.me, To: worldDst, Attempts: attempts, Err: cause})
		}
		backoff := e.backoff(attempts)
		e.rec.Add(obs.SendRetries, 1)
		e.rec.Add(obs.BackoffNanos, backoff.Nanoseconds())
		e.rec.Observe(obs.HistRetryBackoff, backoff.Seconds())
		if e.clock != nil {
			e.clock.Advance(backoff.Seconds())
		}
		attempts++
	}

	dup := e.spec.Dup > 0 && e.rnd() < e.spec.Dup
	hold := e.spec.Reorder > 0 && e.rnd() < e.spec.Reorder && len(e.held) < maxHeld
	if dup {
		e.rec.Add(obs.FaultsInjected, 1)
		e.inner.send(worldDst, m)
	}
	if hold {
		e.rec.Add(obs.FaultsInjected, 1)
		e.held = append(e.held, heldMsg{dst: worldDst, m: m})
		if e.timer == nil {
			e.timer = time.AfterFunc(holdFlushAfter, func() {
				e.mu.Lock()
				e.flushHeldLocked()
				e.mu.Unlock()
			})
		}
		e.mu.Unlock()
		return
	}
	e.inner.send(worldDst, m)
	e.mu.Unlock()
}

// backoff returns the capped exponential backoff for the given attempt
// with deterministic ±50% jitter from the rank's decision stream.
func (e *faultEndpoint) backoff(attempt int) time.Duration {
	d := e.spec.backoffBase() << uint(attempt-1)
	if max := e.spec.backoffMax(); d > max || d <= 0 {
		d = max
	}
	return time.Duration((0.5 + e.rnd()) * float64(d))
}

// flushHeldLocked transmits every held (reordered) message. Called
// under mu from every transport entry point and the safety timer, so
// held traffic is always overtaken by at most one batch of later sends.
func (e *faultEndpoint) flushHeldLocked() {
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	for _, h := range e.held {
		e.inner.send(h.dst, h.m)
	}
	e.held = nil
}

// recv returns the next in-sequence message of the (src, ctx) stream,
// reassembling order across reordered deliveries and discarding
// duplicates. Only the rank's own goroutine calls it.
func (e *faultEndpoint) recv(worldSrc int, ctx uint64) message {
	e.mu.Lock()
	e.flushHeldLocked()
	e.mu.Unlock()
	return e.ra.next(streamKey{worldSrc, ctx}, func() message {
		return e.inner.recv(worldSrc, ctx)
	})
}

func (e *faultEndpoint) close(worldRank int) {
	e.mu.Lock()
	e.flushHeldLocked()
	e.mu.Unlock()
	e.inner.close(worldRank)
}

func (e *faultEndpoint) abort() {
	if a, ok := e.inner.(aborter); ok {
		a.abort()
	}
}

// NewLocalWorldFaulty is NewLocalWorld with every rank's endpoint
// wrapped in the given fault schedule. An inactive spec degrades to a
// clean world.
func NewLocalWorldFaulty(n int, model CostModel, spec FaultSpec) []*Comm {
	comms := NewLocalWorld(n, model)
	if !spec.Active() {
		return comms
	}
	for r, c := range comms {
		c.transport = newFaultEndpoint(c.transport, r, spec, c.clock)
	}
	return comms
}

// RunLocalFaulty executes fn as an SPMD program over a chaos world of n
// ranks: NewLocalWorldFaulty plus the structured failure aggregation of
// RunLocal.
func RunLocalFaulty(n int, model CostModel, spec FaultSpec, fn func(c *Comm) error) error {
	_, err := RunLocalFaultyInspect(n, model, spec, fn)
	return err
}

// RunLocalFaultyInspect is RunLocalFaulty returning the communicators
// for post-run clock/stats/telemetry inspection.
func RunLocalFaultyInspect(n int, model CostModel, spec FaultSpec, fn func(c *Comm) error) ([]*Comm, error) {
	comms := NewLocalWorldFaulty(n, model, spec)
	return comms, runWorld(comms, fn)
}
