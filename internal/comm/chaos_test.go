package comm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// Chaos property suite: the collectives must be *correct under masked
// faults* — a world whose every message may be dropped (and retried),
// delayed, duplicated, or reordered must produce byte-identical results
// to a clean world — and *loud under unmasked ones* — kills and severed
// links must surface as structured RankErrors, never hangs. Every test
// runs under its own deadline so a protocol bug fails instead of
// wedging the suite.

const chaosDeadline = 30 * time.Second

// runDeadlined runs fn with a hang guard.
func runDeadlined(t *testing.T, name string, fn func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		return err
	case <-time.After(chaosDeadline):
		t.Fatalf("%s: hung past %v", name, chaosDeadline)
		return nil
	}
}

// batteryParams is one randomized exercise plan, drawn from a seed so
// the clean and chaos worlds run the identical program.
type batteryParams struct {
	n       int    // world size
	tag     int    // base tag for point-to-point traffic
	root    int    // bcast/gather root
	payload int    // ring payload size in bytes
	rounds  int    // repetitions of the whole battery
	seed    uint64 // per-rank data salt
}

func drawBattery(rng *rand.Rand) batteryParams {
	return batteryParams{
		n:       2 + rng.Intn(6),
		tag:     1 + rng.Intn(100),
		root:    rng.Intn(1 << 30), // reduced mod n below
		payload: 1 + rng.Intn(512),
		rounds:  1 + rng.Intn(3),
		seed:    rng.Uint64(),
	}
}

// runBattery exercises point-to-point traffic, every collective, and a
// split sub-world, folding each rank's observations into a digest.
// Returns the per-rank digests, or the run error.
func runBattery(p batteryParams, spec FaultSpec) ([]uint64, error) {
	digests := make([]uint64, p.n)
	err := RunLocalFaulty(p.n, CostModel{}, spec, func(c *Comm) error {
		h := fnv.New64a()
		mix := func(b []byte) { h.Write(b) }
		root := p.root % c.Size()
		for round := 0; round < p.rounds; round++ {
			// ring exchange with per-round tags
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			payload := make([]byte, p.payload)
			for i := range payload {
				payload[i] = byte(p.seed>>uint(i%8*8)) + byte(c.Rank()*31+i+round)
			}
			c.Send(next, p.tag+round, payload)
			mix(c.Recv(prev, p.tag+round))

			// collectives
			var bdata []byte
			if c.Rank() == root {
				bdata = payload
			}
			mix(c.Bcast(root, bdata))
			xs := c.AllreduceXor([]uint64{p.seed ^ uint64(c.Rank()*1000+round)})
			mix([]byte(fmt.Sprint(xs[0])))
			sm := c.AllreduceSumMod([]uint64{uint64(c.Rank()) + p.seed%1000}, 1<<20)
			mix([]byte(fmt.Sprint(sm[0])))
			for _, part := range c.GatherBytes(root, []byte{byte(c.Rank()), byte(round)}) {
				mix(part)
			}
			c.Barrier()

			// split sub-world: odd/even colors, reversed key order
			child := c.Split(c.Rank()%2, -c.Rank())
			cs := child.AllreduceSumMod([]uint64{uint64(c.Rank() + 1)}, 1<<20)
			mix([]byte(fmt.Sprint(cs[0])))
		}
		digests[c.Rank()] = h.Sum64()
		return nil
	})
	return digests, err
}

// TestChaosCollectivesMatchClean is the tentpole property: randomized
// worlds and fault schedules whose faults are all maskable (drops under
// the retry budget, delays, duplicates, reordering) must produce
// byte-identical per-rank results to a fault-free run of the same
// program.
func TestChaosCollectivesMatchClean(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 0xdead, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			p := drawBattery(rng)
			spec := FaultSpec{
				Drop:      rng.Float64() * 0.2,
				Delay:     time.Duration(rng.Intn(3)) * time.Millisecond,
				DelayProb: rng.Float64() * 0.5,
				Dup:       rng.Float64() * 0.3,
				Reorder:   rng.Float64() * 0.3,
				Seed:      seed,
			}
			var clean, chaos []uint64
			if err := runDeadlined(t, "clean battery", func() error {
				var err error
				clean, err = runBattery(p, FaultSpec{})
				return err
			}); err != nil {
				t.Fatalf("clean run: %v", err)
			}
			if err := runDeadlined(t, "chaos battery", func() error {
				var err error
				chaos, err = runBattery(p, spec)
				return err
			}); err != nil {
				t.Fatalf("chaos run (spec %s): %v", spec, err)
			}
			for r := range clean {
				if clean[r] != chaos[r] {
					t.Fatalf("rank %d digest diverged under %s: clean %x chaos %x",
						r, spec, clean[r], chaos[r])
				}
			}
		})
	}
}

// TestChaosScheduleReproducible pins determinism: the same spec on the
// same program must inject the identical fault schedule, observed
// through the per-rank fault counters.
func TestChaosScheduleReproducible(t *testing.T) {
	p := batteryParams{n: 4, tag: 7, root: 2, payload: 64, rounds: 2, seed: 99}
	spec := FaultSpec{Drop: 0.15, Dup: 0.2, Reorder: 0.2, Delay: time.Millisecond, DelayProb: 0.3, Seed: 1234}
	run := func() []int64 {
		comms := NewLocalWorldFaulty(p.n, CostModel{}, spec)
		for _, c := range comms {
			c.EnableObs()
		}
		err := runWorld(comms, func(c *Comm) error {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			for round := 0; round < 20; round++ {
				c.Send(next, round, []byte{byte(round)})
				c.Recv(prev, round)
			}
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		out := make([]int64, 0, 2*p.n)
		for _, c := range comms {
			s := c.ObsSnapshot()
			out = append(out, s.Counter(obs.FaultsInjected), s.Counter(obs.SendRetries))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule not reproducible: counters %v vs %v", a, b)
		}
	}
}

// TestChaosKillSurfacesStructured kills a rank mid-run and checks the
// failure is a WorldError whose rank errors are inspectable: the killed
// rank carries a *FaultError with ErrRankKilled, stranded peers unwind
// with ErrClosed, and nothing hangs.
func TestChaosKillSurfacesStructured(t *testing.T) {
	spec := FaultSpec{Kill: []KillRule{{Rank: 1, AfterSends: 3}}, Seed: 5}
	err := runDeadlined(t, "kill run", func() error {
		return RunLocalFaulty(4, CostModel{}, spec, func(c *Comm) error {
			for round := 0; round < 10; round++ {
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				c.Send(next, round, []byte{1})
				c.Recv(prev, round)
			}
			return nil
		})
	})
	if err == nil {
		t.Fatal("killed world reported success")
	}
	var we *WorldError
	if !errors.As(err, &we) {
		t.Fatalf("want *WorldError, got %T: %v", err, err)
	}
	var killed *RankError
	for _, re := range we.Ranks {
		var fe *FaultError
		if errors.As(re.Err, &fe) && errors.Is(fe, ErrRankKilled) {
			killed = re
		} else if !errors.Is(re.Err, ErrClosed) {
			t.Errorf("rank %d died of a non-fault cause: %v", re.Rank, re.Err)
		}
	}
	if killed == nil {
		t.Fatalf("no rank reported ErrRankKilled in %v", err)
	}
	if killed.Rank != 1 {
		t.Fatalf("killed rank = %d, want 1 (err %v)", killed.Rank, err)
	}
}

// TestChaosSeverExhaustsRetries permanently severs a link; the sender
// must burn its retry budget and escalate ErrLinkSevered rather than
// retry forever or hang.
func TestChaosSeverExhaustsRetries(t *testing.T) {
	spec := FaultSpec{Sever: [][2]int{{0, 1}}, Seed: 9, MaxRetries: 3}
	err := runDeadlined(t, "sever run", func() error {
		return RunLocalFaulty(2, CostModel{}, spec, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 1, []byte{1})
				return nil
			}
			c.Recv(0, 1)
			return nil
		})
	})
	if !errors.Is(err, ErrLinkSevered) {
		t.Fatalf("want ErrLinkSevered in the chain, got %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.From != 0 || fe.To != 1 || fe.Attempts != 4 {
		t.Fatalf("FaultError detail wrong: %+v (err %v)", fe, err)
	}
}

// TestChaosCertainDropExhaustsRetries drops every attempt: the bounded
// retry loop must give up with ErrMessageLost after recording its
// retries and backoff in the fault counters.
func TestChaosCertainDropExhaustsRetries(t *testing.T) {
	spec := FaultSpec{Drop: 1.0, Seed: 3, MaxRetries: 2}
	comms := NewLocalWorldFaulty(2, CostModel{}, spec)
	for _, c := range comms {
		c.EnableObs()
	}
	err := runDeadlined(t, "drop run", func() error {
		return runWorld(comms, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 1, []byte{1})
			} else {
				c.Recv(0, 1)
			}
			return nil
		})
	})
	if !errors.Is(err, ErrMessageLost) {
		t.Fatalf("want ErrMessageLost, got %v", err)
	}
	s := comms[0].ObsSnapshot()
	if got := s.Counter(obs.SendRetries); got != 2 {
		t.Fatalf("send-retries = %d, want 2", got)
	}
	if got := s.Counter(obs.FaultsInjected); got != 3 { // initial drop + 2 retried drops
		t.Fatalf("faults-injected = %d, want 3", got)
	}
	if s.Counter(obs.BackoffNanos) <= 0 {
		t.Fatal("no backoff recorded")
	}
}

// TestChaosPhaseLabelInErrors checks the failing rank's phase label
// travels into its RankError.
func TestChaosPhaseLabelInErrors(t *testing.T) {
	spec := FaultSpec{Kill: []KillRule{{Rank: 0, AfterSends: 1}}, Seed: 2}
	err := runDeadlined(t, "phase run", func() error {
		return RunLocalFaulty(2, CostModel{}, spec, func(c *Comm) error {
			c.SetPhase("halo-exchange round 3")
			if c.Rank() == 0 {
				c.Send(1, 1, []byte{1})
			} else {
				c.Recv(0, 1)
			}
			return nil
		})
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *RankError, got %v", err)
	}
	found := false
	var we *WorldError
	errors.As(err, &we)
	for _, r := range we.Ranks {
		if r.Rank == 0 && r.Phase == "halo-exchange round 3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("phase label missing from %v", err)
	}
}

// TestChaosInactiveSpecIsClean asserts the zero spec wraps nothing, so
// production paths pay nothing when chaos is off.
func TestChaosInactiveSpecIsClean(t *testing.T) {
	comms := NewLocalWorldFaulty(2, CostModel{}, FaultSpec{})
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	if _, ok := comms[0].transport.(*faultEndpoint); ok {
		t.Fatal("inactive spec still wrapped the transport")
	}
}

// TestFaultSpecParseRoundTrip pins the -fault-spec grammar.
func TestFaultSpecParseRoundTrip(t *testing.T) {
	cases := []string{
		"drop=0.05,delay=2ms,seed=42",
		"drop=0.1,delay=1ms,delayp=0.5,dup=0.2,reorder=0.1,sever=0-3,kill=2@10,seed=7,retries=5,backoff=1ms,backoffmax=100ms",
		"kill=1,kill=2@4,seed=1",
		"sever=1-2,sever=0-3,seed=9",
	}
	for _, text := range cases {
		spec, err := ParseFaultSpec(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		back, err := ParseFaultSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if back.String() != spec.String() {
			t.Fatalf("round-trip drift: %q -> %q", spec.String(), back.String())
		}
	}
	if _, err := ParseFaultSpec(""); err != nil {
		t.Fatalf("empty spec must parse: %v", err)
	}
	for _, bad := range []string{"drop=1.5", "drop=x", "sever=1", "kill=a@b", "nope=1", "delay=fast"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("accepted bad spec %q", bad)
		}
	}
}

// TestChaosWithAttemptRetryability pins the resilient-driver contract:
// attempt 0 is the schedule itself, retries re-seed and shed one-shot
// kill rules but keep the environment faults.
func TestChaosWithAttemptRetryability(t *testing.T) {
	spec := FaultSpec{Drop: 0.1, Sever: [][2]int{{0, 1}}, Kill: []KillRule{{Rank: 1, AfterSends: 1}}, Seed: 11}
	if got := spec.WithAttempt(0); got.String() != spec.String() {
		t.Fatalf("attempt 0 must be the spec itself: %s vs %s", got, spec)
	}
	retry := spec.WithAttempt(1)
	if retry.Seed == spec.Seed {
		t.Fatal("retry did not re-seed")
	}
	if len(retry.Kill) != 0 {
		t.Fatal("retry kept one-shot kill rules")
	}
	if retry.Drop != spec.Drop || len(retry.Sever) != 1 {
		t.Fatal("retry dropped environment faults")
	}
}
