package comm

import "fmt"

// Additional MPI-style operations beyond the core set in comm.go:
// combined send/receive, all-gather, scatter, and a gather returning
// fixed-size records. All are built on the same tagged point-to-point
// primitives, so they work identically over both transports and are
// modeled by the same virtual clocks.

const (
	tagAllgather = -6
	tagScatter   = -7
	tagAlltoall  = -8
)

// Sendrecv sends to dst and receives from src under the same tag in one
// deadlock-free step (sends are buffered, so ordering is free).
func (c *Comm) Sendrecv(dst int, sendData []byte, src, tag int) []byte {
	c.Send(dst, tag, sendData)
	return c.Recv(src, tag)
}

// AllgatherBytes collects every rank's payload on every rank, indexed by
// rank. Implemented as gather-to-root plus broadcast (2·log N rounds of
// the binomial trees).
func (c *Comm) AllgatherBytes(data []byte) [][]byte {
	c.beginCollective("allgather")
	defer c.endCollective()
	gathered := c.GatherBytes(0, data)
	// flatten with length prefixes for the broadcast
	var flat []byte
	if c.rank == 0 {
		for _, d := range gathered {
			flat = append(flat, byte(len(d)), byte(len(d)>>8), byte(len(d)>>16), byte(len(d)>>24))
			flat = append(flat, d...)
		}
	}
	flat = c.bcastFromRoot(tagAllgather, flat)
	out := make([][]byte, len(c.group))
	off := 0
	for r := range out {
		if off+4 > len(flat) {
			panic(fmt.Sprintf("comm: allgather underflow at rank %d", r))
		}
		n := int(flat[off]) | int(flat[off+1])<<8 | int(flat[off+2])<<16 | int(flat[off+3])<<24
		off += 4
		out[r] = flat[off : off+n : off+n]
		off += n
	}
	return out
}

// ScatterBytes distributes root's per-rank payloads; every rank returns
// its own chunk. Only root's chunks argument is used, and it must have
// exactly Size() entries.
func (c *Comm) ScatterBytes(root int, chunks [][]byte) []byte {
	c.beginCollective("scatter")
	defer c.endCollective()
	if c.rank == root {
		if len(chunks) != len(c.group) {
			panic(fmt.Sprintf("comm: scatter got %d chunks for %d ranks", len(chunks), len(c.group)))
		}
		for r := range c.group {
			if r != root {
				c.sendInternal(r, tagScatter, chunks[r])
			}
		}
		return chunks[root]
	}
	return c.recvInternal(root, tagScatter)
}

// AlltoallBytes performs a personalized all-to-all exchange: send[i]
// goes to rank i, and the returned slice holds what every rank sent to
// this one, indexed by source. send must have Size() entries.
func (c *Comm) AlltoallBytes(send [][]byte) [][]byte {
	c.beginCollective("alltoall")
	defer c.endCollective()
	n := len(c.group)
	if len(send) != n {
		panic(fmt.Sprintf("comm: alltoall got %d sends for %d ranks", len(send), n))
	}
	out := make([][]byte, n)
	for r := 0; r < n; r++ {
		if r == c.rank {
			out[r] = send[r]
			continue
		}
		c.sendInternal(r, tagAlltoall, send[r])
	}
	for r := 0; r < n; r++ {
		if r != c.rank {
			out[r] = c.recvInternal(r, tagAlltoall)
		}
	}
	return out
}
