package comm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSendRecvPairs(t *testing.T) {
	err := RunLocal(4, CostModel{}, func(c *Comm) error {
		// ring: send to (r+1)%4, receive from (r-1+4)%4
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.Send(next, 7, []byte{byte(c.Rank())})
		got := c.Recv(prev, 7)
		if len(got) != 1 || got[0] != byte(prev) {
			return fmt.Errorf("got %v from %d", got, prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderPerPair(t *testing.T) {
	err := RunLocal(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 3, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < 100; i++ {
			if got := c.Recv(0, 3); got[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchPanicsIntoError(t *testing.T) {
	err := RunLocal(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, nil)
			return nil
		}
		c.Recv(0, 6) // wrong tag → panic → RankError
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "expected tag") {
		t.Fatalf("want tag mismatch error, got %v", err)
	}
}

func TestNegativeTagRejected(t *testing.T) {
	err := RunLocal(1, CostModel{}, func(c *Comm) error {
		c.Send(0, -1, nil)
		return nil
	})
	if err == nil {
		t.Fatal("reserved tag accepted")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var before, after int32
	err := RunLocal(8, CostModel{}, func(c *Comm) error {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if atomic.LoadInt32(&before) != 8 {
			return fmt.Errorf("rank %d passed barrier before all arrived", c.Rank())
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 8 {
		t.Fatalf("only %d ranks passed barrier", after)
	}
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < n; root += 2 {
			n, root := n, root
			err := RunLocal(n, CostModel{}, func(c *Comm) error {
				var data []byte
				if c.Rank() == root {
					data = []byte("payload")
				}
				got := c.Bcast(root, data)
				if string(got) != "payload" {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestAllreduceXorMatchesFold(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		n := n
		want := make([]uint64, 4)
		for r := 0; r < n; r++ {
			for i := range want {
				want[i] ^= uint64(r*1000 + i)
			}
		}
		err := RunLocal(n, CostModel{}, func(c *Comm) error {
			in := make([]uint64, 4)
			for i := range in {
				in[i] = uint64(c.Rank()*1000 + i)
			}
			out := c.AllreduceXor(in)
			for i := range out {
				if out[i] != want[i] {
					return fmt.Errorf("rank %d slot %d: %d != %d", c.Rank(), i, out[i], want[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreduceSumMod(t *testing.T) {
	const mod = 1 << 11
	err := RunLocal(6, CostModel{}, func(c *Comm) error {
		out := c.AllreduceSumMod([]uint64{uint64(c.Rank()) + 2000}, mod)
		want := uint64(0)
		for r := 0; r < 6; r++ {
			want = (want + uint64(r) + 2000) % mod
		}
		if out[0] != want {
			return fmt.Errorf("got %d want %d", out[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxFloat(t *testing.T) {
	err := RunLocal(5, CostModel{}, func(c *Comm) error {
		got := c.AllreduceMaxFloat(float64(c.Rank() * 10))
		if got != 40 {
			return fmt.Errorf("max = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBytes(t *testing.T) {
	err := RunLocal(4, CostModel{}, func(c *Comm) error {
		got := c.GatherBytes(2, []byte{byte(c.Rank() * 3)})
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root got data")
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if got[r][0] != byte(r*3) {
				return fmt.Errorf("slot %d = %v", r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitGroupsAndIsolation(t *testing.T) {
	// 6 ranks → 2 colors {0,1,2} and {3,4,5}; exchange within each
	// child; ensure sizes, ranks and traffic isolation are right.
	err := RunLocal(6, CostModel{}, func(c *Comm) error {
		color := c.Rank() / 3
		child := c.Split(color, c.Rank())
		if child.Size() != 3 {
			return fmt.Errorf("child size %d", child.Size())
		}
		if child.Rank() != c.Rank()%3 {
			return fmt.Errorf("world %d got child rank %d", c.Rank(), child.Rank())
		}
		// ring within child
		child.Send((child.Rank()+1)%3, 9, []byte{byte(color)})
		got := child.Recv((child.Rank()+2)%3, 9)
		if got[0] != byte(color) {
			return fmt.Errorf("cross-color leak: got %d in color %d", got[0], color)
		}
		// collective on child
		sum := child.AllreduceSumMod([]uint64{1}, 1000)
		if sum[0] != 3 {
			return fmt.Errorf("child allreduce = %d", sum[0])
		}
		c.Barrier() // parent still usable
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByKeyReorders(t *testing.T) {
	err := RunLocal(4, CostModel{}, func(c *Comm) error {
		// all same color, key reverses order
		child := c.Split(0, -c.Rank())
		if child.Rank() != c.Size()-1-c.Rank() {
			return fmt.Errorf("world %d child %d", c.Rank(), child.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	err := RunLocal(8, CostModel{}, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		out := quarter.AllreduceSumMod([]uint64{uint64(c.Rank())}, 1<<20)
		// partners are world ranks 2a, 2a+1
		base := (c.Rank() / 2) * 2
		if out[0] != uint64(base+base+1) {
			return fmt.Errorf("world %d quarter sum %d", c.Rank(), out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCount(t *testing.T) {
	comms, err := RunLocalInspect(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, make([]byte, 100))
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := TotalStats(comms)
	if s.MsgsSent != 1 || s.BytesSent != 100 || s.MsgsRecvd != 1 || s.BytesRecvd != 100 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClockModelsLatencyAndBandwidth(t *testing.T) {
	model := CostModel{Alpha: 1e-3, Beta: 1e-6}
	comms, err := RunLocalInspect(2, model, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Clock().Advance(0.5)
			c.Send(1, 1, make([]byte, 1000))
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// receiver clock = 0.5 (sender compute) + 1e-3 (alpha) + 1000e-6 (beta)
	want := 0.5 + 1e-3 + 1e-3
	got := comms[1].Clock().Now()
	if diff := got - want; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("receiver clock %v, want %v", got, want)
	}
	if mk := MaxClock(comms); mk != got {
		t.Fatalf("makespan %v want %v", mk, got)
	}
}

func TestClockBarrierTakesMax(t *testing.T) {
	comms, err := RunLocalInspect(4, CostModel{}, func(c *Comm) error {
		c.Clock().Advance(float64(c.Rank()))
		c.Barrier()
		if c.Clock().Now() < 3 {
			return fmt.Errorf("rank %d clock %v below group max", c.Rank(), c.Clock().Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = comms
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance accepted")
		}
	}()
	(&Clock{}).Advance(-1)
}

func TestSelfSendRecv(t *testing.T) {
	err := RunLocal(3, CostModel{}, func(c *Comm) error {
		c.Send(c.Rank(), 2, []byte{42})
		if got := c.Recv(c.Rank(), 2); got[0] != 42 {
			return fmt.Errorf("self message corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("boom")
	err := RunLocal(3, CostModel{}, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	var we *WorldError
	if !errors.As(err, &we) || len(we.Ranks) != 1 {
		t.Fatalf("got %v, want single-rank WorldError", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 || !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero world accepted")
		}
	}()
	NewLocalWorld(0, CostModel{})
}

func TestSendRecvRankRangePanics(t *testing.T) {
	err := RunLocal(1, CostModel{}, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range send accepted")
	}
	err = RunLocal(1, CostModel{}, func(c *Comm) error {
		c.Recv(-1, 0)
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range recv accepted")
	}
}

func BenchmarkAllreduce8(b *testing.B) {
	comms := NewLocalWorld(8, CostModel{})
	var wg sync.WaitGroup
	for r := 1; r < 8; r++ {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			in := make([]uint64, 8)
			for i := 0; i < b.N; i++ {
				c.AllreduceXor(in)
			}
		}(comms[r])
	}
	data := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comms[0].AllreduceXor(data)
	}
	wg.Wait()
}

func BenchmarkPingPong(b *testing.B) {
	comms := NewLocalWorld(2, CostModel{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := comms[1]
		for i := 0; i < b.N; i++ {
			c.Send(0, 1, c.Recv(0, 1))
		}
	}()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comms[0].Send(1, 1, payload)
		payload = comms[0].Recv(1, 1)
	}
	wg.Wait()
}
