// Package comm is the message-passing substrate MIDAS runs on — a small
// MPI replacement built on the standard library, since the paper's MPI
// is not available here (DESIGN.md §3).
//
// The model is SPMD: a *world* of N ranks, each executing the same
// function. A Comm handle provides MPI-like operations:
//
//   - tagged point-to-point Send/Recv with unbounded buffering
//     (non-blocking sends, so symmetric exchange patterns cannot
//     deadlock),
//   - collectives built generically on top of point-to-point with a
//     reserved tag space: Barrier, Bcast, Reduce/Allreduce over binomial
//     trees (O(log N) rounds for any N),
//   - communicator splitting (MPI_Comm_split semantics) used by MIDAS to
//     carve the world into N/N1 phase groups of N1 ranks.
//
// Two transports implement the wire: an in-process channel mesh
// (NewLocalWorld; used by all tests and single-machine benchmarks) and
// TCP (Connect*; used by examples/distributed for true multi-process
// runs).
//
// Every rank also carries a virtual Clock implementing the α–β (LogP
// style) cost model described in DESIGN.md: Send stamps messages with
// the sender's virtual time, Recv advances the receiver to
// max(own, sent + α + bytes·β), and compute advances via Clock.Advance.
// Because collectives are built on Send/Recv, their tree latency is
// modeled automatically. The maximum clock over ranks at the end of a
// run is the modeled makespan used for the paper's scaling figures,
// which cannot be measured for N ≫ cores on this single-core machine.
//
// Error handling is retry-first, fail-structured. Transports absorb
// transient failures themselves: the TCP path applies connect/IO
// deadlines and retries failed writes with bounded exponential backoff
// (reconnecting if the peer comes back), and the chaos wrapper
// (fault.go) masks its injected drops the same way, recording faults,
// retries and backoff time in internal/obs counters. Only exhausted
// retries, severed links, and killed ranks escalate — as a panic
// carrying a structured *FaultError — because at that point the SPMD
// kernel cannot continue. The Run* helpers recover per-rank panics and
// aggregate them into a *WorldError of *RankErrors (rank, phase,
// cause) instead of one opaque string; callers retry a failed run
// safely because the 2^k evaluation iterations are independent
// (core.RunPathLocalResilient does exactly that). The chaos test suite
// (chaos_test.go) exercises this boundary.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/midas-hpc/midas/internal/obs"
)

// Reserved internal tags. User tags must be non-negative.
const (
	tagBarrier = -1
	tagReduce  = -2
	tagBcast   = -3
	tagSplit   = -4
	tagGather  = -5
)

// Comm is a communicator: a view of a rank within a group of ranks.
type Comm struct {
	transport transport
	ctx       uint64 // context id separating communicators sharing a transport
	rank      int    // rank within this communicator
	group     []int  // group[r] = world rank of communicator rank r
	splits    int    // number of Split calls so far (for deterministic child ctx)
	clock     *Clock
	stats     *Stats
	rec       *obs.Recorder // nil unless observability is enabled (obs.go)
	phase     *string       // current algorithm phase label, shared across Split children
}

// SetPhase labels the rank's current algorithm phase ("round 2",
// "phase 7", …). The label is carried into the RankError if the rank
// later fails, so operators see *where* a rank died, not just that it
// did. Split children and rotated views share the parent's label cell,
// so core code can set it on whichever communicator is handy.
func (c *Comm) SetPhase(name string) {
	if c.phase != nil {
		*c.phase = name
	}
	// Mirror into the recorder so the live /healthz endpoint can read
	// the label race-free while the rank is mid-run.
	c.rec.SetPhaseLabel(name)
}

// Phase returns the rank's current phase label ("" when never set).
func (c *Comm) Phase() string {
	if c.phase == nil {
		return ""
	}
	return *c.phase
}

// transport moves bytes between world ranks.
type transport interface {
	send(worldDst int, m message)
	recv(worldSrc int, ctx uint64) message
	close(worldRank int)
}

type message struct {
	ctx  uint64
	tag  int
	seq  uint64  // per-(sender, receiver, ctx) stream sequence number
	ts   float64 // sender's virtual send time (cost model)
	data []byte
}

// Rank returns this rank's id within the communicator, in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Clock returns the rank's virtual clock (never nil).
func (c *Comm) Clock() *Clock { return c.clock }

// Stats returns the rank's communication counters (never nil).
func (c *Comm) Stats() *Stats { return c.stats }

// Send delivers data to rank dst under the given tag. It never blocks
// (buffering is unbounded). The data slice is owned by the receiver
// afterwards; the caller must not modify it.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: send to rank %d of %d", dst, len(c.group)))
	}
	if tag < 0 {
		panic("comm: negative tags are reserved")
	}
	c.sendInternal(dst, tag, data)
}

func (c *Comm) sendInternal(dst, tag int, data []byte) {
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(len(data))
	if c.rec.Enabled() {
		// The modeled per-message cost under the α–β model; the flow
		// endpoint lets the trace exporter stitch this send to its
		// receive on the peer's timeline.
		c.rec.Observe(obs.HistSendLatency, c.clock.model.Alpha+c.clock.model.Beta*float64(len(data)))
		c.rec.FlowSend(c.group[c.rank], c.group[dst], c.ctx)
	}
	c.transport.send(c.group[dst], message{ctx: c.ctx, tag: tag, ts: c.clock.Now(), data: data})
}

// Recv blocks until the next message from src on this communicator
// arrives and returns its payload. Messages from a given src arrive in
// send order; if the arriving message's tag differs from the expected
// tag the protocol is broken and Recv panics (a deliberately strict
// variant of MPI matching that turns protocol bugs into loud failures).
func (c *Comm) Recv(src, tag int) []byte {
	if src < 0 || src >= len(c.group) {
		panic(fmt.Sprintf("comm: recv from rank %d of %d", src, len(c.group)))
	}
	if tag < 0 {
		panic("comm: negative tags are reserved")
	}
	return c.recvInternal(src, tag)
}

func (c *Comm) recvInternal(src, tag int) []byte {
	m := c.transport.recv(c.group[src], c.ctx)
	if m.tag != tag {
		panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	c.stats.MsgsRecvd++
	c.stats.BytesRecvd += int64(len(m.data))
	if c.rec.Enabled() {
		before := c.clock.Now()
		c.clock.observe(m.ts, len(m.data))
		c.rec.Observe(obs.HistRecvWait, c.clock.Now()-before)
		c.rec.FlowRecv(c.group[src], c.group[c.rank], c.ctx)
	} else {
		c.clock.observe(m.ts, len(m.data))
	}
	return m.data
}

// beginCollective counts a collective entry in Stats and opens a
// "collective" span when a recorder is attached; every call must be
// paired with endCollective. With the virtual clock as the span's time
// base, the span's extent is the rank's modeled wait: the jump to the
// group maximum plus tree latency.
func (c *Comm) beginCollective(name string) {
	c.stats.Collectives++
	c.rec.Begin(name, "collective")
}

func (c *Comm) endCollective() { c.rec.End() }

// Barrier blocks until every rank in the communicator has entered it.
// Implemented as a binomial-tree reduce followed by a broadcast, so the
// virtual clocks synchronize to the group maximum plus the modeled tree
// latency — exactly the semantics the per-phase MPIBarrier has in the
// paper's Algorithms 3–5.
func (c *Comm) Barrier() {
	c.beginCollective("barrier")
	before := c.clock.Now()
	c.reduceToRoot(tagBarrier, nil, nil)
	c.bcastFromRoot(tagBarrier, nil)
	// The rank's modeled barrier cost: jump to the group maximum plus
	// tree latency. Its spread across ranks is the barrier skew.
	c.rec.Observe(obs.HistBarrierWait, c.clock.Now()-before)
	c.endCollective()
}

// reduceToRoot folds the byte payloads of all ranks onto rank 0 along a
// binomial tree. combine merges a child's payload into ours (may be nil
// when payloads are nil, as in Barrier). Returns the folded payload on
// rank 0, nil elsewhere.
func (c *Comm) reduceToRoot(tag int, data []byte, combine func(mine, theirs []byte) []byte) []byte {
	size := len(c.group)
	rank := c.rank
	for step := 1; step < size; step <<= 1 {
		if rank&step != 0 {
			c.sendInternal((rank^step)&^(step-1), tag, data)
			return nil
		}
		partner := rank | step
		if partner < size {
			theirs := c.recvInternal(partner, tag)
			if combine != nil {
				data = combine(data, theirs)
			}
		}
	}
	return data
}

// bcastFromRoot sends rank 0's payload to everyone along a binomial
// tree and returns it.
func (c *Comm) bcastFromRoot(tag int, data []byte) []byte {
	size := len(c.group)
	rank := c.rank
	// Find the highest step at which this rank receives.
	mask := 1
	for mask < size {
		mask <<= 1
	}
	if rank != 0 {
		// receive from the parent: clear the lowest set bit
		parent := rank & (rank - 1)
		// wait until our turn in the tree: parent sends in decreasing
		// step order; FIFO per pair makes this safe without extra sync.
		data = c.recvInternal(parent, tag)
	}
	// forward to children: rank | step for steps above our lowest set bit
	low := rank & (-rank)
	if rank == 0 {
		low = mask
	}
	for step := low >> 1; step >= 1; step >>= 1 {
		child := rank | step
		if child != rank && child < size {
			c.sendInternal(child, tag, data)
		}
	}
	return data
}

// Bcast distributes root's payload to all ranks and returns it. Only
// root's data argument is used.
func (c *Comm) Bcast(root int, data []byte) []byte {
	if root < 0 || root >= len(c.group) {
		panic(fmt.Sprintf("comm: bcast root %d of %d", root, len(c.group)))
	}
	// Rotate so the generic root-0 tree applies.
	c.beginCollective("bcast")
	rot := c.rotated(root)
	out := rot.bcastFromRoot(tagBcast, data)
	c.endCollective()
	return out
}

// rotated returns a view of the communicator with ranks relabeled so
// that the given root becomes rank 0. Shares transport, clock, stats.
func (c *Comm) rotated(root int) *Comm {
	if root == 0 {
		return c
	}
	size := len(c.group)
	g := make([]int, size)
	for r := 0; r < size; r++ {
		g[r] = c.group[(r+root)%size]
	}
	return &Comm{
		transport: c.transport, ctx: c.ctx,
		rank: (c.rank - root + size) % size, group: g,
		clock: c.clock, stats: c.stats, rec: c.rec, phase: c.phase,
	}
}

// AllreduceUint64 folds each rank's slice element-wise with op and
// returns the combined slice on every rank. All ranks must pass slices
// of the same length.
func (c *Comm) AllreduceUint64(data []uint64, op func(a, b uint64) uint64) []uint64 {
	c.beginCollective("allreduce")
	defer c.endCollective()
	buf := u64sToBytes(data)
	combined := c.reduceToRoot(tagReduce, buf, func(mine, theirs []byte) []byte {
		a, b := bytesToU64s(mine), bytesToU64s(theirs)
		if len(a) != len(b) {
			panic(fmt.Sprintf("comm: allreduce length mismatch %d vs %d", len(a), len(b)))
		}
		for i := range a {
			a[i] = op(a[i], b[i])
		}
		return u64sToBytes(a)
	})
	out := c.bcastFromRoot(tagReduce, combined)
	return bytesToU64s(out)
}

// AllreduceXor xors slices element-wise across ranks — the GF(2^b)
// global sum at the heart of MIDAS's MPIReduce step.
func (c *Comm) AllreduceXor(data []uint64) []uint64 {
	return c.AllreduceUint64(data, func(a, b uint64) uint64 { return a ^ b })
}

// AllreduceOr ors slices element-wise across ranks — the collective
// "any rank raised a flag?" agreement internal/core's cooperative
// cancellation uses at phase-step boundaries (every rank learns the
// union, so all ranks take the same exit).
func (c *Comm) AllreduceOr(data []uint64) []uint64 {
	return c.AllreduceUint64(data, func(a, b uint64) uint64 { return a | b })
}

// AllreduceSumMod sums slices element-wise modulo mod across ranks (the
// Koutis-variant reduction, mod 2^(k+1)).
func (c *Comm) AllreduceSumMod(data []uint64, mod uint64) []uint64 {
	return c.AllreduceUint64(data, func(a, b uint64) uint64 { return (a + b) % mod })
}

// AllreduceMaxFloat returns the maximum of x over all ranks.
func (c *Comm) AllreduceMaxFloat(x float64) float64 {
	out := c.AllreduceUint64([]uint64{math.Float64bits(x)}, func(a, b uint64) uint64 {
		if math.Float64frombits(a) >= math.Float64frombits(b) {
			return a
		}
		return b
	})
	return math.Float64frombits(out[0])
}

// GatherBytes collects each rank's payload at root, index by rank.
// Returns nil on non-root ranks.
func (c *Comm) GatherBytes(root int, data []byte) [][]byte {
	c.beginCollective("gather")
	defer c.endCollective()
	if c.rank == root {
		out := make([][]byte, len(c.group))
		out[c.rank] = data
		for r := 0; r < len(c.group); r++ {
			if r != root {
				out[r] = c.recvInternal(r, tagGather)
			}
		}
		return out
	}
	c.sendInternal(root, tagGather, data)
	return nil
}

// Split partitions the communicator into disjoint sub-communicators:
// ranks passing the same color end up in the same child, ordered by
// (key, rank) — MPI_Comm_split semantics. Every rank of the parent must
// call Split collectively. The child shares the parent's transport,
// clock, stats and recorder.
func (c *Comm) Split(color, key int) *Comm {
	c.beginCollective("split")
	defer c.endCollective()
	// Gather (rank,color,key) triples everywhere via allreduce of a
	// sparse table (simple and collective-shaped; groups are small).
	n := len(c.group)
	table := make([]uint64, 2*n)
	table[2*c.rank] = uint64(uint32(color))<<32 | uint64(uint32(key))
	table[2*c.rank+1] = 1
	table = c.AllreduceUint64(table, func(a, b uint64) uint64 { return a | b })
	type entry struct{ rank, color, key int }
	var mine []entry
	myColor := color
	for r := 0; r < n; r++ {
		if table[2*r+1] == 0 {
			panic("comm: split table missing a rank")
		}
		ec := int(int32(table[2*r] >> 32))
		ek := int(int32(table[2*r] & 0xffffffff))
		if ec == myColor {
			mine = append(mine, entry{rank: r, color: ec, key: ek})
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, e := range mine {
		group[i] = c.group[e.rank]
		if e.rank == c.rank {
			newRank = i
		}
	}
	c.splits++
	// Deterministic child context: all ranks compute the same value.
	childCtx := c.ctx*0x9e3779b97f4a7c15 + uint64(c.splits)*2654435761 + uint64(uint32(color)) + 1
	return &Comm{
		transport: c.transport, ctx: childCtx,
		rank: newRank, group: group,
		clock: c.clock, stats: c.stats, rec: c.rec, phase: c.phase,
	}
}

// Close releases the rank's transport endpoint. Call once per world
// rank, on the world communicator, after all communication is done.
func (c *Comm) Close() {
	c.transport.close(c.group[c.rank])
}

func u64sToBytes(v []uint64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], x)
	}
	return out
}

func bytesToU64s(b []byte) []uint64 {
	if len(b)%8 != 0 {
		panic("comm: payload not a []uint64")
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}
