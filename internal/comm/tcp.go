package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// TCP transport: a world of separate OS processes connected by a full
// mesh of TCP connections. Bootstrap is a rendezvous at rank 0:
//
//  1. every rank listens on its own ephemeral port;
//  2. non-zero ranks dial rank 0's well-known address and register
//     their listen address; rank 0 assigns ranks in registration order
//     and replies with the full address table;
//  3. each pair (i, j) with i < j is connected once: i dials j, sends a
//     hello frame with its rank, and both sides start a reader pump
//     into the shared inbox.
//
// Frames on the wire: sender rank is implied by the connection; each
// message is [ctx u64][tag i64][seq u64][ts f64][len u32][payload].
//
// Resilience (docs/FAULTS.md): every handshake and data write runs
// under a deadline (TCPOptions.ConnectTimeout / IOTimeout). A failed
// write closes the connection and retries with exponential backoff +
// jitter, re-establishing the link first — the lower rank of the pair
// redials, the higher rank's persistent accept loop admits the
// returning peer. Each rank keeps its listener open for the life of
// the transport for exactly this reason. Retransmitted frames make
// delivery at-least-once, so the receive path dedups by per-stream
// sequence number (the same reassembler the fault wrapper uses).
// Retries exhausted escalate as a structured *FaultError carrying the
// underlying I/O error.

const tcpMagic = 0x4d494441 // "MIDA"

const tcpHeaderLen = 36

// TCPOptions tunes the TCP transport's deadlines and retry policy.
// The zero value means "all defaults" (see the accessors below), so
// callers set only what they need.
type TCPOptions struct {
	ConnectTimeout time.Duration // rendezvous, handshake, and (re)dial budget (default 10s)
	IOTimeout      time.Duration // per-frame write deadline (default 30s; <0 disables)
	MaxRetries     int           // send retries after the first failure (default 4)
	BackoffBase    time.Duration // first retry backoff (default 25ms), doubles per retry
	BackoffMax     time.Duration // backoff cap (default 2s)
	Fault          *FaultSpec    // optional chaos schedule injected over the wire
}

// DefaultTCPOptions returns the zero options — every knob at its
// documented default.
func DefaultTCPOptions() TCPOptions { return TCPOptions{} }

func (o TCPOptions) connectTimeout() time.Duration {
	if o.ConnectTimeout > 0 {
		return o.ConnectTimeout
	}
	return 10 * time.Second
}

func (o TCPOptions) ioTimeout() time.Duration {
	if o.IOTimeout != 0 {
		return o.IOTimeout
	}
	return 30 * time.Second
}

func (o TCPOptions) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return 4
}

func (o TCPOptions) backoffBase() time.Duration {
	if o.BackoffBase > 0 {
		return o.BackoffBase
	}
	return 25 * time.Millisecond
}

func (o TCPOptions) backoffMax() time.Duration {
	if o.BackoffMax > 0 {
		return o.BackoffMax
	}
	return 2 * time.Second
}

// ConnectTCP joins (or hosts) a TCP world with default options. rank 0
// must be started with rootAddr as its own listen address
// ("host:port"); other ranks pass the same rootAddr to find it. size
// is the total number of ranks and must agree across processes. The
// call blocks until the whole world is connected.
func ConnectTCP(rank, size int, rootAddr string, model CostModel) (*Comm, error) {
	return ConnectTCPOpts(rank, size, rootAddr, model, DefaultTCPOptions())
}

// ConnectTCPOpts is ConnectTCP with explicit deadline/retry options
// and (optionally) a fault-injection schedule wrapped over the wire.
// All ranks must pass the same Fault spec or none.
func ConnectTCPOpts(rank, size int, rootAddr string, model CostModel, opts TCPOptions) (*Comm, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: bad rank/size %d/%d", rank, size)
	}
	var ln net.Listener
	var err error
	if rank == 0 {
		ln, err = net.Listen("tcp", rootAddr)
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return nil, fmt.Errorf("comm: listen: %w", err)
	}
	addrs := make([]string, size)
	addrs[rank] = ln.Addr().String()
	hsDeadline := time.Now().Add(opts.connectTimeout())

	if rank == 0 {
		// Collect registrations, then send everyone the table.
		conns := make([]net.Conn, size)
		for i := 1; i < size; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("comm: rendezvous accept: %w", err)
			}
			conn.SetDeadline(hsDeadline)
			r, addr, err := readRegistration(conn)
			if err != nil {
				return nil, fmt.Errorf("comm: registration: %w", err)
			}
			// Ranks may register out of order; index by claimed rank.
			if r <= 0 || r >= size || conns[r] != nil {
				return nil, fmt.Errorf("comm: bad or duplicate registration for rank %d", r)
			}
			conns[r] = conn
			addrs[r] = addr
		}
		for r := 1; r < size; r++ {
			if err := writeAddrTable(conns[r], addrs); err != nil {
				return nil, fmt.Errorf("comm: address table to rank %d: %w", r, err)
			}
			conns[r].Close()
		}
	} else {
		conn, err := dialRetry(rootAddr, opts.connectTimeout())
		if err != nil {
			return nil, fmt.Errorf("comm: rendezvous dial: %w", err)
		}
		conn.SetDeadline(hsDeadline)
		if err := writeRegistration(conn, rank, addrs[rank]); err != nil {
			return nil, err
		}
		addrs, err = readAddrTable(conn, size)
		if err != nil {
			return nil, err
		}
		conn.Close()
	}

	t := &tcpTransport{
		inbox: newInbox(),
		rank:  rank,
		addrs: addrs,
		opts:  opts,
		ln:    ln,
		conns: make([]net.Conn, size),
		seen:  make([]bool, size),
		wmu:   make([]sync.Mutex, size),
		ra:    newReassembler(),
	}
	t.cond = sync.NewCond(&t.mu)
	t.managedSeq = opts.Fault != nil && opts.Fault.Active()
	if !t.managedSeq {
		t.seqOut = make(map[streamKey]uint64)
	}
	// The accept loop runs for the transport's lifetime so peers can
	// reconnect after a connection failure, not just during bootstrap.
	go t.acceptLoop()
	// Full-mesh connect: i dials j for i < j; everyone accepts from
	// lower ranks via the accept loop.
	for j := rank + 1; j < size; j++ {
		if _, err := t.dialPeer(j, opts.connectTimeout()); err != nil {
			return nil, fmt.Errorf("comm: dial rank %d: %w", j, err)
		}
	}
	if err := t.waitConnected(hsDeadline); err != nil {
		return nil, fmt.Errorf("comm: mesh accept: %w", err)
	}

	clock := &Clock{model: model}
	var tr transport = t
	if t.managedSeq {
		tr = newFaultEndpoint(t, rank, *opts.Fault, clock)
	}
	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		transport: tr, ctx: 0, rank: rank, group: group,
		clock: clock, stats: &Stats{}, phase: new(string),
	}, nil
}

type tcpTransport struct {
	inbox *inbox
	rank  int
	addrs []string
	opts  TCPOptions
	ln    net.Listener
	rec   *obs.Recorder // send-retry counters; nil-safe

	mu     sync.Mutex
	cond   *sync.Cond
	conns  []net.Conn
	seen   []bool // peer ever connected; the bootstrap barrier keys on this, not on conns staying live
	closed bool

	wmu []sync.Mutex // per-peer write serialization (send path vs held-message flush)

	// managedSeq: an outer fault wrapper owns sequence numbering; the
	// transport passes seq through untouched. Otherwise the transport
	// stamps outgoing frames itself so the receive path can dedup
	// at-least-once redeliveries.
	managedSeq bool
	seqOut     map[streamKey]uint64
	ra         *reassembler
}

func (t *tcpTransport) setRecorder(r *obs.Recorder) { t.rec = r }

// acceptLoop admits peers for the life of the transport: the initial
// mesh (higher ranks accept lower ranks) and any reconnection after a
// failed link. A new connection from a peer replaces the old one.
func (t *tcpTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed: transport shut down
		}
		go func() {
			conn.SetReadDeadline(time.Now().Add(t.opts.connectTimeout()))
			peer, err := readHello(conn)
			conn.SetReadDeadline(time.Time{})
			if err != nil || peer < 0 || peer >= len(t.conns) {
				conn.Close()
				return
			}
			t.install(peer, conn)
		}()
	}
}

// install registers conn as the live link to peer (replacing and
// closing any previous one) and starts its reader pump.
func (t *tcpTransport) install(peer int, conn net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	if old := t.conns[peer]; old != nil {
		old.Close()
	}
	t.conns[peer] = conn
	t.seen[peer] = true
	t.cond.Broadcast()
	t.mu.Unlock()
	go t.pump(peer, conn)
}

// dialPeer establishes (or re-establishes) the outgoing link to a
// higher-ranked peer.
func (t *tcpTransport) dialPeer(peer int, timeout time.Duration) (net.Conn, error) {
	conn, err := dialRetry(t.addrs[peer], timeout)
	if err != nil {
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(t.opts.connectTimeout()))
	if err := writeHello(conn, t.rank); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	t.install(peer, conn)
	return conn, nil
}

// waitConnected blocks until every peer link has been up at least once
// (bootstrap barrier). It keys on seen, not conns: a fast peer may
// finish its program and close while we are still here, which retires
// its conn — that is a completed link, not a missing one, and recv
// still drains whatever its pump delivered.
func (t *tcpTransport) waitConnected(deadline time.Time) error {
	timeout := time.AfterFunc(time.Until(deadline), func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timeout.Stop()
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		missing := -1
		for p, ok := range t.seen {
			if p != t.rank && !ok {
				missing = p
				break
			}
		}
		if missing < 0 {
			return nil
		}
		if t.closed {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no connection from rank %d within %v", missing, t.opts.connectTimeout())
		}
		t.cond.Wait()
	}
}

// connFor returns the live connection to peer, re-establishing it if
// necessary: the lower rank of a pair redials, the higher rank waits
// for the peer to redial into the accept loop.
func (t *tcpTransport) connFor(peer int) (net.Conn, error) {
	t.mu.Lock()
	if conn := t.conns[peer]; conn != nil || t.closed {
		t.mu.Unlock()
		if conn == nil {
			return nil, ErrClosed
		}
		return conn, nil
	}
	t.mu.Unlock()
	if t.rank < peer {
		return t.dialPeer(peer, t.opts.connectTimeout())
	}
	// Higher rank: the peer dials us. Wait for the accept loop.
	deadline := time.Now().Add(t.opts.connectTimeout())
	timeout := time.AfterFunc(t.opts.connectTimeout(), func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timeout.Stop()
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.conns[peer] == nil {
		if t.closed {
			return nil, ErrClosed
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("rank %d did not reconnect within %v", peer, t.opts.connectTimeout())
		}
		t.cond.Wait()
	}
	return t.conns[peer], nil
}

// dropConn retires a connection after an I/O error (idempotent: only
// the currently-installed conn is dropped, so a racing reconnect is
// not clobbered).
func (t *tcpTransport) dropConn(peer int, conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	if t.conns[peer] == conn {
		t.conns[peer] = nil
	}
	t.mu.Unlock()
}

func encodeFrame(m message) []byte {
	buf := make([]byte, tcpHeaderLen+len(m.data))
	binary.LittleEndian.PutUint64(buf[0:], m.ctx)
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(m.tag)))
	binary.LittleEndian.PutUint64(buf[16:], m.seq)
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(m.ts))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(m.data)))
	copy(buf[tcpHeaderLen:], m.data)
	return buf
}

func (t *tcpTransport) send(worldDst int, m message) {
	if worldDst == t.rank {
		t.inbox.put(t.rank, m)
		return
	}
	if !t.managedSeq {
		key := streamKey{worldDst, m.ctx}
		m.seq = t.seqOut[key]
		t.seqOut[key] = m.seq + 1
	}
	// One frame, one Write: a retried frame never interleaves with a
	// concurrent flush to the same peer, and the receiver's sequence
	// filter absorbs the duplicate if the first write half-succeeded.
	frame := encodeFrame(m)
	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := t.connFor(worldDst)
		if err == nil {
			t.wmu[worldDst].Lock()
			if d := t.opts.ioTimeout(); d > 0 {
				conn.SetWriteDeadline(time.Now().Add(d))
			}
			_, err = conn.Write(frame)
			t.wmu[worldDst].Unlock()
			if err == nil {
				return
			}
			t.dropConn(worldDst, conn)
		}
		lastErr = err
		if attempt >= t.opts.maxRetries() {
			panic(&FaultError{Op: "send", From: t.rank, To: worldDst, Attempts: attempt + 1, Err: lastErr})
		}
		backoff := t.opts.backoffBase() << uint(attempt)
		if max := t.opts.backoffMax(); backoff > max || backoff <= 0 {
			backoff = max
		}
		// ±25% deterministic-ish jitter from the attempt counter; the
		// point is decorrelating peers, not reproducibility (real wall
		// time is already non-reproducible here).
		backoff += backoff * time.Duration(attempt%3) / 8
		t.rec.Add(obs.SendRetries, 1)
		t.rec.Add(obs.BackoffNanos, backoff.Nanoseconds())
		t.rec.Observe(obs.HistRetryBackoff, backoff.Seconds())
		time.Sleep(backoff)
	}
}

func (t *tcpTransport) recv(worldSrc int, ctx uint64) message {
	if t.managedSeq {
		// The outer fault wrapper dedups; pass raw deliveries through.
		return t.inbox.take(worldSrc, ctx)
	}
	return t.ra.next(streamKey{worldSrc, ctx}, func() message {
		return t.inbox.take(worldSrc, ctx)
	})
}

func (t *tcpTransport) close(int) {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
	t.mu.Unlock()
	t.ln.Close()
	t.inbox.shutdown()
}

func (t *tcpTransport) abort() {
	// One process per rank: aborting tears down only this endpoint;
	// remote peers see the dead connections and fail their own sends.
	t.close(t.rank)
}

// pump reads frames from one peer connection into the inbox until the
// connection dies; a reconnect installs a fresh pump.
func (t *tcpTransport) pump(peer int, conn net.Conn) {
	defer t.dropConn(peer, conn)
	br := bufio.NewReaderSize(conn, 1<<16)
	var hdr [tcpHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // connection closed or broken; sender side retries
		}
		m := message{
			ctx: binary.LittleEndian.Uint64(hdr[0:]),
			tag: int(int64(binary.LittleEndian.Uint64(hdr[8:]))),
			seq: binary.LittleEndian.Uint64(hdr[16:]),
			ts:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:])),
		}
		n := binary.LittleEndian.Uint32(hdr[32:])
		if n > 0 {
			m.data = make([]byte, n)
			if _, err := io.ReadFull(br, m.data); err != nil {
				return
			}
		}
		t.inbox.put(peer, m)
	}
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func writeHello(conn net.Conn, rank int) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	_, err := conn.Write(hdr[:])
	return err
}

func readHello(conn net.Conn) (int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != tcpMagic {
		return 0, fmt.Errorf("bad hello magic")
	}
	return int(binary.LittleEndian.Uint32(hdr[4:])), nil
}

func writeRegistration(conn net.Conn, rank int, addr string) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(addr)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write([]byte(addr))
	return err
}

func readRegistration(conn net.Conn) (rank int, addr string, err error) {
	var hdr [12]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, "", err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != tcpMagic {
		return 0, "", fmt.Errorf("bad magic")
	}
	rank = int(binary.LittleEndian.Uint32(hdr[4:]))
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > 1024 {
		return 0, "", fmt.Errorf("oversized address")
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(conn, buf); err != nil {
		return 0, "", err
	}
	return rank, string(buf), nil
}

func writeAddrTable(conn net.Conn, addrs []string) error {
	for _, a := range addrs {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(a)))
		if _, err := conn.Write(l[:]); err != nil {
			return err
		}
		if _, err := conn.Write([]byte(a)); err != nil {
			return err
		}
	}
	return nil
}

func readAddrTable(conn net.Conn, size int) ([]string, error) {
	addrs := make([]string, size)
	for i := range addrs {
		var l [4]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(l[:])
		if n > 1024 {
			return nil, fmt.Errorf("comm: oversized address entry")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return nil, err
		}
		addrs[i] = string(buf)
	}
	return addrs, nil
}
