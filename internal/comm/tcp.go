package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// TCP transport: a world of separate OS processes connected by a full
// mesh of TCP connections. Bootstrap is a rendezvous at rank 0:
//
//  1. every rank listens on its own ephemeral port;
//  2. non-zero ranks dial rank 0's well-known address and register
//     their listen address; rank 0 assigns ranks in registration order
//     and replies with the full address table;
//  3. each pair (i, j) with i < j is connected once: i dials j, sends a
//     hello frame with its rank, and both sides start a reader pump
//     into the shared inbox.
//
// Frames on the wire: sender rank is implied by the connection; each
// message is [ctx u64][tag i64][ts f64][len u32][payload].

const tcpMagic = 0x4d494441 // "MIDA"

// ConnectTCP joins (or hosts) a TCP world. rank 0 must be started with
// rootAddr as its own listen address ("host:port"); other ranks pass
// the same rootAddr to find it. size is the total number of ranks and
// must agree across processes. The call blocks until the whole world is
// connected.
func ConnectTCP(rank, size int, rootAddr string, model CostModel) (*Comm, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: bad rank/size %d/%d", rank, size)
	}
	var ln net.Listener
	var err error
	if rank == 0 {
		ln, err = net.Listen("tcp", rootAddr)
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return nil, fmt.Errorf("comm: listen: %w", err)
	}
	addrs := make([]string, size)
	addrs[rank] = ln.Addr().String()

	if rank == 0 {
		// Collect registrations, then send everyone the table.
		conns := make([]net.Conn, size)
		for i := 1; i < size; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return nil, fmt.Errorf("comm: rendezvous accept: %w", err)
			}
			r, addr, err := readRegistration(conn)
			if err != nil {
				return nil, fmt.Errorf("comm: registration: %w", err)
			}
			// Ranks may register out of order; index by claimed rank.
			if r <= 0 || r >= size || conns[r] != nil {
				return nil, fmt.Errorf("comm: bad or duplicate registration for rank %d", r)
			}
			conns[r] = conn
			addrs[r] = addr
		}
		for r := 1; r < size; r++ {
			if err := writeAddrTable(conns[r], addrs); err != nil {
				return nil, fmt.Errorf("comm: address table to rank %d: %w", r, err)
			}
			conns[r].Close()
		}
	} else {
		conn, err := dialRetry(rootAddr, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("comm: rendezvous dial: %w", err)
		}
		if err := writeRegistration(conn, rank, addrs[rank]); err != nil {
			return nil, err
		}
		addrs, err = readAddrTable(conn, size)
		if err != nil {
			return nil, err
		}
		conn.Close()
	}

	// Full-mesh connect: i dials j for i < j; everyone accepts from
	// lower ranks.
	ib := newInbox()
	t := &tcpTransport{inbox: ib, conns: make([]net.Conn, size), rank: rank}
	done := make(chan error, size)
	expected := rank // number of incoming connections (from lower ranks)
	go func() {
		for i := 0; i < expected; i++ {
			conn, err := ln.Accept()
			if err != nil {
				done <- err
				return
			}
			peer, err := readHello(conn)
			if err != nil {
				done <- err
				return
			}
			t.conns[peer] = conn
			go t.pump(peer, conn)
		}
		done <- nil
	}()
	for j := rank + 1; j < size; j++ {
		conn, err := dialRetry(addrs[j], 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("comm: dial rank %d: %w", j, err)
		}
		if err := writeHello(conn, rank); err != nil {
			return nil, err
		}
		t.conns[j] = conn
		go t.pump(j, conn)
	}
	if err := <-done; err != nil {
		return nil, fmt.Errorf("comm: mesh accept: %w", err)
	}
	ln.Close()

	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		transport: t, ctx: 0, rank: rank, group: group,
		clock: &Clock{model: model}, stats: &Stats{},
	}, nil
}

type tcpTransport struct {
	inbox *inbox
	conns []net.Conn
	rank  int
}

func (t *tcpTransport) send(worldDst int, m message) {
	if worldDst == t.rank {
		t.inbox.put(t.rank, m)
		return
	}
	conn := t.conns[worldDst]
	if conn == nil {
		panic(fmt.Sprintf("comm: no connection to rank %d", worldDst))
	}
	var hdr [28]byte
	binary.LittleEndian.PutUint64(hdr[0:], m.ctx)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(m.tag)))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(m.ts))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(m.data)))
	if _, err := conn.Write(hdr[:]); err != nil {
		panic(fmt.Sprintf("comm: send to rank %d: %v", worldDst, err))
	}
	if len(m.data) > 0 {
		if _, err := conn.Write(m.data); err != nil {
			panic(fmt.Sprintf("comm: send to rank %d: %v", worldDst, err))
		}
	}
}

func (t *tcpTransport) recv(worldSrc int, ctx uint64) message {
	return t.inbox.take(worldSrc, ctx)
}

func (t *tcpTransport) close(int) {
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
	t.inbox.shutdown()
}

// pump reads frames from one peer connection into the inbox until EOF.
func (t *tcpTransport) pump(peer int, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	var hdr [28]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // connection closed; pending receivers fail via shutdown
		}
		m := message{
			ctx: binary.LittleEndian.Uint64(hdr[0:]),
			tag: int(int64(binary.LittleEndian.Uint64(hdr[8:]))),
			ts:  math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:])),
		}
		n := binary.LittleEndian.Uint32(hdr[24:])
		if n > 0 {
			m.data = make([]byte, n)
			if _, err := io.ReadFull(br, m.data); err != nil {
				return
			}
		}
		t.inbox.put(peer, m)
	}
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func writeHello(conn net.Conn, rank int) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	_, err := conn.Write(hdr[:])
	return err
}

func readHello(conn net.Conn) (int, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != tcpMagic {
		return 0, fmt.Errorf("bad hello magic")
	}
	return int(binary.LittleEndian.Uint32(hdr[4:])), nil
}

func writeRegistration(conn net.Conn, rank int, addr string) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(rank))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(addr)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write([]byte(addr))
	return err
}

func readRegistration(conn net.Conn) (rank int, addr string, err error) {
	var hdr [12]byte
	if _, err = io.ReadFull(conn, hdr[:]); err != nil {
		return 0, "", err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != tcpMagic {
		return 0, "", fmt.Errorf("bad magic")
	}
	rank = int(binary.LittleEndian.Uint32(hdr[4:]))
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > 1024 {
		return 0, "", fmt.Errorf("oversized address")
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(conn, buf); err != nil {
		return 0, "", err
	}
	return rank, string(buf), nil
}

func writeAddrTable(conn net.Conn, addrs []string) error {
	for _, a := range addrs {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(a)))
		if _, err := conn.Write(l[:]); err != nil {
			return err
		}
		if _, err := conn.Write([]byte(a)); err != nil {
			return err
		}
	}
	return nil
}

func readAddrTable(conn net.Conn, size int) ([]string, error) {
	addrs := make([]string, size)
	for i := range addrs {
		var l [4]byte
		if _, err := io.ReadFull(conn, l[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(l[:])
		if n > 1024 {
			return nil, fmt.Errorf("comm: oversized address entry")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return nil, err
		}
		addrs[i] = string(buf)
	}
	return addrs, nil
}
