package comm

import (
	"fmt"
	"net"
	"sync"
	"testing"
)

// freePort grabs an ephemeral port for the rendezvous root.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runTCPWorld runs fn as an SPMD program over a TCP world hosted in this
// process (one goroutine per rank, real sockets in between).
func runTCPWorld(t *testing.T, n int, fn func(c *Comm) error) error {
	t.Helper()
	root := freePort(t)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("panic: %v", p)
				}
			}()
			c, err := ConnectTCP(rank, n, root, CostModel{})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = fn(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return &RankError{Rank: r, Err: err}
		}
	}
	return nil
}

func TestTCPSendRecv(t *testing.T) {
	err := runTCPWorld(t, 3, func(c *Comm) error {
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		c.Send(next, 4, []byte(fmt.Sprintf("hello-%d", c.Rank())))
		got := string(c.Recv(prev, 4))
		want := fmt.Sprintf("hello-%d", prev)
		if got != want {
			return fmt.Errorf("got %q want %q", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectivesAndSplit(t *testing.T) {
	err := runTCPWorld(t, 4, func(c *Comm) error {
		out := c.AllreduceSumMod([]uint64{uint64(c.Rank() + 1)}, 1<<30)
		if out[0] != 10 {
			return fmt.Errorf("allreduce sum = %d, want 10", out[0])
		}
		data := c.Bcast(1, []byte{99})
		if data[0] != 99 {
			return fmt.Errorf("bcast got %v", data)
		}
		child := c.Split(c.Rank()%2, c.Rank())
		if child.Size() != 2 {
			return fmt.Errorf("child size %d", child.Size())
		}
		pair := child.AllreduceSumMod([]uint64{uint64(c.Rank())}, 1<<30)
		want := uint64(c.Rank()%2) + uint64(c.Rank()%2+2)
		if pair[0] != want {
			return fmt.Errorf("pair sum %d want %d", pair[0], want)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	const size = 1 << 20
	err := runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 31)
			}
			c.Send(1, 8, data)
			return nil
		}
		got := c.Recv(0, 8)
		if len(got) != size {
			return fmt.Errorf("len %d", len(got))
		}
		for i := range got {
			if got[i] != byte(i*31) {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPBadRankRejected(t *testing.T) {
	if _, err := ConnectTCP(5, 3, "127.0.0.1:0", CostModel{}); err == nil {
		t.Fatal("rank >= size accepted")
	}
	if _, err := ConnectTCP(0, 0, "127.0.0.1:0", CostModel{}); err == nil {
		t.Fatal("empty world accepted")
	}
}

func TestTCPPeerDeathFailsLoudly(t *testing.T) {
	// Rank 1 closes immediately; rank 0's blocking recv must panic
	// (captured as RankError), not hang.
	root := freePort(t)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				errs[0] = fmt.Errorf("panic: %v", p)
			}
		}()
		c, err := ConnectTCP(0, 2, root, CostModel{})
		if err != nil {
			errs[0] = err
			return
		}
		// peer is gone; this recv can never be satisfied. Close our
		// endpoint from another goroutine once the peer's death is
		// certain, so take() wakes up and panics.
		go func() {
			c.Close()
		}()
		c.Recv(1, 1)
	}()
	go func() {
		defer wg.Done()
		c, err := ConnectTCP(1, 2, root, CostModel{})
		if err != nil {
			errs[1] = err
			return
		}
		c.Close() // die without sending
	}()
	wg.Wait()
	if errs[0] == nil {
		t.Fatal("recv from dead peer returned successfully")
	}
	if errs[1] != nil {
		t.Fatalf("rank 1 failed: %v", errs[1])
	}
}
