package comm

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// freePort grabs an ephemeral port for the rendezvous root.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runTCPWorld runs fn as an SPMD program over a TCP world hosted in this
// process (one goroutine per rank, real sockets in between).
func runTCPWorld(t *testing.T, n int, fn func(c *Comm) error) error {
	t.Helper()
	root := freePort(t)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("panic: %v", p)
				}
			}()
			c, err := ConnectTCP(rank, n, root, CostModel{})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = fn(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return &RankError{Rank: r, Err: err}
		}
	}
	return nil
}

func TestTCPSendRecv(t *testing.T) {
	err := runTCPWorld(t, 3, func(c *Comm) error {
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		c.Send(next, 4, []byte(fmt.Sprintf("hello-%d", c.Rank())))
		got := string(c.Recv(prev, 4))
		want := fmt.Sprintf("hello-%d", prev)
		if got != want {
			return fmt.Errorf("got %q want %q", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectivesAndSplit(t *testing.T) {
	err := runTCPWorld(t, 4, func(c *Comm) error {
		out := c.AllreduceSumMod([]uint64{uint64(c.Rank() + 1)}, 1<<30)
		if out[0] != 10 {
			return fmt.Errorf("allreduce sum = %d, want 10", out[0])
		}
		data := c.Bcast(1, []byte{99})
		if data[0] != 99 {
			return fmt.Errorf("bcast got %v", data)
		}
		child := c.Split(c.Rank()%2, c.Rank())
		if child.Size() != 2 {
			return fmt.Errorf("child size %d", child.Size())
		}
		pair := child.AllreduceSumMod([]uint64{uint64(c.Rank())}, 1<<30)
		want := uint64(c.Rank()%2) + uint64(c.Rank()%2+2)
		if pair[0] != want {
			return fmt.Errorf("pair sum %d want %d", pair[0], want)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargeMessage(t *testing.T) {
	const size = 1 << 20
	err := runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 31)
			}
			c.Send(1, 8, data)
			return nil
		}
		got := c.Recv(0, 8)
		if len(got) != size {
			return fmt.Errorf("len %d", len(got))
		}
		for i := range got {
			if got[i] != byte(i*31) {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPBadRankRejected(t *testing.T) {
	if _, err := ConnectTCP(5, 3, "127.0.0.1:0", CostModel{}); err == nil {
		t.Fatal("rank >= size accepted")
	}
	if _, err := ConnectTCP(0, 0, "127.0.0.1:0", CostModel{}); err == nil {
		t.Fatal("empty world accepted")
	}
}

func TestTCPReconnectAfterConnDrop(t *testing.T) {
	// A broken TCP connection must not kill the world: the send path
	// detects the dead link, the lower rank redials, the higher rank's
	// persistent accept loop admits it, and traffic continues.
	err := runTCPWorld(t, 2, func(c *Comm) error {
		peer := 1 - c.Rank()
		// Warm the link both ways.
		c.Send(peer, 1, []byte{byte(c.Rank())})
		if got := c.Recv(peer, 1); got[0] != byte(peer) {
			return fmt.Errorf("warmup got %v", got)
		}
		if c.Rank() == 0 {
			// Yank the live connection out from under the transport,
			// simulating a network failure.
			tt := c.transport.(*tcpTransport)
			tt.mu.Lock()
			conn := tt.conns[1]
			tt.mu.Unlock()
			conn.Close()
			// This send hits the dead conn, drops it, redials, and the
			// message arrives on the fresh connection.
			c.Send(1, 2, []byte{42})
			if got := c.Recv(1, 3); got[0] != 43 {
				return fmt.Errorf("reply got %v", got)
			}
			return nil
		}
		if got := c.Recv(0, 2); got[0] != 42 {
			return fmt.Errorf("post-drop recv got %v", got)
		}
		// Replying exercises the reconnected link in the other
		// direction (the accept loop already swapped in the new conn).
		c.Send(0, 3, []byte{43})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendRetryCountersRecorded(t *testing.T) {
	// A send to a rank that is gone for good must burn the bounded
	// retry budget (recording each retry and its backoff in the
	// resilience counters) and escalate a structured *FaultError — not
	// retry forever and not report success.
	const maxRetries = 2
	root := freePort(t)
	peerGone := make(chan struct{})
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	var retries, backoff int64
	go func() { // rank 0: the surviving sender
		defer wg.Done()
		c, err := ConnectTCPOpts(0, 2, root, CostModel{}, TCPOptions{
			ConnectTimeout: 200 * time.Millisecond,
			MaxRetries:     maxRetries,
			BackoffBase:    time.Millisecond,
			BackoffMax:     5 * time.Millisecond,
		})
		if err != nil {
			errs[0] = err
			return
		}
		defer c.Close()
		c.EnableObs()
		c.Send(1, 1, []byte{0})
		c.Recv(1, 1)
		<-peerGone
		func() {
			defer func() {
				p := recover()
				if p == nil {
					errs[0] = fmt.Errorf("send to dead rank succeeded")
					return
				}
				fe, ok := p.(error)
				if !ok {
					errs[0] = fmt.Errorf("panic was not an error: %v", p)
					return
				}
				var fault *FaultError
				if !errors.As(fe, &fault) || fault.To != 1 || fault.Attempts != maxRetries+1 {
					errs[0] = fmt.Errorf("want FaultError to rank 1 after %d attempts, got %v", maxRetries+1, fe)
				}
			}()
			c.Send(1, 2, []byte{7})
		}()
		s := c.ObsSnapshot()
		retries = s.Counter(obs.SendRetries)
		backoff = s.Counter(obs.BackoffNanos)
	}()
	go func() { // rank 1: connects, exchanges once, and dies
		defer wg.Done()
		c, err := ConnectTCP(1, 2, root, CostModel{})
		if err != nil {
			errs[1] = err
			close(peerGone)
			return
		}
		c.Send(0, 1, []byte{1})
		c.Recv(0, 1)
		c.Close()
		close(peerGone)
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if retries != maxRetries {
		t.Fatalf("send-retries = %d, want %d", retries, maxRetries)
	}
	if backoff <= 0 {
		t.Fatal("no backoff time recorded")
	}
}

func TestTCPPeerDeathFailsLoudly(t *testing.T) {
	// Rank 1 closes immediately; rank 0's blocking recv must panic
	// (captured as RankError), not hang.
	root := freePort(t)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				errs[0] = fmt.Errorf("panic: %v", p)
			}
		}()
		c, err := ConnectTCP(0, 2, root, CostModel{})
		if err != nil {
			errs[0] = err
			return
		}
		// peer is gone; this recv can never be satisfied. Close our
		// endpoint from another goroutine once the peer's death is
		// certain, so take() wakes up and panics.
		go func() {
			c.Close()
		}()
		c.Recv(1, 1)
	}()
	go func() {
		defer wg.Done()
		c, err := ConnectTCP(1, 2, root, CostModel{})
		if err != nil {
			errs[1] = err
			return
		}
		c.Close() // die without sending
	}()
	wg.Wait()
	if errs[0] == nil {
		t.Fatal("recv from dead peer returned successfully")
	}
	if errs[1] != nil {
		t.Fatalf("rank 1 failed: %v", errs[1])
	}
}
