package comm

import (
	"testing"

	"github.com/midas-hpc/midas/internal/obs"
)

// TestResetTelemetryBetweenRepetitions is the regression test for the
// stale-counter bug: on a reused world, clock/stats/recorder state from
// one repetition must not leak into the next.
func TestResetTelemetryBetweenRepetitions(t *testing.T) {
	comms, err := RunLocalInspect(2, DefaultCostModel(), func(c *Comm) error {
		c.EnableObs()
		for rep := 0; rep < 3; rep++ {
			if rep > 0 {
				c.Barrier()
				c.ResetTelemetry()
			}
			if c.Rank() == 0 {
				c.Send(1, 7, make([]byte, 100))
			} else {
				c.Recv(0, 7)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the final repetition, counters must reflect ONE repetition:
	// one 100-byte payload message plus one zero-byte barrier-tree
	// message sent by rank 0 (collectives count their tree traffic).
	s0 := comms[0].Stats()
	if s0.MsgsSent != 2 || s0.BytesSent != 100 {
		t.Fatalf("rank 0 stats accumulated across repetitions: %+v", s0)
	}
	if s0.Collectives != 1 {
		t.Fatalf("rank 0 collectives = %d, want 1 (one barrier per repetition)", s0.Collectives)
	}
	snap := comms[0].ObsSnapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "barrier" {
		t.Fatalf("recorder spans not reset: %+v", snap.Spans)
	}
	if comms[0].Clock().Now() > 1e-3 {
		t.Fatalf("clock not reset: %v", comms[0].Clock().Now())
	}
}

func TestCollectivesCounterAndSpans(t *testing.T) {
	comms, err := RunLocalInspect(4, CostModel{}, func(c *Comm) error {
		c.EnableObs()
		c.Barrier()                              // 1
		c.Bcast(2, []byte{1})                    // 1
		c.AllreduceXor([]uint64{0, 1})           // 1
		c.GatherBytes(0, []byte{byte(c.Rank())}) // 1
		sub := c.Split(c.Rank()%2, 0)            // 1 split + 1 nested allreduce
		sub.Barrier()                            // 1, on the child: shares stats+rec
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comms {
		if got := c.Stats().Collectives; got != 7 {
			t.Fatalf("rank %d Collectives = %d, want 7", c.Rank(), got)
		}
		snap := c.ObsSnapshot()
		if snap.Collectives != 7 {
			t.Fatalf("snapshot Collectives = %d, want 7", snap.Collectives)
		}
		names := map[string]int{}
		for _, sp := range snap.Spans {
			if sp.Cat != "collective" {
				t.Fatalf("unexpected span category %q", sp.Cat)
			}
			names[sp.Name]++
			if sp.Dur < 0 {
				t.Fatalf("span %q left open", sp.Name)
			}
		}
		if names["barrier"] != 2 || names["bcast"] != 1 || names["allreduce"] != 2 ||
			names["gather"] != 1 || names["split"] != 1 {
			t.Fatalf("rank %d span names = %v", c.Rank(), names)
		}
	}
}

func TestObsSnapshotMergesStats(t *testing.T) {
	comms, err := RunLocalInspect(2, DefaultCostModel(), func(c *Comm) error {
		rec := c.EnableObs()
		rec.Add(obs.DPOps, 42)
		if c.Rank() == 0 {
			c.Send(1, 3, make([]byte, 64))
		} else {
			c.Recv(0, 3)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 receives the 64-byte payload plus the barrier's zero-byte
	// broadcast leg.
	s := comms[1].ObsSnapshot()
	if s.Rank != 1 || s.MsgsRecvd != 2 || s.BytesRecvd != 64 || s.Counter(obs.DPOps) != 42 {
		t.Fatalf("snapshot merge wrong: %+v", s)
	}
	if s.End <= 0 {
		t.Fatalf("snapshot End not taken from virtual clock: %v", s.End)
	}
	// Without a recorder the snapshot still carries Stats + clock.
	plain := comms[0]
	plain.AttachRecorder(nil)
	ps := plain.ObsSnapshot()
	if ps.Rank != 0 || ps.MsgsSent != 2 || ps.End <= 0 {
		t.Fatalf("metrics-only snapshot wrong: %+v", ps)
	}
}

func TestGatherObsSnapshots(t *testing.T) {
	var got []obs.Snapshot
	err := RunLocal(3, DefaultCostModel(), func(c *Comm) error {
		rec := c.EnableObs()
		rec.Add(obs.DPOps, int64(100*(c.Rank()+1)))
		rec.Begin("round 0", "round")
		rec.End()
		snaps := c.GatherObsSnapshots(0)
		if c.Rank() == 0 {
			got = snaps
		} else if snaps != nil {
			t.Errorf("rank %d got non-nil snapshots", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("gathered %d snapshots, want 3", len(got))
	}
	for r, s := range got {
		if s.Rank != r {
			t.Fatalf("snapshot %d has rank %d", r, s.Rank)
		}
		if s.Counter(obs.DPOps) != int64(100*(r+1)) {
			t.Fatalf("rank %d DPOps = %d", r, s.Counter(obs.DPOps))
		}
		if len(s.Spans) != 1 || s.Spans[0].Name != "round 0" {
			t.Fatalf("rank %d spans = %+v", r, s.Spans)
		}
	}
}

// flowPairing partitions a snapshot set's flow endpoints into send and
// receive id multisets.
func flowPairing(snaps []obs.Snapshot) (sends, recvs map[uint64]int) {
	sends, recvs = map[uint64]int{}, map[uint64]int{}
	for _, s := range snaps {
		for _, f := range s.Flows {
			if f.Recv {
				recvs[f.ID]++
			} else {
				sends[f.ID]++
			}
		}
	}
	return sends, recvs
}

// TestFlowEndpointsMatchAcrossRanks is the trace-stitching invariant:
// every delivered message's receive endpoint derives the same flow id
// as its send endpoint, with no id travelling on the wire.
func TestFlowEndpointsMatchAcrossRanks(t *testing.T) {
	comms, err := RunLocalInspect(4, DefaultCostModel(), func(c *Comm) error {
		c.EnableObs()
		// Point-to-point, collectives, and a split — all flow-tagged.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		c.Send(next, 9, make([]byte, 16))
		c.Recv(prev, 9)
		c.Barrier()
		c.AllreduceXor([]uint64{uint64(c.Rank())})
		sub := c.Split(c.Rank()%2, 0)
		sub.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sends, recvs := flowPairing(Snapshots(comms))
	if len(recvs) == 0 {
		t.Fatal("no receive flow endpoints recorded")
	}
	for id, n := range recvs {
		if sends[id] != n {
			t.Fatalf("flow id %#x: %d receives but %d sends", id, n, sends[id])
		}
	}
	// Every message was delivered (no buffering left behind), so the
	// multisets must match exactly, not just inject.
	for id, n := range sends {
		if recvs[id] != n {
			t.Fatalf("flow id %#x: %d sends but %d receives", id, n, recvs[id])
		}
	}
}

// TestFlowEndpointsMatchUnderChaos repeats the pairing invariant with
// drops, duplicates and reordering injected: retries happen below the
// Comm layer and the reassembler dedups, so per-stream ordinals — and
// with them the derived flow ids — still agree end to end.
func TestFlowEndpointsMatchUnderChaos(t *testing.T) {
	spec, err := ParseFaultSpec("drop=0.2,dup=0.2,reorder=0.3,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	comms, err := RunLocalFaultyInspect(3, DefaultCostModel(), spec, func(c *Comm) error {
		c.EnableObs()
		for i := 0; i < 20; i++ {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			c.Send(next, 1, []byte{byte(i)})
			c.Recv(prev, 1)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := Snapshots(comms)
	sends, recvs := flowPairing(snaps)
	for id, n := range recvs {
		if sends[id] != n {
			t.Fatalf("chaos broke flow pairing: id %#x has %d receives, %d sends", id, n, sends[id])
		}
	}
	if tot := obs.Totals(snaps...); tot.Counter(obs.FaultsInjected) == 0 {
		t.Fatal("chaos spec injected nothing; test is vacuous")
	}
}

// TestCommHistogramsRecorded checks the comm-level histogram families
// fill in during an instrumented run and carry the modeled costs.
func TestCommHistogramsRecorded(t *testing.T) {
	model := DefaultCostModel()
	comms, err := RunLocalInspect(2, model, func(c *Comm) error {
		c.EnableObs()
		if c.Rank() == 0 {
			c.Send(1, 3, make([]byte, 1000))
		} else {
			c.Recv(0, 3)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snaps := Snapshots(comms)
	tot := obs.Totals(snaps...)
	send := tot.Hist("send-latency")
	// Rank 0's payload send is the largest modeled cost in the run.
	wantMax := model.Alpha + model.Beta*1000
	if send.Count == 0 || send.Max != wantMax {
		t.Fatalf("send-latency = %+v, want max %g", send, wantMax)
	}
	if tot.Hist("barrier-wait").Count != 2 {
		t.Fatalf("barrier-wait count = %d, want one per rank", tot.Hist("barrier-wait").Count)
	}
	if tot.Hist("recv-wait").Count == 0 || tot.Hist("recv-wait").Max <= 0 {
		t.Fatalf("recv-wait = %+v, want positive waits", tot.Hist("recv-wait"))
	}
	// Phase label mirrors into the snapshot for /healthz.
	if err := RunLocal(1, CostModel{}, func(c *Comm) error {
		c.EnableObs()
		c.SetPhase("round 7")
		if s := c.ObsSnapshot(); s.Phase != "round 7" {
			t.Errorf("snapshot phase = %q, want %q", s.Phase, "round 7")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestObsDisabledSendRecvAllocatesNothing pins the tentpole's
// "allocation-light" requirement on the hottest path: with no recorder
// attached, Send/Recv must not allocate beyond the baseline (the
// payload itself is reused, and the channel transport hands the same
// slice back).
func TestObsDisabledSendRecvAllocatesNothing(t *testing.T) {
	world := NewLocalWorld(2, CostModel{})
	a, b := world[0], world[1]
	payload := make([]byte, 32)
	baseline := testing.AllocsPerRun(1000, func() {
		a.Send(1, 5, payload)
		payload = b.Recv(0, 5)
	})
	if baseline > 0 {
		t.Fatalf("obs-disabled Send/Recv allocates %v per run, want 0", baseline)
	}
	// Collectives with a recorder attached must not allocate per call
	// beyond the span record itself (amortized append) — sanity-check
	// the no-recorder path stays free too.
	noRec := testing.AllocsPerRun(100, func() {
		a.beginCollective("x")
		a.endCollective()
		b.beginCollective("x")
		b.endCollective()
	})
	if noRec > 0 {
		t.Fatalf("obs-disabled collective bookkeeping allocates %v per run, want 0", noRec)
	}
}
