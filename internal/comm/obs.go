package comm

// This file binds the observability layer (internal/obs) to the
// communicator. A Comm carries an optional *obs.Recorder; when nil
// (the default) every instrumentation call in the hot paths is a
// pointer-test no-op, so obs-disabled runs benchmark identically
// (asserted by TestObsDisabledSendRecvAllocatesNothing).

import "github.com/midas-hpc/midas/internal/obs"

// EnableObs attaches a fresh recorder to the communicator, using the
// rank's virtual clock as the span time base — so span timelines and
// the modeled makespan share an axis. It returns the recorder (also
// reachable via Recorder). Calling it again replaces the previous
// recorder. Children created by Split/rotated views share the
// recorder of the communicator they were derived from, so enable
// observability on the world communicator before splitting.
func (c *Comm) EnableObs() *obs.Recorder {
	c.rec = obs.NewRecorder(c.rank, c.clock.Now)
	c.propagateRecorder()
	return c.rec
}

// recorderSink is implemented by transports that record their own
// telemetry (fault injection and TCP retry counters).
type recorderSink interface {
	setRecorder(r *obs.Recorder)
}

// propagateRecorder hands the communicator's recorder to the transport
// when the transport keeps resilience counters of its own.
func (c *Comm) propagateRecorder() {
	if t, ok := c.transport.(recorderSink); ok {
		t.setRecorder(c.rec)
	}
}

// AttachRecorder installs an externally constructed recorder (nil
// detaches). Most callers want EnableObs; AttachRecorder exists for
// tests and for callers that need a custom time base.
func (c *Comm) AttachRecorder(r *obs.Recorder) {
	c.rec = r
	c.propagateRecorder()
}

// Recorder returns the attached recorder, or nil when observability is
// disabled. The nil recorder is safe to call (every obs.Recorder
// method no-ops on nil), so instrumented code can use the result
// unconditionally.
func (c *Comm) Recorder() *obs.Recorder { return c.rec }

// ResetTelemetry clears all per-rank measurement state between
// independent repetitions on a reused world: the virtual clock, the
// traffic Stats, and (if attached) the recorder — in that order, so
// the recorder re-anchors its time base at the freshly zeroed clock.
// Call it on every rank, typically right after a Barrier so no
// in-flight traffic from the previous repetition leaks into the next.
func (c *Comm) ResetTelemetry() {
	c.clock.Reset()
	c.stats.Reset()
	c.rec.Reset()
}

// ObsSnapshot freezes the rank's telemetry into one obs.Snapshot,
// merging the traffic Stats into the recorder's counters and spans
// (obs deliberately does not duplicate message/byte counting — see the
// obs package comment). With no recorder attached the snapshot still
// carries the Stats and the clock reading, so summary tables work for
// metrics-only runs.
func (c *Comm) ObsSnapshot() obs.Snapshot {
	s := c.rec.Snapshot()
	s.Rank = c.rank
	s.MsgsSent = c.stats.MsgsSent
	s.MsgsRecvd = c.stats.MsgsRecvd
	s.BytesSent = c.stats.BytesSent
	s.BytesRecvd = c.stats.BytesRecvd
	s.Collectives = c.stats.Collectives
	s.End = c.clock.Now()
	return s
}

// GatherObsSnapshots is a collective that assembles every rank's
// ObsSnapshot at root, indexed by rank; non-root ranks receive nil.
// It communicates (a GatherBytes of JSON-encoded snapshots), so each
// snapshot is taken before the gather's own traffic and the gather
// itself does not perturb the collected numbers.
func (c *Comm) GatherObsSnapshots(root int) []obs.Snapshot {
	snap := c.ObsSnapshot()
	payload, err := obs.EncodeSnapshot(snap)
	if err != nil {
		panic("comm: encode obs snapshot: " + err.Error())
	}
	parts := c.GatherBytes(root, payload)
	if parts == nil {
		return nil
	}
	out := make([]obs.Snapshot, len(parts))
	for r, b := range parts {
		s, err := obs.DecodeSnapshot(b)
		if err != nil {
			panic("comm: decode obs snapshot: " + err.Error())
		}
		out[r] = s
	}
	return out
}

// Snapshots takes ObsSnapshots of several communicators without
// communicating — the in-process path for local worlds, where the
// driver holds all rank handles (RunLocalInspect exposes them).
func Snapshots(comms []*Comm) []obs.Snapshot {
	out := make([]obs.Snapshot, len(comms))
	for i, c := range comms {
		out[i] = c.ObsSnapshot()
	}
	return out
}
