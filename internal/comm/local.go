package comm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrClosed is the cause carried by the panic of a Recv that can never
// complete: the rank's endpoint was shut down, either by its own Close
// or because a peer failure aborted the world (runWorld fails fast so
// stranded ranks surface as structured RankErrors instead of hanging).
var ErrClosed = errors.New("comm: endpoint closed")

// inbox is the shared mailbox used by both transports: per
// (source world rank, context) FIFO queues with blocking receive.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[inboxKey][]message
	closed bool
}

type inboxKey struct {
	src int
	ctx uint64
}

func newInbox() *inbox {
	ib := &inbox{queues: make(map[inboxKey][]message)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(src int, m message) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return // messages to a closed rank are dropped
	}
	k := inboxKey{src, m.ctx}
	ib.queues[k] = append(ib.queues[k], m)
	ib.cond.Broadcast()
}

func (ib *inbox) take(src int, ctx uint64) message {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	k := inboxKey{src, ctx}
	for len(ib.queues[k]) == 0 {
		if ib.closed {
			panic(fmt.Errorf("comm: recv from rank %d: %w", src, ErrClosed))
		}
		ib.cond.Wait()
	}
	q := ib.queues[k]
	m := q[0]
	// shift; reslicing would pin the backing array forever
	copy(q, q[1:])
	ib.queues[k] = q[:len(q)-1]
	return m
}

func (ib *inbox) shutdown() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// localTransport is the in-process world: a slice of inboxes, one per
// rank, shared by all endpoints.
type localTransport struct {
	inboxes []*inbox
}

// localEndpoint binds a localTransport to a specific world rank so that
// sends are correctly attributed to their sender.
type localEndpoint struct {
	world *localTransport
	me    int
}

func (e *localEndpoint) send(worldDst int, m message) {
	if worldDst < 0 || worldDst >= len(e.world.inboxes) {
		panic(fmt.Sprintf("comm: send to world rank %d of %d", worldDst, len(e.world.inboxes)))
	}
	e.world.inboxes[worldDst].put(e.me, m)
}

func (e *localEndpoint) recv(worldSrc int, ctx uint64) message {
	return e.world.inboxes[e.me].take(worldSrc, ctx)
}

func (e *localEndpoint) close(int) {
	e.world.inboxes[e.me].shutdown()
}

// aborter is implemented by transports that can tear down the whole
// world at once. runWorld invokes it when a rank fails, so peers
// blocked on the dead rank unwind with ErrClosed instead of hanging.
type aborter interface {
	abort()
}

func (e *localEndpoint) abort() {
	for _, ib := range e.world.inboxes {
		ib.shutdown()
	}
}

// NewLocalWorld creates an in-process world of n ranks sharing the given
// cost model and returns the n world communicators, index by rank. Each
// handle must be used by exactly one goroutine.
func NewLocalWorld(n int, model CostModel) []*Comm {
	if n <= 0 {
		panic("comm: world size must be positive")
	}
	world := &localTransport{inboxes: make([]*inbox, n)}
	for i := range world.inboxes {
		world.inboxes[i] = newInbox()
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	comms := make([]*Comm, n)
	for r := 0; r < n; r++ {
		comms[r] = &Comm{
			transport: &localEndpoint{world: world, me: r},
			ctx:       0,
			rank:      r,
			group:     group,
			clock:     &Clock{model: model},
			stats:     &Stats{},
			phase:     new(string),
		}
	}
	return comms
}

// RankError reports a panic or error raised inside one rank of an SPMD
// run, tagged with the algorithm phase the rank was in (Comm.SetPhase)
// when it failed.
type RankError struct {
	Rank  int
	Phase string // phase label at failure time; "" when never set
	Err   error
}

func (e *RankError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("rank %d (%s): %v", e.Rank, e.Phase, e.Err)
	}
	return fmt.Sprintf("rank %d: %v", e.Rank, e.Err)
}

// Unwrap exposes the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// WorldError aggregates every failing rank of an SPMD run. The Run*
// helpers return it instead of the first failure so operators see the
// full blast radius (a killed rank typically also strands the peers
// blocked on it). errors.As(err, **RankError) finds the first rank
// failure; Ranks holds all of them in rank order.
type WorldError struct {
	Ranks []*RankError
}

func (e *WorldError) Error() string {
	if len(e.Ranks) == 1 {
		return e.Ranks[0].Error()
	}
	msgs := make([]string, len(e.Ranks))
	for i, re := range e.Ranks {
		msgs[i] = re.Error()
	}
	return fmt.Sprintf("%d ranks failed: %s", len(e.Ranks), strings.Join(msgs, "; "))
}

// Unwrap exposes each rank failure to errors.Is/As (Go 1.20 multi-error
// form).
func (e *WorldError) Unwrap() []error {
	out := make([]error, len(e.Ranks))
	for i, re := range e.Ranks {
		out[i] = re
	}
	return out
}

// RunLocal executes fn as an SPMD program on a fresh local world of n
// ranks and waits for all of them. Per-rank panics are recovered and
// aggregated into a *WorldError of structured *RankErrors;
// communicators are closed on return. The returned comms' clocks/stats
// remain readable afterwards via the inspect callback style: use
// RunLocalInspect when the caller needs them.
func RunLocal(n int, model CostModel, fn func(c *Comm) error) error {
	_, err := RunLocalInspect(n, model, fn)
	return err
}

// RunLocalInspect is RunLocal but also returns the world communicators
// so callers can read per-rank clocks and statistics after the run.
func RunLocalInspect(n int, model CostModel, fn func(c *Comm) error) ([]*Comm, error) {
	comms := NewLocalWorld(n, model)
	return comms, runWorld(comms, fn)
}

// runWorld drives one goroutine per rank over an already-built world,
// recovers per-rank panics with their phase labels, closes the
// communicators, and aggregates failures into a *WorldError.
func runWorld(comms []*Comm, fn func(c *Comm) error) error {
	n := len(comms)
	errs := make([]error, n)
	phases := make([]string, n)
	// Fail fast: the first rank failure tears the world down so ranks
	// blocked on the dead peer unwind (as ErrClosed RankErrors) instead
	// of deadlocking the whole run.
	var abortOnce sync.Once
	abort := func() {
		abortOnce.Do(func() {
			for _, c := range comms {
				if a, ok := c.transport.(aborter); ok {
					a.abort()
				}
			}
		})
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				// Read the phase in the rank's own goroutine: the label
				// cell is single-writer per rank by the SPMD discipline.
				phases[rank] = comms[rank].Phase()
				if p := recover(); p != nil {
					if err, ok := p.(error); ok {
						errs[rank] = err
					} else {
						errs[rank] = fmt.Errorf("panic: %v", p)
					}
				}
				if errs[rank] != nil {
					abort()
				}
			}()
			errs[rank] = fn(comms[rank])
		}(r)
	}
	wg.Wait()
	for _, c := range comms {
		c.Close()
	}
	var failed []*RankError
	for r, err := range errs {
		if err != nil {
			failed = append(failed, &RankError{Rank: r, Phase: phases[r], Err: err})
		}
	}
	if failed != nil {
		return &WorldError{Ranks: failed}
	}
	return nil
}

// MaxClock returns the maximum virtual time over the given
// communicators — the modeled makespan of a completed run.
func MaxClock(comms []*Comm) float64 {
	max := 0.0
	for _, c := range comms {
		if t := c.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// TotalStats sums traffic counters over the given communicators.
func TotalStats(comms []*Comm) Stats {
	var s Stats
	for _, c := range comms {
		s.Add(*c.Stats())
	}
	return s
}
