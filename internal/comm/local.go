package comm

import (
	"fmt"
	"sync"
)

// inbox is the shared mailbox used by both transports: per
// (source world rank, context) FIFO queues with blocking receive.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[inboxKey][]message
	closed bool
}

type inboxKey struct {
	src int
	ctx uint64
}

func newInbox() *inbox {
	ib := &inbox{queues: make(map[inboxKey][]message)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(src int, m message) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return // messages to a closed rank are dropped
	}
	k := inboxKey{src, m.ctx}
	ib.queues[k] = append(ib.queues[k], m)
	ib.cond.Broadcast()
}

func (ib *inbox) take(src int, ctx uint64) message {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	k := inboxKey{src, ctx}
	for len(ib.queues[k]) == 0 {
		if ib.closed {
			panic(fmt.Sprintf("comm: recv from %d on closed endpoint", src))
		}
		ib.cond.Wait()
	}
	q := ib.queues[k]
	m := q[0]
	// shift; reslicing would pin the backing array forever
	copy(q, q[1:])
	ib.queues[k] = q[:len(q)-1]
	return m
}

func (ib *inbox) shutdown() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// localTransport is the in-process world: a slice of inboxes, one per
// rank, shared by all endpoints.
type localTransport struct {
	inboxes []*inbox
}

// localEndpoint binds a localTransport to a specific world rank so that
// sends are correctly attributed to their sender.
type localEndpoint struct {
	world *localTransport
	me    int
}

func (e *localEndpoint) send(worldDst int, m message) {
	if worldDst < 0 || worldDst >= len(e.world.inboxes) {
		panic(fmt.Sprintf("comm: send to world rank %d of %d", worldDst, len(e.world.inboxes)))
	}
	e.world.inboxes[worldDst].put(e.me, m)
}

func (e *localEndpoint) recv(worldSrc int, ctx uint64) message {
	return e.world.inboxes[e.me].take(worldSrc, ctx)
}

func (e *localEndpoint) close(int) {
	e.world.inboxes[e.me].shutdown()
}

// NewLocalWorld creates an in-process world of n ranks sharing the given
// cost model and returns the n world communicators, index by rank. Each
// handle must be used by exactly one goroutine.
func NewLocalWorld(n int, model CostModel) []*Comm {
	if n <= 0 {
		panic("comm: world size must be positive")
	}
	world := &localTransport{inboxes: make([]*inbox, n)}
	for i := range world.inboxes {
		world.inboxes[i] = newInbox()
	}
	group := make([]int, n)
	for i := range group {
		group[i] = i
	}
	comms := make([]*Comm, n)
	for r := 0; r < n; r++ {
		comms[r] = &Comm{
			transport: &localEndpoint{world: world, me: r},
			ctx:       0,
			rank:      r,
			group:     group,
			clock:     &Clock{model: model},
			stats:     &Stats{},
		}
	}
	return comms
}

// RankError reports a panic or error raised inside one rank of an SPMD
// run.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// Unwrap exposes the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// RunLocal executes fn as an SPMD program on a fresh local world of n
// ranks and waits for all of them. Per-rank panics are recovered and
// returned (first failing rank wins); communicators are closed on
// return. The returned comms' clocks/stats remain readable afterwards
// via the inspect callback style: use RunLocalInspect when the caller
// needs them.
func RunLocal(n int, model CostModel, fn func(c *Comm) error) error {
	_, err := RunLocalInspect(n, model, fn)
	return err
}

// RunLocalInspect is RunLocal but also returns the world communicators
// so callers can read per-rank clocks and statistics after the run.
func RunLocalInspect(n int, model CostModel, fn func(c *Comm) error) ([]*Comm, error) {
	comms := NewLocalWorld(n, model)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("panic: %v", p)
				}
			}()
			errs[rank] = fn(comms[rank])
		}(r)
	}
	wg.Wait()
	for _, c := range comms {
		c.Close()
	}
	for r, err := range errs {
		if err != nil {
			return comms, &RankError{Rank: r, Err: err}
		}
	}
	return comms, nil
}

// MaxClock returns the maximum virtual time over the given
// communicators — the modeled makespan of a completed run.
func MaxClock(comms []*Comm) float64 {
	max := 0.0
	for _, c := range comms {
		if t := c.Clock().Now(); t > max {
			max = t
		}
	}
	return max
}

// TotalStats sums traffic counters over the given communicators.
func TotalStats(comms []*Comm) Stats {
	var s Stats
	for _, c := range comms {
		s.Add(*c.Stats())
	}
	return s
}
