package comm

import (
	"math"
	"sync/atomic"
)

// Clock is a per-rank virtual clock implementing the α–β communication
// cost model (DESIGN.md §3): receiving a message advances the receiver
// to max(own time, sender's send time + Alpha + Beta·bytes), and local
// compute advances via Advance. With every rank of a world sharing one
// CostModel, the maximum clock across ranks after a run is the modeled
// parallel makespan. When the zero CostModel is used, the clock degrades
// to a pure busy-time counter (Alpha = Beta = 0: messages are free and
// only Advance moves time).
//
// The clock is single-writer (the rank's goroutine) but multi-reader:
// the live telemetry endpoint snapshots Recorders — whose time base is
// this clock — from HTTP handler goroutines, so the current time is
// stored as atomic float64 bits. Mutating methods must only be called
// from the owning rank's goroutine.
type Clock struct {
	bits  atomic.Uint64 // float64 bits of the current time in seconds
	model CostModel
}

func (c *Clock) set(t float64) { c.bits.Store(math.Float64bits(t)) }

// CostModel holds the α–β parameters: Alpha is the per-message latency
// in seconds, Beta the per-byte transfer time in seconds. The defaults
// in DefaultCostModel approximate the paper's 56 Gbps InfiniBand
// cluster (≈1.5 µs latency, ≈5 GB/s effective per-link bandwidth).
type CostModel struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
}

// DefaultCostModel returns parameters approximating the paper's
// interconnect.
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 1.5e-6, Beta: 1.0 / 5e9}
}

// Now returns the rank's current virtual time in seconds. Safe to call
// from any goroutine.
func (c *Clock) Now() float64 { return math.Float64frombits(c.bits.Load()) }

// Advance adds dt seconds of local compute.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic("comm: negative clock advance")
	}
	c.set(c.Now() + dt)
}

// Reset zeroes the clock (between independent experiment repetitions).
func (c *Clock) Reset() { c.set(0) }

// observe applies the receive rule for a message stamped with sendTime
// carrying n payload bytes.
func (c *Clock) observe(sendTime float64, n int) {
	arrival := sendTime + c.model.Alpha + c.model.Beta*float64(n)
	if arrival > c.Now() {
		c.set(arrival)
	}
}

// Stats counts a rank's traffic; the experiment harness aggregates these
// to report the message/byte volumes that Theorem 2 bounds. Counters are
// exact measured quantities (unlike the modeled Clock); the observability
// layer (internal/obs) merges them into its per-rank Snapshot rather
// than keeping duplicates. Reset (or Comm.ResetTelemetry, which also
// resets the clock and recorder) must be called between independent
// repetitions on a reused world, or counters accumulate across runs.
type Stats struct {
	MsgsSent   int64
	MsgsRecvd  int64
	BytesSent  int64
	BytesRecvd int64
	// Collectives counts collective operations entered: Barrier, Bcast,
	// the Allreduce family, GatherBytes, Allgather/Scatter/Alltoall, and
	// Split. Collectives built on other collectives count each layer (a
	// Split includes its internal Allreduce), mirroring the span nesting
	// the recorder captures.
	Collectives int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MsgsSent += other.MsgsSent
	s.MsgsRecvd += other.MsgsRecvd
	s.BytesSent += other.BytesSent
	s.BytesRecvd += other.BytesRecvd
	s.Collectives += other.Collectives
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }
