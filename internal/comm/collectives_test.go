package comm

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSendrecvRing(t *testing.T) {
	err := RunLocal(5, CostModel{}, func(c *Comm) error {
		next := (c.Rank() + 1) % 5
		prev := (c.Rank() + 4) % 5
		got := c.Sendrecv(next, []byte{byte(c.Rank())}, prev, 3)
		if got[0] != byte(prev) {
			return fmt.Errorf("got %d from %d", got[0], prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherBytes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		n := n
		err := RunLocal(n, CostModel{}, func(c *Comm) error {
			// variable-length payloads to exercise the length framing
			payload := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
			got := c.AllgatherBytes(payload)
			if len(got) != n {
				return fmt.Errorf("got %d entries", len(got))
			}
			for r := 0; r < n; r++ {
				want := bytes.Repeat([]byte{byte(r)}, r+1)
				if !bytes.Equal(got[r], want) {
					return fmt.Errorf("entry %d = %v want %v", r, got[r], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestScatterBytes(t *testing.T) {
	err := RunLocal(4, CostModel{}, func(c *Comm) error {
		var chunks [][]byte
		if c.Rank() == 1 {
			chunks = [][]byte{{10}, {11}, {12}, {13}}
		}
		got := c.ScatterBytes(1, chunks)
		if len(got) != 1 || got[0] != byte(10+c.Rank()) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidatesChunkCount(t *testing.T) {
	err := RunLocal(2, CostModel{}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.ScatterBytes(0, [][]byte{{1}}) // wrong count → panic
		}
		// rank 1 returns immediately: the root panics during
		// validation, before any message leaves.
		return nil
	})
	if err == nil {
		t.Fatal("bad scatter accepted")
	}
}

func TestAlltoallBytes(t *testing.T) {
	const n = 4
	err := RunLocal(n, CostModel{}, func(c *Comm) error {
		send := make([][]byte, n)
		for r := 0; r < n; r++ {
			send[r] = []byte{byte(c.Rank()*10 + r)}
		}
		got := c.AlltoallBytes(send)
		for r := 0; r < n; r++ {
			want := byte(r*10 + c.Rank())
			if len(got[r]) != 1 || got[r][0] != want {
				return fmt.Errorf("from %d got %v want %d", r, got[r], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallOnSplitComm(t *testing.T) {
	err := RunLocal(6, CostModel{}, func(c *Comm) error {
		child := c.Split(c.Rank()%2, c.Rank())
		n := child.Size()
		send := make([][]byte, n)
		for r := 0; r < n; r++ {
			send[r] = []byte{byte(child.Rank())}
		}
		got := child.AlltoallBytes(send)
		for r := 0; r < n; r++ {
			if got[r][0] != byte(r) {
				return fmt.Errorf("child alltoall wrong")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
