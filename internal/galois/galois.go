// Package galois contains explicit, dense reference implementations of
// the two algebras behind multilinear detection (paper Section III).
// They are exponential in k and exist to *prove the evaluation strategy
// correct*: internal/mld's O(k)-space iteration loops are property-tested
// against these oracles for small k.
//
// Two algebras appear:
//
//   - OrPoly — the quotient ring GF(2^16)[χ1..χk]/(χj²-χj): a polynomial
//     is a vector of 2^k coefficients indexed by support mask, and
//     multiplication is OR-convolution. This models Williams' GF-variant
//     evaluation: assigning xi = Σj u[i][j]·χj and detecting whether the
//     full-support coefficient is nonzero is exactly k-MLD, and the sum
//     of the polynomial's evaluations over all χ ∈ {0,1}^k equals that
//     coefficient (TraceOr), which is why MIDAS's 2^k iterations work.
//
//   - GroupAlg — the integral group algebra Z[Z2^k] with coefficients
//     reduced mod 2^(k+1): a vector of 2^k coefficients indexed by group
//     element, multiplication is XOR-convolution. This models Koutis'
//     original algorithm: xi = v0 + vi, squares vanish identically, and
//     the trace (2^k times the identity coefficient) equals the sum of
//     the 2^k character evaluations xi ↦ 1 + (-1)^(vi·t) (TraceXor).
package galois

import (
	"fmt"
	"math/bits"

	"github.com/midas-hpc/midas/internal/gf"
)

// OrPoly is an element of GF(2^16)[χ1..χk]/(χj²-χj), stored as 2^k
// coefficients indexed by support mask.
type OrPoly struct {
	K     int
	Coeff []gf.Elem // len 2^K
}

// NewOrPoly returns the zero polynomial for k variables.
func NewOrPoly(k int) *OrPoly {
	if k < 0 || k > 20 {
		panic(fmt.Sprintf("galois: OrPoly k=%d out of supported range [0,20]", k))
	}
	return &OrPoly{K: k, Coeff: make([]gf.Elem, 1<<k)}
}

// OrVariable returns the linear form Σj u[j]·χj (the image of a vertex
// variable under Williams' substitution). len(u) must be k.
func OrVariable(k int, u []gf.Elem) *OrPoly {
	if len(u) != k {
		panic("galois: OrVariable needs k scalars")
	}
	p := NewOrPoly(k)
	for j := 0; j < k; j++ {
		p.Coeff[1<<j] = u[j]
	}
	return p
}

// OrScalar returns the constant polynomial c.
func OrScalar(k int, c gf.Elem) *OrPoly {
	p := NewOrPoly(k)
	p.Coeff[0] = c
	return p
}

// Add returns p + q (coefficient-wise XOR).
func (p *OrPoly) Add(q *OrPoly) *OrPoly {
	p.checkCompat(q)
	r := NewOrPoly(p.K)
	for i := range r.Coeff {
		r.Coeff[i] = p.Coeff[i] ^ q.Coeff[i]
	}
	return r
}

// Mul returns p·q by OR-convolution (χS·χT = χ(S∪T)). O(4^k).
func (p *OrPoly) Mul(q *OrPoly) *OrPoly {
	p.checkCompat(q)
	r := NewOrPoly(p.K)
	for s, a := range p.Coeff {
		if a == 0 {
			continue
		}
		for t, b := range q.Coeff {
			if b == 0 {
				continue
			}
			r.Coeff[s|t] ^= gf.Mul(a, b)
		}
	}
	return r
}

// MulScalar returns c·p.
func (p *OrPoly) MulScalar(c gf.Elem) *OrPoly {
	r := NewOrPoly(p.K)
	for i, a := range p.Coeff {
		r.Coeff[i] = gf.Mul(c, a)
	}
	return r
}

// FullCoeff returns the coefficient of χ1·χ2·…·χk — nonzero iff the
// represented k-MLD instance detects (for this random assignment).
func (p *OrPoly) FullCoeff() gf.Elem {
	return p.Coeff[len(p.Coeff)-1]
}

// Eval evaluates p at the boolean point given by mask t (χj = 1 iff bit
// j of t is set): Σ_{S ⊆ t} coeff[S].
func (p *OrPoly) Eval(t uint64) gf.Elem {
	var sum gf.Elem
	for s, a := range p.Coeff {
		if uint64(s)&^t == 0 {
			sum ^= a
		}
	}
	return sum
}

// TraceOr sums Eval over all 2^k boolean points. By the char-2
// inclusion–exclusion identity this equals FullCoeff — the fact that
// licenses MIDAS's iteration loop. Exposed so the tests can assert it.
func (p *OrPoly) TraceOr() gf.Elem {
	var sum gf.Elem
	for t := uint64(0); t < uint64(len(p.Coeff)); t++ {
		sum ^= p.Eval(t)
	}
	return sum
}

// IsZero reports whether all coefficients vanish.
func (p *OrPoly) IsZero() bool {
	for _, a := range p.Coeff {
		if a != 0 {
			return false
		}
	}
	return true
}

func (p *OrPoly) checkCompat(q *OrPoly) {
	if p.K != q.K {
		panic(fmt.Sprintf("galois: mixing OrPoly k=%d and k=%d", p.K, q.K))
	}
}

// GroupAlg is an element of Z[Z2^k] with coefficients mod 2^(k+1),
// stored as 2^k coefficients indexed by group element.
type GroupAlg struct {
	K     int
	Mod   uint64
	Coeff []uint64 // len 2^K, each < Mod
}

// NewGroupAlg returns the zero element for Z2^k.
func NewGroupAlg(k int) *GroupAlg {
	if k < 0 || k > 20 {
		panic(fmt.Sprintf("galois: GroupAlg k=%d out of supported range [0,20]", k))
	}
	return &GroupAlg{K: k, Mod: 1 << uint(k+1), Coeff: make([]uint64, 1<<k)}
}

// GroupVariable returns v0 + v (Koutis' substitution for a vertex whose
// random vector is v).
func GroupVariable(k int, v uint64) *GroupAlg {
	g := NewGroupAlg(k)
	g.Coeff[0] = (g.Coeff[0] + 1) % g.Mod
	g.Coeff[v&((1<<uint(k))-1)] = (g.Coeff[v&((1<<uint(k))-1)] + 1) % g.Mod
	return g
}

// GroupScalar returns c·v0.
func GroupScalar(k int, c uint64) *GroupAlg {
	g := NewGroupAlg(k)
	g.Coeff[0] = c % g.Mod
	return g
}

// Add returns g + h.
func (g *GroupAlg) Add(h *GroupAlg) *GroupAlg {
	g.checkCompat(h)
	r := NewGroupAlg(g.K)
	for i := range r.Coeff {
		r.Coeff[i] = (g.Coeff[i] + h.Coeff[i]) % g.Mod
	}
	return r
}

// Mul returns g·h by XOR-convolution (the Z2^k group law). O(4^k).
func (g *GroupAlg) Mul(h *GroupAlg) *GroupAlg {
	g.checkCompat(h)
	r := NewGroupAlg(g.K)
	for s, a := range g.Coeff {
		if a == 0 {
			continue
		}
		for t, b := range h.Coeff {
			if b == 0 {
				continue
			}
			r.Coeff[s^t] = (r.Coeff[s^t] + a*b) % g.Mod
		}
	}
	return r
}

// MulScalar returns c·g.
func (g *GroupAlg) MulScalar(c uint64) *GroupAlg {
	r := NewGroupAlg(g.K)
	for i, a := range g.Coeff {
		r.Coeff[i] = (a * (c % g.Mod)) % g.Mod
	}
	return r
}

// CharEval evaluates g under the character indexed by t:
// Σ_v coeff[v]·(-1)^(v·t), reduced mod 2^(k+1) into [0, Mod).
func (g *GroupAlg) CharEval(t uint64) uint64 {
	var sum uint64
	for v, a := range g.Coeff {
		if bits.OnesCount64(uint64(v)&t)&1 == 0 {
			sum = (sum + a) % g.Mod
		} else {
			sum = (sum + g.Mod - a) % g.Mod
		}
	}
	return sum
}

// TraceXor sums CharEval over all 2^k characters; it equals
// 2^k · coeff[identity] mod 2^(k+1) — the trace of the matrix
// representation from paper Section III-C. Exposed for the tests.
func (g *GroupAlg) TraceXor() uint64 {
	var sum uint64
	for t := uint64(0); t < uint64(len(g.Coeff)); t++ {
		sum = (sum + g.CharEval(t)) % g.Mod
	}
	return sum
}

// IdentityCoeff returns the coefficient of the group identity v0.
func (g *GroupAlg) IdentityCoeff() uint64 { return g.Coeff[0] }

// IsZero reports whether all coefficients vanish.
func (g *GroupAlg) IsZero() bool {
	for _, a := range g.Coeff {
		if a != 0 {
			return false
		}
	}
	return true
}

func (g *GroupAlg) checkCompat(h *GroupAlg) {
	if g.K != h.K {
		panic(fmt.Sprintf("galois: mixing GroupAlg k=%d and k=%d", g.K, h.K))
	}
}
