package galois

import (
	"testing"
	"testing/quick"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/rng"
)

func randOrPoly(r *rng.Rand, k int) *OrPoly {
	p := NewOrPoly(k)
	for i := range p.Coeff {
		p.Coeff[i] = gf.Elem(r.Uint32())
	}
	return p
}

func randGroupAlg(r *rng.Rand, k int) *GroupAlg {
	g := NewGroupAlg(k)
	for i := range g.Coeff {
		g.Coeff[i] = r.Uint64() % g.Mod
	}
	return g
}

// --- OrPoly ring axioms ---

func TestOrPolyRingAxioms(t *testing.T) {
	r := rng.New(1)
	const k = 4
	for i := 0; i < 20; i++ {
		a, b, c := randOrPoly(r, k), randOrPoly(r, k), randOrPoly(r, k)
		ab := a.Mul(b)
		ba := b.Mul(a)
		for j := range ab.Coeff {
			if ab.Coeff[j] != ba.Coeff[j] {
				t.Fatal("OrPoly multiplication not commutative")
			}
		}
		lhs := a.Mul(b.Mul(c))
		rhs := a.Mul(b).Mul(c)
		for j := range lhs.Coeff {
			if lhs.Coeff[j] != rhs.Coeff[j] {
				t.Fatal("OrPoly multiplication not associative")
			}
		}
		d1 := a.Mul(b.Add(c))
		d2 := a.Mul(b).Add(a.Mul(c))
		for j := range d1.Coeff {
			if d1.Coeff[j] != d2.Coeff[j] {
				t.Fatal("OrPoly distributivity fails")
			}
		}
	}
}

func TestOrPolyIdempotentVariables(t *testing.T) {
	// χj² = χj: squaring the monomial χj must give χj back.
	const k = 3
	p := NewOrPoly(k)
	p.Coeff[0b010] = 1
	sq := p.Mul(p)
	if sq.Coeff[0b010] != 1 {
		t.Fatalf("χ² != χ: %v", sq.Coeff)
	}
}

// TestOrTraceEqualsFullCoeff is the linchpin: the 2^k-point evaluation
// sum equals the full-support coefficient for arbitrary polynomials.
func TestOrTraceEqualsFullCoeff(t *testing.T) {
	r := rng.New(2)
	for _, k := range []int{1, 2, 3, 5, 7} {
		for i := 0; i < 10; i++ {
			p := randOrPoly(r, k)
			if p.TraceOr() != p.FullCoeff() {
				t.Fatalf("k=%d: trace %#x != full coefficient %#x", k, p.TraceOr(), p.FullCoeff())
			}
		}
	}
}

// TestOrSquaredMonomialHasZeroFullCoeff verifies Williams' soundness
// argument concretely: a product of k linear forms with a *repeated*
// form has zero full-support coefficient (permanent with repeated rows
// over char 2), while generically a product of k distinct random forms
// does not.
func TestOrSquaredMonomialHasZeroFullCoeff(t *testing.T) {
	r := rng.New(3)
	const k = 4
	for trial := 0; trial < 20; trial++ {
		us := make([][]gf.Elem, k)
		for i := range us {
			us[i] = make([]gf.Elem, k)
			for j := range us[i] {
				us[i][j] = gf.Elem(r.Uint32())
			}
		}
		// squared: x0²·x2·x3 (k=4 factors with x0 repeated)
		sq := OrVariable(k, us[0]).Mul(OrVariable(k, us[0])).
			Mul(OrVariable(k, us[2])).Mul(OrVariable(k, us[3]))
		if sq.FullCoeff() != 0 {
			t.Fatalf("squared monomial has full coefficient %#x, want 0", sq.FullCoeff())
		}
	}
	// multilinear: nonzero in at least most trials
	nonzero := 0
	for trial := 0; trial < 20; trial++ {
		m := OrScalar(4, 1)
		for i := 0; i < 4; i++ {
			u := make([]gf.Elem, 4)
			for j := range u {
				u[j] = gf.Elem(r.Uint32())
			}
			m = m.Mul(OrVariable(4, u))
		}
		if m.FullCoeff() != 0 {
			nonzero++
		}
	}
	if nonzero < 18 {
		t.Fatalf("multilinear monomial detected in only %d/20 trials", nonzero)
	}
}

func TestOrEvalMatchesDefinition(t *testing.T) {
	// Eval at the full mask is the sum of everything; at 0 it is the
	// constant term.
	p := NewOrPoly(2)
	p.Coeff[0b00] = 3
	p.Coeff[0b01] = 5
	p.Coeff[0b10] = 9
	p.Coeff[0b11] = 1
	if p.Eval(0) != 3 {
		t.Fatalf("Eval(0) = %#x", p.Eval(0))
	}
	if p.Eval(0b01) != 3^5 {
		t.Fatalf("Eval(01) = %#x", p.Eval(0b01))
	}
	if p.Eval(0b11) != 3^5^9^1 {
		t.Fatalf("Eval(11) = %#x", p.Eval(0b11))
	}
}

func TestOrPolyMismatchedKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-k multiply did not panic")
		}
	}()
	NewOrPoly(2).Mul(NewOrPoly(3))
}

// --- GroupAlg axioms ---

func TestGroupAlgRingAxioms(t *testing.T) {
	r := rng.New(4)
	const k = 4
	for i := 0; i < 20; i++ {
		a, b, c := randGroupAlg(r, k), randGroupAlg(r, k), randGroupAlg(r, k)
		ab, ba := a.Mul(b), b.Mul(a)
		for j := range ab.Coeff {
			if ab.Coeff[j] != ba.Coeff[j] {
				t.Fatal("GroupAlg multiplication not commutative")
			}
		}
		lhs, rhs := a.Mul(b.Mul(c)), a.Mul(b).Mul(c)
		for j := range lhs.Coeff {
			if lhs.Coeff[j] != rhs.Coeff[j] {
				t.Fatal("GroupAlg multiplication not associative")
			}
		}
	}
}

// TestGroupVariableSquareVanishes is the paper's boxed identity:
// (v0+vi)² = 2·v0 + 2·vi ≡ ... the coefficients stay even, and after
// multiplying k factors with any repeat the identity coefficient is
// ≡ 0 mod 2 — here we check the exact Koutis statement: the square has
// every coefficient even, so products containing it contribute 0 to the
// mod-2^(k+1) trace after the 2^k multiplier.
func TestGroupVariableSquareVanishes(t *testing.T) {
	const k = 3
	v := GroupVariable(k, 0b101)
	sq := v.Mul(v)
	// (v0+v)² = v0² + 2 v0·v + v² = 2·v0 + 2·v
	if sq.Coeff[0] != 2 || sq.Coeff[0b101] != 2 {
		t.Fatalf("square = %v", sq.Coeff)
	}
	for i, c := range sq.Coeff {
		if c%2 != 0 {
			t.Fatalf("square has odd coefficient at %d", i)
		}
	}
}

// TestGroupTraceIdentity checks trace == 2^k · identity coefficient.
func TestGroupTraceIdentity(t *testing.T) {
	r := rng.New(5)
	for _, k := range []int{1, 2, 3, 5} {
		for i := 0; i < 10; i++ {
			g := randGroupAlg(r, k)
			want := (g.IdentityCoeff() << uint(k)) % g.Mod
			if got := g.TraceXor(); got != want {
				t.Fatalf("k=%d: trace %d != 2^k·id %d", k, got, want)
			}
		}
	}
}

// TestGroupMultilinearDetection: a product of k independent (v0+vi)
// factors has odd identity coefficient (so nonzero trace); with a
// repeated factor the trace vanishes.
func TestGroupMultilinearDetection(t *testing.T) {
	const k = 3
	// independent vectors e1,e2,e3
	m := GroupScalar(k, 1)
	for j := 0; j < k; j++ {
		m = m.Mul(GroupVariable(k, 1<<uint(j)))
	}
	if m.TraceXor() == 0 {
		t.Fatal("independent multilinear product has zero trace")
	}
	// repeated factor
	sq := GroupVariable(k, 0b001).Mul(GroupVariable(k, 0b001)).Mul(GroupVariable(k, 0b010))
	if sq.TraceXor() != 0 {
		t.Fatalf("squared product has trace %d, want 0", sq.TraceXor())
	}
	// dependent vectors: v1^v2^v3 = 0 → even identity coeff → zero trace
	dep := GroupVariable(k, 0b011).Mul(GroupVariable(k, 0b101)).Mul(GroupVariable(k, 0b110))
	if dep.TraceXor() != 0 {
		t.Fatalf("dependent multilinear product has trace %d, want 0", dep.TraceXor())
	}
}

func TestGroupCharEvalIsHomomorphism(t *testing.T) {
	// φ_t(g·h) = φ_t(g)·φ_t(h) mod 2^(k+1)
	r := rng.New(6)
	const k = 4
	f := func(tRaw uint8) bool {
		tt := uint64(tRaw) & ((1 << k) - 1)
		g, h := randGroupAlg(r, k), randGroupAlg(r, k)
		lhs := g.Mul(h).CharEval(tt)
		rhs := (g.CharEval(tt) * h.CharEval(tt)) % g.Mod
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupVariableCharEvalFormula(t *testing.T) {
	// φ_t(v0+vi) = 1 + (-1)^(vi·t): 2 when vi·t even, 0 when odd —
	// the exact base-case value in Algorithm 1 line 9.
	const k = 4
	for v := uint64(0); v < 1<<k; v++ {
		g := GroupVariable(k, v)
		for tt := uint64(0); tt < 1<<k; tt++ {
			got := g.CharEval(tt)
			want := uint64(2)
			if popcount(v&tt)%2 == 1 {
				want = 0
			}
			if got != want {
				t.Fatalf("φ_%d(v0+%d) = %d, want %d", tt, v, got, want)
			}
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestNewPanicsOnAbsurdK(t *testing.T) {
	for _, f := range []func(){
		func() { NewOrPoly(-1) }, func() { NewOrPoly(21) },
		func() { NewGroupAlg(-1) }, func() { NewGroupAlg(25) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad k accepted")
				}
			}()
			f()
		}()
	}
}
