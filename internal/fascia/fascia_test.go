package fascia

import (
	"math"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

func TestBinom(t *testing.T) {
	cases := map[[2]int]int{
		{5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 3}: 120, {18, 9}: 48620,
		{4, 5}: 0, {4, -1}: 0,
	}
	for in, want := range cases {
		if got := binom(in[0], in[1]); got != want {
			t.Fatalf("binom(%d,%d) = %d want %d", in[0], in[1], got, want)
		}
	}
}

func TestRankTableBijective(t *testing.T) {
	rt := newRankTable(6)
	for s := 0; s <= 6; s++ {
		ms := rt.masksOfSize(s)
		if len(ms) != binom(6, s) {
			t.Fatalf("size %d has %d masks, want %d", s, len(ms), binom(6, s))
		}
		for r, m := range ms {
			if rt.rank(m) != r {
				t.Fatalf("rank(mask %b) = %d, want %d", m, rt.rank(m), r)
			}
		}
	}
}

func TestCountPathsMatchesExactOnSmallGraphs(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomGNM(12, 25, r.Uint64())
		for _, k := range []int{2, 3, 4} {
			exact := float64(graph.CountPathsOfLength(g, k))
			got, err := CountPaths(g, k, Options{Seed: r.Uint64(), Iterations: 3000})
			if err != nil {
				t.Fatal(err)
			}
			if exact == 0 {
				if got != 0 {
					t.Fatalf("k=%d: estimated %v on path-free graph", k, got)
				}
				continue
			}
			if math.Abs(got-exact)/exact > 0.25 {
				t.Fatalf("trial %d k=%d: estimate %.1f vs exact %.0f (>25%% off)", trial, k, got, exact)
			}
		}
	}
}

func TestCountKnownValues(t *testing.T) {
	// Exact colorful probability correction: star template in a star
	// graph. Star(5): star-4 template (center + 3 leaves) has
	// C(4,3)·3! = 24 injective homs mapping center→center.
	g := graph.Star(5)
	got, err := Count(g, graph.StarTemplate(4), Options{Seed: 2, Iterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-24)/24 > 0.25 {
		t.Fatalf("star-4 homs in Star(5): %.1f want ~24", got)
	}
	// triangle-free: path-3 count on a single edge is 0
	got, err = CountPaths(graph.Path(2), 3, Options{Seed: 3, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("P3 count on K2 = %v", got)
	}
}

func TestDetectAgreesWithBruteForce(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomGNM(10, 18, r.Uint64())
		k := 2 + r.Intn(3)
		tpl := graph.RandomTemplate(k, r.Uint64())
		want := graph.HasTreeEmbedding(g, tpl)
		got, err := Detect(g, tpl, Options{Seed: r.Uint64(), Iterations: 400})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d k=%d: detect %v brute %v", trial, k, got, want)
		}
	}
}

func TestDetectOneSided(t *testing.T) {
	g := graph.Star(8)
	for seed := uint64(0); seed < 10; seed++ {
		got, err := Detect(g, graph.PathTemplate(4), Options{Seed: seed, Iterations: 50})
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("seed %d: colorful 4-path found in a star", seed)
		}
	}
}

func TestWorkersAgree(t *testing.T) {
	g := graph.RandomGNM(30, 80, 4)
	tpl := graph.BinaryTreeTemplate(5)
	a, err := Count(g, tpl, Options{Seed: 7, Iterations: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(g, tpl, Options{Seed: 7, Iterations: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("worker counts diverge: %v vs %v", a, b)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := Count(g, graph.PathTemplate(21), Options{}); err == nil {
		t.Fatal("k=21 accepted")
	}
	if c, err := Count(g, graph.PathTemplate(6), Options{Iterations: 5}); err != nil || c != 0 {
		t.Fatalf("k>n should count 0: %v %v", c, err)
	}
}

func TestIterationsForApprox(t *testing.T) {
	if it := IterationsForApprox(5, 0.1); it < 300 || it > 400 {
		t.Fatalf("e^5·ln10 ≈ 342, got %d", it)
	}
	if IterationsForApprox(3, -1) <= 0 {
		t.Fatal("bad eps fallback broken")
	}
	if IterationsForApprox(30, 0.1) != 1e9 {
		t.Fatal("cap missing")
	}
}

func TestMemoryBytesGrowth(t *testing.T) {
	// The footprint at fixed n must blow up ~2^k: that is FASCIA's wall.
	m10 := MemoryBytes(1000, 10)
	m12 := MemoryBytes(1000, 12)
	if ratio := float64(m12) / float64(m10); ratio < 3 || ratio > 5 {
		t.Fatalf("memory ratio k=12/k=10 = %.1f, want ~4 (2^Δk)", ratio)
	}
	// concrete: n=1e6, k=12 ⇒ ~2^12·8e6 = 32 GB-ish territory
	if MemoryBytes(1_000_000, 12) < 30<<30 {
		t.Fatalf("k=12 at n=1e6 should exceed 30 GiB, got %d", MemoryBytes(1_000_000, 12))
	}
}

func BenchmarkFasciaIterationK7(b *testing.B) {
	g := graph.RandomNLogN(300, 1)
	tpl := graph.PathTemplate(7)
	e := newEngine(g, tpl, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.runColoring(uint64(i))
	}
}
