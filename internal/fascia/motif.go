package fascia

// Refined-label color coding for generalized graph motifs — the
// baseline MIDAS's constrained multilinear detection is compared
// against. Instead of k uniform colors, every vertex draws a random
// *slot* from the slots its own label is allowed to occupy (the
// refined labeling of FASCIA's motif mode): listed label c owns a
// block of m_c slots, the remaining k − Σ m_c slots are wildcards open
// to everyone. A boolean colorset DP over connected subgraphs then
// looks for a subgraph whose slot set is all of [k]; distinct slots
// give a system of distinct representatives, so by Hall's theorem a
// hit always satisfies the constraint (one-sided error, like Detect).
//
// Per coloring the DP costs O(3^k·m) time and n·2^k table bytes — the
// same exponential table wall as Count, which is what the
// motif-vs-MIDAS benchmark crossover measures.

import (
	"fmt"
	"sort"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// DetectMotif reports whether g contains a connected k-vertex subgraph
// whose vertex labels satisfy counts: each listed label must appear at
// least counts[c] times (exactly, when the counts sum to k). A "yes"
// is always correct; a satisfying motif is missed with probability at
// most (1 − k^-k)^iterations.
func DetectMotif(g *graph.Graph, k int, counts map[int32]int, opt Options) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("fascia: motif size %d", k)
	}
	if k > 20 {
		return false, fmt.Errorf("fascia: k=%d beyond color-coding practicality (tables are n·2^%d)", k, k)
	}
	total := 0
	for c, m := range counts {
		if m <= 0 {
			return false, fmt.Errorf("fascia: motif label %d has non-positive count %d", c, m)
		}
		total += m
	}
	if total > k {
		return false, fmt.Errorf("fascia: motif counts sum to %d > k=%d", total, k)
	}
	n := g.NumVertices()
	if k > n {
		return false, nil
	}
	iters := opt.Iterations
	if iters <= 0 {
		iters = IterationsForApprox(k, 0.05)
	}

	// Slot layout: blocks in ascending label order, wildcards trailing —
	// the same deterministic layout as mld's constrained assignment.
	labels := make([]int32, 0, len(counts))
	for c := range counts {
		labels = append(labels, c)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	allowed := make(map[int32][]uint8, len(counts))
	off := 0
	for _, c := range labels {
		for s := 0; s < counts[c]; s++ {
			allowed[c] = append(allowed[c], uint8(off+s))
		}
		off += counts[c]
	}
	wild := make([]uint8, 0, k-off)
	for s := off; s < k; s++ {
		wild = append(wild, uint8(s))
	}
	for _, c := range labels {
		allowed[c] = append(allowed[c], wild...)
	}

	slots := make([]int8, n) // −1: excluded (no allowed slot this run)
	full := uint32(1)<<uint(k) - 1
	// f[mask][v]: a connected subgraph containing v occupies exactly
	// the slots of mask.
	f := make([][]bool, 1<<uint(k))
	for m := range f {
		f[m] = make([]bool, n)
	}
	r := rng.New(rng.Hash2(opt.Seed, 0x707F, uint64(k)))

	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			pool := wild
			if a, ok := allowed[g.Label(int32(v))]; ok {
				pool = a
			}
			if len(pool) == 0 {
				slots[v] = -1 // exact constraint, unlisted label: excluded
				continue
			}
			slots[v] = int8(pool[r.Intn(len(pool))])
		}
		if motifColoring(g, k, slots, f, full) {
			return true, nil
		}
	}
	return false, nil
}

// motifColoring runs one refined coloring's boolean DP and reports
// whether any vertex roots a subgraph covering every slot.
func motifColoring(g *graph.Graph, k int, slots []int8, f [][]bool, full uint32) bool {
	n := g.NumVertices()
	for m := uint32(1); m <= full; m++ {
		row := f[m]
		if popcount(m) == 1 {
			for v := 0; v < n; v++ {
				row[v] = slots[v] >= 0 && m == 1<<uint8(slots[v])
			}
			continue
		}
		for v := 0; v < n; v++ {
			row[v] = false
			if slots[v] < 0 {
				continue
			}
			own := uint32(1) << uint8(slots[v])
			if m&own == 0 {
				continue
			}
			// f(v,S) = ∃u∈N(v), S1 ⊎ S2 = S with v's piece S1 ∋ slot(v):
			// f(v,S1) ∧ f(u,S2). Submasks of m are numerically below m,
			// so ascending mask order sees both halves finished.
		search:
			for _, u := range g.Neighbors(int32(v)) {
				for s1 := (m - 1) & m; s1 != 0; s1 = (s1 - 1) & m {
					if s1&own != 0 && f[s1][v] && f[m&^s1][int(u)] {
						row[v] = true
						break search
					}
				}
			}
		}
	}
	res := f[full]
	for v := 0; v < n; v++ {
		if res[v] {
			return true
		}
	}
	return false
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
