// Package fascia reimplements the color-coding subgraph counting
// baseline MIDAS is compared against in the paper's Fig 11 — FASCIA
// (Slota & Madduri, ICPP'13 / IPDPS'14).
//
// Color coding (Alon–Yuster–Zwick): color every vertex uniformly with
// one of k colors; a k-vertex template embedding survives ("is
// colorful") with probability k!/k^k ≈ e^-k; colorful embeddings are
// countable by dynamic programming over the template's single-child
// decomposition in time O(2^k·m) per coloring, so an (1±δ)-approximate
// count needs Θ(e^k) random colorings — the e^k·2^k time and the
// per-vertex Θ(2^k)-sized color-set tables are exactly the costs that
// keep FASCIA below k ≈ 12 while MIDAS reaches 18.
//
// As in FASCIA, the DP table for a subtemplate of size s stores one
// float per vertex per *s-subset of colors*, indexed by combinatorial
// rank (C(k,s) entries, not 2^k), and vertices are processed by a
// worker pool (FASCIA's OpenMP threading).
package fascia

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// Options configures a FASCIA run.
type Options struct {
	Seed       uint64
	Iterations int // random colorings; 0 → IterationsForApprox(k, 0.1)
	Workers    int // vertex-parallel workers; 0 → 1
}

// IterationsForApprox returns the standard number of colorings for a
// constant-factor approximate count at subgraph size k: ceil(e^k·ln(1/ε))
// capped to keep pathological arguments finite.
func IterationsForApprox(k int, eps float64) int {
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	it := math.Ceil(math.Exp(float64(k)) * math.Log(1/eps))
	if it > 1e9 {
		it = 1e9
	}
	if it < 1 {
		it = 1
	}
	return int(it)
}

// MemoryBytes estimates the peak DP table footprint for counting a
// size-k template on an n-vertex graph: the two largest child tables
// live simultaneously, each n·C(k, s)·8 bytes at its subtemplate size.
// This is the curve that walls FASCIA out of Fig 11 beyond k ≈ 12.
func MemoryBytes(n, k int) int64 {
	var total int64
	// The peeling decomposition materializes tables for subtemplate
	// sizes 1..k (active chain) plus passive singletons: bound by the
	// sum over s of n·C(k,s) = n·2^k in the worst case; the path
	// template's chain needs Σ_{s=1..k} C(k,s) ≈ 2^k.
	for s := 1; s <= k; s++ {
		total += int64(n) * 8 * int64(binom(k, s))
	}
	return total
}

// Count estimates the number of labeled non-induced embeddings
// (injective homomorphisms) of the template in g.
func Count(g *graph.Graph, tpl *graph.Template, opt Options) (float64, error) {
	k := tpl.K()
	if k < 1 {
		return 0, fmt.Errorf("fascia: empty template")
	}
	if k > 20 {
		return 0, fmt.Errorf("fascia: k=%d beyond color-coding practicality (tables are C(%d,s) per vertex)", k, k)
	}
	if k > g.NumVertices() {
		return 0, nil
	}
	iters := opt.Iterations
	if iters <= 0 {
		iters = IterationsForApprox(k, 0.1)
	}
	e := newEngine(g, tpl, opt)
	var sum float64
	for it := 0; it < iters; it++ {
		sum += e.runColoring(rng.Hash2(opt.Seed, uint64(it), 0xFA5C1A))
	}
	// Each embedding is colorful with probability k!/k^k.
	pColorful := factorial(k) / math.Pow(float64(k), float64(k))
	return sum / float64(iters) / pColorful, nil
}

// Detect reports whether any colorful embedding was found across the
// iterations (a detection-only use of the same DP; error is one-sided
// like MIDAS's).
func Detect(g *graph.Graph, tpl *graph.Template, opt Options) (bool, error) {
	k := tpl.K()
	if k < 1 {
		return false, fmt.Errorf("fascia: empty template")
	}
	if k > 20 {
		return false, fmt.Errorf("fascia: k=%d beyond color-coding practicality", k)
	}
	if k > g.NumVertices() {
		return false, nil
	}
	iters := opt.Iterations
	if iters <= 0 {
		// detection needs e^k·ln(1/ε) colorings too
		iters = IterationsForApprox(k, 0.05)
	}
	e := newEngine(g, tpl, opt)
	for it := 0; it < iters; it++ {
		if e.runColoring(rng.Hash2(opt.Seed, uint64(it), 0xFA5C1A)) > 0 {
			return true, nil
		}
	}
	return false, nil
}

// CountPaths estimates the number of simple paths on k vertices
// (undirected paths counted once, matching graph.CountPathsOfLength).
func CountPaths(g *graph.Graph, k int, opt Options) (float64, error) {
	if k == 1 {
		return float64(g.NumVertices()), nil
	}
	c, err := Count(g, graph.PathTemplate(k), opt)
	// a path template has exactly 2 automorphisms (identity + reversal)
	return c / 2, err
}

// engine holds the per-run state reused across colorings.
type engine struct {
	g      *graph.Graph
	k      int
	d      *graph.Decomposition
	opt    Options
	colors []uint8
	rnd    *rng.Rand
	// tables[j] is the DP table of decomposition node j: for each
	// vertex, C(k, size_j) floats indexed by colorset rank.
	tables [][]float64
	ranks  *rankTable
}

func newEngine(g *graph.Graph, tpl *graph.Template, opt Options) *engine {
	e := &engine{
		g: g, k: tpl.K(), d: tpl.Decompose(), opt: opt,
		colors: make([]uint8, g.NumVertices()),
		ranks:  newRankTable(tpl.K()),
	}
	e.tables = make([][]float64, len(e.d.Nodes))
	for j, nd := range e.d.Nodes {
		e.tables[j] = make([]float64, g.NumVertices()*binom(e.k, nd.Size))
	}
	return e
}

// runColoring executes one coloring's full DP and returns the number of
// colorful embeddings found (Σ_v Σ_C cnt[root][v][C]).
func (e *engine) runColoring(seed uint64) float64 {
	n := e.g.NumVertices()
	r := rng.New(seed)
	for i := range e.colors {
		e.colors[i] = uint8(r.Intn(e.k))
	}
	for j, nd := range e.d.Nodes {
		tab := e.tables[j]
		width := binom(e.k, nd.Size)
		if nd.Left < 0 {
			for i := range tab {
				tab[i] = 0
			}
			for v := 0; v < n; v++ {
				// colorset {col[v]} has rank = rank1(col[v])
				tab[v*width+e.ranks.rank(1<<e.colors[v])] = 1
			}
			continue
		}
		e.combine(j, nd, tab, width)
	}
	root := e.tables[e.d.Root]
	var total float64
	for _, c := range root {
		total += c
	}
	return total
}

// combine fills the DP table of internal node nd (index j):
// cnt[j][v][C] = Σ_{u∈N(v)} Σ_{Ca ⊎ Cp = C} cnt[left][v][Ca]·cnt[right][u][Cp].
func (e *engine) combine(j int, nd graph.Subtree, tab []float64, width int) {
	n := e.g.NumVertices()
	left := e.tables[nd.Left]
	right := e.tables[nd.Right]
	sa := e.d.Nodes[nd.Left].Size
	s := nd.Size
	wLeft := binom(e.k, sa)
	wRight := binom(e.k, s-sa)
	masks := e.ranks.masksOfSize(s)

	workers := e.opt.Workers
	if workers <= 0 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				row := tab[v*width : (v+1)*width]
				for i := range row {
					row[i] = 0
				}
				nbr := e.g.Neighbors(int32(v))
				for ci, c := range masks {
					var acc float64
					// enumerate sub-masks of c with popcount sa
					for ca := c; ; ca = (ca - 1) & c {
						if bits.OnesCount32(uint32(ca)) == sa {
							lv := left[v*wLeft+e.ranks.rank(ca)]
							if lv != 0 {
								cp := c &^ ca
								rp := e.ranks.rank(cp)
								var nsum float64
								for _, u := range nbr {
									nsum += right[int(u)*wRight+rp]
								}
								acc += lv * nsum
							}
						}
						if ca == 0 {
							break
						}
					}
					row[ci] = acc
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// rankTable maps color-set bitmasks to their combinatorial rank among
// masks of equal popcount, and back.
type rankTable struct {
	k      int
	rankOf []int32    // mask → rank within its popcount class
	masks  [][]uint32 // size → masks in rank order
}

func newRankTable(k int) *rankTable {
	rt := &rankTable{k: k, rankOf: make([]int32, 1<<uint(k)), masks: make([][]uint32, k+1)}
	counts := make([]int32, k+1)
	for m := 0; m < 1<<uint(k); m++ {
		s := bits.OnesCount32(uint32(m))
		rt.rankOf[m] = counts[s]
		counts[s]++
		rt.masks[s] = append(rt.masks[s], uint32(m))
	}
	return rt
}

func (rt *rankTable) rank(mask uint32) int       { return int(rt.rankOf[mask]) }
func (rt *rankTable) masksOfSize(s int) []uint32 { return rt.masks[s] }

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
