package fascia

import (
	"math/rand"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
)

func TestDetectMotifMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	agree := 0
	for trial := 0; trial < 300; trial++ {
		n := 4 + r.Intn(7)
		m := r.Intn(n * (n - 1) / 2)
		g := graph.RandomGNM(n, m, uint64(trial))
		nc := 1 + r.Intn(3)
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(r.Intn(nc))
		}
		g.SetLabels(labels)
		k := 1 + r.Intn(5)
		if k > n {
			k = n
		}
		counts := map[int32]int{}
		budget := k
		for c := 0; c < nc && budget > 0; c++ {
			if r.Intn(2) == 0 {
				m := 1 + r.Intn(budget)
				counts[int32(c)] = m
				budget -= m
			}
		}
		spec := &mld.MotifSpec{K: k, Counts: counts}
		want := mld.BruteMotif(g, spec)
		got, err := DetectMotif(g, k, counts, Options{Seed: uint64(trial), Iterations: 200})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: fascia=%v brute=%v k=%d counts=%v", trial, got, want, k, counts)
		}
		agree++
	}
	t.Logf("%d/300 agree", agree)
}
