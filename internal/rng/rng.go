// Package rng provides deterministic pseudo-random number generation and
// keyed hashing for MIDAS.
//
// Two properties matter for the algorithms in this repository:
//
//  1. Reproducibility: a run is fully determined by a single 64-bit seed,
//     so experiments can be replayed and distributed ranks agree on all
//     random choices without communicating them.
//  2. Cross-rank derivability: the per-(edge, level) fingerprint
//     coefficients used by the multilinear detection DP are *hashed*, not
//     stored. Any rank can recompute the coefficient for any edge from
//     (seed, edge endpoints, level) alone, which removes an O(m·k) table
//     and, more importantly, removes a broadcast from the distributed
//     setup phase.
//
// The generator is xoshiro256** seeded through splitmix64, the standard
// pairing recommended by the xoshiro authors. The keyed hash is a
// splitmix64 chain, which is a strong 64->64 mixer (not cryptographic,
// which is fine: the adversary here is Schwartz–Zippel, not a person).
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the splitmix64 state and returns the next value.
// It is used both as a seeder and as the mixing function for Hash64.
func SplitMix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

// Mix64 applies the splitmix64 finalizer to x. It is a bijective 64-bit
// mixer with full avalanche.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 hashes an arbitrary-length key of 64-bit words under the given
// seed. It is deterministic across processes and architectures.
func Hash64(seed uint64, words ...uint64) uint64 {
	h := Mix64(seed ^ 0x6a09e667f3bcc909)
	for _, w := range words {
		h = Mix64(h ^ w)
	}
	return h
}

// Hash2 is a fast-path Hash64 for exactly two words, avoiding the
// variadic slice allocation in hot loops.
func Hash2(seed, a, b uint64) uint64 {
	h := Mix64(seed ^ 0x6a09e667f3bcc909)
	h = Mix64(h ^ a)
	return Mix64(h ^ b)
}

// Hash3 is a fast-path Hash64 for exactly three words.
func Hash3(seed, a, b, c uint64) uint64 {
	h := Mix64(seed ^ 0x6a09e667f3bcc909)
	h = Mix64(h ^ a)
	h = Mix64(h ^ b)
	return Mix64(h ^ c)
}

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// New returns a generator seeded from a single 64-bit seed via splitmix64.
func New(seed uint64) *Rand {
	var r Rand
	st := seed
	for i := range r.s {
		st, r.s[i] = SplitMix64(st)
	}
	// xoshiro must not be seeded with the all-zero state. splitmix64 of
	// any seed cannot produce four zero outputs in a row, but guard
	// against it anyway so the invariant is local.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (polar Box–Muller with a
// cached spare).
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
