package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Mix64 is a bijection, so distinct inputs in a sample must map to
	// distinct outputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		out := Mix64(i)
		if prev, ok := seen[out]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %#x", i, prev, out)
		}
		seen[out] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	var totalFlips, samples int
	for i := uint64(1); i <= 1000; i++ {
		base := Mix64(i)
		for b := 0; b < 64; b++ {
			diff := base ^ Mix64(i^(1<<uint(b)))
			totalFlips += popcount(diff)
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 28 || avg > 36 {
		t.Fatalf("poor avalanche: average %.2f bit flips, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(42, 1, 2, 3)
	b := Hash64(42, 1, 2, 3)
	if a != b {
		t.Fatalf("Hash64 not deterministic: %#x vs %#x", a, b)
	}
	if Hash64(42, 1, 2, 3) == Hash64(43, 1, 2, 3) {
		t.Fatal("seed change did not change hash")
	}
	if Hash64(42, 1, 2, 3) == Hash64(42, 1, 2, 4) {
		t.Fatal("word change did not change hash")
	}
	if Hash64(42, 1, 2) == Hash64(42, 2, 1) {
		t.Fatal("word order should matter")
	}
}

func TestHashFastPathsMatchHash64(t *testing.T) {
	f := func(seed, a, b, c uint64) bool {
		return Hash2(seed, a, b) == Hash64(seed, a, b) &&
			Hash3(seed, a, b, c) == Hash64(seed, a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministicBySeed(t *testing.T) {
	r1, r2 := New(7), New(7)
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	r3 := New(8)
	same := 0
	r1 = New(7)
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r3.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 8, 100, 1 << 40, math.MaxUint64} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformish(t *testing.T) {
	r := New(99)
	const n, iters = 10, 100000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(iters) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d samples, want ~%.0f", b, c, want)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func BenchmarkHash3(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash3(42, uint64(i), uint64(i>>3), 7)
	}
	_ = sink
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
