package cluster

// Distributed detections across the fleet: when a query asks for
// ranks > 1 and sibling replicas hold the graph, the fronting node
// coordinates a leased phase-group world instead of simulating every
// rank in-process. It picks a rendezvous root, asks each participant
// to join at an assigned rank over POST /v1/cluster/lease, and runs
// rank 0 itself; the DP then proceeds over the hardened TCP transport
// exactly as a standalone multi-rank run would. Any lease failure —
// a dead replica, a severed link, a failed rendezvous — degrades the
// query back to the in-process world rather than failing it: the
// resilient-retry promise holds across the fleet boundary.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/serve"
)

// leaseRequest is the wire shape of POST /v1/cluster/lease: the full
// (already validated and auto-tuned) query plus this participant's
// world coordinates. Every rank must receive the identical query —
// the DP's transcript determinism depends on it.
type leaseRequest struct {
	serve.QueryRequest
	LeaseRank int    `json:"leaseRank"`
	LeaseSize int    `json:"leaseSize"`
	RootAddr  string `json:"rootAddr"`
	Fault     string `json:"fault,omitempty"` // comm.FaultSpec, String() form
}

// runDistributed is the serve DistRunner hook: try to lease the
// multi-rank world across the fleet. handled=false means "no fleet
// world ran (or it failed); fall back to the in-process path" — the
// query itself never fails on account of the fleet, except when its
// own context is already dead.
func (n *Node) runDistributed(ctx context.Context, req *serve.QueryRequest, rec *obs.Recorder, res *serve.Result, tr *serve.QueryTrace) (bool, error) {
	digest, _, _, ok := n.srv.LookupGraph(req.Graph)
	if !ok {
		return false, nil
	}
	mem := n.members()
	if mem == nil {
		return false, nil
	}
	var peers []string
	for _, o := range n.ownersOf(digest) {
		if o != n.self && mem.alive(o) {
			peers = append(peers, o)
		}
	}
	if len(peers) == 0 {
		return false, nil // solo fleet for this shard: in-process world
	}
	size := req.Ranks
	participants := append([]string{n.self}, peers...)
	if len(participants) > size {
		participants = participants[:size]
	}
	rootAddr, err := n.leaseRootAddr()
	if err != nil {
		n.rec.Add(obs.ClusterLeaseFailures, 1)
		n.logger.Warn("lease root addr failed", "error", err.Error())
		return false, nil
	}
	fault := ""
	if n.cfg.LeaseFault != nil {
		fault = n.cfg.LeaseFault.String()
	}
	opts := comm.TCPOptions{ConnectTimeout: n.cfg.LeaseConnectTimeout, Fault: n.cfg.LeaseFault}

	// Ranks round-robin over the participants; rank 0 is always self
	// (the front keeps the answer). Extra self ranks run as goroutines
	// in this process — a small fleet still fills a wide world. Every
	// participant runs under one shared lease context: the first
	// failure cancels it, which closes every rank's world and unblocks
	// any rank stuck receiving from the lost one.
	leaseCtx, cancelLease := context.WithCancel(ctx)
	defer cancelLease()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		addr := participants[r%len(participants)]
		wg.Add(1)
		go func(rank int, addr string) {
			defer wg.Done()
			if addr == n.self {
				_, errs[rank] = n.srv.ExecuteLease(leaseCtx, req, serve.LeaseWorld{
					Rank: rank, Size: size, RootAddr: rootAddr, Options: opts,
				})
			} else {
				errs[rank] = n.postLease(leaseCtx, addr, req, rank, size, rootAddr, fault)
			}
			if errs[rank] != nil {
				cancelLease()
			}
		}(r, addr)
	}
	res0, err0 := n.srv.ExecuteLease(leaseCtx, req, serve.LeaseWorld{
		Rank: 0, Size: size, RootAddr: rootAddr, Options: opts,
	})
	if err0 != nil {
		cancelLease() // unblock any peer still waiting on rank 0
	}
	wg.Wait()
	errs[0] = err0
	for rank, e := range errs {
		if e == nil {
			continue
		}
		n.rec.Add(obs.ClusterLeaseFailures, 1)
		if ctx.Err() != nil {
			return true, ctx.Err() // the query itself is dead; don't re-run
		}
		n.logger.Warn("lease world failed; degrading to in-process ranks",
			"graph", req.Graph, "rank", rank, "size", size, "error", e.Error())
		return false, nil
	}
	res.Found = res0.Found
	res.Table = res0.Table
	rec.Add(obs.Rounds, res0.Rounds)
	rec.Add(obs.Phases, res0.Phases)
	n.logger.Info("lease world completed",
		"graph", req.Graph, "size", size, "participants", participants)
	return true, nil
}

// leaseRootAddr picks a fresh rendezvous address on this node's host:
// bind port 0, read the assignment, release it for the world's rank 0.
func (n *Node) leaseRootAddr() (string, error) {
	host, _, err := net.SplitHostPort(n.self)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// postLease asks a peer to hold one rank of the world. The call lasts
// as long as the peer's DP does, so it is bounded only by the query's
// own context, never the forward timeout.
func (n *Node) postLease(ctx context.Context, addr string, req *serve.QueryRequest, rank, size int, rootAddr, fault string) error {
	body, err := json.Marshal(leaseRequest{
		QueryRequest: *req, LeaseRank: rank, LeaseSize: size, RootAddr: rootAddr, Fault: fault,
	})
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/v1/cluster/lease", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := n.leaseClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("lease rank %d on %s: %s: %s", rank, addr, resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return nil
}

// handleLease joins a leased world at the requested rank and blocks
// until that world's DP finishes. A node leased for a graph it has not
// yet adopted pulls the shard first — a lease is also a placement
// hint.
func (n *Node) handleLease(w http.ResponseWriter, r *http.Request) {
	var lr leaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&lr); err != nil {
		writeJSONStatus(w, http.StatusBadRequest, map[string]string{"error": "bad lease: " + err.Error()})
		return
	}
	if lr.LeaseSize < 2 || lr.LeaseRank < 1 || lr.LeaseRank >= lr.LeaseSize || lr.RootAddr == "" {
		writeJSONStatus(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("bad lease coordinates rank=%d size=%d root=%q", lr.LeaseRank, lr.LeaseSize, lr.RootAddr)})
		return
	}
	if _, _, _, ok := n.srv.LookupGraph(lr.Graph); !ok {
		meta, ok := n.cat.get(lr.Graph)
		if !ok {
			writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown graph %q", lr.Graph)})
			return
		}
		if err := n.adoptShard(meta); err != nil {
			writeJSONStatus(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	}
	opts := comm.TCPOptions{ConnectTimeout: n.cfg.LeaseConnectTimeout}
	if lr.Fault != "" {
		spec, err := comm.ParseFaultSpec(lr.Fault)
		if err != nil {
			writeJSONStatus(w, http.StatusBadRequest, map[string]string{"error": "bad fault spec: " + err.Error()})
			return
		}
		opts.Fault = &spec
	}
	if _, err := n.srv.ExecuteLease(r.Context(), &lr.QueryRequest, serve.LeaseWorld{
		Rank: lr.LeaseRank, Size: lr.LeaseSize, RootAddr: lr.RootAddr, Options: opts,
	}); err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	n.rec.Add(obs.ClusterLeases, 1)
	writeJSONStatus(w, http.StatusOK, map[string]any{"ok": true, "rank": lr.LeaseRank})
}
