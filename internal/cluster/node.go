package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/serve"
)

// Fleet-internal HTTP headers.
const (
	// ForwardedHeader marks a fleet-internal forwarded query with the
	// fronting replica's advertise address. Its presence is the loop
	// guard: a forwarded query is always served where it lands.
	ForwardedHeader = "X-Midas-Forwarded"
	// ServedByHeader names the replica that executed a forwarded
	// query, so clients (and tests) can see the second hop.
	ServedByHeader = "X-Midas-Served-By"
)

// Config tunes a cluster node. Serve configures the embedded
// midas-serve instance; a Store is mandatory — shard handoff lands
// sealed graph files there.
type Config struct {
	Serve serve.Config

	// Advertise is the address peers reach this node at. Defaults to
	// the Start listen address — set it when the node listens on a
	// wildcard or sits behind a NAT. Placement hashes advertise
	// addresses, so every node must use each member's same spelling.
	Advertise string
	// Peers is the static seed list of peer advertise addresses (the
	// node itself may be included; it is deduplicated). The fleet's
	// membership is this set — nodes do not discover each other.
	Peers []string
	// Replicas is the shard replication factor R: each graph is owned
	// by the R live members ranking highest in rendezvous order.
	// Default 2; values beyond the fleet size degrade gracefully.
	Replicas int
	// HeartbeatInterval is the health-probe period (default 1s).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the consecutive-miss count that declares a
	// member dead and re-places its shards (default 3).
	HeartbeatMisses int
	// ForwardTimeout bounds one forwarded query's proxy round trip
	// (default 30s). Lease calls are bounded by the query's own
	// deadline instead — distributed detections outlive any proxy hop.
	ForwardTimeout time.Duration
	// LeaseConnectTimeout bounds a leased world's TCP rendezvous
	// (default 5s); past it the lease fails and the query degrades to
	// an in-process world.
	LeaseConnectTimeout time.Duration
	// LeaseFault, when non-nil, injects a chaos schedule into every
	// leased world this node coordinates (the spec is shipped to every
	// participant — all ranks must share it). Test-only.
	LeaseFault *comm.FaultSpec
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 2
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.LeaseConnectTimeout <= 0 {
		c.LeaseConnectTimeout = 5 * time.Second
	}
	return c
}

// ValidatePeers rejects obviously broken seed lists before the fleet
// half-starts: every entry must be host:port with a non-empty host and
// a concrete port (cmd/midas-serve calls this on -peers at startup so
// a typo is a clear error, not a silent solo fleet).
func ValidatePeers(peers []string) error {
	for _, p := range peers {
		host, port, err := net.SplitHostPort(p)
		if err != nil {
			return fmt.Errorf("cluster: peer %q: %v (want host:port)", p, err)
		}
		if host == "" {
			return fmt.Errorf("cluster: peer %q has no host", p)
		}
		pn, err := strconv.Atoi(port)
		if err != nil || pn <= 0 || pn > 65535 {
			return fmt.Errorf("cluster: peer %q has invalid port %q", p, port)
		}
	}
	return nil
}

// Node is one replica of a midas-serve fleet: an embedded serve.Server
// plus the cluster plane (membership, placement, forwarding, handoff,
// lease coordination). Construct with New, Start to serve, SetPeers to
// (re)seed membership, Shutdown to drain, Kill to crash (tests).
type Node struct {
	cfg    Config
	srv    *serve.Server
	rec    *obs.Recorder
	logger *slog.Logger
	cat    *catalog

	mem  atomic.Pointer[membership]
	self string // advertise address, fixed at Start

	client      *http.Client // forwards, pings, announces, handoff pulls
	leaseClient *http.Client // lease calls: no client timeout, ctx-bounded

	ln   net.Listener
	hsrv *http.Server

	stopCh      chan struct{}
	stopOnce    sync.Once
	rebalanceCh chan struct{}
	bg          sync.WaitGroup
}

// New builds an idle node. The serve.Config must carry a Store — the
// cluster's shard handoff lands sealed graph files there. AutoTune is
// forced on: every replica derives the same query plan from the same
// pure functions, which keeps fleet-wide caches coherent.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Serve.Store == nil {
		return nil, errors.New("cluster: serve.Config.Store is required (shard handoff lands graphs there)")
	}
	if err := ValidatePeers(cfg.Peers); err != nil {
		return nil, err
	}
	if cfg.Advertise != "" {
		if err := ValidatePeers([]string{cfg.Advertise}); err != nil {
			return nil, fmt.Errorf("cluster: -advertise: %w", err)
		}
	}
	cfg.Serve.AutoTune = true
	n := &Node{
		cfg:         cfg,
		cat:         newCatalog(),
		client:      &http.Client{},
		leaseClient: &http.Client{},
		stopCh:      make(chan struct{}),
		rebalanceCh: make(chan struct{}, 1),
	}
	n.srv = serve.New(cfg.Serve)
	n.rec = n.srv.Recorder()
	n.logger = n.srv.Logger()
	n.srv.SetQueryRouter(n.routeQuery)
	n.srv.SetGraphAdded(n.graphAdded)
	n.srv.SetDistributedRunner(n.runDistributed)
	n.srv.SetClusterInfo(func() any { return n.Status() })
	n.srv.SetExtraGauges(n.gauges)
	n.srv.SetExtraRoutes(n.registerRoutes)
	return n, nil
}

// Serve returns the embedded serve.Server (programmatic graph loading,
// recorder access).
func (n *Node) Serve() *serve.Server { return n.srv }

// Advertise returns the node's advertise address (empty before Start
// when Config.Advertise was left defaulted).
func (n *Node) Advertise() string { return n.self }

// Start binds addr (":0" picks a free port) and serves the full API —
// the serve plane plus /v1/cluster/* — until Shutdown. Membership
// seeds from Config.Peers; SetPeers may re-seed afterwards.
func (n *Node) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	n.ln = ln
	n.self = n.cfg.Advertise
	if n.self == "" {
		n.self = ln.Addr().String()
	}
	n.mem.Store(newMembership(n.self, n.cfg.Peers))
	n.hsrv = &http.Server{Handler: n.srv.Handler()}
	go n.hsrv.Serve(ln) //nolint:errcheck // ErrServerClosed on Shutdown
	n.bg.Add(2)
	go n.heartbeatLoop()
	go n.rebalanceLoop()
	n.logger.Info("cluster node up",
		"listen", ln.Addr().String(), "advertise", n.self,
		"peers", n.cfg.Peers, "replicas", n.cfg.Replicas,
		"heartbeatInterval", n.cfg.HeartbeatInterval,
		"heartbeatMisses", n.cfg.HeartbeatMisses,
		"forwardTimeout", n.cfg.ForwardTimeout)
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// SetPeers re-seeds the static membership (the node itself is always a
// member). Tests boot a fleet on ":0" listeners and wire the final
// addresses here; every node must receive the same set, spelled the
// same way, for placement to agree.
func (n *Node) SetPeers(peers []string) error {
	if err := ValidatePeers(peers); err != nil {
		return err
	}
	n.mem.Store(newMembership(n.self, peers))
	n.triggerRebalance()
	return nil
}

func (n *Node) members() *membership { return n.mem.Load() }

// Shutdown drains the node: the serve plane finishes its queries (new
// ones get 503 + Retry-After), then the HTTP listener and background
// loops stop.
func (n *Node) Shutdown(ctx context.Context) error {
	n.stopOnce.Do(func() { close(n.stopCh) })
	err := n.srv.Shutdown(ctx)
	if n.hsrv != nil {
		if herr := n.hsrv.Shutdown(context.Background()); herr != nil && err == nil {
			err = herr
		}
	}
	n.bg.Wait()
	return err
}

// Kill crash-stops the node: in-flight HTTP connections reset, nothing
// drains (queued and running queries are cut off). Test helper for the
// replica-death legs — a real crash is a process exit, and this is the
// closest an in-process fleet gets.
func (n *Node) Kill() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	if n.hsrv != nil {
		n.hsrv.Close() //nolint:errcheck
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	n.srv.Shutdown(expired) //nolint:errcheck // crash semantics: nobody reads the error
	n.bg.Wait()
}

// ---- membership probing ----

func (n *Node) heartbeatLoop() {
	defer n.bg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-tick.C:
			n.probeAll()
		}
	}
}

func (n *Node) probeAll() {
	mem := n.members()
	if mem == nil {
		return
	}
	for _, addr := range mem.list() {
		if addr == n.self {
			continue
		}
		if n.probe(addr) {
			if mem.markAlive(addr) {
				n.logger.Info("member revived", "addr", addr, "epoch", mem.Epoch())
				n.triggerRebalance()
			}
		} else {
			n.rec.Add(obs.ClusterHeartbeatMisses, 1)
			if mem.markMissed(addr, n.cfg.HeartbeatMisses) {
				n.logger.Warn("member declared dead", "addr", addr, "epoch", mem.Epoch())
				n.triggerRebalance()
			}
		}
	}
}

func (n *Node) probe(addr string) bool {
	// The probe deadline is floored at one second: a crashed peer fails
	// fast (connection refused), so a short heartbeat cadence still
	// detects death quickly, but a live peer answering slowly — GC
	// pause, loaded box, race-detector slowdown in tests — must not
	// read as a miss just because the cadence is aggressive.
	timeout := n.cfg.HeartbeatInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/cluster/ping", nil)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// ---- graph registration and replication ----

// graphAdded runs synchronously inside every successful POST
// /v1/graphs: catalog the graph, then announce it to every live
// member. Owners adopt the shard inside their announce handler, so a
// 200 from the add means the placement is materialized. The adding
// node keeps its own registration regardless of ownership — the
// "origin copy" that serves as a handoff source and a degraded-mode
// fallback.
func (n *Node) graphAdded(name string, digest uint64, vertices, edges int) {
	meta := metaFor(name, digest, vertices, edges, n.self)
	n.cat.put(meta)
	mem := n.members()
	if mem == nil {
		return
	}
	for _, addr := range mem.list() {
		if addr == n.self || !mem.alive(addr) {
			continue
		}
		if err := n.postAnnounce(addr, meta); err != nil {
			n.logger.Warn("announce failed", "graph", name, "peer", addr, "error", err.Error())
		}
	}
}

func (n *Node) postAnnounce(addr string, meta GraphMeta) error {
	body, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/v1/cluster/announce", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("announce to %s: %s: %s", addr, resp.Status, msg)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return nil
}

// ownersOf places a digest on the current membership.
func (n *Node) ownersOf(digest uint64) []string {
	mem := n.members()
	if mem == nil {
		return []string{n.self}
	}
	return owners(digest, mem.list(), n.cfg.Replicas, mem.alive)
}

// ---- query routing ----

// routeQuery is the serve query-router hook: decide whether this node
// serves the query or proxies it to a shard owner. Runs inside serve's
// middleware, so the request ID is already assigned (readable off the
// response header) and every outcome is access-logged.
func (n *Node) routeQuery(w http.ResponseWriter, r *http.Request) bool {
	if r.Header.Get(ForwardedHeader) != "" {
		// Second hop: serve where we stand, whatever placement says —
		// the front already decided, and one hop is the maximum.
		n.rec.Add(obs.ClusterReplicaHits, 1)
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		http.Error(w, `{"error":"request body too large"}`, http.StatusRequestEntityTooLarge)
		return true
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	var q struct {
		Graph string `json:"graph"`
	}
	if json.Unmarshal(body, &q) != nil || q.Graph == "" {
		return false // malformed; serve's validator owns the 400
	}
	meta, ok := n.cat.get(q.Graph)
	if !ok {
		return false // not cataloged; the local registry may still know it
	}
	digest, ok := meta.digestValue()
	if !ok {
		return false
	}
	own := n.ownersOf(digest)
	for _, o := range own {
		if o == n.self {
			n.rec.Add(obs.ClusterReplicaHits, 1)
			return false // we own this shard; serve locally
		}
	}
	if n.forward(w, r, body, own) {
		return true
	}
	// Every owner is unreachable. Degrade, don't fail: serve locally
	// when this node can hold the graph (origin copy, or a handoff
	// pull from whoever still has the bytes).
	if _, _, _, registered := n.srv.LookupGraph(q.Graph); registered {
		n.logger.Warn("owners unreachable; serving locally", "graph", q.Graph, "owners", own)
		n.rec.Add(obs.ClusterReplicaHits, 1)
		return false
	}
	if err := n.adoptShard(meta); err == nil {
		n.logger.Warn("owners unreachable; adopted shard locally", "graph", q.Graph, "owners", own)
		n.rec.Add(obs.ClusterReplicaHits, 1)
		return false
	}
	writeJSONStatus(w, http.StatusBadGateway, map[string]string{
		"error":      fmt.Sprintf("no reachable owner for graph %q (owners %v)", q.Graph, own),
		"request_id": w.Header().Get(serve.RequestIDHeader),
	})
	return true
}

// forward proxies the query to the first owner that answers, retrying
// the next owner on transport errors and load-shed responses (503/
// 429 honor a small pause only via the caller's retry loop — the
// Retry-After hint is for external clients; fleet-internal retry just
// moves on to a sibling replica). Writes nothing and returns false
// when every owner fails, so the caller can degrade.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, body []byte, own []string) bool {
	reqID := w.Header().Get(serve.RequestIDHeader)
	start := time.Now()
	tried := 0
	for _, owner := range own {
		if owner == n.self {
			continue
		}
		if tried > 0 {
			n.rec.Add(obs.ClusterForwardRetries, 1)
		}
		tried++
		resp, err := n.forwardOnce(r.Context(), owner, body, reqID)
		if err != nil {
			n.logger.Warn("forward failed", "owner", owner, "requestId", reqID, "error", err.Error())
			n.noteUnreachable(owner)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			n.logger.Warn("owner shed load", "owner", owner, "requestId", reqID, "status", resp.StatusCode)
			continue
		}
		n.rec.Add(obs.ClusterForwards, 1)
		n.rec.Observe(obs.HistClusterForward, time.Since(start).Seconds())
		w.Header().Set(ServedByHeader, owner)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck
		resp.Body.Close()
		n.logger.Info("query forwarded",
			"requestId", reqID, "owner", owner, "status", resp.StatusCode,
			"millis", float64(time.Since(start))/float64(time.Millisecond))
		return true
	}
	return false
}

func (n *Node) forwardOnce(ctx context.Context, owner string, body []byte, reqID string) (*http.Response, error) {
	fctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	req, err := http.NewRequestWithContext(fctx, http.MethodPost,
		"http://"+owner+"/v1/query", bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.RequestIDHeader, reqID)
	req.Header.Set(ForwardedHeader, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelOnClose ties a response body's context cancel to its Close, so
// forwards neither leak contexts nor cancel mid-copy.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// noteUnreachable accelerates failure detection: a forward that died
// on the wire counts as a heartbeat miss, so an owner that crashed
// mid-query is declared dead after the usual threshold without
// waiting out full heartbeat intervals.
func (n *Node) noteUnreachable(addr string) {
	mem := n.members()
	if mem == nil {
		return
	}
	n.rec.Add(obs.ClusterHeartbeatMisses, 1)
	if mem.markMissed(addr, n.cfg.HeartbeatMisses) {
		n.logger.Warn("member declared dead", "addr", addr, "epoch", mem.Epoch())
		n.triggerRebalance()
	}
}

// ---- rebalancing ----

func (n *Node) triggerRebalance() {
	select {
	case n.rebalanceCh <- struct{}{}:
	default:
	}
}

func (n *Node) rebalanceLoop() {
	defer n.bg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.rebalanceCh:
			n.rebalance()
		}
	}
}

// rebalance re-derives this node's shard set from the catalog and the
// current placement, pulling any shard it now owns but does not hold.
// Runs on membership epochs (death, revival, re-seeding); the announce
// path covers the initial placement of new graphs.
func (n *Node) rebalance() {
	for _, meta := range n.cat.list() {
		digest, ok := meta.digestValue()
		if !ok {
			continue
		}
		mine := false
		for _, o := range n.ownersOf(digest) {
			if o == n.self {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		if _, _, _, registered := n.srv.LookupGraph(meta.Name); registered {
			continue
		}
		if err := n.adoptShard(meta); err != nil {
			n.logger.Warn("rebalance: shard adoption failed",
				"graph", meta.Name, "digest", meta.Digest, "error", err.Error())
		} else {
			n.logger.Info("rebalance: shard adopted", "graph", meta.Name, "digest", meta.Digest)
		}
	}
}

// ---- cluster API handlers ----

func (n *Node) registerRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/cluster/ping", n.handlePing)
	mux.HandleFunc("GET /v1/cluster/status", n.handleStatus)
	mux.HandleFunc("POST /v1/cluster/announce", n.handleAnnounce)
	mux.HandleFunc("POST /v1/cluster/lease", n.handleLease)
	mux.HandleFunc("GET /v1/cluster/graphs/{digest}", n.handleGraphBytes)
	mux.HandleFunc("GET /v1/cluster/parts/{digest}", n.handlePartList)
	mux.HandleFunc("GET /v1/cluster/parts/{digest}/{file}", n.handlePartBytes)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func (n *Node) handlePing(w http.ResponseWriter, _ *http.Request) {
	epoch := uint64(0)
	if mem := n.members(); mem != nil {
		epoch = mem.Epoch()
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"ok": true, "addr": n.self, "epoch": epoch})
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSONStatus(w, http.StatusOK, n.Status())
}

// handleAnnounce records a fleet graph and, when this node is one of
// its owners, adopts the shard before answering — the announcing node
// learns the placement landed, not just that the message did.
func (n *Node) handleAnnounce(w http.ResponseWriter, r *http.Request) {
	var meta GraphMeta
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&meta); err != nil {
		writeJSONStatus(w, http.StatusBadRequest, map[string]string{"error": "bad announce: " + err.Error()})
		return
	}
	digest, ok := meta.digestValue()
	if meta.Name == "" || !ok {
		writeJSONStatus(w, http.StatusBadRequest, map[string]string{"error": "announce needs name and hex digest"})
		return
	}
	n.cat.put(meta)
	for _, o := range n.ownersOf(digest) {
		if o != n.self {
			continue
		}
		if err := n.adoptShard(meta); err != nil {
			writeJSONStatus(w, http.StatusInternalServerError,
				map[string]string{"error": fmt.Sprintf("adopt %q: %v", meta.Name, err)})
			return
		}
		break
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"ok": true})
}

func (n *Node) handleGraphBytes(w http.ResponseWriter, r *http.Request) {
	digest, err := strconv.ParseUint(r.PathValue("digest"), 16, 64)
	st := n.srv.Store()
	if err != nil || !st.Has(digest) {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no such graph"})
		return
	}
	http.ServeFile(w, r, st.GraphFilePath(digest))
}

func (n *Node) handlePartList(w http.ResponseWriter, r *http.Request) {
	digest, err := strconv.ParseUint(r.PathValue("digest"), 16, 64)
	if err != nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "bad digest"})
		return
	}
	names, err := n.srv.Store().PartArtifacts(digest)
	if err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"artifacts": names})
}

func (n *Node) handlePartBytes(w http.ResponseWriter, r *http.Request) {
	digest, err := strconv.ParseUint(r.PathValue("digest"), 16, 64)
	if err != nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "bad digest"})
		return
	}
	data, err := n.srv.Store().ReadPartArtifact(digest, r.PathValue("file"))
	if err != nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck
}

// ---- status and metrics ----

// PlacementView is one catalog entry with its current placement.
type PlacementView struct {
	Name   string   `json:"name"`
	Digest string   `json:"digest"`
	Owners []string `json:"owners"`
	Local  bool     `json:"local"` // this node holds the graph
}

// StatusView is the cluster block of GET /v1/cluster/status and the
// serve debug snapshot: configuration as parsed, membership health,
// and every cataloged graph's placement.
type StatusView struct {
	Self     string          `json:"self"`
	Listen   string          `json:"listen,omitempty"`
	Peers    []string        `json:"peers"`
	Replicas int             `json:"replicas"`
	Epoch    uint64          `json:"epoch"`
	Members  []MemberView    `json:"members"`
	Graphs   []PlacementView `json:"graphs,omitempty"`
}

// Status assembles the node's fleet view.
func (n *Node) Status() StatusView {
	out := StatusView{
		Self:     n.self,
		Listen:   n.Addr(),
		Peers:    append([]string(nil), n.cfg.Peers...),
		Replicas: n.cfg.Replicas,
	}
	if mem := n.members(); mem != nil {
		out.Epoch = mem.Epoch()
		out.Members = mem.views()
	}
	for _, meta := range n.cat.list() {
		digest, ok := meta.digestValue()
		if !ok {
			continue
		}
		_, _, _, local := n.srv.LookupGraph(meta.Name)
		out.Graphs = append(out.Graphs, PlacementView{
			Name: meta.Name, Digest: meta.Digest,
			Owners: n.ownersOf(digest), Local: local,
		})
	}
	return out
}

func (n *Node) gauges() []obs.Metric {
	var live, total int
	var epoch uint64
	if mem := n.members(); mem != nil {
		live, total = mem.counts()
		epoch = mem.Epoch()
	}
	return []obs.Metric{
		obs.Gauge("midas_cluster_members_alive", "Fleet members currently alive or suspect.", float64(live)),
		obs.Gauge("midas_cluster_members_total", "Static fleet membership size.", float64(total)),
		obs.Gauge("midas_cluster_epoch", "Placement epoch (bumps on member death or revival).", float64(epoch)),
		obs.Gauge("midas_cluster_graphs_cataloged", "Graphs known to the fleet catalog.", float64(n.cat.size())),
		obs.Gauge("midas_cluster_replication_factor", "Configured shard replication factor.", float64(n.cfg.Replicas)),
	}
}
