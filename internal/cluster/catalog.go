package cluster

// The graph catalog: every node's view of which named graphs exist in
// the fleet, regardless of which replicas hold their bytes. Entries
// arrive via the announce fan-out that follows every POST /v1/graphs
// (the adding node tells everyone) and carry the graph's identity —
// name, content digest, shape — plus the origin address, the fallback
// source for a handoff pull when every ranked owner is gone.

import (
	"fmt"
	"strconv"
	"sync"
)

// GraphMeta is one catalog entry — also the wire shape of
// POST /v1/cluster/announce. The digest travels as hex text (JSON
// numbers would corrupt 64-bit values).
type GraphMeta struct {
	Name     string `json:"name"`
	Digest   string `json:"digest"` // hex of graph.Digest()
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Origin   string `json:"origin"` // advertise addr of the registering node
}

// digestValue parses the hex digest ("" on malformed input → 0, false).
func (g GraphMeta) digestValue() (uint64, bool) {
	d, err := strconv.ParseUint(g.Digest, 16, 64)
	return d, err == nil
}

func metaFor(name string, digest uint64, vertices, edges int, origin string) GraphMeta {
	return GraphMeta{
		Name:     name,
		Digest:   fmt.Sprintf("%016x", digest),
		Vertices: vertices,
		Edges:    edges,
		Origin:   origin,
	}
}

// catalog is the name → GraphMeta table. Safe for concurrent use.
type catalog struct {
	mu sync.Mutex
	m  map[string]GraphMeta
}

func newCatalog() *catalog { return &catalog{m: make(map[string]GraphMeta)} }

// put records (or replaces) an entry. Returns false when an identical
// entry is already present — the announce fan-out's idempotence check.
func (c *catalog) put(meta GraphMeta) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[meta.Name]; ok && old == meta {
		return false
	}
	c.m[meta.Name] = meta
	return true
}

func (c *catalog) get(name string) (GraphMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	meta, ok := c.m[name]
	return meta, ok
}

func (c *catalog) list() []GraphMeta {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GraphMeta, 0, len(c.m))
	for _, meta := range c.m {
		out = append(out, meta)
	}
	return out
}

func (c *catalog) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
