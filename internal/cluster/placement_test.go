package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestRendezvousRankDeterministic: placement depends only on the
// member set and the digest — never on input order.
func TestRendezvousRankDeterministic(t *testing.T) {
	members := []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000", "10.0.0.4:9000"}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		digest := rng.Uint64()
		want := rendezvousRank(digest, members)
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := rendezvousRank(digest, shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("digest %x: rank depends on input order: %v vs %v", digest, got, want)
		}
	}
}

// TestOwnersStableUnderDeath: killing one member only moves the shards
// it owned — every other placement stays put. This is the property
// that makes failover cheap: one handoff per lost replica slot, no
// fleet-wide reshuffle.
func TestOwnersStableUnderDeath(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	dead := "c:1"
	aliveAll := func(string) bool { return true }
	aliveSansDead := func(m string) bool { return m != dead }
	rng := rand.New(rand.NewSource(2))
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		digest := rng.Uint64()
		before := owners(digest, members, 2, aliveAll)
		after := owners(digest, members, 2, aliveSansDead)
		hadDead := false
		for _, o := range before {
			if o == dead {
				hadDead = true
			}
		}
		if !hadDead {
			kept++
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("digest %x: placement moved without owning the dead member: %v -> %v", digest, before, after)
			}
			continue
		}
		moved++
		// The surviving owner must keep its slot; the dead one is
		// replaced by the next-ranked live member.
		for _, o := range after {
			if o == dead {
				t.Fatalf("digest %x: dead member still owns: %v", digest, after)
			}
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate sample: moved=%d kept=%d", moved, kept)
	}
}

// TestOwnersDegradedFleet: fewer live members than the replication
// factor yields fewer owners, never an error.
func TestOwnersDegradedFleet(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	only := func(m string) bool { return m == "b:1" }
	got := owners(42, members, 3, only)
	if !reflect.DeepEqual(got, []string{"b:1"}) {
		t.Fatalf("degraded owners = %v, want [b:1]", got)
	}
}

func TestValidatePeers(t *testing.T) {
	if err := ValidatePeers([]string{"10.0.0.1:9000", "host.example:80"}); err != nil {
		t.Fatalf("valid peers rejected: %v", err)
	}
	for _, bad := range []string{"nohost", ":9000", "h:", "h:0", "h:notaport", "h:70000"} {
		if err := ValidatePeers([]string{bad}); err == nil {
			t.Errorf("peer %q accepted, want error", bad)
		}
	}
}

// TestMembershipTransitions: alive → suspect on one miss (still owns),
// dead past the threshold (epoch bump), revived on success (epoch
// bump).
func TestMembershipTransitions(t *testing.T) {
	m := newMembership("self:1", []string{"peer:1", "self:1"})
	if got := m.list(); len(got) != 2 {
		t.Fatalf("membership %v, want deduped pair", got)
	}
	if m.markMissed("peer:1", 2) {
		t.Fatal("first miss declared death")
	}
	if !m.alive("peer:1") {
		t.Fatal("suspect member lost ownership")
	}
	if e := m.Epoch(); e != 0 {
		t.Fatalf("epoch %d after suspect, want 0", e)
	}
	if !m.markMissed("peer:1", 2) {
		t.Fatal("threshold miss did not declare death")
	}
	if m.alive("peer:1") {
		t.Fatal("dead member still owns")
	}
	if e := m.Epoch(); e != 1 {
		t.Fatalf("epoch %d after death, want 1", e)
	}
	if !m.markAlive("peer:1") {
		t.Fatal("revival not reported")
	}
	if e := m.Epoch(); e != 2 {
		t.Fatalf("epoch %d after revival, want 2", e)
	}
	if !m.alive("self:1") {
		t.Fatal("self must always be alive")
	}
}
