// Package cluster is the scale-out layer over midas-serve: a fleet of
// replicas with static-seed membership and heartbeat health, placing
// graphs on members by rendezvous hashing of graph.Digest() with a
// configurable replication factor. Any replica fronts any request —
// it serves locally when it owns the graph and forwards to an owner
// otherwise, threading the request ID through so both hops correlate.
// Distributed detections lease phase-group worlds across replicas over
// the hardened TCP transport; placement changes rebalance by store
// handoff (the new owner pulls the sealed v2 file plus partition
// artifacts and mmaps them — nothing is re-parsed or re-derived).
// docs/CLUSTER.md is the operator guide.
package cluster

import "sort"

// rendezvousScore is the HRW weight of (member, graph): a 64-bit
// FNV-1a over the member's advertise address followed by the digest's
// eight little-endian bytes. Every node computes the same score table
// from the same static membership, so placement needs no coordination.
func rendezvousScore(addr string, digest uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (digest >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}

// rendezvousRank orders members by descending score for digest
// (addresses break score ties, so the order is total and
// deterministic). The full static membership is ranked — health is
// filtered afterwards — which is what makes failover stable: a dead
// member's shards promote the next-ranked member and every other
// assignment stays put.
func rendezvousRank(digest uint64, members []string) []string {
	out := append([]string(nil), members...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := rendezvousScore(out[i], digest), rendezvousScore(out[j], digest)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// PlacementOwners computes the owners of digest over a fully-live
// static membership: the pure placement function, exported so tooling
// (the bench harness, capacity planners) can predict where a graph
// lands before loading it. A live Node's view, which also folds in
// member health, is Node.Status().
func PlacementOwners(digest uint64, members []string, replicas int) []string {
	return owners(digest, members, replicas, nil)
}

// owners returns the replicas responsible for digest: the first r
// members in rendezvous order that pass the alive filter. Fewer than r
// live members means fewer owners, never an error — a degraded fleet
// keeps placing.
func owners(digest uint64, members []string, r int, alive func(string) bool) []string {
	if r < 1 {
		r = 1
	}
	var out []string
	for _, m := range rendezvousRank(digest, members) {
		if alive != nil && !alive(m) {
			continue
		}
		out = append(out, m)
		if len(out) == r {
			break
		}
	}
	return out
}
