package cluster

// Shard handoff, pull side. When placement assigns this node a graph
// it does not hold, it pulls the sealed v2 .midg bytes (and any
// persisted partition artifacts) from a replica that has them, lands
// them in the local store via the verified import path, and mmaps the
// result — a handoff never re-parses or re-derives anything. Sources
// are tried in placement order, falling back to the graph's origin
// node, which always keeps a copy of what it registered.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/midas-hpc/midas/internal/obs"
)

// adoptShard makes meta's graph locally served: pull the bytes if the
// store lacks them, then register the stored graph under its fleet
// name. Idempotent — adopting a shard the node already holds only
// (re)binds the name.
func (n *Node) adoptShard(meta GraphMeta) error {
	digest, ok := meta.digestValue()
	if !ok {
		return fmt.Errorf("cluster: graph %q has malformed digest %q", meta.Name, meta.Digest)
	}
	st := n.srv.Store()
	if !st.Has(digest) {
		start := time.Now()
		var sources []string
		seen := map[string]bool{n.self: true}
		for _, src := range append(n.ownersOf(digest), meta.Origin) {
			if src == "" || seen[src] {
				continue
			}
			seen[src] = true
			sources = append(sources, src)
		}
		var lastErr error
		pulled := false
		for _, src := range sources {
			if err := n.pullShard(src, digest); err != nil {
				lastErr = err
				n.logger.Warn("shard pull failed", "graph", meta.Name, "source", src, "error", err.Error())
				continue
			}
			pulled = true
			break
		}
		if !pulled {
			if lastErr == nil {
				lastErr = fmt.Errorf("no live source")
			}
			return fmt.Errorf("cluster: shard %s (%q): %w", meta.Digest, meta.Name, lastErr)
		}
		n.rec.Add(obs.ClusterHandoffs, 1)
		n.rec.Observe(obs.HistClusterHandoff, time.Since(start).Seconds())
	}
	return n.srv.AdoptStored(meta.Name, digest, meta.Vertices, meta.Edges)
}

// pullShard fetches one graph's sealed bytes plus partition artifacts
// from src. The graph import verifies the full v2 envelope and the
// recovered digest must match the cataloged one — a corrupt or
// mismatched transfer never lands. Partition artifacts are derived
// data: a failed artifact pull is logged and skipped, the shard is
// still good (the owner re-derives partitions on demand).
func (n *Node) pullShard(src string, digest uint64) error {
	data, err := n.fetch(src, fmt.Sprintf("/v1/cluster/graphs/%016x", digest))
	if err != nil {
		return err
	}
	got, err := n.srv.Store().ImportBytes(data)
	if err != nil {
		return fmt.Errorf("import from %s: %w", src, err)
	}
	if got != digest {
		return fmt.Errorf("import from %s: digest mismatch: got %016x want %016x", src, got, digest)
	}
	listData, err := n.fetch(src, fmt.Sprintf("/v1/cluster/parts/%016x", digest))
	if err != nil {
		n.logger.Warn("partition artifact list failed", "source", src, "error", err.Error())
		return nil
	}
	var list struct {
		Artifacts []string `json:"artifacts"`
	}
	if err := json.Unmarshal(listData, &list); err != nil {
		n.logger.Warn("partition artifact list malformed", "source", src, "error", err.Error())
		return nil
	}
	for _, name := range list.Artifacts {
		art, err := n.fetch(src, fmt.Sprintf("/v1/cluster/parts/%016x/%s", digest, name))
		if err == nil {
			err = n.srv.Store().WritePartArtifact(digest, name, art)
		}
		if err != nil {
			n.logger.Warn("partition artifact pull failed",
				"source", src, "artifact", name, "error", err.Error())
		}
	}
	return nil
}

// fetch GETs a fleet-internal path from a peer, bounded by the forward
// timeout.
func (n *Node) fetch(addr, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s%s: %s: %s", addr, path, resp.Status, msg)
	}
	return io.ReadAll(resp.Body)
}
