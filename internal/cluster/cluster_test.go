package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/comm"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/serve"
	"github.com/midas-hpc/midas/internal/store"
)

// fleet is an in-process cluster: every node on its own loopback
// listener with its own store, wired together via SetPeers.
type fleet struct {
	t     *testing.T
	nodes []*Node
	dead  []bool
}

func newFleet(t *testing.T, size, replicas int, mut func(i int, cfg *Config)) *fleet {
	t.Helper()
	f := &fleet{t: t, nodes: make([]*Node, size), dead: make([]bool, size)}
	for i := range f.nodes {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() }) //nolint:errcheck
		cfg := Config{
			Serve:             serve.Config{Workers: 2, Store: st},
			Replicas:          replicas,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatMisses:   2,
			// Far above any test query's runtime, including under the
			// race detector: a slow DP must not read as a dead owner.
			ForwardTimeout: 5 * time.Minute,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		f.nodes[i] = n
	}
	addrs := f.addrs()
	for _, n := range f.nodes {
		if err := n.SetPeers(addrs); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for i, n := range f.nodes {
			if f.dead[i] {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			n.Shutdown(ctx) //nolint:errcheck
			cancel()
		}
	})
	return f
}

func (f *fleet) addrs() []string {
	out := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		out[i] = n.Advertise()
	}
	return out
}

func (f *fleet) kill(i int) {
	f.dead[i] = true
	f.nodes[i].Kill()
}

// indexOf maps an advertise address back to its fleet slot.
func (f *fleet) indexOf(addr string) int {
	for i, n := range f.nodes {
		if n.Advertise() == addr {
			return i
		}
	}
	f.t.Fatalf("no fleet node at %s", addr)
	return -1
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// addRandomGraph loads the server-generated random graph via node i's
// API and returns its digest.
func (f *fleet) addRandomGraph(i int, name string, n int, seed uint64) uint64 {
	f.t.Helper()
	resp, body := postJSON(f.t, "http://"+f.nodes[i].Addr()+"/v1/graphs",
		serve.GraphRequest{Name: name, Random: &serve.RandomSpec{N: n, Seed: seed}})
	if resp.StatusCode != http.StatusOK {
		f.t.Fatalf("add graph: %d %s", resp.StatusCode, body)
	}
	var gv serve.GraphView
	if err := json.Unmarshal(body, &gv); err != nil {
		f.t.Fatalf("bad graph view %s: %v", body, err)
	}
	digest, err := strconv.ParseUint(gv.Digest, 16, 64)
	if err != nil {
		f.t.Fatalf("bad digest %q", gv.Digest)
	}
	return digest
}

// runQuery posts q via node i and returns the terminal result plus the
// response headers.
func (f *fleet) runQuery(i int, q serve.QueryRequest) (*serve.Result, http.Header) {
	f.t.Helper()
	b, err := json.Marshal(q)
	if err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.Post("http://"+f.nodes[i].Addr()+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		f.t.Fatalf("query via node %d: %d %s", i, resp.StatusCode, body)
	}
	var jv serve.JobView
	if err := json.Unmarshal(body, &jv); err != nil {
		f.t.Fatalf("bad job JSON %s: %v", body, err)
	}
	if jv.Status != serve.StatusDone || jv.Result == nil {
		f.t.Fatalf("query via node %d not done: %s", i, body)
	}
	return jv.Result, resp.Header
}

// resultJSON normalizes a result for byte comparison: cache hits are a
// serving detail, not part of the answer.
func resultJSON(t *testing.T, r *serve.Result) []byte {
	t.Helper()
	c := *r
	c.Cached = false
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func counterOf(n *Node, c obs.Counter) int64 {
	return n.srv.Recorder().Snapshot().Counter(c)
}

// labeledGraphRequest builds a small deterministic colored graph for
// the motif legs (a ring with chords, colors i mod 3).
func labeledGraphRequest(name string) serve.GraphRequest {
	const n = 30
	var edges [][2]int32
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % n)})
	}
	for i := 0; i < n; i += 3 {
		edges = append(edges, [2]int32{int32(i), int32((i + 7) % n)})
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	return serve.GraphRequest{Name: name, N: n, Edges: edges, Labels: labels}
}

// TestFleetAnswersMatchSingleNode is the acceptance pin: a 3-replica
// fleet answers path, motif, and scanstat queries byte-identically to
// a single node, through every front — including fronts that do not
// own the shard and must forward.
func TestFleetAnswersMatchSingleNode(t *testing.T) {
	ref := newFleet(t, 1, 1, nil)
	big := newFleet(t, 3, 1, nil) // R=1: exactly one owner, two forwarding fronts

	ref.addRandomGraph(0, "rg", 60, 7)
	digest := big.addRandomGraph(0, "rg", 60, 7)
	postJSON(t, "http://"+ref.nodes[0].Addr()+"/v1/graphs", labeledGraphRequest("cg"))
	postJSON(t, "http://"+big.nodes[0].Addr()+"/v1/graphs", labeledGraphRequest("cg"))

	queries := []serve.QueryRequest{
		{Graph: "rg", Kind: serve.KindPath, K: 6, Seed: 3, Rounds: 2},
		{Graph: "rg", Kind: serve.KindScanStat, K: 4, ZMax: 3, Seed: 5, Rounds: 1, N2: 16},
		{Graph: "cg", Kind: serve.KindMotif, K: 4, Motif: map[string]int{"0": 2, "1": 1}, Seed: 3, Rounds: 2, N2: 16},
	}
	sawForward := false
	for _, q := range queries {
		want, _ := ref.runQuery(0, q)
		for i := range big.nodes {
			got, hdr := big.runQuery(i, q)
			if !bytes.Equal(resultJSON(t, got), resultJSON(t, want)) {
				t.Errorf("%s via node %d: fleet answer %s != single-node %s",
					q.Kind, i, resultJSON(t, got), resultJSON(t, want))
			}
			if hdr.Get(ServedByHeader) != "" {
				sawForward = true
			}
			if hdr.Get(serve.RequestIDHeader) == "" {
				t.Errorf("%s via node %d: no request id on response", q.Kind, i)
			}
		}
	}
	if !sawForward {
		t.Fatal("no query was forwarded — every front owned every shard?")
	}

	// The forwarded hop threads the front's request id: the owner's
	// flight recorder must show the same id the front returned.
	owner := big.indexOf(big.nodes[0].ownersOf(digest)[0])
	front := (owner + 1) % 3
	_, hdr := big.runQuery(front, serve.QueryRequest{Graph: "rg", Kind: serve.KindPath, K: 5, Seed: 11, Rounds: 1})
	reqID := hdr.Get(serve.RequestIDHeader)
	if reqID == "" {
		t.Fatal("forwarded query lost its request id")
	}
	debug := getBody(t, "http://"+big.nodes[owner].Addr()+"/v1/debug/requests")
	if !bytes.Contains(debug, []byte(reqID)) {
		t.Fatalf("owner's flight recorder does not show forwarded request %s", reqID)
	}
	if got := counterOf(big.nodes[front], obs.ClusterForwards); got < 1 {
		t.Fatalf("front forward counter %d, want >= 1", got)
	}
}

// TestPlacementAgreesAcrossFleet: every node derives the same owners
// for every cataloged graph, and the status/debug surfaces expose the
// fleet view.
func TestPlacementAgreesAcrossFleet(t *testing.T) {
	f := newFleet(t, 3, 2, nil)
	f.addRandomGraph(1, "rg", 50, 3)

	var want StatusView
	for i, n := range f.nodes {
		var sv StatusView
		if err := json.Unmarshal(getBody(t, "http://"+n.Addr()+"/v1/cluster/status"), &sv); err != nil {
			t.Fatalf("node %d status: %v", i, err)
		}
		if len(sv.Graphs) != 1 || sv.Graphs[0].Name != "rg" || len(sv.Graphs[0].Owners) != 2 {
			t.Fatalf("node %d placement view %+v", i, sv.Graphs)
		}
		if i == 0 {
			want = sv
			continue
		}
		if fmt.Sprint(sv.Graphs[0].Owners) != fmt.Sprint(want.Graphs[0].Owners) {
			t.Fatalf("node %d owners %v != node 0 owners %v", i, sv.Graphs[0].Owners, want.Graphs[0].Owners)
		}
	}
	// Owners adopted synchronously during the add: both hold the shard.
	for _, o := range want.Graphs[0].Owners {
		if _, _, _, ok := f.nodes[f.indexOf(o)].srv.LookupGraph("rg"); !ok {
			t.Fatalf("owner %s does not hold the shard after add", o)
		}
	}
	// The serve debug snapshot carries the cluster block.
	debug := getBody(t, "http://"+f.nodes[0].Addr()+"/v1/debug/requests")
	if !bytes.Contains(debug, []byte(`"cluster"`)) {
		t.Fatal("debug snapshot missing cluster block")
	}
	// /metrics exposes the fleet gauges.
	metrics := getBody(t, "http://"+f.nodes[0].Addr()+"/metrics")
	for _, name := range []string{
		"midas_cluster_members_alive", "midas_cluster_members_total",
		"midas_cluster_epoch", "midas_cluster_graphs_cataloged",
		"midas_cluster_replication_factor",
	} {
		if !bytes.Contains(metrics, []byte(name)) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

// TestKillOwnerMidQueryRetries is the failure-leg acceptance pin:
// killing a replica while it may be serving a forwarded query yields a
// successful answer from a surviving replica, not a 500.
func TestKillOwnerMidQueryRetries(t *testing.T) {
	ref := newFleet(t, 1, 1, nil)
	f := newFleet(t, 3, 2, nil)
	ref.addRandomGraph(0, "rg", 300, 9)
	digest := f.addRandomGraph(0, "rg", 300, 9)

	owners := f.nodes[0].ownersOf(digest)
	if len(owners) != 2 {
		t.Fatalf("owners %v, want 2", owners)
	}
	front := -1
	for i, n := range f.nodes {
		if n.Advertise() != owners[0] && n.Advertise() != owners[1] {
			front = i
		}
	}
	if front < 0 {
		t.Fatal("no non-owner front in a 3-node R=2 fleet")
	}

	q := serve.QueryRequest{Graph: "rg", Kind: serve.KindPath, K: 12, Seed: 21, Rounds: 1, N2: 32}
	want, _ := ref.runQuery(0, q)

	type answer struct {
		res *serve.Result
		hdr http.Header
	}
	done := make(chan answer, 1)
	go func() {
		res, hdr := f.runQuery(front, q)
		done <- answer{res, hdr}
	}()
	// Kill the first-ranked owner only once the forwarded query has
	// reached it (its replica-hit counter ticks at route time) — a
	// fixed sleep races with heartbeat death detection under the race
	// detector's slowdown, and a kill detected before the query is in
	// flight promotes the front instead of exercising the retry.
	o0 := f.nodes[f.indexOf(owners[0])]
	waitFor := time.Now().Add(30 * time.Second)
	for counterOf(o0, obs.ClusterReplicaHits) == 0 {
		if time.Now().After(waitFor) {
			for i, n := range f.nodes {
				t.Logf("node %d (%s): replica-hits=%d forwards=%d retries=%d",
					i, n.Advertise(), counterOf(n, obs.ClusterReplicaHits),
					counterOf(n, obs.ClusterForwards), counterOf(n, obs.ClusterForwardRetries))
			}
			t.Fatal("forwarded query never reached the owner")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // let the DP get properly mid-flight
	f.kill(f.indexOf(owners[0]))

	select {
	case a := <-done:
		if !bytes.Equal(resultJSON(t, a.res), resultJSON(t, want)) {
			t.Fatalf("retried answer %s != single-node %s", resultJSON(t, a.res), resultJSON(t, want))
		}
		if by := a.hdr.Get(ServedByHeader); by != owners[0] && by != owners[1] {
			t.Fatalf("served by %q, want one of %v", by, owners)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("query never finished after owner kill")
	}

	// The dead owner is soon declared dead, which re-places the shard:
	// in a 3-node R=2 fleet the front itself is promoted to owner.
	deadline := time.Now().Add(5 * time.Second)
	for {
		own := f.nodes[front].ownersOf(digest)
		promoted := false
		for _, o := range own {
			if o == owners[0] {
				promoted = false
				break
			}
			if o == f.nodes[front].Advertise() {
				promoted = true
			}
		}
		if promoted {
			// Wait for the rebalance handoff to land the shard too.
			if _, _, _, ok := f.nodes[front].srv.LookupGraph("rg"); ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("placement never recovered from the dead owner (owners %v)", own)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// And the re-placed shard serves: the promoted front answers
	// locally (no forward hop).
	res, hdr := f.runQuery(front, serve.QueryRequest{Graph: "rg", Kind: serve.KindPath, K: 6, Seed: 33, Rounds: 1})
	if res == nil || hdr.Get(ServedByHeader) != "" {
		t.Fatalf("promoted front did not serve locally (served by %q)", hdr.Get(ServedByHeader))
	}
}

// TestRebalancePullsShardFromOrigin: when a shard's only owner dies,
// the promoted member pulls the sealed bytes (a store handoff, counted
// and mmapped — not re-parsed) and starts serving.
func TestRebalancePullsShardFromOrigin(t *testing.T) {
	f := newFleet(t, 3, 1, nil)
	addrs := f.addrs()

	// Find a graph whose rendezvous order puts the adding node (0)
	// last: the owner dies, and the promoted second-ranked member must
	// pull from the origin.
	var digest uint64
	var seed uint64
	name := ""
	for s := uint64(1); s < 64; s++ {
		d := graph.RandomNLogN(40, s).Digest()
		rank := rendezvousRank(d, addrs)
		if rank[2] == f.nodes[0].Advertise() {
			seed, digest = s, d
			name = fmt.Sprintf("g%d", s)
			break
		}
	}
	if name == "" {
		t.Fatal("no seed ranked node 0 last; widen the search")
	}
	if got := f.addRandomGraph(0, name, 40, seed); got != digest {
		t.Fatalf("server digest %016x != local %016x", got, digest)
	}

	rank := rendezvousRank(digest, addrs)
	ownerIdx, nextIdx := f.indexOf(rank[0]), f.indexOf(rank[1])
	if _, _, _, ok := f.nodes[nextIdx].srv.LookupGraph(name); ok {
		t.Fatal("second-ranked member holds the shard before the owner died")
	}
	f.kill(ownerIdx)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, _, ok := f.nodes[nextIdx].srv.LookupGraph(name); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("promoted member never adopted the shard")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := counterOf(f.nodes[nextIdx], obs.ClusterHandoffs); got < 1 {
		t.Fatalf("handoff counter %d, want >= 1", got)
	}
	if !f.nodes[nextIdx].srv.Store().Has(digest) {
		t.Fatal("adopted shard not in the promoted member's store")
	}
	// And the promoted member answers for it.
	res, _ := f.runQuery(nextIdx, serve.QueryRequest{Graph: name, Kind: serve.KindPath, K: 5, Seed: 2, Rounds: 1})
	if res == nil {
		t.Fatal("no result from promoted member")
	}
}

// TestLeaseWorldMatchesInProcess: a ranks>1 query leased across the
// fleet returns the same answer as the single-node in-process world,
// and the peer really held a rank (its flight recorder shows the lease
// call).
func TestLeaseWorldMatchesInProcess(t *testing.T) {
	ref := newFleet(t, 1, 1, nil)
	f := newFleet(t, 2, 2, nil)
	ref.addRandomGraph(0, "rg", 80, 13)
	f.addRandomGraph(0, "rg", 80, 13)

	q := serve.QueryRequest{Graph: "rg", Kind: serve.KindPath, K: 8, Seed: 17, Rounds: 2, Ranks: 2, N1: 2, N2: 32}
	want, _ := ref.runQuery(0, q)
	got, _ := f.runQuery(0, q)
	if !bytes.Equal(resultJSON(t, got), resultJSON(t, want)) {
		t.Fatalf("leased answer %s != in-process %s", resultJSON(t, got), resultJSON(t, want))
	}
	for i, n := range f.nodes {
		if fails := counterOf(n, obs.ClusterLeaseFailures); fails != 0 {
			t.Fatalf("node %d lease failures %d, want 0", i, fails)
		}
	}
	if got := counterOf(f.nodes[1], obs.ClusterLeases); got < 1 {
		t.Fatalf("peer served %d leases — the world never left the process", got)
	}
}

// TestLeaseChaosDegradesInProcess: a lease world whose links are
// severed by the chaos schedule fails, is counted, and the query
// silently degrades to the in-process world with the same answer.
func TestLeaseChaosDegradesInProcess(t *testing.T) {
	spec, err := comm.ParseFaultSpec("sever=0-1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	ref := newFleet(t, 1, 1, nil)
	f := newFleet(t, 2, 2, func(i int, cfg *Config) {
		cfg.LeaseFault = &spec
		cfg.LeaseConnectTimeout = 2 * time.Second
	})
	ref.addRandomGraph(0, "rg", 80, 13)
	f.addRandomGraph(0, "rg", 80, 13)

	q := serve.QueryRequest{Graph: "rg", Kind: serve.KindPath, K: 8, Seed: 17, Rounds: 2, Ranks: 2, N1: 2, N2: 32}
	want, _ := ref.runQuery(0, q)
	got, _ := f.runQuery(0, q)
	if !bytes.Equal(resultJSON(t, got), resultJSON(t, want)) {
		t.Fatalf("degraded answer %s != in-process %s", resultJSON(t, got), resultJSON(t, want))
	}
	if fails := counterOf(f.nodes[0], obs.ClusterLeaseFailures); fails < 1 {
		t.Fatalf("coordinator lease failures %d, want >= 1", fails)
	}
}

// TestAutoTuneFillsPlan: cluster nodes auto-plan N2 (and N1 for
// distributed queries) from graph size and fleet load, so replicas
// derive the same plan and caches stay coherent.
func TestAutoTuneFillsPlan(t *testing.T) {
	f := newFleet(t, 1, 1, nil)
	f.addRandomGraph(0, "rg", 60, 7)
	// Identical query with and without an explicit N2 equal to the
	// auto-plan must hit the same cache entry: the plan is part of the
	// key, so a cache hit proves the auto-planner filled it the same.
	q := serve.QueryRequest{Graph: "rg", Kind: serve.KindPath, K: 6, Seed: 3, Rounds: 1}
	first, _ := f.runQuery(0, q)
	if first.Cached {
		t.Fatal("first query claims cached")
	}
	vertices := 0
	if _, v, _, ok := f.nodes[0].srv.LookupGraph("rg"); ok {
		vertices = v
	}
	_ = vertices
	q.N2 = 0 // still auto
	second, _ := f.runQuery(0, q)
	if !second.Cached {
		t.Fatal("identical auto-tuned query missed the cache — plan not deterministic")
	}
}

// TestStatusAndStrings sanity-checks the remaining small surfaces.
func TestStatusAndStrings(t *testing.T) {
	f := newFleet(t, 2, 2, nil)
	var sv StatusView
	if err := json.Unmarshal(getBody(t, "http://"+f.nodes[0].Addr()+"/v1/cluster/status"), &sv); err != nil {
		t.Fatal(err)
	}
	if sv.Self == "" || sv.Replicas != 2 || len(sv.Members) != 2 {
		t.Fatalf("status %+v", sv)
	}
	states := map[string]bool{}
	for _, m := range sv.Members {
		states[m.State] = true
	}
	if !states[StateAlive] {
		t.Fatalf("no alive members in %+v", sv.Members)
	}
	ping := getBody(t, "http://"+f.nodes[0].Addr()+"/v1/cluster/ping")
	if !strings.Contains(string(ping), `"ok":true`) {
		t.Fatalf("ping %s", ping)
	}
}
