package cluster

// Static-seed membership with heartbeat health. The member set is
// fixed at startup (the -peers seed list plus the node itself); what
// moves is each member's health state, probed by periodic pings:
//
//	alive ──miss──▶ suspect ──misses ≥ threshold──▶ dead
//	  ▲                                              │
//	  └──────────────── successful ping ─────────────┘
//
// Suspect members still own their shards (one dropped ping must not
// reshuffle the fleet); dead ones are filtered out of placement, which
// promotes the next member in rendezvous order. Every alive↔dead
// transition bumps the epoch — the rebalancer's trigger to re-examine
// which shards this node now owns.

import (
	"sort"
	"sync"
	"time"
)

// Member health states.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

type member struct {
	addr     string
	state    string
	misses   int
	lastSeen time.Time
}

// membership tracks the fleet's health. Safe for concurrent use.
type membership struct {
	mu      sync.Mutex
	self    string
	members map[string]*member
	order   []string // sorted static membership, placement input
	epoch   uint64
}

func newMembership(self string, peers []string) *membership {
	m := &membership{self: self, members: make(map[string]*member)}
	add := func(addr string) {
		if _, ok := m.members[addr]; ok {
			return
		}
		m.members[addr] = &member{addr: addr, state: StateAlive, lastSeen: time.Now()}
		m.order = append(m.order, addr)
	}
	add(self)
	for _, p := range peers {
		add(p)
	}
	sort.Strings(m.order)
	return m
}

// list returns the full static membership, sorted (placement input).
func (m *membership) list() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// alive reports whether addr may own shards (alive or suspect — only
// confirmed-dead members lose their placement).
func (m *membership) alive(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == m.self {
		return true
	}
	mem, ok := m.members[addr]
	return ok && mem.state != StateDead
}

// markAlive records a successful probe. Returns true when the member
// came back from the dead (an epoch-bumping placement change).
func (m *membership) markAlive(addr string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[addr]
	if !ok {
		return false
	}
	revived := mem.state == StateDead
	mem.state = StateAlive
	mem.misses = 0
	mem.lastSeen = time.Now()
	if revived {
		m.epoch++
	}
	return revived
}

// markMissed records a failed probe. Returns true when the miss count
// crossed the death threshold (an epoch-bumping placement change).
func (m *membership) markMissed(addr string, threshold int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[addr]
	if !ok || mem.state == StateDead {
		return false
	}
	mem.misses++
	if mem.misses >= threshold {
		mem.state = StateDead
		m.epoch++
		return true
	}
	mem.state = StateSuspect
	return false
}

// Epoch returns the current placement epoch (bumps on alive↔dead).
func (m *membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// MemberView is one member's health in the status API.
type MemberView struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Misses   int    `json:"misses,omitempty"`
	Self     bool   `json:"self,omitempty"`
	LastSeen string `json:"lastSeen,omitempty"`
}

func (m *membership) views() []MemberView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberView, 0, len(m.order))
	for _, addr := range m.order {
		mem := m.members[addr]
		v := MemberView{Addr: addr, State: mem.state, Misses: mem.misses, Self: addr == m.self}
		if !mem.lastSeen.IsZero() {
			v.LastSeen = mem.lastSeen.UTC().Format(time.RFC3339)
		}
		out = append(out, v)
	}
	return out
}

// counts returns (alive-or-suspect, total) for the gauges.
func (m *membership) counts() (live, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mem := range m.members {
		if mem.state != StateDead {
			live++
		}
	}
	return live, len(m.members)
}
