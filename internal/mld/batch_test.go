package mld

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// The batch contract: batched results are byte-identical to running
// each lane sequentially with the lane's own seeding — across mixed
// seeds, mixed k (prefix reuse), mixed templates, and mixed round
// counts. These tests pin that equivalence.

func TestDetectPathBatchMatchesSequential(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomGNM(20+r.Intn(15), 50+r.Intn(40), r.Uint64())
		var lanes []BatchLane
		for i := 0; i < 6; i++ {
			lanes = append(lanes, BatchLane{
				K:       1 + r.Intn(8),
				Seed:    r.Uint64(),
				Epsilon: []float64{0, 0.05, 0.2}[r.Intn(3)],
				Rounds:  r.Intn(3), // 0 = derive from epsilon
			})
		}
		opt := Options{N2: []int{0, 8, 32}[r.Intn(3)], Workers: r.Intn(3)}
		got, err := DetectPathBatch(g, lanes, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range lanes {
			want, err := DetectPath(g, l.K, laneOptions(opt, l))
			if err != nil {
				t.Fatal(err)
			}
			if got[i].Err != nil {
				t.Fatalf("trial %d lane %d: unexpected error %v", trial, i, got[i].Err)
			}
			if got[i].Found != want {
				t.Fatalf("trial %d lane %d (k=%d seed=%d): batch %v sequential %v",
					trial, i, l.K, l.Seed, got[i].Found, want)
			}
		}
	}
}

func TestDetectPathBatchRoundCountsMatchSequential(t *testing.T) {
	// A lane that needs several rounds must run exactly as many rounds
	// batched as it would sequentially (per-lane assignments per round).
	g := graph.Path(12)
	lanes := []BatchLane{
		{K: 4, Seed: 3, Rounds: 3},
		{K: 9, Seed: 4, Rounds: 2},
		{K: 13, Seed: 5, Rounds: 1}, // k > n: resolves immediately
	}
	res, err := DetectPathBatch(g, lanes, Options{N2: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Found || res[0].Rounds != 1 {
		// a path graph has every P_k ≤ n: found in round 1
		t.Fatalf("lane 0: found=%v rounds=%d, want found in 1 round", res[0].Found, res[0].Rounds)
	}
	if !res[1].Found {
		t.Fatalf("lane 1: P9 in P12 not found")
	}
	if res[2].Found || res[2].Rounds != 0 || res[2].Err != nil {
		t.Fatalf("lane 2 (k>n): got %+v, want immediate false", res[2])
	}
	if res[0].TotalPhases != (16+15)/16 || res[1].TotalPhases != (512+15)/16 {
		t.Fatalf("TotalPhases wrong: %d, %d", res[0].TotalPhases, res[1].TotalPhases)
	}
}

func TestDetectPathBatchLaneCancelMasksOnlyThatLane(t *testing.T) {
	g := graph.Grid(4, 4)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	lanes := []BatchLane{
		{K: 6, Seed: 1},
		{K: 7, Seed: 2, Ctx: cancelled},
		{K: 5, Seed: 3},
	}
	opt := Options{N2: 8}
	res, err := DetectPathBatch(g, lanes, opt)
	if err != nil {
		t.Fatal(err) // a lane cancel must not abort the batch
	}
	if !errors.Is(res[1].Err, context.Canceled) {
		t.Fatalf("cancelled lane error = %v, want context.Canceled", res[1].Err)
	}
	for _, i := range []int{0, 2} {
		want, _ := DetectPath(g, lanes[i].K, laneOptions(opt, lanes[i]))
		if res[i].Err != nil || res[i].Found != want {
			t.Fatalf("surviving lane %d: got (%v, %v), want (%v, nil)", i, res[i].Found, res[i].Err, want)
		}
	}
}

func TestDetectPathBatchWholeBatchCancel(t *testing.T) {
	g := graph.Grid(4, 4)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := DetectPathBatch(g, []BatchLane{{K: 6, Seed: 1}, {K: 5, Seed: 2}},
		Options{N2: 8, Ctx: cancelled})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	for i, lr := range res {
		if !errors.Is(lr.Err, context.Canceled) {
			t.Fatalf("lane %d error = %v, want context.Canceled", i, lr.Err)
		}
	}
}

func TestDetectPathBatchLaneCap(t *testing.T) {
	lanes := make([]BatchLane, MaxBatchLanes+1)
	for i := range lanes {
		lanes[i] = BatchLane{K: 3, Seed: uint64(i)}
	}
	if _, err := DetectPathBatch(graph.Path(5), lanes, Options{}); err == nil {
		t.Fatal("expected lane-cap error")
	}
}

func TestDetectPathBatchNonGF16FallsBack(t *testing.T) {
	g := graph.Grid(3, 3)
	lanes := []BatchLane{{K: 4, Seed: 1}, {K: 9, Seed: 2}, {K: 5, Seed: 3}}
	opt := Options{Variant: VariantKoutis, Rounds: 4}
	res, err := DetectPathBatch(g, lanes, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lanes {
		want, err := DetectPath(g, l.K, laneOptions(opt, l))
		if err != nil || res[i].Err != nil {
			t.Fatal(err, res[i].Err)
		}
		if res[i].Found != want {
			t.Fatalf("lane %d: batch %v sequential %v", i, res[i].Found, want)
		}
	}
}

func TestDetectTreeBatchMatchesSequential(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomGNM(14+r.Intn(8), 30+r.Intn(20), r.Uint64())
		tpls := []*graph.Template{
			graph.PathTemplate(3 + r.Intn(4)),
			graph.StarTemplate(4),
			graph.RandomTemplate(2+r.Intn(5), r.Uint64()),
		}
		var lanes []BatchLane
		for i := 0; i < 6; i++ {
			// repeat templates so lanes group, with distinct seeds
			lanes = append(lanes, BatchLane{Template: tpls[i%len(tpls)], Seed: r.Uint64(), Rounds: 1 + r.Intn(2)})
		}
		opt := Options{N2: 8, Workers: r.Intn(3)}
		got, err := DetectTreeBatch(g, lanes, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range lanes {
			want, err := DetectTree(g, l.Template, laneOptions(opt, l))
			if err != nil || got[i].Err != nil {
				t.Fatal(err, got[i].Err)
			}
			if got[i].Found != want {
				t.Fatalf("trial %d lane %d (k=%d): batch %v sequential %v",
					trial, i, l.Template.K(), got[i].Found, want)
			}
		}
	}
}

func TestDetectTreeBatchLaneCancel(t *testing.T) {
	g := graph.Grid(4, 4)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	lanes := []BatchLane{
		{Template: graph.PathTemplate(5), Seed: 1},
		{Template: graph.StarTemplate(4), Seed: 2, Ctx: cancelled},
	}
	opt := Options{N2: 8}
	res, err := DetectTreeBatch(g, lanes, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[1].Err, context.Canceled) {
		t.Fatalf("cancelled lane error = %v", res[1].Err)
	}
	want, _ := DetectTree(g, lanes[0].Template, laneOptions(opt, lanes[0]))
	if res[0].Err != nil || res[0].Found != want {
		t.Fatalf("surviving lane: got (%v, %v), want (%v, nil)", res[0].Found, res[0].Err, want)
	}
}

func TestScanTableBatchMatchesSequential(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 5; trial++ {
		n := 10 + r.Intn(6)
		g := graph.RandomGNM(n, 2*n, r.Uint64())
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(3))
		}
		g.SetWeights(w)
		lanes := []BatchLane{
			{K: 2 + r.Intn(3), ZMax: int64(2 + r.Intn(4)), Seed: r.Uint64(), Rounds: 1},
			{K: 2 + r.Intn(4), ZMax: int64(1 + r.Intn(5)), Seed: r.Uint64(), Rounds: 2},
			{K: 1 + r.Intn(2), ZMax: 3, Seed: r.Uint64(), Epsilon: 0.1},
		}
		opt := Options{N2: 8, Workers: r.Intn(3)}
		got, err := ScanTableBatch(g, lanes, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range lanes {
			want, err := ScanTable(g, l.K, l.ZMax, laneOptions(opt, l))
			if err != nil || got[i].Err != nil {
				t.Fatal(err, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Table, want) {
				t.Fatalf("trial %d lane %d (k=%d zmax=%d): tables differ\nbatch: %v\nseq:   %v",
					trial, i, l.K, l.ZMax, got[i].Table, want)
			}
		}
	}
}

func TestScanTableBatchLaneCancel(t *testing.T) {
	g := graph.Grid(3, 3)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	lanes := []BatchLane{
		{K: 3, ZMax: 2, Seed: 1},
		{K: 4, ZMax: 2, Seed: 2, Ctx: cancelled},
	}
	opt := Options{N2: 4}
	res, err := ScanTableBatch(g, lanes, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[1].Err, context.Canceled) || res[1].Table != nil {
		t.Fatalf("cancelled lane: err=%v table=%v", res[1].Err, res[1].Table)
	}
	want, _ := ScanTable(g, 3, 2, laneOptions(opt, lanes[0]))
	if res[0].Err != nil || !reflect.DeepEqual(res[0].Table, want) {
		t.Fatalf("surviving lane table differs")
	}
}

func TestBatchMixedKPrefixReuse(t *testing.T) {
	// The deepest lane drives the sweep; shallower lanes must still see
	// exactly their own 2^k iteration space (Gray-prefix bijection).
	// Pin this by checking a shallow lane inside a deep batch against
	// its solo sequential run across many seeds.
	g := graph.RandomGNM(18, 40, 5)
	opt := Options{N2: 32}
	for seed := uint64(0); seed < 12; seed++ {
		lanes := []BatchLane{
			{K: 2, Seed: seed, Rounds: 1},
			{K: 10, Seed: seed + 100, Rounds: 1},
		}
		res, err := DetectPathBatch(g, lanes, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range lanes {
			want, _ := DetectPath(g, l.K, laneOptions(opt, l))
			if res[i].Found != want {
				t.Fatalf("seed %d lane %d: batch %v sequential %v", seed, i, res[i].Found, want)
			}
		}
	}
}
