package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// koutisPathRoundModulo is the pre-optimization koutisPathRound with the
// literal `% mod` reductions, kept verbatim as the reference for
// TestKoutisMaskMatchesModulo. The production code masks with mod-1
// instead (mod = 2^(k+1) is always a power of two).
func koutisPathRoundModulo(g *graph.Graph, k int, opt Options, round int) uint64 {
	n := g.NumVertices()
	a := NewKoutisAssignment(n, k, opt.Seed, round)
	mod := a.Mod
	iters := uint64(1) << uint(k)
	base := make([]uint64, n)
	prev := make([]uint64, n)
	cur := make([]uint64, n)
	var total uint64
	for t := uint64(0); t < iters; t++ {
		for i := 0; i < n; i++ {
			base[i] = a.Base(int32(i), t)
			prev[i] = base[i]
		}
		for j := 2; j <= k; j++ {
			for i := int32(0); i < int32(n); i++ {
				var acc uint64
				for _, u := range g.Neighbors(i) {
					r := uint64(1)
					if !opt.NoFingerprints {
						r = a.edgeCoeffModulo(u, i, j)
					}
					acc = (acc + r*prev[u]) % mod
				}
				cur[i] = (acc * base[i]) % mod
			}
			prev, cur = cur, prev
		}
		for i := 0; i < n; i++ {
			total = (total + prev[i]) % mod
		}
	}
	return total
}

// edgeCoeffModulo is KoutisAssignment.EdgeCoeff with the original `%`
// reduction (the hash is uniform, so `h % 2^(k+1)` and `h & (2^(k+1)-1)`
// select the same low bits — this pins that equivalence explicitly).
func (a *KoutisAssignment) edgeCoeffModulo(u, i int32, level int) uint64 {
	return rng.Hash2(a.Seed, uint64(uint32(u))<<32|uint64(uint32(i)), uint64(level)) % a.Mod
}

// TestKoutisMaskMatchesModulo pins the masked koutisPathRound against
// the literal-modulo reference on seeded random graphs: the traces must
// be identical bit for bit, round by round.
func TestKoutisMaskMatchesModulo(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 25; trial++ {
		n := 5 + r.Intn(8)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(5)
		opt := Options{Seed: r.Uint64()}
		if trial%5 == 0 {
			opt.NoFingerprints = true
		}
		for round := 0; round < 3; round++ {
			got := koutisPathRound(g, k, opt, round)
			want := koutisPathRoundModulo(g, k, opt, round)
			if got != want {
				t.Fatalf("trial %d round %d: n=%d k=%d masked trace %d != modulo trace %d",
					trial, round, n, k, got, want)
			}
		}
	}
}
