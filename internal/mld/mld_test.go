package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/galois"
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// --- DetectPath vs brute force ---

func TestDetectPathKnownGraphs(t *testing.T) {
	opt := Options{Seed: 1}
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"P6 has P6", graph.Path(6), 6, true},
		{"P6 lacks P7", graph.Path(6), 7, false},
		{"C5 has P5", graph.Cycle(5), 5, true},
		{"star lacks P4", graph.Star(10), 4, false},
		{"star has P3", graph.Star(10), 3, true},
		{"K5 has P5", graph.Complete(5), 5, true},
		{"grid has P9", graph.Grid(3, 3), 9, true},
		{"single vertex k=1", graph.Path(1), 1, true},
		{"k exceeds n", graph.Path(3), 4, false},
		{"single edge k=2", graph.Path(2), 2, true},
	}
	for _, tc := range cases {
		got, err := DetectPath(tc.g, tc.k, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestDetectPathMatchesBruteForce(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 40; trial++ {
		n := 6 + r.Intn(8)
		m := r.Intn(2 * n)
		g := graph.RandomGNM(n, min(m, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(5)
		want := graph.HasPathOfLength(g, k)
		got, err := DetectPath(g, k, Options{Seed: r.Uint64(), Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: n=%d m=%d k=%d: detect %v, brute %v", trial, n, g.NumEdges(), k, got, want)
		}
	}
}

func TestDetectPathOneSided(t *testing.T) {
	// "no" instances must answer no for every seed: without a k-path
	// the full-support coefficient is identically zero.
	g := graph.Star(8) // no P4
	for seed := uint64(0); seed < 30; seed++ {
		got, err := DetectPath(g, 4, Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("seed %d: false positive on star", seed)
		}
	}
}

func TestDetectPathKoutisVariant(t *testing.T) {
	r := rng.New(20)
	for trial := 0; trial < 15; trial++ {
		n := 6 + r.Intn(6)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(4)
		want := graph.HasPathOfLength(g, k)
		got, err := DetectPath(g, k, Options{Seed: r.Uint64(), Variant: VariantKoutis, Epsilon: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("koutis trial %d: k=%d got %v want %v", trial, k, got, want)
		}
	}
	// one-sidedness for Koutis too
	for seed := uint64(0); seed < 10; seed++ {
		got, _ := DetectPath(graph.Star(8), 4, Options{Seed: seed, Variant: VariantKoutis, Rounds: 1})
		if got {
			t.Fatalf("koutis false positive, seed %d", seed)
		}
	}
}

func TestDetectPathValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := DetectPath(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := DetectPath(g, MaxK+1, Options{}); err == nil {
		t.Fatal("k>MaxK accepted")
	}
}

// TestNaiveCancellation demonstrates why Algorithm 1 verbatim is unsound
// on undirected graphs: with fingerprints disabled, the two orientations
// of every path cancel and the single-edge graph is reported path-free
// for every seed. This is the failure DESIGN.md §2 documents.
func TestNaiveCancellation(t *testing.T) {
	g := graph.Path(2) // one edge: a 2-path obviously exists
	for seed := uint64(0); seed < 20; seed++ {
		got, err := DetectPath(g, 2, Options{Seed: seed, NoFingerprints: true, Rounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("seed %d: naive evaluation unexpectedly survived cancellation", seed)
		}
		// and the fix works:
		got, err = DetectPath(g, 2, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatalf("seed %d: fingerprinted evaluation missed the edge", seed)
		}
	}
}

// TestBatchingInvariance: the round total is a mathematical quantity
// independent of batching and Gray-code strategy.
func TestBatchingInvariance(t *testing.T) {
	g := graph.RandomGNM(20, 50, 5)
	const k = 5
	a := NewAssignment(g.NumVertices(), k, 99, 0, tagPath)
	ref := mustPathRound(t, g, a, Options{N2: 1})
	for _, n2 := range []int{2, 3, 7, 16, 32, 1 << k} {
		if got := mustPathRound(t, g, a, Options{N2: n2}); got != ref {
			t.Fatalf("N2=%d: total %#x != reference %#x", n2, got, ref)
		}
	}
	if got := mustPathRound(t, g, a, Options{N2: 8, NoGray: true}); got != ref {
		t.Fatalf("NoGray: total %#x != reference %#x", got, ref)
	}
}

// mustPathRound / mustTreeRound unwrap the (total, error) round results
// for tests that never attach a context (the only error source).
func mustPathRound(t *testing.T, g *graph.Graph, a *Assignment, opt Options) gf.Elem {
	t.Helper()
	total, err := pathRound(g, a, opt)
	if err != nil {
		t.Fatalf("pathRound: %v", err)
	}
	return total
}

func mustTreeRound(t *testing.T, g *graph.Graph, d *graph.Decomposition, a *Assignment, opt Options) gf.Elem {
	t.Helper()
	total, err := treeRound(g, d, a, opt)
	if err != nil {
		t.Fatalf("treeRound: %v", err)
	}
	return total
}

// TestPathRoundMatchesSymbolicOracle builds the k-path polynomial
// explicitly in the galois.OrPoly algebra with the *same* assignment and
// fingerprints, and checks that the 2^k-iteration scalar evaluation
// equals the symbolic full-support coefficient. This ties the fast
// implementation to the proven algebra identity end to end.
func TestPathRoundMatchesSymbolicOracle(t *testing.T) {
	g := graph.RandomGNM(8, 14, 3)
	const k = 4
	a := NewAssignment(g.NumVertices(), k, 42, 0, tagPath)
	n := g.NumVertices()

	vars := make([]*galois.OrPoly, n)
	for i := 0; i < n; i++ {
		u := make([]gf.Elem, k)
		for j := 0; j < k; j++ {
			u[j] = a.U(int32(i), j)
		}
		vars[i] = galois.OrVariable(k, u)
	}
	prev := make([]*galois.OrPoly, n)
	for i := range prev {
		prev[i] = vars[i]
	}
	for j := 2; j <= k; j++ {
		cur := make([]*galois.OrPoly, n)
		for i := int32(0); i < int32(n); i++ {
			sum := galois.NewOrPoly(k)
			for _, u := range g.Neighbors(i) {
				sum = sum.Add(prev[u].MulScalar(a.EdgeCoeff(u, i, j)))
			}
			cur[i] = vars[i].Mul(sum)
		}
		prev = cur
	}
	total := galois.NewOrPoly(k)
	for i := 0; i < n; i++ {
		total = total.Add(prev[i])
	}
	want := total.FullCoeff()
	got := mustPathRound(t, g, a, Options{N2: 4})
	if got != want {
		t.Fatalf("scalar evaluation %#x != symbolic coefficient %#x", got, want)
	}
}

// TestKoutisRoundMatchesGroupAlgebraOracle does the same for the integer
// variant against the explicit Z[Z2^k] group algebra.
func TestKoutisRoundMatchesGroupAlgebraOracle(t *testing.T) {
	g := graph.RandomGNM(7, 12, 8)
	const k = 3
	opt := Options{Seed: 17}
	a := NewKoutisAssignment(g.NumVertices(), k, opt.Seed, 0)
	n := g.NumVertices()

	vars := make([]*galois.GroupAlg, n)
	for i := 0; i < n; i++ {
		vars[i] = galois.GroupVariable(k, a.v[i])
	}
	prev := make([]*galois.GroupAlg, n)
	copy(prev, vars)
	for j := 2; j <= k; j++ {
		cur := make([]*galois.GroupAlg, n)
		for i := int32(0); i < int32(n); i++ {
			sum := galois.NewGroupAlg(k)
			for _, u := range g.Neighbors(i) {
				sum = sum.Add(prev[u].MulScalar(a.EdgeCoeff(u, i, j)))
			}
			cur[i] = vars[i].Mul(sum)
		}
		prev = cur
	}
	total := galois.NewGroupAlg(k)
	for i := 0; i < n; i++ {
		total = total.Add(prev[i])
	}
	want := total.TraceXor()
	got := koutisPathRound(g, k, opt, 0)
	if got != want {
		t.Fatalf("koutis scalar trace %d != symbolic trace %d", got, want)
	}
}

// --- assignment internals ---

func TestFillBaseGrayMatchesNaive(t *testing.T) {
	a := NewAssignment(5, 6, 7, 0, tagPath)
	for _, q0 := range []uint64{0, 5, 13, 60} {
		for _, n2 := range []int{1, 3, 4} {
			if q0+uint64(n2) > 64 {
				continue
			}
			got := make([]gf.Elem, n2)
			want := make([]gf.Elem, n2)
			for i := int32(0); i < 5; i++ {
				a.FillBase(got, i, q0, false)
				a.FillBase(want, i, q0, true)
				for q := range got {
					if got[q] != want[q] {
						t.Fatalf("vertex %d q0=%d n2=%d q=%d: gray %#x naive %#x", i, q0, n2, q, got[q], want[q])
					}
				}
			}
		}
	}
}

func TestVertexValueIsMaskXor(t *testing.T) {
	a := NewAssignment(3, 4, 9, 0, tagPath)
	for i := int32(0); i < 3; i++ {
		for mask := uint64(0); mask < 16; mask++ {
			var want gf.Elem
			for j := 0; j < 4; j++ {
				if mask&(1<<uint(j)) != 0 {
					want ^= a.U(i, j)
				}
			}
			if got := a.VertexValue(i, mask); got != want {
				t.Fatalf("VertexValue(%d, %b) = %#x want %#x", i, mask, got, want)
			}
		}
	}
}

func TestAssignmentDeterministicAndRoundSeparated(t *testing.T) {
	a1 := NewAssignment(10, 5, 3, 0, tagPath)
	a2 := NewAssignment(10, 5, 3, 0, tagPath)
	if a1.U(4, 2) != a2.U(4, 2) || a1.EdgeCoeff(1, 2, 3) != a2.EdgeCoeff(1, 2, 3) {
		t.Fatal("assignment not deterministic")
	}
	b := NewAssignment(10, 5, 3, 1, tagPath)
	diff := 0
	for i := int32(0); i < 10; i++ {
		for j := 0; j < 5; j++ {
			if a1.U(i, j) != b.U(i, j) {
				diff++
			}
		}
	}
	if diff < 40 {
		t.Fatalf("rounds share randomness: only %d/50 entries differ", diff)
	}
	c := NewAssignment(10, 5, 3, 0, tagTree)
	if a1.EdgeCoeff(1, 2, 3) == c.EdgeCoeff(1, 2, 3) && a1.U(0, 0) == c.U(0, 0) {
		t.Fatal("algorithm tags share randomness")
	}
}

func TestEdgeCoeffAsymmetric(t *testing.T) {
	a := NewAssignment(10, 5, 3, 0, tagPath)
	sym := 0
	for u := int32(0); u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if a.EdgeCoeff(u, v, 2) == a.EdgeCoeff(v, u, 2) {
				sym++
			}
		}
	}
	if sym > 2 {
		t.Fatalf("%d/45 edge coefficients symmetric; orientation breaking broken", sym)
	}
}

func TestKoutisBaseValues(t *testing.T) {
	a := NewKoutisAssignment(4, 5, 11, 0)
	for i := int32(0); i < 4; i++ {
		for tt := uint64(0); tt < 32; tt++ {
			got := a.Base(i, tt)
			if got != 0 && got != 2 {
				t.Fatalf("base value %d", got)
			}
			want := uint64(2)
			if popcount64(a.v[i]&tt)%2 == 1 {
				want = 0
			}
			if got != want {
				t.Fatalf("Base(%d,%d) = %d want %d", i, tt, got, want)
			}
		}
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestGrayProperties(t *testing.T) {
	seen := map[uint64]bool{}
	for q := uint64(0); q < 256; q++ {
		g := gray(q)
		if seen[g] {
			t.Fatalf("gray not injective at %d", q)
		}
		seen[g] = true
		if q < 255 {
			if diff := g ^ gray(q+1); popcount64(diff) != 1 {
				t.Fatalf("gray(%d) and gray(%d) differ in %d bits", q, q+1, popcount64(diff))
			}
			if diff := g ^ gray(q+1); diff != 1<<uint(flipBit(q)) {
				t.Fatalf("flipBit(%d) wrong", q)
			}
		}
	}
}

func TestRoundsFor(t *testing.T) {
	if r := (Options{}).RoundsFor(10); r != 1 {
		t.Fatalf("GF default rounds %d, want 1 (per-round failure ~3e-4)", r)
	}
	if r := (Options{Variant: VariantKoutis}).RoundsFor(10); r < 10 {
		t.Fatalf("Koutis rounds %d implausibly low for ε=0.05", r)
	}
	if r := (Options{Rounds: 7}).RoundsFor(10); r != 7 {
		t.Fatal("explicit rounds ignored")
	}
	if r := (Options{Epsilon: 1e-12}).RoundsFor(10); r < 2 {
		t.Fatalf("tiny epsilon should need >1 GF round, got %d", r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestWorkersInvariance: shared-memory workers must not change any
// round total (vertex ranges write disjoint rows).
func TestWorkersInvariance(t *testing.T) {
	g := graph.RandomGNM(40, 120, 14)
	const k = 6
	a := NewAssignment(g.NumVertices(), k, 5, 0, tagPath)
	ref := mustPathRound(t, g, a, Options{N2: 8})
	for _, w := range []int{2, 3, 8} {
		if got := mustPathRound(t, g, a, Options{N2: 8, Workers: w}); got != ref {
			t.Fatalf("workers=%d changed path total: %#x != %#x", w, got, ref)
		}
	}
	tpl := graph.RandomTemplate(5, 3)
	d := tpl.Decompose()
	at := NewAssignment(g.NumVertices(), 5, 5, 0, tagTree)
	refT := mustTreeRound(t, g, d, at, Options{N2: 8})
	for _, w := range []int{2, 4} {
		if got := mustTreeRound(t, g, d, at, Options{N2: 8, Workers: w}); got != refT {
			t.Fatalf("workers=%d changed tree total: %#x != %#x", w, got, refT)
		}
	}
}

// TestDetectPathWithWorkersMatchesBruteForce runs the full detector in
// parallel mode against the oracle.
func TestDetectPathWithWorkersMatchesBruteForce(t *testing.T) {
	r := rng.New(15)
	for trial := 0; trial < 10; trial++ {
		n := 8 + r.Intn(6)
		g := graph.RandomGNM(n, 2*n, r.Uint64())
		k := 3 + r.Intn(3)
		want := graph.HasPathOfLength(g, k)
		got, err := DetectPath(g, k, Options{Seed: r.Uint64(), Epsilon: 1e-4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
}
