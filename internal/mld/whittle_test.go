package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

// plantedPathGraph builds `tris` disjoint triangles (whose longest
// simple path has 3 vertices) plus one planted path on `k` extra
// vertices — so the ONLY k-path, as a vertex set, is the planted one.
func plantedPathGraph(tris, k int) (*graph.Graph, []int32) {
	n := 3*tris + k
	b := graph.NewBuilder(n)
	for t := 0; t < tris; t++ {
		a := int32(3 * t)
		b.AddEdge(a, a+1)
		b.AddEdge(a+1, a+2)
		b.AddEdge(a, a+2)
	}
	witness := make([]int32, k)
	for i := 0; i < k; i++ {
		witness[i] = int32(3*tris + i)
		if i > 0 {
			b.AddEdge(witness[i-1], witness[i])
		}
	}
	return b.Build(), witness
}

// TestWhittleUniqueWitness plants a unique witness in a larger graph
// and checks the whittler isolates it instead of stalling — the
// regression case behind the locking design: deleting any random batch
// almost surely destroys a unique witness, so a naive halving loop gives
// up with a large remnant.
func TestWhittleUniqueWitness(t *testing.T) {
	g, witness := plantedPathGraph(40, 6) // 126 vertices, unique 6-path
	oracle := func(sub *graph.Graph) (bool, error) {
		return DetectPath(sub, 6, Options{Seed: 5, Epsilon: 1e-6})
	}
	remnant, toOld, err := Whittle(g, 7, 10, oracle)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := oracle(remnant)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("whittle destroyed the witness")
	}
	if remnant.NumVertices() > 12 {
		t.Fatalf("whittle stalled with %d vertices (unique witness has 6)", remnant.NumVertices())
	}
	if len(toOld) != remnant.NumVertices() {
		t.Fatalf("mapping length %d vs %d vertices", len(toOld), remnant.NumVertices())
	}
	present := map[int32]bool{}
	for _, v := range toOld {
		present[v] = true
	}
	for _, need := range witness {
		if !present[need] {
			t.Fatalf("witness vertex %d missing from remnant (have %v)", need, toOld)
		}
	}
}

// TestExtractPathUniqueWitness runs the full extraction on the planted
// instance: it must return exactly the planted vertices.
func TestExtractPathUniqueWitness(t *testing.T) {
	g, witness := plantedPathGraph(25, 7)
	path, err := ExtractPath(g, 7, Options{Seed: 3, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32]bool{}
	for _, v := range witness {
		want[v] = true
	}
	if len(path) != 7 {
		t.Fatalf("extracted %d vertices", len(path))
	}
	for _, v := range path {
		if !want[v] {
			t.Fatalf("extracted %v, expected exactly the planted path %v", path, witness)
		}
	}
}
