package mld

import (
	"context"
	"math/rand"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

// randomLabeled builds the trial's labeled graph; deterministic per
// (trial) so failures replay.
func randomLabeled(r *rand.Rand, trial int) (*graph.Graph, int) {
	n := 4 + r.Intn(8)
	m := r.Intn(n * (n - 1) / 2)
	g := graph.RandomGNM(n, m, uint64(trial))
	nc := 1 + r.Intn(3)
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(r.Intn(nc))
	}
	g.SetLabels(labels)
	return g, nc
}

// randomSpec draws a constraint: possibly empty, possibly partial,
// possibly exact (counts summing to k).
func randomSpec(r *rand.Rand, n, nc int) *MotifSpec {
	k := 1 + r.Intn(5)
	if k > n {
		k = n
	}
	counts := map[int32]int{}
	budget := k
	for c := 0; c < nc && budget > 0; c++ {
		if r.Intn(2) == 0 {
			m := 1 + r.Intn(budget)
			counts[int32(c)] = m
			budget -= m
		}
	}
	return &MotifSpec{K: k, Counts: counts}
}

// TestDetectMotifMatchesBruteForce is the differential property test:
// on 600 random labeled graphs with random multiset constraints, the
// constrained sieve must agree with exhaustive connected-subgraph
// enumeration. Three rounds put the per-case false-negative chance
// below ((2k+2)/2^16)^3 ≈ 1e-11; a single disagreement is a bug, not
// noise.
func TestDetectMotifMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 600; trial++ {
		g, nc := randomLabeled(r, trial)
		spec := randomSpec(r, g.NumVertices(), nc)
		want := BruteMotif(g, spec)
		got, err := DetectMotif(g, spec, Options{Seed: uint64(trial), Rounds: 3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: detect=%v brute=%v (n=%d k=%d counts=%v exact=%v)",
				trial, got, want, g.NumVertices(), spec.K, spec.Counts, spec.Exact())
		}
	}
}

// TestDetectMotifExactConstraint pins the Σ counts = K semantics:
// unlisted colors are excluded outright, so a graph whose only
// connected k-subgraphs touch an unlisted color must answer no.
func TestDetectMotifExactConstraint(t *testing.T) {
	// Path 0–1–2 colored 0,1,0. Exact {0:2} (K=2) demands a connected
	// pair of two 0s — none is adjacent. Partial {0:1} with K=2 allows
	// the 1-colored middle vertex as the wildcard-free... with one
	// wildcard slot, and succeeds.
	g := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	g.SetLabels([]int32{0, 1, 0})
	opt := Options{Seed: 5, Rounds: 4}

	found, err := DetectMotif(g, &MotifSpec{K: 2, Counts: map[int32]int{0: 2}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("exact {0:2}: no adjacent pair of 0-colored vertices exists, but detect said yes")
	}
	found, err = DetectMotif(g, &MotifSpec{K: 2, Counts: map[int32]int{0: 1}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("partial {0:1}: edge (0,1) has a 0-colored endpoint, but detect said no")
	}
}

func TestMotifSpecValidate(t *testing.T) {
	cases := []struct {
		spec *MotifSpec
		ok   bool
	}{
		{nil, false},
		{&MotifSpec{K: 0}, false},
		{&MotifSpec{K: 3}, true},
		{&MotifSpec{K: 3, Counts: map[int32]int{0: 0}}, false},
		{&MotifSpec{K: 3, Counts: map[int32]int{0: -1}}, false},
		{&MotifSpec{K: 3, Counts: map[int32]int{0: 2, 1: 2}}, false}, // sum 4 > 3
		{&MotifSpec{K: 3, Counts: map[int32]int{0: 2, 1: 1}}, true},  // exact
	}
	for i, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d (%+v): err=%v want ok=%v", i, c.spec, err, c.ok)
		}
	}
}

// TestDetectMotifBatchMatchesSequential: heterogeneous motif lanes
// (different k, constraints, seeds) batched together answer exactly as
// their solo runs.
func TestDetectMotifBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g, nc := randomLabeled(r, 99)
	for g.NumEdges() < 6 { // want a non-trivial instance
		g, nc = randomLabeled(r, 99+r.Intn(1000))
	}
	var lanes []BatchLane
	for i := 0; i < 7; i++ {
		spec := randomSpec(r, g.NumVertices(), nc)
		lanes = append(lanes, BatchLane{Motif: spec, Seed: uint64(100 + i), Rounds: 2})
	}
	res, err := DetectMotifBatch(g, lanes, Options{N2: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lanes {
		want, err := DetectMotif(g, l.Motif, Options{Seed: l.Seed, Rounds: l.Rounds})
		if err != nil {
			t.Fatal(err)
		}
		if res[i].Err != nil {
			t.Fatalf("lane %d: %v", i, res[i].Err)
		}
		if res[i].Found != want {
			t.Fatalf("lane %d (k=%d counts=%v): batch=%v solo=%v",
				i, l.Motif.K, l.Motif.Counts, res[i].Found, want)
		}
	}
}

// TestDetectMotifBatchLaneErrors: invalid lanes fail alone; a k > n
// lane resolves to not-found without poisoning its batch-mates.
func TestDetectMotifBatchLaneErrors(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	g.SetLabels([]int32{0, 0, 1, 1})
	lanes := []BatchLane{
		{Motif: &MotifSpec{K: 3}, Seed: 1, Rounds: 2},                                    // fine
		{Motif: &MotifSpec{K: 2, Counts: map[int32]int{0: 5}}, Seed: 2},                  // invalid
		{Motif: &MotifSpec{K: 9}, Seed: 3},                                               // k > n
		{Motif: &MotifSpec{K: 2, Counts: map[int32]int{0: 1, 1: 1}}, Seed: 4, Rounds: 2}, // fine
	}
	res, err := DetectMotifBatch(g, lanes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || !res[0].Found {
		t.Fatalf("lane 0: %+v, want found", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("invalid lane 1 carried no error")
	}
	if res[2].Err != nil || res[2].Found {
		t.Fatalf("k>n lane 2: %+v, want quiet not-found", res[2])
	}
	if res[3].Err != nil || !res[3].Found {
		t.Fatalf("lane 3: %+v, want found (edge 1–2 is 0,1-colored)", res[3])
	}
}

// TestDetectMotifCancel: an expired context aborts the sweep with its
// error, both solo and as a batch lane (where batch-mates survive).
func TestDetectMotifCancel(t *testing.T) {
	g := graph.RandomGNM(80, 320, 11)
	g.SetLabels(make([]int32, 80)) // all color 0
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := &MotifSpec{K: 14, Counts: map[int32]int{0: 14}}
	if _, err := DetectMotif(g, spec, Options{Rounds: 1, Ctx: ctx}); err != context.Canceled {
		t.Fatalf("solo cancel: err=%v, want context.Canceled", err)
	}
	lanes := []BatchLane{
		{Motif: spec, Seed: 1, Rounds: 1, Ctx: ctx},
		{Motif: &MotifSpec{K: 4}, Seed: 2, Rounds: 1},
	}
	res, err := DetectMotifBatch(g, lanes, Options{N2: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != context.Canceled {
		t.Fatalf("cancelled lane: err=%v, want context.Canceled", res[0].Err)
	}
	want, _ := DetectMotif(g, lanes[1].Motif, Options{Seed: 2, Rounds: 1})
	if res[1].Err != nil || res[1].Found != want {
		t.Fatalf("surviving lane: %+v, solo %v", res[1], want)
	}
}

// TestMotifAssignmentPurity: the constrained assignment is a pure
// function of (graph labels, spec, seed, round) — two constructions
// agree cell-for-cell, and constrained columns outside a vertex's
// block/wildcard range are exactly zero.
func TestMotifAssignmentPurity(t *testing.T) {
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	g.SetLabels([]int32{0, 1, 2, 1, 0})
	spec := &MotifSpec{K: 4, Counts: map[int32]int{0: 1, 2: 1}}
	a := NewMotifAssignment(g, spec, 7, 3)
	b := NewMotifAssignment(g, spec, 7, 3)
	for i := int32(0); i < 5; i++ {
		for j := 0; j < spec.K; j++ {
			if a.U(i, j) != b.U(i, j) {
				t.Fatalf("u[%d][%d] differs between identical constructions", i, j)
			}
		}
	}
	// Layout: color 0 owns column 0, color 2 owns column 1, columns 2–3
	// are wildcards. A 1-colored vertex (unlisted) must be zero in both
	// dedicated blocks; a 0-colored vertex must be zero in color 2's.
	for j := 0; j < 2; j++ {
		if a.U(1, j) != 0 {
			t.Fatalf("unlisted-color vertex has nonzero dedicated column %d", j)
		}
	}
	if a.U(0, 1) != 0 {
		t.Fatal("color-0 vertex has nonzero value in color-2's block")
	}
	if a.U(0, 0) == 0 && a.U(0, 2) == 0 && a.U(0, 3) == 0 {
		t.Fatal("color-0 vertex is zero everywhere it is allowed")
	}
}

// FuzzMotifVsBruteForce is the fuzzing face of the differential
// harness: arbitrary bytes pick the graph, coloring, and constraint;
// the sieve must agree with brute force. Rounds=3 keeps the per-case
// false-negative probability ≈ 1e-11, far below what any fuzz budget
// reaches.
func FuzzMotifVsBruteForce(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(42), uint64(0))
	f.Add(uint64(0xFFFFFFFF), uint64(0xFFFF))
	f.Add(uint64(7), uint64(1<<40))
	f.Fuzz(func(t *testing.T, s1, s2 uint64) {
		r := rand.New(rand.NewSource(int64(s1 ^ s2*0x9E3779B97F4A7C15)))
		n := 3 + r.Intn(10) // n ≤ 12: brute force stays instant
		m := r.Intn(n*(n-1)/2 + 1)
		g := graph.RandomGNM(n, m, s1)
		nc := 1 + r.Intn(4)
		labels := make([]int32, n)
		for i := range labels {
			labels[i] = int32(r.Intn(nc))
		}
		g.SetLabels(labels)
		spec := randomSpec(r, n, nc)
		want := BruteMotif(g, spec)
		got, err := DetectMotif(g, spec, Options{Seed: s2, Rounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("detect=%v brute=%v (n=%d m=%d k=%d counts=%v labels=%v)",
				got, want, n, g.NumEdges(), spec.K, spec.Counts, labels)
		}
	})
}
