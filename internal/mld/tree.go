package mld

import (
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// DetectTree decides whether the tree template has a non-induced
// embedding in g, with one-sided failure probability at most
// opt.Epsilon. The template polynomial is built from the recursive
// decomposition of paper Fig 2 and evaluated exactly like the path
// polynomial, one subtree per DP "level".
func DetectTree(g *graph.Graph, tpl *graph.Template, opt Options) (bool, error) {
	k := tpl.K()
	if err := validateK(k, g.NumVertices()); err != nil {
		return false, err
	}
	if k > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	d := tpl.Decompose()
	rounds := opt.RoundsFor(k)
	for round := 0; round < rounds; round++ {
		if err := opt.ctxErr(); err != nil {
			return false, err
		}
		opt.obsSpan(obs.RoundName, round, "round")
		opt.Obs.Add(obs.Rounds, 1)
		a := NewAssignment(g.NumVertices(), k, opt.Seed, round, tagTree)
		total, err := treeRound(g, d, a, opt)
		opt.obsEnd()
		if err != nil {
			return false, err
		}
		if total != 0 {
			return true, nil
		}
	}
	return false, nil
}

// treeRound evaluates the k-tree polynomial over all 2^k iterations for
// one assignment; a nonzero return means an embedding exists. A
// non-nil opt.Ctx aborts between iteration batches with the context's
// error.
func treeRound(g *graph.Graph, d *graph.Decomposition, a *Assignment, opt Options) (gf.Elem, error) {
	n := g.NumVertices()
	k := a.K
	n2 := opt.batch(k)
	iters := uint64(1) << uint(k)

	base := opt.Arena.Grab(n * n2)
	defer opt.Arena.Put(base)
	// one value buffer per internal decomposition node; leaves share base.
	vals := make([][]gf.Elem, len(d.Nodes))
	for j, nd := range d.Nodes {
		if nd.Left >= 0 {
			vals[j] = opt.Arena.Grab(n * n2)
			defer opt.Arena.Put(vals[j])
		}
	}
	one := CachedMulTable(1)
	var total gf.Elem
	var skipped int64

	levelElems := int64(2*g.NumEdges() + n) // Σdeg + n per batched iteration
	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		if err := opt.ctxErr(); err != nil {
			opt.Obs.Add(obs.CellsSkipped, skipped)
			return 0, err
		}
		opt.obsSpan(obs.PhaseName, int(q0)/n2, "phase")
		opt.Obs.Add(obs.Phases, 1)
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for i := 0; i < n; i++ {
			a.FillBase(base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
		}
		for j, nd := range d.Nodes {
			if nd.Left < 0 {
				vals[j] = base
				continue
			}
			opt.obsSpan(obs.LevelName, j, "level")
			opt.obsLevel(levelElems * int64(nb))
			left, right := vals[nd.Left], vals[nd.Right]
			dstAll := vals[j]
			j := j // capture for the closure
			opt.parallelVertices(g, func(lo, hi int32) {
				av := make([]gf.Elem, nb) // per-worker scratch
				var sk int64
				for i := lo; i < hi; i++ {
					for q := range av {
						av[q] = 0
					}
					for _, u := range g.Neighbors(i) {
						src := right[int(u)*n2 : int(u)*n2+nb]
						if !gf.AnyNonZero(src) {
							sk++
							continue
						}
						t := one
						if !opt.NoFingerprints {
							// level key: the decomposition node index,
							// unique per subtree shape.
							t = a.EdgeTable(u, i, j)
						}
						gf.MulSliceTable16(av, src, t)
					}
					// P(i, H') = P(i, H'_1) · Σ_u r·P(u, H'_2)
					gf.HadamardInto(dstAll[int(i)*n2:int(i)*n2+nb], left[int(i)*n2:int(i)*n2+nb], av)
				}
				if sk != 0 {
					atomic.AddInt64(&skipped, sk)
				}
			})
			opt.obsEnd()
		}
		root := vals[d.Root]
		for i := 0; i < n; i++ {
			for q := 0; q < nb; q++ {
				total ^= root[i*n2+q]
			}
		}
		opt.obsEnd()
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return total, nil
}
