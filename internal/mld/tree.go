package mld

import (
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// treeFamily is the k-tree template polynomial as a sweep-engine
// Family: one transfer step per decomposition node (leaves bind the
// base row, internal nodes combine their children over the group's
// halo of neighbor values), and every lane folds the root slab in
// Finalize. All lanes of a group share one template shape — grouping
// by templateDigest is the batch entry point's job.
type treeFamily struct {
	d    *graph.Decomposition
	base []gf.Elem
	vals [][]gf.Elem
}

func (f *treeFamily) Kind() string      { return "tree" }
func (f *treeFamily) CountPhases() bool { return true }

func (f *treeFamily) NewAssignment(n int, st *laneState, round int) *Assignment {
	return NewTreeAssignment(n, st.k, st.Seed, round)
}

func (f *treeFamily) BeginRound(st *laneState) { st.total = 0 }

func (f *treeFamily) EndRound(st *laneState, round int) {
	if st.total != 0 {
		st.found, st.done = true, true
	} else if round+1 >= st.roundsTotal {
		st.done = true
	}
}

func (f *treeFamily) Alloc(e *groupRun) {
	n := e.g.NumVertices()
	f.base = e.opt.Arena.Grab(n * e.gr.stride)
	// one value buffer per internal decomposition node; leaves share base.
	f.vals = make([][]gf.Elem, len(f.d.Nodes))
	for j, nd := range f.d.Nodes {
		if nd.Left >= 0 {
			f.vals[j] = e.opt.Arena.Grab(n * e.gr.stride)
		}
	}
}

func (f *treeFamily) Free(e *groupRun) {
	e.opt.Arena.Put(f.base)
	for j, nd := range f.d.Nodes {
		if nd.Left >= 0 {
			e.opt.Arena.Put(f.vals[j])
		}
	}
	f.base, f.vals = nil, nil
}

func (f *treeFamily) InitRow(e *groupRun) {
	n := e.g.NumVertices()
	stride := e.gr.stride
	for i := 0; i < n; i++ {
		row := i * stride
		for _, st := range e.live {
			st.a.FillBase(f.base[row+st.off:row+st.off+st.nb], int32(i), e.q0, e.opt.NoGray)
		}
	}
}

func (f *treeFamily) Transfers(e *groupRun) int { return len(f.d.Nodes) }

func (f *treeFamily) Transfer(e *groupRun, step int) {
	j := step - 1
	nd := f.d.Nodes[j]
	if nd.Left < 0 {
		f.vals[j] = f.base
		return
	}
	g, opt, stride := e.g, e.opt, e.gr.stride
	live := e.live
	spans := liveSpans(live)
	one := CachedMulTable(1)
	opt.obsSpan(obs.LevelName, j, "level")
	opt.obsLevel(levelElems(g) * e.liveWidth())
	left, right := f.vals[nd.Left], f.vals[nd.Right]
	dstAll := f.vals[j]
	opt.parallelVertices(g, func(lo, hi int32) {
		av := make([]gf.Elem, stride) // per-worker scratch, all lanes
		var sk int64
		for i := lo; i < hi; i++ {
			row := int(i) * stride
			for _, sp := range spans {
				seg := av[sp.lo:sp.hi]
				for q := range seg {
					seg[q] = 0
				}
			}
			for _, u := range g.Neighbors(i) {
				urow := int(u) * stride
				for _, st := range live {
					src := right[urow+st.off : urow+st.off+st.nb]
					if !gf.AnyNonZero(src) {
						sk++
						continue
					}
					t := one
					if !opt.NoFingerprints {
						// level key: the decomposition node index,
						// unique per subtree shape.
						t = st.a.EdgeTable(u, i, j)
					}
					gf.MulSliceTable16(av[st.off:st.off+st.nb], src, t)
				}
			}
			for _, sp := range spans {
				// P(i, H') = P(i, H'_1) · Σ_u r·P(u, H'_2)
				gf.HadamardInto(dstAll[row+sp.lo:row+sp.hi], left[row+sp.lo:row+sp.hi], av[sp.lo:sp.hi])
			}
		}
		e.addSkipped(sk)
	})
	opt.obsEnd()
}

func (f *treeFamily) Finalize(e *groupRun) {
	root := f.vals[f.d.Root]
	n := e.g.NumVertices()
	for _, st := range e.live {
		st.accumulate(root, e.gr.stride, n)
	}
}

// DetectTree decides whether the tree template has a non-induced
// embedding in g, with one-sided failure probability at most
// opt.Epsilon. The template polynomial is built from the recursive
// decomposition of paper Fig 2 and evaluated exactly like the path
// polynomial, one subtree per DP "level".
func DetectTree(g *graph.Graph, tpl *graph.Template, opt Options) (bool, error) {
	k := tpl.K()
	if err := validateK(k, g.NumVertices()); err != nil {
		return false, err
	}
	if k > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	st := soloLane(k, opt)
	gr := &famGroup{fam: &treeFamily{d: tpl.Decompose()}, sts: []*laneState{st}}
	if err := runGroups(g, []*famGroup{gr}, opt.batch(k), opt); err != nil {
		return false, err
	}
	return st.found, st.err
}

// treeRound evaluates the k-tree polynomial over all 2^k iterations for
// one assignment; a nonzero return means an embedding exists: one
// engine sweep of a single tree lane. A non-nil opt.Ctx aborts between
// iteration batches with the context's error.
func treeRound(g *graph.Graph, d *graph.Decomposition, a *Assignment, opt Options) (gf.Elem, error) {
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	st := &laneState{BatchLane: BatchLane{K: a.K}, k: a.K, iters: uint64(1) << uint(a.K), a: a}
	gr := &famGroup{fam: &treeFamily{d: d}, sts: []*laneState{st}, live: []*laneState{st}}
	if err := sweepGroups(g, []*famGroup{gr}, opt.batch(a.K), opt); err != nil {
		return 0, err
	}
	return st.total, nil
}
