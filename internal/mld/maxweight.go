package mld

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// MaxWeightPath solves the weighted variant of Problem 3(2) from the
// paper for paths: among all simple paths on exactly k vertices, find
// the maximum total vertex weight (and whether any k-path exists at
// all). The DP augments the k-path evaluation with a weight index, like
// the scan-statistics polynomial but path-shaped:
//
//	P(i, 1, w(i)) = x_i
//	P(i, j, z)    = x_i · Σ_{u∈N(i)} r(u,i,j) · P(u, j-1, z - w(i))
//
// so cell (k, z) has a multilinear term iff a k-path of weight exactly z
// exists; the answer is the largest z with a nonzero total. Cost grows
// by a factor of the weight range over plain detection (paper Lemma 3's
// W factor); use scanstat.RoundWeights to keep the grid small.
//
// Errors are one-sided per round: the reported weight is always
// realized by some k-path; with probability ≤ opt.Epsilon a
// larger-weight path may be missed.
func MaxWeightPath(g *graph.Graph, k int, opt Options) (int64, bool, error) {
	if err := validateK(k, g.NumVertices()); err != nil {
		return 0, false, err
	}
	if k > g.NumVertices() {
		return 0, false, nil
	}
	// Size the weight grid: any k-path weighs at most k·max_v w(v).
	var maxw int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		w := g.Weight(v)
		if w < 0 {
			return 0, false, fmt.Errorf("mld: vertex %d has negative weight %d", v, w)
		}
		if w > maxw {
			maxw = w
		}
	}
	zmax := int64(k) * maxw
	const gridLimit = 1 << 20
	if (zmax+1)*int64(g.NumVertices()) > gridLimit*64 {
		return 0, false, fmt.Errorf("mld: weight grid %d too large; round weights first (scanstat.RoundWeights)", zmax)
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	best := int64(-1)
	found := false
	rounds := opt.RoundsFor(k)
	for round := 0; round < rounds; round++ {
		opt.obsSpan(obs.RoundName, round, "round")
		opt.Obs.Add(obs.Rounds, 1)
		a := NewMaxWeightAssignment(g.NumVertices(), k, opt.Seed, round)
		row := maxWeightRound(g, k, zmax, a, opt)
		opt.obsEnd()
		for z := zmax; z >= 0; z-- {
			if row[z] != 0 {
				found = true
				if z > best {
					best = z
				}
				break
			}
		}
	}
	if !found {
		return 0, false, nil
	}
	return best, true, nil
}

// maxWeightRound evaluates the weight-indexed path polynomial over all
// 2^k iterations and returns per-weight totals for level k.
func maxWeightRound(g *graph.Graph, k int, zmax int64, a *Assignment, opt Options) []gf.Elem {
	n := g.NumVertices()
	n2 := opt.batch(k)
	iters := uint64(1) << uint(k)
	nz := int(zmax) + 1

	// prev[z] and cur[z] are flat n×n2 buffers for the current level.
	alloc := func() [][]gf.Elem {
		out := make([][]gf.Elem, nz)
		for z := range out {
			out[z] = opt.Arena.Grab(n * n2)
		}
		return out
	}
	prev, cur := alloc(), alloc()
	base := opt.Arena.Grab(n * n2)
	defer func() {
		opt.Arena.Put(base)
		opt.Arena.Put(prev...)
		opt.Arena.Put(cur...)
	}()
	one := CachedMulTable(1)
	totals := make([]gf.Elem, nz)
	var skipped int64
	var maxwPrefix int64 // max achievable weight after j vertices
	var maxw int64
	for v := int32(0); v < int32(n); v++ {
		if w := g.Weight(v); w > maxw {
			maxw = w
		}
	}

	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for i := 0; i < n; i++ {
			a.FillBase(base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
		}
		for z := 0; z < nz; z++ {
			buf := prev[z]
			for i := range buf {
				buf[i] = 0
			}
		}
		for i := 0; i < n; i++ {
			w := g.Weight(int32(i))
			copy(prev[w][i*n2:i*n2+nb], base[i*n2:i*n2+nb])
		}
		maxwPrefix = maxw
		for j := 2; j <= k; j++ {
			maxwPrefix += maxw
			zhi := maxwPrefix
			if zhi > zmax {
				zhi = zmax
			}
			for z := 0; z < nz; z++ {
				buf := cur[z]
				for i := range buf {
					buf[i] = 0
				}
			}
			for i := int32(0); i < int32(n); i++ {
				wi := g.Weight(i)
				iLo, iHi := int(i)*n2, int(i)*n2+nb
				for _, u := range g.Neighbors(i) {
					// One coefficient covers the whole weight column:
					// build (or cache-hit) its table once per (u,i).
					t := one
					if !opt.NoFingerprints {
						t = a.EdgeTable(u, i, j)
					}
					uLo, uHi := int(u)*n2, int(u)*n2+nb
					for z := wi; z <= zhi; z++ {
						src := prev[z-wi][uLo:uHi]
						if !gf.AnyNonZero(src) {
							skipped++
							continue
						}
						gf.MulSliceTable16(cur[z][iLo:iHi], src, t)
					}
				}
				for z := wi; z <= zhi; z++ {
					dst := cur[z][iLo:iHi]
					gf.HadamardInto(dst, dst, base[iLo:iHi])
				}
			}
			prev, cur = cur, prev
		}
		for z := 0; z < nz; z++ {
			buf := prev[z]
			for i := 0; i < n; i++ {
				for q := 0; q < nb; q++ {
					totals[z] ^= buf[i*n2+q]
				}
			}
		}
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return totals
}

// BruteMaxWeightPath is the exhaustive oracle for MaxWeightPath.
func BruteMaxWeightPath(g *graph.Graph, k int) (int64, bool) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return 0, false
	}
	used := make([]bool, n)
	best := int64(-1)
	var dfs func(v int32, depth int, w int64)
	dfs = func(v int32, depth int, w int64) {
		if depth == k {
			if w > best {
				best = w
			}
			return
		}
		for _, u := range g.Neighbors(v) {
			if !used[u] {
				used[u] = true
				dfs(u, depth+1, w+g.Weight(u))
				used[u] = false
			}
		}
	}
	for s := int32(0); s < int32(n); s++ {
		used[s] = true
		dfs(s, 1, g.Weight(s))
		used[s] = false
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
