package mld

import (
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// pathFamily is the k-path polynomial as a sweep-engine Family: the
// init row is P(i,1) = x_i, transfer step j−1 is the path recurrence
// P(i,j) = x_i · Σ_u r·P(u,j−1) over two ping-pong slabs, and a lane
// folds its totals at its own final level (heterogeneous-k groups run
// to the deepest live k).
type pathFamily struct {
	base, prev, cur []gf.Elem
}

func (f *pathFamily) Kind() string      { return "path" }
func (f *pathFamily) CountPhases() bool { return true }

func (f *pathFamily) NewAssignment(n int, st *laneState, round int) *Assignment {
	return NewPathAssignment(n, st.k, st.Seed, round)
}

func (f *pathFamily) BeginRound(st *laneState) { st.total = 0 }

func (f *pathFamily) EndRound(st *laneState, round int) {
	if st.total != 0 {
		st.found, st.done = true, true
	} else if round+1 >= st.roundsTotal {
		st.done = true
	}
}

func (f *pathFamily) Alloc(e *groupRun) {
	n := e.g.NumVertices()
	f.base = e.opt.Arena.Grab(n * e.gr.stride)
	f.prev = e.opt.Arena.Grab(n * e.gr.stride)
	f.cur = e.opt.Arena.Grab(n * e.gr.stride)
}

func (f *pathFamily) Free(e *groupRun) {
	e.opt.Arena.Put(f.base, f.prev, f.cur)
	f.base, f.prev, f.cur = nil, nil, nil
}

func (f *pathFamily) InitRow(e *groupRun) {
	n := e.g.NumVertices()
	stride := e.gr.stride
	for i := 0; i < n; i++ {
		row := i * stride
		for _, st := range e.live {
			st.a.FillBase(f.base[row+st.off:row+st.off+st.nb], int32(i), e.q0, e.opt.NoGray)
		}
	}
	// level 1: P(i,1) = x_i, copied span-fused; k=1 lanes are done.
	spans := liveSpans(e.live)
	for i := 0; i < n; i++ {
		row := i * stride
		for _, sp := range spans {
			copy(f.prev[row+sp.lo:row+sp.hi], f.base[row+sp.lo:row+sp.hi])
		}
	}
	for _, st := range e.live {
		if st.k == 1 {
			st.accumulate(f.prev, stride, n)
		}
	}
}

func (f *pathFamily) Transfers(e *groupRun) int {
	kPhase := 0
	for _, st := range e.live {
		if st.k > kPhase {
			kPhase = st.k
		}
	}
	return kPhase - 1
}

func (f *pathFamily) Transfer(e *groupRun, step int) {
	j := step + 1
	g, opt, stride := e.g, e.opt, e.gr.stride
	var lvl []*laneState
	var lvlWidth int64
	for _, st := range e.live {
		if st.k >= j {
			lvl = append(lvl, st)
			lvlWidth += int64(st.nb)
		}
	}
	spans := liveSpans(lvl)
	one := CachedMulTable(1)
	opt.obsSpan(obs.LevelName, j, "level")
	opt.obsLevel(levelElems(g) * lvlWidth)
	opt.parallelVertices(g, func(lo, hi int32) {
		var sk int64
		for i := lo; i < hi; i++ {
			row := int(i) * stride
			for _, sp := range spans {
				dst := f.cur[row+sp.lo : row+sp.hi]
				for q := range dst {
					dst[q] = 0
				}
			}
			for _, u := range g.Neighbors(i) {
				urow := int(u) * stride
				for _, st := range lvl {
					src := f.prev[urow+st.off : urow+st.off+st.nb]
					if !gf.AnyNonZero(src) {
						sk++ // dead cell: all-zero vector contributes nothing
						continue
					}
					t := one
					if !opt.NoFingerprints {
						t = st.a.EdgeTable(u, i, j)
					}
					gf.MulSliceTable16(f.cur[row+st.off:row+st.off+st.nb], src, t)
				}
			}
			// P(i,j) = x_i · Σ_u r·P(u,j-1)
			for _, sp := range spans {
				gf.HadamardInto(f.cur[row+sp.lo:row+sp.hi], f.cur[row+sp.lo:row+sp.hi], f.base[row+sp.lo:row+sp.hi])
			}
		}
		e.addSkipped(sk)
	})
	opt.obsEnd()
	f.prev, f.cur = f.cur, f.prev
	n := g.NumVertices()
	for _, st := range lvl {
		if st.k == j {
			st.accumulate(f.prev, stride, n)
		}
	}
}

func (f *pathFamily) Finalize(e *groupRun) {}

// DetectPath decides whether g contains a simple path on k vertices,
// with failure probability at most opt.Epsilon (one-sided: a "no" answer
// for a graph with a k-path is possible with probability ≤ ε, a "yes"
// answer is always correct).
func DetectPath(g *graph.Graph, k int, opt Options) (bool, error) {
	if err := validateK(k, g.NumVertices()); err != nil {
		return false, err
	}
	if k > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	if opt.Variant == VariantKoutis || opt.Variant == VariantGF8 {
		// The integer and GF(2^8) variants keep their own round
		// kernels (no lane-contiguous tables); only the round loop is
		// shared with the engine's accounting.
		rounds := opt.RoundsFor(k)
		for round := 0; round < rounds; round++ {
			if err := opt.ctxErr(); err != nil {
				return false, err
			}
			opt.obsSpan(obs.RoundName, round, "round")
			opt.Obs.Add(obs.Rounds, 1)
			var hit bool
			switch opt.Variant {
			case VariantKoutis:
				hit = koutisPathRound(g, k, opt, round) != 0
			default:
				hit = pathRound8(g, k, opt, round) != 0
			}
			opt.obsEnd()
			if hit {
				return true, nil
			}
		}
		return false, nil
	}
	st := soloLane(k, opt)
	gr := &famGroup{fam: &pathFamily{}, sts: []*laneState{st}}
	if err := runGroups(g, []*famGroup{gr}, opt.batch(k), opt); err != nil {
		return false, err
	}
	return st.found, st.err
}

// pathRound evaluates the k-path polynomial over all 2^k iterations for
// one assignment and returns the accumulated field total (nonzero ⇒
// a k-path exists): one engine sweep of a single path lane. A non-nil
// opt.Ctx aborts between iteration batches with the context's error.
func pathRound(g *graph.Graph, a *Assignment, opt Options) (gf.Elem, error) {
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	st := &laneState{BatchLane: BatchLane{K: a.K}, k: a.K, iters: uint64(1) << uint(a.K), a: a}
	gr := &famGroup{fam: &pathFamily{}, sts: []*laneState{st}, live: []*laneState{st}}
	if err := sweepGroups(g, []*famGroup{gr}, opt.batch(a.K), opt); err != nil {
		return 0, err
	}
	return st.total, nil
}

// koutisPathRound is Algorithm 1 as printed: one full pass of 2^k
// iterations with arithmetic mod 2^(k+1), plus the integer fingerprints
// discussed in DESIGN.md §2. Returns the trace (nonzero ⇒ k-path).
//
// The modulus is a power of two, so every `% mod` reduces to masking
// with mod-1; intermediate products stay well inside uint64 (operands
// are < 2^(k+1) ≤ 2^27, so r·prev < 2^54). TestKoutisMaskMatchesModulo
// pins the trace against the literal-modulo form.
func koutisPathRound(g *graph.Graph, k int, opt Options, round int) uint64 {
	n := g.NumVertices()
	a := NewKoutisAssignment(n, k, opt.Seed, round)
	mask := a.Mod - 1
	iters := uint64(1) << uint(k)
	base := make([]uint64, n)
	prev := make([]uint64, n)
	cur := make([]uint64, n)
	var total uint64
	for t := uint64(0); t < iters; t++ {
		for i := 0; i < n; i++ {
			base[i] = a.Base(int32(i), t)
			prev[i] = base[i]
		}
		for j := 2; j <= k; j++ {
			for i := int32(0); i < int32(n); i++ {
				var acc uint64
				for _, u := range g.Neighbors(i) {
					r := uint64(1)
					if !opt.NoFingerprints {
						r = a.EdgeCoeff(u, i, j)
					}
					acc = (acc + r*prev[u]) & mask
				}
				cur[i] = (acc * base[i]) & mask
			}
			prev, cur = cur, prev
		}
		for i := 0; i < n; i++ {
			total = (total + prev[i]) & mask
		}
	}
	return total
}
