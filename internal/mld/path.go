package mld

import (
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// DetectPath decides whether g contains a simple path on k vertices,
// with failure probability at most opt.Epsilon (one-sided: a "no" answer
// for a graph with a k-path is possible with probability ≤ ε, a "yes"
// answer is always correct).
func DetectPath(g *graph.Graph, k int, opt Options) (bool, error) {
	if err := validateK(k, g.NumVertices()); err != nil {
		return false, err
	}
	if k > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	rounds := opt.RoundsFor(k)
	for round := 0; round < rounds; round++ {
		if err := opt.ctxErr(); err != nil {
			return false, err
		}
		opt.obsSpan(obs.RoundName, round, "round")
		opt.Obs.Add(obs.Rounds, 1)
		var hit bool
		var err error
		switch opt.Variant {
		case VariantKoutis:
			hit = koutisPathRound(g, k, opt, round) != 0
		case VariantGF8:
			hit = pathRound8(g, k, opt, round) != 0
		default:
			a := NewAssignment(g.NumVertices(), k, opt.Seed, round, tagPath)
			var total gf.Elem
			total, err = pathRound(g, a, opt)
			hit = total != 0
		}
		opt.obsEnd()
		if err != nil {
			return false, err
		}
		if hit {
			return true, nil
		}
	}
	return false, nil
}

// pathRound evaluates the k-path polynomial over all 2^k iterations for
// one assignment and returns the accumulated field total (nonzero ⇒
// a k-path exists). A non-nil opt.Ctx aborts between iteration batches
// with the context's error.
func pathRound(g *graph.Graph, a *Assignment, opt Options) (gf.Elem, error) {
	n := g.NumVertices()
	k := a.K
	n2 := opt.batch(k)
	iters := uint64(1) << uint(k)

	base := opt.Arena.Grab(n * n2)
	prev := opt.Arena.Grab(n * n2)
	cur := opt.Arena.Grab(n * n2)
	defer opt.Arena.Put(base, prev, cur)
	one := CachedMulTable(1) // NoFingerprints path
	var total gf.Elem
	var skipped int64

	levelElems := int64(2*g.NumEdges() + n) // Σdeg + n per batched iteration
	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		if err := opt.ctxErr(); err != nil {
			opt.Obs.Add(obs.CellsSkipped, skipped)
			return 0, err
		}
		opt.obsSpan(obs.PhaseName, int(q0)/n2, "phase")
		opt.Obs.Add(obs.Phases, 1)
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for i := 0; i < n; i++ {
			a.FillBase(base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
		}
		// level 1: P(i,1) = x_i
		copy(prev, base)
		for j := 2; j <= k; j++ {
			opt.obsSpan(obs.LevelName, j, "level")
			opt.obsLevel(levelElems * int64(nb))
			opt.parallelVertices(g, func(lo, hi int32) {
				var sk int64
				for i := lo; i < hi; i++ {
					dst := cur[int(i)*n2 : int(i)*n2+nb]
					for q := range dst {
						dst[q] = 0
					}
					for _, u := range g.Neighbors(i) {
						src := prev[int(u)*n2 : int(u)*n2+nb]
						if !gf.AnyNonZero(src) {
							sk++ // dead cell: all-zero vector contributes nothing
							continue
						}
						t := one
						if !opt.NoFingerprints {
							t = a.EdgeTable(u, i, j)
						}
						gf.MulSliceTable16(dst, src, t)
					}
					// P(i,j) = x_i · Σ_u r·P(u,j-1)
					gf.HadamardInto(dst, dst, base[int(i)*n2:int(i)*n2+nb])
				}
				if sk != 0 {
					atomic.AddInt64(&skipped, sk)
				}
			})
			opt.obsEnd()
			prev, cur = cur, prev
		}
		for i := 0; i < n; i++ {
			for q := 0; q < nb; q++ {
				total ^= prev[i*n2+q]
			}
		}
		opt.obsEnd()
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return total, nil
}

// koutisPathRound is Algorithm 1 as printed: one full pass of 2^k
// iterations with arithmetic mod 2^(k+1), plus the integer fingerprints
// discussed in DESIGN.md §2. Returns the trace (nonzero ⇒ k-path).
//
// The modulus is a power of two, so every `% mod` reduces to masking
// with mod-1; intermediate products stay well inside uint64 (operands
// are < 2^(k+1) ≤ 2^27, so r·prev < 2^54). TestKoutisMaskMatchesModulo
// pins the trace against the literal-modulo form.
func koutisPathRound(g *graph.Graph, k int, opt Options, round int) uint64 {
	n := g.NumVertices()
	a := NewKoutisAssignment(n, k, opt.Seed, round)
	mask := a.Mod - 1
	iters := uint64(1) << uint(k)
	base := make([]uint64, n)
	prev := make([]uint64, n)
	cur := make([]uint64, n)
	var total uint64
	for t := uint64(0); t < iters; t++ {
		for i := 0; i < n; i++ {
			base[i] = a.Base(int32(i), t)
			prev[i] = base[i]
		}
		for j := 2; j <= k; j++ {
			for i := int32(0); i < int32(n); i++ {
				var acc uint64
				for _, u := range g.Neighbors(i) {
					r := uint64(1)
					if !opt.NoFingerprints {
						r = a.EdgeCoeff(u, i, j)
					}
					acc = (acc + r*prev[u]) & mask
				}
				cur[i] = (acc * base[i]) & mask
			}
			prev, cur = cur, prev
		}
		for i := 0; i < n; i++ {
			total = (total + prev[i]) & mask
		}
	}
	return total
}
