package mld

// Options.Progress contract: cumulative phase counts, one call per
// completed phase, running to Rounds × plannedPhases on "no"
// instances (which never exit early).

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
)

func TestDetectPathProgressCumulative(t *testing.T) {
	g := graph.Star(20) // no 8-path: every round runs its full sweep
	var calls []int64
	opt := Options{
		Seed: 2, Rounds: 2, N2: 16,
		Progress: func(done int64) { calls = append(calls, done) },
	}
	got, err := DetectPath(g, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("false positive on a star")
	}
	// 2^8 / 16 = 16 phases per round, cumulative across both rounds.
	const want = 32
	if len(calls) != want {
		t.Fatalf("%d progress calls, want %d", len(calls), want)
	}
	for i, d := range calls {
		if d != int64(i+1) {
			t.Fatalf("call %d reported %d phases done, want %d (cumulative, +1 per phase)", i, d, i+1)
		}
	}
}

func TestDetectPathProgressAbsentByDefault(t *testing.T) {
	// The nil default must not change behavior — same answer either way.
	g := graph.RandomGNM(20, 60, 9)
	plain, err := DetectPath(g, 6, Options{Seed: 4, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := DetectPath(g, 6, Options{Seed: 4, Rounds: 1, Progress: func(int64) {}})
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("Progress callback changed the answer: %v vs %v", plain, traced)
	}
}
