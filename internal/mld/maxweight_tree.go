package mld

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// MaxWeightTree is MaxWeightPath for tree templates: the maximum total
// vertex weight over all non-induced embeddings of tpl in g. The DP
// augments each decomposition node with a weight index:
//
//	P(i, leaf, w(i)) = x_i
//	P(i, nd, z)      = Σ_{z1+z2=z} P(i, left, z1) · Σ_u r(u,i,nd)·P(u, right, z2)
func MaxWeightTree(g *graph.Graph, tpl *graph.Template, opt Options) (int64, bool, error) {
	k := tpl.K()
	if err := validateK(k, g.NumVertices()); err != nil {
		return 0, false, err
	}
	if k > g.NumVertices() {
		return 0, false, nil
	}
	var maxw int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		w := g.Weight(v)
		if w < 0 {
			return 0, false, fmt.Errorf("mld: vertex %d has negative weight %d", v, w)
		}
		if w > maxw {
			maxw = w
		}
	}
	zmax := int64(k) * maxw
	const gridLimit = 1 << 26
	if (zmax+1)*int64(g.NumVertices())*int64(2*k-1) > gridLimit {
		return 0, false, fmt.Errorf("mld: weight grid %d too large for tree DP; round weights first", zmax)
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	d := tpl.Decompose()
	best := int64(-1)
	found := false
	rounds := opt.RoundsFor(k)
	for round := 0; round < rounds; round++ {
		opt.obsSpan(obs.RoundName, round, "round")
		opt.Obs.Add(obs.Rounds, 1)
		a := NewAssignment(g.NumVertices(), k, opt.Seed, round, tagTree+13)
		row := maxWeightTreeRound(g, d, zmax, a, opt)
		opt.obsEnd()
		for z := zmax; z >= 0; z-- {
			if row[z] != 0 {
				found = true
				if z > best {
					best = z
				}
				break
			}
		}
	}
	if !found {
		return 0, false, nil
	}
	return best, true, nil
}

func maxWeightTreeRound(g *graph.Graph, d *graph.Decomposition, zmax int64, a *Assignment, opt Options) []gf.Elem {
	n := g.NumVertices()
	k := a.K
	n2 := opt.batch(k)
	iters := uint64(1) << uint(k)
	nz := int(zmax) + 1
	var maxw int64
	for v := int32(0); v < int32(n); v++ {
		if w := g.Weight(v); w > maxw {
			maxw = w
		}
	}
	zcap := func(size int) int {
		c := int64(size) * maxw
		if c > zmax {
			c = zmax
		}
		return int(c)
	}

	base := opt.Arena.Grab(n * n2)
	// vals[node][z] — nil rows for z beyond the node's capacity.
	vals := make([][][]gf.Elem, len(d.Nodes))
	for j, nd := range d.Nodes {
		vals[j] = make([][]gf.Elem, zcap(nd.Size)+1)
		if nd.Left >= 0 {
			for z := range vals[j] {
				vals[j][z] = opt.Arena.Grab(n * n2)
			}
		}
	}
	defer func() {
		opt.Arena.Put(base)
		for j, nd := range d.Nodes {
			if nd.Left >= 0 {
				opt.Arena.Put(vals[j]...)
			}
		}
	}()
	one := CachedMulTable(1)
	acc := make([]gf.Elem, n2)
	totals := make([]gf.Elem, nz)
	var skipped int64

	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for i := 0; i < n; i++ {
			a.FillBase(base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
		}
		for j, nd := range d.Nodes {
			if nd.Left < 0 {
				// leaves: P(i, leaf, z) is base at z == w(i), zero elsewhere.
				// Materialized lazily below via leafRow.
				continue
			}
			left, right := d.Nodes[nd.Left], d.Nodes[nd.Right]
			for z := range vals[j] {
				buf := vals[j][z]
				for i := range buf {
					buf[i] = 0
				}
			}
			for i := int32(0); i < int32(n); i++ {
				iLo, iHi := int(i)*n2, int(i)*n2+nb
				for z2 := 0; z2 <= zcap(right.Size); z2++ {
					av := acc[:nb]
					for q := range av {
						av[q] = 0
					}
					nonzero := false
					for _, u := range g.Neighbors(i) {
						src := nodeRow(d, vals, nd.Right, int64(z2), u, g, base, n2, nb)
						if src == nil || !gf.AnyNonZero(src) {
							skipped++
							continue
						}
						t := one
						if !opt.NoFingerprints {
							t = a.EdgeTable(u, i, j)
						}
						gf.MulSliceTable16(av, src, t)
						nonzero = true
					}
					if !nonzero {
						continue
					}
					for z1 := 0; z1 <= zcap(left.Size); z1++ {
						z := z1 + z2
						if z >= len(vals[j]) {
							break
						}
						src1 := nodeRow(d, vals, nd.Left, int64(z1), i, g, base, n2, nb)
						if src1 == nil || !gf.AnyNonZero(src1) {
							skipped++
							continue
						}
						gf.MulHadamardAccum(vals[j][z][iLo:iHi], src1, av)
					}
				}
			}
		}
		rootCap := zcap(d.Nodes[d.Root].Size)
		for z := 0; z <= rootCap; z++ {
			row := vals[d.Root]
			if d.Nodes[d.Root].Left < 0 {
				// degenerate k=1 template
				for i := 0; i < n; i++ {
					if g.Weight(int32(i)) == int64(z) {
						for q := 0; q < nb; q++ {
							totals[z] ^= base[i*n2+q]
						}
					}
				}
				continue
			}
			buf := row[z]
			for i := 0; i < n; i++ {
				for q := 0; q < nb; q++ {
					totals[z] ^= buf[i*n2+q]
				}
			}
		}
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return totals
}

// nodeRow returns the value vector of a decomposition node at weight z
// for vertex u: for internal nodes it's the stored buffer; for leaves it
// is base when z equals the vertex weight and nil otherwise.
func nodeRow(d *graph.Decomposition, vals [][][]gf.Elem, node int, z int64, u int32, g *graph.Graph, base []gf.Elem, n2, nb int) []gf.Elem {
	nd := d.Nodes[node]
	if nd.Left < 0 {
		if g.Weight(u) != z {
			return nil
		}
		return base[int(u)*n2 : int(u)*n2+nb]
	}
	if z < 0 || int(z) >= len(vals[node]) {
		return nil
	}
	return vals[node][int(z)][int(u)*n2 : int(u)*n2+nb]
}
