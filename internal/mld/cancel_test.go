package mld

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// TestDetectCancelledContext: an already-cancelled context makes every
// evaluator return its error before doing any DP work.
func TestDetectCancelledContext(t *testing.T) {
	g := graph.RandomGNM(30, 80, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Ctx: ctx}

	if _, err := DetectPath(g, 6, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("DetectPath: got %v, want context.Canceled", err)
	}
	tpl := graph.RandomTemplate(4, 2)
	if _, err := DetectTree(g, tpl, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("DetectTree: got %v, want context.Canceled", err)
	}
	wg := graph.RandomGNM(20, 50, 3)
	w := make([]int64, wg.NumVertices())
	for i := range w {
		w[i] = int64(i % 4)
	}
	wg.SetWeights(w)
	if _, err := ScanTable(wg, 4, 8, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanTable: got %v, want context.Canceled", err)
	}
}

// TestDetectDeadlineStopsEarly: a deadline expiring mid-run aborts the
// 2^k iteration sweep between batches — the phase counter stays well
// short of the full count and the error is DeadlineExceeded.
func TestDetectDeadlineStopsEarly(t *testing.T) {
	g := graph.RandomGNM(200, 800, 2)
	const k = 18 // 2^18 iterations: seconds of work, far beyond the deadline
	rec := obs.NewRecorder(0, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	opt := Options{Ctx: ctx, Rounds: 1, N2: 32, Obs: rec}

	start := time.Now()
	_, err := DetectPath(g, k, opt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; batches are not checking the context", elapsed)
	}
	totalPhases := int64((1 << k) / 32)
	if got := rec.Snapshot().Counter(obs.Phases); got >= totalPhases {
		t.Fatalf("executed all %d phases despite the deadline", got)
	}
}

// TestDetectCancelNoGoroutineLeak: cancelling a parallel run must not
// strand DP worker goroutines.
func TestDetectCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	g := graph.RandomGNM(100, 400, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := DetectPath(g, 16, Options{Ctx: ctx, Rounds: 1, Workers: 4}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
