package mld

// The polynomial-family engine: ONE implementation of the round loop,
// the Gray-code phase sweep, the batch lane layout, arena slab
// recycling, and per-lane cancellation, shared by every detection
// workload. A Family contributes only what is mathematically its own —
// how a round's randomness is derived, how the DP slabs are laid out,
// the init row, the per-level transfer, and the finalize/fold steps —
// while the engine owns everything the path/tree/scanstat trio used to
// triplicate (and the batch evaluators triplicated again).
//
// Execution model: lanes (laneState) are clustered into groups
// (famGroup), each group owning one Family instance and one
// lane-contiguous buffer layout. Solo evaluators are the one-lane,
// one-group special case, which keeps their outputs and observability
// byte-identical to a batch of one (golden_test.go pins this across
// the refactor). Per round, every group's live lanes draw fresh
// assignments; per phase q0, the engine masks cancelled lanes, retires
// lanes past their Gray prefix, and hands the survivors to the family
// as InitRow → Transfer* → Finalize.

import (
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// Family is one polynomial family (k-path, k-tree, scan-statistics,
// constrained motif) as seen by the sweep engine. One instance serves
// one lane group for the duration of a run; implementations keep their
// DP slabs as instance state between Alloc and Free.
type Family interface {
	// Kind names the family for diagnostics.
	Kind() string

	// NewAssignment derives one lane's randomness for a round — a pure
	// function of (lane seed, round, family tag), so distributed ranks
	// and batched lanes reproduce solo runs exactly.
	NewAssignment(n int, st *laneState, round int) *Assignment

	// BeginRound resets a lane's per-round accumulator.
	BeginRound(st *laneState)

	// CountPhases reports whether the engine charges phase spans and
	// per-lane phase counters for this family. The scan table keeps
	// its historical phase-less accounting; path/tree/motif count.
	CountPhases() bool

	// Alloc grabs the group's DP slabs for one round's sweep from the
	// options arena; Free returns them. The group's live lanes and
	// stride are fixed when Alloc runs.
	Alloc(e *groupRun)
	Free(e *groupRun)

	// InitRow computes the level-1 DP row for the phase's live lanes
	// (base values x_i(gray(q0+q)) and whatever the family layers on
	// them) and folds any lane whose polynomial is a single level.
	InitRow(e *groupRun)

	// Transfers is the number of per-level transfer steps for the
	// phase's live lane set (evaluated once per phase).
	Transfers(e *groupRun) int

	// Transfer runs transfer step ∈ [1, Transfers] — one DP level —
	// folding any lane that finishes at this level.
	Transfer(e *groupRun, step int)

	// Finalize folds whatever the transfer steps did not (families
	// whose lanes all finish at the last level fold here).
	Finalize(e *groupRun)

	// EndRound inspects a lane's round accumulator after a completed
	// sweep: families with found/not-found semantics mark the lane
	// found or done, table families fold the totals and run on.
	EndRound(st *laneState, round int)
}

// famGroup is one lane cluster sharing a Family instance and a
// lane-contiguous layout (lane i of the round's live set at element
// offset i·n2 of every vertex row, stride = live lanes × n2).
type famGroup struct {
	fam Family
	sts []*laneState // every lane of the group

	// per-round state, owned by the engine
	live      []*laneState // lanes active this round
	phaseLive []*laneState // lanes surviving the current phase's masks
	stride    int
	itersLive uint64 // deepest live lane's 2^k this round
	alloced   bool
}

// groupRun is the engine→family call context for one group: the graph,
// options, layout, and the current phase's live lanes.
type groupRun struct {
	g       *graph.Graph
	gr      *famGroup
	opt     Options
	n2      int
	q0      uint64
	live    []*laneState // live lanes of the current phase
	skipped *int64       // shared dead-cell counter, flushed per sweep
}

// liveWidth is the summed element width of the phase's live lanes —
// the per-level DP width the recorder charges.
func (e *groupRun) liveWidth() int64 {
	var w int64
	for _, st := range e.live {
		w += int64(st.nb)
	}
	return w
}

// levelElems is the analytic per-iteration element count of one DP
// level: Σdeg + n (see docs/OBSERVABILITY.md).
func levelElems(g *graph.Graph) int64 {
	return int64(2*g.NumEdges() + g.NumVertices())
}

// runGroups is the engine's round loop: per round, collect each
// group's active lanes, draw assignments, sweep the iteration space
// once for all groups jointly, then let each family judge its lanes'
// totals. A batch-wide context abort fails every unresolved lane open
// with the context error.
func runGroups(g *graph.Graph, groups []*famGroup, n2 int, opt Options) error {
	maxRounds := 0
	for _, gr := range groups {
		for _, st := range gr.sts {
			if st.roundsTotal > maxRounds {
				maxRounds = st.roundsTotal
			}
		}
	}
	n := g.NumVertices()
	var batchErr error
	var phasesDone int64 // cumulative across rounds, fed to opt.Progress
	for round := 0; round < maxRounds && batchErr == nil; round++ {
		activeTotal := 0
		for _, gr := range groups {
			gr.live = gr.live[:0]
			for _, st := range gr.sts {
				if !st.done && round < st.roundsTotal {
					gr.live = append(gr.live, st)
				}
			}
			activeTotal += len(gr.live)
		}
		if activeTotal == 0 {
			break
		}
		if err := opt.ctxErr(); err != nil {
			batchErr = err
			break
		}
		opt.obsSpan(obs.RoundName, round, "round")
		opt.Obs.Add(obs.Rounds, int64(activeTotal))
		for _, gr := range groups {
			for _, st := range gr.live {
				st.a = gr.fam.NewAssignment(n, st, round)
				gr.fam.BeginRound(st)
				st.roundsRun++
			}
		}
		err := sweepGroupsFrom(g, groups, n2, opt, &phasesDone)
		opt.obsEnd()
		if err != nil {
			batchErr = err
			break
		}
		for _, gr := range groups {
			for _, st := range gr.live {
				if st.done {
					continue // cancelled mid-round; the accumulator is void
				}
				gr.fam.EndRound(st, round)
			}
		}
	}
	if batchErr != nil {
		for _, gr := range groups {
			failOpen(gr.sts, batchErr)
		}
	}
	return batchErr
}

// sweepGroups runs one round's joint pass over the iteration space:
// phase q0 of every group with live work runs before any group
// advances to q0+n2, so interleaved groups share the sweep. Per group
// and phase the engine masks cancelled lanes (their LaneResult carries
// the context error; the rest of the batch runs on), retires lanes
// past their Gray prefix, and trims the final short phase, then calls
// the family's InitRow / Transfer / Finalize hooks.
func sweepGroups(g *graph.Graph, groups []*famGroup, n2 int, opt Options) error {
	var done int64
	return sweepGroupsFrom(g, groups, n2, opt, &done)
}

// sweepGroupsFrom is sweepGroups with an externally-owned cumulative
// phase counter, so the round loop reports run-wide progress through
// opt.Progress rather than per-sweep progress.
func sweepGroupsFrom(g *graph.Graph, groups []*famGroup, n2 int, opt Options, done *int64) error {
	var itersMax uint64
	anyAlloc := false
	for _, gr := range groups {
		gr.alloced = false
		if len(gr.live) == 0 {
			continue
		}
		gr.stride = len(gr.live) * n2
		var it uint64
		for i, st := range gr.live {
			st.off = i * n2
			if st.iters > it {
				it = st.iters
			}
		}
		gr.itersLive = it
		if it > itersMax {
			itersMax = it
		}
		gr.fam.Alloc(&groupRun{g: g, gr: gr, opt: opt, n2: n2})
		gr.alloced = true
		anyAlloc = true
	}
	if !anyAlloc {
		return nil
	}
	defer func() {
		for _, gr := range groups {
			if gr.alloced {
				gr.fam.Free(&groupRun{g: g, gr: gr, opt: opt, n2: n2})
				gr.alloced = false
			}
		}
	}()
	var skipped int64
	defer func() { opt.Obs.Add(obs.CellsSkipped, skipped) }()

	for q0 := uint64(0); q0 < itersMax; q0 += uint64(n2) {
		if err := opt.ctxErr(); err != nil {
			return err
		}
		anyLive := false
		for _, gr := range groups {
			if !gr.alloced || q0 >= gr.itersLive {
				continue
			}
			gr.phaseLive = gr.phaseLive[:0]
			for _, st := range gr.live {
				if st.done || q0 >= st.iters {
					continue // retired: answer already folded from its Gray prefix
				}
				if err := st.ctxErr(); err != nil {
					st.done, st.err = true, err // mask out; the rest keep running
					continue
				}
				st.nb = n2
				if rem := st.iters - q0; uint64(st.nb) > rem {
					st.nb = int(rem)
				}
				gr.phaseLive = append(gr.phaseLive, st)
			}
			if len(gr.phaseLive) == 0 {
				continue
			}
			anyLive = true
			e := &groupRun{g: g, gr: gr, opt: opt, n2: n2, q0: q0, live: gr.phaseLive, skipped: &skipped}
			count := gr.fam.CountPhases()
			if count {
				for _, st := range gr.phaseLive {
					st.phases++
				}
				opt.obsSpan(obs.PhaseName, int(q0)/n2, "phase")
				opt.Obs.Add(obs.Phases, 1)
			}
			gr.fam.InitRow(e)
			for step, nT := 1, gr.fam.Transfers(e); step <= nT; step++ {
				gr.fam.Transfer(e, step)
			}
			gr.fam.Finalize(e)
			if count {
				opt.obsEnd()
				*done++
				if opt.Progress != nil {
					opt.Progress(*done)
				}
			}
		}
		if !anyLive {
			break
		}
	}
	return nil
}

// addSkipped folds a worker's dead-cell count into the sweep counter.
func (e *groupRun) addSkipped(sk int64) {
	if sk != 0 {
		atomic.AddInt64(e.skipped, sk)
	}
}

// soloLane builds the one-lane state through which the sequential
// entry points reuse the engine: a batch of one is byte-identical to
// the historical solo evaluators.
func soloLane(k int, opt Options) *laneState {
	st := &laneState{
		BatchLane: BatchLane{K: k, Seed: opt.Seed, Epsilon: opt.Epsilon, Rounds: opt.Rounds},
		k:         k,
		iters:     uint64(1) << uint(k),
	}
	st.roundsTotal = opt.RoundsFor(k)
	return st
}
