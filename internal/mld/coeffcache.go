package mld

import (
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/gf"
)

// Coefficient-table cache. The DP multiplies every neighbor message by
// a fingerprint coefficient hashed from (edge, level); one coefficient
// is reused against a fresh slice for every batch of every round, and
// the same (edge, level) pairs recur across all 2^k/n2 phases. Caching
// the per-constant nibble-split tables (gf.MulTable) by coefficient
// value means each distinct constant pays its table build exactly once
// per process.
//
// The cache is LRU-less by design: it is indexed by the coefficient
// value itself, so it is bounded by the field size (2^16 slots; a few
// MiB fully populated) and never evicts. Entries are published with an
// atomic pointer; two goroutines racing to build the same entry both
// build identical tables and either store wins — idempotent, lock-free,
// safe under the race detector.

var (
	coeffTables  [1 << 16]atomic.Pointer[gf.MulTable]
	coeffTables8 [1 << 8]atomic.Pointer[gf.MulTable8]
)

// CachedMulTable returns the process-wide multiplication table for c,
// building and publishing it on first use.
func CachedMulTable(c gf.Elem) *gf.MulTable {
	if t := coeffTables[c].Load(); t != nil {
		return t
	}
	t := gf.NewMulTable(c)
	coeffTables[c].Store(t)
	return t
}

// CachedMulTable8 is CachedMulTable over GF(2^8).
func CachedMulTable8(c uint8) *gf.MulTable8 {
	if t := coeffTables8[c].Load(); t != nil {
		return t
	}
	t := gf.NewMulTable8(c)
	coeffTables8[c].Store(t)
	return t
}

// EdgeTable returns the cached multiplication table for
// EdgeCoeff(u, i, level); the table-building twin of EdgeCoeff for the
// batched axpy kernels.
func (a *Assignment) EdgeTable(u, i int32, level int) *gf.MulTable {
	return CachedMulTable(a.EdgeCoeff(u, i, level))
}
