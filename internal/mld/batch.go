package mld

// Batched multi-query evaluation: one pass over the 2^k iteration
// space services several queries ("lanes") at once. Each lane keeps
// its own Assignment, so a batched lane's totals are bit-identical to
// the sequential run of the same (seed, round) — batching changes only
// *when* work happens, never *what* is computed (TestDetectPathBatch-
// MatchesSequential pins this).
//
// Two properties make the sharing sound (docs/BATCHING.md derives
// both):
//
//   - k-prefix reuse: gray(q) restricted to q < 2^k' is a bijection on
//     the masks over the low k' columns, so the first 2^k' iterations
//     of a deeper sweep enumerate exactly a k'-lane's whole iteration
//     space. A k'<k lane therefore accumulates only over that prefix
//     and then retires from the phase loop.
//   - lane independence: the DP state of lane l lives in its own
//     contiguous block of each vertex row (stride = lanes × N2, lane l
//     at offset l·N2), so the nibble-split MulTable kernels stream one
//     vertex row across all live lanes with no per-lane dispatch
//     beyond the per-(edge, lane) table lookup, and zero-fill /
//     Hadamard steps fuse across adjacent live lanes.
//
// A cancelled lane (its BatchLane.Ctx expired) is masked out at the
// next phase boundary: its LaneResult carries the context error and
// the remaining lanes keep running — one impatient query does not
// abort the flight.

import (
	"context"
	"fmt"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
)

// MaxBatchLanes bounds the lanes of one batch. The distributed batch
// protocol (internal/core) carries the per-lane cancellation state as
// one uint64 bitmask in its per-step all-reduce, so the bound is 64.
const MaxBatchLanes = 64

// BatchLane is one query of a batch: the target plus the per-lane
// seeding, amplification, and cancellation knobs that the sequential
// entry points take via Options. Fields irrelevant to the batch kind
// (Template for paths, ZMax for paths/trees) are ignored.
type BatchLane struct {
	K        int             // subgraph size (ignored for tree/motif lanes: the template/spec decides)
	Template *graph.Template // tree lanes only
	ZMax     int64           // scan lanes only: weight cap
	Motif    *MotifSpec      // motif lanes only: color-multiset constraint
	Seed     uint64
	Epsilon  float64         // 0 → the batch Options' default
	Rounds   int             // 0 → derived from Epsilon
	Ctx      context.Context // per-lane cancellation; nil = run to completion
}

func (l BatchLane) ctxErr() error {
	if l.Ctx == nil {
		return nil
	}
	return l.Ctx.Err()
}

// LaneResult is one lane's outcome. Found/Table match the sequential
// evaluator byte-for-byte; Rounds/Phases count the lane's share of the
// batched execution (phases at the *batch's* iteration width, which
// TotalPhases also uses, so Phases < TotalPhases still proves an
// unfinished sweep). Err is the lane's own failure — typically its
// context error after a mid-flight cancel — and leaves other lanes
// untouched.
type LaneResult struct {
	Found       bool
	Table       [][]bool
	Rounds      int64
	Phases      int64
	TotalPhases int64
	Err         error
}

// laneOptions is the sequential-equivalent Options for one lane: the
// batch Options with the lane's seeding spliced in. Used by RoundsFor
// (so round counts match a sequential run exactly) and by the
// non-GF16 fallback path.
func laneOptions(opt Options, l BatchLane) Options {
	opt.Seed = l.Seed
	opt.Epsilon = l.Epsilon
	opt.Rounds = l.Rounds
	opt.Ctx = l.Ctx
	return opt
}

// laneState tracks one lane through the round/phase loops.
type laneState struct {
	BatchLane
	idx         int // index into the results slice
	k           int
	iters       uint64 // 2^k: the lane's Gray prefix
	roundsTotal int
	a           *Assignment
	off         int // element offset of the lane's block in a vertex row
	nb          int // live width this phase
	total       gf.Elem
	found       bool
	done        bool
	err         error
	roundsRun   int64
	phases      int64
	scan        *scanExt // scan lanes only: table + weight-stratified DP
}

// span is a contiguous element range [lo, hi) within a vertex row
// covering one or more adjacent live lanes, the unit of the fused
// zero-fill / copy / Hadamard steps.
type span struct{ lo, hi int }

// liveSpans merges the blocks of the given lanes (ascending offsets)
// into maximal contiguous spans. A lane in its final, short phase
// (nb < N2) ends a span: the gap to the next lane's offset is dead.
func liveSpans(lanes []*laneState) []span {
	out := make([]span, 0, len(lanes))
	for _, st := range lanes {
		lo, hi := st.off, st.off+st.nb
		if n := len(out); n > 0 && out[n-1].hi == lo {
			out[n-1].hi = hi
		} else {
			out = append(out, span{lo, hi})
		}
	}
	return out
}

// accumulate folds the lane's finished DP level into its round total.
func (st *laneState) accumulate(vals []gf.Elem, stride, n int) {
	for i := 0; i < n; i++ {
		row := i*stride + st.off
		for q := 0; q < st.nb; q++ {
			st.total ^= vals[row+q]
		}
	}
}

// batchStates validates lanes and builds the shared state. Lanes whose
// k exceeds the vertex count resolve immediately (Found=false, like
// the sequential entry points); invalid lanes resolve to their error.
func batchStates(lanes []BatchLane, n int, res []LaneResult, opt Options, kOf func(BatchLane) (int, error)) ([]*laneState, int, int) {
	sts := make([]*laneState, 0, len(lanes))
	kmax, maxRounds := 0, 0
	for i, l := range lanes {
		k, err := kOf(l)
		if err == nil {
			err = ValidateK(k)
		}
		if err != nil {
			res[i].Err = err
			continue
		}
		if k > n {
			continue // Found=false, no work
		}
		st := &laneState{BatchLane: l, idx: i, k: k, iters: uint64(1) << uint(k)}
		st.roundsTotal = laneOptions(opt, l).RoundsFor(k)
		sts = append(sts, st)
		if k > kmax {
			kmax = k
		}
		if st.roundsTotal > maxRounds {
			maxRounds = st.roundsTotal
		}
	}
	return sts, kmax, maxRounds
}

// failOpen marks every unresolved lane with err (a batch-wide abort:
// the Options context expired, killing the whole flight).
func failOpen(sts []*laneState, err error) {
	for _, st := range sts {
		if !st.done {
			st.done, st.err = true, err
		}
	}
}

// DetectPathBatch answers len(lanes) independent k-path queries in one
// batched evaluation. Results (and the per-round randomness behind
// them) are identical to calling DetectPath once per lane with the
// lane's seeding; see the package comment on what is shared. Only the
// GF(2^16) variant has lane-contiguous kernels; other variants fall
// back to sequential per-lane runs.
func DetectPathBatch(g *graph.Graph, lanes []BatchLane, opt Options) ([]LaneResult, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > MaxBatchLanes {
		return nil, fmt.Errorf("mld: batch of %d lanes exceeds MaxBatchLanes=%d", len(lanes), MaxBatchLanes)
	}
	res := make([]LaneResult, len(lanes))
	if opt.Variant != VariantGF16 {
		for i, l := range lanes {
			found, err := DetectPath(g, l.K, laneOptions(opt, l))
			res[i] = LaneResult{Found: found, Err: err}
		}
		return res, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	n := g.NumVertices()
	sts, kmax, _ := batchStates(lanes, n, res, opt, func(l BatchLane) (int, error) { return l.K, nil })
	n2 := opt.batch(kmax)

	gr := &famGroup{fam: &pathFamily{}, sts: sts}
	batchErr := runGroups(g, []*famGroup{gr}, n2, opt)
	for _, st := range sts {
		res[st.idx] = LaneResult{
			Found: st.found, Rounds: st.roundsRun, Phases: st.phases,
			TotalPhases: int64((st.iters + uint64(n2) - 1) / uint64(n2)),
			Err:         st.err,
		}
	}
	return res, batchErr
}
