package mld

// Refactor-equivalence goldens: exact transcripts (per-round GF totals,
// per-lane batch results, feasibility tables) of the path / tree /
// scanstat evaluators, solo and batched, committed to testdata. The
// arithmetic is exact and every Assignment is a pure function of
// (seed, round, tag), so a faithful restructuring of the evaluators —
// such as the Family-engine extraction — must reproduce these bytes
// identically. Regenerate ONLY when the randomness derivation itself
// changes, with: go test ./internal/mld -run TestGolden -update-golden
//
// The matrix deliberately covers the behaviors the batch engine is
// most likely to disturb: heterogeneous lane k (Gray-prefix
// retirement), k=1 lanes (fold at the init row), shared-arena reuse
// across calls, per-lane mid-flight cancellation, batch-wide context
// abort, NoGray / NoFingerprints ablations, multi-worker vertex loops,
// and N2 widths that leave short final phases.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden transcript files")

type goldenRun struct {
	Name   string   `json:"name"`
	Totals []string `json:"totals,omitempty"` // per-round hex GF totals
	Rows   []string `json:"rows,omitempty"`   // scan: per-round "z0,z1,..." hex totals
	Found  bool     `json:"found"`
	Table  []string `json:"table,omitempty"` // entry-point table, "01" rows
	Err    string   `json:"err,omitempty"`
}

type goldenLane struct {
	Found       bool     `json:"found"`
	Rounds      int64    `json:"rounds"`
	Phases      int64    `json:"phases"`
	TotalPhases int64    `json:"total_phases"`
	Table       []string `json:"table,omitempty"`
	Err         string   `json:"err,omitempty"`
}

type goldenBatch struct {
	Name  string       `json:"name"`
	Err   string       `json:"err,omitempty"`
	Lanes []goldenLane `json:"lanes"`
}

type goldenFile struct {
	Solo    []goldenRun   `json:"solo"`
	Batches []goldenBatch `json:"batches"`
}

func hexTotal(v gf.Elem) string { return fmt.Sprintf("%04x", uint16(v)) }

func tableRows(tab [][]bool) []string {
	if tab == nil {
		return nil
	}
	rows := make([]string, 0, len(tab))
	for _, r := range tab {
		b := make([]byte, len(r))
		for i, v := range r {
			b[i] = '0'
			if v {
				b[i] = '1'
			}
		}
		rows = append(rows, string(b))
	}
	return rows
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func laneGolden(res []LaneResult) []goldenLane {
	out := make([]goldenLane, len(res))
	for i, r := range res {
		out[i] = goldenLane{
			Found: r.Found, Rounds: r.Rounds, Phases: r.Phases,
			TotalPhases: r.TotalPhases, Table: tableRows(r.Table), Err: errString(r.Err),
		}
	}
	return out
}

// goldenGraphs builds the fixed test graphs. gW carries deterministic
// weights for the scan cases.
func goldenGraphs() (gA, gB, gW *graph.Graph) {
	gA = graph.RandomGNM(14, 32, 1)
	gB = graph.RandomGNM(9, 14, 2)
	gW = graph.RandomGNM(10, 20, 3)
	w := make([]int64, gW.NumVertices())
	for v := range w {
		w[v] = int64(v % 3)
	}
	gW.SetWeights(w)
	return
}

func buildGoldenSolo(t *testing.T) []goldenRun {
	t.Helper()
	gA, gB, gW := goldenGraphs()
	var out []goldenRun

	// Raw path-round transcripts: the strongest pinning — exact field
	// totals per (assignment, options) pair.
	pathCases := []struct {
		name string
		g    *graph.Graph
		k    int
		seed uint64
		opt  Options
	}{
		{"path/gA/k5/n2-8", gA, 5, 11, Options{N2: 8}},
		{"path/gA/k5/nogray", gA, 5, 11, Options{N2: 8, NoGray: true}},
		{"path/gA/k5/nofp", gA, 5, 11, Options{N2: 8, NoFingerprints: true}},
		{"path/gA/k1", gA, 1, 11, Options{}},
		{"path/gB/k4/workers3", gB, 4, 7, Options{N2: 128, Workers: 3}},
		{"path/gB/k4/n2-5", gB, 4, 7, Options{N2: 5}},
	}
	for _, c := range pathCases {
		opt := c.opt
		if opt.Arena == nil {
			opt.Arena = NewArena()
		}
		var totals []string
		for round := 0; round < 2; round++ {
			a := NewPathAssignment(c.g.NumVertices(), c.k, c.seed, round)
			tot, err := pathRound(c.g, a, opt)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			totals = append(totals, hexTotal(tot))
		}
		found, err := DetectPath(c.g, c.k, Options{
			Seed: c.seed, Rounds: 2, N2: c.opt.N2, Workers: c.opt.Workers,
			NoGray: c.opt.NoGray, NoFingerprints: c.opt.NoFingerprints,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out = append(out, goldenRun{Name: c.name, Totals: totals, Found: found})
	}

	// Tree-round transcripts over distinct template shapes.
	treeCases := []struct {
		name string
		g    *graph.Graph
		tpl  *graph.Template
		seed uint64
		opt  Options
	}{
		{"tree/gA/path3", gA, graph.PathTemplate(3), 21, Options{N2: 8}},
		{"tree/gA/star4", gA, graph.StarTemplate(4), 21, Options{N2: 8}},
		{"tree/gB/rand5", gB, graph.RandomTemplate(5, 7), 22, Options{N2: 6, Workers: 2}},
		{"tree/gB/rand5/nogray", gB, graph.RandomTemplate(5, 7), 22, Options{N2: 6, NoGray: true}},
	}
	for _, c := range treeCases {
		opt := c.opt
		if opt.Arena == nil {
			opt.Arena = NewArena()
		}
		d := c.tpl.Decompose()
		var totals []string
		for round := 0; round < 2; round++ {
			a := NewTreeAssignment(c.g.NumVertices(), c.tpl.K(), c.seed, round)
			tot, err := treeRound(c.g, d, a, opt)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			totals = append(totals, hexTotal(tot))
		}
		found, err := DetectTree(c.g, c.tpl, Options{
			Seed: c.seed, Rounds: 2, N2: c.opt.N2, Workers: c.opt.Workers, NoGray: c.opt.NoGray,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out = append(out, goldenRun{Name: c.name, Totals: totals, Found: found})
	}

	// Scan-round transcripts: per-weight total vectors, plus the
	// entry-point table.
	scanCases := []struct {
		name string
		g    *graph.Graph
		k    int
		zmax int64
		seed uint64
		opt  Options
	}{
		{"scan/gW/k4/z6", gW, 4, 6, 31, Options{N2: 8}},
		{"scan/gW/k3/z4/workers2", gW, 3, 4, 32, Options{N2: 4, Workers: 2}},
	}
	for _, c := range scanCases {
		opt := c.opt
		if opt.Arena == nil {
			opt.Arena = NewArena()
		}
		var rows []string
		for round := 0; round < 2; round++ {
			a := NewScanAssignment(c.g.NumVertices(), c.k, c.seed, round)
			row, err := scanRound(c.g, c.k, c.zmax, a, opt)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			s := ""
			for z, v := range row {
				if z > 0 {
					s += ","
				}
				s += hexTotal(v)
			}
			rows = append(rows, s)
		}
		table, err := ScanTable(c.g, c.k, c.zmax, Options{
			Seed: c.seed, Rounds: 2, N2: c.opt.N2, Workers: c.opt.Workers,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out = append(out, goldenRun{Name: c.name, Rows: rows, Table: tableRows(table)})
	}
	return out
}

func buildGoldenBatches(t *testing.T) []goldenBatch {
	t.Helper()
	gA, _, gW := goldenGraphs()
	var out []goldenBatch

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// Heterogeneous path batch: mixed k (prefix retirement), a k=1
	// lane, an over-sized k>n lane, a per-lane round override, and a
	// short N2 so final phases are narrow.
	pathLanes := []BatchLane{
		{K: 5, Seed: 3},
		{K: 3, Seed: 4},
		{K: 1, Seed: 5},
		{K: 4, Seed: 6, Rounds: 2},
		{K: 20, Seed: 7}, // k > n: resolves immediately
	}
	res, err := DetectPathBatch(gA, pathLanes, Options{N2: 4, Rounds: 3})
	if err != nil {
		t.Fatalf("path batch: %v", err)
	}
	out = append(out, goldenBatch{Name: "batch/path/mixed-k", Lanes: laneGolden(res)})

	// Arena reuse: the same arena serves two consecutive batches; the
	// second run must be untouched by recycled slab contents.
	arena := NewArena()
	_, err = DetectPathBatch(gA, pathLanes, Options{N2: 4, Rounds: 3, Arena: arena})
	if err != nil {
		t.Fatalf("arena batch 1: %v", err)
	}
	res, err = DetectPathBatch(gA, pathLanes, Options{N2: 4, Rounds: 3, Arena: arena})
	if err != nil {
		t.Fatalf("arena batch 2: %v", err)
	}
	out = append(out, goldenBatch{Name: "batch/path/arena-reuse", Lanes: laneGolden(res)})

	// Per-lane cancellation: the cancelled lane is masked at the first
	// phase boundary (Err=context.Canceled, zero phases) while its
	// neighbors run to completion.
	cancelLanes := []BatchLane{
		{K: 4, Seed: 8},
		{K: 4, Seed: 9, Ctx: cancelled},
		{K: 3, Seed: 10},
	}
	res, err = DetectPathBatch(gA, cancelLanes, Options{N2: 8, Rounds: 2})
	if err != nil {
		t.Fatalf("cancel batch: %v", err)
	}
	out = append(out, goldenBatch{Name: "batch/path/lane-cancel", Lanes: laneGolden(res)})

	// Batch-wide abort: an expired Options.Ctx fails the whole flight
	// open, every unresolved lane carrying the context error.
	res, err = DetectPathBatch(gA, cancelLanes[:2], Options{N2: 8, Rounds: 2, Ctx: cancelled})
	out = append(out, goldenBatch{Name: "batch/path/flight-abort", Err: errString(err), Lanes: laneGolden(res)})

	// Tree batch: two lanes sharing a template digest (one group, one
	// decomposition) plus a different shape, and a cancelled lane.
	treeLanes := []BatchLane{
		{Template: graph.PathTemplate(3), Seed: 11},
		{Template: graph.PathTemplate(3), Seed: 12},
		{Template: graph.StarTemplate(4), Seed: 13},
		{Template: graph.RandomTemplate(5, 7), Seed: 14, Ctx: cancelled},
	}
	res, err = DetectTreeBatch(gA, treeLanes, Options{N2: 4, Rounds: 2})
	if err != nil {
		t.Fatalf("tree batch: %v", err)
	}
	out = append(out, goldenBatch{Name: "batch/tree/grouped", Lanes: laneGolden(res)})

	// Scan batch: heterogeneous (k, zmax) lanes over the weighted
	// graph, including a k>n lane (still a full table) and a cancelled
	// lane (nil table, context error).
	scanLanes := []BatchLane{
		{K: 3, ZMax: 5, Seed: 15},
		{K: 4, ZMax: 2, Seed: 16},
		{K: 12, ZMax: 3, Seed: 17, Rounds: 1},
		{K: 3, ZMax: 4, Seed: 18, Ctx: cancelled},
	}
	res, err = ScanTableBatch(gW, scanLanes, Options{N2: 4, Rounds: 2})
	if err != nil {
		t.Fatalf("scan batch: %v", err)
	}
	out = append(out, goldenBatch{Name: "batch/scan/mixed", Lanes: laneGolden(res)})

	return out
}

func TestGoldenTranscripts(t *testing.T) {
	got := goldenFile{Solo: buildGoldenSolo(t), Batches: buildGoldenBatches(t)}
	path := filepath.Join("testdata", "golden_transcripts.json")
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden transcripts (run with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Solo) != len(got.Solo) {
		t.Fatalf("solo case count changed: golden %d, current %d", len(want.Solo), len(got.Solo))
	}
	for i := range want.Solo {
		if !reflect.DeepEqual(want.Solo[i], got.Solo[i]) {
			t.Errorf("solo %q diverged:\n golden:  %+v\n current: %+v", want.Solo[i].Name, want.Solo[i], got.Solo[i])
		}
	}
	if len(want.Batches) != len(got.Batches) {
		t.Fatalf("batch case count changed: golden %d, current %d", len(want.Batches), len(got.Batches))
	}
	for i := range want.Batches {
		if !reflect.DeepEqual(want.Batches[i], got.Batches[i]) {
			t.Errorf("batch %q diverged:\n golden:  %+v\n current: %+v", want.Batches[i].Name, want.Batches[i], got.Batches[i])
		}
	}
}
