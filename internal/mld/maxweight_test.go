package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

func TestMaxWeightPathKnown(t *testing.T) {
	// P5 with weights 1,5,1,1,9: the best 3-path is 1+1+9 = 11.
	g := graph.Path(5)
	g.SetWeights([]int64{1, 5, 1, 1, 9})
	w, ok, err := MaxWeightPath(g, 3, Options{Seed: 1, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || w != 11 {
		t.Fatalf("got (%d,%v), want (11,true)", w, ok)
	}
	// k=5: the whole path, weight 17
	w, ok, err = MaxWeightPath(g, 5, Options{Seed: 1, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || w != 17 {
		t.Fatalf("k=5: got (%d,%v), want (17,true)", w, ok)
	}
	// no 6-path
	_, ok, err = MaxWeightPath(g, 6, Options{Seed: 1})
	if err != nil || ok {
		t.Fatalf("k=6 on P5 should not exist: ok=%v err=%v", ok, err)
	}
}

func TestMaxWeightPathMatchesBruteForce(t *testing.T) {
	r := rng.New(71)
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(7)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(5))
		}
		g.SetWeights(w)
		k := 2 + r.Intn(4)
		wantW, wantOK := BruteMaxWeightPath(g, k)
		gotW, gotOK, err := MaxWeightPath(g, k, Options{Seed: r.Uint64(), Epsilon: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || (wantOK && gotW != wantW) {
			t.Fatalf("trial %d n=%d k=%d: got (%d,%v) want (%d,%v)", trial, n, k, gotW, gotOK, wantW, wantOK)
		}
	}
}

func TestMaxWeightPathUnweighted(t *testing.T) {
	// all-zero weights: best weight is 0 if a k-path exists.
	g := graph.Cycle(6)
	g.SetWeights(make([]int64, 6))
	w, ok, err := MaxWeightPath(g, 4, Options{Seed: 2})
	if err != nil || !ok || w != 0 {
		t.Fatalf("got (%d,%v,%v)", w, ok, err)
	}
}

func TestMaxWeightPathValidation(t *testing.T) {
	g := graph.Path(4)
	g.SetWeights([]int64{1, -1, 0, 0})
	if _, _, err := MaxWeightPath(g, 2, Options{}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, _, err := MaxWeightPath(graph.Path(4), 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestDetectPathGF8Variant(t *testing.T) {
	r := rng.New(81)
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(8)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(4)
		want := graph.HasPathOfLength(g, k)
		got, err := DetectPath(g, k, Options{Seed: r.Uint64(), Variant: VariantGF8, Epsilon: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("gf8 trial %d k=%d: got %v want %v", trial, k, got, want)
		}
	}
	// one-sidedness
	for seed := uint64(0); seed < 10; seed++ {
		got, _ := DetectPath(graph.Star(8), 4, Options{Seed: seed, Variant: VariantGF8, Rounds: 1})
		if got {
			t.Fatalf("gf8 false positive at seed %d", seed)
		}
	}
	// GF8 needs more rounds than GF16 at the same epsilon
	if (Options{Variant: VariantGF8, Epsilon: 1e-6}).RoundsFor(10) <= (Options{Epsilon: 1e-6}).RoundsFor(10) {
		t.Fatal("GF8 should require at least as many rounds as GF16")
	}
}

func TestGF8BatchingInvariance(t *testing.T) {
	g := graph.RandomGNM(15, 35, 3)
	opt := func(n2 int) Options { return Options{Seed: 9, N2: n2, Variant: VariantGF8} }
	ref := pathRound8(g, 5, opt(1), 0)
	for _, n2 := range []int{2, 8, 32} {
		if got := pathRound8(g, 5, opt(n2), 0); got != ref {
			t.Fatalf("N2=%d: %#x != %#x", n2, got, ref)
		}
	}
	if got := pathRound8(g, 5, Options{Seed: 9, N2: 4, NoGray: true}, 0); got != ref {
		t.Fatal("NoGray changed gf8 total")
	}
}
