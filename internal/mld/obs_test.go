package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// TestDetectPathRecordsObs pins the sequential instrumentation: a
// detection run with a recorder attached must emit the round → phase →
// level span hierarchy and the analytic DP op count.
func TestDetectPathRecordsObs(t *testing.T) {
	// No edges ⇒ no k-path ⇒ every round runs (no early exit on a hit).
	g := graph.FromEdges(12, nil)
	rec := obs.NewRecorder(0, nil)
	const k, rounds = 5, 2
	opt := Options{Seed: 3, Rounds: rounds, N2: 8, Obs: rec}
	if _, err := DetectPath(g, k, opt); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if got := s.Counter(obs.Rounds); got != rounds {
		t.Fatalf("Rounds = %d, want %d", got, rounds)
	}
	// Each round: 2^k/N2 = 4 phases, each with levels 2..k.
	wantPhases := int64(rounds * 4)
	if got := s.Counter(obs.Phases); got != wantPhases {
		t.Fatalf("Phases = %d, want %d", got, wantPhases)
	}
	wantLevels := wantPhases * int64(k-1)
	if got := s.Counter(obs.Levels); got != wantLevels {
		t.Fatalf("Levels = %d, want %d", got, wantLevels)
	}
	// Per level and batched iteration: Σdeg + n = 2m + n elements.
	wantOps := wantLevels * int64(2*g.NumEdges()+g.NumVertices()) * 8
	if got := s.Counter(obs.DPOps); got != wantOps {
		t.Fatalf("DPOps = %d, want %d", got, wantOps)
	}
	// Span hierarchy: depth 0 = rounds, 1 = phases, 2 = levels; all closed.
	depth := map[int]map[string]bool{}
	for _, sp := range s.Spans {
		if sp.Dur < 0 {
			t.Fatalf("span %q left open", sp.Name)
		}
		if depth[sp.Depth] == nil {
			depth[sp.Depth] = map[string]bool{}
		}
		depth[sp.Depth][sp.Cat] = true
	}
	for d, want := range map[int]string{0: "round", 1: "phase", 2: "level"} {
		if !depth[d][want] || len(depth[d]) != 1 {
			t.Fatalf("depth %d categories = %v, want only %q", d, depth[d], want)
		}
	}
	if rec.Depth() != 0 {
		t.Fatalf("unbalanced spans: depth %d after run", rec.Depth())
	}
}

// TestDetectTreeAndScanRecordObs covers the other sequential evaluators
// at round granularity.
func TestDetectTreeAndScanRecordObs(t *testing.T) {
	g := graph.Path(8)
	tpl := graph.PathTemplate(4)
	rec := obs.NewRecorder(0, nil)
	if _, err := DetectTree(g, tpl, Options{Seed: 1, Rounds: 2, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Get(obs.Rounds); got < 1 {
		t.Fatalf("tree Rounds = %d, want >= 1 (may stop early on a hit)", got)
	}
	if rec.Get(obs.Levels) < 1 {
		t.Fatalf("tree recorded no level spans")
	}

	g.SetWeights(make([]int64, g.NumVertices()))
	rec2 := obs.NewRecorder(0, nil)
	if _, err := ScanTable(g, 3, 0, Options{Seed: 1, Rounds: 1, Obs: rec2}); err != nil {
		t.Fatal(err)
	}
	if rec2.Get(obs.Rounds) != 3 { // one per subgraph size j = 1..3
		t.Fatalf("scan Rounds = %d, want 3", rec2.Get(obs.Rounds))
	}
	if rec2.Depth() != 0 {
		t.Fatalf("scan left spans open: depth %d", rec2.Depth())
	}
}

// TestObsDisabledDetectPathAgrees asserts the nil-recorder path changes
// nothing about the answer (instrumentation is observation only).
func TestObsDisabledDetectPathAgrees(t *testing.T) {
	g := graph.RandomNLogN(60, 5)
	for _, k := range []int{3, 5} {
		plain, err := DetectPath(g, k, Options{Seed: 9, Rounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder(0, nil)
		instr, err := DetectPath(g, k, Options{Seed: 9, Rounds: 2, Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		if plain != instr {
			t.Fatalf("k=%d: instrumented answer %v differs from plain %v", k, instr, plain)
		}
	}
}
