package mld

import (
	"fmt"
	"sort"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// MotifSpec is a generalized graph-motif query: does g contain a
// connected subgraph on exactly K vertices whose color multiset
// satisfies the constraint? Counts maps a vertex color to its required
// multiplicity m_c: each listed color must appear at least m_c times,
// and when Σ m_c == K the constraint is exact — every vertex of the
// motif must carry a listed color, each exactly m_c times. Colors not
// listed are unconstrained (they may fill the K − Σ m_c free slots).
type MotifSpec struct {
	K      int
	Counts map[int32]int
}

// Validate checks the spec: K within [1, MaxK], positive
// multiplicities, Σ m_c ≤ K.
func (s *MotifSpec) Validate() error {
	if s == nil {
		return fmt.Errorf("mld: nil motif spec")
	}
	if err := ValidateK(s.K); err != nil {
		return err
	}
	total := 0
	for c, m := range s.Counts {
		if m <= 0 {
			return fmt.Errorf("mld: motif color %d has non-positive count %d", c, m)
		}
		total += m
	}
	if total > s.K {
		return fmt.Errorf("mld: motif counts sum to %d > k=%d", total, s.K)
	}
	return nil
}

// Exact reports whether the constraint pins the whole multiset
// (Σ m_c == K, no free slots).
func (s *MotifSpec) Exact() bool {
	total := 0
	for _, m := range s.Counts {
		total += m
	}
	return total == s.K
}

// colors returns the listed colors in ascending order — the
// deterministic block layout of the constrained sieve.
func (s *MotifSpec) colors() []int32 {
	out := make([]int32, 0, len(s.Counts))
	for c := range s.Counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Admits reports whether a color multiset (histogram over the motif's
// vertices) satisfies the constraint; the multiset must have exactly K
// entries. Used by the brute-force oracle and the FASCIA baseline.
func (s *MotifSpec) Admits(hist map[int32]int) bool {
	for c, m := range s.Counts {
		if hist[c] < m {
			return false
		}
	}
	return true
}

// NewMotifAssignment derives the round's constrained assignment: the
// usual n×K random matrix with the Björklund–Kaski–Kowalik variable
// groups imposed by zeroing. Listed color c owns a block of m_c label
// columns (blocks laid out in ascending color order); the trailing
// K − Σ m_c columns are wildcards open to every vertex. A vertex of
// color c draws randomness only in c's block and the wildcards, so by
// Hall's theorem a K-vertex monomial survives the 2^K sieve iff every
// listed color appears at least m_c times — and, in the exact case,
// vertices of unlisted colors get all-zero rows, which excludes them
// from every surviving term with no special-casing in the DP.
//
// The full matrix is drawn before masking, so the randomness consumed
// is a pure function of (seed, round, tagMotif, K) exactly like every
// other assignment — ranks and batch lanes reproduce solo runs.
func NewMotifAssignment(g *graph.Graph, spec *MotifSpec, seed uint64, round int) *Assignment {
	n := g.NumVertices()
	k := spec.K
	a := NewAssignment(n, k, seed, round, tagMotif)
	blockLo := make(map[int32]int, len(spec.Counts))
	blockHi := make(map[int32]int, len(spec.Counts))
	wlo := 0
	for _, c := range spec.colors() {
		blockLo[c] = wlo
		wlo += spec.Counts[c]
		blockHi[c] = wlo
	}
	// Columns [wlo, k) are wildcards and stay random for everyone;
	// within [0, wlo) a vertex keeps only its own color's block.
	for i := int32(0); i < int32(n); i++ {
		lo, hi := 0, 0
		if h, ok := blockHi[g.Label(i)]; ok {
			lo, hi = blockLo[g.Label(i)], h
		}
		row := a.u[int(i)*k : int(i)*k+k]
		for j := 0; j < wlo; j++ {
			if j < lo || j >= hi {
				row[j] = 0
			}
		}
	}
	return a
}

// motifFamily is the constrained-motif polynomial as a sweep-engine
// Family: the scan-statistics recurrence without the weight axis —
// P(i,1) = x_i, P(i,j) = Σ_u Σ_{j'} r·P(i,j')⊙P(u,j−j') — over
// lane-contiguous level slabs, each lane folding at its own K.
// Constraints live entirely in the assignment's zero pattern, so
// heterogeneous specs share one group.
type motifFamily struct {
	g *graph.Graph // labels feed the per-lane constrained assignments
	p [][]gf.Elem  // p[j]: flat n×stride, j = 1..kmax of the round's live set
}

func (f *motifFamily) Kind() string      { return "motif" }
func (f *motifFamily) CountPhases() bool { return true }

func (f *motifFamily) NewAssignment(n int, st *laneState, round int) *Assignment {
	return NewMotifAssignment(f.g, st.Motif, st.Seed, round)
}

func (f *motifFamily) BeginRound(st *laneState) { st.total = 0 }

func (f *motifFamily) EndRound(st *laneState, round int) {
	if st.total != 0 {
		st.found, st.done = true, true
	} else if round+1 >= st.roundsTotal {
		st.done = true
	}
}

func (f *motifFamily) groupK(e *groupRun) int {
	k := 0
	for _, st := range e.gr.live {
		if st.k > k {
			k = st.k
		}
	}
	return k
}

func (f *motifFamily) Alloc(e *groupRun) {
	n := e.g.NumVertices()
	kmax := f.groupK(e)
	f.p = make([][]gf.Elem, kmax+1)
	for j := 1; j <= kmax; j++ {
		f.p[j] = e.opt.Arena.Grab(n * e.gr.stride)
	}
}

func (f *motifFamily) Free(e *groupRun) {
	e.opt.Arena.Put(f.p[1:]...)
	f.p = nil
}

func (f *motifFamily) InitRow(e *groupRun) {
	n := e.g.NumVertices()
	stride := e.gr.stride
	// level 1: P(i,1) = x_i; deeper levels start empty. k=1 lanes fold
	// immediately (a single constrained vertex is a valid motif).
	for i := 0; i < n; i++ {
		row := i * stride
		for _, st := range e.live {
			st.a.FillBase(f.p[1][row+st.off:row+st.off+st.nb], int32(i), e.q0, e.opt.NoGray)
		}
	}
	spans := liveSpans(e.live)
	for j := 2; j < len(f.p); j++ {
		buf := f.p[j]
		for i := 0; i < n; i++ {
			row := i * stride
			for _, sp := range spans {
				seg := buf[row+sp.lo : row+sp.hi]
				for q := range seg {
					seg[q] = 0
				}
			}
		}
	}
	for _, st := range e.live {
		if st.k == 1 {
			st.accumulate(f.p[1], stride, n)
		}
	}
}

func (f *motifFamily) Transfers(e *groupRun) int {
	kPhase := 0
	for _, st := range e.live {
		if st.k > kPhase {
			kPhase = st.k
		}
	}
	return kPhase - 1
}

func (f *motifFamily) Transfer(e *groupRun, step int) {
	jj := step + 1
	g, opt, stride := e.g, e.opt, e.gr.stride
	var lvl []*laneState
	var lvlWidth int64
	for _, st := range e.live {
		if st.k >= jj {
			lvl = append(lvl, st)
			lvlWidth += int64(st.nb)
		}
	}
	opt.obsSpan(obs.LevelName, jj, "level")
	opt.obsLevel(levelElems(g) * lvlWidth)
	dst := f.p[jj]
	opt.parallelVertices(g, func(lo, hi int32) {
		var sk int64
		for i := lo; i < hi; i++ {
			row := int(i) * stride
			for _, u := range g.Neighbors(i) {
				urow := int(u) * stride
				for _, st := range lvl {
					for jp := 1; jp < jj; jp++ {
						src1 := f.p[jp][row+st.off : row+st.off+st.nb]
						if !gf.AnyNonZero(src1) {
							sk++
							continue
						}
						src2 := f.p[jj-jp][urow+st.off : urow+st.off+st.nb]
						if !gf.AnyNonZero(src2) {
							sk++
							continue
						}
						var r gf.Elem = 1
						if !opt.NoFingerprints {
							r = st.a.MotifCoeff(u, i, jj, jp)
						}
						// P(i,jj) += r · P(i,jp) ⊙ P(u,jj−jp)
						gf.MulHadamardAccumScaled(dst[row+st.off:row+st.off+st.nb], src1, src2, r)
					}
				}
			}
		}
		e.addSkipped(sk)
	})
	opt.obsEnd()
	n := g.NumVertices()
	for _, st := range lvl {
		if st.k == jj {
			st.accumulate(dst, stride, n)
		}
	}
}

func (f *motifFamily) Finalize(e *groupRun) {}

// DetectMotif decides whether g contains a connected K-vertex subgraph
// whose colors satisfy spec, with one-sided failure probability at
// most opt.Epsilon (a "yes" is always correct). Always evaluated over
// GF(2^16); the Variant option is ignored.
func DetectMotif(g *graph.Graph, spec *MotifSpec, opt Options) (bool, error) {
	if err := spec.Validate(); err != nil {
		return false, err
	}
	k := spec.K
	if k > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across this call's rounds
	}
	st := soloLane(k, opt)
	st.Motif = spec
	gr := &famGroup{fam: &motifFamily{g: g}, sts: []*laneState{st}}
	if err := runGroups(g, []*famGroup{gr}, opt.batch(k), opt); err != nil {
		return false, err
	}
	return st.found, st.err
}

// DetectMotifBatch answers len(lanes) independent motif queries (each
// lane's Motif field carries its spec; lane K is taken from the spec)
// in one batched evaluation. Results match per-lane DetectMotif calls
// byte-for-byte. Lanes with heterogeneous specs and sizes share one
// group: the constraint is a per-lane zero pattern, not a layout.
func DetectMotifBatch(g *graph.Graph, lanes []BatchLane, opt Options) ([]LaneResult, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > MaxBatchLanes {
		return nil, fmt.Errorf("mld: batch of %d lanes exceeds MaxBatchLanes=%d", len(lanes), MaxBatchLanes)
	}
	res := make([]LaneResult, len(lanes))
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	n := g.NumVertices()
	sts, kmax, _ := batchStates(lanes, n, res, opt, func(l BatchLane) (int, error) {
		if err := l.Motif.Validate(); err != nil {
			return 0, err
		}
		return l.Motif.K, nil
	})
	n2 := opt.batch(kmax)

	gr := &famGroup{fam: &motifFamily{g: g}, sts: sts}
	batchErr := runGroups(g, []*famGroup{gr}, n2, opt)
	for _, st := range sts {
		res[st.idx] = LaneResult{
			Found: st.found, Rounds: st.roundsRun, Phases: st.phases,
			TotalPhases: int64((st.iters + uint64(n2) - 1) / uint64(n2)),
			Err:         st.err,
		}
	}
	return res, batchErr
}

// motifRound evaluates the constrained-motif polynomial over all 2^K
// iterations of one assignment (nonzero ⇒ a satisfying motif exists):
// one engine sweep of a single motif lane.
func motifRound(g *graph.Graph, spec *MotifSpec, a *Assignment, opt Options) (gf.Elem, error) {
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	st := &laneState{BatchLane: BatchLane{K: a.K, Motif: spec}, k: a.K, iters: uint64(1) << uint(a.K), a: a}
	gr := &famGroup{fam: &motifFamily{g: g}, sts: []*laneState{st}, live: []*laneState{st}}
	if err := sweepGroups(g, []*famGroup{gr}, opt.batch(a.K), opt); err != nil {
		return 0, err
	}
	return st.total, nil
}

// BruteMotif answers the motif query by enumerating every connected
// K-vertex subset and checking its color histogram — the
// obviously-correct exponential oracle for DetectMotif. Small graphs
// only.
func BruteMotif(g *graph.Graph, spec *MotifSpec) bool {
	if err := spec.Validate(); err != nil {
		return false
	}
	n := g.NumVertices()
	k := spec.K
	if k > n {
		return false
	}
	set := make([]int32, 0, k)
	found := false
	var rec func(start int32)
	rec = func(start int32) {
		if found {
			return
		}
		if len(set) == k {
			if !graph.IsConnectedSubset(g, set) {
				return
			}
			hist := make(map[int32]int, k)
			for _, v := range set {
				hist[g.Label(v)]++
			}
			if spec.Admits(hist) {
				found = true
			}
			return
		}
		for v := start; v < int32(n); v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return found
}
