package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// BruteMaxWeightTree exhaustively finds the maximum-weight embedding of
// tpl in g (test oracle).
func BruteMaxWeightTree(g *graph.Graph, tpl *graph.Template) (int64, bool) {
	k := tpl.K()
	n := g.NumVertices()
	if k > n {
		return 0, false
	}
	order := make([]int32, 0, k)
	attach := make([]int32, k)
	seen := make([]bool, k)
	seen[0] = true
	attach[0] = -1
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range tpl.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				attach[u] = v
				queue = append(queue, u)
			}
		}
	}
	mapping := make([]int32, k)
	placed := make([]bool, k)
	usedG := map[int32]bool{}
	best := int64(-1)
	var dfs func(idx int, weight int64)
	dfs = func(idx int, weight int64) {
		if idx == k {
			if weight > best {
				best = weight
			}
			return
		}
		tv := order[idx]
		try := func(gv int32) {
			if usedG[gv] {
				return
			}
			for _, tn := range tpl.Neighbors(tv) {
				if placed[tn] && !g.HasEdge(gv, mapping[tn]) {
					return
				}
			}
			usedG[gv] = true
			mapping[tv] = gv
			placed[tv] = true
			dfs(idx+1, weight+g.Weight(gv))
			placed[tv] = false
			delete(usedG, gv)
		}
		if attach[tv] < 0 {
			for gv := int32(0); gv < int32(n); gv++ {
				try(gv)
			}
			return
		}
		for _, gv := range g.Neighbors(mapping[attach[tv]]) {
			try(gv)
		}
	}
	dfs(0, 0)
	if best < 0 {
		return 0, false
	}
	return best, true
}

func TestMaxWeightTreeKnown(t *testing.T) {
	// Star graph, star template: center forced, pick heaviest leaves.
	g := graph.Star(6)
	g.SetWeights([]int64{1, 9, 2, 8, 3, 7})
	w, ok, err := MaxWeightTree(g, graph.StarTemplate(4), Options{Seed: 1, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// center(1) + three heaviest leaves 9+8+7 = 25
	if !ok || w != 25 {
		t.Fatalf("got (%d,%v), want (25,true)", w, ok)
	}
}

func TestMaxWeightTreeMatchesBruteForce(t *testing.T) {
	r := rng.New(91)
	for trial := 0; trial < 15; trial++ {
		n := 6 + r.Intn(6)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(4))
		}
		g.SetWeights(w)
		k := 2 + r.Intn(4)
		tpl := graph.RandomTemplate(k, r.Uint64())
		wantW, wantOK := BruteMaxWeightTree(g, tpl)
		gotW, gotOK, err := MaxWeightTree(g, tpl, Options{Seed: r.Uint64(), Epsilon: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || (wantOK && gotW != wantW) {
			t.Fatalf("trial %d n=%d k=%d: got (%d,%v) want (%d,%v)", trial, n, k, gotW, gotOK, wantW, wantOK)
		}
	}
}

func TestMaxWeightTreePathTemplateAgreesWithMaxWeightPath(t *testing.T) {
	r := rng.New(93)
	for trial := 0; trial < 8; trial++ {
		n := 7 + r.Intn(5)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(3))
		}
		g.SetWeights(w)
		k := 3 + r.Intn(3)
		pw, pok, err := MaxWeightPath(g, k, Options{Seed: 4, Epsilon: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		tw, tok, err := MaxWeightTree(g, graph.PathTemplate(k), Options{Seed: 4, Epsilon: 1e-5})
		if err != nil {
			t.Fatal(err)
		}
		if pok != tok || (pok && pw != tw) {
			t.Fatalf("trial %d k=%d: path (%d,%v) vs tree (%d,%v)", trial, k, pw, pok, tw, tok)
		}
	}
}

func TestMaxWeightTreeSingleVertexTemplate(t *testing.T) {
	g := graph.Path(4)
	g.SetWeights([]int64{2, 7, 1, 5})
	w, ok, err := MaxWeightTree(g, graph.MustTemplate(1, nil), Options{Seed: 1, Epsilon: 1e-4})
	if err != nil || !ok || w != 7 {
		t.Fatalf("got (%d,%v,%v), want (7,true,nil)", w, ok, err)
	}
}

func TestMaxWeightTreeValidation(t *testing.T) {
	g := graph.Path(4)
	g.SetWeights([]int64{0, -2, 0, 0})
	if _, _, err := MaxWeightTree(g, graph.PathTemplate(2), Options{}); err == nil {
		t.Fatal("negative weight accepted")
	}
}
