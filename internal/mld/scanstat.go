package mld

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// scanExt is the scan-family extension of a lane: the feasibility
// table under construction plus the per-sweep DP strata. The weight
// axis is lane-private (ZMax differs per lane), so scan batching
// shares the iteration sweep and the vertex fan-out but keeps
// per-lane weight buffers rather than a lane-contiguous layout.
type scanExt struct {
	feas [][]bool
	nz   int

	// per-(size, round) sweep state
	p      [][][]gf.Elem // p[jj][z]: flat n×n2, one stratum per (level, weight)
	base   []gf.Elem
	totals []gf.Elem
}

// scanFamily is the weight-stratified scan polynomial for one subgraph
// size as a sweep-engine Family. A ScanTable call runs one engine pass
// per size j ≤ k, each with its own 2^j iteration space and round
// budget; the family keeps the table's historical phase-less
// accounting (no phase spans, Levels charged without DPOps).
type scanFamily struct {
	j    int   // subgraph size of this engine pass
	maxw int64 // max vertex weight: caps the per-stratum z loops
}

// scanMaxWeight is the largest vertex weight: a subgraph on s vertices
// weighs at most s·maxw, so DP cells above that are identically zero.
func scanMaxWeight(g *graph.Graph) int64 {
	var maxw int64
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if w := g.Weight(v); w > maxw {
			maxw = w
		}
	}
	return maxw
}

func (f *scanFamily) Kind() string      { return "scan" }
func (f *scanFamily) CountPhases() bool { return false }

func (f *scanFamily) NewAssignment(n int, st *laneState, round int) *Assignment {
	return NewAssignment(n, f.j, st.Seed, round, tagScan)
}

func (f *scanFamily) BeginRound(st *laneState) {}

func (f *scanFamily) EndRound(st *laneState, round int) {
	sc := st.scan
	if sc.feas == nil {
		return
	}
	for z := 0; z < sc.nz; z++ {
		if sc.totals[z] != 0 {
			sc.feas[f.j][z] = true
		}
	}
}

func (f *scanFamily) Alloc(e *groupRun) {
	n := e.g.NumVertices()
	for _, st := range e.gr.live {
		sc := st.scan
		sc.p = make([][][]gf.Elem, f.j+1)
		for jj := 1; jj <= f.j; jj++ {
			sc.p[jj] = make([][]gf.Elem, sc.nz)
			for z := 0; z < sc.nz; z++ {
				sc.p[jj][z] = e.opt.Arena.Grab(n * e.n2)
			}
		}
		sc.base = e.opt.Arena.Grab(n * e.n2)
		sc.totals = make([]gf.Elem, sc.nz)
	}
}

func (f *scanFamily) Free(e *groupRun) {
	for _, st := range e.gr.live {
		sc := st.scan
		if sc.base == nil {
			continue
		}
		e.opt.Arena.Put(sc.base)
		for jj := 1; jj <= f.j; jj++ {
			e.opt.Arena.Put(sc.p[jj]...)
		}
		sc.base, sc.p = nil, nil
	}
}

func (f *scanFamily) InitRow(e *groupRun) {
	g, n2 := e.g, e.n2
	n := g.NumVertices()
	for _, st := range e.live {
		sc := st.scan
		nb := st.nb
		for i := 0; i < n; i++ {
			st.a.FillBase(sc.base[i*n2:i*n2+nb], int32(i), e.q0, e.opt.NoGray)
		}
		for jj := 1; jj <= f.j; jj++ {
			for z := 0; z < sc.nz; z++ {
				buf := sc.p[jj][z]
				for i := range buf {
					buf[i] = 0
				}
			}
		}
		// base case: P(i,1,w(i)) = x_i
		for i := 0; i < n; i++ {
			w := g.Weight(int32(i))
			if w > st.ZMax {
				continue
			}
			copy(sc.p[1][w][i*n2:i*n2+nb], sc.base[i*n2:i*n2+nb])
		}
	}
}

func (f *scanFamily) Transfers(e *groupRun) int { return f.j - 1 }

// Transfer runs one level of the inductive case — P(i,jj,z) =
// Σ_u Σ_{j'} Σ_{z'} r·P(i,j',z')·P(u,jj-j',z-z') — for every live
// lane's private weight strata, one vertex fan-out serving all lanes.
// Level jj reads only levels < jj, and each vertex writes only its own
// rows, so the vertex loop parallelizes per level.
func (f *scanFamily) Transfer(e *groupRun, step int) {
	jj := step + 1
	g, opt, n2 := e.g, e.opt, e.n2
	live := e.live
	opt.obsSpan(obs.LevelName, jj, "level")
	opt.Obs.Add(obs.Levels, int64(len(live)))
	opt.parallelVertices(g, func(lo, hi int32) {
		var sk int64
		for _, st := range live {
			sc := st.scan
			nb := st.nb
			zcap := func(s int) int {
				c := int64(s) * f.maxw
				if c > st.ZMax {
					c = st.ZMax
				}
				return int(c)
			}
			for i := lo; i < hi; i++ {
				iLo, iHi := int(i)*n2, int(i)*n2+nb
				for _, u := range g.Neighbors(i) {
					uLo, uHi := int(u)*n2, int(u)*n2+nb
					for jp := 1; jp < jj; jp++ {
						jr := jj - jp
						for zp := 0; zp <= zcap(jp); zp++ {
							src1 := sc.p[jp][zp][iLo:iHi]
							if !gf.AnyNonZero(src1) {
								sk++
								continue
							}
							var r gf.Elem = 1
							if !opt.NoFingerprints {
								r = st.a.ScanCoeff(u, i, jj, jp, int64(zp))
							}
							for zr := 0; zr <= zcap(jr) && zp+zr < sc.nz; zr++ {
								src2 := sc.p[jr][zr][uLo:uHi]
								if !gf.AnyNonZero(src2) {
									sk++
									continue
								}
								gf.MulHadamardAccumScaled(sc.p[jj][zp+zr][iLo:iHi], src1, src2, r)
							}
						}
					}
				}
			}
		}
		e.addSkipped(sk)
	})
	opt.obsEnd()
}

func (f *scanFamily) Finalize(e *groupRun) {
	n, n2 := e.g.NumVertices(), e.n2
	for _, st := range e.live {
		sc := st.scan
		for z := 0; z < sc.nz; z++ {
			buf := sc.p[f.j][z]
			for i := 0; i < n; i++ {
				for q := 0; q < st.nb; q++ {
					sc.totals[z] ^= buf[i*n2+q]
				}
			}
		}
	}
}

// ScanTable computes the connected-subgraph feasibility table behind the
// scan-statistics optimization (paper Section V-B): entry [j][z] is true
// iff g has a connected subgraph of exactly j vertices with total event
// weight exactly z, for 1 ≤ j ≤ k and 0 ≤ z ≤ zmax. Errors are
// one-sided (a true entry is always correct; a feasible entry is false
// with probability at most opt.Epsilon).
//
// The GF evaluation detects terms whose χ-support equals the number of
// colors, so each target size j runs with its own j-color iteration
// space of 2^j points; the total work Σ_j 2^j·poly ≤ 2^(k+1)·poly
// matches Lemma 3's O(2^k ...) bound (DESIGN.md §2).
//
// Vertex weights must be non-negative.
func ScanTable(g *graph.Graph, k int, zmax int64, opt Options) ([][]bool, error) {
	if err := validateK(k, g.NumVertices()); err != nil {
		return nil, err
	}
	if zmax < 0 {
		return nil, fmt.Errorf("mld: negative weight cap %d", zmax)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.Weight(v) < 0 {
			return nil, fmt.Errorf("mld: vertex %d has negative weight %d", v, g.Weight(v))
		}
	}
	feas := make([][]bool, k+1)
	for j := 1; j <= k; j++ {
		feas[j] = make([]bool, zmax+1)
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across sizes and rounds
	}
	maxw := scanMaxWeight(g)
	st := soloLane(k, opt)
	st.ZMax = zmax
	st.scan = &scanExt{feas: feas, nz: int(zmax) + 1}
	for j := 1; j <= k && j <= g.NumVertices(); j++ {
		// Each size is its own engine pass: a 2^j iteration space with a
		// j-derived round budget, reusing the lane (and its table) across
		// passes.
		st.iters = uint64(1) << uint(j)
		st.roundsTotal = opt.RoundsFor(j)
		gr := &famGroup{fam: &scanFamily{j: j, maxw: maxw}, sts: []*laneState{st}}
		if err := runGroups(g, []*famGroup{gr}, opt.batch(j), opt); err != nil {
			return nil, err
		}
	}
	return feas, nil
}

// CellFeasible answers a single feasibility question — does g contain a
// connected subgraph of exactly j vertices and weight exactly z? — by
// running only the size-j evaluation (the witness-extraction oracle, for
// which computing the whole table would waste a factor ~2).
func CellFeasible(g *graph.Graph, j int, z int64, opt Options) (bool, error) {
	if err := validateK(j, g.NumVertices()); err != nil {
		return false, err
	}
	if z < 0 {
		return false, fmt.Errorf("mld: negative weight %d", z)
	}
	if j > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	rounds := opt.RoundsFor(j)
	for round := 0; round < rounds; round++ {
		a := NewAssignment(g.NumVertices(), j, opt.Seed, round, tagScan)
		row, err := scanRound(g, j, z, a, opt)
		if err != nil {
			return false, err
		}
		if row[z] != 0 {
			return true, nil
		}
	}
	return false, nil
}

// scanRound evaluates the scan polynomial for subgraph size exactly j
// over all 2^j iterations of one assignment, returning the per-weight
// field totals (nonzero at z ⇒ a connected size-j weight-z subgraph
// exists): one engine sweep of a single scan lane. A non-nil opt.Ctx
// aborts between iteration batches with the context's error.
func scanRound(g *graph.Graph, j int, zmax int64, a *Assignment, opt Options) ([]gf.Elem, error) {
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	st := &laneState{BatchLane: BatchLane{K: j, ZMax: zmax}, k: j, iters: uint64(1) << uint(j), a: a}
	st.scan = &scanExt{nz: int(zmax) + 1}
	gr := &famGroup{fam: &scanFamily{j: j, maxw: scanMaxWeight(g)}, sts: []*laneState{st}, live: []*laneState{st}}
	if err := sweepGroups(g, []*famGroup{gr}, opt.batch(j), opt); err != nil {
		return nil, err
	}
	return st.scan.totals, nil
}

// BruteScanTable computes the exact feasibility table by enumerating all
// vertex combinations of size up to k and testing connectivity — the
// obviously-correct (and exponential) test oracle for ScanTable. Small
// graphs only.
func BruteScanTable(g *graph.Graph, k int, zmax int64) [][]bool {
	feas := make([][]bool, k+1)
	for j := 1; j <= k; j++ {
		feas[j] = make([]bool, zmax+1)
	}
	n := g.NumVertices()
	set := make([]int32, 0, k)
	var rec func(start int32)
	rec = func(start int32) {
		if j := len(set); j >= 1 {
			var w int64
			for _, v := range set {
				w += g.Weight(v)
			}
			if w <= zmax && graph.IsConnectedSubset(g, set) {
				feas[j][w] = true
			}
		}
		if len(set) == k {
			return
		}
		for v := start; v < int32(n); v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return feas
}
