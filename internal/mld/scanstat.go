package mld

import (
	"fmt"
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// ScanTable computes the connected-subgraph feasibility table behind the
// scan-statistics optimization (paper Section V-B): entry [j][z] is true
// iff g has a connected subgraph of exactly j vertices with total event
// weight exactly z, for 1 ≤ j ≤ k and 0 ≤ z ≤ zmax. Errors are
// one-sided (a true entry is always correct; a feasible entry is false
// with probability at most opt.Epsilon).
//
// The GF evaluation detects terms whose χ-support equals the number of
// colors, so each target size j runs with its own j-color iteration
// space of 2^j points; the total work Σ_j 2^j·poly ≤ 2^(k+1)·poly
// matches Lemma 3's O(2^k ...) bound (DESIGN.md §2).
//
// Vertex weights must be non-negative.
func ScanTable(g *graph.Graph, k int, zmax int64, opt Options) ([][]bool, error) {
	if err := validateK(k, g.NumVertices()); err != nil {
		return nil, err
	}
	if zmax < 0 {
		return nil, fmt.Errorf("mld: negative weight cap %d", zmax)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if g.Weight(v) < 0 {
			return nil, fmt.Errorf("mld: vertex %d has negative weight %d", v, g.Weight(v))
		}
	}
	feas := make([][]bool, k+1)
	for j := 1; j <= k; j++ {
		feas[j] = make([]bool, zmax+1)
	}
	if opt.Arena == nil {
		opt.Arena = NewArena() // share slabs across sizes and rounds
	}
	for j := 1; j <= k && j <= g.NumVertices(); j++ {
		rounds := opt.RoundsFor(j)
		for round := 0; round < rounds; round++ {
			if err := opt.ctxErr(); err != nil {
				return nil, err
			}
			opt.obsSpan(obs.RoundName, round, "round")
			opt.Obs.Add(obs.Rounds, 1)
			a := NewAssignment(g.NumVertices(), j, opt.Seed, round, tagScan)
			row, err := scanRound(g, j, zmax, a, opt)
			opt.obsEnd()
			if err != nil {
				return nil, err
			}
			for z := int64(0); z <= zmax; z++ {
				if row[z] != 0 {
					feas[j][z] = true
				}
			}
		}
	}
	return feas, nil
}

// CellFeasible answers a single feasibility question — does g contain a
// connected subgraph of exactly j vertices and weight exactly z? — by
// running only the size-j evaluation (the witness-extraction oracle, for
// which computing the whole table would waste a factor ~2).
func CellFeasible(g *graph.Graph, j int, z int64, opt Options) (bool, error) {
	if err := validateK(j, g.NumVertices()); err != nil {
		return false, err
	}
	if z < 0 {
		return false, fmt.Errorf("mld: negative weight %d", z)
	}
	if j > g.NumVertices() {
		return false, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	rounds := opt.RoundsFor(j)
	for round := 0; round < rounds; round++ {
		a := NewAssignment(g.NumVertices(), j, opt.Seed, round, tagScan)
		row, err := scanRound(g, j, z, a, opt)
		if err != nil {
			return false, err
		}
		if row[z] != 0 {
			return true, nil
		}
	}
	return false, nil
}

// scanRound evaluates the scan polynomial for subgraph size exactly j
// over all 2^j iterations of one assignment, returning the per-weight
// field totals (nonzero at z ⇒ a connected size-j weight-z subgraph
// exists). A non-nil opt.Ctx aborts between iteration batches with the
// context's error.
func scanRound(g *graph.Graph, j int, zmax int64, a *Assignment, opt Options) ([]gf.Elem, error) {
	n := g.NumVertices()
	n2 := opt.batch(j)
	iters := uint64(1) << uint(j)
	nz := int(zmax) + 1
	// A subgraph on s vertices weighs at most s·max_v w(v); cells above
	// that are identically zero, so the DP loops can stop there.
	var maxw int64
	for v := int32(0); v < int32(n); v++ {
		if w := g.Weight(v); w > maxw {
			maxw = w
		}
	}
	zcap := func(s int) int {
		c := int64(s) * maxw
		if c > zmax {
			c = zmax
		}
		return int(c)
	}

	// p[jj][z] is a flat n×n2 buffer; cell (i,q) at [i*n2+q].
	p := make([][][]gf.Elem, j+1)
	for jj := 1; jj <= j; jj++ {
		p[jj] = make([][]gf.Elem, nz)
		for z := 0; z < nz; z++ {
			p[jj][z] = opt.Arena.Grab(n * n2)
		}
	}
	base := opt.Arena.Grab(n * n2)
	defer func() {
		opt.Arena.Put(base)
		for jj := 1; jj <= j; jj++ {
			opt.Arena.Put(p[jj]...)
		}
	}()
	totals := make([]gf.Elem, nz)
	var skipped int64

	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		if err := opt.ctxErr(); err != nil {
			opt.Obs.Add(obs.CellsSkipped, skipped)
			return nil, err
		}
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for i := 0; i < n; i++ {
			a.FillBase(base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
		}
		// base case: P(i,1,w(i)) = x_i
		for jj := 1; jj <= j; jj++ {
			for z := 0; z < nz; z++ {
				buf := p[jj][z]
				for i := range buf {
					buf[i] = 0
				}
			}
		}
		for i := 0; i < n; i++ {
			w := g.Weight(int32(i))
			if w > zmax {
				continue
			}
			copy(p[1][w][i*n2:i*n2+nb], base[i*n2:i*n2+nb])
		}
		// inductive: P(i,jj,z) = Σ_u Σ_{j'} Σ_{z'} r·P(i,j',z')·P(u,jj-j',z-z')
		// Level jj reads only levels < jj, and each vertex writes only
		// its own rows, so the vertex loop parallelizes per level.
		for jj := 2; jj <= j; jj++ {
			opt.obsSpan(obs.LevelName, jj, "level")
			opt.Obs.Add(obs.Levels, 1)
			jj := jj
			opt.parallelVertices(g, func(lo, hi int32) {
				var sk int64
				for i := lo; i < hi; i++ {
					iLo, iHi := int(i)*n2, int(i)*n2+nb
					for _, u := range g.Neighbors(i) {
						uLo, uHi := int(u)*n2, int(u)*n2+nb
						for jp := 1; jp < jj; jp++ {
							jr := jj - jp
							for zp := 0; zp <= zcap(jp); zp++ {
								src1 := p[jp][zp][iLo:iHi]
								if !gf.AnyNonZero(src1) {
									sk++
									continue
								}
								var r gf.Elem = 1
								if !opt.NoFingerprints {
									r = a.ScanCoeff(u, i, jj, jp, int64(zp))
								}
								for zr := 0; zr <= zcap(jr) && zp+zr < nz; zr++ {
									src2 := p[jr][zr][uLo:uHi]
									if !gf.AnyNonZero(src2) {
										sk++
										continue
									}
									gf.MulHadamardAccumScaled(p[jj][zp+zr][iLo:iHi], src1, src2, r)
								}
							}
						}
					}
				}
				if sk != 0 {
					atomic.AddInt64(&skipped, sk)
				}
			})
			opt.obsEnd()
		}
		for z := 0; z < nz; z++ {
			buf := p[j][z]
			for i := 0; i < n; i++ {
				for q := 0; q < nb; q++ {
					totals[z] ^= buf[i*n2+q]
				}
			}
		}
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return totals, nil
}

// BruteScanTable computes the exact feasibility table by enumerating all
// vertex combinations of size up to k and testing connectivity — the
// obviously-correct (and exponential) test oracle for ScanTable. Small
// graphs only.
func BruteScanTable(g *graph.Graph, k int, zmax int64) [][]bool {
	feas := make([][]bool, k+1)
	for j := 1; j <= k; j++ {
		feas[j] = make([]bool, zmax+1)
	}
	n := g.NumVertices()
	set := make([]int32, 0, k)
	var rec func(start int32)
	rec = func(start int32) {
		if j := len(set); j >= 1 {
			var w int64
			for _, v := range set {
				w += g.Weight(v)
			}
			if w <= zmax && graph.IsConnectedSubset(g, set) {
				feas[j][w] = true
			}
		}
		if len(set) == k {
			return
		}
		for v := start; v < int32(n); v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return feas
}
