package mld

import (
	"testing"
)

func TestArenaReuse(t *testing.T) {
	a := NewArena()
	s := a.Grab(1000)
	s[5] = 7
	a.Put(s)
	s2 := a.Grab(1000)
	if &s[0] != &s2[0] {
		t.Fatal("same-length grab did not reuse the pooled slab")
	}
	if s2[5] != 0 {
		t.Fatal("reused slab was not zeroed")
	}
	s8 := a.Grab8(512)
	a.Put8(s8)
	if got := a.Grab8(512); &got[0] != &s8[0] {
		t.Fatal("Grab8 did not reuse the pooled slab")
	}
}

// TestArenaNilSafe: a nil arena allocates and ignores puts.
func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	s := a.Grab(64)
	if len(s) != 64 {
		t.Fatal("nil arena Grab returned wrong length")
	}
	a.Put(s)
	a.Put8(a.Grab8(32))
	if a.RetainedBytes() != 0 || a.Classes() != 0 {
		t.Fatal("nil arena claims retained state")
	}
}

// TestArenaByteCapEvictsOldest: hammering the pool with many distinct
// lengths keeps retained bytes under the cap, evicting oldest-first.
func TestArenaByteCapEvictsOldest(t *testing.T) {
	const maxBytes = 64 << 10
	a := NewArenaCap(maxBytes, 0)
	// 100 distinct classes of 2000-element (4000-byte) slabs: ~400 KB
	// offered against a 64 KB budget.
	for i := 0; i < 100; i++ {
		a.Put(make([]gf16, 2000+i))
	}
	if got := a.RetainedBytes(); got > maxBytes {
		t.Fatalf("retained %d bytes, cap %d", got, maxBytes)
	}
	// The survivors must be the newest classes.
	if ss := a.Grab(2099); cap(ss) == 0 {
		t.Fatal("grab returned empty slab") // unreachable; silences vet
	}
	old := a.Grab(2000)
	a.Put(old)
	if a.RetainedBytes() > maxBytes {
		t.Fatal("re-putting an evicted-length slab broke the cap")
	}
}

// gf16 aliases the element type so the test reads clearly.
type gf16 = uint16

// TestArenaClassCap: the number of distinct pooled classes stays
// bounded no matter how many lengths are offered.
func TestArenaClassCap(t *testing.T) {
	a := NewArenaCap(0, 8)
	for i := 0; i < 200; i++ {
		s := a.Grab(100 + i)
		a.Put(s)
	}
	if got := a.Classes(); got > 8 {
		t.Fatalf("%d classes retained, cap 8", got)
	}
	// Newest classes survive: length 299 must still be pooled.
	s := a.Grab(299)
	a.Put(s)
	if got := a.Classes(); got > 8 {
		t.Fatalf("%d classes after re-put, cap 8", got)
	}
}

// TestArenaOverBudgetSlabNotRetained: a slab larger than the whole
// byte budget is dropped outright.
func TestArenaOverBudgetSlabNotRetained(t *testing.T) {
	a := NewArenaCap(1<<10, 0)
	a.Put(make([]gf16, 4096)) // 8 KB > 1 KB budget
	if a.RetainedBytes() != 0 {
		t.Fatalf("over-budget slab retained (%d bytes)", a.RetainedBytes())
	}
}

// TestArenaMixedLengthHammer simulates a long-lived service arena
// churning through many query shapes: mixed grab/put of 8- and
// 16-bit slabs of varying lengths must respect both caps throughout.
func TestArenaMixedLengthHammer(t *testing.T) {
	const (
		maxBytes   = 256 << 10
		maxClasses = 16
	)
	a := NewArenaCap(maxBytes, maxClasses)
	for round := 0; round < 50; round++ {
		held := make([][]gf16, 0, 10)
		held8 := make([][]uint8, 0, 10)
		for i := 0; i < 10; i++ {
			n := 1000 + 977*((round*10+i)%37)
			held = append(held, a.Grab(n))
			held8 = append(held8, a.Grab8(n/2))
		}
		for _, s := range held {
			a.Put(s)
		}
		for _, s := range held8 {
			a.Put8(s)
		}
		if got := a.RetainedBytes(); got > maxBytes {
			t.Fatalf("round %d: retained %d bytes, cap %d", round, got, maxBytes)
		}
		if got := a.Classes(); got > maxClasses {
			t.Fatalf("round %d: %d classes, cap %d", round, got, maxClasses)
		}
	}
	if a.RetainedBytes() == 0 {
		t.Fatal("hammer left the pool empty; caps are evicting everything")
	}
}
