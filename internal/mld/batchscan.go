package mld

import (
	"fmt"
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// scanLane is one lane's per-call scan state: the feasibility table
// under construction plus the per-sweep DP strata. The weight axis is
// lane-private (ZMax differs per lane), so scan batching shares the
// iteration sweep and the vertex fan-out but keeps per-lane weight
// buffers rather than a lane-contiguous layout.
type scanLane struct {
	*laneState
	feas [][]bool
	nz   int

	// per-(size, round) sweep state
	p      [][][]gf.Elem // p[jj][z]: flat n×n2, like scanRound
	base   []gf.Elem
	totals []gf.Elem
}

// ScanTableBatch computes len(lanes) independent scan-statistics
// feasibility tables (see ScanTable) in one batched evaluation: for
// each subgraph size j, all lanes with k ≥ j sweep the 2^j iteration
// space together, one vertex fan-out per DP level serving every lane.
// Tables match per-lane ScanTable calls byte-for-byte. Non-GF16
// variants fall back to sequential per-lane runs.
func ScanTableBatch(g *graph.Graph, lanes []BatchLane, opt Options) ([]LaneResult, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > MaxBatchLanes {
		return nil, fmt.Errorf("mld: batch of %d lanes exceeds MaxBatchLanes=%d", len(lanes), MaxBatchLanes)
	}
	res := make([]LaneResult, len(lanes))
	if opt.Variant != VariantGF16 {
		for i, l := range lanes {
			table, err := ScanTable(g, l.K, l.ZMax, laneOptions(opt, l))
			res[i] = LaneResult{Table: table, Err: err}
		}
		return res, nil
	}
	n := g.NumVertices()
	var weightErr error
	var maxw int64
	for v := int32(0); v < int32(n); v++ {
		w := g.Weight(v)
		if w < 0 && weightErr == nil {
			weightErr = fmt.Errorf("mld: vertex %d has negative weight %d", v, w)
		}
		if w > maxw {
			maxw = w
		}
	}
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	// Pass MaxK as the vertex bound so no lane is skipped: unlike the
	// path/tree detectors, ScanTable still builds a table when k > n
	// (sizes j > n simply stay infeasible).
	sts, kmax, _ := batchStates(lanes, MaxK, res, opt, func(l BatchLane) (int, error) {
		if l.ZMax < 0 {
			return 0, fmt.Errorf("mld: negative weight cap %d", l.ZMax)
		}
		return l.K, nil
	})
	sls := make([]*scanLane, len(sts))
	for i, st := range sts {
		if weightErr != nil {
			st.done, st.err = true, weightErr
		}
		sl := &scanLane{laneState: st, nz: int(st.ZMax) + 1}
		sl.feas = make([][]bool, st.k+1)
		for j := 1; j <= st.k; j++ {
			sl.feas[j] = make([]bool, sl.nz)
		}
		sls[i] = sl
	}

	var batchErr error
sizes:
	for j := 1; j <= kmax && j <= n; j++ {
		n2 := opt.batch(j)
		maxRounds := 0
		for _, sl := range sls {
			if sl.k >= j && !sl.done {
				if r := laneOptions(opt, sl.BatchLane).RoundsFor(j); r > maxRounds {
					maxRounds = r
				}
			}
		}
		for round := 0; round < maxRounds; round++ {
			var active []*scanLane
			for _, sl := range sls {
				if sl.k >= j && !sl.done && round < laneOptions(opt, sl.BatchLane).RoundsFor(j) {
					active = append(active, sl)
				}
			}
			if len(active) == 0 {
				continue
			}
			if err := opt.ctxErr(); err != nil {
				batchErr = err
				break sizes
			}
			opt.obsSpan(obs.RoundName, round, "round")
			opt.Obs.Add(obs.Rounds, int64(len(active)))
			for _, sl := range active {
				sl.a = NewAssignment(n, j, sl.Seed, round, tagScan)
				sl.roundsRun++
			}
			err := batchScanRound(g, j, active, n2, maxw, opt)
			opt.obsEnd()
			if err != nil {
				batchErr = err
				break sizes
			}
			for _, sl := range active {
				if sl.done {
					continue // cancelled mid-round; totals are void
				}
				for z := int64(0); z < int64(sl.nz); z++ {
					if sl.totals[z] != 0 {
						sl.feas[j][z] = true
					}
				}
			}
		}
	}
	if batchErr != nil {
		failOpen(sts, batchErr)
	}
	for i, sl := range sls {
		table := sl.feas
		if sl.err != nil {
			table = nil // match ScanTable: an aborted call yields no table
		}
		res[sts[i].idx] = LaneResult{
			Table: table, Rounds: sl.roundsRun,
			TotalPhases: int64((sl.iters + uint64(opt.batch(sl.k)) - 1) / uint64(opt.batch(sl.k))),
			Phases:      sl.phases,
			Err:         sl.err,
		}
	}
	return res, batchErr
}

// batchScanRound runs one (size, round) joint sweep: every active lane
// evaluates its own weight-stratified DP (exactly scanRound's math)
// over the shared 2^j iteration loop, with one parallelVertices
// fan-out per DP level covering all lanes.
func batchScanRound(g *graph.Graph, j int, active []*scanLane, n2 int, maxw int64, opt Options) error {
	n := g.NumVertices()
	iters := uint64(1) << uint(j)
	for _, sl := range active {
		sl.p = make([][][]gf.Elem, j+1)
		for jj := 1; jj <= j; jj++ {
			sl.p[jj] = make([][]gf.Elem, sl.nz)
			for z := 0; z < sl.nz; z++ {
				sl.p[jj][z] = opt.Arena.Grab(n * n2)
			}
		}
		sl.base = opt.Arena.Grab(n * n2)
		sl.totals = make([]gf.Elem, sl.nz)
	}
	defer func() {
		for _, sl := range active {
			if sl.base == nil {
				continue
			}
			opt.Arena.Put(sl.base)
			for jj := 1; jj <= j; jj++ {
				opt.Arena.Put(sl.p[jj]...)
			}
			sl.base, sl.p = nil, nil
		}
	}()
	var skipped int64

	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		if err := opt.ctxErr(); err != nil {
			opt.Obs.Add(obs.CellsSkipped, skipped)
			return err
		}
		var live []*scanLane
		for _, sl := range active {
			if sl.done {
				continue
			}
			if err := sl.ctxErr(); err != nil {
				sl.done, sl.err = true, err
				continue
			}
			live = append(live, sl)
		}
		if len(live) == 0 {
			break
		}
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for _, sl := range live {
			sl.nb = nb
			// base case: P(i,1,w(i)) = x_i
			for i := 0; i < n; i++ {
				sl.a.FillBase(sl.base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
			}
			for jj := 1; jj <= j; jj++ {
				for z := 0; z < sl.nz; z++ {
					buf := sl.p[jj][z]
					for i := range buf {
						buf[i] = 0
					}
				}
			}
			for i := 0; i < n; i++ {
				w := g.Weight(int32(i))
				if w > sl.ZMax {
					continue
				}
				copy(sl.p[1][w][i*n2:i*n2+nb], sl.base[i*n2:i*n2+nb])
			}
		}
		// inductive: P(i,jj,z) = Σ_u Σ_{j'} Σ_{z'} r·P(i,j',z')·P(u,jj-j',z-z')
		// — scanRound's recurrence per lane, one vertex fan-out for all.
		for jj := 2; jj <= j; jj++ {
			opt.obsSpan(obs.LevelName, jj, "level")
			opt.Obs.Add(obs.Levels, int64(len(live)))
			jj := jj
			opt.parallelVertices(g, func(lo, hi int32) {
				var sk int64
				for _, sl := range live {
					zcap := func(s int) int {
						c := int64(s) * maxw
						if c > sl.ZMax {
							c = sl.ZMax
						}
						return int(c)
					}
					for i := lo; i < hi; i++ {
						iLo, iHi := int(i)*n2, int(i)*n2+nb
						for _, u := range g.Neighbors(i) {
							uLo, uHi := int(u)*n2, int(u)*n2+nb
							for jp := 1; jp < jj; jp++ {
								jr := jj - jp
								for zp := 0; zp <= zcap(jp); zp++ {
									src1 := sl.p[jp][zp][iLo:iHi]
									if !gf.AnyNonZero(src1) {
										sk++
										continue
									}
									var r gf.Elem = 1
									if !opt.NoFingerprints {
										r = sl.a.ScanCoeff(u, i, jj, jp, int64(zp))
									}
									for zr := 0; zr <= zcap(jr) && zp+zr < sl.nz; zr++ {
										src2 := sl.p[jr][zr][uLo:uHi]
										if !gf.AnyNonZero(src2) {
											sk++
											continue
										}
										gf.MulHadamardAccumScaled(sl.p[jj][zp+zr][iLo:iHi], src1, src2, r)
									}
								}
							}
						}
					}
				}
				if sk != 0 {
					atomic.AddInt64(&skipped, sk)
				}
			})
			opt.obsEnd()
		}
		for _, sl := range live {
			for z := 0; z < sl.nz; z++ {
				buf := sl.p[j][z]
				for i := 0; i < n; i++ {
					for q := 0; q < nb; q++ {
						sl.totals[z] ^= buf[i*n2+q]
					}
				}
			}
		}
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return nil
}
