package mld

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/graph"
)

// ScanTableBatch computes len(lanes) independent scan-statistics
// feasibility tables (see ScanTable) in one batched evaluation: for
// each subgraph size j, all lanes with k ≥ j sweep the 2^j iteration
// space together, one vertex fan-out per DP level serving every lane.
// Tables match per-lane ScanTable calls byte-for-byte. Non-GF16
// variants fall back to sequential per-lane runs.
func ScanTableBatch(g *graph.Graph, lanes []BatchLane, opt Options) ([]LaneResult, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > MaxBatchLanes {
		return nil, fmt.Errorf("mld: batch of %d lanes exceeds MaxBatchLanes=%d", len(lanes), MaxBatchLanes)
	}
	res := make([]LaneResult, len(lanes))
	if opt.Variant != VariantGF16 {
		for i, l := range lanes {
			table, err := ScanTable(g, l.K, l.ZMax, laneOptions(opt, l))
			res[i] = LaneResult{Table: table, Err: err}
		}
		return res, nil
	}
	n := g.NumVertices()
	var weightErr error
	for v := int32(0); v < int32(n); v++ {
		if w := g.Weight(v); w < 0 {
			weightErr = fmt.Errorf("mld: vertex %d has negative weight %d", v, w)
			break
		}
	}
	maxw := scanMaxWeight(g)
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	// Pass MaxK as the vertex bound so no lane is skipped: unlike the
	// path/tree detectors, ScanTable still builds a table when k > n
	// (sizes j > n simply stay infeasible).
	sts, kmax, _ := batchStates(lanes, MaxK, res, opt, func(l BatchLane) (int, error) {
		if l.ZMax < 0 {
			return 0, fmt.Errorf("mld: negative weight cap %d", l.ZMax)
		}
		return l.K, nil
	})
	for _, st := range sts {
		if weightErr != nil {
			st.done, st.err = true, weightErr
		}
		st.scan = &scanExt{nz: int(st.ZMax) + 1}
		st.scan.feas = make([][]bool, st.k+1)
		for j := 1; j <= st.k; j++ {
			st.scan.feas[j] = make([]bool, st.scan.nz)
		}
	}

	var batchErr error
	for j := 1; j <= kmax && j <= n; j++ {
		// Each size is one engine pass over the lanes still interested:
		// a shared 2^j iteration space, per-lane round budgets derived
		// from the lane's own amplification knobs.
		var grpSts []*laneState
		for _, st := range sts {
			if st.k < j || st.done {
				continue
			}
			st.iters = uint64(1) << uint(j)
			st.roundsTotal = laneOptions(opt, st.BatchLane).RoundsFor(j)
			grpSts = append(grpSts, st)
		}
		if len(grpSts) == 0 {
			continue
		}
		gr := &famGroup{fam: &scanFamily{j: j, maxw: maxw}, sts: grpSts}
		if err := runGroups(g, []*famGroup{gr}, opt.batch(j), opt); err != nil {
			batchErr = err
			break
		}
	}
	if batchErr != nil {
		failOpen(sts, batchErr)
	}
	for _, st := range sts {
		table := st.scan.feas
		if st.err != nil {
			table = nil // match ScanTable: an aborted call yields no table
		}
		iters := uint64(1) << uint(st.k)
		res[st.idx] = LaneResult{
			Table: table, Rounds: st.roundsRun,
			TotalPhases: int64((iters + uint64(opt.batch(st.k)) - 1) / uint64(opt.batch(st.k))),
			Phases:      st.phases,
			Err:         st.err,
		}
	}
	return res, batchErr
}
