package mld

import (
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
	"github.com/midas-hpc/midas/internal/rng"
)

// GF(2^8) evaluation — the field width the paper actually prescribes
// (b = 3 + log2 k ≈ 8 for k ≤ 18). Halving the element size halves DP
// memory traffic at the price of a per-round Schwartz–Zippel failure of
// ~2k/2^8 instead of ~2k/2^16, i.e. a couple of amplification rounds at
// ε = 0.05. VariantGF8 exists to quantify that trade (DESIGN.md §6.3).

// assignment8 mirrors Assignment over GF(2^8).
type assignment8 struct {
	k    int
	seed uint64
	u    []uint8
}

func newAssignment8(n, k int, seed uint64, round int) *assignment8 {
	derived := rng.Hash3(seed, uint64(round)+1, tagPath*77, uint64(k))
	a := &assignment8{k: k, seed: derived, u: make([]uint8, n*k)}
	r := rng.New(derived)
	for i := range a.u {
		a.u[i] = uint8(r.Uint32())
	}
	return a
}

func (a *assignment8) fillBase(dst []uint8, i int32, q0 uint64, noGray bool) {
	row := a.u[int(i)*a.k : int(i)*a.k+a.k]
	value := func(mask uint64) uint8 {
		var x uint8
		for j := 0; mask != 0; j++ {
			if mask&1 != 0 {
				x ^= row[j]
			}
			mask >>= 1
		}
		return x
	}
	if noGray {
		for q := range dst {
			dst[q] = value(gray(q0 + uint64(q)))
		}
		return
	}
	x := value(gray(q0))
	dst[0] = x
	for q := 1; q < len(dst); q++ {
		x ^= row[flipBit(q0+uint64(q)-1)]
		dst[q] = x
	}
}

func (a *assignment8) edgeCoeff(u, i int32, level int) uint8 {
	h := rng.Hash2(a.seed, uint64(uint32(u))<<32|uint64(uint32(i)), uint64(level))
	return gf.NonZero8(h)
}

// pathRound8 is pathRound over GF(2^8).
func pathRound8(g *graph.Graph, k int, opt Options, round int) uint8 {
	n := g.NumVertices()
	a := newAssignment8(n, k, opt.Seed, round)
	n2 := opt.batch(k)
	iters := uint64(1) << uint(k)

	base := opt.Arena.Grab8(n * n2)
	prev := opt.Arena.Grab8(n * n2)
	cur := opt.Arena.Grab8(n * n2)
	defer opt.Arena.Put8(base, prev, cur)
	one := CachedMulTable8(1)
	var total uint8
	var skipped int64

	for q0 := uint64(0); q0 < iters; q0 += uint64(n2) {
		nb := n2
		if rem := iters - q0; uint64(nb) > rem {
			nb = int(rem)
		}
		for i := 0; i < n; i++ {
			a.fillBase(base[i*n2:i*n2+nb], int32(i), q0, opt.NoGray)
		}
		copy(prev, base)
		for j := 2; j <= k; j++ {
			for i := range cur {
				cur[i] = 0
			}
			for i := int32(0); i < int32(n); i++ {
				dst := cur[int(i)*n2 : int(i)*n2+nb]
				for _, u := range g.Neighbors(i) {
					src := prev[int(u)*n2 : int(u)*n2+nb]
					if !gf.AnyNonZero8(src) {
						skipped++
						continue
					}
					t := one
					if !opt.NoFingerprints {
						t = CachedMulTable8(a.edgeCoeff(u, i, j))
					}
					gf.MulSliceTable8(dst, src, t)
				}
				gf.HadamardInto8(dst, dst, base[int(i)*n2:int(i)*n2+nb])
			}
			prev, cur = cur, prev
		}
		for i := 0; i < n; i++ {
			for q := 0; q < nb; q++ {
				total ^= prev[i*n2+q]
			}
		}
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return total
}
