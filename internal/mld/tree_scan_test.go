package mld

import (
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// --- DetectTree ---

func TestDetectTreeKnownCases(t *testing.T) {
	opt := Options{Seed: 2}
	grid := graph.Grid(3, 3)
	cases := []struct {
		name string
		g    *graph.Graph
		tpl  *graph.Template
		want bool
	}{
		{"grid embeds P5", grid, graph.PathTemplate(5), true},
		{"grid embeds star5", grid, graph.StarTemplate(5), true},
		{"grid lacks star6", grid, graph.StarTemplate(6), false},
		{"path lacks star4", graph.Path(6), graph.StarTemplate(4), false},
		{"star embeds star", graph.Star(6), graph.StarTemplate(5), true},
		{"binary tree in K7", graph.Complete(7), graph.BinaryTreeTemplate(7), true},
		{"single node", graph.Path(3), graph.MustTemplate(1, nil), true},
		{"template bigger than graph", graph.Path(2), graph.PathTemplate(3), false},
	}
	for _, tc := range cases {
		got, err := DetectTree(tc.g, tc.tpl, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestDetectTreeMatchesBruteForce(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 30; trial++ {
		n := 6 + r.Intn(7)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(5)
		tpl := graph.RandomTemplate(k, r.Uint64())
		want := graph.HasTreeEmbedding(g, tpl)
		got, err := DetectTree(g, tpl, Options{Seed: r.Uint64(), Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: n=%d k=%d: detect %v brute %v", trial, n, k, got, want)
		}
	}
}

func TestDetectTreePathTemplateAgreesWithDetectPath(t *testing.T) {
	// k-Tree with a path template must agree with the k-path detector.
	r := rng.New(44)
	for trial := 0; trial < 15; trial++ {
		n := 7 + r.Intn(6)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		k := 2 + r.Intn(4)
		asPath, err := DetectPath(g, k, Options{Seed: 5, Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		asTree, err := DetectTree(g, graph.PathTemplate(k), Options{Seed: 5, Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if asPath != asTree {
			t.Fatalf("trial %d k=%d: path %v tree %v", trial, k, asPath, asTree)
		}
	}
}

func TestDetectTreeOneSided(t *testing.T) {
	g := graph.Path(7) // max degree 2: no star-4
	for seed := uint64(0); seed < 20; seed++ {
		got, err := DetectTree(g, graph.StarTemplate(4), Options{Seed: seed, Rounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("seed %d: false positive", seed)
		}
	}
}

func TestTreeBatchingInvariance(t *testing.T) {
	g := graph.RandomGNM(14, 30, 6)
	tpl := graph.RandomTemplate(5, 9)
	d := tpl.Decompose()
	a := NewAssignment(g.NumVertices(), 5, 77, 0, tagTree)
	ref := mustTreeRound(t, g, d, a, Options{N2: 1})
	for _, n2 := range []int{2, 5, 8, 32} {
		if got := mustTreeRound(t, g, d, a, Options{N2: n2}); got != ref {
			t.Fatalf("N2=%d: %#x != %#x", n2, got, ref)
		}
	}
}

// --- ScanTable ---

func TestScanTableMatchesBruteForce(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 12; trial++ {
		n := 6 + r.Intn(5)
		g := graph.RandomGNM(n, min(2*n, n*(n-1)/2), r.Uint64())
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(4))
		}
		g.SetWeights(w)
		k := 2 + r.Intn(3)
		zmax := int64(8)
		want := BruteScanTable(g, k, zmax)
		got, err := ScanTable(g, k, zmax, Options{Seed: r.Uint64(), Epsilon: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j <= k; j++ {
			for z := int64(0); z <= zmax; z++ {
				if got[j][z] != want[j][z] {
					t.Fatalf("trial %d (n=%d m=%d k=%d): cell (%d,%d) detect %v brute %v",
						trial, n, g.NumEdges(), k, j, z, got[j][z], want[j][z])
				}
			}
		}
	}
}

func TestScanTableKnownPath(t *testing.T) {
	// P4 with weights 1,2,3,4: connected subgraphs are contiguous runs.
	g := graph.Path(4)
	g.SetWeights([]int64{1, 2, 3, 4})
	got, err := ScanTable(g, 4, 10, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		j int
		z int64
	}
	want := map[cell]bool{
		{1, 1}: true, {1, 2}: true, {1, 3}: true, {1, 4}: true,
		{2, 3}: true, {2, 5}: true, {2, 7}: true,
		{3, 6}: true, {3, 9}: true,
		{4, 10}: true,
	}
	for j := 1; j <= 4; j++ {
		for z := int64(0); z <= 10; z++ {
			if got[j][z] != want[cell{j, z}] {
				t.Fatalf("cell (%d,%d): got %v want %v", j, z, got[j][z], want[cell{j, z}])
			}
		}
	}
}

func TestScanTableValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := ScanTable(g, 2, -1, Options{}); err == nil {
		t.Fatal("negative zmax accepted")
	}
	g.SetWeights([]int64{1, -2, 0})
	if _, err := ScanTable(g, 2, 5, Options{}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := ScanTable(graph.Path(3), 0, 5, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestScanTableUnweightedCountsSizes(t *testing.T) {
	// With all weights zero, the only feasible weight is 0 and size
	// feasibility = existence of connected subgraphs of that size.
	g := graph.Cycle(5)
	g.SetWeights(make([]int64, 5))
	got, err := ScanTable(g, 4, 2, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 4; j++ {
		if !got[j][0] {
			t.Fatalf("size %d weight 0 should be feasible on C5", j)
		}
		for z := int64(1); z <= 2; z++ {
			if got[j][z] {
				t.Fatalf("nonzero weight %d feasible on zero-weight graph", z)
			}
		}
	}
}

// --- extraction ---

func TestExtractPathValid(t *testing.T) {
	g := graph.RandomGNM(60, 200, 12)
	const k = 5
	has, err := DetectPath(g, k, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Skip("random graph unexpectedly has no 5-path")
	}
	path, err := ExtractPath(g, k, Options{Seed: 1, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != k {
		t.Fatalf("extracted %d vertices, want %d", len(path), k)
	}
	seen := map[int32]bool{}
	for i, v := range path {
		if seen[v] {
			t.Fatalf("repeated vertex %d in path", v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(path[i-1], v) {
			t.Fatalf("non-edge (%d,%d) in extracted path", path[i-1], v)
		}
	}
}

func TestExtractTreeValid(t *testing.T) {
	g := graph.Grid(6, 6)
	tpl := graph.StarTemplate(5)
	emb, err := ExtractTree(g, tpl, Options{Seed: 4, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != 5 {
		t.Fatalf("embedding size %d", len(emb))
	}
	seen := map[int32]bool{}
	for _, v := range emb {
		if seen[v] {
			t.Fatal("non-injective embedding")
		}
		seen[v] = true
	}
	for tv := int32(0); tv < 5; tv++ {
		for _, tn := range tpl.Neighbors(tv) {
			if tn > tv && !g.HasEdge(emb[tv], emb[tn]) {
				t.Fatalf("template edge (%d,%d) not preserved", tv, tn)
			}
		}
	}
}

func TestExtractPathRejectsNegativeInstance(t *testing.T) {
	if _, err := ExtractPath(graph.Star(6), 4, Options{Seed: 1}); err == nil {
		t.Fatal("extraction on negative instance should error")
	}
}

// --- benchmarks ---

func BenchmarkDetectPathK8(b *testing.B) {
	g := graph.RandomNLogN(500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectPath(g, 8, Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectTreeK8(b *testing.B) {
	g := graph.RandomNLogN(500, 1)
	tpl := graph.BinaryTreeTemplate(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectTree(g, tpl, Options{Seed: uint64(i), Rounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScanTableWorkersInvariance(t *testing.T) {
	g := graph.RandomGNM(15, 35, 4)
	w := make([]int64, 15)
	for i := range w {
		w[i] = int64(i % 3)
	}
	g.SetWeights(w)
	const k, zmax = 3, 6
	want, err := ScanTable(g, k, zmax, Options{Seed: 2, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScanTable(g, k, zmax, Options{Seed: 2, Rounds: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= k; j++ {
		for z := 0; z <= zmax; z++ {
			if got[j][z] != want[j][z] {
				t.Fatalf("workers changed cell (%d,%d)", j, z)
			}
		}
	}
}
