package mld

import (
	"container/list"
	"sync"

	"github.com/midas-hpc/midas/internal/gf"
)

// Arena recycles the flat DP slabs (base/prev/cur iteration-vector
// buffers) across rounds and runs. Every round of every evaluator
// allocates a handful of n·n2-element slabs; without reuse, repeated
// rounds — and especially `midas-bench -reps` loops — churn the
// allocator and the GC with multi-megabyte garbage per round. The
// Detect*/ScanTable entry points install a fresh Arena per call when
// the caller did not provide one via Options.Arena, so rounds within a
// call are allocation-free in steady state; long-lived callers
// (internal/core's distributed plan, the bench harness, the query
// service's shared worker arena) hold one Arena across calls.
//
// Slabs are pooled by exact length, and the pool is bounded: at most
// MaxBytes of retained slab memory and MaxClasses distinct
// (length, element width) classes. A long-lived arena serving queries
// of many different graph sizes and batch widths would otherwise
// retain the union of every working set it has ever seen. When a Put
// pushes either bound over its cap, the oldest retained slabs are
// dropped first (insertion order), so the classes in active rotation —
// which keep cycling through Grab/Put — stay warm while one-off sizes
// age out. Slabs larger than MaxBytes on their own are not retained at
// all.
//
// A nil *Arena is valid and simply allocates: round functions never
// need to nil-check.
type Arena struct {
	mu         sync.Mutex
	maxBytes   int64
	maxClasses int
	retained   int64                        // bytes currently pooled
	order      *list.List                   // *slabEntry; front = oldest Put
	classes    map[classKey][]*list.Element // per-class stack; top = newest
}

// classKey identifies a slab pool: exact element count plus element
// width (GF(2^16) vs the GF(2^8) evaluators' byte slabs).
type classKey struct {
	n   int
	is8 bool
}

// slabEntry is one pooled slab, linked into the age list. Exactly one
// of e16/e8 is non-nil, matching key.is8.
type slabEntry struct {
	key classKey
	e16 []gf.Elem
	e8  []uint8
}

func (k classKey) bytes() int64 {
	if k.is8 {
		return int64(k.n)
	}
	return 2 * int64(k.n)
}

// Default retention bounds for NewArena. 512 MiB of slabs is a few
// concurrent k=18 working sets on million-vertex graphs; 64 classes
// covers every (graph, N2) combination a service realistically keeps
// hot at once.
const (
	DefaultArenaMaxBytes   = 512 << 20
	DefaultArenaMaxClasses = 64
)

// NewArena returns an empty arena with the default retention bounds.
func NewArena() *Arena {
	return NewArenaCap(DefaultArenaMaxBytes, DefaultArenaMaxClasses)
}

// NewArenaCap returns an empty arena retaining at most maxBytes of
// slab memory across at most maxClasses distinct slab classes. Zero
// (or negative) disables the respective bound.
func NewArenaCap(maxBytes int64, maxClasses int) *Arena {
	return &Arena{maxBytes: maxBytes, maxClasses: maxClasses}
}

// RetainedBytes reports the bytes currently held in the pool.
func (a *Arena) RetainedBytes() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retained
}

// Classes reports the number of distinct slab classes currently pooled.
func (a *Arena) Classes() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.classes)
}

// grab pops the newest pooled slab of class k, or nil.
func (a *Arena) grab(k classKey) *slabEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	es := a.classes[k]
	if len(es) == 0 {
		return nil
	}
	e := es[len(es)-1]
	a.detach(k, e)
	return e.Value.(*slabEntry)
}

// detach removes element e (known to be the top of class k's stack or
// found within it) from both the class stack and the age list, and
// adjusts the byte account.
func (a *Arena) detach(k classKey, e *list.Element) {
	es := a.classes[k]
	for i := len(es) - 1; i >= 0; i-- {
		if es[i] == e {
			a.classes[k] = append(es[:i], es[i+1:]...)
			break
		}
	}
	if len(a.classes[k]) == 0 {
		delete(a.classes, k)
	}
	a.order.Remove(e)
	a.retained -= k.bytes()
}

// put retains entry se, evicting oldest slabs while over either bound.
func (a *Arena) put(se *slabEntry) {
	b := se.key.bytes()
	if a.maxBytes > 0 && b > a.maxBytes {
		return // single slab over budget: never retain
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.order == nil {
		a.order = list.New()
		a.classes = make(map[classKey][]*list.Element)
	}
	e := a.order.PushBack(se)
	a.classes[se.key] = append(a.classes[se.key], e)
	a.retained += b
	for (a.maxBytes > 0 && a.retained > a.maxBytes) ||
		(a.maxClasses > 0 && len(a.classes) > a.maxClasses) {
		oldest := a.order.Front()
		if oldest == nil || oldest == e && a.order.Len() == 1 {
			break // never evict what was just inserted as the sole slab
		}
		se := oldest.Value.(*slabEntry)
		a.detach(se.key, oldest)
	}
}

// Grab returns a zeroed slab of n GF(2^16) elements, reusing a pooled
// one when available.
func (a *Arena) Grab(n int) []gf.Elem {
	if a == nil {
		return make([]gf.Elem, n)
	}
	if se := a.grab(classKey{n: n}); se != nil {
		clear(se.e16)
		return se.e16
	}
	return make([]gf.Elem, n)
}

// Put returns slabs to the pool. Nil slabs are ignored.
func (a *Arena) Put(slabs ...[]gf.Elem) {
	if a == nil {
		return
	}
	for _, s := range slabs {
		if s == nil {
			continue
		}
		a.put(&slabEntry{key: classKey{n: len(s)}, e16: s})
	}
}

// Grab8 is Grab for the GF(2^8) evaluators.
func (a *Arena) Grab8(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	if se := a.grab(classKey{n: n, is8: true}); se != nil {
		clear(se.e8)
		return se.e8
	}
	return make([]uint8, n)
}

// Put8 is Put for the GF(2^8) evaluators.
func (a *Arena) Put8(slabs ...[]uint8) {
	if a == nil {
		return
	}
	for _, s := range slabs {
		if s == nil {
			continue
		}
		a.put(&slabEntry{key: classKey{n: len(s), is8: true}, e8: s})
	}
}
