package mld

import (
	"sync"

	"github.com/midas-hpc/midas/internal/gf"
)

// Arena recycles the flat DP slabs (base/prev/cur iteration-vector
// buffers) across rounds and runs. Every round of every evaluator
// allocates a handful of n·n2-element slabs; without reuse, repeated
// rounds — and especially `midas-bench -reps` loops — churn the
// allocator and the GC with multi-megabyte garbage per round. The
// Detect*/ScanTable entry points install a fresh Arena per call when
// the caller did not provide one via Options.Arena, so rounds within a
// call are allocation-free in steady state; long-lived callers
// (internal/core's distributed plan, the bench harness) hold one Arena
// across calls.
//
// Slabs are pooled by exact length. A nil *Arena is valid and simply
// allocates: round functions never need to nil-check.
type Arena struct {
	mu     sync.Mutex
	slabs  map[int][][]gf.Elem
	slabs8 map[int][][]uint8
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Grab returns a zeroed slab of n GF(2^16) elements, reusing a pooled
// one when available.
func (a *Arena) Grab(n int) []gf.Elem {
	if a == nil {
		return make([]gf.Elem, n)
	}
	a.mu.Lock()
	if ss := a.slabs[n]; len(ss) > 0 {
		s := ss[len(ss)-1]
		a.slabs[n] = ss[:len(ss)-1]
		a.mu.Unlock()
		clear(s)
		return s
	}
	a.mu.Unlock()
	return make([]gf.Elem, n)
}

// Put returns slabs to the pool. Nil slabs are ignored.
func (a *Arena) Put(slabs ...[]gf.Elem) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.slabs == nil {
		a.slabs = make(map[int][][]gf.Elem)
	}
	for _, s := range slabs {
		if s == nil {
			continue
		}
		a.slabs[len(s)] = append(a.slabs[len(s)], s)
	}
}

// Grab8 is Grab for the GF(2^8) evaluators.
func (a *Arena) Grab8(n int) []uint8 {
	if a == nil {
		return make([]uint8, n)
	}
	a.mu.Lock()
	if ss := a.slabs8[n]; len(ss) > 0 {
		s := ss[len(ss)-1]
		a.slabs8[n] = ss[:len(ss)-1]
		a.mu.Unlock()
		clear(s)
		return s
	}
	a.mu.Unlock()
	return make([]uint8, n)
}

// Put8 is Put for the GF(2^8) evaluators.
func (a *Arena) Put8(slabs ...[]uint8) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.slabs8 == nil {
		a.slabs8 = make(map[int][][]uint8)
	}
	for _, s := range slabs {
		if s == nil {
			continue
		}
		a.slabs8[len(s)] = append(a.slabs8[len(s)], s)
	}
}
