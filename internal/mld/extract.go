package mld

import (
	"github.com/midas-hpc/midas/internal/graph"
)

// Witness extraction (an extension over the paper, which only decides
// yes/no): self-reduction by vertex deletion. Starting from a graph that
// tests "yes", we repeatedly try to delete random vertex batches while
// the answer stays "yes", shrinking the batch on failure; once the
// survivor set is small, the exact witness is recovered by brute force.
// Expected O(log(n/k)·amplified detections) oracle calls for the
// whittling phase.

// Oracle answers detection queries on induced subgraphs during
// extraction. It must be (near-)deterministic in the sense that a
// subgraph containing a witness answers true with high probability —
// pass a detector with a small Epsilon.
type Oracle func(g *graph.Graph) (bool, error)

// ExtractPath returns the vertices of an actual k-path of g (in path
// order), using DetectPath as the oracle. It returns an error if g does
// not test positive to begin with.
func ExtractPath(g *graph.Graph, k int, opt Options) ([]int32, error) {
	oracle := func(sub *graph.Graph) (bool, error) { return DetectPath(sub, k, opt) }
	finish := func(sub *graph.Graph) []int32 { return bruteFindPath(sub, k) }
	return extract(g, k, opt.Seed, oracle, finish)
}

// ExtractTree returns the vertices of a non-induced embedding of the
// template (in template-vertex order), using DetectTree as the oracle.
func ExtractTree(g *graph.Graph, tpl *graph.Template, opt Options) ([]int32, error) {
	oracle := func(sub *graph.Graph) (bool, error) { return DetectTree(sub, tpl, opt) }
	finish := func(sub *graph.Graph) []int32 { return bruteFindTree(sub, tpl) }
	return extract(g, tpl.K(), opt.Seed, oracle, finish)
}

// FindPathExact returns a k-path of g (vertex ids in path order) by
// exhaustive backtracking, or nil. Exponential worst case; intended for
// the small remnants produced by Whittle.
func FindPathExact(g *graph.Graph, k int) []int32 { return bruteFindPath(g, k) }

// FindTreeExact returns an embedding of tpl in g (indexed by template
// vertex) by exhaustive backtracking, or nil. Same caveats as
// FindPathExact.
func FindTreeExact(g *graph.Graph, tpl *graph.Template) []int32 { return bruteFindTree(g, tpl) }

// bruteFindPath returns a k-path of g (vertex ids in path order), or nil.
func bruteFindPath(g *graph.Graph, k int) []int32 {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil
	}
	used := make([]bool, n)
	path := make([]int32, 0, k)
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		used[v] = true
		path = append(path, v)
		if len(path) == k {
			return true
		}
		for _, u := range g.Neighbors(v) {
			if !used[u] && dfs(u) {
				return true
			}
		}
		used[v] = false
		path = path[:len(path)-1]
		return false
	}
	for s := int32(0); s < int32(n); s++ {
		if dfs(s) {
			return path
		}
	}
	return nil
}

// bruteFindTree returns an embedding of tpl in g as a slice indexed by
// template vertex, or nil.
func bruteFindTree(g *graph.Graph, tpl *graph.Template) []int32 {
	k := tpl.K()
	n := g.NumVertices()
	if k > n {
		return nil
	}
	// BFS order so each template vertex after the first attaches to a
	// mapped neighbor.
	order := make([]int32, 0, k)
	attach := make([]int32, k)
	seen := make([]bool, k)
	seen[0] = true
	attach[0] = -1
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range tpl.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				attach[u] = v
				queue = append(queue, u)
			}
		}
	}
	mapping := make([]int32, k)
	placed := make([]bool, k)
	usedG := make(map[int32]bool, k)
	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		if idx == k {
			return true
		}
		tv := order[idx]
		try := func(gv int32) bool {
			if usedG[gv] {
				return false
			}
			for _, tn := range tpl.Neighbors(tv) {
				if placed[tn] && !g.HasEdge(gv, mapping[tn]) {
					return false
				}
			}
			usedG[gv] = true
			mapping[tv] = gv
			placed[tv] = true
			if dfs(idx + 1) {
				return true
			}
			placed[tv] = false
			delete(usedG, gv)
			return false
		}
		if attach[tv] < 0 {
			for gv := int32(0); gv < int32(n); gv++ {
				if try(gv) {
					return true
				}
			}
			return false
		}
		for _, gv := range g.Neighbors(mapping[attach[tv]]) {
			if try(gv) {
				return true
			}
		}
		return false
	}
	if !dfs(0) {
		return nil
	}
	return mapping
}
