package mld

import (
	"errors"
	"fmt"

	"github.com/midas-hpc/midas/internal/graph"
)

// templateDigest fingerprints a template's shape so batch lanes with
// the same template share one decomposition and one phase schedule
// (FNV over k and the adjacency lists, which NewTemplate normalizes).
func templateDigest(t *graph.Template) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(t.K())
	h *= prime
	for v := int32(0); v < int32(t.K()); v++ {
		for _, u := range t.Neighbors(v) {
			h ^= uint64(uint32(v))<<32 | uint64(uint32(u))
			h *= prime
		}
	}
	return h
}

// DetectTreeBatch answers len(lanes) independent tree-embedding
// queries in one batched evaluation; lanes may carry different
// templates (grouped by shape, one decomposition and DP buffer set per
// group, all groups interleaved through one iteration sweep). Results
// match per-lane DetectTree calls byte-for-byte. Non-GF16 variants
// fall back to sequential per-lane runs.
func DetectTreeBatch(g *graph.Graph, lanes []BatchLane, opt Options) ([]LaneResult, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > MaxBatchLanes {
		return nil, fmt.Errorf("mld: batch of %d lanes exceeds MaxBatchLanes=%d", len(lanes), MaxBatchLanes)
	}
	res := make([]LaneResult, len(lanes))
	if opt.Variant != VariantGF16 {
		for i, l := range lanes {
			if l.Template == nil {
				res[i].Err = errors.New("mld: tree lane has no template")
				continue
			}
			found, err := DetectTree(g, l.Template, laneOptions(opt, l))
			res[i] = LaneResult{Found: found, Err: err}
		}
		return res, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	n := g.NumVertices()
	sts, kmax, _ := batchStates(lanes, n, res, opt, func(l BatchLane) (int, error) {
		if l.Template == nil {
			return 0, errors.New("mld: tree lane has no template")
		}
		return l.Template.K(), nil
	})
	n2 := opt.batch(kmax)

	groups := make([]*famGroup, 0, len(sts))
	byDigest := make(map[uint64]*famGroup)
	for _, st := range sts {
		dig := templateDigest(st.Template)
		gr, ok := byDigest[dig]
		if !ok {
			gr = &famGroup{fam: &treeFamily{d: st.Template.Decompose()}}
			byDigest[dig] = gr
			groups = append(groups, gr)
		}
		gr.sts = append(gr.sts, st)
	}

	batchErr := runGroups(g, groups, n2, opt)
	for _, st := range sts {
		res[st.idx] = LaneResult{
			Found: st.found, Rounds: st.roundsRun, Phases: st.phases,
			TotalPhases: int64((st.iters + uint64(n2) - 1) / uint64(n2)),
			Err:         st.err,
		}
	}
	return res, batchErr
}
