package mld

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// templateDigest fingerprints a template's shape so batch lanes with
// the same template share one decomposition and one phase schedule
// (FNV over k and the adjacency lists, which NewTemplate normalizes).
func templateDigest(t *graph.Template) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(t.K())
	h *= prime
	for v := int32(0); v < int32(t.K()); v++ {
		for _, u := range t.Neighbors(v) {
			h ^= uint64(uint32(v))<<32 | uint64(uint32(u))
			h *= prime
		}
	}
	return h
}

// treeGroup is the per-template slice of a tree batch: lanes sharing
// one decomposition, laid out contiguously in the group's buffers.
type treeGroup struct {
	d     *graph.Decomposition
	k     int
	iters uint64
	sts   []*laneState // every lane of this template

	// per-round sweep state
	live   []*laneState
	stride int
	base   []gf.Elem
	vals   [][]gf.Elem
}

// DetectTreeBatch answers len(lanes) independent tree-embedding
// queries in one batched evaluation; lanes may carry different
// templates (grouped by shape, one decomposition and DP buffer set per
// group, all groups interleaved through one iteration sweep). Results
// match per-lane DetectTree calls byte-for-byte. Non-GF16 variants
// fall back to sequential per-lane runs.
func DetectTreeBatch(g *graph.Graph, lanes []BatchLane, opt Options) ([]LaneResult, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	if len(lanes) > MaxBatchLanes {
		return nil, fmt.Errorf("mld: batch of %d lanes exceeds MaxBatchLanes=%d", len(lanes), MaxBatchLanes)
	}
	res := make([]LaneResult, len(lanes))
	if opt.Variant != VariantGF16 {
		for i, l := range lanes {
			if l.Template == nil {
				res[i].Err = errors.New("mld: tree lane has no template")
				continue
			}
			found, err := DetectTree(g, l.Template, laneOptions(opt, l))
			res[i] = LaneResult{Found: found, Err: err}
		}
		return res, nil
	}
	if opt.Arena == nil {
		opt.Arena = NewArena()
	}
	n := g.NumVertices()
	sts, kmax, maxRounds := batchStates(lanes, n, res, opt, func(l BatchLane) (int, error) {
		if l.Template == nil {
			return 0, errors.New("mld: tree lane has no template")
		}
		return l.Template.K(), nil
	})
	n2 := opt.batch(kmax)

	groups := make([]*treeGroup, 0, len(sts))
	byDigest := make(map[uint64]*treeGroup)
	for _, st := range sts {
		dig := templateDigest(st.Template)
		gr, ok := byDigest[dig]
		if !ok {
			gr = &treeGroup{d: st.Template.Decompose(), k: st.k, iters: st.iters}
			byDigest[dig] = gr
			groups = append(groups, gr)
		}
		gr.sts = append(gr.sts, st)
	}

	var batchErr error
	for round := 0; round < maxRounds && batchErr == nil; round++ {
		activeTotal := 0
		for _, gr := range groups {
			gr.live = gr.live[:0]
			for _, st := range gr.sts {
				if !st.done && round < st.roundsTotal {
					gr.live = append(gr.live, st)
				}
			}
			activeTotal += len(gr.live)
		}
		if activeTotal == 0 {
			break
		}
		if err := opt.ctxErr(); err != nil {
			batchErr = err
			break
		}
		opt.obsSpan(obs.RoundName, round, "round")
		opt.Obs.Add(obs.Rounds, int64(activeTotal))
		for _, gr := range groups {
			for _, st := range gr.live {
				st.a = NewAssignment(n, st.k, st.Seed, round, tagTree)
				st.total = 0
				st.roundsRun++
			}
		}
		err := batchTreeRound(g, groups, n2, opt)
		opt.obsEnd()
		if err != nil {
			batchErr = err
			break
		}
		for _, gr := range groups {
			for _, st := range gr.live {
				if st.done {
					continue // cancelled mid-round
				}
				if st.total != 0 {
					st.found, st.done = true, true
				} else if round+1 >= st.roundsTotal {
					st.done = true
				}
			}
		}
	}
	if batchErr != nil {
		failOpen(sts, batchErr)
	}
	for _, st := range sts {
		res[st.idx] = LaneResult{
			Found: st.found, Rounds: st.roundsRun, Phases: st.phases,
			TotalPhases: int64((st.iters + uint64(n2) - 1) / uint64(n2)),
			Err:         st.err,
		}
	}
	return res, batchErr
}

// batchTreeRound interleaves every group's phases through one sweep:
// phase q0 of each group with live lanes and q0 < 2^k runs before any
// group advances to q0+n2. Within a group the lanes are contiguous,
// so the per-node kernels stream each vertex row across all of them.
func batchTreeRound(g *graph.Graph, groups []*treeGroup, n2 int, opt Options) error {
	n := g.NumVertices()
	var itersMax uint64
	for _, gr := range groups {
		if len(gr.live) == 0 {
			continue
		}
		if gr.iters > itersMax {
			itersMax = gr.iters
		}
		gr.stride = len(gr.live) * n2
		for i, st := range gr.live {
			st.off = i * n2
		}
		gr.base = opt.Arena.Grab(n * gr.stride)
		gr.vals = make([][]gf.Elem, len(gr.d.Nodes))
		for j, nd := range gr.d.Nodes {
			if nd.Left >= 0 {
				gr.vals[j] = opt.Arena.Grab(n * gr.stride)
			}
		}
	}
	defer func() {
		for _, gr := range groups {
			if gr.base == nil {
				continue
			}
			opt.Arena.Put(gr.base)
			for j, nd := range gr.d.Nodes {
				if nd.Left >= 0 {
					opt.Arena.Put(gr.vals[j])
				}
			}
			gr.base, gr.vals = nil, nil
		}
	}()

	var skipped int64
	for q0 := uint64(0); q0 < itersMax; q0 += uint64(n2) {
		if err := opt.ctxErr(); err != nil {
			opt.Obs.Add(obs.CellsSkipped, skipped)
			return err
		}
		anyLive := false
		for _, gr := range groups {
			if gr.base == nil || q0 >= gr.iters {
				continue
			}
			var live []*laneState
			for _, st := range gr.live {
				if st.done {
					continue
				}
				if err := st.ctxErr(); err != nil {
					st.done, st.err = true, err
					continue
				}
				live = append(live, st)
			}
			if len(live) == 0 {
				continue
			}
			anyLive = true
			gr.phase(g, live, q0, n2, opt, &skipped)
		}
		if !anyLive {
			break
		}
	}
	opt.Obs.Add(obs.CellsSkipped, skipped)
	return nil
}

// phase runs one iteration batch of the group's decomposition DP for
// the live lanes and folds their root totals.
func (gr *treeGroup) phase(g *graph.Graph, live []*laneState, q0 uint64, n2 int, opt Options, skipped *int64) {
	n := g.NumVertices()
	stride := gr.stride
	nb := n2
	if rem := gr.iters - q0; uint64(nb) > rem {
		nb = int(rem)
	}
	for _, st := range live {
		st.nb = nb
		st.phases++
	}
	opt.obsSpan(obs.PhaseName, int(q0)/n2, "phase")
	opt.Obs.Add(obs.Phases, 1)
	spans := liveSpans(live)
	for i := 0; i < n; i++ {
		row := i * stride
		for _, st := range live {
			st.a.FillBase(gr.base[row+st.off:row+st.off+st.nb], int32(i), q0, opt.NoGray)
		}
	}
	one := CachedMulTable(1)
	levelElems := int64(2*g.NumEdges() + n)
	for j, nd := range gr.d.Nodes {
		if nd.Left < 0 {
			gr.vals[j] = gr.base
			continue
		}
		opt.obsSpan(obs.LevelName, j, "level")
		opt.obsLevel(levelElems * int64(nb) * int64(len(live)))
		left, right := gr.vals[nd.Left], gr.vals[nd.Right]
		dstAll := gr.vals[j]
		j := j // capture for the closure
		opt.parallelVertices(g, func(lo, hi int32) {
			av := make([]gf.Elem, stride) // per-worker scratch, all lanes
			var sk int64
			for i := lo; i < hi; i++ {
				row := int(i) * stride
				for _, sp := range spans {
					seg := av[sp.lo:sp.hi]
					for q := range seg {
						seg[q] = 0
					}
				}
				for _, u := range g.Neighbors(i) {
					urow := int(u) * stride
					for _, st := range live {
						src := right[urow+st.off : urow+st.off+st.nb]
						if !gf.AnyNonZero(src) {
							sk++
							continue
						}
						t := one
						if !opt.NoFingerprints {
							// level key: the decomposition node index,
							// unique per subtree shape.
							t = st.a.EdgeTable(u, i, j)
						}
						gf.MulSliceTable16(av[st.off:st.off+st.nb], src, t)
					}
				}
				for _, sp := range spans {
					// P(i, H') = P(i, H'_1) · Σ_u r·P(u, H'_2)
					gf.HadamardInto(dstAll[row+sp.lo:row+sp.hi], left[row+sp.lo:row+sp.hi], av[sp.lo:sp.hi])
				}
			}
			if sk != 0 {
				atomic.AddInt64(skipped, sk)
			}
		})
		opt.obsEnd()
	}
	root := gr.vals[gr.d.Root]
	for _, st := range live {
		st.accumulate(root, stride, n)
	}
	opt.obsEnd()
}
