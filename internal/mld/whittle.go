package mld

import (
	"fmt"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// Whittle shrinks a graph while the oracle keeps answering true, by
// deleting random vertex batches; a vertex whose single removal breaks
// the oracle is *locked* (it belongs to every witness of the current
// remnant) and never tried again. The loop terminates when the remnant
// is at most stopAt vertices or every remaining vertex is locked — in
// the latter case the remnant is exactly the unique witness.
//
// This is the standard self-reduction behind witness extraction; the
// locking rule is what guarantees progress when witnesses are rare
// (deleting any random half would almost surely destroy a unique
// witness, so a naive halving loop stalls with a large remnant).
//
// Returns the remnant and the mapping from remnant ids to g's ids.
func Whittle(g *graph.Graph, seed uint64, stopAt int, oracle Oracle) (*graph.Graph, []int32, error) {
	cur := g
	toOld := make([]int32, g.NumVertices())
	for i := range toOld {
		toOld[i] = int32(i)
	}
	locked := make(map[int32]bool) // ids in cur's namespace
	r := rng.New(seed ^ 0x3b97f4a5c2d1)

	for cur.NumVertices() > stopAt && len(locked) < cur.NumVertices() {
		unlocked := make([]int32, 0, cur.NumVertices()-len(locked))
		for v := int32(0); v < int32(cur.NumVertices()); v++ {
			if !locked[v] {
				unlocked = append(unlocked, v)
			}
		}
		batch := len(unlocked) / 4
		if batch < 1 {
			batch = 1
		}
		// shrink batch on failures; at batch 1 a failure locks the vertex.
		for batch >= 1 {
			r.Shuffle(len(unlocked), func(i, j int) { unlocked[i], unlocked[j] = unlocked[j], unlocked[i] })
			drop := make(map[int32]bool, batch)
			for _, v := range unlocked[:batch] {
				drop[v] = true
			}
			sub, subToCur := cur.DeleteVertices(drop)
			ok, err := oracle(sub)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				newToOld := make([]int32, sub.NumVertices())
				newLocked := make(map[int32]bool, len(locked))
				for i, cv := range subToCur {
					newToOld[i] = toOld[cv]
					if locked[cv] {
						newLocked[int32(i)] = true
					}
				}
				cur, toOld, locked = sub, newToOld, newLocked
				break
			}
			if batch == 1 {
				locked[unlocked[0]] = true
				break
			}
			batch /= 2
		}
	}
	return cur, toOld, nil
}

// extract whittles g down with the oracle, then runs finish on the small
// survivor graph, mapping ids back to g. finish returns ids local to the
// subgraph it is given.
func extract(g *graph.Graph, k int, seed uint64, oracle Oracle, finish func(*graph.Graph) []int32) ([]int32, error) {
	ok, err := oracle(g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("mld: extraction requested but graph tests negative")
	}
	// Below this size, exact search on the remnant is instant.
	stopAt := 4 * k
	if stopAt < 24 {
		stopAt = 24
	}
	cur, toOld, err := Whittle(g, seed, stopAt, oracle)
	if err != nil {
		return nil, err
	}
	local := finish(cur)
	if local == nil {
		// Possible only if a randomized oracle false-negative locked us
		// into a dead end; the caller can retry with another seed.
		return nil, fmt.Errorf("mld: witness search failed on %d-vertex remnant", cur.NumVertices())
	}
	out := make([]int32, len(local))
	for i, v := range local {
		out[i] = toOld[v]
	}
	return out, nil
}
