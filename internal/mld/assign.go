package mld

import (
	"github.com/midas-hpc/midas/internal/gf"
	"github.com/midas-hpc/midas/internal/rng"
)

// Assignment carries one round's randomness: the n×k matrix of vertex
// scalars u[i][j] and the seed from which per-(edge, level) fingerprint
// coefficients are hashed on demand. All of it is a pure function of
// (seed, round, algorithm tag), so in the distributed algorithm every
// rank constructs an identical Assignment locally — randomness costs no
// communication.
type Assignment struct {
	K    int
	Seed uint64 // round-specific derived seed
	u    []gf.Elem
	n    int
}

// Algorithm tags folded into the seed so path/tree/scan/motif runs
// over the same user seed draw independent randomness.
const (
	tagPath = iota + 1
	tagTree
	tagScan
	tagMotif
)

// NewPathAssignment derives the round's assignment for the k-path
// polynomial (used by the distributed implementation, which must build
// the exact same randomness as the sequential one).
func NewPathAssignment(n, k int, seed uint64, round int) *Assignment {
	return NewAssignment(n, k, seed, round, tagPath)
}

// NewTreeAssignment derives the round's assignment for the k-tree
// polynomial.
func NewTreeAssignment(n, k int, seed uint64, round int) *Assignment {
	return NewAssignment(n, k, seed, round, tagTree)
}

// NewScanAssignment derives the round's assignment for the
// scan-statistics polynomial at target size k.
func NewScanAssignment(n, k int, seed uint64, round int) *Assignment {
	return NewAssignment(n, k, seed, round, tagScan)
}

// NewMaxWeightAssignment derives the round's assignment for the
// weight-indexed path polynomial of MaxWeightPath.
func NewMaxWeightAssignment(n, k int, seed uint64, round int) *Assignment {
	return NewAssignment(n, k, seed, round, tagScan+7)
}

// NewAssignment derives the round's assignment for n vertices and k
// colors.
func NewAssignment(n, k int, seed uint64, round int, algTag uint64) *Assignment {
	derived := rng.Hash3(seed, uint64(round)+1, algTag, uint64(k))
	a := &Assignment{K: k, Seed: derived, n: n, u: make([]gf.Elem, n*k)}
	r := rng.New(derived)
	for i := range a.u {
		a.u[i] = gf.Elem(r.Uint32())
	}
	return a
}

// U returns u[i][j].
func (a *Assignment) U(i int32, j int) gf.Elem { return a.u[int(i)*a.K+j] }

// VertexValue returns x_i(mask) = Σ_{j ∈ mask} u[i][j].
func (a *Assignment) VertexValue(i int32, mask uint64) gf.Elem {
	row := a.u[int(i)*a.K : int(i)*a.K+a.K]
	var x gf.Elem
	for j := 0; mask != 0; j++ {
		if mask&1 != 0 {
			x ^= row[j]
		}
		mask >>= 1
	}
	return x
}

// FillBase fills dst[q] = x_i(gray(q0+q)) for q in [0, n2). With gray
// ordering each subsequent value is one XOR; with noGray every value is
// recomputed from its mask (the ablation baseline).
func (a *Assignment) FillBase(dst []gf.Elem, i int32, q0 uint64, noGray bool) {
	n2 := uint64(len(dst))
	if noGray {
		for q := uint64(0); q < n2; q++ {
			dst[q] = a.VertexValue(i, gray(q0+q))
		}
		return
	}
	x := a.VertexValue(i, gray(q0))
	dst[0] = x
	row := a.u[int(i)*a.K : int(i)*a.K+a.K]
	for q := uint64(1); q < n2; q++ {
		x ^= row[flipBit(q0+q-1)]
		dst[q] = x
	}
}

// EdgeCoeff returns the fingerprint coefficient for the DP transition
// that consumes the value of u at level `level` to update vertex i.
// Deliberately asymmetric in (u, i): the asymmetry is what breaks the
// path-orientation cancellation.
func (a *Assignment) EdgeCoeff(u, i int32, level int) gf.Elem {
	h := rng.Hash2(a.Seed, uint64(uint32(u))<<32|uint64(uint32(i)), uint64(level))
	return gf.NonZero(h)
}

// ScanCoeff is EdgeCoeff for the scan-statistics DP, whose transitions
// are additionally indexed by the size split (j, j') and the weight of
// the absorbed piece.
func (a *Assignment) ScanCoeff(u, i int32, j, jp int, zp int64) gf.Elem {
	h := rng.Hash3(a.Seed,
		uint64(uint32(u))<<32|uint64(uint32(i)),
		uint64(uint32(j))<<32|uint64(uint32(jp)),
		uint64(zp))
	return gf.NonZero(h)
}

// MotifCoeff is EdgeCoeff for the constrained-motif DP, indexed by the
// size split (j, j') like ScanCoeff (the motif DP is the scan DP minus
// the weight axis).
func (a *Assignment) MotifCoeff(u, i int32, j, jp int) gf.Elem {
	h := rng.Hash3(a.Seed,
		uint64(uint32(u))<<32|uint64(uint32(i)),
		uint64(uint32(j))<<32|uint64(uint32(jp)),
		1)
	return gf.NonZero(h)
}

// KoutisAssignment carries the randomness of the integer variant:
// a random vector v_i ∈ Z2^k per vertex and hashed integer edge
// coefficients mod 2^(k+1).
type KoutisAssignment struct {
	K    int
	Mod  uint64
	Seed uint64
	v    []uint64
}

// NewKoutisAssignment derives the round's Koutis assignment.
func NewKoutisAssignment(n, k int, seed uint64, round int) *KoutisAssignment {
	derived := rng.Hash3(seed, uint64(round)+1, tagPath*1000, uint64(k))
	a := &KoutisAssignment{K: k, Mod: 1 << uint(k+1), Seed: derived, v: make([]uint64, n)}
	r := rng.New(derived)
	for i := range a.v {
		a.v[i] = r.Uint64() & ((1 << uint(k)) - 1)
	}
	return a
}

// Base returns 1 + (-1)^(v_i · t) ∈ {0, 2}: Algorithm 1's line 9.
func (a *KoutisAssignment) Base(i int32, t uint64) uint64 {
	if parity(a.v[i]&t) == 1 {
		return 0
	}
	return 2
}

// EdgeCoeff returns the integer fingerprint for a transition, uniform
// in [0, 2^(k+1)). The modulus is a power of two, so the reduction is
// a mask.
func (a *KoutisAssignment) EdgeCoeff(u, i int32, level int) uint64 {
	return rng.Hash2(a.Seed, uint64(uint32(u))<<32|uint64(uint32(i)), uint64(level)) & (a.Mod - 1)
}

func parity(x uint64) int {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return int(x & 1)
}
