// Package mld implements sequential k-multilinear detection (paper
// Sections III and V): the randomized evaluation that decides whether
// the k-path / k-tree / scan-statistics polynomial of a graph has a
// degree-k multilinear term, in O(2^k · poly) time and O(k · poly)
// space.
//
// # Evaluation strategy
//
// The working variant (VariantGF16) is Williams' refinement as engineered
// in the authors' implementation lineage: each vertex i receives a row
// u[i][1..k] of random GF(2^16) scalars; iteration t ∈ {0,1}^k assigns
// the vertex variable the scalar x_i(t) = Σ_{j∈t} u[i][j]; the DP of
// Algorithm 1 runs once per iteration over plain field scalars; and the
// XOR of the DP results over all 2^k iterations equals the coefficient
// of χ1…χk, which is zero for every monomial with a repeated vertex
// (a permanent with repeated rows in characteristic 2) and nonzero with
// high probability when a multilinear monomial exists. The identity is
// property-tested against the explicit algebra in internal/galois.
//
// VariantKoutis is the paper's Algorithm 1 exactly as printed: integer
// arithmetic mod 2^(k+1) with base case 1 + (-1)^(v_i·t). It is kept as
// a reference and ablation target.
//
// # Fingerprints
//
// Both variants multiply every DP transition by a pseudo-random
// per-(edge, level) coefficient derived by hashing, without which the
// two orientations of an undirected path cancel identically (see
// DESIGN.md §2; TestNaiveCancellation demonstrates the failure). Hashing
// makes the coefficients computable on any rank of the distributed
// implementation with no communication.
//
// # Iteration batching
//
// All evaluators process iterations in batches of N2 (the paper's phase
// width): the DP state for a vertex is a vector of N2 field elements
// updated by the fused kernels in internal/gf, which is both the unit of
// message aggregation for the distributed version and the source of the
// cache-locality speedup reported in the paper's Section IV-B. Iteration
// index q is mapped to the mask gray(q), so consecutive iterations in a
// batch differ in one bit and base values update incrementally.
//
// # Multi-query batching
//
// DetectPathBatch, DetectTreeBatch and ScanTableBatch answer several
// queries ("lanes") with one pass over the iteration space. Each lane
// keeps its own Assignment and a contiguous N2-wide block of every DP
// row (stride = lanes × N2), so the per-constant multiply kernels
// stream across lanes and answers stay byte-identical to the solo
// evaluators. Lanes of smaller k ride the prefix of a deeper sweep —
// gray(q) restricted to q < 2^k' enumerates exactly the k'-lane's
// iteration space — and retire early; a lane whose BatchLane.Ctx is
// cancelled is masked out at the next phase boundary while the rest of
// the batch runs on. docs/BATCHING.md derives the layout, the prefix
// bijection, and the amortized cost model; internal/core mirrors the
// scheme for distributed k-path batches.
package mld

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/obs"
)

// Variant selects the arithmetic of the evaluation.
type Variant int

// Supported variants.
const (
	VariantGF16   Variant = iota // Williams-style GF(2^16) evaluation (default)
	VariantKoutis                // Algorithm 1 verbatim: integers mod 2^(k+1)
	VariantGF8                   // GF(2^8): the paper's b = 3 + log2 k width
)

func (v Variant) String() string {
	switch v {
	case VariantGF16:
		return "gf16"
	case VariantKoutis:
		return "koutis"
	case VariantGF8:
		return "gf8"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// MaxK bounds the subgraph size: 2^k iterations must be enumerable in
// reasonable time and the Koutis modulus 2^(k+1) must fit comfortably
// in uint64 products.
const MaxK = 26

// Options configures a detection run. The zero value is usable: seed 0,
// ε = 0.05, derived round count, GF(2^16) variant, batch 128.
type Options struct {
	Seed    uint64
	Epsilon float64 // target failure probability; default 0.05
	Rounds  int     // explicit round count; 0 derives from Epsilon
	Variant Variant
	N2      int // iteration batch width; 0 defaults to 128 (capped at 2^k)
	Workers int // shared-memory workers for the DP vertex loops; 0/1 = serial

	// NoFingerprints disables the per-(edge, level) coefficients.
	// The result is the paper's pseudo-code taken literally, which is
	// unsound on undirected graphs; exposed only for the ablation and
	// the cancellation demonstration test.
	NoFingerprints bool
	// NoGray disables the Gray-code incremental base-value updates
	// (ablation; results are identical, only speed differs).
	NoGray bool

	// Obs, when non-nil, receives round/batch/level spans and DP
	// operation counts from the sequential evaluators (wall-clock time
	// base; the distributed instrumentation in internal/core uses the
	// virtual clock instead). Nil — the default — disables
	// instrumentation: every recorder call no-ops on nil, so
	// uninstrumented runs pay one pointer test per event.
	Obs *obs.Recorder

	// Arena, when non-nil, recycles the per-round DP slabs across
	// rounds and calls (see Arena). The Detect*/ScanTable entry points
	// install a private arena when left nil, so repeated rounds within
	// one call are allocation-free either way; set it to share slabs
	// across calls (the distributed plan and the bench harness do).
	Arena *Arena

	// Ctx, when non-nil, makes the evaluation cancellable: the round
	// and iteration-batch loops of the path/tree/scan evaluators check
	// it and return its error instead of finishing the remaining 2^k
	// iterations. Nil (the default) means run to completion with zero
	// per-batch overhead. The serving layer (internal/serve) sets it to
	// the per-request deadline context so abandoned queries stop
	// burning CPU; cancellation granularity is one iteration batch
	// (N2 iterations × one DP level sweep).
	Ctx context.Context

	// Progress, when non-nil, is invoked after each completed
	// iteration phase with the cumulative number of phases finished so
	// far — the same accounting as the obs.Phases counter, surfaced
	// synchronously so a caller (the serving layer's per-query traces)
	// can report live sweep progress without polling a recorder. It
	// runs on the sweep hot path, once per N2 iterations, from the
	// sweeping goroutine: keep it cheap and non-blocking. Families
	// with phase-less accounting (the scan table) never invoke it.
	Progress func(phasesDone int64)
}

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return 0.05
	}
	return o.Epsilon
}

// RoundsFor returns the number of independent rounds the options imply
// for subgraph size k. The paper's bound (success ≥ 1/5 per round)
// gives ceil(log(1/ε)/log(5/4)); for the GF(2^16) variant the per-round
// failure is at most ~2k/2^16 by Schwartz–Zippel, so far fewer rounds
// reach the same ε.
func (o Options) RoundsFor(k int) int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	eps := o.epsilon()
	var perRoundFail float64
	switch o.Variant {
	case VariantKoutis:
		perRoundFail = 0.8 // paper's conservative 4/5
	case VariantGF8:
		perRoundFail = float64(2*k+2) / 256.0
	default:
		perRoundFail = float64(2*k+2) / 65536.0
	}
	r := int(math.Ceil(math.Log(eps) / math.Log(perRoundFail)))
	if r < 1 {
		r = 1
	}
	return r
}

func (o Options) batch(k int) int {
	n2 := o.N2
	if n2 <= 0 {
		n2 = 128
	}
	if total := 1 << uint(k); n2 > total {
		n2 = total
	}
	return n2
}

// obsSpan opens a recorder span named by one of obs's cached helpers,
// evaluating the name only when instrumentation is on (the disabled
// path must stay allocation-free even past the name cache). Pair with
// obsEnd.
func (o Options) obsSpan(name func(int) string, idx int, cat string) {
	if o.Obs.Enabled() {
		o.Obs.Begin(name(idx), cat)
	}
}

func (o Options) obsEnd() { o.Obs.End() }

// ctxErr reports the options context's cancellation state (nil when no
// context is attached — the non-cancellable fast path).
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// obsLevel charges one DP level to the recorder: the Levels counter and
// elems field-element operations (the analytic per-level op count; see
// docs/OBSERVABILITY.md on measured op counts vs. wall time).
func (o Options) obsLevel(elems int64) {
	o.Obs.Add(obs.Levels, 1)
	o.Obs.Add(obs.DPOps, elems)
}

// ValidateK checks that a subgraph size is within the supported range.
func ValidateK(k int) error {
	if k < 1 {
		return fmt.Errorf("mld: k must be positive, got %d", k)
	}
	if k > MaxK {
		return fmt.Errorf("mld: k=%d exceeds supported maximum %d", k, MaxK)
	}
	return nil
}

func validateK(k, n int) error { return ValidateK(k) }

// vertexCost is the fixed per-vertex overhead of a DP level update
// (base fill, Hadamard, bookkeeping) expressed in units of one
// neighbor-edge update, for the edge-balanced range cut below.
const vertexCost = 4

// parallelVertices runs fn over vertex ranges [lo,hi) on opt.Workers
// goroutines (serial when 0/1). Level updates write only to the
// vertices' own rows, so range splitting is race-free.
//
// Ranges are edge-balanced, not vertex-balanced: a level update costs
// one kernel call per incident edge, and on the skewed degree
// distributions of the paper's datasets (Barabási–Albert preferential
// attachment) equal vertex counts leave most workers idle behind the
// one holding the hubs. The CSR offsets array is exactly the degree
// prefix sum, so the cost prefix cost(v) = AdjOffset(v) + vertexCost·v
// is monotone and each worker boundary is one binary search for
// cost ≈ i/w of the total.
func (o Options) parallelVertices(g *graph.Graph, fn func(lo, hi int32)) {
	n := g.NumVertices()
	w := o.Workers
	if w <= 1 || n < 2*w {
		fn(0, int32(n))
		return
	}
	cost := func(v int) int64 {
		return g.AdjOffset(int32(v)) + int64(vertexCost)*int64(v)
	}
	total := cost(n)
	var wg sync.WaitGroup
	lo := 0
	for i := 1; i <= w && lo < n; i++ {
		hi := n
		if i < w {
			target := total * int64(i) / int64(w)
			hi = sort.Search(n, func(v int) bool { return cost(v) >= target })
			if hi <= lo {
				hi = lo + 1 // cost is monotone; still guarantee progress
			}
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fn(lo, hi)
		}(int32(lo), int32(hi))
		lo = hi
	}
	wg.Wait()
}

// gray maps an iteration index to its mask; consecutive indices differ
// in exactly one bit. Any bijection works (the sum ranges over all
// masks); Gray order makes incremental updates O(1).
func gray(q uint64) uint64 { return q ^ (q >> 1) }

// flipBit returns the bit position in which gray(q) and gray(q+1)
// differ: the number of trailing ones... i.e. trailing zeros of q+1.
func flipBit(q uint64) int {
	x := q + 1
	b := 0
	for x&1 == 0 {
		x >>= 1
		b++
	}
	return b
}
