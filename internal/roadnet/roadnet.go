// Package roadnet simulates the paper's Fig 13 case study: finding
// highway segments with unexpectedly low traffic speed in a road sensor
// network. The paper used the Los Angeles County PeMS feed (30-minute
// snapshots, May 2014); that feed is proprietary-access, so we simulate
// the same structure (DESIGN.md §3): a road-grid of speed sensors, each
// with a normal speed profile including a rush-hour dip, plus an
// *injected* congestion cluster — which, unlike the real feed, gives
// ground truth to score detection against.
//
// p-values follow the paper's model exactly: the p-value of node i at
// snapshot t is the CDF of a normal with the node's sample mean and
// standard deviation over snapshots 1..t-1, evaluated at the snapshot-t
// reading — low speed ⇒ low p-value.
package roadnet

import (
	"fmt"
	"math"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
)

// Sim is one simulated sensor network with an injected anomaly in the
// final snapshot.
type Sim struct {
	G       *graph.Graph
	Rows    int
	Cols    int
	Truth   []int32   // injected congested sensors (connected)
	PValues []float64 // per-node p-value at the final snapshot
	Speeds  []float64 // per-node observed speed at the final snapshot
}

// Config controls a simulation.
type Config struct {
	Rows, Cols  int
	Snapshots   int     // history length before the anomalous snapshot; ≥ 3
	AnomalySize int     // number of congested sensors (a connected BFS ball)
	SpeedDrop   float64 // mean speed reduction inside the anomaly, in σ units; default 4
	Seed        uint64
}

// Simulate builds the network, generates the speed history, injects the
// congestion cluster into the final snapshot, and computes p-values.
func Simulate(cfg Config) (*Sim, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", cfg.Rows, cfg.Cols)
	}
	if cfg.Snapshots < 3 {
		return nil, fmt.Errorf("roadnet: need at least 3 history snapshots, got %d", cfg.Snapshots)
	}
	n := cfg.Rows * cfg.Cols
	if cfg.AnomalySize < 1 || cfg.AnomalySize > n/2 {
		return nil, fmt.Errorf("roadnet: anomaly size %d out of range [1, %d]", cfg.AnomalySize, n/2)
	}
	drop := cfg.SpeedDrop
	if drop == 0 {
		drop = 4
	}
	g := graph.RoadNetwork(cfg.Rows, cfg.Cols, cfg.Seed)
	r := rng.New(cfg.Seed ^ 0x60adbeef60adbeef)

	// Per-sensor free-flow profile: base speed 55–75 mph, noise σ 2–6.
	mu := make([]float64, n)
	sigma := make([]float64, n)
	for i := range mu {
		mu[i] = 55 + 20*r.Float64()
		sigma[i] = 2 + 4*r.Float64()
	}
	// History: every sensor also has a mild deterministic rush-hour dip
	// shared across history and the final snapshot, so it is "normal"
	// and must not trigger detection (the paper's central point: the
	// anomaly is relative to each sensor's own history).
	history := make([][]float64, cfg.Snapshots)
	for t := range history {
		history[t] = make([]float64, n)
		for i := range history[t] {
			history[t][i] = mu[i] - rushDip(t, cfg.Snapshots) + sigma[i]*r.NormFloat64()
		}
	}
	// Ground truth: a connected BFS ball around a random center.
	center := int32(r.Intn(n))
	truth := bfsBall(g, center, cfg.AnomalySize)

	// Final snapshot: normal regime plus the injected congestion.
	final := make([]float64, n)
	tFinal := cfg.Snapshots
	inTruth := make([]bool, n)
	for _, v := range truth {
		inTruth[v] = true
	}
	for i := range final {
		final[i] = mu[i] - rushDip(tFinal, cfg.Snapshots) + sigma[i]*r.NormFloat64()
		if inTruth[i] {
			final[i] -= drop * sigma[i]
		}
	}

	// p-values against each sensor's own history sample moments.
	pv := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum, sumSq float64
		for t := 0; t < cfg.Snapshots; t++ {
			sum += history[t][i]
			sumSq += history[t][i] * history[t][i]
		}
		m := sum / float64(cfg.Snapshots)
		variance := sumSq/float64(cfg.Snapshots) - m*m
		if variance < 1e-9 {
			variance = 1e-9
		}
		pv[i] = NormalCDF((final[i] - m) / math.Sqrt(variance))
	}
	return &Sim{G: g, Rows: cfg.Rows, Cols: cfg.Cols, Truth: truth, PValues: pv, Speeds: final}, nil
}

// rushDip is the deterministic time-of-day speed reduction, identical
// in history and final snapshot (so it is not anomalous).
func rushDip(t, period int) float64 {
	return 5 * (1 + math.Sin(2*math.Pi*float64(t)/float64(period)))
}

// bfsBall returns the first size vertices of a BFS from center.
func bfsBall(g *graph.Graph, center int32, size int) []int32 {
	out := make([]int32, 0, size)
	seen := map[int32]bool{center: true}
	queue := []int32{center}
	for len(queue) > 0 && len(out) < size {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return out
}

// NormalCDF is Φ(x) for the standard normal.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// PrecisionRecall scores a detected vertex set against the injected
// ground truth.
func (s *Sim) PrecisionRecall(detected []int32) (precision, recall float64) {
	if len(detected) == 0 {
		return 0, 0
	}
	inTruth := make(map[int32]bool, len(s.Truth))
	for _, v := range s.Truth {
		inTruth[v] = true
	}
	hit := 0
	for _, v := range detected {
		if inTruth[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(detected)), float64(hit) / float64(len(s.Truth))
}

// AsciiMap renders the grid with the given vertex sets marked — a
// terminal-sized stand-in for the paper's Fig 13 map. detected is drawn
// as '#', truth-only as 'o', overlap as '@', everything else '.'.
func (s *Sim) AsciiMap(detected []int32) string {
	marks := make([]byte, s.Rows*s.Cols)
	for i := range marks {
		marks[i] = '.'
	}
	for _, v := range s.Truth {
		marks[v] = 'o'
	}
	det := make(map[int32]bool, len(detected))
	for _, v := range detected {
		det[v] = true
		if marks[v] == 'o' {
			marks[v] = '@'
		} else {
			marks[v] = '#'
		}
	}
	buf := make([]byte, 0, (s.Cols+1)*s.Rows)
	for i := 0; i < s.Rows; i++ {
		buf = append(buf, marks[i*s.Cols:(i+1)*s.Cols]...)
		buf = append(buf, '\n')
	}
	return string(buf)
}
