package roadnet

import (
	"fmt"
	"math"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/rng"
	"github.com/midas-hpc/midas/internal/scanstat"
)

// Streaming monitoring — the deployment shape of the paper's case
// study: the PeMS feed delivers a snapshot every 30 minutes for a
// month, and each new snapshot is scanned against the history so far.
// Stream simulates such a feed with an anomaly injected during a known
// window, and Monitor runs the detection pipeline snapshot by snapshot,
// reporting the score series — the basis for "when did it start"
// questions as in reference [6] (event detection and forecasting).

// StreamConfig configures a simulated feed.
type StreamConfig struct {
	Rows, Cols  int
	Snapshots   int // total snapshots delivered
	Warmup      int // snapshots before scanning starts; must be ≥ 3·Period
	AnomalyFrom int // first anomalous snapshot (≥ Warmup)
	AnomalyTo   int // last anomalous snapshot (inclusive)
	AnomalySize int
	SpeedDrop   float64 // σ units; default 4
	Period      int     // time-of-day cycle length in snapshots; default 4
	Seed        uint64
}

// Stream is a simulated sensor feed.
type Stream struct {
	G      *graph.Graph
	Truth  []int32 // injected sensors
	cfg    StreamConfig
	speeds [][]float64 // [snapshot][sensor]
}

// NewStream simulates the whole feed up front (deterministic in Seed).
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid %dx%d too small", cfg.Rows, cfg.Cols)
	}
	if cfg.Period == 0 {
		cfg.Period = 4
	}
	if cfg.Period < 1 {
		return nil, fmt.Errorf("roadnet: period %d must be positive", cfg.Period)
	}
	if cfg.Warmup < 3*cfg.Period || cfg.Snapshots <= cfg.Warmup {
		return nil, fmt.Errorf("roadnet: need 3·period ≤ warmup < snapshots, got period=%d warmup=%d snapshots=%d",
			cfg.Period, cfg.Warmup, cfg.Snapshots)
	}
	if cfg.AnomalyFrom < cfg.Warmup || cfg.AnomalyTo < cfg.AnomalyFrom || cfg.AnomalyTo >= cfg.Snapshots {
		return nil, fmt.Errorf("roadnet: anomaly window [%d,%d] outside (warmup, snapshots)", cfg.AnomalyFrom, cfg.AnomalyTo)
	}
	n := cfg.Rows * cfg.Cols
	if cfg.AnomalySize < 1 || cfg.AnomalySize > n/2 {
		return nil, fmt.Errorf("roadnet: anomaly size %d out of range", cfg.AnomalySize)
	}
	drop := cfg.SpeedDrop
	if drop == 0 {
		drop = 4
	}
	g := graph.RoadNetwork(cfg.Rows, cfg.Cols, cfg.Seed)
	r := rng.New(cfg.Seed ^ 0x57e4a1157e4a11)
	mu := make([]float64, n)
	sigma := make([]float64, n)
	for i := range mu {
		mu[i] = 55 + 20*r.Float64()
		sigma[i] = 2 + 4*r.Float64()
	}
	truth := bfsBall(g, int32(r.Intn(n)), cfg.AnomalySize)
	inTruth := make([]bool, n)
	for _, v := range truth {
		inTruth[v] = true
	}
	speeds := make([][]float64, cfg.Snapshots)
	for t := range speeds {
		speeds[t] = make([]float64, n)
		for i := range speeds[t] {
			speeds[t][i] = mu[i] - rushDip(t, cfg.Period) + sigma[i]*r.NormFloat64()
			if inTruth[i] && t >= cfg.AnomalyFrom && t <= cfg.AnomalyTo {
				speeds[t][i] -= drop * sigma[i]
			}
		}
	}
	return &Stream{G: g, Truth: truth, cfg: cfg, speeds: speeds}, nil
}

// PValuesAt computes per-sensor p-values for snapshot t against the
// *time-of-day matched* history: snapshots h < t with h ≡ t (mod
// Period). Matching phases is what a real deployment does — comparing a
// rush-hour reading against all-day history would flag every rush hour.
func (s *Stream) PValuesAt(t int) ([]float64, error) {
	if t >= len(s.speeds) || t < 0 {
		return nil, fmt.Errorf("roadnet: snapshot %d out of range", t)
	}
	var hist []int
	for h := t % s.cfg.Period; h < t; h += s.cfg.Period {
		hist = append(hist, h)
	}
	if len(hist) < 3 {
		return nil, fmt.Errorf("roadnet: snapshot %d has only %d phase-matched history points, need 3", t, len(hist))
	}
	n := len(s.speeds[0])
	pv := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum, sumSq float64
		for _, h := range hist {
			sum += s.speeds[h][i]
			sumSq += s.speeds[h][i] * s.speeds[h][i]
		}
		m := sum / float64(len(hist))
		variance := sumSq/float64(len(hist)) - m*m
		if variance < 1e-9 {
			variance = 1e-9
		}
		pv[i] = NormalCDF((s.speeds[t][i] - m) / math.Sqrt(variance))
	}
	return pv, nil
}

// MonitorResult is one snapshot's scan outcome.
type MonitorResult struct {
	Snapshot int
	Score    float64
	Size     int
	Weight   int64
	Alarm    bool // score above threshold
}

// Monitor scans every post-warmup snapshot with the Berk–Jones
// statistic at significance alpha and subgraph budget k, flagging
// snapshots whose score exceeds threshold. Detection options come from
// opt (seed, epsilon).
func (s *Stream) Monitor(k int, alpha, threshold float64, opt scanstat.Options) ([]MonitorResult, error) {
	var out []MonitorResult
	stat := scanstat.BerkJones{Alpha: alpha}
	for t := s.cfg.Warmup; t < s.cfg.Snapshots; t++ {
		pv, err := s.PValuesAt(t)
		if err != nil {
			return nil, err
		}
		s.G.SetWeights(scanstat.IndicatorWeights(pv, alpha))
		res, err := scanstat.Detect(s.G, k, stat, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, MonitorResult{
			Snapshot: t,
			Score:    res.Score,
			Size:     res.Size,
			Weight:   res.Weight,
			Alarm:    res.Feasible && res.Score >= threshold,
		})
	}
	return out, nil
}

// AnomalyWindow reports the configured injection window.
func (s *Stream) AnomalyWindow() (from, to int) { return s.cfg.AnomalyFrom, s.cfg.AnomalyTo }
