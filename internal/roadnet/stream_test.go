package roadnet

import (
	"testing"

	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/scanstat"
)

func TestNewStreamValidation(t *testing.T) {
	bad := []StreamConfig{
		{Rows: 1, Cols: 5, Snapshots: 10, Warmup: 5, AnomalyFrom: 6, AnomalyTo: 7, AnomalySize: 2},
		{Rows: 5, Cols: 5, Snapshots: 5, Warmup: 5, AnomalyFrom: 5, AnomalyTo: 5, AnomalySize: 2},
		{Rows: 5, Cols: 5, Snapshots: 10, Warmup: 5, AnomalyFrom: 2, AnomalyTo: 7, AnomalySize: 2},
		{Rows: 5, Cols: 5, Snapshots: 10, Warmup: 5, AnomalyFrom: 6, AnomalyTo: 12, AnomalySize: 2},
		{Rows: 5, Cols: 5, Snapshots: 10, Warmup: 5, AnomalyFrom: 6, AnomalyTo: 7, AnomalySize: 0},
	}
	for i, cfg := range bad {
		if _, err := NewStream(cfg); err == nil {
			t.Fatalf("bad stream config %d accepted", i)
		}
	}
}

func TestStreamPValuesShape(t *testing.T) {
	s, err := NewStream(StreamConfig{
		Rows: 8, Cols: 8, Snapshots: 64, Warmup: 40,
		AnomalyFrom: 50, AnomalyTo: 53, AnomalySize: 5, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pv, err := s.PValuesAt(44) // pre-anomaly snapshot
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, p := range pv {
		if p < 0 || p > 1 {
			t.Fatalf("p-value %v out of range", p)
		}
		if p < 0.02 {
			low++
		}
	}
	if frac := float64(low) / float64(len(pv)); frac > 0.08 {
		t.Fatalf("%.1f%% spuriously significant pre-anomaly", 100*frac)
	}
	if _, err := s.PValuesAt(4); err == nil {
		t.Fatal("too-early snapshot accepted")
	}
	if _, err := s.PValuesAt(99); err == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
}

// TestMonitorAlarmsInsideWindow is the streaming version of Fig 13: the
// alarm should fire during the injected window and stay quiet before it.
func TestMonitorAlarmsInsideWindow(t *testing.T) {
	s, err := NewStream(StreamConfig{
		Rows: 8, Cols: 8, Snapshots: 60, Warmup: 40,
		AnomalyFrom: 50, AnomalyTo: 54, AnomalySize: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	const alpha, threshold, k = 0.02, 8.0, 6
	results, err := s.Monitor(k, alpha, threshold, scanstat.Options{MLD: mld.Options{Seed: 2, Epsilon: 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	from, to := s.AnomalyWindow()
	inWindowAlarms, preWindowAlarms := 0, 0
	for _, r := range results {
		if r.Snapshot >= from && r.Snapshot <= to {
			if r.Alarm {
				inWindowAlarms++
			}
		} else if r.Snapshot < from && r.Alarm {
			preWindowAlarms++
		}
	}
	if inWindowAlarms < (to - from) { // allow one miss in the window
		t.Fatalf("only %d/%d alarms inside the anomaly window: %+v", inWindowAlarms, to-from+1, results)
	}
	if preWindowAlarms > 1 {
		t.Fatalf("%d false alarms before the window: %+v", preWindowAlarms, results)
	}
}
