package roadnet

import (
	"math"
	"sort"
	"strings"
	"testing"

	"github.com/midas-hpc/midas/internal/graph"
	"github.com/midas-hpc/midas/internal/mld"
	"github.com/midas-hpc/midas/internal/scanstat"
)

func TestSimulateValidation(t *testing.T) {
	bad := []Config{
		{Rows: 1, Cols: 10, Snapshots: 5, AnomalySize: 2},
		{Rows: 5, Cols: 5, Snapshots: 2, AnomalySize: 2},
		{Rows: 5, Cols: 5, Snapshots: 5, AnomalySize: 0},
		{Rows: 5, Cols: 5, Snapshots: 5, AnomalySize: 20},
	}
	for i, cfg := range bad {
		if _, err := Simulate(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSimulateBasicShape(t *testing.T) {
	s, err := Simulate(Config{Rows: 10, Cols: 12, Snapshots: 20, AnomalySize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.G.NumVertices() != 120 {
		t.Fatalf("n = %d", s.G.NumVertices())
	}
	if len(s.Truth) != 6 {
		t.Fatalf("truth size %d", len(s.Truth))
	}
	if !graph.IsConnectedSubset(s.G, s.Truth) {
		t.Fatal("injected anomaly not connected")
	}
	for i, p := range s.PValues {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("p-value[%d] = %v", i, p)
		}
	}
}

func TestAnomalousNodesHaveLowPValues(t *testing.T) {
	s, err := Simulate(Config{Rows: 12, Cols: 12, Snapshots: 30, AnomalySize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inTruth := map[int32]bool{}
	for _, v := range s.Truth {
		inTruth[v] = true
	}
	var anomMax float64
	normLow := 0
	for v, p := range s.PValues {
		if inTruth[int32(v)] {
			if p > anomMax {
				anomMax = p
			}
		} else if p < 0.01 {
			normLow++
		}
	}
	if anomMax > 0.05 {
		t.Fatalf("an injected sensor has p-value %v (> 0.05): drop too weak", anomMax)
	}
	if frac := float64(normLow) / float64(s.G.NumVertices()); frac > 0.05 {
		t.Fatalf("%.1f%% of normal sensors spuriously significant", 100*frac)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, _ := Simulate(Config{Rows: 8, Cols: 8, Snapshots: 10, AnomalySize: 4, Seed: 9})
	b, _ := Simulate(Config{Rows: 8, Cols: 8, Snapshots: 10, AnomalySize: 4, Seed: 9})
	for i := range a.PValues {
		if a.PValues[i] != b.PValues[i] {
			t.Fatal("same seed, different simulation")
		}
	}
}

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{0: 0.5, 1.96: 0.975, -1.96: 0.025, 3: 0.99865}
	for x, want := range cases {
		if got := NormalCDF(x); math.Abs(got-want) > 1e-3 {
			t.Fatalf("Φ(%v) = %v want %v", x, got, want)
		}
	}
}

func TestPrecisionRecall(t *testing.T) {
	s := &Sim{Truth: []int32{1, 2, 3, 4}}
	p, r := s.PrecisionRecall([]int32{1, 2, 9, 10})
	if p != 0.5 || r != 0.5 {
		t.Fatalf("p=%v r=%v", p, r)
	}
	p, r = s.PrecisionRecall(nil)
	if p != 0 || r != 0 {
		t.Fatal("empty detection should be 0/0")
	}
}

func TestAsciiMapMarks(t *testing.T) {
	s := &Sim{Rows: 2, Cols: 3, Truth: []int32{0, 1}}
	m := s.AsciiMap([]int32{1, 5})
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != 2 || lines[0] != "o@." || lines[1] != "..#" {
		t.Fatalf("map:\n%s", m)
	}
}

// TestEndToEndDetection is the Fig 13 pipeline in miniature: simulate,
// convert p-values to indicator weights, run the scan-statistics
// detector, extract the cluster, and check it overlaps the injection.
func TestEndToEndDetection(t *testing.T) {
	s, err := Simulate(Config{Rows: 9, Cols: 9, Snapshots: 25, AnomalySize: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const alpha = 0.02
	s.G.SetWeights(scanstat.IndicatorWeights(s.PValues, alpha))
	const k = 6
	res, err := scanstat.Detect(s.G, k, scanstat.BerkJones{Alpha: alpha},
		scanstat.Options{MLD: mld.Options{Seed: 11, Epsilon: 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("no anomalous cluster detected")
	}
	cluster, err := scanstat.ExtractCell(s.G, res.Size, res.Weight,
		scanstat.Options{MLD: mld.Options{Seed: 11, Epsilon: 1e-6}})
	if err != nil {
		t.Fatal(err)
	}
	_, recall := s.PrecisionRecall(cluster)
	if recall < 0.4 {
		sort.Slice(cluster, func(i, j int) bool { return cluster[i] < cluster[j] })
		t.Fatalf("recall %.2f too low; detected %v truth %v\n%s", recall, cluster, s.Truth, s.AsciiMap(cluster))
	}
}
