package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randHist builds a histogram from n values drawn log-uniformly over
// the interesting latency range, returning the snapshot and the sorted
// raw values.
func randHist(rng *rand.Rand, name string, n int) (HistSnapshot, []float64) {
	var h Hist
	vals := make([]float64, n)
	for i := range vals {
		// 10^[-9, 2): nanoseconds to ~100 s.
		v := math.Pow(10, -9+11*rng.Float64())
		vals[i] = v
		h.observe(v)
	}
	sort.Float64s(vals)
	return h.snapshot(name), vals
}

// histEq compares snapshots exactly except for Sum, where float
// addition order makes bit-exact equality too strict.
func histEq(a, b HistSnapshot) bool {
	sa, sb := a.Sum, b.Sum
	a.Sum, b.Sum = 0, 0
	tol := 1e-9 * (math.Abs(sa) + math.Abs(sb) + 1)
	return reflect.DeepEqual(a, b) && math.Abs(sa-sb) <= tol
}

func TestHistBucketGeometry(t *testing.T) {
	// Every value falls into a bucket whose upper bound is >= the value
	// and whose predecessor's bound is < the value (within a bucket
	// step), across many magnitudes.
	for _, v := range []float64{1e-10, 1e-9, 1.1e-9, 3e-7, 1.5e-6, 1e-3, 0.25, 1, 17.2, 1e4, 1e9} {
		i := histBucketOf(v)
		if ub := HistUpperBound(i); v > ub*(1+1e-12) {
			t.Fatalf("value %g exceeds its bucket bound %g (bucket %d)", v, ub, i)
		}
		if i > 0 && v < HistUpperBound(i-1)*(1-1e-12) {
			t.Fatalf("value %g far below previous bound %g (bucket %d)", v, HistUpperBound(i-1), i)
		}
	}
	if histBucketOf(0) != 0 || histBucketOf(-1) != 0 || histBucketOf(math.NaN()) != 0 {
		t.Fatal("degenerate values must land in bucket 0")
	}
	if histBucketOf(math.Inf(1)) != histBuckets-1 {
		t.Fatal("overflow values must land in the last bucket")
	}
	if !math.IsInf(HistUpperBound(histBuckets-1), 1) {
		t.Fatal("last bucket bound must be +Inf")
	}
}

// TestHistMergeAssociative is the property the cross-rank gather
// relies on: folding per-rank histograms in any tree order yields the
// same distribution.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, _ := randHist(rng, "h", rng.Intn(200))
		b, _ := randHist(rng, "h", rng.Intn(200))
		c, _ := randHist(rng, "h", rng.Intn(200))
		abc1 := a.Merge(b).Merge(c)
		abc2 := a.Merge(b.Merge(c))
		if !histEq(abc1, abc2) {
			t.Fatalf("merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", abc1, abc2)
		}
		if !histEq(a.Merge(b), b.Merge(a)) {
			t.Fatal("merge not commutative")
		}
	}
	// Identity: merging with an empty histogram changes nothing.
	a, _ := randHist(rng, "h", 100)
	if got := a.Merge(HistSnapshot{}); !histEq(got, a) {
		t.Fatalf("merge with empty is not identity:\ngot  %+v\nwant %+v", got, a)
	}
}

func TestHistMergeMatchesCombinedObservation(t *testing.T) {
	// Observing X then Y into one histogram equals observing X and Y
	// into two and merging.
	rng := rand.New(rand.NewSource(11))
	var combined Hist
	var ha, hb Hist
	for i := 0; i < 500; i++ {
		v := math.Pow(10, -9+11*rng.Float64())
		combined.observe(v)
		if i%2 == 0 {
			ha.observe(v)
		} else {
			hb.observe(v)
		}
	}
	want := combined.snapshot("h")
	got := ha.snapshot("h").Merge(hb.snapshot("h"))
	if !histEq(got, want) {
		t.Fatalf("merge drifted from combined observation:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestHistQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		s, vals := randHist(rng, "h", 50+rng.Intn(500))
		if s.Quantile(0) != s.Min || s.Quantile(1) != s.Max {
			t.Fatalf("quantile endpoints not exact: q0=%g min=%g q1=%g max=%g",
				s.Quantile(0), s.Min, s.Quantile(1), s.Max)
		}
		prev := 0.0
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			q := s.Quantile(p)
			if q < prev {
				t.Fatalf("quantile not monotone at p=%v: %g < %g", p, q, prev)
			}
			prev = q
			if q < s.Min || q > s.Max {
				t.Fatalf("quantile %v=%g escapes [min=%g, max=%g]", p, q, s.Min, s.Max)
			}
			// Bucket resolution: the estimate must be within one bucket
			// step (2^(1/4)) of the true order statistic.
			idx := int(math.Ceil(p*float64(len(vals)))) - 1
			if idx < 0 {
				idx = 0
			}
			truth := vals[idx]
			step := math.Pow(2, 1.0/histSubPerOctave)
			if truth > histMinValue && (q > truth*step*(1+1e-9) || q < truth/step*(1-1e-9)) {
				t.Fatalf("quantile p=%v estimate %g more than one bucket from truth %g", p, q, truth)
			}
		}
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistSumMinMaxExact(t *testing.T) {
	var h Hist
	vals := []float64{0.5, 1e-6, 2.25, 1e-6, 0.125}
	sum := 0.0
	for _, v := range vals {
		h.observe(v)
		sum += v
	}
	s := h.snapshot("h")
	if s.Count != int64(len(vals)) || s.Min != 1e-6 || s.Max != 2.25 {
		t.Fatalf("count/min/max wrong: %+v", s)
	}
	if math.Abs(s.Sum-sum) > 1e-12 {
		t.Fatalf("sum = %g, want %g", s.Sum, sum)
	}
	if math.Abs(s.Mean()-sum/5) > 1e-12 {
		t.Fatalf("mean = %g, want %g", s.Mean(), sum/5)
	}
}

func TestHistCumulative(t *testing.T) {
	var h Hist
	for _, v := range []float64{1e-6, 2e-6, 1e-3, 5} {
		h.observe(v)
	}
	s := h.snapshot("h")
	bounds, cum := s.Cumulative()
	if len(bounds) != len(cum) || len(bounds) == 0 {
		t.Fatalf("cumulative shape wrong: %v %v", bounds, cum)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending: %v", bounds)
		}
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decrease: %v", cum)
		}
	}
	if cum[len(cum)-1] != s.Count {
		t.Fatalf("final cumulative %d != count %d", cum[len(cum)-1], s.Count)
	}
}

func TestRecorderObserveAndFlows(t *testing.T) {
	fc := &fakeClock{}
	r := NewRecorder(1, fc.now)
	r.Observe(HistBarrierWait, 0.25)
	r.Observe(HistBarrierWait, 0.5)
	fc.t = 1.5
	r.FlowSend(1, 0, 9)
	r.FlowSend(1, 0, 9)
	r.FlowRecv(0, 1, 9)
	s := r.Snapshot()
	h := s.Hist("barrier-wait")
	if h.Count != 2 || h.Min != 0.25 || h.Max != 0.5 {
		t.Fatalf("barrier-wait hist = %+v", h)
	}
	if len(s.Hists) != int(NumHists) {
		t.Fatalf("want all %d hist families in snapshot, got %d", NumHists, len(s.Hists))
	}
	if len(s.Flows) != 3 {
		t.Fatalf("want 3 flow endpoints, got %d", len(s.Flows))
	}
	if s.Flows[0].ID == s.Flows[1].ID {
		t.Fatal("consecutive sends on one stream must get distinct flow ids")
	}
	if s.Flows[0].Recv || !s.Flows[2].Recv {
		t.Fatalf("flow directions wrong: %+v", s.Flows)
	}
	for _, f := range s.Flows {
		if f.TS != 1.5 || f.ID == 0 {
			t.Fatalf("flow endpoint wrong: %+v", f)
		}
	}
	// Sender and receiver of the same stream ordinal derive equal ids.
	send := NewRecorder(0, fc.now)
	recv := NewRecorder(1, fc.now)
	send.FlowSend(0, 1, 12)
	recv.FlowRecv(0, 1, 12)
	if send.Snapshot().Flows[0].ID != recv.Snapshot().Flows[0].ID {
		t.Fatal("flow ids disagree across endpoints")
	}
	// Distinct streams must (overwhelmingly) get distinct ids.
	if flowID(0, 1, 12, 0) == flowID(1, 0, 12, 0) || flowID(0, 1, 12, 0) == flowID(0, 1, 13, 0) {
		t.Fatal("flow id collides across distinct streams")
	}
}

func TestMaxFlowsCap(t *testing.T) {
	r := NewRecorder(0, func() float64 { return 0 })
	r.SetMaxFlows(2)
	for i := 0; i < 5; i++ {
		r.FlowSend(0, 1, 1)
	}
	s := r.Snapshot()
	if len(s.Flows) != 2 {
		t.Fatalf("flows = %d, want 2 (capped)", len(s.Flows))
	}
	if got := s.Counter(FlowsDropped); got != 3 {
		t.Fatalf("FlowsDropped = %d, want 3", got)
	}
}

func TestTotalsMergesHists(t *testing.T) {
	mk := func(rank int, hist string, vals ...float64) Snapshot {
		var h Hist
		for _, v := range vals {
			h.observe(v)
		}
		return Snapshot{Rank: rank, Hists: []HistSnapshot{h.snapshot(hist)}}
	}
	tot := Totals(
		mk(0, "barrier-wait", 0.1, 0.2),
		mk(1, "barrier-wait", 0.4),
		mk(2, "recv-wait", 1e-6),
	)
	bw := tot.Hist("barrier-wait")
	if bw.Count != 3 || bw.Min != 0.1 || bw.Max != 0.4 {
		t.Fatalf("merged barrier-wait = %+v", bw)
	}
	if tot.Hist("recv-wait").Count != 1 {
		t.Fatalf("recv-wait lost in totals: %+v", tot.Hists)
	}
	if tot.Hist("absent").Count != 0 {
		t.Fatal("absent hist must read as empty")
	}
}
