package obs

// The live telemetry endpoint: one small HTTP server per process
// exposing the process's Recorders while a run is in flight —
// Prometheus text-format counters and histograms on /metrics, rank
// liveness and phase progress on /healthz, and the standard
// net/http/pprof profiler under /debug/pprof/. Enabled by
// Options.ObsAddr (library) or `midas -obs-addr` (CLI); see
// docs/OBSERVABILITY.md §"Live telemetry endpoint".
//
// The handlers read only Recorder snapshots (safe for concurrent use —
// the Recorder is mutex-guarded and its time base is the atomic
// virtual clock); they deliberately do not touch comm.Stats, which is
// written lock-free by the rank goroutines.

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// Server is a live telemetry HTTP server. Construct with Serve; stop
// with Close.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	source func() []Snapshot
}

// Metric is one extra gauge/counter family an embedding server merges
// into the /metrics exposition alongside the Recorder-derived series —
// the hook the query service uses for values that are states, not
// events (queue depth, in-flight executions, cache occupancy), which a
// monotone Counter cannot represent. Name must be a full Prometheus
// metric name ("midas_serve_queue_depth").
type Metric struct {
	Name    string
	Help    string
	Type    string // "gauge" or "counter"
	Samples []MetricSample
}

// MetricSample is one sample of an extra Metric. Labels is the
// pre-rendered label set including braces (`{worker="3"}`), or empty
// for an unlabelled sample.
type MetricSample struct {
	Labels string
	Value  float64
}

// Gauge is a single-sample unlabelled gauge Metric — the common case
// for the extra-metrics hook.
func Gauge(name, help string, v float64) Metric {
	return Metric{Name: name, Help: help, Type: "gauge", Samples: []MetricSample{{Value: v}}}
}

// Serve binds addr (host:port; ":0" picks a free port — read it back
// via Addr) and serves /metrics, /healthz and /debug/pprof/ until
// Close. source is invoked per request and must be safe for concurrent
// use; Recorder.Snapshot is (SnapshotSource adapts a recorder list).
func Serve(addr string, source func() []Snapshot) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	s := &Server{ln: ln, source: source}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(source, nil))
	mux.Handle("/healthz", HealthzHandler(source))
	RegisterPprof(mux)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// RegisterPprof mounts the standard net/http/pprof profiler under
// /debug/pprof/ on mux — shared by the obs Server and any embedding
// server (internal/serve) that builds its own mux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// SnapshotSource adapts a fixed recorder list into the source callback
// Serve wants. Nil recorders in the list are skipped.
func SnapshotSource(recs ...*Recorder) func() []Snapshot {
	return func() []Snapshot {
		out := make([]Snapshot, 0, len(recs))
		for _, r := range recs {
			if r.Enabled() {
				out = append(out, r.LiteSnapshot())
			}
		}
		return out
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

// fmtFloat renders a float64 sample the way Prometheus text format
// expects (shortest round-trip representation; +Inf spelled "+Inf").
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricName converts a kebab-case obs name into a Prometheus metric
// name component ("halo-msgs" → "halo_msgs").
func metricName(name string) string { return strings.ReplaceAll(name, "-", "_") }

// MetricsHandler returns the Prometheus text-format /metrics handler
// over a snapshot source, optionally merged with extra gauge families
// (extra may be nil; it is invoked per request and must be safe for
// concurrent use). The obs Server uses it with no extras; the query
// service mounts it on its own mux with the admission/cache gauges.
func MetricsHandler(source func() []Snapshot, extra func() []Metric) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var extras []Metric
		if extra != nil {
			extras = extra()
		}
		writeMetrics(w, source(), extras)
	})
}

func writeMetrics(w http.ResponseWriter, snaps []Snapshot, extras []Metric) {
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Rank < snaps[j].Rank })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	sample := func(name, rank string, v string) {
		b.WriteString(name)
		b.WriteString(`{rank="`)
		b.WriteString(rank)
		b.WriteString(`"} `)
		b.WriteString(v)
		b.WriteByte('\n')
	}

	// Typed counters.
	for c := Counter(0); c < NumCounters; c++ {
		name := "midas_" + metricName(c.String()) + "_total"
		fmt.Fprintf(&b, "# HELP %s Per-rank MIDAS counter %q (see docs/OBSERVABILITY.md).\n", name, c.String())
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		for _, s := range snaps {
			sample(name, strconv.Itoa(s.Rank), strconv.FormatInt(s.Counter(c), 10))
		}
	}

	// Traffic counters (filled when the source merges comm.Stats; zero
	// on recorder-only live sources) and the clock gauge.
	traffic := []struct {
		name string
		get  func(Snapshot) int64
	}{
		{"midas_msgs_sent_total", func(s Snapshot) int64 { return s.MsgsSent }},
		{"midas_msgs_recvd_total", func(s Snapshot) int64 { return s.MsgsRecvd }},
		{"midas_bytes_sent_total", func(s Snapshot) int64 { return s.BytesSent }},
		{"midas_bytes_recvd_total", func(s Snapshot) int64 { return s.BytesRecvd }},
		{"midas_collectives_total", func(s Snapshot) int64 { return s.Collectives }},
	}
	for _, m := range traffic {
		fmt.Fprintf(&b, "# HELP %s Per-rank MIDAS traffic counter (see docs/OBSERVABILITY.md).\n", m.name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
		for _, s := range snaps {
			sample(m.name, strconv.Itoa(s.Rank), strconv.FormatInt(m.get(s), 10))
		}
	}
	fmt.Fprintf(&b, "# HELP midas_clock_seconds Rank time-base reading at scrape (virtual seconds for distributed ranks).\n")
	fmt.Fprintf(&b, "# TYPE midas_clock_seconds gauge\n")
	for _, s := range snaps {
		sample("midas_clock_seconds", strconv.Itoa(s.Rank), fmtFloat(s.End))
	}

	// Latency histograms: one family per HistID, union over snapshots
	// (a live Recorder snapshot always carries all NumHists families).
	famSet := map[string]bool{}
	for _, s := range snaps {
		for _, h := range s.Hists {
			famSet[h.Name] = true
		}
	}
	fams := make([]string, 0, len(famSet))
	for f := range famSet {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		name := "midas_" + metricName(fam) + "_seconds"
		fmt.Fprintf(&b, "# HELP %s Per-rank MIDAS latency histogram %q (see docs/OBSERVABILITY.md).\n", name, fam)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		for _, s := range snaps {
			h := s.Hist(fam)
			rank := strconv.Itoa(s.Rank)
			bounds, cum := h.Cumulative()
			for i, bound := range bounds {
				b.WriteString(name)
				b.WriteString(`_bucket{rank="`)
				b.WriteString(rank)
				b.WriteString(`",le="`)
				b.WriteString(fmtFloat(bound))
				b.WriteString(`"} `)
				b.WriteString(strconv.FormatInt(cum[i], 10))
				b.WriteByte('\n')
			}
			b.WriteString(name)
			b.WriteString(`_bucket{rank="`)
			b.WriteString(rank)
			b.WriteString(`",le="+Inf"} `)
			b.WriteString(strconv.FormatInt(h.Count, 10))
			b.WriteByte('\n')
			sample(name+"_sum", rank, fmtFloat(h.Sum))
			sample(name+"_count", rank, strconv.FormatInt(h.Count, 10))
		}
	}

	// Extra families from the embedding server (gauges the Recorder
	// model has no slot for).
	for _, m := range extras {
		typ := m.Type
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, m.Help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, typ)
		for _, sm := range m.Samples {
			b.WriteString(m.Name)
			b.WriteString(sm.Labels)
			b.WriteByte(' ')
			b.WriteString(fmtFloat(sm.Value))
			b.WriteByte('\n')
		}
	}
	w.Write([]byte(b.String())) //nolint:errcheck
}

// HealthRank is one rank's entry in the /healthz response: is the rank
// making progress, and where is it.
type HealthRank struct {
	Rank      int     `json:"rank"`
	Phase     string  `json:"phase,omitempty"`
	ClockSecs float64 `json:"clockSecs"`
	Rounds    int64   `json:"rounds"`
	Phases    int64   `json:"phases"`
	Levels    int64   `json:"levels"`
	Spans     int     `json:"spans"`
}

// Health is the /healthz response body.
type Health struct {
	Status string       `json:"status"`
	Ranks  []HealthRank `json:"ranks"`
}

// HealthzHandler returns the JSON rank-liveness /healthz handler over
// a snapshot source (invoked per request; must be safe for concurrent
// use).
func HealthzHandler(source func() []Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snaps := source()
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].Rank < snaps[j].Rank })
		h := Health{Status: "ok", Ranks: make([]HealthRank, 0, len(snaps))}
		for _, sn := range snaps {
			h.Ranks = append(h.Ranks, HealthRank{
				Rank:      sn.Rank,
				Phase:     sn.Phase,
				ClockSecs: sn.End,
				Rounds:    sn.Counter(Rounds),
				Phases:    sn.Counter(Phases),
				Levels:    sn.Counter(Levels),
				Spans:     sn.SpansRecorded,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h) //nolint:errcheck
	})
}
