package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// traceEvent is one entry of the Chrome trace_event format ("X"
// complete events, "M" metadata, and "s"/"f" flow events linking
// sender and receiver timelines). chrome://tracing and Perfetto both
// load the {"traceEvents": [...]} container emitted by WriteTrace.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"` // flow binding id (hex; viewers match s/f pairs on it)
	BP   string         `json:"bp,omitempty"` // "e": bind the flow end to the enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the snapshots as Chrome trace_event JSON: one
// trace *process* per rank (pid = rank, so cross-rank flows render as
// inter-process arrows), one complete event per span, and one flow
// ("s" on the sender, "f" on the receiver) event pair per recorded
// message-flow endpoint — the stitched view of a distributed run.
// Timestamps are microseconds of the snapshot's time base (virtual
// seconds for distributed ranks, so the timeline is the modeled
// makespan; wall seconds for sequential recorders). Load the file at
// chrome://tracing or https://ui.perfetto.dev.
func WriteTrace(w io.Writer, snaps ...Snapshot) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for _, s := range snaps {
		rank := s.Rank
		if rank < 0 {
			rank = 0
		}
		proc := s.ProcName
		if proc == "" {
			proc = fmt.Sprintf("rank %d", rank)
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: rank, Tid: 0,
			Args: map[string]any{"name": proc},
		})
		for _, sp := range s.Spans {
			dur := sp.Dur * 1e6
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: sp.Name,
				Cat:  sp.Cat,
				Ph:   "X",
				Ts:   sp.Start * 1e6,
				Dur:  &dur,
				Pid:  rank,
				Tid:  sp.Tid,
			})
		}
		for _, f := range s.Flows {
			ev := traceEvent{
				Name: "msg",
				Cat:  "flow",
				Ts:   f.TS * 1e6,
				Pid:  rank,
				Tid:  0,
				ID:   fmt.Sprintf("0x%x", f.ID),
			}
			if f.Recv {
				ev.Ph = "f"
				ev.BP = "e" // bind to the enclosing receiver span
			} else {
				ev.Ph = "s"
			}
			tf.TraceEvents = append(tf.TraceEvents, ev)
		}
	}
	enc, err := json.MarshalIndent(tf, "", " ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// WriteSummary renders the snapshots as the plain-text operator
// summary: a per-rank counter table with a totals row, a per-rank
// time-by-span-category table, and the halo volume per DP level.
// docs/OBSERVABILITY.md defines every column.
func WriteSummary(w io.Writer, snaps ...Snapshot) error {
	if len(snaps) == 0 {
		_, err := fmt.Fprintln(w, "obs: no snapshots")
		return err
	}
	tw := newTextTable("rank", "msgs-sent", "msgs-recvd", "bytes-sent", "bytes-recvd",
		"collectives", "halo-msgs", "halo-bytes", "dp-ops", "rounds", "phases", "levels", "clock")
	addRow := func(label string, s Snapshot) {
		tw.add(label,
			i64(s.MsgsSent), i64(s.MsgsRecvd), i64(s.BytesSent), i64(s.BytesRecvd),
			i64(s.Collectives),
			i64(s.Counter(HaloMsgs)), i64(s.Counter(HaloBytes)), i64(s.Counter(DPOps)),
			i64(s.Counter(Rounds)), i64(s.Counter(Phases)), i64(s.Counter(Levels)),
			fmt.Sprintf("%.6fs", s.End))
	}
	for _, s := range snaps {
		addRow(fmt.Sprint(s.Rank), s)
	}
	if len(snaps) > 1 {
		addRow("total", Totals(snaps...))
	}
	if _, err := fmt.Fprintln(w, "-- per-rank counters --"); err != nil {
		return err
	}
	if err := tw.write(w); err != nil {
		return err
	}

	// Time by span category, one column per category seen anywhere.
	catSet := map[string]bool{}
	for _, s := range snaps {
		for _, sp := range s.Spans {
			catSet[sp.Cat] = true
		}
	}
	if len(catSet) > 0 {
		cats := make([]string, 0, len(catSet))
		for c := range catSet {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		ct := newTextTable(append([]string{"rank"}, cats...)...)
		for _, s := range snaps {
			bycat := s.CategorySeconds()
			row := make([]string, 0, len(cats)+1)
			row = append(row, fmt.Sprint(s.Rank))
			for _, c := range cats {
				row = append(row, fmt.Sprintf("%.6fs", bycat[c]))
			}
			ct.add(row...)
		}
		if _, err := fmt.Fprintln(w, "\n-- time by span category (nested spans overlap; see docs/OBSERVABILITY.md) --"); err != nil {
			return err
		}
		if err := ct.write(w); err != nil {
			return err
		}
	}

	// Halo volume per DP level, totalled over ranks.
	tot := Totals(snaps...)
	if len(tot.HaloLevelBytes) > 0 {
		ht := newTextTable("dp-level", "halo-bytes(all ranks)")
		for j, b := range tot.HaloLevelBytes {
			if b != 0 {
				ht.add(LevelName(j), i64(b))
			}
		}
		if _, err := fmt.Fprintln(w, "\n-- halo volume by DP level --"); err != nil {
			return err
		}
		if err := ht.write(w); err != nil {
			return err
		}
	}
	// Latency histograms, merged over ranks; only non-empty families,
	// sorted by name (Totals/MergeHists sort), so the section is
	// deterministic and absent for runs that observed nothing.
	var anyHist bool
	for _, h := range tot.Hists {
		if h.Count > 0 {
			anyHist = true
			break
		}
	}
	if anyHist {
		lt := newTextTable("histogram", "count", "p50", "p90", "p99", "max", "mean")
		for _, h := range tot.Hists {
			if h.Count == 0 {
				continue
			}
			lt.add(h.Name, i64(h.Count),
				secs(h.Quantile(0.50)), secs(h.Quantile(0.90)), secs(h.Quantile(0.99)),
				secs(h.Max), secs(h.Mean()))
		}
		if _, err := fmt.Fprintln(w, "\n-- latency histograms (seconds, all ranks merged; quantiles carry bucket resolution) --"); err != nil {
			return err
		}
		if err := lt.write(w); err != nil {
			return err
		}
	}
	// Resilience counters: only shown when something actually went
	// wrong (clean runs keep the clean summary of earlier releases).
	if tot.Counter(FaultsInjected) > 0 || tot.Counter(SendRetries) > 0 || tot.Counter(BackoffNanos) > 0 {
		rt := newTextTable("rank", "faults-injected", "send-retries", "backoff")
		addResRow := func(label string, s Snapshot) {
			rt.add(label, i64(s.Counter(FaultsInjected)), i64(s.Counter(SendRetries)),
				fmt.Sprintf("%.6fs", float64(s.Counter(BackoffNanos))/1e9))
		}
		for _, s := range snaps {
			addResRow(fmt.Sprint(s.Rank), s)
		}
		if len(snaps) > 1 {
			addResRow("total", tot)
		}
		if _, err := fmt.Fprintln(w, "\n-- resilience (injected faults and send retries; see docs/FAULTS.md) --"); err != nil {
			return err
		}
		if err := rt.write(w); err != nil {
			return err
		}
	}
	if dropped := tot.Counter(SpansDropped); dropped > 0 {
		if _, err := fmt.Fprintf(w, "\nWARNING: %d spans dropped (MaxSpans cap); counters remain exact\n", dropped); err != nil {
			return err
		}
	}
	return nil
}

// EncodeSnapshot serializes a snapshot for transport (the payload
// GatherObsSnapshots moves to rank 0).
func EncodeSnapshot(s Snapshot) ([]byte, error) { return json.Marshal(s) }

// DecodeSnapshot inverts EncodeSnapshot.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	err := json.Unmarshal(b, &s)
	return s, err
}

func i64(v int64) string { return fmt.Sprint(v) }

// secs renders a duration in seconds with enough significant digits
// for sub-microsecond latencies without drowning the table.
func secs(v float64) string { return fmt.Sprintf("%.4gs", v) }

// textTable is a minimal aligned-column printer (obs stays
// zero-dependency, so it cannot borrow internal/harness's Table).
type textTable struct {
	header []string
	rows   [][]string
}

func newTextTable(header ...string) *textTable { return &textTable{header: header} }

func (t *textTable) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *textTable) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
